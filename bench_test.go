package hangdoctor

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md §4), plus the
// ablation benches for the design choices DESIGN.md calls out. Each
// benchmark regenerates its artifact end to end — corpus execution,
// detection, and scoring — and reports tokens of domain throughput
// (actions simulated, samples collected) alongside ns/op.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The experiments are deterministic; the benchmarks measure the cost of
// regenerating each artifact, and their correctness is asserted by the
// test suites under internal/experiments.

import (
	"fmt"
	"testing"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/core"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/experiments"
	"hangdoctor/internal/simclock"
)

// benchScale keeps benchmark iterations affordable while exercising every
// code path the full-scale run does.
func benchScale() experiments.Scale {
	s := experiments.SmallScale()
	return s
}

func benchCtx(b *testing.B) *experiments.Context {
	b.Helper()
	// NewContext reuses the memoized shared corpus (corpus.Shared), so the
	// context itself is cheap; only the experiment body is being measured.
	return experiments.NewContext(42, benchScale())
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		// A fresh context per iteration resets the known-blocking database
		// without rebuilding the corpus — Shared() memoizes the 114 apps.
		ctx := experiments.NewContext(42, benchScale())
		res, err := experiments.Run(ctx, name)
		if err != nil {
			b.Fatal(err)
		}
		if res.Render() == "" {
			b.Fatal("empty artifact")
		}
	}
}

// benchParallelExperiment reruns one sweep experiment at fixed worker-pool
// sizes, the same shape as internal/fleet's shard-scaling benches. Compare
// ns/op across sub-benchmarks to see pool scaling; on a multi-core runner
// table5 and fig8 should improve near-linearly until worker count passes
// physical cores, with byte-identical artifacts throughout (asserted by
// TestRenderDeterministicAcrossParallelism).
func benchParallelExperiment(b *testing.B, name string) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := experiments.NewContext(42, benchScale())
				ctx.Parallel = workers
				res, err := experiments.Run(ctx, name)
				if err != nil {
					b.Fatal(err)
				}
				if res.Render() == "" {
					b.Fatal("empty artifact")
				}
			}
		})
	}
}

// BenchmarkScalingTable5 measures worker-pool scaling on the heaviest sweep
// (114 apps × harness runs).
func BenchmarkScalingTable5(b *testing.B) { benchParallelExperiment(b, "table5") }

// BenchmarkScalingFig8 measures worker-pool scaling on the detector
// comparison (8 apps × 6 detectors).
func BenchmarkScalingFig8(b *testing.B) { benchParallelExperiment(b, "fig8") }

// BenchmarkTable1Corpus regenerates Table 1 (the motivation-app inventory).
func BenchmarkTable1Corpus(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2TimeoutSweep regenerates Table 2 (TI detection quality at
// 5 s / 1 s / 500 ms / 100 ms timeouts over the eight motivation apps).
func BenchmarkTable2TimeoutSweep(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3Correlation regenerates Table 3 (46-event Pearson ranking,
// main-minus-render difference vs main-thread-only).
func BenchmarkTable3Correlation(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4Sensitivity regenerates Table 4 (ranking stability on 75%
// and 50% training subsets).
func BenchmarkTable4Sensitivity(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5FullCorpus regenerates Table 5 (Hang Doctor over all 114
// apps: bugs detected and offline misses).
func BenchmarkTable5FullCorpus(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable6ValidationSet regenerates Table 6 (which S-Checker
// counters detect each previously unknown bug).
func BenchmarkTable6ValidationSet(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkFig1Timeline regenerates Figure 1 (A Better Camera buggy vs
// fixed Resume timeline).
func BenchmarkFig1Timeline(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig2bFieldReport regenerates Figure 2(b) (the merged AndStatus
// Hang Bug Report across simulated devices).
func BenchmarkFig2bFieldReport(b *testing.B) { runExperiment(b, "fig2b") }

// BenchmarkFig4FilterDesign regenerates Figure 4 (the filter's class
// separation and the greedy threshold selection).
func BenchmarkFig4FilterDesign(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5TimeSeries regenerates Figure 5 (windowed context-switch
// series of a bug action and a UI action).
func BenchmarkFig5TimeSeries(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6K9Walkthrough regenerates Figure 6 (the HtmlCleaner.clean
// detection walk-through).
func BenchmarkFig6K9Walkthrough(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7StateMachine regenerates Figure 7 (state-transition pruning
// of UI false positives).
func BenchmarkFig7StateMachine(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8Detection regenerates Figure 8(a,b,c) (Hang Doctor vs the
// five baselines: normalized TP/FP and overhead).
func BenchmarkFig8Detection(b *testing.B) { runExperiment(b, "fig8") }

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md §5).

// runHDVariant runs one Hang Doctor configuration over the K9-Mail trace.
func runHDVariant(b *testing.B, cfg core.Config) {
	b.Helper()
	c := corpus.Shared()
	a := c.MustApp("K9-Mail")
	trace := corpus.Trace(a, 42, benchScale().TracePerApp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := core.New(cfg)
		h, err := detect.NewHarness(a, app.LGV10(), 42, d)
		if err != nil {
			b.Fatal(err)
		}
		h.Run(trace, simclock.Second)
		if len(h.Execs) != len(trace) {
			b.Fatal("trace truncated")
		}
	}
}

// BenchmarkAblationPhases compares the full two-phase pipeline against the
// single-phase variants.
func BenchmarkAblationPhases(b *testing.B) {
	b.Run("two-phase", func(b *testing.B) { runHDVariant(b, core.Config{}) })
	b.Run("phase1-only", func(b *testing.B) { runHDVariant(b, core.Config{Phase1Only: true}) })
	b.Run("phase2-only", func(b *testing.B) { runHDVariant(b, core.Config{Phase2Only: true}) })
}

// BenchmarkAblationThreadSelection compares main-minus-render differences
// against main-thread-only counters (Table 3's two columns).
func BenchmarkAblationThreadSelection(b *testing.B) {
	b.Run("main-render-diff", func(b *testing.B) { runHDVariant(b, core.Config{}) })
	b.Run("main-only", func(b *testing.B) { runHDVariant(b, core.Config{MainThreadOnly: true}) })
}

// BenchmarkAblationEventCount compares the paper's three events against a
// single event and the full 46-event (multiplexed) filter.
func BenchmarkAblationEventCount(b *testing.B) {
	one := core.DefaultConditions()[:1]
	b.Run("three-events", func(b *testing.B) { runHDVariant(b, core.Config{}) })
	b.Run("ctx-only", func(b *testing.B) { runHDVariant(b, core.Config{Conditions: one}) })
}

// BenchmarkAblationEarlyStop compares end-of-action counter reads against
// the early-window strategy §3.3.1 rejects.
func BenchmarkAblationEarlyStop(b *testing.B) {
	b.Run("full-window", func(b *testing.B) { runHDVariant(b, core.Config{}) })
	b.Run("early-250ms", func(b *testing.B) {
		runHDVariant(b, core.Config{EarlyRead: 250 * simclock.Millisecond})
	})
}

// BenchmarkAblationReset compares the periodic Uncategorized reset against
// never re-checking Normal actions.
func BenchmarkAblationReset(b *testing.B) {
	b.Run("reset-20", func(b *testing.B) { runHDVariant(b, core.Config{}) })
	b.Run("no-reset", func(b *testing.B) { runHDVariant(b, core.Config{ResetEvery: 1 << 30}) })
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks: the cost of the simulation itself.

// BenchmarkSubstrateActionExecution measures one full K9-Mail action
// (scheduler + looper + render + interference), the inner loop of every
// experiment.
func BenchmarkSubstrateActionExecution(b *testing.B) {
	c := corpus.Build()
	a := c.MustApp("K9-Mail")
	s, err := app.NewSession(a, app.LGV10(), 42)
	if err != nil {
		b.Fatal(err)
	}
	act := a.MustAction("Inbox")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Perform(act)
		s.Idle(simclock.Second)
	}
}

// BenchmarkSubstrateCorpusBuild measures corpus assembly (114 apps).
func BenchmarkSubstrateCorpusBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := corpus.Build()
		if len(c.Apps) != 114 {
			b.Fatal("bad corpus")
		}
	}
}

// BenchmarkSubstrateDoctorPipeline measures a monitored action end to end,
// including S-Checker perf sessions and Diagnoser sampling.
func BenchmarkSubstrateDoctorPipeline(b *testing.B) {
	ctx := benchCtx(b)
	a := ctx.Corpus.MustApp("K9-Mail")
	s, err := app.NewSession(a, app.LGV10(), 42)
	if err != nil {
		b.Fatal(err)
	}
	d := core.New(core.Config{})
	d.Attach(s)
	s.AddListener(d)
	act := a.MustAction("Open Email")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Perform(act)
		s.Idle(simclock.Second)
	}
}

// BenchmarkTestbedStudy regenerates the §4.6 test-bed-vs-wild comparison.
func BenchmarkTestbedStudy(b *testing.B) { runExperiment(b, "testbed") }

// BenchmarkFixVerify regenerates the §4.2 fix-verification study.
func BenchmarkFixVerify(b *testing.B) { runExperiment(b, "fixverify") }

// BenchmarkLongitudinalStudy regenerates the multi-day fleet
// detection-latency study.
func BenchmarkLongitudinalStudy(b *testing.B) { runExperiment(b, "longitudinal") }

// BenchmarkThresholdSweep regenerates the filter threshold-sensitivity
// curves.
func BenchmarkThresholdSweep(b *testing.B) { runExperiment(b, "sweep") }

// BenchmarkDeviceGenerality regenerates the cross-device filter check.
func BenchmarkDeviceGenerality(b *testing.B) { runExperiment(b, "devices") }

// BenchmarkResponsivenessImpact regenerates the §4.5 impact study with
// detector costs injected as real work.
func BenchmarkResponsivenessImpact(b *testing.B) { runExperiment(b, "impact") }

// BenchmarkSeedRobustness regenerates the cross-seed robustness study.
func BenchmarkSeedRobustness(b *testing.B) { runExperiment(b, "seeds") }
