// System-wide deployment: the paper's §3.5 future work — Hang Doctor
// generalized into an OS service that supervises every installed app,
// replacing the stock 5-second ANR tool with 100 ms soft-hang detection
// and diagnosis.
//
// A simulated phone runs three apps. The user hops between them; background
// apps keep syncing (their bursts are what preempt the foreground app's
// main thread). The HangService diagnoses bugs in all three apps, produces
// one device-wide Hang Bug Report, and the legacy ANR watchdog — also
// running — never fires once.
package main

import (
	"fmt"

	"hangdoctor"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/system"
)

func main() {
	c := corpus.Build()
	dev, err := system.NewDevice(hangdoctor.LGV10(), 42)
	if err != nil {
		panic(err)
	}
	svc := dev.EnableHangService(hangdoctor.Config{})

	var procs []*system.Process
	for _, name := range []string{"K9-Mail", "AndStatus", "Omni-Notes"} {
		p, err := dev.Install(c.MustApp(name))
		if err != nil {
			panic(err)
		}
		procs = append(procs, p)
	}
	fmt.Printf("device: %s, %d cores, %d apps installed, HangService on\n\n",
		dev.Model.Name, dev.Model.Cores, len(dev.Processes()))

	// The user bounces between apps; ~70 actions per app overall.
	for round := 0; round < 7; round++ {
		for _, p := range procs {
			if err := dev.SwitchTo(p); err != nil {
				panic(err)
			}
			for _, act := range corpus.Trace(p.App, uint64(100+round), 10) {
				p.Session.Perform(act)
				dev.Idle(hangdoctor.Second)
			}
		}
	}

	fmt.Println("soft hang bugs diagnosed across the device:")
	for _, f := range svc.SoftHangBugsFound() {
		fmt.Println("  " + f)
	}

	fmt.Println("\ndevice-wide Hang Bug Report:")
	fmt.Print(svc.DeviceReport().Render())

	fmt.Printf("\nstock ANR tool (5s timeout) dialogs shown: %d\n", len(svc.ANRs()))
	fmt.Println("every one of the hangs above was invisible to it")
}
