// Filter adaptation: the paper's §3.3.1 extension. A device whose filter
// thresholds were configured badly (here: a page-fault threshold far too
// high, so the memory-signature Omni-Notes bugs slip through) collects
// labeled S-Checker readings and runs the light adaptation pass to repair
// its thresholds on-device, falling back to the heavy (server-side)
// re-selection when nudging thresholds cannot fix the filter.
package main

import (
	"fmt"

	"hangdoctor"
)

// runWith runs Omni-Notes under a doctor configured with conds and reports
// how it did.
func runWith(a *hangdoctor.App, conds []hangdoctor.Condition, collect bool, seed uint64) (*hangdoctor.Doctor, int) {
	sess, err := hangdoctor.NewSession(a, hangdoctor.LGV10(), seed)
	if err != nil {
		panic(err)
	}
	doctor := hangdoctor.Monitor(sess, hangdoctor.Config{
		Conditions:        conds,
		CollectAdaptation: collect,
	})
	hangdoctor.RunTrace(sess, hangdoctor.Trace(a, seed, 200), hangdoctor.Second)
	return doctor, len(doctor.Detections())
}

func main() {
	c := hangdoctor.LoadCorpus()
	omni := c.MustApp("Omni-Notes")

	// A misconfigured filter: the page-fault threshold is 50x the paper's,
	// so Omni-Notes' memory-bound bugs (page-fault signature, Table 6)
	// never look suspicious.
	bad := hangdoctor.DefaultConditions()
	bad[2].Threshold = 25_000_000

	doctor, found := runWith(omni, bad, true, 11)
	fmt.Printf("misconfigured filter: %d detections on Omni-Notes (3 bugs seeded)\n", found)

	data := doctor.AdaptationData()
	bugs := 0
	for _, d := range data {
		if d.IsBug {
			bugs++
		}
	}
	fmt.Printf("collected %d labeled S-Checker readings (%d from bug hangs)\n", len(data), bugs)

	// Light adaptation: keep the same three events, re-fit the thresholds.
	res, ok := hangdoctor.LightAdapt(bad, data)
	if !ok {
		fmt.Println("light adaptation insufficient; a deployment would escalate to heavy adaptation")
		return
	}
	fmt.Println("light adaptation succeeded; repaired conditions:")
	for _, cond := range res.Conditions {
		fmt.Printf("  %-20s > %d\n", cond.Event.Name(), cond.Threshold)
	}
	fmt.Printf("residual errors on collected data: FN=%d FP=%d\n", res.FN, res.FP)

	_, found2 := runWith(omni, res.Conditions, false, 12)
	fmt.Printf("\nre-run with adapted filter: %d detections\n", found2)
	if found2 > found {
		fmt.Println("adaptation recovered the page-fault-signature bugs")
	}
}
