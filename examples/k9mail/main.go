// K9-Mail walk-through: the paper's §4.3 example, end to end, on the
// simulated corpus app. Shows the two-phase pipeline on the HtmlCleaner
// bug (Figure 6) and the state machine pruning the Folders/Inbox UI hangs
// (Figure 7).
package main

import (
	"fmt"

	"hangdoctor"
)

func main() {
	c := hangdoctor.LoadCorpus()
	k9 := c.MustApp("K9-Mail")

	sess, err := hangdoctor.NewSession(k9, hangdoctor.LGV10(), 42)
	if err != nil {
		panic(err)
	}
	doctor := hangdoctor.Monitor(sess, hangdoctor.Config{})

	fmt.Println("driving 150 user actions on K9-Mail (Open Email, Inbox, Folders, ...)")
	hangs := 0
	for _, act := range hangdoctor.Trace(k9, 42, 150) {
		exec := sess.Perform(act)
		if exec.ResponseTime() > hangdoctor.PerceivableDelay {
			hangs++
		}
		sess.Idle(hangdoctor.Second)
	}
	fmt.Printf("observed %d soft hangs\n\n", hangs)

	fmt.Println("state transitions (Figure 3 / Figure 7):")
	for _, tr := range doctor.Transitions() {
		fmt.Printf("  %-30s %-10s %-13v -> %v (execution %d)\n",
			tr.ActionUID, tr.Phase, tr.From, tr.To, tr.ExecSeq)
	}

	fmt.Println("\nconfirmed diagnoses (Figure 6's outcome):")
	for _, det := range doctor.Detections() {
		fmt.Printf("  %s\n    root cause %s (%s:%d), occurrence %.0f%%, diagnosed %d times, worst hang %v\n",
			det.ActionUID, det.RootCause, det.File, det.Line,
			100*det.Occurrence, det.Count, det.MaxResponse)
	}

	fmt.Println("\nHang Bug Report:")
	fmt.Print(doctor.Report().Render())

	// Offline tools now know about the APIs Hang Doctor diagnosed.
	fmt.Println("\nnewly learned blocking APIs:")
	for _, key := range []string{
		"org.htmlcleaner.HtmlCleaner.clean",
		"org.apache.james.mime4j.parser.MimeStreamParser.parse",
	} {
		fmt.Printf("  %-60s known=%v\n", key, c.Registry.IsKnownBlocking(key))
	}
}
