// Quickstart: embed Hang Doctor in your own (simulated) app and let it find
// a blocking operation your offline tools don't know about.
//
// The app has two screens. "Open Notes" calls an undocumented disk-cache
// API on the main thread — a soft hang bug no static scanner flags, because
// the API is not in any known-blocking database. "Browse" runs legitimate
// but heavy UI work that hangs just as perceptibly. Hang Doctor separates
// the two at runtime and reports only the real bug.
package main

import (
	"fmt"

	"hangdoctor"
)

func main() {
	// 1. An API universe: the platform classes plus our app's own library.
	reg := hangdoctor.NewRegistry()
	cacheClass := reg.DefineClass("com.example.notes.NoteCache", false, "", false)
	warmUp := reg.DefineAPI(cacheClass, "warmUp", "", 42, 0) // never documented blocking
	setText, _ := reg.API("android.widget.TextView.setText")

	// 2. The app model: actions -> input events -> operations.
	bug := &hangdoctor.Bug{ID: "NotesApp/1", IssueID: "1",
		Description: "NoteCache.warmUp does disk I/O on the main thread"}
	notes := &hangdoctor.App{
		Name:     "NotesApp",
		Registry: reg,
		Bugs:     []*hangdoctor.Bug{bug},
		Actions: []*hangdoctor.Action{
			{
				Name: "Open Notes",
				Events: []*hangdoctor.InputEvent{{Name: "evt0", Ops: []*hangdoctor.Op{{
					Name: "warmUp",
					API:  warmUp,
					// ~50ms CPU + 10 disk waits of ~22ms: a 250-300ms hang
					// when the cache is cold (70% of executions).
					Heavy:    hangdoctor.IOHeavy(50*hangdoctor.Millisecond, 10, 22*hangdoctor.Millisecond),
					Manifest: 0.7,
					Bug:      bug,
				}}}},
			},
			{
				Name: "Browse",
				Events: []*hangdoctor.InputEvent{{Name: "evt0", Ops: []*hangdoctor.Op{{
					Name: "setText",
					API:  setText,
					// 130ms of legitimate main-thread layout plus 12 frames
					// of render work: a perceivable hang, but not a bug.
					Heavy: hangdoctor.UIWork(130*hangdoctor.Millisecond, 12),
				}}}},
			},
		},
	}

	// 3. Run the app on a simulated LG V10 with Hang Doctor attached.
	sess, err := hangdoctor.NewSession(notes, hangdoctor.LGV10(), 7)
	if err != nil {
		panic(err)
	}
	doctor := hangdoctor.Monitor(sess, hangdoctor.Config{})

	for i := 0; i < 40; i++ {
		act := notes.Actions[i%2]
		exec := sess.Perform(act)
		if rt := exec.ResponseTime(); rt > hangdoctor.PerceivableDelay {
			fmt.Printf("soft hang: %-12s %9v  (state now %v)\n",
				act.Name, rt, doctor.State(act.UID))
		}
		sess.Idle(hangdoctor.Second)
	}

	// 4. What the developer sees.
	fmt.Println("\nHang Bug Report:")
	fmt.Print(doctor.Report().Render())

	fmt.Println("\naction states:")
	for _, act := range notes.Actions {
		fmt.Printf("  %-12s -> %v\n", act.Name, doctor.State(act.UID))
	}

	// 5. The feedback loop: the diagnosed API is now in the database that
	// offline tools scan with.
	fmt.Printf("\nNoteCache.warmUp known blocking after the run: %v\n",
		reg.IsKnownBlocking("com.example.notes.NoteCache.warmUp"))
}
