// Field study: the paper's deployment model — Hang Doctor embedded in an
// app shipped to a fleet of users, each device reporting anonymized Hang
// Bug Report entries that a developer-side service merges (§3.2, §4.2).
//
// Twenty simulated users run AndStatus with different usage mixes and
// devices; the merged report reproduces Figure 2(b): entries ordered by
// occurrence share with per-device spread.
package main

import (
	"bytes"
	"fmt"

	"hangdoctor"
)

func main() {
	c := hangdoctor.LoadCorpus()
	andstatus := c.MustApp("AndStatus")

	devices := []func() hangdoctor.Device{
		hangdoctor.LGV10, hangdoctor.Nexus5, hangdoctor.GalaxyS3,
	}

	const users = 20
	const actionsPerUser = 300

	fleet := hangdoctor.NewReport()
	found := map[string]bool{}
	var uploadedBytes int
	for u := 0; u < users; u++ {
		dev := devices[u%len(devices)]()
		dev.Name = fmt.Sprintf("user-%02d (%s)", u, dev.Name)
		sess, err := hangdoctor.NewSession(andstatus, dev, uint64(1000+u))
		if err != nil {
			panic(err)
		}
		doctor := hangdoctor.Monitor(sess, hangdoctor.Config{})
		hangdoctor.RunTrace(sess, hangdoctor.Trace(andstatus, uint64(1000+u), actionsPerUser), hangdoctor.Second)
		for _, det := range doctor.Detections() {
			found[det.RootCause] = true
		}

		// The upload path a real deployment uses: the device anonymizes its
		// identifier, serializes the report to JSON, and the developer-side
		// service parses and merges it.
		var wire bytes.Buffer
		if err := doctor.Report().Anonymize("fleet-salt").Export(&wire); err != nil {
			panic(err)
		}
		uploadedBytes += wire.Len()
		imported, err := hangdoctor.ImportReport(&wire)
		if err != nil {
			panic(err)
		}
		fleet.Merge(imported)
	}

	fmt.Printf("fleet: %d users x %d actions each, %d bytes of anonymized JSON uploaded\n\n", users, actionsPerUser, uploadedBytes)
	fmt.Println("merged Hang Bug Report (Figure 2(b)):")
	fmt.Print(fleet.Render())

	fmt.Println("\nper-entry device coverage:")
	for _, e := range fleet.Entries() {
		fmt.Printf("  %-66s seen on %d/%d devices (%.0f%%)\n",
			e.RootCause+" @ "+e.ActionUID, len(e.Devices), users,
			100*float64(len(e.Devices))/float64(users))
	}

	fmt.Printf("\ndistinct root causes diagnosed across the fleet: %d (AndStatus seeds 3 bugs)\n", len(found))
}
