package sim

import (
	"container/heap"
	"container/list"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"

	"hangdoctor/internal/core"
	"hangdoctor/internal/fleet"
	"hangdoctor/internal/simrand"
)

// bench_test.go: the tentpole's evidence. BenchmarkSimEngine produces the
// rows committed to BENCH_sim.json:
//
//   baseline-pr7        faithful replica of the PR 7 fleetload scheduler
//                       (one container/heap, Sprintf names, SyntheticUpload,
//                       per-device BinaryEncoder/Decoder LRUs, SubmitWireWait)
//   inproc/workers=N    the engine end to end into a sharded aggregator —
//                       the ≥10× claim is inproc/workers=8 vs baseline-pr7
//   sched/workers=N     discard sink: scheduler + draw + entry fill only —
//                       the worker-scaling gate runs on these rows
//   tick                warm steady-state tick, 0 allocs/op gate
//   tick-http           warm tick through the full binary document encode
//
// Every row reports ns per device upload (Uploads = b.N), so throughput is
// 1e9/ns_per_op uploads/s. SIM_BENCH_DEVICES overrides the resident fleet
// size (default 1e6; BENCH_sim.json is generated at the default).

func benchDevices() int {
	if s := os.Getenv("SIM_BENCH_DEVICES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1_000_000
}

const benchEntries = 4

func BenchmarkSimEngine(b *testing.B) {
	devices := benchDevices()
	b.Run("baseline-pr7", func(b *testing.B) {
		benchBaselinePR7(b, devices, benchEntries)
	})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("inproc/workers=%d", w), func(b *testing.B) {
			benchEngine(b, Config{
				Devices: devices,
				Entries: benchEntries,
				Workers: w,
				Seed:    1,
			}, true)
		})
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sched/workers=%d", w), func(b *testing.B) {
			benchEngine(b, Config{
				Devices: devices,
				Entries: benchEntries,
				Workers: w,
				Seed:    1,
			}, false)
		})
	}
	b.Run("tick", func(b *testing.B) {
		b.ReportAllocs()
		benchEngine(b, Config{
			Devices: 4096,
			Entries: benchEntries,
			Workers: 1,
			Seed:    1,
		}, false)
	})
	b.Run("tick-http", func(b *testing.B) {
		b.ReportAllocs()
		benchEngine(b, Config{
			Devices:     4096,
			Entries:     benchEntries,
			Workers:     1,
			Seed:        1,
			discardHTTP: true,
		}, false)
	})
}

// benchEngine builds a fresh engine sized to b.N uploads (build excluded
// from the measurement) and runs it to completion.
func benchEngine(b *testing.B, cfg Config, inproc bool) {
	cfg.Uploads = int64(b.N)
	var agg *fleet.Aggregator
	if inproc {
		agg = fleet.NewAggregator(fleet.Config{Shards: 8, QueueDepth: 4096})
		cfg.Agg = agg
	}
	eng, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	st, err := eng.Run()
	if inproc {
		agg.Close() // the measurement covers every merge, like the PR 7 path
	}
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if st.Uploads+st.Failed != int64(b.N) || st.Failed != 0 {
		b.Fatalf("delivered %d/%d uploads (failed=%d)", st.Uploads, b.N, st.Failed)
	}
	b.ReportMetric(st.DeviceSecondsPerSec(), "simdev-s/s")
}

// BenchmarkSimEngineHTTP is the small wire-path row: the engine against a
// real fleetd handler over loopback HTTP. Not part of the scaling gates —
// the HTTP stack dominates — but it keeps the full-protocol cost visible.
func BenchmarkSimEngineHTTP(b *testing.B) {
	agg := fleet.NewAggregator(fleet.Config{Shards: 4})
	srv := httptest.NewServer(fleet.NewServerDict(agg, 65536).Handler())
	defer srv.Close()
	defer agg.Close()
	eng, err := New(Config{
		Devices: 8192,
		Uploads: int64(b.N),
		Entries: benchEntries,
		Workers: 2,
		Seed:    1,
		Nodes:   []string{srv.URL},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	st, err := eng.Run()
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if st.Failed != 0 {
		b.Fatalf("failed=%d", st.Failed)
	}
}

// ---------------------------------------------------------------------------
// PR 7 baseline replica
//
// A faithful copy of the scheduler cmd/fleetload ran before this PR: one
// global container/heap over all devices, device names re-formatted with
// fmt.Sprintf on every event, fleet.SyntheticUpload building a full
// core.Report per upload, a client-side BinaryEncoder LRU and server-side
// BinaryDecoder LRU (evictions drive resyncs), and one blocking
// SubmitWireWait per upload. This is the denominator of the ≥10× claim, so
// it must stay byte-for-byte the old algorithm — do not optimize it.

type pr7Event struct {
	at  int64
	dev int32
}

type pr7Heap []pr7Event

func (h pr7Heap) Len() int { return len(h) }
func (h pr7Heap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].dev < h[j].dev
}
func (h pr7Heap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pr7Heap) Push(x any)   { *h = append(*h, x.(pr7Event)) }
func (h *pr7Heap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

type pr7LRU struct {
	cap int
	l   *list.List
	m   map[int32]*list.Element
}

type pr7Item struct {
	key int32
	val any
}

func newPR7LRU(cap int) *pr7LRU {
	return &pr7LRU{cap: cap, l: list.New(), m: make(map[int32]*list.Element)}
}

func (c *pr7LRU) get(k int32) (any, bool) {
	el, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.l.MoveToFront(el)
	return el.Value.(*pr7Item).val, true
}

func (c *pr7LRU) put(k int32, v any) {
	c.m[k] = c.l.PushFront(&pr7Item{key: k, val: v})
	for len(c.m) > c.cap {
		oldest := c.l.Back()
		c.l.Remove(oldest)
		delete(c.m, oldest.Value.(*pr7Item).key)
	}
}

func benchBaselinePR7(b *testing.B, devices, entries int) {
	const seed = int64(1)
	dictCap := devices / 4 // the old -sim-dict default ratio (250k at 1e6)
	if dictCap < 1 {
		dictCap = 1
	}
	agg := fleet.NewAggregator(fleet.Config{Shards: 8, QueueDepth: 4096})
	rng := simrand.New(uint64(seed)).Derive("fleetload/sim")

	const hourMS = 3_600_000
	sched := make(pr7Heap, devices)
	for d := range sched {
		sched[d] = pr7Event{at: rng.Int63n(hourMS), dev: int32(d)}
	}
	heap.Init(&sched)

	encs := newPR7LRU(4 * dictCap)
	decs := newPR7LRU(dictCap)
	seq := make(map[int32]int64, devices/8)

	b.ResetTimer()
	for u := 0; u < b.N; u++ {
		ev := sched[0]
		seq[ev.dev]++
		device := fmt.Sprintf("device-%07d", ev.dev)
		rep := fleet.SyntheticUpload(seed+int64(ev.dev)*7919+seq[ev.dev], device, entries)

		var enc *core.BinaryEncoder
		if v, ok := encs.get(ev.dev); ok {
			enc = v.(*core.BinaryEncoder)
		} else {
			enc = core.NewBinaryEncoder(device)
			encs.put(ev.dev, enc)
		}
		doc := enc.Encode(rep)

		var dec *core.BinaryDecoder
		if v, ok := decs.get(ev.dev); ok {
			dec = v.(*core.BinaryDecoder)
		} else {
			dec = core.NewBinaryDecoder()
			decs.put(ev.dev, dec)
		}
		wr, err := dec.Decode(doc)
		if err != nil {
			var dm *core.DictMismatchError
			if !errors.As(err, &dm) {
				b.Fatalf("decode: %v", err)
			}
			enc.Reset()
			doc = enc.Encode(rep)
			if wr, err = dec.Decode(doc); err != nil {
				b.Fatalf("resync resend: %v", err)
			}
		}
		if err := agg.SubmitWireWait(wr); err != nil {
			b.Fatalf("submit: %v", err)
		}

		sched[0].at = ev.at + hourMS - hourMS/10 + rng.Int63n(hourMS/5)
		heap.Fix(&sched, 0)
	}
	agg.Close()
	b.StopTimer()
}
