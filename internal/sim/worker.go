package sim

import (
	"errors"
	"net/http"
	"sync/atomic"
	"time"

	"hangdoctor/internal/core"
	"hangdoctor/internal/fleet"
	"hangdoctor/internal/obs"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
)

// worker.go: the sharded scheduler's inner loop. One worker owns one
// device partition, one event heap, one set of upload buffers, and one
// HTTP transport; nothing on the tick path is shared, so the loop runs
// lock-free and allocation-free between epoch barriers.

// wireBuf is one in-process upload buffer: a preallocated entry slice the
// worker fills with Batch coalesced device uploads, submitted zero-copy
// via SubmitWireAcked. The buffer cycles through the worker's free list —
// it is reusable only after the aggregator's merge-completion ack, because
// the shards read the entry slice until then.
type wireBuf struct {
	entries []core.WireEntry
	wr      core.WireReport
	ack     *fleet.WireAck
	n       int // device uploads coalesced so far
}

func (b *wireBuf) reset() {
	b.entries = b.entries[:0]
	b.n = 0
}

type worker struct {
	e    *Engine
	id   int
	mode int8
	h    fourHeap

	// Published counter mirrors: written by publish() at epoch
	// boundaries (and by ack callbacks), read by metric projections and
	// the final Stats collection.
	uploads, entriesN, failed, resyncs, serverResyncs, throttled,
	wireBytes, deviceMS, poolHits, poolWaits, epochNum atomic.Int64

	// Tick-local accumulation; folded into the mirrors off the hot path.
	lUploads, lEntries, lFailed, lResyncs, lServerResyncs, lThrottled,
	lWireBytes, lDeviceMS, lPoolHits, lPoolWaits int64

	abortErr error

	// Per-tick draw scratch, shared by every mode (and reused verbatim
	// when a 409 forces the HTTP mode to re-encode the same content).
	hangs [maxEntries]uint8
	rtMS  [maxEntries]uint16

	// In-process sink.
	cur  *wireBuf
	free chan *wireBuf
	nbuf int

	// HTTP sink.
	dw     core.DocWriter
	delta  []string
	devRef [1]uint32
	client *http.Client
	jitter *simrand.Rand // wall-clock backoff only — never content draws

	depthG *obs.Gauge
	waitH  *obs.Histogram
}

func (w *worker) init(e *Engine, id, devs int) {
	w.e = e
	w.id = id
	w.mode = e.mode
	w.h.init(devs)
	bufEntries := e.cfg.Batch * e.entriesPer
	switch e.mode {
	case modeInproc:
		w.nbuf = 4
		w.free = make(chan *wireBuf, w.nbuf)
		for i := 0; i < w.nbuf; i++ {
			b := &wireBuf{entries: make([]core.WireEntry, 0, bufEntries)}
			b.ack = fleet.NewWireAck(w.ackFunc(b))
			w.free <- b
		}
	case modeDiscard:
		w.cur = &wireBuf{entries: make([]core.WireEntry, 0, bufEntries)}
	case modeHTTP, modeDiscardHTTP:
		w.delta = make([]string, 0, 4*e.entriesPer+1)
		if e.mode == modeHTTP {
			w.client = e.cfg.Client
			if w.client == nil {
				// One tuned transport per worker: every device this worker
				// simulates reuses the same warm connections to its node.
				w.client = &http.Client{
					Timeout: 30 * time.Second,
					Transport: &http.Transport{
						MaxIdleConns:        16,
						MaxIdleConnsPerHost: 16,
						IdleConnTimeout:     90 * time.Second,
					},
				}
			}
			w.jitter = simrand.New(uint64(e.seed)*0x9e3779b97f4a7c15 + uint64(id) + 1)
		}
	}
}

// ackFunc builds the merge-completion callback for one buffer: account a
// failed batch, then return the buffer to the free list. Runs on an
// aggregator goroutine, hence the direct atomics.
func (w *worker) ackFunc(b *wireBuf) func(error) {
	return func(err error) {
		if err != nil {
			n := int64(b.n)
			w.failed.Add(n)
			w.uploads.Add(-n)
			w.entriesN.Add(-n * int64(w.e.entriesPer))
		}
		b.reset()
		w.free <- b
	}
}

// publish folds tick-local counters into the shared mirrors.
func (w *worker) publish() {
	flush := func(c *atomic.Int64, l *int64) {
		if *l != 0 {
			c.Add(*l)
			*l = 0
		}
	}
	flush(&w.uploads, &w.lUploads)
	flush(&w.entriesN, &w.lEntries)
	flush(&w.failed, &w.lFailed)
	flush(&w.resyncs, &w.lResyncs)
	flush(&w.serverResyncs, &w.lServerResyncs)
	flush(&w.throttled, &w.lThrottled)
	flush(&w.wireBytes, &w.lWireBytes)
	flush(&w.deviceMS, &w.lDeviceMS)
	flush(&w.poolHits, &w.lPoolHits)
	flush(&w.poolWaits, &w.lPoolWaits)
}

// run is the worker goroutine: process every event inside the current
// epoch, flush, rendezvous at the barrier, repeat until the partition's
// quotas drain (leave the barrier and exit) or a stop/crash unwinds it.
func (w *worker) run() {
	defer w.e.wg.Done()
	defer w.e.bar.leave()
	defer w.publish()
	e := w.e
	epochEnd := e.cfg.EpochMS
	epoch := int64(0)
	for {
		for w.h.len() > 0 && w.h.minKey() < epochEnd {
			w.tick()
			if w.abortErr != nil {
				return
			}
		}
		w.flush()
		if w.abortErr != nil {
			return
		}
		if w.h.len() == 0 {
			w.drainBufs()
			return
		}
		epoch++
		w.epochNum.Store(epoch)
		w.publish()
		if w.depthG != nil {
			w.depthG.Set(int64(w.h.len()))
		}
		// The barrier's fast path (last arrival releases inline) never
		// selects on the stop channel, so poll it once per epoch here.
		select {
		case <-e.stopCh:
			return
		default:
		}
		waitStart := time.Now()
		if !e.bar.await(e.stopCh, e.crash) {
			w.abortErr = w.stopCause()
			return
		}
		if w.waitH != nil {
			w.waitH.Observe(float64(time.Since(waitStart).Microseconds()) / 1e3)
		}
		epochEnd += e.cfg.EpochMS
	}
}

// stopCause distinguishes a crash-unwind (an error: uploads were lost)
// from a voluntary Stop (not an error).
func (w *worker) stopCause() error {
	if w.e.crash != nil {
		select {
		case <-w.e.crash:
			return fleet.ErrCrashed
		default:
		}
	}
	return nil
}

// tick simulates one device upload: draw the tick stream (fixed order —
// restart, then hangs/response per entry, then the cadence advance), emit
// through the sink, and reschedule the device on the heap.
func (w *worker) tick() {
	e := w.e
	dev := w.h.minDev()
	seq := e.seq[dev] + 1
	e.seq[dev] = seq
	r := tickRand{x: streamSeed(e.seed, dev, seq)}
	restart := false
	if rr := r.next(); e.cfg.RestartEvery > 1 && rr%uint64(e.cfg.RestartEvery) == 0 {
		restart = true
	}
	K := e.entriesPer
	for j := 0; j < K; j++ {
		w.hangs[j] = uint8(1 + r.next()%3)
		w.rtMS[j] = uint16(100 + r.next()%1900)
	}
	adv := e.periodMS - e.periodMS/10 + int64(r.next()%uint64(e.jitterMS))
	if adv < 1 {
		adv = 1
	}
	switch w.mode {
	case modeInproc:
		w.emitInproc(dev, restart)
	case modeDiscard:
		w.emitDiscard(dev, restart)
	case modeHTTP:
		w.emitHTTP(dev, restart)
	case modeDiscardHTTP:
		w.emitDiscardHTTP(dev, restart)
	}
	w.lDeviceMS += adv
	e.left[dev]--
	if e.left[dev] == 0 {
		w.h.popMin()
	} else {
		w.h.advanceMin(adv)
	}
}

// fillEntries appends this tick's K wire entries — template identity,
// drawn counters, the device's interned name slice — into the buffer.
// Everything it touches is preallocated: zero allocations warm.
func (w *worker) fillEntries(b *wireBuf, dev uint32) {
	e := w.e
	p := e.pool
	K := e.entriesPer
	base := int(dev) * K
	for j := 0; j < K; j++ {
		t := &e.tmpl[base+j]
		hangs := int(w.hangs[j])
		rt := simclock.Duration(w.rtMS[j]) * simclock.Millisecond
		b.entries = append(b.entries, core.WireEntry{
			Key:         p.keys[t.key],
			App:         p.apps[t.app],
			ActionUID:   p.actions[t.action],
			RootCause:   p.roots[t.op],
			File:        p.files[t.op],
			Line:        opLine(t.op),
			ViaCaller:   opViaCaller(t.op),
			Hangs:       hangs,
			Devices:     e.names[dev : dev+1],
			MaxResponse: rt,
			SumResponse: simclock.Duration(hangs) * rt,
		})
	}
	b.n++
	w.lUploads++
	w.lEntries += int64(K)
}

func (w *worker) emitInproc(dev uint32, restart bool) {
	if restart {
		w.lResyncs++
	}
	b := w.cur
	if b == nil {
		b = w.acquire()
		if b == nil {
			return // abortErr set
		}
		w.cur = b
	}
	w.fillEntries(b, dev)
	if b.n >= w.e.cfg.Batch {
		w.flushInproc()
	}
}

func (w *worker) emitDiscard(dev uint32, restart bool) {
	if restart {
		w.lResyncs++
	}
	w.fillEntries(w.cur, dev)
	if w.cur.n >= w.e.cfg.Batch {
		w.cur.reset()
	}
}

// acquire takes a free buffer, blocking on the merge-completion acks when
// all buffers are in flight (natural backpressure from the aggregator).
// It returns nil — with abortErr set — if the aggregator crashed, since
// crashed acks never come back.
func (w *worker) acquire() *wireBuf {
	select {
	case b := <-w.free:
		w.lPoolHits++
		return b
	default:
	}
	w.lPoolWaits++
	select {
	case b := <-w.free:
		return b
	case <-w.e.crash:
		w.abortErr = fleet.ErrCrashed
		return nil
	}
}

// flush pushes any partial buffer out at an epoch boundary (or at drain),
// so batching trades throughput for at most one epoch of delivery lag.
func (w *worker) flush() {
	switch w.mode {
	case modeInproc:
		w.flushInproc()
	case modeDiscard:
		w.cur.reset()
	}
}

// flushInproc submits the current buffer on the acked zero-copy path and
// relinquishes it until the callback recycles it.
func (w *worker) flushInproc() {
	b := w.cur
	if b == nil || b.n == 0 {
		return
	}
	w.cur = nil
	b.wr.Entries = b.entries
	if err := w.e.cfg.Agg.SubmitWireAcked(&b.wr, b.ack); err != nil {
		// Synchronous rejection: the callback never fires, we still own b.
		n := int64(b.n)
		w.lFailed += n
		w.lUploads -= n
		w.lEntries -= n * int64(w.e.entriesPer)
		b.reset()
		w.free <- b
		if errors.Is(err, fleet.ErrCrashed) || errors.Is(err, fleet.ErrClosed) {
			w.abortErr = err
		}
	}
}

// drainBufs reclaims every buffer before the worker exits, which is the
// proof that no ack callback can fire after Run returns.
func (w *worker) drainBufs() {
	for i := 0; i < w.nbuf; i++ {
		select {
		case <-w.free:
		case <-w.e.crash:
			w.abortErr = fleet.ErrCrashed
			return
		}
	}
}
