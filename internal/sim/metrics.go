package sim

import (
	"strconv"

	"hangdoctor/internal/obs"
)

// metrics.go: the engine's observability surface, projected lock-free —
// every counter is a CounterFunc summing per-worker atomics, so scraping
// never touches the tick path. Per-worker gauges (heap depth) and the
// barrier-wait histogram are written only at epoch boundaries.

func (e *Engine) registerMetrics(reg *obs.Registry) {
	sum := func(f func(*worker) int64) func() int64 {
		return func() int64 {
			var t int64
			for i := range e.workers {
				t += f(&e.workers[i])
			}
			return t
		}
	}
	reg.CounterFunc("hangdoctor_sim_uploads_total",
		"Device uploads delivered by the simulation engine.",
		sum(func(w *worker) int64 { return w.uploads.Load() }))
	reg.CounterFunc("hangdoctor_sim_entries_total",
		"Hang entries across delivered uploads.",
		sum(func(w *worker) int64 { return w.entriesN.Load() }))
	reg.CounterFunc("hangdoctor_sim_failed_total",
		"Uploads lost to sink errors.",
		sum(func(w *worker) int64 { return w.failed.Load() }))
	reg.CounterFunc("hangdoctor_sim_resyncs_total",
		"Client-side dictionary resets (simulated device restarts).",
		sum(func(w *worker) int64 { return w.resyncs.Load() }))
	reg.CounterFunc("hangdoctor_sim_server_resyncs_total",
		"Server-initiated 409 dictionary resyncs absorbed.",
		sum(func(w *worker) int64 { return w.serverResyncs.Load() }))
	reg.CounterFunc("hangdoctor_sim_throttled_total",
		"429 backpressure responses absorbed.",
		sum(func(w *worker) int64 { return w.throttled.Load() }))
	reg.CounterFunc("hangdoctor_sim_wire_bytes_total",
		"Binary document bytes put on the wire (HTTP mode).",
		sum(func(w *worker) int64 { return w.wireBytes.Load() }))
	reg.CounterFunc("hangdoctor_sim_device_ms_total",
		"Simulated device time advanced, summed over devices (ms).",
		sum(func(w *worker) int64 { return w.deviceMS.Load() }))
	reg.CounterFunc("hangdoctor_sim_encode_pool_hits_total",
		"Upload-buffer acquisitions served without waiting on an ack.",
		sum(func(w *worker) int64 { return w.poolHits.Load() }))
	reg.CounterFunc("hangdoctor_sim_encode_pool_waits_total",
		"Upload-buffer acquisitions that blocked on merge completion.",
		sum(func(w *worker) int64 { return w.poolWaits.Load() }))
	reg.GaugeFunc("hangdoctor_sim_epoch",
		"Minimum virtual-time epoch across workers (epoch lag floor).",
		func() int64 {
			var min int64 = -1
			for i := range e.workers {
				if ep := e.workers[i].epochNum.Load(); min < 0 || ep < min {
					min = ep
				}
			}
			if min < 0 {
				min = 0
			}
			return min
		})
	depth := reg.GaugeVec("hangdoctor_sim_heap_depth",
		"Devices still scheduled on each worker's event heap.", "worker")
	wait := reg.Histogram("hangdoctor_sim_epoch_wait_ms",
		"Barrier wait at virtual-time epoch boundaries (ms).",
		obs.ExpBuckets(0.01, 2, 16))
	for i := range e.workers {
		e.workers[i].depthG = depth.With(strconv.Itoa(i))
		e.workers[i].waitH = wait
	}
}
