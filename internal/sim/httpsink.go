package sim

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"time"

	"hangdoctor/internal/core"
	"hangdoctor/internal/simclock"
)

// httpsink.go: the HTTP mode — real binary-protocol uploads against
// fleetd nodes, exercising the whole ingest edge (dictionary deltas, 409
// resync round trips, 429 backpressure) the way a fleet of devices would.
// The document encoder is core.DocWriter fed from the device's
// precomputed dictionary refs, so the steady-state encode allocates
// nothing; only the HTTP request machinery itself allocates.

// emitHTTP delivers one device upload to the device's ring-routed node.
func (w *worker) emitHTTP(dev uint32, restart bool) {
	e := w.e
	if restart {
		// Simulated device restart: the device-side encoder state is gone,
		// the next document carries the full dictionary.
		w.lResyncs++
		e.dictLen[dev] = 0
	}
	full := e.dictLen[dev] == 0
	doc := w.buildDoc(dev, full)
	w.postDoc(dev, doc, full)
}

// emitDiscardHTTP encodes the document and drops it — the calibration
// mode that isolates scheduler + encode cost from the network.
func (w *worker) emitDiscardHTTP(dev uint32, restart bool) {
	e := w.e
	if restart {
		w.lResyncs++
		e.dictLen[dev] = 0
	}
	doc := w.buildDoc(dev, e.dictLen[dev] == 0)
	e.dictLen[dev] = e.dictSize[dev]
	w.lUploads++
	w.lEntries += int64(e.entriesPer)
	w.lWireBytes += int64(len(doc))
}

// buildDoc encodes this tick's upload. A full document reconstructs the
// device's dictionary delta in the exact first-use order the build phase
// assigned refs in (a new ref is always the next integer, so "ref ==
// len(delta)+1" recovers the assignment walk); a steady-state document
// sends no strings at all against the committed base.
func (w *worker) buildDoc(dev uint32, full bool) []byte {
	e := w.e
	p := e.pool
	K := e.entriesPer
	base := int(dev) * K
	dictBase := 0
	delta := w.delta[:0]
	if full {
		for j := 0; j < K; j++ {
			t := &e.tmpl[base+j]
			if int(t.appRef) == len(delta)+1 {
				delta = append(delta, p.apps[t.app])
			}
			if int(t.actRef) == len(delta)+1 {
				delta = append(delta, p.actions[t.action])
			}
			if int(t.rootRef) == len(delta)+1 {
				delta = append(delta, p.roots[t.op])
			}
			if int(t.fRef) == len(delta)+1 {
				delta = append(delta, p.files[t.op])
			}
		}
		delta = append(delta, e.names[dev]) // the device's own ref, always last
	} else {
		dictBase = int(e.dictSize[dev])
	}
	w.delta = delta
	w.dw.Begin(e.names[dev], dictBase, delta, K)
	w.devRef[0] = uint32(e.dictSize[dev])
	for j := 0; j < K; j++ {
		t := &e.tmpl[base+j]
		hangs := int(w.hangs[j])
		rt := simclock.Duration(w.rtMS[j]) * simclock.Millisecond
		w.dw.Entry(uint32(t.appRef), uint32(t.actRef), uint32(t.rootRef), uint32(t.fRef),
			opLine(t.op), opViaCaller(t.op), hangs, w.devRef[:], rt, simclock.Duration(hangs)*rt)
	}
	return w.dw.Finish()
}

// postDoc drives one upload through the protocol state machine: 202
// commits the dictionary, 409 resets it and resends the SAME tick content
// in full (the draw scratch is still live), 429 backs off on the wall
// clock with jitter from a non-content stream, transport errors retry.
// Retries exhausted counts the upload as failed and moves on — the
// determinism tests assert Failed is zero before comparing folds.
func (w *worker) postDoc(dev uint32, doc []byte, full bool) {
	e := w.e
	url := e.nodeURL[e.nodeIdx[dev]]
	for attempt := 0; ; attempt++ {
		if attempt > e.cfg.MaxRetries {
			w.lFailed++
			return
		}
		status, retryAfter, err := w.post(url, doc)
		switch {
		case err == nil && status == http.StatusAccepted:
			e.dictLen[dev] = e.dictSize[dev]
			w.lUploads++
			w.lEntries += int64(e.entriesPer)
			w.lWireBytes += int64(len(doc))
			return
		case err == nil && status == http.StatusConflict:
			w.lServerResyncs++
			e.dictLen[dev] = 0
			if !full {
				full = true
				doc = w.buildDoc(dev, true)
			}
		case err == nil && status == http.StatusTooManyRequests:
			w.lThrottled++
			d := retryAfter
			if d <= 0 {
				d = 100 * time.Millisecond
			}
			time.Sleep(d/2 + time.Duration(w.jitter.Int63n(int64(d))))
		default:
			time.Sleep(time.Duration(5+w.jitter.Int63n(20)) * time.Millisecond)
		}
	}
}

func (w *worker) post(url string, doc []byte) (status int, retryAfter time.Duration, err error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(doc))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", core.BinaryContentType)
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var ra time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, perr := strconv.Atoi(s); perr == nil && secs > 0 {
			ra = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, ra, nil
}
