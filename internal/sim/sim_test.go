package sim

import (
	"bytes"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"hangdoctor/internal/fleet"
)

func foldBytes(t *testing.T, agg *fleet.Aggregator) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := agg.Fold().Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func runInproc(t *testing.T, workers int, cfg Config) ([]byte, Stats) {
	t.Helper()
	agg := fleet.NewAggregator(fleet.Config{Shards: 4})
	cfg.Agg = agg
	cfg.Workers = workers
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatalf("run (workers=%d): %v", workers, err)
	}
	agg.Close()
	return foldBytes(t, agg), st
}

// TestDeterminismAcrossWorkerCounts is the satellite determinism test:
// the same seed must produce a byte-identical folded fleet report — and
// identical upload/resync counts — whether the fleet is simulated on 1,
// 4, or 8 workers. Run under -race in CI.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	cfg := Config{
		Devices:      2000,
		Uploads:      10_000,
		Entries:      3,
		Seed:         42,
		RestartEvery: 64,
		Batch:        16,
	}
	base, baseStats := runInproc(t, 1, cfg)
	if baseStats.Uploads != cfg.Uploads {
		t.Fatalf("workers=1 delivered %d uploads, want %d", baseStats.Uploads, cfg.Uploads)
	}
	if baseStats.Failed != 0 {
		t.Fatalf("workers=1 failed=%d", baseStats.Failed)
	}
	for _, w := range []int{4, 8} {
		got, st := runInproc(t, w, cfg)
		if st.Failed != 0 {
			t.Fatalf("workers=%d failed=%d", w, st.Failed)
		}
		if st.Uploads != baseStats.Uploads {
			t.Fatalf("workers=%d uploads=%d, want %d", w, st.Uploads, baseStats.Uploads)
		}
		if st.Resyncs != baseStats.Resyncs {
			t.Fatalf("workers=%d resyncs=%d, want %d", w, st.Resyncs, baseStats.Resyncs)
		}
		if st.Entries != baseStats.Entries {
			t.Fatalf("workers=%d entries=%d, want %d", w, st.Entries, baseStats.Entries)
		}
		if !bytes.Equal(base, got) {
			t.Fatalf("workers=%d fold diverges from workers=1 (%d vs %d bytes)", w, len(got), len(base))
		}
	}
}

// TestDeterminismAcrossBatchSizes: inproc batching coalesces uploads into
// shared submissions, which must never change the folded result.
func TestDeterminismAcrossBatchSizes(t *testing.T) {
	cfg := Config{Devices: 500, Uploads: 2500, Entries: 4, Seed: 7}
	var base []byte
	for i, batch := range []int{1, 4, 64} {
		c := cfg
		c.Batch = batch
		got, st := runInproc(t, 3, c)
		if st.Failed != 0 {
			t.Fatalf("batch=%d failed=%d", batch, st.Failed)
		}
		if i == 0 {
			base = got
			continue
		}
		if !bytes.Equal(base, got) {
			t.Fatalf("batch=%d fold diverges from batch=1", batch)
		}
	}
}

// TestHTTPMatchesInproc pins cross-mode determinism: the same config
// driven over the real binary HTTP protocol — including dictionary
// deltas, device restarts, and server-side 409 resyncs forced by a tiny
// dictionary cache — folds byte-identical to the in-process run.
func TestHTTPMatchesInproc(t *testing.T) {
	cfg := Config{
		Devices:      300,
		Uploads:      1800,
		Entries:      3,
		Seed:         1234,
		RestartEvery: 32,
	}
	wantFold, wantStats := runInproc(t, 2, cfg)

	agg := fleet.NewAggregator(fleet.Config{Shards: 4})
	// A dictionary cache far smaller than the fleet forces evictions and
	// 409 resync round trips on the steady state.
	srv := httptest.NewServer(fleet.NewServerDict(agg, 64).Handler())
	defer srv.Close()

	c := cfg
	c.Nodes = []string{srv.URL}
	c.Workers = 3
	eng, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatalf("http run: %v", err)
	}
	if st.Failed != 0 {
		t.Fatalf("http run failed=%d (throttled=%d)", st.Failed, st.Throttled)
	}
	if st.Uploads != wantStats.Uploads {
		t.Fatalf("http uploads=%d, want %d", st.Uploads, wantStats.Uploads)
	}
	if st.ServerResyncs == 0 {
		t.Fatal("expected 409 resyncs with a 64-device dictionary cache")
	}
	if st.WireBytes == 0 {
		t.Fatal("http run reported no wire bytes")
	}
	agg.Close()
	if got := foldBytes(t, agg); !bytes.Equal(got, wantFold) {
		t.Fatalf("HTTP fold diverges from inproc fold (%d vs %d bytes)", len(got), len(wantFold))
	}
}

// TestCrashUnblocksRun: tearing the aggregator down mid-run must unwind
// every worker — no goroutine stuck on a buffer ack or the barrier.
func TestCrashUnblocksRun(t *testing.T) {
	agg := fleet.NewAggregator(fleet.Config{Shards: 2, QueueDepth: 4})
	eng, err := New(Config{
		Devices: 5000,
		Uploads: 5_000_000,
		Entries: 4,
		Seed:    9,
		Workers: 4,
		Agg:     agg,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Stats, 1)
	go func() {
		st, _ := eng.Run()
		done <- st
	}()
	time.Sleep(20 * time.Millisecond)
	agg.Crash()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after aggregator crash")
	}
}

// TestStopWindsDown: Stop ends the run at the next epoch boundary with
// partial stats and no error.
func TestStopWindsDown(t *testing.T) {
	agg := fleet.NewAggregator(fleet.Config{Shards: 2})
	defer agg.Close()
	eng, err := New(Config{
		Devices: 2000,
		Uploads: 50_000_000,
		Entries: 2,
		Seed:    3,
		Workers: 2,
		Agg:     agg,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := eng.Run()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	eng.Stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stopped run returned error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after Stop")
	}
}

// TestQuotaSpread: the upload budget must land exactly, spread across
// devices, and the engine must refuse to run twice.
func TestQuotaSpread(t *testing.T) {
	agg := fleet.NewAggregator(fleet.Config{Shards: 2})
	eng, err := New(Config{Devices: 7, Uploads: 23, Entries: 1, Seed: 5, Workers: 3, Agg: agg})
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Uploads != 23 {
		t.Fatalf("uploads=%d, want 23", st.Uploads)
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("second Run must fail")
	}
	agg.Close()
	rep := agg.Fold()
	// Every device with a nonzero quota must appear in the fold.
	devs := map[string]bool{}
	for _, e := range rep.Entries() {
		for d := range e.Devices {
			devs[d] = true
		}
	}
	if len(devs) != 7 {
		t.Fatalf("fold covers %d devices, want 7", len(devs))
	}
}

// TestFourHeapProperty drives the heap against a reference model.
func TestFourHeapProperty(t *testing.T) {
	var h fourHeap
	const n = 500
	h.init(n)
	r := tickRand{x: 99}
	type ev struct {
		dev uint32
		key int64
	}
	model := make([]ev, 0, n)
	for i := 0; i < n; i++ {
		k := int64(r.next() % 100_000)
		h.push(uint32(i), k)
		model = append(model, ev{uint32(i), k})
	}
	h.heapify()
	sortModel := func() {
		sort.Slice(model, func(i, j int) bool { return model[i].key < model[j].key })
	}
	for step := 0; step < 5000 && h.len() > 0; step++ {
		sortModel()
		if h.minKey() != model[0].key {
			t.Fatalf("step %d: heap min key %d, model %d", step, h.minKey(), model[0].key)
		}
		// The heap may order equal keys differently than the model; only
		// the key order is contractual.
		if r.next()%8 == 0 {
			// Pop: drop the model element matching the heap's choice.
			d := h.minDev()
			h.popMin()
			for i := range model {
				if model[i].dev == d {
					model = append(model[:i], model[i+1:]...)
					break
				}
			}
		} else {
			adv := int64(1 + r.next()%5000)
			d := h.minDev()
			h.advanceMin(adv)
			for i := range model {
				if model[i].dev == d {
					model[i].key += adv
					break
				}
			}
		}
	}
}

// TestHugeResidency is the 10M-device residency check from the tentpole:
// build the full SoA fleet and run a sparse upload pass over it. Gated
// behind SIM_HUGE=1 — it commits several GB.
func TestHugeResidency(t *testing.T) {
	if os.Getenv("SIM_HUGE") != "1" {
		t.Skip("set SIM_HUGE=1 to run the 10M-device residency test")
	}
	agg := fleet.NewAggregator(fleet.Config{Shards: 8})
	eng, err := New(Config{
		Devices: 10_000_000,
		Uploads: 1_000_000,
		Entries: 4,
		Seed:    11,
		Workers: runtime.GOMAXPROCS(0),
		Agg:     agg,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Failed != 0 || st.Uploads != 1_000_000 {
		t.Fatalf("huge run: %s", st)
	}
	agg.Close()
	t.Logf("10M devices resident: %s", st)
}
