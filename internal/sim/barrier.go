package sim

import "sync"

// barrier.go: the epoch synchronizer. Workers advance virtual time
// independently inside an epoch (Δ simulated ms) and rendezvous here at
// each epoch boundary — a coarse barrier instead of a global clock lock,
// so the only cross-worker coordination cost is one mutex acquisition per
// worker per epoch, while no worker's virtual time can run more than one
// epoch ahead of another's (bounded skew keeps the aggregate upload
// cadence realistic).
//
// The barrier is cyclic (reused every epoch) and supports departure: a
// worker whose devices exhausted their quotas calls leave(), shrinking the
// party count so the remaining workers are not stranded waiting for it.
type barrier struct {
	mu      sync.Mutex
	parties int
	waiting int
	gen     chan struct{} // closed to release the current generation
}

func newBarrier(parties int) *barrier {
	return &barrier{parties: parties, gen: make(chan struct{})}
}

// await blocks until every current party arrives, or either signal channel
// closes (engine stop, aggregator crash); it reports whether the barrier
// opened normally. A nil signal channel never fires.
func (b *barrier) await(stop, crash <-chan struct{}) bool {
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting >= b.parties {
		b.waiting = 0
		b.gen = make(chan struct{})
		close(gen)
		b.mu.Unlock()
		return true
	}
	b.mu.Unlock()
	select {
	case <-gen:
		return true
	case <-stop:
		return false
	case <-crash:
		return false
	}
}

// leave removes one party permanently. If the departing worker was the
// last arrival the others were waiting on, the current generation opens.
func (b *barrier) leave() {
	b.mu.Lock()
	b.parties--
	if b.parties > 0 && b.waiting >= b.parties {
		b.waiting = 0
		gen := b.gen
		b.gen = make(chan struct{})
		close(gen)
	}
	b.mu.Unlock()
}
