package sim

// heap.go: the per-worker event scheduler. PR 7's simulator kept one
// global container/heap of per-device event structs and re-sorted with
// heap.Fix through an interface — every comparison an indirect call, every
// device a separate allocation. Here each worker owns a 4-ary index
// min-heap over its device partition, stored as two parallel slices
// (device id, next-upload virtual time): no per-device objects, no
// interface dispatch, and a 4-ary layout that halves tree depth versus
// binary so the dominant operation — replace-min after rescheduling the
// device that just fired — touches fewer cache lines.
//
// The heap is single-owner: only its worker goroutine ever reads or writes
// it, so there is no locking anywhere on the scheduling hot path.

type fourHeap struct {
	dev []uint32 // heap-ordered device ids
	key []int64  // key[i] is dev[i]'s next upload time (virtual ms)
}

func (h *fourHeap) init(n int) {
	h.dev = make([]uint32, 0, n)
	h.key = make([]int64, 0, n)
}

// push appends without restoring heap order — callers bulk-load then
// heapify once, which is O(n) versus O(n log n) for repeated insertion.
func (h *fourHeap) push(d uint32, k int64) {
	h.dev = append(h.dev, d)
	h.key = append(h.key, k)
}

func (h *fourHeap) heapify() {
	n := len(h.dev)
	if n < 2 {
		return
	}
	for i := (n - 2) / 4; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *fourHeap) len() int       { return len(h.dev) }
func (h *fourHeap) minDev() uint32 { return h.dev[0] }
func (h *fourHeap) minKey() int64  { return h.key[0] }

// advanceMin reschedules the device at the root delta virtual-ms later —
// the steady-state operation, replacing heap.Fix(…, 0) on the old global
// heap with a single sift-down.
func (h *fourHeap) advanceMin(delta int64) {
	h.key[0] += delta
	h.siftDown(0)
}

// popMin removes the root (a device that exhausted its upload quota).
func (h *fourHeap) popMin() {
	n := len(h.dev) - 1
	h.dev[0], h.key[0] = h.dev[n], h.key[n]
	h.dev, h.key = h.dev[:n], h.key[:n]
	if n > 1 {
		h.siftDown(0)
	}
}

func (h *fourHeap) siftDown(i int) {
	dev, key := h.dev, h.key
	n := len(dev)
	d, k := dev[i], key[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		// Smallest of up to four children.
		m, mk := c, key[c]
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if key[j] < mk {
				m, mk = j, key[j]
			}
		}
		if mk >= k {
			break
		}
		dev[i], key[i] = dev[m], key[m]
		i = m
	}
	dev[i], key[i] = d, k
}
