// Package sim is the fleet device simulator: a sharded virtual-time
// engine that drives the Hang Doctor fleet plane with millions of
// synthetic devices — each uploading Hang Bug Reports on a realistic
// cadence (about one per simulated hour, jittered) — orders of magnitude
// faster than wall time. It is the promotion of the single-goroutine,
// single-heap scheduler that lived inside cmd/fleetload (PR 7) into a
// real subsystem.
//
// Architecture (DESIGN.md §15):
//
//   - Devices are partitioned across W workers by the same consistent-hash
//     function that routes devices to fleet nodes (fleet.RingHash), so one
//     worker's devices target a stable node set in HTTP mode.
//   - Each worker schedules its partition with a private 4-ary index heap
//     (heap.go) and advances virtual time in bounded epochs: Δ simulated
//     ms of free running, then a barrier (barrier.go). No global lock, no
//     global clock.
//   - Device state is struct-of-arrays (state.go); the warm tick mutates
//     preallocated templates and pooled buffers and allocates nothing.
//   - Three sinks: in-process (entries go straight to a
//     fleet.Aggregator via the zero-copy acked wire path, coalescing
//     Batch uploads per submission), HTTP (binary protocol with
//     dictionary deltas against real fleetd nodes, one tuned transport
//     per worker), and discard (scheduler calibration, benchmarks).
//
// Every draw a device makes is a pure function of (Seed, device, upload
// sequence), so the folded fleet report is byte-identical across worker
// counts and across the inproc/HTTP modes — the determinism tests pin
// both.
package sim

import (
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hangdoctor/internal/fleet"
	"hangdoctor/internal/obs"
)

// Config parameterizes an Engine. Devices and Uploads are required; zero
// values elsewhere take the documented defaults. Exactly one of Agg or
// Nodes selects the sink (both nil is the discard sink, which schedules
// and encodes but delivers nowhere — calibration and benchmark use).
type Config struct {
	// Devices is the fleet size (dense ids 0..Devices-1).
	Devices int
	// Uploads is the total upload budget, spread uniformly: every device
	// uploads Uploads/Devices times (the first Uploads%Devices devices one
	// more), then the engine drains and Run returns.
	Uploads int64
	// Entries is the number of hang entries per upload (1..63, default 4).
	Entries int
	// Workers is the shard count W (default GOMAXPROCS, max 256).
	Workers int
	// Seed fixes every draw in the run.
	Seed int64
	// PeriodMS is the mean upload cadence in simulated ms (default one
	// hour); each reschedule jitters ±10%.
	PeriodMS int64
	// EpochMS is the virtual-time barrier interval (default 60_000): no
	// worker's clock runs more than one epoch ahead of another's.
	EpochMS int64
	// RestartEvery gives each upload a 1/RestartEvery chance of being
	// preceded by a device restart, which resets the device's dictionary
	// (a full upload follows in HTTP mode). Default 512; 0 or 1 disables.
	RestartEvery int64
	// Batch is how many device uploads the in-process sink coalesces into
	// one aggregator submission (default 64). Merging is commutative, so
	// batching never changes the folded result — it amortizes submission
	// overhead (channel handoffs, shard wakeups) across the batch.
	Batch int

	// Agg selects the in-process sink.
	Agg *fleet.Aggregator
	// Nodes selects the HTTP sink: fleetd base URLs ("http://host:port"),
	// consistent-hashed per device like a real fleet client.
	Nodes []string
	// Client overrides the per-worker tuned HTTP transport (tests).
	Client *http.Client
	// MaxRetries bounds per-upload HTTP retries (429/409/transport,
	// default 8); an upload still failing after that counts as Failed.
	MaxRetries int

	// Registry receives the engine's metrics (default: a private registry,
	// reachable via Engine.Registry).
	Registry *obs.Registry

	// discardHTTP selects the encode-and-drop calibration mode (full
	// binary document per upload, no delivery). In-package benchmarks
	// only — unexported so it cannot be set from outside.
	discardHTTP bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Devices <= 0 {
		return c, errors.New("sim: Config.Devices must be positive")
	}
	if c.Uploads <= 0 {
		return c, errors.New("sim: Config.Uploads must be positive")
	}
	if c.Entries == 0 {
		c.Entries = 4
	}
	if c.Entries < 1 || c.Entries > maxEntries {
		return c, fmt.Errorf("sim: Config.Entries must be 1..%d", maxEntries)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > 256 {
		c.Workers = 256
	}
	if c.PeriodMS <= 0 {
		c.PeriodMS = 3_600_000
	}
	if c.EpochMS <= 0 {
		c.EpochMS = 60_000
	}
	if c.RestartEvery == 0 {
		c.RestartEvery = 512
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.Agg != nil && len(c.Nodes) > 0 {
		return c, errors.New("sim: Config.Agg and Config.Nodes are mutually exclusive")
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c, nil
}

// Stats is one run's outcome. Counts are exact and — given equal config
// and seed — identical across worker counts when Failed is zero.
type Stats struct {
	// Uploads is successfully delivered device uploads.
	Uploads int64
	// Entries is hang entries across delivered uploads.
	Entries int64
	// Failed is uploads lost to sink errors (aggregator closed/crashed,
	// HTTP retries exhausted).
	Failed int64
	// Resyncs is client-side dictionary resets (simulated device
	// restarts) that forced a full upload.
	Resyncs int64
	// ServerResyncs is server-initiated 409 dictionary resyncs.
	ServerResyncs int64
	// Throttled is 429 backpressure responses absorbed.
	Throttled int64
	// WireBytes is bytes of binary documents put on the wire (HTTP mode).
	WireBytes int64
	// DeviceMS is total simulated device time advanced, summed over
	// devices — the numerator of the engine's headline throughput.
	DeviceMS int64
	// Epochs is the virtual-time epoch count the slowest-finishing worker
	// passed through.
	Epochs int64
	// Wall is the run's wall-clock duration.
	Wall time.Duration
}

// DeviceSecondsPerSec is the headline rate: simulated device-seconds
// advanced per wall-clock second.
func (s Stats) DeviceSecondsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return (float64(s.DeviceMS) / 1e3) / s.Wall.Seconds()
}

func (s Stats) String() string {
	return fmt.Sprintf("uploads=%d entries=%d failed=%d resyncs=%d server-resyncs=%d throttled=%d wire-bytes=%d epochs=%d simdev-s/s=%.3g wall=%s",
		s.Uploads, s.Entries, s.Failed, s.Resyncs, s.ServerResyncs, s.Throttled, s.WireBytes, s.Epochs, s.DeviceSecondsPerSec(), s.Wall)
}

// Engine is a configured simulation: fleet state is built (and memory
// committed) in New; Run executes the upload budget once.
type Engine struct {
	cfg        Config
	mode       int8
	seed       int64
	entriesPer int
	periodMS   int64
	jitterMS   int64

	// Struct-of-arrays device state, indexed by dense device id.
	names []string
	seq   []uint32
	left  []uint32
	tmpl  []tmplEntry
	// HTTP mode only.
	dictLen  []uint8 // dictionary length the server has committed (0 = none)
	dictSize []uint8 // full dictionary size incl. the device name
	nodeIdx  []uint8 // ring-routed node index
	nodeURL  []string

	pool     *contentPool
	workers  []worker
	bar      *barrier
	stopCh   chan struct{}
	stopOnce sync.Once
	crash    <-chan struct{} // Agg.Crashed() in inproc mode
	started  atomic.Bool
	wg       sync.WaitGroup
}

const (
	modeDiscard = int8(iota) // schedule + draw, deliver nowhere
	modeInproc
	modeHTTP
	modeDiscardHTTP // full binary encode, deliver nowhere (calibration)
)

// New builds an engine: interned content pools, per-device templates and
// quotas, ring-consistent worker partitions, and per-worker heaps. All
// fleet memory is committed here — Run itself allocates nothing on the
// device steady state.
func New(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:        cfg,
		seed:       cfg.Seed,
		entriesPer: cfg.Entries,
		periodMS:   cfg.PeriodMS,
		jitterMS:   cfg.PeriodMS / 5,
		pool:       content(),
		stopCh:     make(chan struct{}),
	}
	if e.jitterMS < 1 {
		e.jitterMS = 1
	}
	switch {
	case cfg.Agg != nil:
		e.mode = modeInproc
		e.crash = cfg.Agg.Crashed()
	case cfg.discardHTTP:
		e.mode = modeDiscardHTTP
	case len(cfg.Nodes) > 0:
		e.mode = modeHTTP
		e.nodeURL = make([]string, len(cfg.Nodes))
		for i, n := range cfg.Nodes {
			e.nodeURL[i] = n + "/v1/upload"
		}
	}

	D, K := cfg.Devices, cfg.Entries
	e.names = make([]string, D)
	e.seq = make([]uint32, D)
	e.left = make([]uint32, D)
	e.tmpl = make([]tmplEntry, D*K)
	if e.mode == modeHTTP || e.mode == modeDiscardHTTP {
		e.dictLen = make([]uint8, D)
		e.dictSize = make([]uint8, D)
		e.nodeIdx = make([]uint8, D)
	}

	// Quotas: uniform spread of the upload budget.
	quota, extra := cfg.Uploads/int64(D), int(cfg.Uploads%int64(D))
	if quota > int64(^uint32(0)) {
		return nil, errors.New("sim: per-device upload quota exceeds uint32")
	}
	for dev := range e.left {
		q := quota
		if dev < extra {
			q++
		}
		e.left[dev] = uint32(q)
	}

	// Build SoA state in parallel chunks (disjoint ranges, no locks).
	initAt := make([]int64, D)
	build := runtime.GOMAXPROCS(0)
	if build > D {
		build = D
	}
	var bw sync.WaitGroup
	for b := 0; b < build; b++ {
		lo, hi := D*b/build, D*(b+1)/build
		bw.Add(1)
		go func() {
			defer bw.Done()
			e.buildRange(lo, hi, initAt)
		}()
	}
	bw.Wait()

	// Partition devices across workers, consistent with the fleet ring.
	W := cfg.Workers
	var ring *fleet.Ring
	if e.mode == modeHTTP {
		ring = fleet.NewRing(cfg.Nodes, 0)
	}
	wkOf := make([]uint8, D)
	N := len(cfg.Nodes)
	nodePos := map[string]int{}
	for i, n := range cfg.Nodes {
		nodePos[n] = i
	}
	counts := make([]int, W)
	for dev := 0; dev < D; dev++ {
		h := fleet.RingHash(e.names[dev])
		var wk int
		if ring != nil {
			// Workers are split into contiguous runs per node; a device
			// lands on a worker inside its node's run, so every worker's
			// devices target one stable node.
			ni := nodePos[ring.Node(e.names[dev])]
			e.nodeIdx[dev] = uint8(ni)
			lo, hi := ni*W/N, (ni+1)*W/N
			if hi <= lo {
				wk = ni % W
			} else {
				wk = lo + int(h%uint64(hi-lo))
			}
		} else {
			wk = int(h % uint64(W))
		}
		wkOf[dev] = uint8(wk)
		if e.left[dev] > 0 {
			counts[wk]++
		}
	}

	e.workers = make([]worker, W)
	e.bar = newBarrier(W)
	for i := range e.workers {
		e.workers[i].init(e, i, counts[i])
	}
	for dev := 0; dev < D; dev++ {
		if e.left[dev] == 0 {
			continue
		}
		e.workers[wkOf[dev]].h.push(uint32(dev), initAt[dev])
	}
	var hw sync.WaitGroup
	for i := range e.workers {
		hw.Add(1)
		go func(w *worker) {
			defer hw.Done()
			w.h.heapify()
		}(&e.workers[i])
	}
	hw.Wait()

	e.registerMetrics(cfg.Registry)
	return e, nil
}

// Registry returns the registry the engine's metrics live in.
func (e *Engine) Registry() *obs.Registry { return e.cfg.Registry }

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return len(e.workers) }

// Stop asks a running engine to wind down at the next epoch boundary;
// Run then returns the partial stats. Safe to call concurrently.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.stopCh) })
}

// Run executes the configured upload budget and returns the run's stats.
// An engine runs once. The error is non-nil when the sink failed out from
// under the run (aggregator crash) — partial stats are still returned.
func (e *Engine) Run() (Stats, error) {
	if !e.started.CompareAndSwap(false, true) {
		return Stats{}, errors.New("sim: engine already ran")
	}
	start := time.Now()
	for i := range e.workers {
		e.wg.Add(1)
		go e.workers[i].run()
	}
	e.wg.Wait()
	var st Stats
	var err error
	for i := range e.workers {
		w := &e.workers[i]
		st.Uploads += w.uploads.Load()
		st.Entries += w.entriesN.Load()
		st.Failed += w.failed.Load()
		st.Resyncs += w.resyncs.Load()
		st.ServerResyncs += w.serverResyncs.Load()
		st.Throttled += w.throttled.Load()
		st.WireBytes += w.wireBytes.Load()
		st.DeviceMS += w.deviceMS.Load()
		if ep := w.epochNum.Load(); ep > st.Epochs {
			st.Epochs = ep
		}
		if w.abortErr != nil && err == nil {
			err = w.abortErr
		}
	}
	st.Wall = time.Since(start)
	return st, err
}
