package sim

// rand.go is the engine's determinism substrate. Every random quantity a
// simulated device produces — its upload offset, per-entry hang counts and
// response times, restart draws, cadence jitter — is a pure function of
// (seed, device, sequence number), never of worker identity, scheduling
// order, or wall time. That is the property the worker-count determinism
// tests pin: partitioning the fleet across 1, 4, or 8 workers permutes
// only the order draws are consumed in, not their values, so the folded
// fleet report is byte-identical.
//
// The generator is a splitmix64 counter stream: cheap (two multiplies and
// a few shifts per draw), allocation-free, and seekable — worker goroutines
// construct the stream for any (device, seq) pair in O(1) instead of
// replaying a shared stateful source, which is what makes the sharded
// scheduler possible at all.

// mix64 is the splitmix64/murmur3 finalizer: full avalanche, so adjacent
// counter values produce statistically independent outputs.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// streamSeed derives the stream origin for one device tick. seq 0 is the
// build-time stream (entry templates, initial upload offset); seq n ≥ 1 is
// the n-th upload's stream.
func streamSeed(seed int64, dev, seq uint32) uint64 {
	return mix64(mix64(uint64(seed)) ^ (uint64(dev)+1)*0xa24baed4963ee407 ^ (uint64(seq)+1)*0x9fb21c651e98df25)
}

// tickRand is the per-tick draw stream. Draw ORDER within a tick is part
// of the engine's wire contract with itself: restart draw first, then
// (hangs, response time) per entry in order, then the cadence advance —
// every mode consumes exactly this sequence so inproc and HTTP runs of the
// same config produce identical content.
type tickRand struct{ x uint64 }

func (r *tickRand) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	return mix64(r.x)
}
