package sim

import (
	"fmt"
	"strconv"
	"sync"

	"hangdoctor/internal/core"
)

// state.go: fleet state construction. Device state is struct-of-arrays
// indexed by dense device id — parallel slices for upload sequence
// numbers, remaining quotas, entry templates, and (HTTP mode) dictionary
// state — instead of the one-heap-object-per-device layout the PR 7
// scheduler used. SoA is what makes 10M resident devices cheap: the
// steady-state tick touches a handful of adjacent array cells, templates
// pack to ten bytes per entry, and nothing is individually
// garbage-collected.
//
// Content is drawn from the same bounded pools as fleet.SyntheticUpload —
// 8 apps × 24 actions, 200 blocking operations — so different devices
// overlap on the hot root causes (the realistic fleet shape: merging
// mostly hits existing entries) while shard routing still spreads keys.
// Unlike SyntheticUpload, each device's entry identities are drawn ONCE at
// build time into a packed template: a real device hits the same bugs
// upload after upload, only its counters move, which is also what gives
// the binary protocol's dictionary deltas something to be stable against.

const (
	numApps    = 8
	numActions = 24 // per app
	numOps     = 200
	// maxEntries bounds entries-per-upload so every per-device dictionary
	// ref fits a uint8: 4 strings per entry + the device name ≤ 253.
	maxEntries = 63
)

// contentPool interns every string the fleet can ever produce. One pool
// serves all engines (content is config-independent), so repeated engine
// construction — the benchmark matrix — reuses it.
type contentPool struct {
	apps    [numApps]string
	actions [numApps * numActions]string
	roots   [numOps]string
	files   [numOps]string
	keys    []string // [actionIdx*numOps + op] composite entry keys
}

var (
	poolOnce sync.Once
	pool     *contentPool
)

func content() *contentPool {
	poolOnce.Do(func() {
		p := &contentPool{keys: make([]string, numApps*numActions*numOps)}
		for a := 0; a < numApps; a++ {
			p.apps[a] = fmt.Sprintf("app-%02d", a)
			for c := 0; c < numActions; c++ {
				p.actions[a*numActions+c] = fmt.Sprintf("%s/Action-%02d", p.apps[a], c)
			}
		}
		for op := 0; op < numOps; op++ {
			p.roots[op] = fmt.Sprintf("com.example.blocking.Op%03d.run", op)
			p.files[op] = fmt.Sprintf("Op%03d.java", op)
		}
		for ai := range p.actions {
			app := p.apps[ai/numActions]
			for op := 0; op < numOps; op++ {
				p.keys[ai*numOps+op] = core.EntryKey(app, p.actions[ai], p.roots[op])
			}
		}
		pool = p
	})
	return pool
}

// opLine and opViaCaller mirror fleet.SyntheticUpload's rule that source
// location and kind are pure functions of the root cause — merge
// commutativity depends on key-colliding entries agreeing on metadata.
func opLine(op uint8) int       { return 1 + int(op)*7%899 }
func opViaCaller(op uint8) bool { return op%17 == 0 }

// tmplEntry is one precomputed upload entry: content indices into the
// shared pool plus this device's dictionary refs for the binary protocol
// (assigned in document walk order at build; the file string shares the
// op index with the root cause). Ten bytes per entry, mutated never —
// per-tick variation (hangs, response time) comes from the draw stream.
type tmplEntry struct {
	key                           uint16 // actionIdx*numOps + op
	app, action, op               uint8
	appRef, actRef, rootRef, fRef uint8
}

// deviceName formats "device-%07d" without fmt (1e7 names at build time).
func deviceName(scratch []byte, dev int) string {
	scratch = append(scratch[:0], "device-"...)
	var tmp [20]byte
	digits := strconv.AppendInt(tmp[:0], int64(dev), 10)
	for pad := 7 - len(digits); pad > 0; pad-- {
		scratch = append(scratch, '0')
	}
	return string(append(scratch, digits...))
}

// buildRange populates the SoA state for devices [lo, hi): name, entry
// template with per-device dictionary refs, upload quota, and the initial
// upload offset (written into initAt for the heap loader). Ranges are
// disjoint, so builders run in parallel without synchronization.
func (e *Engine) buildRange(lo, hi int, initAt []int64) {
	K := e.entriesPer
	// Stamp-trick dedup scratch: slot = (dev+1)<<8 | ref means "this
	// string already has a ref in the current device's dictionary".
	// Resetting is one stamp bump, not a memset per device.
	var appSeen [numApps]uint64
	var actSeen [numApps * numActions]uint64
	var rootSeen, fileSeen [numOps]uint64
	nameBuf := make([]byte, 0, 24)
	for dev := lo; dev < hi; dev++ {
		e.names[dev] = deviceName(nameBuf, dev)
		stamp := uint64(dev+1) << 8
		r := tickRand{x: streamSeed(e.seed, uint32(dev), 0)}
		next := uint8(0)
		assign := func(seen []uint64, idx int) uint8 {
			if seen[idx]&^0xff == stamp {
				return uint8(seen[idx])
			}
			next++
			seen[idx] = stamp | uint64(next)
			return next
		}
		for j := 0; j < K; j++ {
			app := uint8(r.next() % numApps)
			act := uint8(r.next() % numActions)
			op := uint8(r.next() % numOps)
			ai := int(app)*numActions + int(act)
			t := &e.tmpl[dev*K+j]
			t.app, t.action, t.op = app, uint8(ai), op
			t.key = uint16(ai*numOps + int(op))
			t.appRef = assign(appSeen[:], int(app))
			t.actRef = assign(actSeen[:], ai)
			t.rootRef = assign(rootSeen[:], int(op))
			t.fRef = assign(fileSeen[:], int(op))
		}
		if e.dictSize != nil {
			e.dictSize[dev] = next + 1 // + the device name, always last
		}
		initAt[dev] = int64(r.next() % uint64(e.periodMS))
	}
}
