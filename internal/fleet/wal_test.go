package fleet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"hangdoctor/internal/core"
	"hangdoctor/internal/fault"
)

// durableCfg is the small-knob durable config the WAL tests share:
// compaction every few records so mid-run compactions actually happen.
func durableCfg(dir string, shards int) Config {
	return Config{
		Shards: shards, QueueDepth: 256, BatchSize: 4,
		WAL: &WALConfig{Dir: dir, Sync: SyncBatch, CompactEvery: 8, DedupWindow: 1024},
	}
}

func mustOpen(t *testing.T, cfg Config) *Aggregator {
	t.Helper()
	agg, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return agg
}

func submitAllDurable(t *testing.T, agg *Aggregator, reps []*core.Report) {
	t.Helper()
	for _, r := range reps {
		id, err := ReportUploadID(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.SubmitDurable(r.Clone(), id); err != nil {
			t.Fatalf("SubmitDurable: %v", err)
		}
	}
}

// TestWALFrameRoundTrip pins the record framing: frames written by
// appendFrame come back from frameReader byte-identical and in order.
func TestWALFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		{recKindHeader, 'x'},
		bytes.Repeat([]byte{0xAB}, 1),
		bytes.Repeat([]byte("fragment"), 512),
	}
	var buf []byte
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	fr := &frameReader{r: bytes.NewReader(buf)}
	for i, want := range payloads {
		got, err := fr.next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d corrupted in round trip", i)
		}
	}
	if _, err := fr.next(); err != io.EOF {
		t.Fatalf("after last frame: err=%v, want io.EOF", err)
	}
	if fr.off != int64(len(buf)) {
		t.Fatalf("decoder offset %d, want %d", fr.off, len(buf))
	}
}

// TestWALFrameTornAndCorrupt pins the two failure classifications: a
// truncated frame reads as torn, a bit flip with all bytes present reads
// as corrupt, and both report the offset of the last whole record.
func TestWALFrameTornAndCorrupt(t *testing.T) {
	good := appendFrame(nil, []byte{recKindFragment, 1, 2, 3})
	goodLen := int64(len(good))

	t.Run("torn", func(t *testing.T) {
		torn := append(append([]byte{}, good...), appendFrame(nil, []byte{9, 9, 9, 9})[:5]...)
		fr := &frameReader{r: bytes.NewReader(torn)}
		if _, err := fr.next(); err != nil {
			t.Fatal(err)
		}
		_, err := fr.next()
		var fe *frameError
		if !errors.As(err, &fe) || !fe.torn {
			t.Fatalf("err=%v, want torn frameError", err)
		}
		if fr.off != goodLen {
			t.Fatalf("truncation offset %d, want %d", fr.off, goodLen)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		second := appendFrame(nil, []byte{recKindFragment, 7, 7})
		second[len(second)-1] ^= 0x01 // flip a payload bit, length intact
		fr := &frameReader{r: bytes.NewReader(append(append([]byte{}, good...), second...))}
		if _, err := fr.next(); err != nil {
			t.Fatal(err)
		}
		_, err := fr.next()
		var fe *frameError
		if !errors.As(err, &fe) || fe.torn {
			t.Fatalf("err=%v, want non-torn (corrupt) frameError", err)
		}
	})
	t.Run("implausible-length", func(t *testing.T) {
		bad := make([]byte, walFrameHeaderLen)
		binary.LittleEndian.PutUint32(bad[0:4], maxWALRecordLen+1)
		fr := &frameReader{r: bytes.NewReader(bad)}
		var fe *frameError
		if _, err := fr.next(); !errors.As(err, &fe) {
			t.Fatalf("err=%v, want frameError", err)
		}
	})
}

// TestDurableCleanRestart is the clean half of the durability story: a
// durable aggregator that is closed (drained, final snapshot) and
// reopened folds byte-identically to a serial merge — and the restart
// replays a snapshot, not a log tail, because Close compacted.
func TestDurableCleanRestart(t *testing.T) {
	dir := t.TempDir()
	reps := uploads(20, 30)
	serial := core.NewReport()
	serial.Merge(reps...)
	want := exportBytes(t, serial)

	agg := mustOpen(t, durableCfg(dir, 4))
	submitAllDurable(t, agg, reps)
	agg.Close()
	if got := exportBytes(t, agg.Fold()); !bytes.Equal(got, want) {
		t.Fatal("pre-restart fold diverged from serial merge")
	}

	agg2 := mustOpen(t, durableCfg(dir, 4))
	defer agg2.Close()
	if got := exportBytes(t, agg2.Fold()); !bytes.Equal(got, want) {
		t.Error("recovered fold diverged from serial merge")
	}
	snap := agg2.Metrics().Registry().Snapshot()
	if n := snap.Value("hangdoctor_fleet_wal_replayed_records_total"); n != 0 {
		t.Errorf("clean restart replayed %d tail records, want 0 (final snapshot should cover everything)", n)
	}
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%04d.snap", i))); err != nil {
			t.Errorf("shard %d final snapshot missing: %v", i, err)
		}
	}
}

// TestDurableRestartWithoutClose covers the tail-replay path: the first
// aggregator is crashed (no drain, no final snapshot), so the second one
// must rebuild state from snapshot + log tail.
func TestDurableRestartWithoutClose(t *testing.T) {
	dir := t.TempDir()
	reps := uploads(20, 30)
	serial := core.NewReport()
	serial.Merge(reps...)

	agg := mustOpen(t, durableCfg(dir, 4))
	submitAllDurable(t, agg, reps)
	agg.Crash()

	agg2 := mustOpen(t, durableCfg(dir, 4))
	defer agg2.Close()
	if got := exportBytes(t, agg2.Fold()); !bytes.Equal(got, exportBytes(t, serial)) {
		t.Error("tail-replayed fold diverged from serial merge")
	}
	snap := agg2.Metrics().Registry().Snapshot()
	if n := snap.Value("hangdoctor_fleet_wal_replayed_records_total"); n == 0 {
		t.Error("crash restart replayed no records, expected a non-empty tail")
	}
}

// TestTornTailTruncated is the recovery invariant the issue names: a torn
// final record (crash mid-append) is detected and truncated, never
// aborting replay, and every whole record before it survives.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	reps := uploads(12, 20)
	serial := core.NewReport()
	serial.Merge(reps...)

	// Lay down durable state with no compaction (big CompactEvery) so
	// every record stays in the tail, then crash.
	cfg := durableCfg(dir, 2)
	cfg.WAL.CompactEvery = 1 << 20
	agg := mustOpen(t, cfg)
	submitAllDurable(t, agg, reps)
	agg.Crash()

	// Tear the tails by hand: a partial frame on shard 0, trailing garbage
	// that parses as an oversized length on shard 1.
	torn := appendFrame(nil, append([]byte{recKindFragment}, bytes.Repeat([]byte{4}, 64)...))
	for i, tail := range [][]byte{torn[:len(torn)-9], {0xFF, 0xFF, 0xFF, 0x7F, 1, 2}} {
		f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("shard-%04d.wal", i)), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(tail); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	agg2, err := Open(cfg)
	if err != nil {
		t.Fatalf("recovery aborted on torn tail: %v", err)
	}
	defer agg2.Close()
	if got := exportBytes(t, agg2.Fold()); !bytes.Equal(got, exportBytes(t, serial)) {
		t.Error("recovered fold lost whole records before the torn tail")
	}
	snap := agg2.Metrics().Registry().Snapshot()
	if n := snap.Value("hangdoctor_fleet_wal_truncated_tails_total"); n != 2 {
		t.Errorf("truncated tails = %d, want 2", n)
	}
}

// TestMidLogCorruptionSalvagesPrefix: a record failing CRC mid-log (bit
// rot) stops replay there, salvages everything before it, and surfaces a
// corruption counter — still never a panic or abort.
func TestMidLogCorruptionSalvagesPrefix(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir, 1)
	cfg.WAL.CompactEvery = 1 << 20
	agg := mustOpen(t, cfg)
	submitAllDurable(t, agg, uploads(8, 10))
	agg.Crash()

	path := filepath.Join(dir, "shard-0000.wal")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10 // flip a bit somewhere in the middle
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	agg2, err := Open(cfg)
	if err != nil {
		t.Fatalf("recovery aborted on mid-log corruption: %v", err)
	}
	defer agg2.Close()
	snap := agg2.Metrics().Registry().Snapshot()
	if n := snap.Value("hangdoctor_fleet_wal_corrupt_records_total"); n == 0 {
		t.Error("corruption went uncounted")
	}
	if agg2.Fold().Len() == 0 {
		t.Error("no prefix salvaged before the corrupt record")
	}
}

// TestResendDeduplicated: resending an already-durable document (same
// content hash) is acknowledged but merged exactly once — the idempotency
// that makes retry-after-5xx and resend-after-crash safe.
func TestResendDeduplicated(t *testing.T) {
	dir := t.TempDir()
	agg := mustOpen(t, durableCfg(dir, 4))
	rep := SyntheticUpload(7, "device-dup", 40)
	id, err := ReportUploadID(rep)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := agg.SubmitDurable(rep.Clone(), id); err != nil {
			t.Fatalf("resend %d: %v", i, err)
		}
	}
	agg.Close()
	if got, want := exportBytes(t, agg.Fold()), exportBytes(t, rep); !bytes.Equal(got, want) {
		t.Error("resends were merged more than once")
	}
	snap := agg.Metrics().Registry().Snapshot()
	if n := snap.Value("hangdoctor_fleet_wal_fragments_deduped_total"); n == 0 {
		t.Error("dedup counter never moved")
	}
}

// TestResendDeduplicatedAcrossRestart: the dedup window survives both the
// snapshot (compacted IDs) and the tail (replayed IDs), so resends after
// a restart still merge exactly once.
func TestResendDeduplicatedAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	reps := uploads(10, 25)
	serial := core.NewReport()
	serial.Merge(reps...)

	agg := mustOpen(t, durableCfg(dir, 4))
	submitAllDurable(t, agg, reps)
	agg.Crash()

	agg2 := mustOpen(t, durableCfg(dir, 4))
	submitAllDurable(t, agg2, reps) // resend everything
	agg2.Close()
	if got := exportBytes(t, agg2.Fold()); !bytes.Equal(got, exportBytes(t, serial)) {
		t.Error("post-restart resends were not deduplicated")
	}
}

// TestShardCountChangeRefused: recovery refuses a WAL written with a
// different shard count — fragment routing (and so dedup) would silently
// break otherwise.
func TestShardCountChangeRefused(t *testing.T) {
	dir := t.TempDir()
	agg := mustOpen(t, durableCfg(dir, 4))
	submitAllDurable(t, agg, uploads(4, 10))
	agg.Close()
	if _, err := Open(durableCfg(dir, 8)); err == nil {
		t.Fatal("Open with a different shard count succeeded, want refusal")
	}
}

// TestSyncPolicies: every policy round-trips through a crash+recovery.
func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncBatch, SyncOff} {
		t.Run(string(policy), func(t *testing.T) {
			dir := t.TempDir()
			cfg := durableCfg(dir, 2)
			cfg.WAL.Sync = policy
			reps := uploads(8, 15)
			serial := core.NewReport()
			serial.Merge(reps...)
			agg := mustOpen(t, cfg)
			submitAllDurable(t, agg, reps)
			agg.Crash()
			agg2 := mustOpen(t, cfg)
			defer agg2.Close()
			if got := exportBytes(t, agg2.Fold()); !bytes.Equal(got, exportBytes(t, serial)) {
				t.Error("recovered fold diverged from serial merge")
			}
		})
	}
}

// TestReplayUnderShortReads: injected short reads (contract-legal partial
// Reads) during replay must be completely transparent — the decoder uses
// io.ReadFull discipline throughout.
func TestReplayUnderShortReads(t *testing.T) {
	dir := t.TempDir()
	reps := uploads(16, 20)
	serial := core.NewReport()
	serial.Merge(reps...)
	agg := mustOpen(t, durableCfg(dir, 2))
	submitAllDurable(t, agg, reps)
	agg.Crash()

	cfg := durableCfg(dir, 2)
	cfg.WAL.FS = fault.FaultyFS(fault.DiskFS, fault.NewStorage(3, fault.StorageRates{ShortRead: 0.9}))
	agg2, err := Open(cfg)
	if err != nil {
		t.Fatalf("recovery failed under short reads: %v", err)
	}
	defer agg2.Close()
	if got := exportBytes(t, agg2.Fold()); !bytes.Equal(got, exportBytes(t, serial)) {
		t.Error("short reads changed the recovered fold")
	}
}

// TestReplayUnderCorruptReads: injected bit rot during replay may lose
// data (that is what bit rot does) but must always be detected by the
// CRC — recovery returns an error or salvages, and never panics.
func TestReplayUnderCorruptReads(t *testing.T) {
	dir := t.TempDir()
	agg := mustOpen(t, durableCfg(dir, 2))
	submitAllDurable(t, agg, uploads(16, 20))
	agg.Crash()

	for seed := uint64(1); seed <= 5; seed++ {
		cfg := durableCfg(dir, 2)
		cfg.WAL.FS = fault.FaultyFS(fault.DiskFS, fault.NewStorage(seed, fault.StorageRates{CorruptRead: 0.05}))
		agg2, err := Open(cfg)
		if err != nil {
			continue // detected corruption in a snapshot: a legitimate refusal
		}
		agg2.Crash()
	}
}

// TestDurableHTTPUpload drives the durable path over HTTP: 202 means on
// disk, an identical retry dedups, and the folded report sees the
// document once.
func TestDurableHTTPUpload(t *testing.T) {
	dir := t.TempDir()
	agg := mustOpen(t, durableCfg(dir, 4))
	ts := httptest.NewServer(NewServer(agg).Handler())
	defer ts.Close()

	rep := SyntheticUpload(11, "device-http", 30)
	doc := exportBytes(t, rep)
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/upload", "application/json", bytes.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("durable upload attempt %d: status %d, want 202", i, resp.StatusCode)
		}
	}
	agg.Close()
	if got := exportBytes(t, agg.Fold()); !bytes.Equal(got, doc) {
		t.Error("HTTP retry of the same document was double-merged")
	}
}

// FuzzWALFrameDecode: arbitrary bytes through the frame decoder never
// panic — they yield frames until a clean EOF, a torn tail, or a corrupt
// record, exactly the three outcomes recovery handles.
func FuzzWALFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFrame(nil, []byte{recKindHeader, '{', '}'}))
	valid := appendFrame(appendFrame(nil, []byte{recKindFragment, 0, 1}), bytes.Repeat([]byte{7}, 300))
	f.Add(valid)
	f.Add(valid[:len(valid)-4])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := &frameReader{r: bytes.NewReader(data)}
		var consumed int64
		for {
			payload, err := fr.next()
			if err == io.EOF {
				if consumed != int64(len(data)) {
					t.Fatalf("clean EOF after %d of %d bytes", consumed, len(data))
				}
				return
			}
			var fe *frameError
			if err != nil {
				if !errors.As(err, &fe) {
					t.Fatalf("unexpected error type %T: %v", err, err)
				}
				if fr.off > int64(len(data)) {
					t.Fatalf("truncation offset %d beyond input %d", fr.off, len(data))
				}
				return
			}
			if len(payload) == 0 {
				t.Fatal("decoder returned an empty frame without error")
			}
			consumed = fr.off
			// Fragment payloads additionally go through the report
			// decoder, which must reject garbage rather than panic.
			if payload[0] == recKindFragment {
				decodeFragment(payload)
			}
		}
	})
}
