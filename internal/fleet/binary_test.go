package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hangdoctor/internal/core"
)

// postBinary uploads one binary document, returning the response.
func postBinary(t *testing.T, ts *httptest.Server, doc []byte) *http.Response {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/upload", core.BinaryContentType, bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestSubmitWireFoldByteIdentical pins the zero-copy ingest path to the
// same determinism bar as everything else: uploads that travel encoder →
// decoder → SubmitWire fold byte-identically to the same reports submitted
// directly, for every shard count.
func TestSubmitWireFoldByteIdentical(t *testing.T) {
	reps := uploads(24, 60)
	serial := core.NewReport()
	serial.Merge(reps...)
	want := exportBytes(t, serial)

	for _, shards := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			agg := NewAggregator(Config{Shards: shards, QueueDepth: 8, BatchSize: 4})
			for i, r := range reps {
				enc := core.NewBinaryEncoder(fmt.Sprintf("device-%03d", i))
				wr, err := core.NewBinaryDecoder().Decode(enc.Encode(r))
				if err != nil {
					t.Fatalf("decode upload %d: %v", i, err)
				}
				if err := agg.SubmitWireWait(wr); err != nil {
					t.Fatal(err)
				}
			}
			agg.Close()
			if got := exportBytes(t, agg.Fold()); !bytes.Equal(got, want) {
				t.Error("wire-path fold diverged from serial merge")
			}
		})
	}
}

// TestBinaryUploadHTTP drives the negotiated binary path end to end: a
// device streams delta documents through /v1/upload and the folded fleet
// report matches the JSON path byte for byte.
func TestBinaryUploadHTTP(t *testing.T) {
	agg := NewAggregator(Config{Shards: 3, QueueDepth: 16})
	ts := httptest.NewServer(NewServer(agg).Handler())
	defer ts.Close()

	rep1 := SyntheticUpload(11, "device-a", 40)
	rep2 := SyntheticUpload(11, "device-a", 40) // steady state: empty delta
	enc := core.NewBinaryEncoder("device-a")

	doc1 := append([]byte(nil), enc.Encode(rep1)...)
	doc2 := append([]byte(nil), enc.Encode(rep2)...)
	if len(doc2) >= len(doc1)/3 {
		t.Fatalf("second upload should ride the dictionary: %dB vs %dB", len(doc2), len(doc1))
	}
	for i, doc := range [][]byte{doc1, doc2} {
		resp := postBinary(t, ts, doc)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("upload %d: status %d", i, resp.StatusCode)
		}
	}
	agg.Close()

	serial := core.NewReport()
	serial.Merge(rep1, rep2)
	if got, want := exportBytes(t, agg.Fold()), exportBytes(t, serial); !bytes.Equal(got, want) {
		t.Error("binary HTTP ingest diverged from serial merge")
	}
	if ms := agg.Metrics().Snapshot(); ms.BinaryUploads != 2 {
		t.Errorf("binary uploads counter = %d, want 2", ms.BinaryUploads)
	}
}

// TestBinaryUploadDictMismatch409 pins the resync protocol: a delta
// document whose dictionary the server does not hold is bounced with 409
// and a JSON body naming the divergence, and the client recovers by
// resetting its encoder and resending self-contained.
func TestBinaryUploadDictMismatch409(t *testing.T) {
	agg := NewAggregator(Config{Shards: 2, QueueDepth: 16})
	ts := httptest.NewServer(NewServer(agg).Handler())
	defer ts.Close()

	// Warm the encoder without the server seeing the first document — the
	// moral equivalent of a server restart or dictionary eviction.
	enc := core.NewBinaryEncoder("device-b")
	enc.Encode(SyntheticUpload(5, "device-b", 30))

	rep := SyntheticUpload(6, "device-b", 30)
	resp := postBinary(t, ts, append([]byte(nil), enc.Encode(rep)...))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("delta against unknown dictionary: status %d, want 409", resp.StatusCode)
	}
	var body struct {
		Error   string `json:"error"`
		Assumed int    `json:"assumed"`
		Have    int    `json:"have"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error != "dictionary_reset" || body.Assumed == 0 || body.Have != 0 {
		t.Fatalf("409 body = %+v", body)
	}

	enc.Reset()
	if resp := postBinary(t, ts, append([]byte(nil), enc.Encode(rep)...)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resync resend: status %d, want 202", resp.StatusCode)
	}
	agg.Close()
	if got, want := exportBytes(t, agg.Fold()), exportBytes(t, rep); !bytes.Equal(got, want) {
		t.Error("post-resync fold diverged (the rejected document must not have merged)")
	}
	if ms := agg.Metrics().Snapshot(); ms.DictMismatches != 1 {
		t.Errorf("dict mismatches = %d, want 1", ms.DictMismatches)
	}
}

// TestDictCacheEviction pins the bounded-state guarantee: the cache holds
// at most cap devices, evicting least-recently-seen, and an evicted
// device's next delta is a mismatch (never a wrong decode).
func TestDictCacheEviction(t *testing.T) {
	agg := NewAggregator(Config{Shards: 1})
	defer agg.Close()
	c := newDictCache(2, agg.Metrics().Registry())

	encs := map[string]*core.BinaryEncoder{}
	send := func(device string, seed int64) error {
		enc := encs[device]
		if enc == nil {
			enc = core.NewBinaryEncoder(device)
			encs[device] = enc
		}
		_, err := c.decode(enc.Encode(SyntheticUpload(seed, device, 10)))
		return err
	}
	for _, dev := range []string{"dev-a", "dev-b", "dev-c"} {
		if err := send(dev, 1); err != nil {
			t.Fatalf("%s: %v", dev, err)
		}
	}
	if got := c.devices(); got != 2 {
		t.Fatalf("cache holds %d devices, want 2", got)
	}
	// dev-a was coldest and must have been evicted: its delta now mismatches.
	err := send("dev-a", 2)
	var dm *core.DictMismatchError
	if !errors.As(err, &dm) {
		t.Fatalf("evicted device's delta: got %v, want DictMismatchError", err)
	}
	// dev-c is still resident and keeps streaming deltas.
	if err := send("dev-c", 2); err != nil {
		t.Fatalf("resident device: %v", err)
	}
}

// TestUploadTooLarge413 is the satellite bugfix regression: an oversized
// body answers 413 (too large — retry smaller), not 400 (malformed), on
// both the durable and non-durable paths, for JSON and binary alike.
func TestUploadTooLarge413(t *testing.T) {
	big := exportBytes(t, SyntheticUpload(3, "device-big", 400))
	for _, durable := range []bool{false, true} {
		t.Run(fmt.Sprintf("durable=%v", durable), func(t *testing.T) {
			cfg := Config{Shards: 2, QueueDepth: 8}
			if durable {
				cfg.WAL = &WALConfig{Dir: t.TempDir()}
			}
			agg, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer agg.Close()
			srv := NewServer(agg)
			srv.MaxBodyBytes = int64(len(big)) / 2
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			for _, enc := range []struct {
				name, ctype string
				doc         []byte
			}{
				{"json", "application/json", big},
				{"binary", core.BinaryContentType, core.AppendReportBinary(nil, SyntheticUpload(3, "device-big", 400))},
			} {
				if int64(len(enc.doc)) <= srv.MaxBodyBytes {
					continue // binary may compress under the cap; only meaningful when oversized
				}
				resp, err := ts.Client().Post(ts.URL+"/v1/upload", enc.ctype, bytes.NewReader(enc.doc))
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusRequestEntityTooLarge {
					t.Errorf("%s oversized upload: status %d, want 413", enc.name, resp.StatusCode)
				}
			}
			// A well-formed document under the cap still lands.
			small := exportBytes(t, SyntheticUpload(4, "device-ok", 5))
			resp, err := ts.Client().Post(ts.URL+"/v1/upload", "application/json", bytes.NewReader(small))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("small upload after oversized: status %d, want 202", resp.StatusCode)
			}
		})
	}
}

// TestReportExportFailure is the satellite bugfix regression for
// /v1/report?format=json: a failing export must produce a clean 500, not
// an error string appended to a partially written 200 body.
func TestReportExportFailure(t *testing.T) {
	agg := NewAggregator(Config{Shards: 1})
	defer agg.Close()
	if err := agg.SubmitWait(SyntheticUpload(9, "device-x", 10)); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(agg)
	srv.exportReport = func(*core.Report, *bytes.Buffer) error {
		return errors.New("simulated downstream export failure")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/report?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	if strings.Contains(body.String(), "{") {
		t.Fatalf("500 body contains partial JSON: %q", body.String())
	}
}

// TestDurableDedupCanonicalContent is the satellite bugfix regression for
// upload identity: the dedup key is the report's canonical content, so a
// client that re-serializes the same report — different whitespace,
// different encoding entirely — still deduplicates instead of
// double-counting.
func TestDurableDedupCanonicalContent(t *testing.T) {
	agg, err := Open(Config{Shards: 2, QueueDepth: 8, WAL: &WALConfig{Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(agg).Handler())
	defer ts.Close()

	rep := SyntheticUpload(21, "device-dup", 30)
	pretty := exportBytes(t, rep)
	var compact bytes.Buffer
	if err := json.Compact(&compact, pretty); err != nil {
		t.Fatal(err)
	}
	binary := core.AppendReportBinary(nil, rep)

	for i, doc := range []struct {
		ctype string
		body  []byte
	}{
		{"application/json", pretty},
		{"application/json", compact.Bytes()}, // re-serialized duplicate
		{core.BinaryContentType, binary},      // re-encoded duplicate
	} {
		resp, err := ts.Client().Post(ts.URL+"/v1/upload", doc.ctype, bytes.NewReader(doc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: status %d, want 202 (duplicates ack success)", i, resp.StatusCode)
		}
	}
	agg.Close()
	if got, want := exportBytes(t, agg.Fold()), exportBytes(t, rep); !bytes.Equal(got, want) {
		t.Error("re-serialized duplicates were double-counted")
	}
}

// TestWALJSONFragmentReplayCompat pins the upgrade path: a log written by
// the pre-binary WAL (kind-2 JSON fragment records) still replays. New
// appends use the binary record kind; both coexist in one recovery.
func TestWALJSONFragmentReplayCompat(t *testing.T) {
	dir := t.TempDir()
	frag := SyntheticUpload(31, "device-old", 20)
	id, err := ReportUploadID(frag)
	if err != nil {
		t.Fatal(err)
	}

	// Hand-write an old-format log: header record, then one JSON fragment.
	var legacy bytes.Buffer
	legacy.WriteByte(recKindFragment)
	legacy.Write(id[:])
	if err := frag.Export(&legacy); err != nil {
		t.Fatal(err)
	}
	hdr, err := encodeHeader(walHeader{Version: walFormatVersion, Shard: 0, Shards: 1, Gen: 1})
	if err != nil {
		t.Fatal(err)
	}
	file := appendFrame(appendFrame(nil, hdr), legacy.Bytes())
	if err := os.WriteFile(filepath.Join(dir, "shard-0000.wal"), file, 0o644); err != nil {
		t.Fatal(err)
	}

	agg, err := Open(Config{Shards: 1, WAL: &WALConfig{Dir: dir}})
	if err != nil {
		t.Fatalf("recovery over a legacy log failed: %v", err)
	}
	// The legacy record's identity must still dedup a canonical resend.
	if err := agg.SubmitDurable(frag.Clone(), id); err != nil {
		t.Fatal(err)
	}
	// And new traffic appends in the binary kind alongside it.
	fresh := SyntheticUpload(32, "device-new", 20)
	freshID, _ := ReportUploadID(fresh)
	if err := agg.SubmitDurable(fresh.Clone(), freshID); err != nil {
		t.Fatal(err)
	}
	agg.Close()

	serial := core.NewReport()
	serial.Merge(frag, fresh)
	if got, want := exportBytes(t, agg.Fold()), exportBytes(t, serial); !bytes.Equal(got, want) {
		t.Error("legacy+binary recovery fold diverged (resend must dedup, new upload must merge)")
	}
	if deduped := agg.Metrics().Registry().Snapshot().Value("hangdoctor_fleet_wal_fragments_deduped_total"); deduped != 1 {
		t.Errorf("deduped = %d, want 1 (the legacy record's resend)", deduped)
	}
}

// TestSnapshotEndpointCanonical pins /v1/snapshot: it serves the fold in
// canonical binary form, so identical state yields identical bytes and a
// decode round-trips to the same report the JSON endpoint describes.
func TestSnapshotEndpointCanonical(t *testing.T) {
	agg := NewAggregator(Config{Shards: 2, QueueDepth: 8})
	reps := uploads(6, 30)
	for _, r := range reps {
		if err := agg.SubmitWait(r.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	agg.Close()
	ts := httptest.NewServer(NewServer(agg).Handler())
	defer ts.Close()

	get := func() []byte {
		resp, err := ts.Client().Get(ts.URL + "/v1/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != core.BinaryContentType {
			t.Fatalf("content type %q", ct)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.Bytes()
	}
	doc1, doc2 := get(), get()
	if !bytes.Equal(doc1, doc2) {
		t.Fatal("snapshot is not byte-stable across reads of identical state")
	}
	wr, err := core.NewBinaryDecoder().Decode(doc1)
	if err != nil {
		t.Fatal(err)
	}
	serial := core.NewReport()
	serial.Merge(reps...)
	if got, want := exportBytes(t, wr.Report()), exportBytes(t, serial); !bytes.Equal(got, want) {
		t.Error("snapshot decode diverged from the fold")
	}
}
