package fleet

import (
	"bytes"
	"fmt"
	"testing"

	"hangdoctor/internal/core"
)

// benchDocs prepares one steady-state upload per device in both encodings:
// the JSON export and the binary delta document a warm device emits once
// its dictionary is established (the fleet's steady state — every symbol
// already interned, so the document is refs and counters only). The
// returned decoders are warmed to match, one per device, the way the
// server's dictionary cache holds them.
func benchDocs(b *testing.B, devices, entries int) (json [][]byte, bin [][]byte, decs []*core.BinaryDecoder) {
	b.Helper()
	for d := 0; d < devices; d++ {
		device := fmt.Sprintf("device-%03d", d)
		rep := SyntheticUpload(int64(100+d), device, entries)

		var buf bytes.Buffer
		if err := rep.Export(&buf); err != nil {
			b.Fatal(err)
		}
		json = append(json, append([]byte(nil), buf.Bytes()...))

		enc := core.NewBinaryEncoder(device)
		first := append([]byte(nil), enc.Encode(rep)...)
		steady := append([]byte(nil), enc.Encode(rep)...)
		dec := core.NewBinaryDecoder()
		if _, err := dec.Decode(first); err != nil {
			b.Fatal(err)
		}
		bin = append(bin, steady)
		decs = append(decs, dec)
	}
	return json, bin, decs
}

// BenchmarkIngest measures end-to-end ingest cost per upload — parse or
// decode, split, shard merge — for the JSON path (ImportReport + Submit)
// against the binary path (warm dictionary DecodeScratch + SubmitWire).
// ns/op is the per-upload cost, so throughput = 1e9/ns-op. Run with:
//
//	go test -bench Ingest -benchtime 2s -benchmem -run XXX ./internal/fleet/
//
// The binary path's bar is ≥10× the JSON path at equal shard count: the
// steady-state document is ~30× smaller and decodes into pre-keyed wire
// entries that merge without re-parsing, re-validating, or re-interning.
func BenchmarkIngest(b *testing.B) {
	jsonDocs, binDocs, decs := benchDocs(b, 128, 120)
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("json/shards=%d", shards), func(b *testing.B) {
			agg := NewAggregator(Config{Shards: shards, QueueDepth: 4096, BatchSize: 16})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := core.ImportReport(bytes.NewReader(jsonDocs[i%len(jsonDocs)]))
				if err != nil {
					b.Fatal(err)
				}
				if err := agg.SubmitWait(rep); err != nil {
					b.Fatal(err)
				}
			}
			agg.Close() // the measurement covers every merge
			b.StopTimer()
			if agg.Fold().Len() == 0 {
				b.Fatal("benchmark merged nothing")
			}
		})
		b.Run(fmt.Sprintf("binary/shards=%d", shards), func(b *testing.B) {
			agg := NewAggregator(Config{Shards: shards, QueueDepth: 4096, BatchSize: 16})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := i % len(binDocs)
				// SubmitWireWait returns after the merge, so the decoder's
				// scratch buffers are free to reuse on the next iteration.
				wr, err := decs[d].DecodeScratch(binDocs[d])
				if err != nil {
					b.Fatal(err)
				}
				if err := agg.SubmitWireWait(wr); err != nil {
					b.Fatal(err)
				}
			}
			agg.Close()
			b.StopTimer()
			if agg.Fold().Len() == 0 {
				b.Fatal("benchmark merged nothing")
			}
		})
	}
}

// BenchmarkBinaryDecode isolates the decode half of the binary path: a
// warm-dictionary steady-state document through DecodeScratch. The bar is
// zero allocations per operation — decode writes into reused buffers and
// entry keys come from the decoder's committed-ref cache.
func BenchmarkBinaryDecode(b *testing.B) {
	_, binDocs, decs := benchDocs(b, 1, 120)
	doc, dec := binDocs[0], decs[0]
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.DecodeScratch(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialMerge is the pre-sharding baseline: one goroutine folding
// every upload into one report, the shape of the old offline cmd/fleet path.
func BenchmarkSerialMerge(b *testing.B) {
	reps := uploads(128, 120)
	b.ResetTimer()
	rep := core.NewReport()
	for i := 0; i < b.N; i++ {
		rep.Merge(reps[i%len(reps)])
	}
}
