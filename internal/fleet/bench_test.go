package fleet

import (
	"fmt"
	"testing"

	"hangdoctor/internal/core"
)

// BenchmarkIngest measures end-to-end ingest throughput (submit, split,
// shard merge, drain) as a function of shard count. On a multicore host the
// uploads/sec should scale with shards until merge parallelism saturates —
// the acceptance bar is ≥2× going 1→4 shards. Run with:
//
//	go test -bench Ingest -benchtime 2s ./internal/fleet/
//
// ns/op is the per-upload cost, so throughput = 1e9/ns-op.
func BenchmarkIngest(b *testing.B) {
	reps := uploads(128, 120) // generated outside every timed region
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			agg := NewAggregator(Config{Shards: shards, QueueDepth: 4096, BatchSize: 16})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := agg.SubmitWait(reps[i%len(reps)]); err != nil {
					b.Fatal(err)
				}
			}
			agg.Close() // the measurement covers every merge
			b.StopTimer()
			if agg.Fold().Len() == 0 {
				b.Fatal("benchmark merged nothing")
			}
		})
	}
}

// BenchmarkSerialMerge is the pre-sharding baseline: one goroutine folding
// every upload into one report, the shape of the old offline cmd/fleet path.
func BenchmarkSerialMerge(b *testing.B) {
	reps := uploads(128, 120)
	b.ResetTimer()
	rep := core.NewReport()
	for i := 0; i < b.N; i++ {
		rep.Merge(reps[i%len(reps)])
	}
}
