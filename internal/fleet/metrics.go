package fleet

import (
	"sync"
	"time"

	"hangdoctor/internal/obs"
)

// Metrics is the aggregator's ingestion accounting, held in an obs
// registry so fleetd's /metrics is the standard exposition rather than a
// hand-rolled formatter. The per-upload counters are lock-free obs
// counters (the Submit hot path never takes a lock to account an
// upload). The merge triple — merges, fragments, total nanoseconds — is
// updated and read under one mutex, so a snapshot can never observe a
// merge whose fragment count arrived but whose latency has not (the
// torn-read hazard of the old independent atomics); merge accounting
// happens on N shard goroutines once per *batch*, where a mutex is
// noise.
type Metrics struct {
	reg *obs.Registry

	accepted *obs.Counter
	rejected *obs.Counter
	invalid  *obs.Counter

	// binaryUploads counts uploads that arrived in the binary wire encoding;
	// dictMismatches counts dictionary-delta documents rejected with the
	// 409 resync protocol (client resets and resends a full dictionary).
	binaryUploads  *obs.Counter
	dictMismatches *obs.Counter

	// mergeLatency distributes per-merge wall time; its _sum line carries
	// the same total as MergeNs.
	mergeLatency *obs.Histogram
	// foldLatency distributes whole-fleet fold (read-path) wall time.
	foldLatency *obs.Histogram

	// Incremental read-path accounting: foldErrors counts folds that
	// degraded to an empty report because shard state was unreachable
	// (crash unwound the gather) — the /healthz degraded marker;
	// foldCacheHits counts folds served from the version-vector cache
	// without re-merging; snapshotReuses counts shard snapshot requests
	// answered by the cached COW snapshot (shard version unchanged);
	// deltaRequests counts /v1/snapshot?since= polls answered with a
	// delta; fullResyncs counts since= polls that degraded to a full
	// snapshot (epoch/shard-count mismatch — the self-healing path).
	foldErrors     *obs.Counter
	foldCacheHits  *obs.Counter
	snapshotReuses *obs.Counter
	deltaRequests  *obs.Counter
	fullResyncs    *obs.Counter

	mu              sync.Mutex
	merges          int64
	mergedFragments int64
	mergeNs         int64

	queueCap int

	// wal holds the durability-layer families; nil until initWAL (so a
	// memory-only aggregator's exposition carries no wal series).
	wal *walMetrics
}

// walMetrics is the durability layer's accounting: appends and the bytes
// and fsyncs behind them, compactions, and the recovery-side counters
// (replayed records, truncated tails, corrupt records, replay latency).
// All counters are lock-free obs counters bumped from shard goroutines.
type walMetrics struct {
	appended       *obs.Counter
	bytesWritten   *obs.Counter
	fsyncs         *obs.Counter
	appendErrors   *obs.Counter
	deduped        *obs.Counter
	compactions    *obs.Counter
	replayed       *obs.Counter
	truncatedTails *obs.Counter
	corruptRecords *obs.Counter
	replayLatency  *obs.Histogram
}

// initWAL registers the durability families (idempotent) and returns them.
func (m *Metrics) initWAL() *walMetrics {
	if m.wal != nil {
		return m.wal
	}
	reg := m.reg
	m.wal = &walMetrics{
		appended: reg.Counter("hangdoctor_fleet_wal_records_appended_total",
			"Fragment records appended to shard logs."),
		bytesWritten: reg.Counter("hangdoctor_fleet_wal_bytes_written_total",
			"Framed bytes appended to shard logs."),
		fsyncs: reg.Counter("hangdoctor_fleet_wal_fsyncs_total",
			"Durability barriers issued on shard logs."),
		appendErrors: reg.Counter("hangdoctor_fleet_wal_append_errors_total",
			"Failed appends or barriers (the upload was not acknowledged)."),
		deduped: reg.Counter("hangdoctor_fleet_wal_fragments_deduped_total",
			"Fragments skipped because their upload was already durable (resend after crash or 5xx)."),
		compactions: reg.Counter("hangdoctor_fleet_wal_compactions_total",
			"Snapshot compactions (log rotations)."),
		replayed: reg.Counter("hangdoctor_fleet_wal_replayed_records_total",
			"Fragment records replayed from log tails at startup."),
		truncatedTails: reg.Counter("hangdoctor_fleet_wal_truncated_tails_total",
			"Torn or trailing-garbage log tails truncated during recovery or repair."),
		corruptRecords: reg.Counter("hangdoctor_fleet_wal_corrupt_records_total",
			"Mid-log records failing CRC or decode (prefix salvaged)."),
		replayLatency: reg.Histogram("hangdoctor_fleet_wal_replay_latency_ns",
			"Wall time of one shard's snapshot-plus-tail replay.",
			obs.ExpBuckets(4096, 4, 14)),
	}
	return m.wal
}

func newMetrics(queueCap int) *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		reg:      reg,
		queueCap: queueCap,
		accepted: reg.Counter("hangdoctor_fleet_uploads_accepted_total",
			"Uploads admitted to the intake queue."),
		rejected: reg.Counter("hangdoctor_fleet_uploads_rejected_total",
			"Uploads refused for backpressure or shutdown."),
		invalid: reg.Counter("hangdoctor_fleet_uploads_invalid_total",
			"Uploads that failed validation."),
		binaryUploads: reg.Counter("hangdoctor_fleet_uploads_binary_total",
			"Uploads received in the binary wire encoding."),
		dictMismatches: reg.Counter("hangdoctor_fleet_dict_mismatches_total",
			"Binary uploads rejected for a dictionary-delta mismatch (409 resync)."),
		mergeLatency: reg.Histogram("hangdoctor_fleet_merge_latency_ns",
			"Wall time of one shard merge call.",
			obs.ExpBuckets(1024, 4, 12)),
		foldLatency: reg.Histogram("hangdoctor_fleet_fold_latency_ns",
			"Wall time of folding every shard into one fleet report.",
			obs.ExpBuckets(1024, 4, 12)),
		foldErrors: reg.Counter("hangdoctor_fleet_fold_errors_total",
			"Folds that returned an empty report because shard state was unreachable."),
		foldCacheHits: reg.Counter("hangdoctor_fleet_fold_cache_hits_total",
			"Folds served from the version-vector fold cache without re-merging."),
		snapshotReuses: reg.Counter("hangdoctor_fleet_shard_snapshot_reuses_total",
			"Shard snapshot requests answered by the cached copy-on-write snapshot."),
		deltaRequests: reg.Counter("hangdoctor_fleet_delta_requests_total",
			"Snapshot polls answered with a delta (changed entries only)."),
		fullResyncs: reg.Counter("hangdoctor_fleet_full_resyncs_total",
			"since= snapshot polls that degraded to a full snapshot (vector mismatch)."),
	}
	reg.GaugeFunc("hangdoctor_fleet_queue_capacity",
		"Configured intake bound.",
		func() int64 { return int64(queueCap) })
	reg.CounterFunc("hangdoctor_fleet_merges_total",
		"Shard merge calls.",
		func() int64 { m.mu.Lock(); defer m.mu.Unlock(); return m.merges })
	reg.CounterFunc("hangdoctor_fleet_merged_fragments_total",
		"Fragments folded across all merges.",
		func() int64 { m.mu.Lock(); defer m.mu.Unlock(); return m.mergedFragments })
	return m
}

// Registry exposes the live obs registry, for serving /metrics and for
// registering process-level series (queue depth, shard gauges) next to
// the ingestion counters.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// NoteInvalid counts an upload that failed validation before it could be
// queued (the HTTP layer's 400 path).
func (m *Metrics) NoteInvalid() { m.invalid.Inc() }

// noteMerge accounts one shard merge call: the triple moves together
// under the mutex, the histogram takes the same duration.
func (m *Metrics) noteMerge(frags int, d time.Duration) {
	ns := d.Nanoseconds()
	m.mergeLatency.Observe(float64(ns))
	m.mu.Lock()
	m.merges++
	m.mergedFragments += int64(frags)
	m.mergeNs += ns
	m.mu.Unlock()
}

// noteFold accounts one whole-fleet fold.
func (m *Metrics) noteFold(d time.Duration) {
	m.foldLatency.Observe(float64(d.Nanoseconds()))
}

// MetricsSnapshot is a point-in-time copy of the counters. The merge
// triple is read in one critical section: Merges, MergedFragments, and
// MergeNs always describe the same set of completed merges.
type MetricsSnapshot struct {
	// Accepted counts uploads admitted to the intake queue.
	Accepted int64 `json:"accepted"`
	// Rejected counts uploads refused for backpressure or shutdown.
	Rejected int64 `json:"rejected"`
	// Invalid counts uploads that failed schema validation.
	Invalid int64 `json:"invalid"`
	// BinaryUploads counts uploads received in the binary wire encoding;
	// DictMismatches counts binary uploads bounced with the 409 dictionary
	// resync protocol.
	BinaryUploads  int64 `json:"binary_uploads"`
	DictMismatches int64 `json:"dict_mismatches"`
	// Merges counts shard merge calls; MergedFragments counts the fragments
	// they folded (MergedFragments/Merges is the realized batch size).
	Merges          int64 `json:"merges"`
	MergedFragments int64 `json:"merged_fragments"`
	// MergeNs is total wall time spent inside shard merges.
	MergeNs int64 `json:"merge_ns"`
	// FoldErrors counts folds that degraded to an empty report because
	// shard state was unreachable; nonzero marks the node degraded.
	FoldErrors int64 `json:"fold_errors"`
	// FoldCacheHits counts folds served from the version-vector cache;
	// SnapshotReuses counts shard snapshots served from the COW cache.
	FoldCacheHits  int64 `json:"fold_cache_hits"`
	SnapshotReuses int64 `json:"snapshot_reuses"`
	// DeltaRequests counts snapshot polls answered with a delta;
	// FullResyncs counts since= polls that degraded to a full snapshot.
	DeltaRequests int64 `json:"delta_requests"`
	FullResyncs   int64 `json:"full_resyncs"`
	// QueueCapacity is the configured intake bound.
	QueueCapacity int `json:"queue_capacity"`
}

// Snapshot reads every counter once.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	merges, frags, ns := m.merges, m.mergedFragments, m.mergeNs
	m.mu.Unlock()
	return MetricsSnapshot{
		Accepted:        m.accepted.Value(),
		Rejected:        m.rejected.Value(),
		Invalid:         m.invalid.Value(),
		BinaryUploads:   m.binaryUploads.Value(),
		DictMismatches:  m.dictMismatches.Value(),
		Merges:          merges,
		MergedFragments: frags,
		MergeNs:         ns,
		FoldErrors:      m.foldErrors.Value(),
		FoldCacheHits:   m.foldCacheHits.Value(),
		SnapshotReuses:  m.snapshotReuses.Value(),
		DeltaRequests:   m.deltaRequests.Value(),
		FullResyncs:     m.fullResyncs.Value(),
		QueueCapacity:   m.queueCap,
	}
}
