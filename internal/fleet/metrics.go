package fleet

import "sync/atomic"

// Metrics are the aggregator's ingestion counters. All fields are atomics so
// the hot path never takes a lock to account an upload.
type Metrics struct {
	accepted        atomic.Int64
	rejected        atomic.Int64
	invalid         atomic.Int64
	merges          atomic.Int64
	mergedFragments atomic.Int64
	mergeNs         atomic.Int64
	queueCap        int
}

// NoteInvalid counts an upload that failed validation before it could be
// queued (the HTTP layer's 400 path).
func (m *Metrics) NoteInvalid() { m.invalid.Add(1) }

// MetricsSnapshot is a point-in-time copy of the counters.
type MetricsSnapshot struct {
	// Accepted counts uploads admitted to the intake queue.
	Accepted int64
	// Rejected counts uploads refused for backpressure or shutdown.
	Rejected int64
	// Invalid counts uploads that failed schema validation.
	Invalid int64
	// Merges counts shard merge calls; MergedFragments counts the fragments
	// they folded (MergedFragments/Merges is the realized batch size).
	Merges          int64
	MergedFragments int64
	// MergeNs is total wall time spent inside shard merges.
	MergeNs int64
	// QueueCapacity is the configured intake bound.
	QueueCapacity int
}

// Snapshot reads every counter once.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Accepted:        m.accepted.Load(),
		Rejected:        m.rejected.Load(),
		Invalid:         m.invalid.Load(),
		Merges:          m.merges.Load(),
		MergedFragments: m.mergedFragments.Load(),
		MergeNs:         m.mergeNs.Load(),
		QueueCapacity:   m.queueCap,
	}
}
