package fleet

// ring.go is the device→node routing layer of the multi-node tier: N
// fleetd nodes sit behind a consistent-hash ring, clients (cmd/fleetload,
// or a thin proxy) route each device's uploads to Ring.Node(device), and a
// regional fleet-agg folds the nodes' snapshots. Consistent hashing — many
// virtual points per node on a 64-bit circle — keeps the device→node
// mapping stable under membership change: removing a node remaps only the
// devices it owned, so at most that node's dictionaries resync (409), not
// the whole fleet's.
//
// Device affinity is what makes the binary wire format work across nodes:
// a device's dictionary lives on exactly one node, so its delta uploads
// always land where the dictionary is. Which node a device maps to never
// affects the folded result (core.Report.Merge is commutative and
// associative) — the ring is a dictionary-locality optimization, not a
// correctness requirement.

import (
	"fmt"
	"sort"
)

// defaultRingReplicas is the number of virtual points per node; more points
// smooth the load split at the cost of a larger table.
const defaultRingReplicas = 128

// Ring is an immutable consistent-hash ring over node names. Build one
// with NewRing; share it freely (reads only).
type Ring struct {
	nodes  []string
	hashes []uint64 // sorted virtual points
	owner  []string // owner[i] owns hashes[i]
}

// NewRing places each node at replicas (default 128 when <= 0) virtual
// points. Node order does not matter: the ring is a pure function of the
// node name set.
func NewRing(nodes []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultRingReplicas
	}
	r := &Ring{
		nodes:  append([]string(nil), nodes...),
		hashes: make([]uint64, 0, len(nodes)*replicas),
		owner:  make([]string, 0, len(nodes)*replicas),
	}
	type point struct {
		h    uint64
		node string
	}
	points := make([]point, 0, len(nodes)*replicas)
	for _, n := range nodes {
		for i := 0; i < replicas; i++ {
			points = append(points, point{ringHash(fmt.Sprintf("%s#%d", n, i)), n})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].h != points[j].h {
			return points[i].h < points[j].h
		}
		// Hash ties (vanishingly rare) break by name so the ring stays a
		// pure function of the node set.
		return points[i].node < points[j].node
	})
	for _, p := range points {
		r.hashes = append(r.hashes, p.h)
		r.owner = append(r.owner, p.node)
	}
	return r
}

// Node returns the node owning key (a device identity): the first virtual
// point clockwise of the key's hash. An empty ring returns "".
func (r *Ring) Node(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap around the circle
	}
	return r.owner[i]
}

// Nodes returns the ring's member list in construction order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// RingHash exposes the ring's key hash. The simulation engine uses it to
// partition devices across workers with the same function that routes them
// across nodes, so one worker's devices land on a stable node set and a
// worker count change never perturbs device→node affinity.
func RingHash(key string) uint64 { return ringHash(key) }

// ringHash is FNV-1a with a murmur-style finalizer, inlined so routing a
// device allocates nothing. The finalizer matters: raw FNV diffuses a
// key's trailing bytes into the low bits only, so sequential device names
// ("device-000041", "device-000042", …) cluster on one tiny arc of the
// circle and one node ends up owning nearly the whole fleet.
func ringHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
