package fleet

// version.go is the identity half of the delta snapshot protocol: a
// VersionVector names an exact point in one aggregator's history — which
// boot of which process (the epoch) and how far each shard's merge stream
// had advanced (one monotonically increasing version per shard). A client
// that polls /v1/snapshot?since=<vector> gets back only the entries that
// changed after that point; any mismatch (node restart, shard-count
// change, a vector from a different node) degrades to a full snapshot, so
// a stale or garbled vector costs bandwidth, never correctness.

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// VersionVector identifies a point in one aggregator's merge history.
type VersionVector struct {
	// Epoch identifies one aggregator instance (one boot of one process).
	// Two vectors with different epochs are incomparable: shard versions
	// restart from zero on every boot.
	Epoch uint64
	// Shards holds the per-shard state versions, indexed by shard.
	Shards []uint64
}

// Zero reports whether the vector is the zero value (no state observed).
func (v VersionVector) Zero() bool { return v.Epoch == 0 && len(v.Shards) == 0 }

// Equal reports whether two vectors name the same point in the same
// aggregator's history.
func (v VersionVector) Equal(o VersionVector) bool {
	if v.Epoch != o.Epoch || len(v.Shards) != len(o.Shards) {
		return false
	}
	for i := range v.Shards {
		if v.Shards[i] != o.Shards[i] {
			return false
		}
	}
	return true
}

// String renders the canonical wire form "epoch:v0.v1.v2".
func (v VersionVector) String() string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(v.Epoch, 10))
	b.WriteByte(':')
	for i, s := range v.Shards {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(s, 10))
	}
	return b.String()
}

// ParseVersionVector parses the String form.
func ParseVersionVector(s string) (VersionVector, error) {
	epochStr, shardStr, ok := strings.Cut(s, ":")
	if !ok {
		return VersionVector{}, fmt.Errorf("fleet: version vector %q: missing ':'", s)
	}
	epoch, err := strconv.ParseUint(epochStr, 10, 64)
	if err != nil {
		return VersionVector{}, fmt.Errorf("fleet: version vector %q: bad epoch: %w", s, err)
	}
	v := VersionVector{Epoch: epoch}
	if shardStr == "" {
		return v, nil
	}
	for _, part := range strings.Split(shardStr, ".") {
		sv, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return VersionVector{}, fmt.Errorf("fleet: version vector %q: bad shard version: %w", s, err)
		}
		v.Shards = append(v.Shards, sv)
	}
	return v, nil
}

// epochCounter disambiguates aggregators opened within one clock tick.
var epochCounter atomic.Uint64

// newEpoch returns an epoch unique across process boots (wall time) and
// across aggregators within one process (counter). Epoch 0 is reserved
// for "no epoch".
func newEpoch() uint64 {
	e := uint64(time.Now().UnixNano()) + epochCounter.Add(1)
	if e == 0 {
		e = 1
	}
	return e
}

// Snapshot-protocol HTTP surface: the node advertises its vector and
// whether the body is a full snapshot or a delta.
const (
	// VectorHeader carries the serving node's current VersionVector on
	// /v1/snapshot responses; a client echoes it back via ?since=.
	VectorHeader = "X-Hangdoctor-Vector"
	// SnapshotKindHeader is "full" or "delta".
	SnapshotKindHeader = "X-Hangdoctor-Snapshot"
	// SnapshotFull and SnapshotDelta are the SnapshotKindHeader values.
	SnapshotFull  = "full"
	SnapshotDelta = "delta"
)
