package fleet

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"hangdoctor/internal/core"
)

// ackCollector is a WireAck callback that counts completions and remembers
// errors, releasing a waiter per completion.
type ackCollector struct {
	mu    sync.Mutex
	n     int
	errs  []error
	fired chan struct{}
}

func newAckCollector() *ackCollector {
	return &ackCollector{fired: make(chan struct{}, 1024)}
}

func (c *ackCollector) fn(err error) {
	c.mu.Lock()
	c.n++
	if err != nil {
		c.errs = append(c.errs, err)
	}
	c.mu.Unlock()
	c.fired <- struct{}{}
}

func (c *ackCollector) counts() (int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n, len(c.errs)
}

// TestSubmitWireAcked pins the contract the zero-alloc simulator builds on:
// the callback fires exactly once per submission, only after every routed
// fragment merged, and the folded state matches SubmitWireWait of the same
// uploads byte for byte.
func TestSubmitWireAcked(t *testing.T) {
	const uploads = 64
	want := NewAggregator(Config{Shards: 4})
	got := NewAggregator(Config{Shards: 4})
	col := newAckCollector()
	wa := NewWireAck(col.fn)
	for i := 0; i < uploads; i++ {
		doc := encodeUpload(t, int64(i), "device-a", 12)
		w1, err := core.NewBinaryDecoder().Decode(doc)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := core.NewBinaryDecoder().Decode(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := want.SubmitWireWait(w1); err != nil {
			t.Fatal(err)
		}
		if err := got.SubmitWireAcked(w2, wa); err != nil {
			t.Fatal(err)
		}
		// One ack in flight per WireAck: wait for the callback before the
		// next submission reuses it.
		<-col.fired
	}
	if n, errs := col.counts(); n != uploads || errs != 0 {
		t.Fatalf("acks fired %d times with %d errors, want %d/0", n, errs, uploads)
	}
	want.Close()
	got.Close()
	a, b := exportFold(t, want), exportFold(t, got)
	if a != b {
		t.Fatalf("acked fold diverges from waited fold:\n%s\nvs\n%s", a, b)
	}
}

// TestSubmitWireAckedEmptyUpload: an upload that routes zero fragments
// (no entries, zero health) must still fire the callback — otherwise the
// producer leaks the buffer it was waiting to recycle.
func TestSubmitWireAckedEmptyUpload(t *testing.T) {
	agg := NewAggregator(Config{Shards: 4})
	defer agg.Close()
	col := newAckCollector()
	wa := NewWireAck(col.fn)
	if err := agg.SubmitWireAcked(&core.WireReport{Device: "device-a"}, wa); err != nil {
		t.Fatal(err)
	}
	<-col.fired
	if n, errs := col.counts(); n != 1 || errs != 0 {
		t.Fatalf("empty upload acks = %d/%d errors, want 1/0", n, errs)
	}
}

// TestSubmitWireAckedHealthOnly: a health-only upload routes exactly one
// fragment (shard 0) and must ack once it merges.
func TestSubmitWireAckedHealthOnly(t *testing.T) {
	agg := NewAggregator(Config{Shards: 4})
	col := newAckCollector()
	wa := NewWireAck(col.fn)
	wr := &core.WireReport{Device: "device-a"}
	wr.Health.StacksDropped = 3
	if err := agg.SubmitWireAcked(wr, wa); err != nil {
		t.Fatal(err)
	}
	<-col.fired
	agg.Close()
	if h := agg.Fold().Health; h.StacksDropped != 3 {
		t.Fatalf("health not merged: %+v", h)
	}
}

// TestSubmitWireAckedDurable: on a WAL-backed aggregator the callback must
// imply durability — close, reopen, and the recovered fold matches.
func TestSubmitWireAckedDurable(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 2, WAL: &WALConfig{Dir: filepath.Join(dir, "wal")}}
	agg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	col := newAckCollector()
	wa := NewWireAck(col.fn)
	for i := 0; i < 8; i++ {
		wr, err := core.NewBinaryDecoder().Decode(encodeUpload(t, int64(100+i), "device-d", 6))
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.SubmitWireAcked(wr, wa); err != nil {
			t.Fatal(err)
		}
		<-col.fired
	}
	if n, errs := col.counts(); n != 8 || errs != 0 {
		t.Fatalf("acks = %d with %d errors, want 8/0", n, errs)
	}
	agg.Close()
	want := exportFold(t, agg)

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	re.Close()
	if got := exportFold(t, re); got != want {
		t.Fatalf("recovered fold diverges from acked state:\n%s\nvs\n%s", got, want)
	}
}

// TestSubmitWireAckedAfterClose: ErrClosed is synchronous and the callback
// never fires, so the caller keeps buffer ownership.
func TestSubmitWireAckedAfterClose(t *testing.T) {
	agg := NewAggregator(Config{Shards: 2})
	agg.Close()
	col := newAckCollector()
	wa := NewWireAck(col.fn)
	wr, err := core.NewBinaryDecoder().Decode(encodeUpload(t, 7, "device-c", 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.SubmitWireAcked(wr, wa); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	if n, _ := col.counts(); n != 0 {
		t.Fatalf("callback fired %d times after synchronous rejection", n)
	}
}

// TestCrashedUnblocks: Crashed() must close on Crash so producers blocked
// waiting for ack-owned resources can unwind.
func TestCrashedUnblocks(t *testing.T) {
	agg := NewAggregator(Config{Shards: 2})
	select {
	case <-agg.Crashed():
		t.Fatal("Crashed() closed before Crash")
	default:
	}
	agg.Crash()
	select {
	case <-agg.Crashed():
	default:
		t.Fatal("Crashed() did not close after Crash")
	}
}

func TestNewWireAckNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWireAck(nil) must panic")
		}
	}()
	NewWireAck(nil)
}

// encodeUpload produces one synthetic binary document.
func encodeUpload(t *testing.T, seed int64, device string, entries int) []byte {
	t.Helper()
	enc := core.NewBinaryEncoder(device)
	doc := enc.Encode(SyntheticUpload(seed, device, entries))
	return append([]byte(nil), doc...)
}

// exportFold renders an aggregator's final folded report as canonical JSON.
func exportFold(t *testing.T, a *Aggregator) string {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Fold().Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
