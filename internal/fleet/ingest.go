package fleet

// ingest.go is the binary side of /v1/upload: per-device dictionary state
// for the core binary wire format (see internal/core/binwire.go). A device
// sends each class/method string once; the server must therefore remember
// the dictionary the device's encoder has built so the next delta document
// resolves. That state is bounded: an LRU over devices, capped by
// DictDevices, evicting the decoder (and with it the dictionary) of the
// device that has been silent longest. An evicted device's next delta
// upload fails the dictBase check and is bounced with 409; the client
// resets its encoder and resends a full dictionary — eviction costs one
// round trip and some bytes, never correctness.

import (
	"container/list"
	"sync"

	"hangdoctor/internal/core"
	"hangdoctor/internal/obs"
)

// DefaultDictDevices bounds the per-device dictionary cache: the server
// holds binary-decoder state for at most this many distinct devices.
const DefaultDictDevices = 65536

// dictEntry is one device's decoder. The entry mutex serializes decoding
// for that device (dictionary deltas are ordered per device by protocol);
// different devices decode concurrently.
type dictEntry struct {
	device string
	mu     sync.Mutex
	dec    *core.BinaryDecoder
}

// dictCache is the bounded device→decoder map. The cache mutex guards only
// the map and LRU list — decoding happens outside it, under the entry
// mutex, so one slow decode never stalls other devices.
type dictCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recently used; values are *dictEntry
	byDev map[string]*list.Element

	evictions *obs.Counter
}

func newDictCache(capacity int, reg *obs.Registry) *dictCache {
	if capacity <= 0 {
		capacity = DefaultDictDevices
	}
	c := &dictCache{
		cap:   capacity,
		lru:   list.New(),
		byDev: make(map[string]*list.Element),
		evictions: reg.Counter("hangdoctor_fleet_dict_evictions_total",
			"Device dictionaries evicted from the bounded cache (the device resyncs via 409)."),
	}
	reg.GaugeFunc("hangdoctor_fleet_dict_devices",
		"Devices with live dictionary state in the cache.",
		func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(len(c.byDev))
		})
	return c
}

// entry returns (creating if needed) the device's decoder entry, bumping it
// to most-recently-used and evicting the coldest entry when over capacity.
func (c *dictCache) entry(device string) *dictEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byDev[device]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*dictEntry)
	}
	e := &dictEntry{device: device, dec: core.NewBinaryDecoder()}
	c.byDev[device] = c.lru.PushFront(e)
	for len(c.byDev) > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byDev, oldest.Value.(*dictEntry).device)
		c.evictions.Inc()
	}
	return e
}

// decode parses one binary upload document against the sending device's
// dictionary. Stateless documents (empty device) decode with a throwaway
// decoder and touch no cache state. A decode error never commits dictionary
// changes (the core decoder stages deltas), so a rejected document leaves
// the device's state exactly as it was.
func (c *dictCache) decode(doc []byte) (*core.WireReport, error) {
	device, err := core.PeekBinaryDevice(doc)
	if err != nil {
		return nil, err
	}
	if device == "" {
		return core.NewBinaryDecoder().Decode(doc)
	}
	e := c.entry(device)
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dec.Decode(doc)
}

// devices returns the number of devices with live dictionary state.
func (c *dictCache) devices() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byDev)
}
