package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hangdoctor/internal/core"
)

// Server is the HTTP face of an Aggregator:
//
//	POST /v1/upload         — one report per request, JSON ((*core.Report).Export)
//	                          or the binary wire encoding (core.BinaryContentType)
//	GET  /v1/report         — the folded fleet report (text, or ?format=json)
//	GET  /v1/snapshot       — the folded fleet report in canonical binary form
//	                          (what a regional fleet-agg folds)
//	GET  /healthz           — liveness + queue occupancy
//	GET  /metrics           — Prometheus text exposition (obs registry)
//	GET  /metrics.json      — the same state as one AggregatorSnapshot JSON document
//	GET  /metrics/snapshot  — the obs registry as an obs.Snapshot JSON document
//	                          (the shape obs.MergeSnapshots folds across nodes)
type Server struct {
	agg *Aggregator
	// MaxBodyBytes bounds an upload document (default 8 MiB); oversized
	// bodies are refused with 413 so clients can distinguish "too large"
	// from "malformed".
	MaxBodyBytes int64
	// RetryAfter is the backoff advertised on 429 responses (default 1s).
	RetryAfter time.Duration

	// dicts holds per-device binary-decoder state (see ingest.go).
	dicts *dictCache

	// exportReport serializes a folded report for ?format=json into the
	// caller-supplied buffer. It is a seam for tests to force an export
	// failure; the handler buffers the result so a failure becomes a clean
	// 500 instead of an error string appended to a partially written 200
	// body.
	exportReport func(*core.Report, *bytes.Buffer) error
}

// exportBufPool recycles /v1/report?format=json export buffers across
// scrapes. A fleet-sized export runs to megabytes; without the pool every
// scrape allocates (and regrows) a fresh buffer just to throw it away.
var exportBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// NewServer wraps an aggregator with default limits and a dictionary cache
// sized for DefaultDictDevices devices (use NewServerDict to size it).
func NewServer(agg *Aggregator) *Server {
	return NewServerDict(agg, DefaultDictDevices)
}

// NewServerDict is NewServer with an explicit bound on the number of
// devices whose binary-upload dictionary state the server retains.
func NewServerDict(agg *Aggregator, dictDevices int) *Server {
	return &Server{
		agg:          agg,
		MaxBodyBytes: 8 << 20,
		RetryAfter:   time.Second,
		dicts:        newDictCache(dictDevices, agg.Metrics().Registry()),
		exportReport: func(rep *core.Report, buf *bytes.Buffer) error {
			return rep.Export(buf)
		},
	}
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/upload", s.handleUpload)
	mux.HandleFunc("/v1/report", s.handleReport)
	mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/metrics/snapshot", s.handleMetricsSnapshot)
	return mux
}

// readBody drains the request body under the size cap, mapping the
// over-limit case to 413 (it is not a malformed document — the same bytes
// under a higher cap might be perfectly valid) and anything else to 400.
// It reports whether the caller may proceed.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	lr := http.MaxBytesReader(w, r.Body, s.MaxBodyBytes)
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(lr); err != nil {
		s.agg.Metrics().NoteInvalid()
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("report exceeds %d byte limit", mbe.Limit), http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, fmt.Sprintf("invalid report: %v", err), http.StatusBadRequest)
		}
		return nil, false
	}
	return buf.Bytes(), true
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "upload requires POST", http.StatusMethodNotAllowed)
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if r.Header.Get("Content-Type") == core.BinaryContentType || core.IsBinaryReport(body) {
		s.uploadBinary(w, body)
		return
	}
	s.uploadJSON(w, body)
}

func (s *Server) uploadJSON(w http.ResponseWriter, body []byte) {
	rep, err := core.ImportReport(bytes.NewReader(body))
	if err != nil {
		s.agg.Metrics().NoteInvalid()
		http.Error(w, fmt.Sprintf("invalid report: %v", err), http.StatusBadRequest)
		return
	}
	entries, hangs := rep.Len(), rep.TotalHangs()
	if s.agg.Durable() {
		// On a durable aggregator 202 means "on disk": the upload's dedup
		// identity is its canonical content hash — a client that re-encodes
		// the same document (key order, whitespace, or a binary re-send)
		// still deduplicates — and the submit waits for the WAL barrier.
		id, _ := ReportUploadID(rep)
		err = s.agg.SubmitDurable(rep, id)
	} else {
		err = s.agg.Submit(rep)
	}
	s.finishUpload(w, err, entries, hangs)
}

func (s *Server) uploadBinary(w http.ResponseWriter, body []byte) {
	s.agg.Metrics().binaryUploads.Inc()
	wr, err := s.dicts.decode(body)
	if err != nil {
		var dm *core.DictMismatchError
		if errors.As(err, &dm) {
			// The device's dictionary diverged (server restart, eviction,
			// lost upload). 409 tells the client to reset its encoder and
			// resend with a full dictionary — a protocol round trip, not an
			// invalid document.
			s.agg.Metrics().dictMismatches.Inc()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(map[string]any{
				"error": "dictionary_reset", "assumed": dm.Base, "have": dm.Have,
			})
			return
		}
		s.agg.Metrics().NoteInvalid()
		http.Error(w, fmt.Sprintf("invalid report: %v", err), http.StatusBadRequest)
		return
	}
	entries, hangs := len(wr.Entries), wr.TotalHangs()
	if s.agg.Durable() {
		rep := wr.Report()
		id, _ := ReportUploadID(rep)
		err = s.agg.SubmitDurable(rep, id)
	} else {
		// Zero-copy ingest: the decoded wire entries go straight to their
		// shards, keyed by the decoder's dictionary.
		err = s.agg.SubmitWire(wr)
	}
	s.finishUpload(w, err, entries, hangs)
}

// finishUpload maps a submit outcome onto the response.
func (s *Server) finishUpload(w http.ResponseWriter, err error, entries, hangs int) {
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{
			"status": "accepted", "entries": entries, "hangs": hangs,
		})
	case errors.Is(err, ErrQueueFull):
		// Backpressure: the device should retry after a pause instead of the
		// server buffering without bound.
		w.Header().Set("Retry-After", strconv.Itoa(int((s.RetryAfter+time.Second-1)/time.Second)))
		http.Error(w, "ingest queue full, retry later", http.StatusTooManyRequests)
	case errors.Is(err, ErrClosed), errors.Is(err, ErrCrashed):
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
	default:
		// A durability failure (failed append or barrier): the upload was
		// not acknowledged and the same document can safely be resent.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "report requires GET", http.StatusMethodNotAllowed)
		return
	}
	rep := s.agg.Fold()
	if r.URL.Query().Get("format") == "json" {
		// Buffer the export before touching the ResponseWriter: once a 200
		// and partial body are out, an error can only corrupt the stream.
		// The buffer comes from (and returns to) a pool, so steady scraping
		// reuses one export-sized allocation instead of minting a new one.
		buf := exportBufPool.Get().(*bytes.Buffer)
		buf.Reset()
		err := s.exportReport(rep, buf)
		if err != nil {
			exportBufPool.Put(buf)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf.Bytes())
		exportBufPool.Put(buf)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "fleet report: %d root causes, %d diagnosed hangs\n\n", rep.Len(), rep.TotalHangs())
	fmt.Fprint(w, rep.Render())
}

// handleSnapshot serves the folded fleet report in canonical binary form —
// the node half of the regional fold protocol. Because the encoding is
// canonical, two nodes holding identical state serve identical bytes, and
// a regional fold of node snapshots is byte-identical to folding the same
// uploads on one node. Every response carries the node's version vector
// (X-Hangdoctor-Vector); a client that echoes it back via ?since= gets a
// delta — only the entries changed after that vector, plus the absolute
// health section — marked X-Hangdoctor-Snapshot: delta. An incomparable
// vector (node restart, shard-count change) degrades to a full snapshot,
// so polling self-heals without client-side special cases.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "snapshot requires GET", http.StatusMethodNotAllowed)
		return
	}
	var (
		rep  *core.Report
		vec  VersionVector
		kind = SnapshotFull
	)
	if sinceStr := r.URL.Query().Get("since"); sinceStr != "" {
		since, err := ParseVersionVector(sinceStr)
		if err != nil {
			http.Error(w, fmt.Sprintf("invalid since vector: %v", err), http.StatusBadRequest)
			return
		}
		var delta bool
		rep, vec, delta = s.agg.Delta(since)
		if delta {
			kind = SnapshotDelta
			s.agg.Metrics().deltaRequests.Inc()
		} else {
			s.agg.Metrics().fullResyncs.Inc()
		}
	} else {
		rep, vec = s.agg.FoldVersioned()
	}
	doc := core.AppendReportBinary(nil, rep)
	w.Header().Set("Content-Type", core.BinaryContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(doc)))
	w.Header().Set(VectorHeader, vec.String())
	w.Header().Set(SnapshotKindHeader, kind)
	w.Write(doc)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Once Close (or Crash) has begun the server can no longer accept
	// uploads; report that as 503 "draining" so load balancers stop
	// routing to it instead of reading an unconditional "ok".
	snap := s.agg.Snapshot()
	status, code := "ok", http.StatusOK
	if snap.FoldErrors > 0 {
		// Some fold served an empty report in place of real shard state; the
		// node still answers (200) but readers should distrust its folds.
		status = "degraded"
	}
	if s.agg.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":         status,
		"shards":         s.agg.Shards(),
		"queue_depth":    snap.QueueDepth,
		"queue_capacity": snap.QueueCapacity,
		"accepted":       snap.Accepted,
		"rejected":       snap.Rejected,
		"invalid":        snap.Invalid,
		"fold_errors":    snap.FoldErrors,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Project live shard state into the registry, then let obs render the
	// whole exposition — one formatter for every metric surface.
	s.agg.scrape()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.agg.Metrics().Registry().WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.agg.Snapshot())
}

// handleMetricsSnapshot serves the registry as an obs.Snapshot document —
// the node half of regional metrics aggregation: a fleet-agg unmarshals
// each node's snapshot and folds them with obs.MergeSnapshots.
func (s *Server) handleMetricsSnapshot(w http.ResponseWriter, r *http.Request) {
	s.agg.scrape()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.agg.Metrics().Registry().Snapshot())
}
