package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"hangdoctor/internal/core"
)

// Server is the HTTP face of an Aggregator:
//
//	POST /v1/upload    — one (*core.Report).Export JSON document per request
//	GET  /v1/report    — the folded fleet report (text, or ?format=json)
//	GET  /healthz      — liveness + queue occupancy
//	GET  /metrics      — Prometheus text exposition (obs registry)
//	GET  /metrics.json — the same state as one AggregatorSnapshot JSON document
type Server struct {
	agg *Aggregator
	// MaxBodyBytes bounds an upload document (default 8 MiB); oversized
	// bodies fail validation rather than exhausting memory.
	MaxBodyBytes int64
	// RetryAfter is the backoff advertised on 429 responses (default 1s).
	RetryAfter time.Duration
}

// NewServer wraps an aggregator with default limits.
func NewServer(agg *Aggregator) *Server {
	return &Server{agg: agg, MaxBodyBytes: 8 << 20, RetryAfter: time.Second}
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/upload", s.handleUpload)
	mux.HandleFunc("/v1/report", s.handleReport)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	return mux
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "upload requires POST", http.StatusMethodNotAllowed)
		return
	}
	var err error
	var rep *core.Report
	if s.agg.Durable() {
		// On a durable aggregator 202 means "on disk": hash the raw body
		// into the upload's identity (so a client retry of the same
		// document is idempotent), then wait for the WAL barrier.
		body, rerr := io.ReadAll(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes))
		if rerr != nil {
			s.agg.Metrics().NoteInvalid()
			http.Error(w, fmt.Sprintf("invalid report: %v", rerr), http.StatusBadRequest)
			return
		}
		rep, err = core.ImportReport(bytes.NewReader(body))
		if err == nil {
			err = s.agg.SubmitDurable(rep, ComputeUploadID(body))
		}
	} else {
		rep, err = core.ImportReport(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes))
		if err == nil {
			err = s.agg.Submit(rep)
		}
	}
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{
			"status": "accepted", "entries": rep.Len(), "hangs": rep.TotalHangs(),
		})
	case rep == nil:
		s.agg.Metrics().NoteInvalid()
		http.Error(w, fmt.Sprintf("invalid report: %v", err), http.StatusBadRequest)
	case errors.Is(err, ErrQueueFull):
		// Backpressure: the device should retry after a pause instead of the
		// server buffering without bound.
		w.Header().Set("Retry-After", strconv.Itoa(int((s.RetryAfter+time.Second-1)/time.Second)))
		http.Error(w, "ingest queue full, retry later", http.StatusTooManyRequests)
	case errors.Is(err, ErrClosed), errors.Is(err, ErrCrashed):
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
	default:
		// A durability failure (failed append or barrier): the upload was
		// not acknowledged and the same document can safely be resent.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "report requires GET", http.StatusMethodNotAllowed)
		return
	}
	rep := s.agg.Fold()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := rep.Export(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "fleet report: %d root causes, %d diagnosed hangs\n\n", rep.Len(), rep.TotalHangs())
	fmt.Fprint(w, rep.Render())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Once Close (or Crash) has begun the server can no longer accept
	// uploads; report that as 503 "draining" so load balancers stop
	// routing to it instead of reading an unconditional "ok".
	status, code := "ok", http.StatusOK
	if s.agg.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	snap := s.agg.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":         status,
		"shards":         s.agg.Shards(),
		"queue_depth":    snap.QueueDepth,
		"queue_capacity": snap.QueueCapacity,
		"accepted":       snap.Accepted,
		"rejected":       snap.Rejected,
		"invalid":        snap.Invalid,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Project live shard state into the registry, then let obs render the
	// whole exposition — one formatter for every metric surface.
	s.agg.scrape()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.agg.Metrics().Registry().WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.agg.Snapshot())
}
