package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"hangdoctor/internal/core"
)

// Server is the HTTP face of an Aggregator:
//
//	POST /v1/upload  — one (*core.Report).Export JSON document per request
//	GET  /v1/report  — the folded fleet report (text, or ?format=json)
//	GET  /healthz    — liveness + queue occupancy
//	GET  /metrics    — Prometheus text exposition
type Server struct {
	agg *Aggregator
	// MaxBodyBytes bounds an upload document (default 8 MiB); oversized
	// bodies fail validation rather than exhausting memory.
	MaxBodyBytes int64
	// RetryAfter is the backoff advertised on 429 responses (default 1s).
	RetryAfter time.Duration
}

// NewServer wraps an aggregator with default limits.
func NewServer(agg *Aggregator) *Server {
	return &Server{agg: agg, MaxBodyBytes: 8 << 20, RetryAfter: time.Second}
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/upload", s.handleUpload)
	mux.HandleFunc("/v1/report", s.handleReport)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "upload requires POST", http.StatusMethodNotAllowed)
		return
	}
	rep, err := core.ImportReport(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes))
	if err != nil {
		s.agg.Metrics().NoteInvalid()
		http.Error(w, fmt.Sprintf("invalid report: %v", err), http.StatusBadRequest)
		return
	}
	switch err := s.agg.Submit(rep); err {
	case nil:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{
			"status": "accepted", "entries": rep.Len(), "hangs": rep.TotalHangs(),
		})
	case ErrQueueFull:
		// Backpressure: the device should retry after a pause instead of the
		// server buffering without bound.
		w.Header().Set("Retry-After", strconv.Itoa(int((s.RetryAfter+time.Second-1)/time.Second)))
		http.Error(w, "ingest queue full, retry later", http.StatusTooManyRequests)
	case ErrClosed:
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "report requires GET", http.StatusMethodNotAllowed)
		return
	}
	rep := s.agg.Fold()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := rep.Export(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "fleet report: %d root causes, %d diagnosed hangs\n\n", rep.Len(), rep.TotalHangs())
	fmt.Fprint(w, rep.Render())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ms := s.agg.Metrics().Snapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"shards":         s.agg.Shards(),
		"queue_depth":    s.agg.QueueDepth(),
		"queue_capacity": ms.QueueCapacity,
		"accepted":       ms.Accepted,
		"rejected":       ms.Rejected,
		"invalid":        ms.Invalid,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ms := s.agg.Metrics().Snapshot()
	stats := s.agg.ShardStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("hangdoctor_fleet_uploads_accepted_total", "Uploads admitted to the intake queue.", ms.Accepted)
	counter("hangdoctor_fleet_uploads_rejected_total", "Uploads refused for backpressure or shutdown.", ms.Rejected)
	counter("hangdoctor_fleet_uploads_invalid_total", "Uploads that failed validation.", ms.Invalid)
	gauge("hangdoctor_fleet_queue_depth", "Current intake backlog.", int64(s.agg.QueueDepth()))
	gauge("hangdoctor_fleet_queue_capacity", "Configured intake bound.", int64(ms.QueueCapacity))
	counter("hangdoctor_fleet_merges_total", "Shard merge calls.", ms.Merges)
	counter("hangdoctor_fleet_merged_fragments_total", "Fragments folded across all merges.", ms.MergedFragments)
	counter("hangdoctor_fleet_merge_latency_ns_sum", "Total wall time inside shard merges.", ms.MergeNs)

	var entries, hangs int64
	var health core.Health
	fmt.Fprintf(w, "# HELP hangdoctor_fleet_shard_entries Root-cause entries owned by each shard.\n# TYPE hangdoctor_fleet_shard_entries gauge\n")
	for i, st := range stats {
		fmt.Fprintf(w, "hangdoctor_fleet_shard_entries{shard=\"%d\"} %d\n", i, st.Entries)
		entries += int64(st.Entries)
		hangs += int64(st.Hangs)
		health.Add(st.Health)
	}
	gauge("hangdoctor_fleet_entries", "Distinct root causes fleet-wide.", entries)
	gauge("hangdoctor_fleet_hangs", "Diagnosed soft hangs fleet-wide.", hangs)
	for _, hc := range []struct {
		name string
		v    int
	}{
		{"perf_open_failures", health.PerfOpenFailures},
		{"perf_open_retries", health.PerfOpenRetries},
		{"counters_lost", health.CountersLost},
		{"render_lost", health.RenderLost},
		{"stacks_dropped", health.StacksDropped},
		{"stacks_truncated", health.StacksTruncated},
		{"sampler_overruns", health.SamplerOverruns},
		{"verdicts_deferred", health.VerdictsDeferred},
		{"low_confidence", health.LowConfidence},
		{"quarantines", health.Quarantines},
	} {
		name := "hangdoctor_fleet_health_" + hc.name
		gauge(name, "Summed degraded-mode health counter across devices.", int64(hc.v))
	}
}
