package fleet

import (
	"fmt"

	"hangdoctor/internal/core"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
)

// SyntheticUpload builds a deterministic device report for load generation
// and benchmarks: `entries` diagnosed root causes drawn from a bounded pool
// so that different devices overlap on the hot causes (the realistic fleet
// shape — merging mostly hits existing entries) while the tail stays unique.
// The same (seed, device, entries) always yields the same report.
func SyntheticUpload(seed int64, device string, entries int) *core.Report {
	rng := simrand.New(uint64(seed))
	rep := core.NewReport()
	for i := 0; i < entries; i++ {
		app := fmt.Sprintf("app-%02d", rng.Intn(8))
		action := fmt.Sprintf("%s/Action-%02d", app, rng.Intn(24))
		// File/line/kind are functions of the root cause, as with real
		// diagnoses (the registry maps a method to one source location):
		// merge commutativity depends on key-colliding entries agreeing on
		// their metadata.
		op := rng.Intn(200)
		diag := core.Diagnosis{
			RootCause:  fmt.Sprintf("com.example.blocking.Op%03d.run", op),
			File:       fmt.Sprintf("Op%03d.java", op),
			Line:       1 + op*7%899,
			Occurrence: 0.5 + rng.Float64()/2,
			ViaCaller:  op%17 == 0,
		}
		rt := simclock.Duration(100+rng.Intn(1900)) * simclock.Millisecond
		for h := 0; h < 1+rng.Intn(3); h++ {
			rep.Add(app, device, action, diag, rt)
		}
	}
	return rep
}
