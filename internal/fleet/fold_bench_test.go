package fleet

// fold_bench_test.go measures the incremental read path against the
// from-scratch serial fold it replaced. All rows run at the same state
// size so they are directly comparable:
//
//	BenchmarkFold/cold      — FoldSerial: every shard deep-clones, serial
//	                          merge (the pre-incremental cost, the baseline)
//	BenchmarkFold/warm      — Fold with nothing changed: cached COW shard
//	                          snapshots + version-vector fold cache hit
//	BenchmarkFold/dirty1pct — Fold after ~1% of entries churned: COW
//	                          re-clone of the dirty set, re-merge of the
//	                          touched shards only
//
//	BenchmarkRegionalPoll/full  — stateless full-snapshot fold of N nodes
//	BenchmarkRegionalPoll/delta — steady-state delta poll of the same nodes
//
// CI gates warm and dirty1pct at ≥5x faster than cold (ns/op), so the
// "reads scale with change, not state" property is pinned, not asserted.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
)

// benchState loads one aggregator with a deterministic fleet: `devices`
// devices × `entries` draws from the bounded synthetic key pool. Returns
// after every merge completed, so shard state is fixed.
func benchState(b *testing.B, shards, devices, entries int) *Aggregator {
	b.Helper()
	agg := NewAggregator(Config{Shards: shards, QueueDepth: 4096, BatchSize: 16})
	for d := 0; d < devices; d++ {
		rep := SyntheticUpload(int64(100+d), fmt.Sprintf("device-%04d", d), entries)
		id, err := ReportUploadID(rep)
		if err != nil {
			b.Fatal(err)
		}
		for {
			err := agg.SubmitDurable(rep, id)
			if err == ErrQueueFull {
				continue
			}
			if err != nil {
				b.Fatal(err)
			}
			break
		}
	}
	return agg
}

// churn merges one small upload (~1% of the fleet's entry count) and
// returns after the merge, dirtying a handful of shards.
func churn(b *testing.B, agg *Aggregator, seq int, entries int) {
	b.Helper()
	rep := SyntheticUpload(int64(1_000_000+seq), fmt.Sprintf("device-churn-%04d", seq%64), entries)
	id, err := ReportUploadID(rep)
	if err != nil {
		b.Fatal(err)
	}
	for {
		err := agg.SubmitDurable(rep, id)
		if err == ErrQueueFull {
			continue
		}
		if err != nil {
			b.Fatal(err)
		}
		break
	}
}

func BenchmarkFold(b *testing.B) {
	// 512 devices × 120 draws from the bounded key pool: ~13k distinct
	// entries whose hot keys accumulate hundreds-strong device sets — the
	// shape where from-scratch folding (device-set deep copies) hurts and
	// map-header-sharing COW reads pay off.
	const shards, devices, entries = 8, 512, 120
	agg := benchState(b, shards, devices, entries)
	defer agg.Close()
	total := agg.Fold().Len()
	// ~1% of distinct entries per churn upload (each draw yields ~1 entry).
	churnEntries := total / 100
	if churnEntries < 1 {
		churnEntries = 1
	}
	b.Logf("state: %d entries across %d shards, churn=%d entries/op", total, shards, churnEntries)

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if agg.FoldSerial().Len() != total {
				b.Fatal("cold fold lost entries")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		agg.Fold() // prime the caches
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if agg.Fold().Len() != total {
				b.Fatal("warm fold lost entries")
			}
		}
	})
	b.Run("dirty1pct", func(b *testing.B) {
		agg.Fold()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			churn(b, agg, i, churnEntries)
			b.StartTimer()
			if agg.Fold().Len() < total {
				b.Fatal("dirty fold lost entries")
			}
		}
	})
}

func BenchmarkRegionalPoll(b *testing.B) {
	const nodes = 2
	var urls []string
	for n := 0; n < nodes; n++ {
		agg := benchState(b, 4, 128, 120)
		defer agg.Close()
		ts := httptest.NewServer(NewServer(agg).Handler())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	ctx := context.Background()

	b.Run("full", func(b *testing.B) {
		reg := NewRegional(urls, nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := reg.Fold(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if rep.Len() == 0 {
				b.Fatal("empty regional fold")
			}
		}
	})
	b.Run("delta", func(b *testing.B) {
		reg := NewRegional(urls, nil)
		if res := reg.PollDelta(ctx); res.Failed != 0 {
			b.Fatalf("prime poll failed: %v", res.Errs)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := reg.PollDelta(ctx)
			if res.Failed != 0 {
				b.Fatalf("poll failed: %v", res.Errs)
			}
			if res.Report.Len() == 0 {
				b.Fatal("empty regional poll")
			}
		}
	})
}
