package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hangdoctor/internal/core"
	"hangdoctor/internal/fault"
	"hangdoctor/internal/simrand"
)

// crashRun drives one crash-recovery differential: a fleet of goroutines
// uploads durably while the aggregator is crashed at a random ack count,
// then a second aggregator recovers the directory (with a clean FS),
// unacknowledged uploads are resent, and the fold must be byte-identical
// to a serial merge of every upload. That is the acceptance bar: every
// 202-acked upload survives the crash, and resending the rest converges
// to exactly the unbroken run's answer.
func crashRun(t *testing.T, seed uint64, fs fault.FS) {
	t.Helper()
	dir := t.TempDir()
	rng := simrand.New(seed).Derive("crash-test")
	const nUploads = 48
	reps := uploads(nUploads, 25)
	serial := core.NewReport()
	serial.Merge(reps...)
	want := exportBytes(t, serial)

	ids := make([]UploadID, nUploads)
	for i, r := range reps {
		id, err := ReportUploadID(r)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	cfg := durableCfg(dir, 4)
	cfg.WAL.FS = fs
	// Startup itself writes through the faulty FS (log headers, possibly a
	// torn-tail repair), so under injection Open may legitimately fail; a
	// retry draws the next decisions from the per-file fault streams, like
	// a supervisor restarting a crashed fleetd on a sick disk.
	agg, err := Open(cfg)
	for attempt := 0; err != nil && attempt < 100; attempt++ {
		agg, err = Open(cfg)
	}
	if err != nil {
		t.Fatalf("Open never succeeded under injection: %v", err)
	}

	// Crash once the ack count crosses a random threshold — anywhere from
	// "almost nothing durable" to "almost everything durable".
	crashAt := int64(1 + rng.Intn(nUploads-1))
	var ackCount atomic.Int64
	acked := make([]atomic.Bool, nUploads)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				err := agg.SubmitDurable(reps[i].Clone(), ids[i])
				for errors.Is(err, ErrQueueFull) {
					err = agg.SubmitDurable(reps[i].Clone(), ids[i])
				}
				if err == nil {
					acked[i].Store(true)
					if ackCount.Add(1) == crashAt {
						go agg.Crash()
					}
				}
			}
		}()
	}
	for i := range reps {
		work <- i
	}
	close(work)
	wg.Wait()
	agg.Crash() // idempotent: covers the run finishing before crashAt acks

	// Recover with a clean filesystem: the faults modeled a sick disk or a
	// torn crash, not permanent media loss.
	cfg2 := durableCfg(dir, 4)
	recovered, err := Open(cfg2)
	if err != nil {
		t.Fatalf("seed %d: recovery failed: %v", seed, err)
	}

	// Invariant 1: every acknowledged upload is present in the recovered
	// state — acked means the WAL barrier completed before the crash.
	folded := recovered.Fold()
	for i := range reps {
		if acked[i].Load() && !reportContains(folded, reps[i]) {
			recovered.Close()
			t.Fatalf("seed %d: acked upload %d missing after recovery", seed, i)
		}
	}

	// Invariant 2: resending every unacknowledged upload (and, for good
	// measure, a few acked ones — dedup makes that a no-op) converges to
	// the unbroken run byte-for-byte.
	for i := range reps {
		if !acked[i].Load() || i%7 == 0 {
			if err := recovered.SubmitDurable(reps[i].Clone(), ids[i]); err != nil {
				recovered.Close()
				t.Fatalf("seed %d: resend %d: %v", seed, i, err)
			}
		}
	}
	recovered.Close()
	if got := exportBytes(t, recovered.Fold()); !bytes.Equal(got, want) {
		t.Fatalf("seed %d: recovered+resent fold diverged from serial merge (crash after %d acks)", seed, crashAt)
	}
}

// reportContains reports whether every entry of sub is accounted for in
// super: same root cause present, with counts at least as large. (Merge
// only ever adds, so a durable fragment can never shrink an entry.)
func reportContains(super, sub *core.Report) bool {
	byKey := make(map[string]*core.ReportEntry, super.Len())
	for _, e := range super.Entries() {
		byKey[e.App+"\x00"+e.ActionUID+"\x00"+e.RootCause] = e
	}
	for _, e := range sub.Entries() {
		se, ok := byKey[e.App+"\x00"+e.ActionUID+"\x00"+e.RootCause]
		if !ok || se.Hangs < e.Hangs || se.SumResponse < e.SumResponse ||
			se.MaxResponse < e.MaxResponse {
			return false
		}
	}
	return true
}

// TestCrashRecoveryDifferential sweeps crash points on a healthy disk.
func TestCrashRecoveryDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			crashRun(t, seed, nil)
		})
	}
}

// TestCrashRecoveryUnderStorageFaults repeats the differential while the
// first run's writes go through the storage-fault injector: torn writes,
// fsync failures, and intermittent disk-full. Faulted uploads simply are
// not acknowledged; the invariants are identical.
func TestCrashRecoveryUnderStorageFaults(t *testing.T) {
	cases := []struct {
		name  string
		rates fault.StorageRates
	}{
		{"torn-write", fault.StorageRates{TornWrite: 0.05}},
		{"fsync-fail", fault.StorageRates{FsyncFail: 0.05}},
		{"disk-full", fault.StorageRates{DiskFull: 0.05}},
		{"mixed", fault.StorageRates{TornWrite: 0.03, FsyncFail: 0.03, DiskFull: 0.02}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
					fs := fault.FaultyFS(fault.DiskFS, fault.NewStorage(seed*977, tc.rates))
					crashRun(t, seed, fs)
				})
			}
		})
	}
}
