package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"hangdoctor/internal/core"
)

// TestRingDeterministic pins that the ring is a pure function of the node
// set: construction order must not matter, and repeated lookups agree.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"node-a", "node-b", "node-c"}, 64)
	b := NewRing([]string{"node-c", "node-a", "node-b"}, 64)
	for i := 0; i < 1000; i++ {
		dev := fmt.Sprintf("device-%06d", i)
		if a.Node(dev) != b.Node(dev) {
			t.Fatalf("ring depends on construction order: %s → %s vs %s", dev, a.Node(dev), b.Node(dev))
		}
	}
}

// TestRingBalance checks the virtual points spread devices roughly evenly:
// with 128 points per node no node should own more than twice its fair
// share of a large device population.
func TestRingBalance(t *testing.T) {
	nodes := []string{"node-a", "node-b", "node-c", "node-d"}
	ring := NewRing(nodes, 0) // default replicas
	counts := map[string]int{}
	const devices = 20000
	for i := 0; i < devices; i++ {
		counts[ring.Node(fmt.Sprintf("device-%06d", i))]++
	}
	fair := devices / len(nodes)
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Fatalf("node %s owns no devices", n)
		}
		if counts[n] > 3*fair/2 {
			t.Errorf("node %s owns %d devices (fair share %d)", n, counts[n], fair)
		}
	}
	// Sequential device names must not cluster on one arc (the failure mode
	// of a hash without a finalizer): a small consecutive window already
	// spreads across nodes.
	window := map[string]bool{}
	for i := 0; i < 64; i++ {
		window[ring.Node(fmt.Sprintf("device-%06d", i))] = true
	}
	if len(window) < 2 {
		t.Errorf("first 64 sequential devices all routed to one node: %v", window)
	}
}

// TestRingRemapLocality pins the consistent-hashing property the
// dictionary tier depends on: removing one node remaps only the devices it
// owned — every other device keeps its node, so its dictionary survives.
func TestRingRemapLocality(t *testing.T) {
	before := NewRing([]string{"node-a", "node-b", "node-c", "node-d"}, 0)
	after := NewRing([]string{"node-a", "node-b", "node-c"}, 0)
	for i := 0; i < 5000; i++ {
		dev := fmt.Sprintf("device-%06d", i)
		was := before.Node(dev)
		now := after.Node(dev)
		if was != "node-d" && now != was {
			t.Fatalf("device %s moved %s → %s though its node never left", dev, was, now)
		}
	}
}

// newNode boots one complete fleetd node — aggregator plus HTTP server —
// and returns the test server.
func newNode(t *testing.T, shards int) (*Aggregator, *httptest.Server) {
	t.Helper()
	agg := NewAggregator(Config{Shards: shards, QueueDepth: 64})
	ts := httptest.NewServer(NewServer(agg).Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { agg.Close() })
	return agg, ts
}

// TestRegionalFoldByteIdentical is the multi-node determinism bar: the
// same uploads routed by device across two fleetd nodes, snapshotted and
// folded by the regional tier, must produce a report byte-identical to a
// single aggregator having ingested everything — and the regional metrics
// fold must account for every accepted upload.
func TestRegionalFoldByteIdentical(t *testing.T) {
	agg1, node1 := newNode(t, 3)
	agg2, node2 := newNode(t, 2)
	nodeAgg := map[string]*Aggregator{node1.URL: agg1, node2.URL: agg2}
	ring := NewRing([]string{node1.URL, node2.URL}, 0)

	const devices, uploadsPer = 12, 3
	serial := core.NewReport()
	encs := map[string]*core.BinaryEncoder{}
	for seq := 0; seq < uploadsPer; seq++ {
		for d := 0; d < devices; d++ {
			device := fmt.Sprintf("device-%03d", d)
			rep := SyntheticUpload(int64(100+d*7+seq), device, 25)
			serial.Merge(rep)
			enc := encs[device]
			if enc == nil {
				enc = core.NewBinaryEncoder(device)
				encs[device] = enc
			}
			node := ring.Node(device)
			resp, err := http.Post(node+"/v1/upload", core.BinaryContentType,
				bytes.NewReader(enc.Encode(rep)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("device %s seq %d on %s: status %d", device, seq, node, resp.StatusCode)
			}
		}
	}
	// Routing by ring means each device hit exactly one node, so every
	// upload past the first rode that node's dictionary: no resyncs.
	var accepted int64
	for _, agg := range nodeAgg {
		s := agg.Metrics().Snapshot()
		accepted += s.Accepted
		if s.DictMismatches != 0 {
			t.Errorf("node saw %d dict mismatches; ring affinity should avoid all", s.DictMismatches)
		}
	}
	if accepted != devices*uploadsPer {
		t.Fatalf("nodes accepted %d uploads, want %d", accepted, devices*uploadsPer)
	}

	// A 202 acknowledges the enqueue, not the merge: drain both nodes
	// (Close is idempotent) so their snapshots are final before folding.
	agg1.Close()
	agg2.Close()

	reg := NewRegional([]string{node1.URL, node2.URL}, nil)
	folded, err := reg.Fold(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := exportBytes(t, folded), exportBytes(t, serial); !bytes.Equal(got, want) {
		t.Error("regional fold diverged from single-aggregator merge")
	}

	// The metrics fold sums per series: regional accepted must equal the
	// sum over nodes, and the binary-upload counter must cover every send.
	merged, err := reg.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Value("hangdoctor_fleet_uploads_accepted_total"); got != accepted {
		t.Errorf("merged accepted = %d, want %d", got, accepted)
	}
	if got := merged.Value("hangdoctor_fleet_uploads_binary_total"); got != devices*uploadsPer {
		t.Errorf("merged binary uploads = %d, want %d", got, devices*uploadsPer)
	}
}

// TestRegionalFoldFailsClosed pins the partial-region policy: if any node
// is unreachable the fold errors rather than silently under-counting.
func TestRegionalFoldFailsClosed(t *testing.T) {
	_, node := newNode(t, 1)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gone", http.StatusBadGateway)
	}))
	defer dead.Close()

	reg := NewRegional([]string{node.URL, dead.URL}, nil)
	if _, err := reg.Fold(context.Background()); err == nil {
		t.Fatal("fold over a failing node succeeded; partial regions must fail closed")
	}
}
