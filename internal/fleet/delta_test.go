package fleet

// delta_test.go covers the incremental read path end to end: version
// vectors on the wire, the /v1/snapshot?since= delta protocol, the cached
// fold's byte-identity to the serial from-scratch fold under racing
// ingest, and the regional tier's delta polling — including the
// self-healing full resync after a simulated node restart.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"hangdoctor/internal/core"
)

// mergeAll submits reps and returns only after every one has merged
// (SubmitDurable without a WAL acks post-merge), so the caller's next
// fold is a deterministic quiescent point.
func mergeAll(t *testing.T, agg *Aggregator, reps ...*core.Report) {
	t.Helper()
	for _, rep := range reps {
		id, err := ReportUploadID(rep)
		if err != nil {
			t.Fatal(err)
		}
		for {
			err := agg.SubmitDurable(rep, id)
			if err == ErrQueueFull {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			break
		}
	}
}

func TestVersionVectorRoundTrip(t *testing.T) {
	vecs := []VersionVector{
		{},
		{Epoch: 7},
		{Epoch: 42, Shards: []uint64{0, 3, 9000000000}},
	}
	for _, v := range vecs {
		got, err := ParseVersionVector(v.String())
		if err != nil {
			t.Fatalf("round trip %q: %v", v.String(), err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %q: got %q", v.String(), got.String())
		}
	}
	if !(VersionVector{}).Zero() || (VersionVector{Epoch: 1}).Zero() {
		t.Error("Zero() misclassifies")
	}
	if (VersionVector{Epoch: 1, Shards: []uint64{2}}).Equal(VersionVector{Epoch: 1, Shards: []uint64{3}}) {
		t.Error("Equal ignores shard versions")
	}
	for _, bad := range []string{"", "7", "x:1.2", "7:1.x", "7:1..2"} {
		if _, err := ParseVersionVector(bad); err == nil {
			t.Errorf("ParseVersionVector(%q) accepted garbage", bad)
		}
	}
}

// getSnapshot GETs /v1/snapshot (optionally with ?since=) and returns the
// decoded body plus the response's vector and kind headers.
func getSnapshot(t *testing.T, base, since string) (*core.WireReport, VersionVector, string, int) {
	t.Helper()
	u := base + "/v1/snapshot"
	if since != "" {
		u += "?since=" + url.QueryEscape(since)
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, VersionVector{}, "", resp.StatusCode
	}
	wr, err := core.NewBinaryDecoder().Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	vec, err := ParseVersionVector(resp.Header.Get(VectorHeader))
	if err != nil {
		t.Fatalf("bad %s header: %v", VectorHeader, err)
	}
	return wr, vec, resp.Header.Get(SnapshotKindHeader), resp.StatusCode
}

// TestSnapshotDeltaHTTP drives the delta protocol over real HTTP: a full
// snapshot carries the vector, echoing it back yields an empty delta, new
// uploads yield a delta that converges a client mirror to the node's
// serial fold, a garbled vector is a 400, and an alien epoch resyncs in
// full.
func TestSnapshotDeltaHTTP(t *testing.T) {
	agg, node := newNode(t, 3)
	mergeAll(t, agg, uploads(10, 30)...)

	wr, vec, kind, _ := getSnapshot(t, node.URL, "")
	if kind != SnapshotFull {
		t.Fatalf("initial snapshot kind = %q, want %q", kind, SnapshotFull)
	}
	if len(vec.Shards) != 3 || vec.Epoch == 0 {
		t.Fatalf("vector %q does not cover 3 shards with a nonzero epoch", vec.String())
	}
	mirror := core.NewReport()
	mirror.ApplyWireFull(wr)
	if !bytes.Equal(exportBytes(t, mirror), exportBytes(t, agg.FoldSerial())) {
		t.Fatal("full snapshot does not match the serial fold")
	}

	// Nothing changed: the delta is entry-less and the vector holds still.
	wr, vec2, kind, _ := getSnapshot(t, node.URL, vec.String())
	if kind != SnapshotDelta || len(wr.Entries) != 0 || !vec2.Equal(vec) {
		t.Fatalf("quiescent delta: kind=%q entries=%d vector=%q", kind, len(wr.Entries), vec2.String())
	}

	mergeAll(t, agg, uploads(6, 20)...)
	wr, vec3, kind, _ := getSnapshot(t, node.URL, vec.String())
	if kind != SnapshotDelta || len(wr.Entries) == 0 {
		t.Fatalf("post-ingest delta: kind=%q entries=%d", kind, len(wr.Entries))
	}
	mirror.ApplyWireDelta(wr)
	if !bytes.Equal(exportBytes(t, mirror), exportBytes(t, agg.FoldSerial())) {
		t.Fatal("mirror after delta apply diverged from the serial fold")
	}
	// And the new vector is again a fixed point.
	wr, _, kind, _ = getSnapshot(t, node.URL, vec3.String())
	if kind != SnapshotDelta || len(wr.Entries) != 0 {
		t.Fatalf("vector %q is not a fixed point: kind=%q entries=%d", vec3.String(), kind, len(wr.Entries))
	}

	if _, _, _, code := getSnapshot(t, node.URL, "not-a-vector"); code != http.StatusBadRequest {
		t.Errorf("garbled since vector: status %d, want 400", code)
	}
	alien := VersionVector{Epoch: vec.Epoch + 1, Shards: vec.Shards}
	if _, _, kind, _ := getSnapshot(t, node.URL, alien.String()); kind != SnapshotFull {
		t.Errorf("alien epoch answered %q, want a full resync", kind)
	}
	snap := agg.Metrics().Snapshot()
	if snap.DeltaRequests == 0 || snap.FullResyncs == 0 {
		t.Errorf("protocol counters not accounted: deltas=%d resyncs=%d", snap.DeltaRequests, snap.FullResyncs)
	}
}

// TestFoldCachedByteIdenticalUnderRace is the differential test the
// tentpole pins: with writers racing readers, every quiescent point must
// see the cached incremental Fold byte-identical to the uncached serial
// FoldSerial — and both identical to a serial Merge of everything
// submitted so far. Run under -race this also proves the snapshot and
// fold caches never share mutable state with the shard writers.
func TestFoldCachedByteIdenticalUnderRace(t *testing.T) {
	agg := NewAggregator(Config{Shards: 4, QueueDepth: 64, BatchSize: 4})
	defer agg.Close()
	serial := core.NewReport()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					// Reads race the writers; the result is some consistent
					// merge boundary, checked for bytes at quiescent points.
					agg.Fold()
				}
			}
		}()
	}

	for round := 0; round < 4; round++ {
		reps := make([]*core.Report, 16)
		for i := range reps {
			reps[i] = SyntheticUpload(int64(1000+round*100+i), fmt.Sprintf("device-r%d-%02d", round, i), 25)
			serial.Merge(reps[i])
		}
		var writers sync.WaitGroup
		for w := 0; w < 4; w++ {
			writers.Add(1)
			go func(w int) {
				defer writers.Done()
				for i := w; i < len(reps); i += 4 {
					// SubmitDurable acks after the merge (no WAL configured),
					// which is the quiescence barrier the comparison needs —
					// SubmitWait acks on enqueue only.
					id, _ := ReportUploadID(reps[i])
					for {
						err := agg.SubmitDurable(reps[i], id)
						if err == ErrQueueFull {
							continue
						}
						if err != nil {
							t.Errorf("submit: %v", err)
						}
						break
					}
				}
			}(w)
		}
		writers.Wait()
		// Quiescent: every SubmitDurable ack means its merge completed.
		want := exportBytes(t, serial)
		if got := exportBytes(t, agg.FoldSerial()); !bytes.Equal(got, want) {
			t.Fatalf("round %d: serial fold diverged from serial merge", round)
		}
		if got := exportBytes(t, agg.Fold()); !bytes.Equal(got, want) {
			t.Fatalf("round %d: cached fold diverged from serial merge", round)
		}
		if got := exportBytes(t, agg.Fold()); !bytes.Equal(got, want) {
			t.Fatalf("round %d: repeated cached fold diverged", round)
		}
	}
	close(stop)
	readers.Wait()

	snap := agg.Metrics().Snapshot()
	if snap.FoldCacheHits == 0 {
		t.Error("no fold was ever served from the version-vector cache")
	}
	if snap.FoldErrors != 0 {
		t.Errorf("healthy run recorded %d fold errors", snap.FoldErrors)
	}
}

// TestRegionalDeltaConvergesWithFold pins the regional tier: delta polling
// across rounds must stay byte-identical to the stateless full fold, a
// forced resync must converge to the same bytes, and a second poll round
// must actually ride deltas, not refetches.
func TestRegionalDeltaConvergesWithFold(t *testing.T) {
	agg1, node1 := newNode(t, 3)
	agg2, node2 := newNode(t, 2)
	reg := NewRegional([]string{node1.URL, node2.URL}, nil)
	ctx := context.Background()

	feed := func(agg *Aggregator, seed int) {
		t.Helper()
		for i := 0; i < 8; i++ {
			mergeAll(t, agg, SyntheticUpload(int64(seed+i), fmt.Sprintf("device-%d-%02d", seed, i), 20))
		}
	}
	feed(agg1, 100)
	feed(agg2, 200)

	res := reg.PollDelta(ctx)
	if res.Failed != 0 {
		t.Fatalf("round 1 failed nodes: %v", res.Errs)
	}
	full, err := reg.Fold(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(exportBytes(t, res.Report), exportBytes(t, full)) {
		t.Fatal("round 1 delta-polled region diverged from the full fold")
	}

	feed(agg1, 300)
	res = reg.PollDelta(ctx)
	if res.Failed != 0 || res.Deltas != 2 {
		t.Fatalf("round 2: failed=%d deltas=%d (want 0 failed, 2 delta answers)", res.Failed, res.Deltas)
	}
	full, err = reg.Fold(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(exportBytes(t, res.Report), exportBytes(t, full)) {
		t.Fatal("round 2 delta-polled region diverged from the full fold")
	}

	// The report handed out in round 2 must stay frozen while later rounds
	// mutate the master (copy-on-write serving).
	frozen := exportBytes(t, res.Report)
	feed(agg2, 400)
	res3 := reg.PollDelta(ctx)
	if bytes.Equal(exportBytes(t, res3.Report), frozen) {
		t.Fatal("round 3 did not observe new uploads")
	}
	if !bytes.Equal(exportBytes(t, res.Report), frozen) {
		t.Fatal("a later poll round mutated a previously returned report")
	}

	reg.ForceResync()
	res4 := reg.PollDelta(ctx)
	if res4.Deltas != 0 {
		t.Fatalf("post-resync round rode %d deltas, want full refetches", res4.Deltas)
	}
	if !bytes.Equal(exportBytes(t, res4.Report), exportBytes(t, res3.Report)) {
		t.Fatal("forced full resync changed the regional bytes")
	}
}

// TestDeltaResyncAfterRestart simulates a node restart: the same URL
// starts answering from a fresh aggregator (new epoch, different shard
// count, different — smaller — state). The next poll must detect the
// incomparable vector, resync that node in full, and shrink the regional
// view to the restarted node's truth.
func TestDeltaResyncAfterRestart(t *testing.T) {
	agg1 := NewAggregator(Config{Shards: 3, QueueDepth: 64})
	defer agg1.Close()
	var mu sync.Mutex
	handler := NewServer(agg1).Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		h := handler
		mu.Unlock()
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()

	for i := 0; i < 10; i++ {
		mergeAll(t, agg1, SyntheticUpload(int64(500+i), fmt.Sprintf("device-a%02d", i), 20))
	}
	reg := NewRegional([]string{ts.URL}, nil)
	ctx := context.Background()
	if res := reg.PollDelta(ctx); res.Failed != 0 {
		t.Fatalf("pre-restart poll failed: %v", res.Errs)
	}
	if res := reg.PollDelta(ctx); res.Deltas != 1 {
		t.Fatalf("pre-restart second poll rode %d deltas, want 1", res.Deltas)
	}

	// "Restart" the node: fresh epoch, different shard count, less data.
	agg2 := NewAggregator(Config{Shards: 2, QueueDepth: 64})
	defer agg2.Close()
	for i := 0; i < 3; i++ {
		mergeAll(t, agg2, SyntheticUpload(int64(900+i), fmt.Sprintf("device-b%02d", i), 15))
	}
	mu.Lock()
	handler = NewServer(agg2).Handler()
	mu.Unlock()

	res := reg.PollDelta(ctx)
	if res.Failed != 0 {
		t.Fatalf("post-restart poll failed: %v", res.Errs)
	}
	if res.Deltas != 0 {
		t.Fatal("post-restart poll was answered with a delta; the epoch change must force a full resync")
	}
	if !bytes.Equal(exportBytes(t, res.Report), exportBytes(t, agg2.FoldSerial())) {
		t.Fatal("post-restart region does not match the restarted node's state")
	}
	// And the next round is back on deltas against the new epoch.
	if res := reg.PollDelta(ctx); res.Deltas != 1 {
		t.Fatalf("recovery round rode %d deltas, want 1", res.Deltas)
	}
}

// TestPollDeltaToleratesNodeFailure pins the degraded-not-dark policy: a
// dead node fails its slot but the round still serves every live node's
// state (unlike Fold, which fails closed).
func TestPollDeltaToleratesNodeFailure(t *testing.T) {
	agg, node := newNode(t, 2)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gone", http.StatusBadGateway)
	}))
	defer dead.Close()
	for i := 0; i < 5; i++ {
		mergeAll(t, agg, SyntheticUpload(int64(700+i), fmt.Sprintf("device-c%02d", i), 20))
	}

	reg := NewRegional([]string{node.URL, dead.URL}, nil)
	res := reg.PollDelta(context.Background())
	if res.Failed != 1 {
		t.Fatalf("failed=%d, want exactly the dead node", res.Failed)
	}
	if !bytes.Equal(exportBytes(t, res.Report), exportBytes(t, agg.FoldSerial())) {
		t.Fatal("degraded round lost the live node's state")
	}
}

// TestNodeTimeoutBoundsHungNode pins the per-node fetch timeout on both
// poll surfaces: a node that accepts connections but never answers must
// fail its own fetch within NodeTimeout instead of wedging the round
// (the regression that froze fleet-agg's poll loop on one hung node).
func TestNodeTimeoutBoundsHungNode(t *testing.T) {
	agg, node := newNode(t, 2)
	mergeAll(t, agg, SyntheticUpload(900, "device-t0", 20))

	// Unblock the handler before the server's Close (deferred below) waits
	// for outstanding requests, or teardown itself would hang.
	hang := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-hang
	}))
	defer hung.Close()
	defer close(hang)

	reg := NewRegional([]string{node.URL, hung.URL}, nil)
	reg.NodeTimeout = 50 * time.Millisecond

	start := time.Now()
	res := reg.PollDelta(context.Background())
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("PollDelta took %v with a 50ms node timeout", el)
	}
	if res.Failed != 1 {
		t.Fatalf("failed=%d, want exactly the hung node", res.Failed)
	}
	if !bytes.Equal(exportBytes(t, res.Report), exportBytes(t, agg.FoldSerial())) {
		t.Fatal("hung node displaced the live node's state")
	}

	start = time.Now()
	if _, err := reg.Metrics(context.Background()); err == nil {
		t.Fatal("Metrics succeeded with a hung node")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("Metrics took %v with a 50ms node timeout", el)
	}
}
