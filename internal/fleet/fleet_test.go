package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hangdoctor/internal/core"
)

// uploads builds n distinct synthetic device reports.
func uploads(n, entries int) []*core.Report {
	out := make([]*core.Report, n)
	for i := range out {
		out[i] = SyntheticUpload(int64(100+i), fmt.Sprintf("device-%03d", i), entries)
	}
	return out
}

func exportBytes(t *testing.T, r *core.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedMergeByteIdentical is the determinism guarantee: for any shard
// count, batch size, and submission order, the folded fleet report exports
// and renders byte-identically to a serial Report.Merge of the same uploads.
func TestShardedMergeByteIdentical(t *testing.T) {
	reps := uploads(24, 60)
	serial := core.NewReport()
	serial.Merge(reps...)
	want := exportBytes(t, serial)

	for _, shards := range []int{1, 2, 4, 7} {
		for _, batch := range []int{1, 3, 16} {
			t.Run(fmt.Sprintf("shards=%d/batch=%d", shards, batch), func(t *testing.T) {
				agg := NewAggregator(Config{Shards: shards, BatchSize: batch, QueueDepth: 4})
				for _, r := range reps {
					if err := agg.SubmitWait(r); err != nil {
						t.Fatal(err)
					}
				}
				agg.Close()
				folded := agg.Fold()
				if got := exportBytes(t, folded); !bytes.Equal(got, want) {
					t.Errorf("sharded fold diverged from serial merge\n--- serial ---\n%s\n--- sharded ---\n%s", want, got)
				}
				if folded.Render() != serial.Render() {
					t.Error("rendered report diverged from serial merge")
				}
			})
		}
	}
}

// TestConcurrentUploadsRace hammers one aggregator from many goroutines —
// mixed Submit/SubmitWait, interleaved snapshots and stats — and checks
// nothing is lost. Run under -race this is the single-writer proof.
func TestConcurrentUploadsRace(t *testing.T) {
	reps := uploads(64, 40)
	serial := core.NewReport()
	serial.Merge(reps...)
	agg := NewAggregator(Config{Shards: 4, QueueDepth: 8, BatchSize: 4})

	var wg sync.WaitGroup
	next := make(chan *core.Report)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range next {
				if err := agg.SubmitWait(r); err != nil {
					t.Errorf("submit: %v", err)
				}
			}
		}()
	}
	// Concurrent readers: snapshots and stats must never race the writers.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					agg.Fold()
					agg.ShardStats()
				}
			}
		}()
	}
	for _, r := range reps {
		next <- r
	}
	close(next)
	wg.Wait()
	close(stop)
	readers.Wait()
	agg.Close()

	if got, want := exportBytes(t, agg.Fold()), exportBytes(t, serial); !bytes.Equal(got, want) {
		t.Error("concurrent sharded ingest diverged from serial merge")
	}
	if ms := agg.Metrics().Snapshot(); ms.Accepted != int64(len(reps)) {
		t.Errorf("accepted=%d, want %d", ms.Accepted, len(reps))
	}
}

// wedgeShard blocks a shard goroutine on an unbuffered snapshot reply the
// test controls, making backpressure deterministic: with the shard stuck,
// fragments pile into its channel, then the dispatcher blocks, then the
// bounded intake queue fills.
func wedgeShard(a *Aggregator, i int) (release func()) {
	ch := make(chan shardSnap)
	a.shards[i] <- shardMsg{snap: ch}
	return func() { <-ch }
}

// TestBackpressure: once the intake queue is full, Submit fails fast with
// ErrQueueFull and the HTTP layer turns that into 429 + Retry-After; after
// the jam clears, everything accepted is merged and nothing rejected leaks
// into the fleet view.
func TestBackpressure(t *testing.T) {
	agg := NewAggregator(Config{Shards: 1, QueueDepth: 2, BatchSize: 1, Dispatchers: 1})
	release := wedgeShard(agg, 0)
	srv := NewServer(agg)

	reps := uploads(40, 10)
	var accepted, rejected int
	var kept []*core.Report
	for _, r := range reps {
		err := agg.Submit(r)
		switch err {
		case nil:
			accepted++
			kept = append(kept, r)
		case ErrQueueFull:
			rejected++
		default:
			t.Fatalf("submit: %v", err)
		}
	}
	if rejected == 0 {
		t.Fatal("queue never filled although its consumer was wedged")
	}
	if accepted == 0 {
		t.Fatal("no upload accepted before the queue filled")
	}

	// The HTTP face of the same condition.
	doc := exportBytes(t, reps[0])
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/upload", bytes.NewReader(doc)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("upload against full queue returned %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}

	release()
	agg.Close()
	want := core.NewReport()
	want.Merge(kept...)
	if got := exportBytes(t, agg.Fold()); !bytes.Equal(got, exportBytes(t, want)) {
		t.Error("post-drain fleet view does not equal the accepted uploads")
	}
	if ms := agg.Metrics().Snapshot(); ms.Rejected < int64(rejected)+1 {
		t.Errorf("rejected metric %d below observed rejections %d", ms.Rejected, rejected+1)
	}
}

// TestGracefulShutdownDrains: Close processes every acknowledged upload
// before returning, then refuses new ones (ErrClosed / HTTP 503).
func TestGracefulShutdownDrains(t *testing.T) {
	reps := uploads(32, 30)
	agg := NewAggregator(Config{Shards: 3, QueueDepth: 64})
	for _, r := range reps {
		if err := agg.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	agg.Close()

	serial := core.NewReport()
	serial.Merge(reps...)
	if got, want := exportBytes(t, agg.Fold()), exportBytes(t, serial); !bytes.Equal(got, want) {
		t.Error("drained fleet view incomplete after Close")
	}
	if err := agg.Submit(reps[0]); err != ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	rec := httptest.NewRecorder()
	srv := NewServer(agg)
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/upload", bytes.NewReader(exportBytes(t, reps[0]))))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("upload after Close returned %d, want 503", rec.Code)
	}
	agg.Close() // idempotent
}

// TestServerEndToEnd drives the full HTTP surface over a real listener with
// concurrent clients: uploads, invalid payloads, report in both formats,
// healthz, and metrics.
func TestServerEndToEnd(t *testing.T) {
	agg := NewAggregator(Config{Shards: 4, QueueDepth: 128})
	ts := httptest.NewServer(NewServer(agg).Handler())
	defer ts.Close()

	reps := uploads(20, 25)
	var wg sync.WaitGroup
	for _, r := range reps {
		wg.Add(1)
		go func(doc []byte) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/upload", "application/json", bytes.NewReader(doc))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("upload status %d, want 202", resp.StatusCode)
			}
		}(exportBytes(t, r))
	}
	wg.Wait()

	// Invalid payloads are rejected up front and never reach the shards.
	resp, err := http.Post(ts.URL+"/v1/upload", "application/json", strings.NewReader(`{"version":99}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad version upload status %d, want 400", resp.StatusCode)
	}
	if resp, err = http.Get(ts.URL + "/v1/upload"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET upload status %d, want 405", resp.StatusCode)
	}

	// Before shutdown begins, /healthz is 200 "ok".
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hzLive struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hzLive); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hzLive.Status != "ok" {
		t.Errorf("live healthz = %d %q, want 200 ok", resp.StatusCode, hzLive.Status)
	}

	agg.Close() // quiesce so the report is the exact total
	serial := core.NewReport()
	serial.Merge(reps...)

	if resp, err = http.Get(ts.URL + "/v1/report?format=json"); err != nil {
		t.Fatal(err)
	}
	got, err := core.ImportReport(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("report JSON did not round-trip: %v", err)
	}
	if !bytes.Equal(exportBytes(t, got), exportBytes(t, serial)) {
		t.Error("served JSON report differs from serial merge")
	}

	if resp, err = http.Get(ts.URL + "/v1/report"); err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	text.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(text.String(), "Root cause (file:line) @ action") {
		t.Error("text report missing table header")
	}

	// Once Close has begun, /healthz flips to 503 "draining" so load
	// balancers stop routing here.
	if resp, err = http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status   string `json:"status"`
		Shards   int    `json:"shards"`
		Accepted int64  `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status code = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	if hz.Status != "draining" || hz.Shards != 4 || hz.Accepted != int64(len(reps)) {
		t.Errorf("healthz = %+v", hz)
	}

	if resp, err = http.Get(ts.URL + "/metrics"); err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"hangdoctor_fleet_uploads_accepted_total 20",
		"hangdoctor_fleet_uploads_invalid_total 1",
		fmt.Sprintf("hangdoctor_fleet_hangs %d", serial.TotalHangs()),
		fmt.Sprintf("hangdoctor_fleet_entries %d", serial.Len()),
		`hangdoctor_fleet_shard_entries{shard="0"}`,
		`hangdoctor_fleet_shard_entries{shard="3"}`,
		"hangdoctor_fleet_merges_total",
		"hangdoctor_fleet_merge_latency_ns_sum",
	} {
		if !strings.Contains(metrics.String(), series) {
			t.Errorf("metrics exposition missing %q:\n%s", series, metrics.String())
		}
	}
}

// TestHealthCountersSurvive: degraded-mode health uploaded by devices is
// summed exactly once across the sharded path.
func TestHealthCountersSurvive(t *testing.T) {
	agg := NewAggregator(Config{Shards: 4})
	var want core.Health
	for i := 0; i < 10; i++ {
		r := SyntheticUpload(int64(i), fmt.Sprintf("d%d", i), 5)
		r.Health = core.Health{PerfOpenFailures: i, Quarantines: 1, StacksDropped: 2 * i}
		want.Add(r.Health)
		if err := agg.SubmitWait(r); err != nil {
			t.Fatal(err)
		}
	}
	agg.Close()
	if got := agg.Fold().Health; got != want {
		t.Errorf("fleet health = %+v, want %+v", got, want)
	}
}
