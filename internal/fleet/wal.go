package fleet

// wal.go is the durability layer of the sharded aggregator. Each
// single-writer shard goroutine owns one append-only log and one snapshot
// file; because only that goroutine ever touches them, the whole layer is
// lock-free by construction.
//
// On-disk layout (per shard i, inside WALConfig.Dir):
//
//	shard-0003.wal    length+CRC-framed records: one header record naming
//	                  the log generation, then one fragment record per
//	                  durably accepted upload fragment
//	shard-0003.snap   one framed snapshot record: the shard's compacted
//	                  report plus its dedup window, tagged with the log
//	                  generation it covers
//	*.tmp             in-flight snapshot/rotation files (crash debris,
//	                  replaced atomically by rename)
//
// Record framing is [len uint32le][crc32c uint32le][payload]; the payload
// starts with a one-byte kind. A torn tail (crash mid-append) fails the
// length, CRC, or read-full check; recovery truncates the file back to the
// last whole record and carries on — it never aborts.
//
// Compaction protocol: write snapshot-for-generation-G to a tmp file,
// fsync, rename over the snapshot (the atomic commit point), then rotate
// the log to generation G+1 the same way. A crash between the two steps
// leaves a snapshot at G and a log still at G; replay skips any log whose
// generation is <= the snapshot's, so nothing is double-merged.
//
// Exactly-once across crash/resend: every fragment record carries the
// 128-bit content hash of its parent upload. Replay rebuilds the shard's
// dedup window from the snapshot and the tail, so when a client resends an
// upload that was only partially durable (some shards logged their
// fragment, the ack never came), the shards that already have it skip it
// and the rest append it — the recovered fold is byte-identical to a run
// that never crashed.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"hangdoctor/internal/core"
	"hangdoctor/internal/fault"
)

// SyncPolicy says when an append becomes durable (and hence when a
// durable submit may be acknowledged).
type SyncPolicy string

const (
	// SyncAlways fsyncs after every fragment append. Strongest, slowest.
	SyncAlways SyncPolicy = "always"
	// SyncBatch fsyncs once per shard merge batch (group commit): every
	// ack waits for the barrier, but the barrier is amortized across the
	// batch. The default.
	SyncBatch SyncPolicy = "batch"
	// SyncOff never fsyncs: an append is "durable" once written. Survives
	// process crashes (the kernel holds the bytes) but not power loss.
	SyncOff SyncPolicy = "off"
)

// ParseSyncPolicy validates a -wal-sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncBatch, SyncOff:
		return SyncPolicy(s), nil
	}
	return "", fmt.Errorf("fleet: unknown sync policy %q (want always|batch|off)", s)
}

// WALConfig enables the durability layer.
type WALConfig struct {
	// Dir holds the per-shard log and snapshot files.
	Dir string
	// Sync is the durability barrier policy (default SyncBatch).
	Sync SyncPolicy
	// CompactEvery compacts a shard's log into its snapshot after this
	// many appended records (default 4096).
	CompactEvery int
	// DedupWindow caps the remembered upload IDs per shard, FIFO-evicted
	// (default 65536). Resends arriving within the window are exactly-once;
	// the window only needs to outlast a client's retry horizon.
	DedupWindow int
	// FS is the filesystem seam (default fault.DiskFS); wrap it with
	// fault.FaultyFS to chaos-test recovery.
	FS fault.FS
}

func (c *WALConfig) withDefaults() *WALConfig {
	out := *c
	if out.Sync == "" {
		out.Sync = SyncBatch
	}
	if out.CompactEvery <= 0 {
		out.CompactEvery = 4096
	}
	if out.DedupWindow <= 0 {
		out.DedupWindow = 65536
	}
	if out.FS == nil {
		out.FS = fault.DiskFS
	}
	return &out
}

// UploadID identifies one upload document by content: the FNV-128a hash
// of its canonical binary encoding (core.AppendReportBinary). Identical
// report *content* shares an ID regardless of how the client serialized it
// — JSON key order, whitespace, or a binary re-encode against a different
// dictionary state all hash the same — which is what makes resending after
// a crash or a 5xx idempotent and defeats accidental double-counting from
// re-serialized duplicates.
type UploadID [16]byte

func (id UploadID) String() string { return hex.EncodeToString(id[:]) }

// ComputeUploadID hashes raw bytes. It identifies a document only as
// precisely as the bytes are canonical — prefer ReportUploadID, which
// hashes parsed content.
func ComputeUploadID(doc []byte) UploadID {
	h := fnv.New128a()
	h.Write(doc)
	var id UploadID
	h.Sum(id[:0])
	return id
}

// ReportUploadID hashes a report's canonical binary encoding. The encoding
// is a pure function of report content (entries in canonical order, refs in
// first-use order, no dictionary carry-over), so two uploads with the same
// content always collide here — the dedup identity of the durable path. The
// error return is vestigial (the binary encoder cannot fail) and kept for
// call-site stability.
func ReportUploadID(rep *core.Report) (UploadID, error) {
	return ComputeUploadID(core.AppendReportBinary(nil, rep)), nil
}

// ---------------------------------------------------------------------------
// Record framing

const (
	walFrameHeaderLen = 8
	// maxWALRecordLen bounds a frame so a corrupt length field can never
	// drive an allocation; it comfortably exceeds the 8 MiB upload cap.
	maxWALRecordLen = 64 << 20

	recKindHeader   byte = 1
	recKindFragment byte = 2 // legacy JSON fragment payload (replay-only)
	recKindSnapshot byte = 3
	recKindFragBin  byte = 4 // binary fragment payload (all new appends)

	walFormatVersion = 1
)

var walCRCTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame frames payload onto dst: [len][crc32c][payload].
func appendFrame(dst, payload []byte) []byte {
	var hdr [walFrameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, walCRCTable))
	return append(append(dst, hdr[:]...), payload...)
}

// frameError describes why decoding stopped mid-file.
type frameError struct {
	// torn means the file simply ended inside a frame — the signature of
	// a crash mid-append. Anything else (bad CRC with all bytes present,
	// an absurd length) is corruption.
	torn   bool
	reason string
}

func (e *frameError) Error() string {
	kind := "corrupt record"
	if e.torn {
		kind = "torn record"
	}
	return fmt.Sprintf("fleet: wal %s: %s", kind, e.reason)
}

// frameReader decodes frames from r, tracking the byte offset of the
// frame being read so a truncation point is always known.
type frameReader struct {
	r   io.Reader
	off int64 // offset of the next (or currently failing) frame
}

// next returns the next frame payload. io.EOF means a clean end exactly
// at a frame boundary; a *frameError means decoding must stop and the
// file should be truncated at fr.off.
func (fr *frameReader) next() ([]byte, error) {
	var hdr [walFrameHeaderLen]byte
	if _, err := io.ReadFull(fr.r, hdr[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, &frameError{torn: true, reason: "unreadable header byte"}
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		return nil, &frameError{torn: true, reason: "truncated frame header"}
	}
	ln := binary.LittleEndian.Uint32(hdr[0:4])
	if ln == 0 || ln > maxWALRecordLen {
		return nil, &frameError{reason: fmt.Sprintf("implausible record length %d", ln)}
	}
	payload := make([]byte, ln)
	n, err := io.ReadFull(fr.r, payload)
	if err != nil {
		return nil, &frameError{torn: true, reason: fmt.Sprintf("record body short: %d of %d bytes", n, ln)}
	}
	if crc := crc32.Checksum(payload, walCRCTable); crc != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, &frameError{reason: "crc mismatch"}
	}
	fr.off += int64(walFrameHeaderLen) + int64(ln)
	return payload, nil
}

// ---------------------------------------------------------------------------
// Record payloads

// walHeader is the first record of every log file, naming its generation.
type walHeader struct {
	Version int    `json:"version"`
	Shard   int    `json:"shard"`
	Shards  int    `json:"shards"`
	Gen     uint64 `json:"gen"`
}

func encodeHeader(h walHeader) ([]byte, error) {
	body, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	return append([]byte{recKindHeader}, body...), nil
}

// encodeFragment frames a fragment for the log in the binary wire encoding
// (kind 4) — a fraction of the JSON record's size, decoded allocation-lean
// at replay. Logs written before the binary format carry kind-2 JSON
// fragments; decodeFragment still reads those, so an upgraded process
// replays an old log transparently (and compacts it away on rotation).
func encodeFragment(id UploadID, frag *core.Report) ([]byte, error) {
	buf := make([]byte, 0, 512)
	buf = append(buf, recKindFragBin)
	buf = append(buf, id[:]...)
	return core.AppendReportBinary(buf, frag), nil
}

func decodeFragment(payload []byte) (UploadID, *core.Report, error) {
	var id UploadID
	if len(payload) < 1+len(id) {
		return id, nil, errors.New("fleet: wal record is not a fragment")
	}
	kind := payload[0]
	copy(id[:], payload[1:1+len(id)])
	body := payload[1+len(id):]
	switch kind {
	case recKindFragBin:
		wr, err := core.NewBinaryDecoder().Decode(body)
		if err != nil {
			return id, nil, err
		}
		return id, wr.Report(), nil
	case recKindFragment:
		rep, err := core.ImportReport(bytes.NewReader(body))
		if err != nil {
			return id, nil, err
		}
		return id, rep, nil
	}
	return id, nil, errors.New("fleet: wal record is not a fragment")
}

// walSnapshot is the single record of a snapshot file: the shard's whole
// compacted state, covering every log generation <= Gen.
type walSnapshot struct {
	Version int             `json:"version"`
	Shard   int             `json:"shard"`
	Shards  int             `json:"shards"`
	Gen     uint64          `json:"gen"`
	IDs     []string        `json:"ids"`
	Report  json.RawMessage `json:"report"`
}

// ---------------------------------------------------------------------------
// Dedup window

// dedupSet is a FIFO-bounded set of upload IDs the shard has durably
// applied. Only the owning shard goroutine touches it.
type dedupSet struct {
	set   map[UploadID]struct{}
	order []UploadID
	cap   int
}

func newDedupSet(cap int) *dedupSet {
	return &dedupSet{set: make(map[UploadID]struct{}), cap: cap}
}

func (d *dedupSet) has(id UploadID) bool {
	_, ok := d.set[id]
	return ok
}

func (d *dedupSet) add(id UploadID) {
	if _, ok := d.set[id]; ok {
		return
	}
	d.set[id] = struct{}{}
	d.order = append(d.order, id)
	if len(d.order) > d.cap {
		evict := d.order[0]
		d.order = d.order[1:]
		delete(d.set, evict)
	}
}

// ---------------------------------------------------------------------------
// Per-shard WAL

// shardWAL is one shard's durable state. Single-writer: every method runs
// on the owning shard goroutine only.
type shardWAL struct {
	cfg    *WALConfig
	shard  int
	shards int
	m      *walMetrics

	gen     uint64     // generation of the live log file
	snapGen uint64     // generation covered by the committed snapshot
	wf      fault.File // append handle on the live log
	goodOff int64      // end of the last fully written record
	syncOff int64      // durable watermark (<= goodOff)
	dirty   bool       // bytes beyond goodOff may be garbage (failed write)
	records int        // fragment records appended this generation
	dedup   *dedupSet
}

func (w *shardWAL) logPath() string {
	return filepath.Join(w.cfg.Dir, fmt.Sprintf("shard-%04d.wal", w.shard))
}
func (w *shardWAL) snapPath() string {
	return filepath.Join(w.cfg.Dir, fmt.Sprintf("shard-%04d.snap", w.shard))
}

// ReplayInfo summarizes one shard's recovery for logs and tests.
type ReplayInfo struct {
	Shard         int
	Records       int  // fragment records replayed from the log tail
	FromSnapshot  bool // a snapshot was loaded
	TruncatedTail bool // a torn tail was cut back
	Corrupt       bool // a mid-log corrupt record was detected (prefix salvaged)
}

// openShardWAL recovers shard state from disk: load the snapshot if one
// exists, replay the log tail on top of it (truncating a torn final
// record instead of aborting), rotate the log if the snapshot already
// covers it, and leave an append handle positioned for new records.
func openShardWAL(cfg *WALConfig, shard, shards int, m *walMetrics) (*shardWAL, *core.Report, ReplayInfo, error) {
	start := time.Now()
	w := &shardWAL{cfg: cfg, shard: shard, shards: shards, m: m, dedup: newDedupSet(cfg.DedupWindow)}
	info := ReplayInfo{Shard: shard}
	if err := cfg.FS.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, info, fmt.Errorf("fleet: wal dir: %w", err)
	}

	rep := core.NewReport()
	var snapGen uint64
	snap, err := w.loadSnapshot()
	if err != nil {
		return nil, nil, info, err
	}
	if snap != nil {
		if snap.Shards != shards {
			return nil, nil, info, fmt.Errorf("fleet: wal snapshot for shard %d was written with %d shards, aggregator configured with %d (shard count may not change across recovery)", shard, snap.Shards, shards)
		}
		rep, err = core.ImportReport(bytes.NewReader(snap.Report))
		if err != nil {
			return nil, nil, info, fmt.Errorf("fleet: wal snapshot report for shard %d: %w", shard, err)
		}
		for _, hs := range snap.IDs {
			raw, err := hex.DecodeString(hs)
			if err != nil || len(raw) != len(UploadID{}) {
				return nil, nil, info, fmt.Errorf("fleet: wal snapshot for shard %d has malformed upload id %q", shard, hs)
			}
			var id UploadID
			copy(id[:], raw)
			w.dedup.add(id)
		}
		snapGen = snap.Gen
		info.FromSnapshot = true
	}

	w.snapGen = snapGen
	logGen, err := w.replayLog(snapGen, rep, &info)
	if err != nil {
		return nil, nil, info, err
	}

	// Open the append handle, repairing whatever the replay flagged.
	if err := w.openAppend(); err != nil {
		return nil, nil, info, err
	}
	switch {
	case logGen == 0:
		// Empty or brand-new log: stamp it with the next generation.
		if err := w.rotate(snapGen + 1); err != nil {
			return nil, nil, info, err
		}
	case logGen <= snapGen:
		// Crash landed between snapshot commit and log rotation: the
		// snapshot already covers every record here, so rotate now.
		if err := w.rotate(snapGen + 1); err != nil {
			return nil, nil, info, err
		}
	default:
		w.gen = logGen
	}
	m.replayLatency.Observe(float64(time.Since(start).Nanoseconds()))
	return w, rep, info, nil
}

// loadSnapshot reads and validates the snapshot file; a missing file is
// (nil, nil). A snapshot is committed atomically by rename, so a torn one
// cannot exist; an unreadable or corrupt one is a hard error — the log
// records it compacted are gone, and inventing an empty state would
// silently drop acknowledged uploads.
func (w *shardWAL) loadSnapshot() (*walSnapshot, error) {
	f, err := w.cfg.FS.OpenFile(w.snapPath(), os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("fleet: wal snapshot open: %w", err)
	}
	defer f.Close()
	fr := &frameReader{r: bufio.NewReaderSize(readerOnly{f}, 1<<16)}
	payload, err := fr.next()
	if err != nil {
		return nil, fmt.Errorf("fleet: wal snapshot for shard %d unreadable (refusing to drop compacted state): %w", w.shard, err)
	}
	if len(payload) < 1 || payload[0] != recKindSnapshot {
		return nil, fmt.Errorf("fleet: wal snapshot for shard %d has record kind %d, want snapshot", w.shard, payload[0])
	}
	var snap walSnapshot
	if err := json.Unmarshal(payload[1:], &snap); err != nil {
		return nil, fmt.Errorf("fleet: wal snapshot for shard %d: %w", w.shard, err)
	}
	if snap.Version != walFormatVersion {
		return nil, fmt.Errorf("fleet: wal snapshot for shard %d has version %d, want %d", w.shard, snap.Version, walFormatVersion)
	}
	if snap.Shard != w.shard {
		return nil, fmt.Errorf("fleet: wal snapshot names shard %d, expected %d", snap.Shard, w.shard)
	}
	return &snap, nil
}

// readerOnly hides everything but Read so bufio never sees other methods.
type readerOnly struct{ f fault.File }

func (r readerOnly) Read(p []byte) (int, error) { return r.f.Read(p) }

// replayLog scans the log file, merging fragment records newer than
// snapGen into rep and rebuilding the dedup window. It returns the log's
// generation (0 when the file is missing or empty/headerless). A torn or
// corrupt frame ends the scan: goodOff marks the salvaged prefix and
// dirty is set so the tail is truncated before the next append.
func (w *shardWAL) replayLog(snapGen uint64, rep *core.Report, info *ReplayInfo) (uint64, error) {
	f, err := w.cfg.FS.OpenFile(w.logPath(), os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("fleet: wal log open: %w", err)
	}
	defer f.Close()

	fr := &frameReader{r: bufio.NewReaderSize(readerOnly{f}, 1<<16)}
	stop := func(fe *frameError) {
		w.goodOff = fr.off
		w.dirty = true
		info.TruncatedTail = true
		w.m.truncatedTails.Inc()
		if !fe.torn {
			info.Corrupt = true
			w.m.corruptRecords.Inc()
		}
	}

	payload, err := fr.next()
	if err == io.EOF {
		return 0, nil
	}
	if err != nil {
		var fe *frameError
		if errors.As(err, &fe) {
			// Even the header is torn: scrap the whole file.
			stop(fe)
			return 0, nil
		}
		return 0, err
	}
	if len(payload) < 1 || payload[0] != recKindHeader {
		stop(&frameError{reason: "first record is not a log header"})
		return 0, nil
	}
	var hdr walHeader
	if err := json.Unmarshal(payload[1:], &hdr); err != nil {
		stop(&frameError{reason: "undecodable log header"})
		return 0, nil
	}
	if hdr.Version != walFormatVersion || hdr.Shard != w.shard {
		return 0, fmt.Errorf("fleet: wal log header mismatch for shard %d: %+v", w.shard, hdr)
	}
	if hdr.Shards != w.shards {
		return 0, fmt.Errorf("fleet: wal log for shard %d was written with %d shards, aggregator configured with %d (shard count may not change across recovery)", w.shard, hdr.Shards, w.shards)
	}
	w.goodOff = fr.off
	apply := hdr.Gen > snapGen

	for {
		payload, err := fr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			var fe *frameError
			if errors.As(err, &fe) {
				stop(fe)
				break
			}
			return 0, err
		}
		id, frag, derr := decodeFragment(payload)
		if derr != nil {
			// The frame passed its CRC but the payload is gibberish:
			// corruption (or version drift). Salvage the prefix.
			stop(&frameError{reason: derr.Error()})
			break
		}
		if apply {
			rep.Merge(frag)
			w.dedup.add(id)
			info.Records++
			w.m.replayed.Inc()
			w.records++
		}
		w.goodOff = fr.off
	}
	return hdr.Gen, nil
}

// openAppend opens (creating if needed) the append handle on the log.
func (w *shardWAL) openAppend() error {
	f, err := w.cfg.FS.OpenFile(w.logPath(), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("fleet: wal log append open: %w", err)
	}
	w.wf = f
	w.syncOff = w.goodOff
	return nil
}

// repair truncates garbage beyond goodOff (a failed or torn write, or a
// salvaged replay) so the next record lands on a clean tail.
func (w *shardWAL) repair() error {
	if !w.dirty {
		return nil
	}
	if err := w.wf.Truncate(w.goodOff); err != nil {
		return fmt.Errorf("fleet: wal tail repair: %w", err)
	}
	w.dirty = false
	return nil
}

// append frames payload onto the log. On failure the record is not
// durable, the tail is flagged for repair, and the caller must not ack.
func (w *shardWAL) append(payload []byte) error {
	if w.wf == nil || w.gen <= w.snapGen {
		// A compaction committed its snapshot but the log rotation failed
		// (possibly leaving no append handle at all). Appending to a
		// generation the snapshot already covers would be silently skipped
		// at replay, so reestablish a fresh generation first.
		if err := w.rotate(w.snapGen + 1); err != nil {
			w.m.appendErrors.Inc()
			return err
		}
	}
	if err := w.repair(); err != nil {
		w.m.appendErrors.Inc()
		return err
	}
	frame := appendFrame(nil, payload)
	n, err := w.wf.Write(frame)
	if err != nil {
		if n > 0 {
			w.dirty = true
		}
		w.m.appendErrors.Inc()
		return fmt.Errorf("fleet: wal append: %w", err)
	}
	if n != len(frame) {
		w.dirty = true
		w.m.appendErrors.Inc()
		return fmt.Errorf("fleet: wal append: short write %d of %d bytes", n, len(frame))
	}
	w.goodOff += int64(len(frame))
	w.records++
	w.m.appended.Inc()
	w.m.bytesWritten.Add(int64(len(frame)))
	return nil
}

// barrier makes everything appended so far durable per the sync policy.
// On failure it rolls the log back to the last durable watermark; the
// caller must nack (and must not merge) every record past it.
func (w *shardWAL) barrier() error {
	if w.cfg.Sync == SyncOff {
		w.syncOff = w.goodOff
		return nil
	}
	if err := w.wf.Sync(); err != nil {
		// The unsynced suffix may or may not have hit the platter; roll
		// back so the on-disk log only ever contains acknowledged state.
		if terr := w.wf.Truncate(w.syncOff); terr != nil {
			w.dirty = true
		}
		w.goodOff = w.syncOff
		w.m.appendErrors.Inc()
		return fmt.Errorf("fleet: wal sync: %w", err)
	}
	w.m.fsyncs.Inc()
	w.syncOff = w.goodOff
	return nil
}

// writeFileAtomic writes a fully framed file (tmp + fsync + rename).
func (w *shardWAL) writeFileAtomic(path string, frame []byte) error {
	tmp := path + ".tmp"
	f, err := w.cfg.FS.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		w.cfg.FS.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		w.cfg.FS.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		w.cfg.FS.Remove(tmp)
		return err
	}
	return w.cfg.FS.Rename(tmp, path)
}

// rotate atomically replaces the log with a fresh one at generation gen.
func (w *shardWAL) rotate(gen uint64) error {
	payload, err := encodeHeader(walHeader{Version: walFormatVersion, Shard: w.shard, Shards: w.shards, Gen: gen})
	if err != nil {
		return err
	}
	frame := appendFrame(nil, payload)
	if w.wf != nil {
		w.wf.Close()
		w.wf = nil
	}
	if err := w.writeFileAtomic(w.logPath(), frame); err != nil {
		return fmt.Errorf("fleet: wal rotate: %w", err)
	}
	if err := w.openAppend(); err != nil {
		return err
	}
	w.gen = gen
	w.goodOff = int64(len(frame))
	w.syncOff = w.goodOff
	w.dirty = false
	w.records = 0
	return nil
}

// compact folds the shard's entire in-memory state into the snapshot file
// and rotates the log. A failure before the snapshot commit leaves the old
// snapshot and log intact (compaction is all-or-nothing) and the shard
// keeps appending to the old generation; a failure after the commit marks
// the covered generation via snapGen so the next append rotates past it.
func (w *shardWAL) compact(rep *core.Report) error {
	var repBuf bytes.Buffer
	if err := rep.Export(&repBuf); err != nil {
		return fmt.Errorf("fleet: wal compact export: %w", err)
	}
	ids := make([]string, 0, len(w.dedup.order))
	for _, id := range w.dedup.order {
		ids = append(ids, id.String())
	}
	body, err := json.Marshal(walSnapshot{
		Version: walFormatVersion, Shard: w.shard, Shards: w.shards,
		Gen: w.gen, IDs: ids, Report: json.RawMessage(repBuf.Bytes()),
	})
	if err != nil {
		return fmt.Errorf("fleet: wal compact: %w", err)
	}
	frame := appendFrame(nil, append([]byte{recKindSnapshot}, body...))
	if err := w.writeFileAtomic(w.snapPath(), frame); err != nil {
		return fmt.Errorf("fleet: wal compact snapshot: %w", err)
	}
	// The snapshot is committed: it covers every log generation <= w.gen.
	// Record that before rotating, so if the rotation fails the next
	// append knows it must not land in a covered generation.
	w.snapGen = w.gen
	if err := w.rotate(w.gen + 1); err != nil {
		return err
	}
	w.m.compactions.Inc()
	return nil
}

// close releases the append handle without any final barrier — the crash
// path. The clean-shutdown path runs compact first.
func (w *shardWAL) close() {
	if w.wf != nil {
		w.wf.Close()
		w.wf = nil
	}
}
