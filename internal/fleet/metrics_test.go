package fleet

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMergeTripleNeverTears is the satellite consistency guarantee: the
// merges/fragments/nanoseconds triple moves under one mutex, so no
// snapshot may ever observe a merge whose fragment count landed but
// whose latency has not. Every noteMerge here contributes exactly one
// fragment and exactly 1000 ns, so any torn read shows up as a snapshot
// where the three values disagree.
func TestMergeTripleNeverTears(t *testing.T) {
	m := newMetrics(64)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.noteMerge(1, time.Microsecond)
			}
		}()
	}
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ms := m.Snapshot()
			if ms.MergedFragments != ms.Merges {
				t.Errorf("torn snapshot: %d merges but %d fragments", ms.Merges, ms.MergedFragments)
				return
			}
			if ms.MergeNs != ms.Merges*1000 {
				t.Errorf("torn snapshot: %d merges but %d ns", ms.Merges, ms.MergeNs)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()

	ms := m.Snapshot()
	if want := int64(workers * perWorker); ms.Merges != want {
		t.Fatalf("merges = %d, want %d", ms.Merges, want)
	}
	// The histogram saw the same stream: its count and sum mirror the triple.
	h := m.reg.Snapshot().Histogram("hangdoctor_fleet_merge_latency_ns")
	if h.Count != uint64(ms.Merges) || h.Sum != float64(ms.MergeNs) {
		t.Fatalf("merge histogram (count=%d sum=%g) disagrees with triple (merges=%d ns=%d)",
			h.Count, h.Sum, ms.Merges, ms.MergeNs)
	}
}

// TestObsViewMatchesSnapshot is the differential test for the refactor:
// after a workload, the obs exposition, the MetricsSnapshot struct, and
// an independent tally of Submit results must all report the same
// totals — the registry is a view over the same accounting, not a second
// set of books that can drift.
func TestObsViewMatchesSnapshot(t *testing.T) {
	agg := NewAggregator(Config{Shards: 4, QueueDepth: 8})
	var accepted, rejected int64
	for i := 0; i < 200; i++ {
		rep := SyntheticUpload(int64(i), fmt.Sprintf("dev-%d", i%7), 4)
		switch err := agg.Submit(rep); err {
		case nil:
			accepted++
		case ErrQueueFull:
			rejected++
		default:
			t.Fatalf("submit: %v", err)
		}
	}
	agg.Metrics().NoteInvalid()
	agg.Close()

	ms := agg.Metrics().Snapshot()
	if ms.Accepted != accepted || ms.Rejected != rejected || ms.Invalid != 1 {
		t.Fatalf("snapshot (acc=%d rej=%d inv=%d) != tally (acc=%d rej=%d inv=1)",
			ms.Accepted, ms.Rejected, ms.Invalid, accepted, rejected)
	}
	obsSnap := agg.Metrics().Registry().Snapshot()
	for name, want := range map[string]int64{
		"hangdoctor_fleet_uploads_accepted_total": ms.Accepted,
		"hangdoctor_fleet_uploads_rejected_total": ms.Rejected,
		"hangdoctor_fleet_uploads_invalid_total":  ms.Invalid,
		"hangdoctor_fleet_merges_total":           ms.Merges,
		"hangdoctor_fleet_merged_fragments_total": ms.MergedFragments,
		"hangdoctor_fleet_queue_capacity":         int64(ms.QueueCapacity),
	} {
		if got := obsSnap.Value(name); got != want {
			t.Errorf("obs %s = %d, want %d", name, got, want)
		}
	}
	if h := obsSnap.Histogram("hangdoctor_fleet_merge_latency_ns"); int64(h.Sum) != ms.MergeNs {
		t.Errorf("merge latency histogram sum = %g, want %d", h.Sum, ms.MergeNs)
	}
}

// TestMetricsJSONEndpoint checks the JSON twin of /metrics: one
// AggregatorSnapshot document with the merge triple, queue state, and
// per-shard stats.
func TestMetricsJSONEndpoint(t *testing.T) {
	agg := NewAggregator(Config{Shards: 2})
	for i := 0; i < 6; i++ {
		if err := agg.SubmitWait(SyntheticUpload(int64(i), "dev", 3)); err != nil {
			t.Fatal(err)
		}
	}
	defer agg.Close()
	ts := httptest.NewServer(NewServer(agg).Handler())
	defer ts.Close()

	// Settle: wait until the counters say everything merged.
	deadline := time.Now().Add(5 * time.Second)
	for agg.Metrics().Snapshot().MergedFragments < 6 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var snap AggregatorSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Accepted != 6 {
		t.Errorf("accepted = %d, want 6", snap.Accepted)
	}
	if len(snap.Shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(snap.Shards))
	}
	if snap.Entries() == 0 || snap.Hangs() == 0 {
		t.Errorf("empty shard view: entries=%d hangs=%d", snap.Entries(), snap.Hangs())
	}
	if snap.QueueCapacity == 0 {
		t.Error("queue capacity missing from JSON snapshot")
	}
}
