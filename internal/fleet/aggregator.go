// Package fleet is the server side of the paper's §3.2 field-study loop at
// production scale: many devices upload Hang Bug Reports ((*core.Report)
// documents) and the service aggregates them into one fleet-wide view.
//
// The write path is sharded: an upload is accepted into a bounded intake
// queue (backpressure, not unbounded buffering, when ingest outruns
// merging), split by a stable hash of each entry's identity into per-shard
// fragments, and merged by N single-writer shard goroutines, each owning a
// private core.Report. Reads fold shard snapshots on demand. Because
// core.Report.Merge is commutative and associative, the folded view is
// byte-identical to a serial merge of the same uploads regardless of shard
// count, batch boundaries, or arrival order — the property the determinism
// tests pin down.
//
// With a WALConfig the aggregator is also durable: each shard appends its
// fragments to a private append-only log (see wal.go), acknowledgements
// wait for the durability barrier, startup replays snapshot-then-tail
// before intake opens, and a crash loses nothing it acknowledged.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hangdoctor/internal/core"
)

// Errors the submit paths can return.
var (
	// ErrQueueFull means the intake queue is at capacity; the caller should
	// back off and retry (the HTTP layer maps it to 429 + Retry-After).
	ErrQueueFull = errors.New("fleet: ingest queue full")
	// ErrClosed means the aggregator is shutting down and accepts no more
	// uploads (mapped to 503).
	ErrClosed = errors.New("fleet: aggregator closed")
	// ErrCrashed means the aggregator was torn down abruptly (the chaos
	// path) while the submission was in flight; the upload was not
	// acknowledged and should be resent after recovery.
	ErrCrashed = errors.New("fleet: aggregator crashed")
)

// Config parameterizes an Aggregator. The zero value is completed by
// defaults suitable for tests and small deployments.
type Config struct {
	// Shards is the number of single-writer merge goroutines; entry keys
	// hash onto them (default 4).
	Shards int
	// QueueDepth bounds the intake queue; a full queue rejects uploads with
	// ErrQueueFull instead of buffering without limit (default 256).
	QueueDepth int
	// BatchSize is the most fragments a shard folds per merge call; batching
	// amortizes per-wakeup overhead under load without adding latency when
	// idle (default 16). With a WAL it is also the group-commit window.
	BatchSize int
	// Dispatchers is the number of goroutines splitting queued uploads into
	// per-shard fragments; splitting hashes every entry, so it must scale
	// alongside the shards or it becomes the serial bottleneck (default:
	// max(Shards, GOMAXPROCS/2)).
	Dispatchers int
	// WAL, when non-nil, enables the durability layer: per-shard
	// append-only logs with snapshot compaction and replay-on-open.
	WAL *WALConfig
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = c.Shards
		if half := runtime.GOMAXPROCS(0) / 2; half > c.Dispatchers {
			c.Dispatchers = half
		}
	}
	if c.WAL != nil {
		c.WAL = c.WAL.withDefaults()
	}
	return c
}

// ShardStats is one shard's cheap self-description, served from inside the
// shard goroutine so no reader ever touches single-writer state.
type ShardStats struct {
	Entries int
	Hangs   int
	Health  core.Health
}

// upload is one queued submission: the report (or, for the binary fast
// path, the decoded wire view), its content-hash identity (zero until a
// dispatcher computes it, when a WAL needs one), and the optional
// durability ack. Exactly one of rep/wire is set.
type upload struct {
	rep  *core.Report
	wire *core.WireReport
	id   UploadID
	ack  *uploadAck
}

// uploadAck gathers per-shard outcomes for one submission. Completion is
// delivered one of two ways: blocking waiters (SubmitDurable) wait on done,
// which closes once every routed fragment has either become durable, been
// deduplicated, or failed; callback acks (SubmitWireAcked) carry fn instead,
// invoked once with the first failure (or nil) — fn-based acks have no done
// channel and are reusable across submissions. err holds the first failure.
type uploadAck struct {
	remaining atomic.Int32
	mu        sync.Mutex
	err       error
	done      chan struct{}
	fn        func(error)
}

func newUploadAck() *uploadAck { return &uploadAck{done: make(chan struct{})} }

// finish delivers the gathered outcome: the callback for fn-based acks,
// closing done for channel-based ones. Called exactly once per submission —
// by the last complete(), or directly by the dispatcher when an upload
// routed zero fragments.
func (a *uploadAck) finish() {
	if a.fn != nil {
		a.fn(a.firstErr())
		return
	}
	close(a.done)
}

// complete records one fragment outcome; the last one releases the waiter.
func (a *uploadAck) complete(err error) {
	if a == nil {
		return
	}
	if err != nil {
		a.mu.Lock()
		if a.err == nil {
			a.err = err
		}
		a.mu.Unlock()
	}
	if a.remaining.Add(-1) == 0 {
		a.finish()
	}
}

func (a *uploadAck) firstErr() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// shardSnap is a shard's reply to a snapshot or delta request: an
// immutable report (the shard's cached copy-on-write snapshot, or the
// changed-entries-only delta) and the shard's state version, read in the
// same shard-goroutine turn so the pair is always consistent.
type shardSnap struct {
	rep     *core.Report
	version uint64
}

// shardMsg is the only thing that crosses into a shard goroutine: a
// fragment to merge (with its upload identity and ack), a slice of decoded
// wire entries from the binary fast path (optionally carrying the upload's
// health section, which rides shard 0), or a control request (stats, a
// versioned snapshot, a since-version delta, or a deep clone for the
// uncached reference fold).
type shardMsg struct {
	frag   *core.Report
	wire   []core.WireEntry
	health *core.Health
	id     UploadID
	ack    *uploadAck
	stats  chan ShardStats
	snap   chan shardSnap
	delta  chan shardSnap
	since  uint64
	deep   bool // with snap: reply with a fresh deep clone, bypassing the cache
}

// payload reports whether the message carries data to merge (as opposed to
// a stats/snapshot/delta control request).
func (m *shardMsg) payload() bool {
	return m.frag != nil || m.wire != nil || m.health != nil
}

// Aggregator is the sharded fleet-report builder.
type Aggregator struct {
	cfg     Config
	intake  chan *upload
	shards  []chan shardMsg
	metrics *Metrics
	walM    *walMetrics // nil when the WAL is disabled

	// epoch identifies this aggregator instance in version vectors; shard
	// versions only compare within one epoch.
	epoch uint64

	// foldMu guards the incremental fold cache: the last folded view, the
	// shard version vector it covers, and the post-drain fold memo. The
	// cached reports are immutable — Fold hands them to many readers.
	foldMu    sync.Mutex
	foldCache core.FoldCache
	foldVers  []uint64
	foldFinal *core.Report

	// crashCh closes on Crash(): every blocked send, ack wait, and shard
	// loop unwinds through it.
	crashCh chan struct{}

	mu        sync.RWMutex
	closed    bool // no further Submits
	crashed   bool // torn down abruptly; shard state abandoned
	finalized bool // shards exited; finals hold their reports
	finals    []*core.Report

	dispatchWG sync.WaitGroup
	shardWG    sync.WaitGroup
}

// Open starts the shard and dispatcher goroutines and returns an
// aggregator ready for Submit. With cfg.WAL set, every shard first
// replays its snapshot and log tail — Open does not return (and intake
// does not open) until recovery is complete, and recovery failures are
// returned here. Call Close to drain and stop the aggregator.
func Open(cfg Config) (*Aggregator, error) {
	cfg = cfg.withDefaults()
	a := &Aggregator{
		cfg:     cfg,
		intake:  make(chan *upload, cfg.QueueDepth),
		shards:  make([]chan shardMsg, cfg.Shards),
		finals:  make([]*core.Report, cfg.Shards),
		metrics: newMetrics(cfg.QueueDepth),
		epoch:   newEpoch(),
		crashCh: make(chan struct{}),
	}
	if cfg.WAL != nil {
		if cfg.WAL.Dir == "" {
			return nil, errors.New("fleet: WALConfig.Dir must be set")
		}
		a.walM = a.metrics.initWAL()
	}
	a.metrics.reg.GaugeFunc("hangdoctor_fleet_queue_depth",
		"Current intake backlog.",
		func() int64 { return int64(len(a.intake)) })
	ready := make(chan error, cfg.Shards)
	for i := range a.shards {
		a.shards[i] = make(chan shardMsg, 2*cfg.BatchSize)
		a.shardWG.Add(1)
		go a.runShard(i, ready)
	}
	var firstErr error
	for i := 0; i < cfg.Shards; i++ {
		if err := <-ready; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		// Recovery failed somewhere: unwind the healthy shards and report.
		a.mu.Lock()
		a.closed, a.finalized = true, true
		close(a.intake)
		for _, ch := range a.shards {
			close(ch)
		}
		a.mu.Unlock()
		a.shardWG.Wait()
		return nil, firstErr
	}
	for i := 0; i < cfg.Dispatchers; i++ {
		a.dispatchWG.Add(1)
		go a.runDispatcher()
	}
	return a, nil
}

// NewAggregator is Open for configurations that cannot fail (no WAL); it
// panics on error, which only a WAL-enabled config can produce.
func NewAggregator(cfg Config) *Aggregator {
	a, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Shards returns the configured shard count.
func (a *Aggregator) Shards() int { return a.cfg.Shards }

// QueueDepth returns the current intake backlog.
func (a *Aggregator) QueueDepth() int { return len(a.intake) }

// Metrics returns the aggregator's counters.
func (a *Aggregator) Metrics() *Metrics { return a.metrics }

// Durable reports whether the WAL layer is enabled.
func (a *Aggregator) Durable() bool { return a.cfg.WAL != nil }

// Draining reports whether shutdown (or a crash) has begun: Submits are
// refused and /healthz should answer 503.
func (a *Aggregator) Draining() bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.closed
}

// AggregatorSnapshot is one consistent read of the aggregator's state:
// the ingestion counters (with the merge triple read atomically), the
// live queue backlog, and every shard's self-description. It backs
// /healthz, /metrics.json, and the shutdown log line, so all three
// surfaces describe the same moment instead of re-reading counters that
// advanced between them.
type AggregatorSnapshot struct {
	MetricsSnapshot
	QueueDepth int          `json:"queue_depth"`
	Shards     []ShardStats `json:"shards"`
}

// Entries sums root-cause entries across shards.
func (s AggregatorSnapshot) Entries() int {
	n := 0
	for _, st := range s.Shards {
		n += st.Entries
	}
	return n
}

// Hangs sums diagnosed hangs across shards.
func (s AggregatorSnapshot) Hangs() int {
	n := 0
	for _, st := range s.Shards {
		n += st.Hangs
	}
	return n
}

// Snapshot reads the counters, the queue depth, and the shard stats in
// that order. Shard stats are answered at merge boundaries, so while
// traffic is in flight the counters may be slightly ahead of the shard
// view — but each piece is internally consistent.
func (a *Aggregator) Snapshot() AggregatorSnapshot {
	return AggregatorSnapshot{
		MetricsSnapshot: a.metrics.Snapshot(),
		QueueDepth:      a.QueueDepth(),
		Shards:          a.ShardStats(),
	}
}

// scrape refreshes the scrape-time gauges that project live shard state
// into the registry — per-shard entry counts, fleet-wide totals, and the
// summed device health — immediately before an exposition is written.
// Gauge re-registration is idempotent, so repeated scrapes update the
// same series.
func (a *Aggregator) scrape() {
	stats := a.ShardStats()
	reg := a.metrics.reg
	shardEntries := reg.GaugeVec("hangdoctor_fleet_shard_entries",
		"Root-cause entries owned by each shard.", "shard")
	var entries, hangs int64
	var health core.Health
	for i, st := range stats {
		shardEntries.With(strconv.Itoa(i)).Set(int64(st.Entries))
		entries += int64(st.Entries)
		hangs += int64(st.Hangs)
		health.Add(st.Health)
	}
	reg.Gauge("hangdoctor_fleet_entries", "Distinct root causes fleet-wide.").Set(entries)
	reg.Gauge("hangdoctor_fleet_hangs", "Diagnosed soft hangs fleet-wide.").Set(hangs)
	for _, hc := range []struct {
		name string
		v    int
	}{
		{"perf_open_failures", health.PerfOpenFailures},
		{"perf_open_retries", health.PerfOpenRetries},
		{"counters_lost", health.CountersLost},
		{"render_lost", health.RenderLost},
		{"stacks_dropped", health.StacksDropped},
		{"stacks_truncated", health.StacksTruncated},
		{"sampler_overruns", health.SamplerOverruns},
		{"verdicts_deferred", health.VerdictsDeferred},
		{"low_confidence", health.LowConfidence},
		{"quarantines", health.Quarantines},
		{"worker_stacks_lost", health.WorkerStacksLost},
		{"causal_fallbacks", health.CausalFallbacks},
	} {
		reg.Gauge("hangdoctor_fleet_health_"+hc.name,
			"Summed degraded-mode health counter across devices.").Set(int64(hc.v))
	}
}

// Submit enqueues one validated upload without blocking. It returns
// ErrQueueFull when the bounded queue is at capacity and ErrClosed after
// Close; on success the report is owned by the aggregator (callers must not
// mutate it afterwards). With a WAL the fragments are logged durably in the
// background but Submit does not wait for the barrier — use SubmitDurable
// when the acknowledgement must imply durability.
func (a *Aggregator) Submit(rep *core.Report) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		a.metrics.rejected.Inc()
		return ErrClosed
	}
	select {
	case a.intake <- &upload{rep: rep}:
		a.metrics.accepted.Inc()
		return nil
	default:
		a.metrics.rejected.Inc()
		return ErrQueueFull
	}
}

// SubmitWait is Submit without the non-blocking policy: it waits for queue
// space instead of rejecting. Bulk importers (cmd/fleet) and benchmarks use
// it; the HTTP path uses Submit so overload turns into backpressure.
func (a *Aggregator) SubmitWait(rep *core.Report) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		a.metrics.rejected.Inc()
		return ErrClosed
	}
	a.intake <- &upload{rep: rep}
	a.metrics.accepted.Inc()
	return nil
}

// SubmitWire enqueues one decoded binary upload without blocking — the
// zero-copy ingest path: the dispatcher routes the already-keyed wire
// entries straight to their shards, which merge them without building an
// intermediate report. The aggregator takes ownership of wr (decode with
// BinaryDecoder.Decode, not DecodeScratch). On a durable aggregator the
// upload is materialized to a report at dispatch so it can be logged; use
// SubmitDurable when the acknowledgement must imply durability.
func (a *Aggregator) SubmitWire(wr *core.WireReport) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		a.metrics.rejected.Inc()
		return ErrClosed
	}
	select {
	case a.intake <- &upload{wire: wr}:
		a.metrics.accepted.Inc()
		return nil
	default:
		a.metrics.rejected.Inc()
		return ErrQueueFull
	}
}

// SubmitWireWait is SubmitWire that waits for queue space instead of
// rejecting — the bulk-import and benchmark counterpart of SubmitWait.
func (a *Aggregator) SubmitWireWait(wr *core.WireReport) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		a.metrics.rejected.Inc()
		return ErrClosed
	}
	a.intake <- &upload{wire: wr}
	a.metrics.accepted.Inc()
	return nil
}

// WireAck is a reusable merge-completion acknowledgement for
// SubmitWireAcked. Unlike SubmitWireWait — which returns as soon as the
// upload is queued — an acked submission notifies the callback only after
// every routed fragment has merged (or, durably, passed the WAL barrier).
// That is the signal a zero-copy producer needs to recycle the buffer its
// wire entries alias: WireReport.Split copies entry values into per-shard
// slices, but the Devices strings still point into the producer's encode
// buffer until the shards are done with them.
//
// A WireAck tracks one in-flight submission at a time; reusing it for the
// next upload is only legal after the callback fires. The callback runs on
// an aggregator goroutine — it must be cheap and must not call back into
// the aggregator.
type WireAck struct {
	ack uploadAck
}

// NewWireAck returns a reusable ack whose fn is invoked once per
// acknowledged submission with the first fragment error (nil on success).
func NewWireAck(fn func(error)) *WireAck {
	if fn == nil {
		panic("fleet: NewWireAck requires a callback")
	}
	w := &WireAck{}
	w.ack.fn = fn
	return w
}

// uploadPool recycles upload envelopes on the acked wire path, where a
// steady-state producer submits millions of uploads and the envelope would
// otherwise be the last per-submission allocation.
var uploadPool = sync.Pool{New: func() any { return new(upload) }}

func putUpload(u *upload) {
	*u = upload{}
	uploadPool.Put(u)
}

// SubmitWireAcked enqueues one decoded binary upload on the zero-copy path
// and arranges for wa's callback to fire when every routed fragment has
// merged. It blocks for queue space like SubmitWireWait (producers that
// want backpressure, not rejection); ErrClosed and ErrCrashed are returned
// synchronously, and then the callback never fires — the caller still owns
// the buffer.
func (a *Aggregator) SubmitWireAcked(wr *core.WireReport, wa *WireAck) error {
	a.mu.RLock()
	if a.closed {
		a.mu.RUnlock()
		a.metrics.rejected.Inc()
		return ErrClosed
	}
	wa.ack.mu.Lock()
	wa.ack.err = nil
	wa.ack.mu.Unlock()
	wa.ack.remaining.Store(0)
	u := uploadPool.Get().(*upload)
	u.wire, u.ack = wr, &wa.ack
	select {
	case a.intake <- u:
		a.metrics.accepted.Inc()
		a.mu.RUnlock()
		return nil
	case <-a.crashCh:
		a.mu.RUnlock()
		putUpload(u)
		a.metrics.rejected.Inc()
		return ErrCrashed
	}
}

// Crashed returns a channel that closes when the aggregator is torn down
// abruptly via Crash. Producers blocked on resources owned by in-flight
// acks (pooled upload buffers whose callbacks will never fire) select on it
// to unwind instead of deadlocking.
func (a *Aggregator) Crashed() <-chan struct{} { return a.crashCh }

// SubmitDurable enqueues one upload and waits until every routed fragment
// is durable per the WAL's sync policy (or, without a WAL, merged). id is
// the upload's content hash (ComputeUploadID over the raw document, or
// ReportUploadID); fragments of an id the shards have already made durable
// are skipped, so resending after a crash, a 5xx, or a lost response is
// idempotent. Queue-full still fails fast with ErrQueueFull.
func (a *Aggregator) SubmitDurable(rep *core.Report, id UploadID) error {
	ack := newUploadAck()
	a.mu.RLock()
	if a.closed {
		a.mu.RUnlock()
		a.metrics.rejected.Inc()
		return ErrClosed
	}
	u := &upload{rep: rep, id: id, ack: ack}
	select {
	case a.intake <- u:
		a.metrics.accepted.Inc()
	default:
		a.mu.RUnlock()
		a.metrics.rejected.Inc()
		return ErrQueueFull
	}
	a.mu.RUnlock()
	select {
	case <-ack.done:
		return ack.firstErr()
	case <-a.crashCh:
		// The ack may still land; prefer it if it already has.
		select {
		case <-ack.done:
			return ack.firstErr()
		default:
			return ErrCrashed
		}
	}
}

// runDispatcher splits queued uploads into per-shard fragments. Several
// dispatchers run concurrently — splitting hashes every entry, and a single
// splitter would serialize the whole write path (Amdahl) — which is safe
// because fragment routing is order-independent under a commutative merge.
func (a *Aggregator) runDispatcher() {
	defer a.dispatchWG.Done()
	durable := a.cfg.WAL != nil
	for u := range a.intake {
		if !a.dispatchOne(u, durable) {
			return
		}
		// Everything the shards need was copied into shardMsgs; the
		// envelope itself is free to recycle.
		putUpload(u)
	}
}

// dispatchOne splits one upload into per-shard fragments and routes them.
// It returns false if a crash unwound the dispatcher mid-route.
func (a *Aggregator) dispatchOne(u *upload, durable bool) bool {
	if u.wire != nil {
		if durable {
			// The WAL logs report fragments; materialize once so the
			// durable path below stays uniform (the canonical identity
			// is derived right after, like any other submit).
			u.rep = u.wire.Report()
			u.wire = nil
		} else {
			return a.dispatchWire(u)
		}
	}
	if durable && u.id == (UploadID{}) {
		// Non-durable submit on a durable aggregator: the log record
		// still needs an identity, derived here off the hot Submit path.
		id, err := ReportUploadID(u.rep)
		if err == nil {
			u.id = id
		}
	}
	frags := u.rep.Split(a.cfg.Shards)
	if u.ack != nil {
		n := 0
		for _, frag := range frags {
			if frag != nil {
				n++
			}
		}
		if n == 0 {
			u.ack.finish()
			return true
		}
		// The count must be set before the first fragment can complete.
		u.ack.remaining.Store(int32(n))
	}
	for i, frag := range frags {
		if frag == nil {
			continue
		}
		select {
		case a.shards[i] <- shardMsg{frag: frag, id: u.id, ack: u.ack}:
		case <-a.crashCh:
			return false
		}
	}
	return true
}

// dispatchWire routes a decoded binary upload's entries to their shards by
// precomputed entry key — no Split, no fragment reports, no re-hashing of
// strings the decoder already keyed. It returns false if a crash unwound
// the dispatcher mid-route.
func (a *Aggregator) dispatchWire(u *upload) bool {
	frags, health := u.wire.Split(a.cfg.Shards)
	var h *core.Health
	if !health.Zero() {
		h = &health
	}
	if u.ack != nil {
		n := 0
		for i, entries := range frags {
			if entries != nil || (i == 0 && h != nil) {
				n++
			}
		}
		if n == 0 {
			u.ack.finish()
			return true
		}
		// The count must be set before the first routed fragment completes.
		u.ack.remaining.Store(int32(n))
	}
	for i, entries := range frags {
		var eh *core.Health
		if i == 0 {
			eh = h
		}
		if entries == nil && eh == nil {
			continue
		}
		select {
		case a.shards[i] <- shardMsg{wire: entries, health: eh, id: u.id, ack: u.ack}:
		case <-a.crashCh:
			return false
		}
	}
	return true
}

// pendingFrag is one fragment of the in-flight shard batch, kept with its
// identity and ack until the durability barrier decides its fate. Either
// frag or wire (with optional health) is set, mirroring shardMsg.
type pendingFrag struct {
	frag   *core.Report
	wire   []core.WireEntry
	health *core.Health
	id     UploadID
	ack    *uploadAck
}

// merge folds the fragment into rep, whichever form it carries.
func (pf *pendingFrag) merge(rep *core.Report) {
	if pf.frag != nil {
		rep.Merge(pf.frag)
		return
	}
	if pf.health != nil {
		rep.Health.Add(*pf.health)
	}
	rep.MergeWireEntries(pf.wire)
}

// mark records the fragment's entry keys in the shard's snapshot cache so
// the next snapshot re-clones only what this merge dirtied. Called exactly
// when the fragment actually merges into the shard report (never for the
// WAL-materialization path, which builds a throwaway report).
func (pf *pendingFrag) mark(sc *core.SnapshotCache) {
	if pf.frag != nil {
		sc.MarkReport(pf.frag)
		return
	}
	sc.MarkWireEntries(pf.wire)
}

// report materializes the fragment as a standalone report (the durable
// path needs one to log).
func (pf *pendingFrag) report() *core.Report {
	if pf.frag == nil {
		frag := core.NewReport()
		pf.merge(frag)
		pf.frag = frag
	}
	return pf.frag
}

// runShard is a single-writer merge loop: only this goroutine ever touches
// its core.Report or its WAL. With a WAL it first recovers its state
// (snapshot, then log tail — truncating a torn final record), reporting
// readiness on ready; fragments are then appended to the log and only
// merged once durable per the sync policy, so the in-memory report (and
// therefore every snapshot compaction) never gets ahead of the disk.
// Fragments are drained in batches of up to BatchSize per merge call — one
// group-commit barrier per batch — and control messages (stats/snapshot)
// are answered between batches, so they observe merge-complete states only.
func (a *Aggregator) runShard(i int, ready chan<- error) {
	defer a.shardWG.Done()
	var w *shardWAL
	rep := core.NewReport()
	if a.cfg.WAL != nil {
		var err error
		w, rep, _, err = openShardWAL(a.cfg.WAL, i, a.cfg.Shards, a.walM)
		ready <- err
		if err != nil {
			// Open unwinds everything; just drain our channel until then.
			for range a.shards[i] {
			}
			return
		}
		defer w.close()
	} else {
		ready <- nil
	}

	ch := a.shards[i]
	batch := make([]pendingFrag, 0, a.cfg.BatchSize)
	ctrl := make([]shardMsg, 0, 4)
	// cache is the shard's versioned snapshot state: merges mark the keys
	// they touch and bump the version once per batch; reads reuse the
	// cached immutable snapshot whenever the version is unchanged, and a
	// stale one re-clones only the dirtied entries (copy-on-write).
	cache := core.NewSnapshotCache()
	serve := func(m shardMsg) {
		switch {
		case m.stats != nil:
			m.stats <- ShardStats{Entries: rep.Len(), Hangs: rep.TotalHangs(), Health: rep.Health}
		case m.snap != nil && m.deep:
			// The uncached reference path (FoldSerial): a fresh deep clone,
			// exactly what every snapshot request cost before versioning.
			m.snap <- shardSnap{rep: rep.Clone(), version: cache.Version()}
		case m.snap != nil:
			if cache.Cached() {
				a.metrics.snapshotReuses.Inc()
			}
			m.snap <- shardSnap{rep: cache.Snapshot(rep), version: cache.Version()}
		case m.delta != nil:
			d, v := cache.DeltaSince(rep, m.since)
			m.delta <- shardSnap{rep: d, version: v}
		}
	}
	for {
		var msg shardMsg
		var ok bool
		select {
		case <-a.crashCh:
			// Abandoned abruptly: no final compaction, no acks. Whatever
			// the log holds is what recovery will see.
			return
		case msg, ok = <-ch:
			if !ok {
				// Clean drain: write one final compacted snapshot so the
				// next boot replays a snapshot instead of the whole tail.
				if w != nil && (w.records > 0 || w.dirty) {
					if err := w.compact(cache.Snapshot(rep)); err != nil {
						fmt.Printf("fleet: shard %d final compaction failed (tail remains replayable): %v\n", i, err)
					}
				}
				a.finals[i] = rep
				return
			}
		}
		if !msg.payload() {
			serve(msg)
			continue
		}
		batch = append(batch[:0], pendingFrag{frag: msg.frag, wire: msg.wire, health: msg.health, id: msg.id, ack: msg.ack})
		ctrl = ctrl[:0]
	drain:
		for len(batch) < a.cfg.BatchSize {
			select {
			case m2, ok := <-ch:
				if !ok {
					break drain
				}
				if !m2.payload() {
					// Answer after the in-flight batch merges.
					ctrl = append(ctrl, m2)
					break drain
				}
				batch = append(batch, pendingFrag{frag: m2.frag, wire: m2.wire, health: m2.health, id: m2.id, ack: m2.ack})
			default:
				break drain
			}
		}
		a.processBatch(w, rep, cache, batch)
		for _, m2 := range ctrl {
			serve(m2)
		}
		if w != nil && w.records >= a.cfg.WAL.CompactEvery {
			// Compaction serializes the shard's state; consuming the cached
			// copy-on-write snapshot (instead of the live report) means a
			// compaction right after a fold costs no extra cloning, and the
			// snapshot it persists is exactly what readers were served.
			if err := w.compact(cache.Snapshot(rep)); err != nil {
				// The old log is intact; keep appending to it and let the
				// next batch retry. appendErrors already counted barriers.
				fmt.Printf("fleet: shard %d compaction failed (will retry): %v\n", i, err)
			}
		}
	}
}

// processBatch makes one batch of fragments durable and merges the
// survivors. Without a WAL every fragment survives. With one:
//
//  1. fragments whose upload ID is already durable are skipped (acked as
//     success — the previous append is the durability);
//  2. survivors are appended to the log; an append failure nacks just
//     that fragment (the tail is repaired before the next append);
//  3. one barrier covers the batch (group commit; SyncAlways moves the
//     barrier inside the loop). A failed barrier rolls the log back to
//     the last durable watermark and nacks the whole batch;
//  4. only fragments that made it through the barrier are merged into
//     the in-memory report and remembered for dedup — the report never
//     contains state the log could lose.
func (a *Aggregator) processBatch(w *shardWAL, rep *core.Report, sc *core.SnapshotCache, batch []pendingFrag) {
	if w == nil {
		start := time.Now()
		for i := range batch {
			batch[i].mark(sc)
			batch[i].merge(rep)
		}
		sc.Bump()
		a.metrics.noteMerge(len(batch), time.Since(start))
		for _, pf := range batch {
			pf.ack.complete(nil)
		}
		return
	}

	durable := make([]pendingFrag, 0, len(batch))
	// Batch-local duplicate check: two sends of the same document racing
	// into one batch must dedup exactly like one arriving after the
	// barrier. Batches are small (BatchSize), so a linear scan is fine.
	inBatch := func(id UploadID) bool {
		for _, pf := range durable {
			if pf.id == id {
				return true
			}
		}
		return false
	}
	for _, pf := range batch {
		if w.dedup.has(pf.id) || inBatch(pf.id) {
			a.walM.deduped.Inc()
			pf.ack.complete(nil)
			continue
		}
		payload, err := encodeFragment(pf.id, pf.report())
		if err == nil {
			err = w.append(payload)
		}
		if err == nil && a.cfg.WAL.Sync == SyncAlways {
			err = w.barrier()
		}
		if err != nil {
			pf.ack.complete(err)
			continue
		}
		durable = append(durable, pf)
	}
	if len(durable) > 0 && a.cfg.WAL.Sync != SyncAlways {
		if err := w.barrier(); err != nil {
			// Nothing in this batch is durable: nack everything appended
			// (the log was rolled back to the last durable watermark).
			for _, pf := range durable {
				pf.ack.complete(err)
			}
			return
		}
	}
	if len(durable) == 0 {
		return
	}
	// Only now — past the barrier — does the batch enter the in-memory
	// report and the dedup window.
	start := time.Now()
	for i := range durable {
		durable[i].mark(sc)
		durable[i].merge(rep)
		w.dedup.add(durable[i].id)
	}
	sc.Bump()
	a.metrics.noteMerge(len(durable), time.Since(start))
	for _, pf := range durable {
		pf.ack.complete(nil)
	}
}

// ShardStats queries every shard; after Close it reads the final reports
// directly.
func (a *Aggregator) ShardStats() []ShardStats {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]ShardStats, a.cfg.Shards)
	if a.crashed {
		return out
	}
	if a.finalized {
		// Shard channels are closed; wait for the drain to finish (outside
		// the lock) and read the final reports directly.
		a.mu.RUnlock()
		a.shardWG.Wait()
		a.mu.RLock()
		for i, rep := range a.finals {
			if rep == nil {
				continue
			}
			out[i] = ShardStats{Entries: rep.Len(), Hangs: rep.TotalHangs(), Health: rep.Health}
		}
		return out
	}
	replies := make([]chan ShardStats, a.cfg.Shards)
	for i, ch := range a.shards {
		replies[i] = make(chan ShardStats, 1)
		select {
		case ch <- shardMsg{stats: replies[i]}:
		case <-a.crashCh:
			return out
		}
	}
	for i := range replies {
		select {
		case out[i] = <-replies[i]:
		case <-a.crashCh:
			return out
		}
	}
	return out
}

// Fold returns the folded fleet report. While traffic is in flight the
// result is a consistent merge-boundary snapshot per shard (not a global
// cut); once the aggregator is closed and drained it is the exact fleet
// total, byte-identical in Export/Render to a serial merge of every
// accepted upload. The read path is incremental: each shard serves a
// versioned copy-on-write snapshot (free when the shard hasn't changed),
// and the aggregator re-merges only shards whose version moved, so fold
// cost scales with change, not with accumulated state. The returned
// report is IMMUTABLE and shared with other readers — treat it (and
// everything reachable from it) as read-only. After a Crash it returns an
// empty report (counted in hangdoctor_fleet_fold_errors_total) — reopen
// the WAL directory to recover.
func (a *Aggregator) Fold() *core.Report {
	rep, _ := a.FoldVersioned()
	return rep
}

// Epoch identifies this aggregator instance in version vectors.
func (a *Aggregator) Epoch() uint64 { return a.epoch }

// FoldVersioned is Fold plus the shard version vector the fold covers —
// the value a delta-polling client echoes back as /v1/snapshot?since=.
func (a *Aggregator) FoldVersioned() (*core.Report, VersionVector) {
	start := time.Now()
	defer func() { a.metrics.noteFold(time.Since(start)) }()
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.crashed {
		a.metrics.foldErrors.Inc()
		return core.NewReport(), VersionVector{}
	}
	if a.finalized {
		a.mu.RUnlock()
		a.shardWG.Wait()
		a.mu.RLock()
		// Post-drain state is frozen: fold once, serve the memo forever.
		a.foldMu.Lock()
		defer a.foldMu.Unlock()
		if a.foldFinal == nil {
			a.foldFinal = core.FoldReportsShared(a.finals...)
		} else {
			a.metrics.foldCacheHits.Inc()
		}
		return a.foldFinal, VersionVector{Epoch: a.epoch}
	}
	snaps, vers, ok := a.gatherSnaps(false)
	if !ok {
		a.metrics.foldErrors.Inc()
		return core.NewReport(), VersionVector{}
	}
	vec := VersionVector{Epoch: a.epoch, Shards: vers}
	a.foldMu.Lock()
	defer a.foldMu.Unlock()
	moved, stale := false, false
	changed := make([]bool, len(snaps))
	for i, v := range vers {
		if a.foldVers == nil || a.foldVers[i] != v {
			changed[i] = true
			moved = true
		}
		if a.foldVers != nil && v < a.foldVers[i] {
			stale = true
		}
	}
	if stale {
		// A concurrent fold already cached a newer vector; serve this
		// gather without rolling the cache backwards (the fold cache's
		// key-superset invariant only holds going forward).
		return core.FoldReportsShared(snaps...), vec
	}
	if !moved && a.foldCache.Result() != nil {
		a.metrics.foldCacheHits.Inc()
		return a.foldCache.Result(), vec
	}
	rep := a.foldCache.Update(snaps, changed)
	a.foldVers = vers
	return rep, vec
}

// FoldSerial is the uncached reference read path — every shard deep-clones
// its state and the clones merge serially, exactly what Fold cost before
// versioned snapshots. The differential tests pin Fold byte-identical to
// it, and BenchmarkFold uses it as the cold row.
func (a *Aggregator) FoldSerial() *core.Report {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.crashed {
		return core.NewReport()
	}
	if a.finalized {
		a.mu.RUnlock()
		a.shardWG.Wait()
		a.mu.RLock()
		return core.FoldReports(a.finals...)
	}
	snaps, _, ok := a.gatherSnaps(true)
	if !ok {
		return core.NewReport()
	}
	return core.FoldReports(snaps...)
}

// gatherSnaps collects one (snapshot, version) pair from every shard.
// deep requests fresh clones that bypass the shard snapshot caches.
// Callers must hold a.mu.RLock with the shards live; ok is false if a
// crash unwound the gather.
func (a *Aggregator) gatherSnaps(deep bool) (snaps []*core.Report, vers []uint64, ok bool) {
	replies := make([]chan shardSnap, a.cfg.Shards)
	for i, ch := range a.shards {
		replies[i] = make(chan shardSnap, 1)
		select {
		case ch <- shardMsg{snap: replies[i], deep: deep}:
		case <-a.crashCh:
			return nil, nil, false
		}
	}
	snaps = make([]*core.Report, a.cfg.Shards)
	vers = make([]uint64, a.cfg.Shards)
	for i := range replies {
		select {
		case s := <-replies[i]:
			snaps[i], vers[i] = s.rep, s.version
		case <-a.crashCh:
			return nil, nil, false
		}
	}
	return snaps, vers, true
}

// Delta answers a delta-snapshot poll: given the vector a client captured
// from a previous response, it returns an immutable report holding only
// the entries changed since then (plus the fleet's full health section,
// which is absolute and rides every delta), the current vector, and
// delta=true. A vector from another epoch (node restart), a different
// shard count, or a torn-down aggregator cannot be compared — the reply
// degrades to the full fold with delta=false, which is the self-healing
// resync path.
func (a *Aggregator) Delta(since VersionVector) (rep *core.Report, vec VersionVector, delta bool) {
	if since.Epoch != a.epoch || len(since.Shards) != a.cfg.Shards {
		rep, vec = a.FoldVersioned()
		return rep, vec, false
	}
	a.mu.RLock()
	if a.crashed || a.finalized {
		a.mu.RUnlock()
		rep, vec = a.FoldVersioned()
		return rep, vec, false
	}
	replies := make([]chan shardSnap, a.cfg.Shards)
	abort := func() (*core.Report, VersionVector, bool) {
		a.mu.RUnlock()
		a.metrics.foldErrors.Inc()
		return core.NewReport(), VersionVector{}, false
	}
	for i, ch := range a.shards {
		replies[i] = make(chan shardSnap, 1)
		select {
		case ch <- shardMsg{delta: replies[i], since: since.Shards[i]}:
		case <-a.crashCh:
			return abort()
		}
	}
	deltas := make([]*core.Report, a.cfg.Shards)
	vers := make([]uint64, a.cfg.Shards)
	for i := range replies {
		select {
		case s := <-replies[i]:
			deltas[i], vers[i] = s.rep, s.version
		case <-a.crashCh:
			return abort()
		}
	}
	a.mu.RUnlock()
	for i, v := range vers {
		if v < since.Shards[i] {
			// A shard version below the client's is impossible within one
			// epoch; resync in full rather than serve a nonsense delta.
			rep, vec = a.FoldVersioned()
			return rep, vec, false
		}
	}
	return core.FoldReportsShared(deltas...), VersionVector{Epoch: a.epoch, Shards: vers}, true
}

// Close drains and stops the aggregator: no new uploads are accepted, but
// everything already queued is split and merged before Close returns, so a
// graceful shutdown loses nothing it acknowledged. With a WAL, each shard
// writes one final compacted snapshot on its way out, so a clean restart
// replays a snapshot and an empty tail. Close is idempotent.
func (a *Aggregator) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		// Whether the first teardown was a Close or a Crash, both waitgroups
		// terminate; wait so the WAL directory is quiescent on return.
		a.dispatchWG.Wait()
		a.shardWG.Wait()
		return
	}
	a.closed = true
	close(a.intake)
	a.mu.Unlock()

	a.dispatchWG.Wait()
	// finalized must flip in the same critical section that closes the shard
	// channels: a snapshot that sees finalized==false is about to send a
	// control message, and a send may never race a close.
	a.mu.Lock()
	a.finalized = true
	for _, ch := range a.shards {
		close(ch)
	}
	a.mu.Unlock()
	a.shardWG.Wait()
}

// Crash tears the aggregator down abruptly — no drain, no final
// compaction, no acks: the process-kill model the crash-recovery tests
// and the chaos harness exercise. Whatever the shard logs physically hold
// is what a subsequent Open of the same WAL directory recovers. In-flight
// SubmitDurable calls return ErrCrashed (their uploads are unacknowledged
// and safe to resend). Crash is idempotent; Crash after Close is a no-op.
func (a *Aggregator) Crash() {
	a.mu.Lock()
	if a.closed {
		crashed := a.crashed
		a.mu.Unlock()
		if crashed {
			// A concurrent Crash won the race; wait out its teardown so no
			// shard goroutine is still touching the WAL directory when this
			// call returns (callers immediately reopen that directory).
			a.dispatchWG.Wait()
			a.shardWG.Wait()
		}
		return
	}
	a.closed, a.crashed, a.finalized = true, true, true
	close(a.crashCh)
	close(a.intake)
	a.mu.Unlock()
	a.dispatchWG.Wait()
	a.shardWG.Wait()
}

// String describes the aggregator's shape for logs.
func (a *Aggregator) String() string {
	wal := "off"
	if a.cfg.WAL != nil {
		wal = fmt.Sprintf("dir=%s sync=%s compact-every=%d", a.cfg.WAL.Dir, a.cfg.WAL.Sync, a.cfg.WAL.CompactEvery)
	}
	return fmt.Sprintf("fleet.Aggregator{shards=%d queue=%d batch=%d dispatchers=%d wal=%s}",
		a.cfg.Shards, a.cfg.QueueDepth, a.cfg.BatchSize, a.cfg.Dispatchers, wal)
}
