// Package fleet is the server side of the paper's §3.2 field-study loop at
// production scale: many devices upload Hang Bug Reports ((*core.Report)
// documents) and the service aggregates them into one fleet-wide view.
//
// The write path is sharded: an upload is accepted into a bounded intake
// queue (backpressure, not unbounded buffering, when ingest outruns
// merging), split by a stable hash of each entry's identity into per-shard
// fragments, and merged by N single-writer shard goroutines, each owning a
// private core.Report. Reads fold shard snapshots on demand. Because
// core.Report.Merge is commutative and associative, the folded view is
// byte-identical to a serial merge of the same uploads regardless of shard
// count, batch boundaries, or arrival order — the property the determinism
// tests pin down.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"hangdoctor/internal/core"
)

// Errors Submit can return.
var (
	// ErrQueueFull means the intake queue is at capacity; the caller should
	// back off and retry (the HTTP layer maps it to 429 + Retry-After).
	ErrQueueFull = errors.New("fleet: ingest queue full")
	// ErrClosed means the aggregator is shutting down and accepts no more
	// uploads (mapped to 503).
	ErrClosed = errors.New("fleet: aggregator closed")
)

// Config parameterizes an Aggregator. The zero value is completed by
// defaults suitable for tests and small deployments.
type Config struct {
	// Shards is the number of single-writer merge goroutines; entry keys
	// hash onto them (default 4).
	Shards int
	// QueueDepth bounds the intake queue; a full queue rejects uploads with
	// ErrQueueFull instead of buffering without limit (default 256).
	QueueDepth int
	// BatchSize is the most fragments a shard folds per merge call; batching
	// amortizes per-wakeup overhead under load without adding latency when
	// idle (default 16).
	BatchSize int
	// Dispatchers is the number of goroutines splitting queued uploads into
	// per-shard fragments; splitting hashes every entry, so it must scale
	// alongside the shards or it becomes the serial bottleneck (default:
	// max(Shards, GOMAXPROCS/2)).
	Dispatchers int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = c.Shards
		if half := runtime.GOMAXPROCS(0) / 2; half > c.Dispatchers {
			c.Dispatchers = half
		}
	}
	return c
}

// ShardStats is one shard's cheap self-description, served from inside the
// shard goroutine so no reader ever touches single-writer state.
type ShardStats struct {
	Entries int
	Hangs   int
	Health  core.Health
}

// shardMsg is the only thing that crosses into a shard goroutine: either a
// fragment to merge or a control request (exactly one field is set).
type shardMsg struct {
	frag  *core.Report
	stats chan ShardStats
	snap  chan *core.Report
}

// Aggregator is the sharded fleet-report builder.
type Aggregator struct {
	cfg     Config
	intake  chan *core.Report
	shards  []chan shardMsg
	metrics *Metrics

	mu        sync.RWMutex
	closed    bool // no further Submits
	finalized bool // shards exited; finals hold their reports
	finals    []*core.Report

	dispatchWG sync.WaitGroup
	shardWG    sync.WaitGroup
}

// NewAggregator starts the shard and dispatcher goroutines and returns an
// aggregator ready for Submit. Call Close to drain and stop it.
func NewAggregator(cfg Config) *Aggregator {
	cfg = cfg.withDefaults()
	a := &Aggregator{
		cfg:     cfg,
		intake:  make(chan *core.Report, cfg.QueueDepth),
		shards:  make([]chan shardMsg, cfg.Shards),
		finals:  make([]*core.Report, cfg.Shards),
		metrics: newMetrics(cfg.QueueDepth),
	}
	a.metrics.reg.GaugeFunc("hangdoctor_fleet_queue_depth",
		"Current intake backlog.",
		func() int64 { return int64(len(a.intake)) })
	for i := range a.shards {
		a.shards[i] = make(chan shardMsg, 2*cfg.BatchSize)
		a.shardWG.Add(1)
		go a.runShard(i)
	}
	for i := 0; i < cfg.Dispatchers; i++ {
		a.dispatchWG.Add(1)
		go a.runDispatcher()
	}
	return a
}

// Shards returns the configured shard count.
func (a *Aggregator) Shards() int { return a.cfg.Shards }

// QueueDepth returns the current intake backlog.
func (a *Aggregator) QueueDepth() int { return len(a.intake) }

// Metrics returns the aggregator's counters.
func (a *Aggregator) Metrics() *Metrics { return a.metrics }

// AggregatorSnapshot is one consistent read of the aggregator's state:
// the ingestion counters (with the merge triple read atomically), the
// live queue backlog, and every shard's self-description. It backs
// /healthz, /metrics.json, and the shutdown log line, so all three
// surfaces describe the same moment instead of re-reading counters that
// advanced between them.
type AggregatorSnapshot struct {
	MetricsSnapshot
	QueueDepth int          `json:"queue_depth"`
	Shards     []ShardStats `json:"shards"`
}

// Entries sums root-cause entries across shards.
func (s AggregatorSnapshot) Entries() int {
	n := 0
	for _, st := range s.Shards {
		n += st.Entries
	}
	return n
}

// Hangs sums diagnosed hangs across shards.
func (s AggregatorSnapshot) Hangs() int {
	n := 0
	for _, st := range s.Shards {
		n += st.Hangs
	}
	return n
}

// Snapshot reads the counters, the queue depth, and the shard stats in
// that order. Shard stats are answered at merge boundaries, so while
// traffic is in flight the counters may be slightly ahead of the shard
// view — but each piece is internally consistent.
func (a *Aggregator) Snapshot() AggregatorSnapshot {
	return AggregatorSnapshot{
		MetricsSnapshot: a.metrics.Snapshot(),
		QueueDepth:      a.QueueDepth(),
		Shards:          a.ShardStats(),
	}
}

// scrape refreshes the scrape-time gauges that project live shard state
// into the registry — per-shard entry counts, fleet-wide totals, and the
// summed device health — immediately before an exposition is written.
// Gauge re-registration is idempotent, so repeated scrapes update the
// same series.
func (a *Aggregator) scrape() {
	stats := a.ShardStats()
	reg := a.metrics.reg
	shardEntries := reg.GaugeVec("hangdoctor_fleet_shard_entries",
		"Root-cause entries owned by each shard.", "shard")
	var entries, hangs int64
	var health core.Health
	for i, st := range stats {
		shardEntries.With(strconv.Itoa(i)).Set(int64(st.Entries))
		entries += int64(st.Entries)
		hangs += int64(st.Hangs)
		health.Add(st.Health)
	}
	reg.Gauge("hangdoctor_fleet_entries", "Distinct root causes fleet-wide.").Set(entries)
	reg.Gauge("hangdoctor_fleet_hangs", "Diagnosed soft hangs fleet-wide.").Set(hangs)
	for _, hc := range []struct {
		name string
		v    int
	}{
		{"perf_open_failures", health.PerfOpenFailures},
		{"perf_open_retries", health.PerfOpenRetries},
		{"counters_lost", health.CountersLost},
		{"render_lost", health.RenderLost},
		{"stacks_dropped", health.StacksDropped},
		{"stacks_truncated", health.StacksTruncated},
		{"sampler_overruns", health.SamplerOverruns},
		{"verdicts_deferred", health.VerdictsDeferred},
		{"low_confidence", health.LowConfidence},
		{"quarantines", health.Quarantines},
	} {
		reg.Gauge("hangdoctor_fleet_health_"+hc.name,
			"Summed degraded-mode health counter across devices.").Set(int64(hc.v))
	}
}

// Submit enqueues one validated upload without blocking. It returns
// ErrQueueFull when the bounded queue is at capacity and ErrClosed after
// Close; on success the report is owned by the aggregator (callers must not
// mutate it afterwards).
func (a *Aggregator) Submit(rep *core.Report) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		a.metrics.rejected.Inc()
		return ErrClosed
	}
	select {
	case a.intake <- rep:
		a.metrics.accepted.Inc()
		return nil
	default:
		a.metrics.rejected.Inc()
		return ErrQueueFull
	}
}

// SubmitWait is Submit without the non-blocking policy: it waits for queue
// space instead of rejecting. Bulk importers (cmd/fleet) and benchmarks use
// it; the HTTP path uses Submit so overload turns into backpressure.
func (a *Aggregator) SubmitWait(rep *core.Report) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		a.metrics.rejected.Inc()
		return ErrClosed
	}
	a.intake <- rep
	a.metrics.accepted.Inc()
	return nil
}

// runDispatcher splits queued uploads into per-shard fragments. Several
// dispatchers run concurrently — splitting hashes every entry, and a single
// splitter would serialize the whole write path (Amdahl) — which is safe
// because fragment routing is order-independent under a commutative merge.
func (a *Aggregator) runDispatcher() {
	defer a.dispatchWG.Done()
	for rep := range a.intake {
		for i, frag := range rep.Split(a.cfg.Shards) {
			if frag == nil {
				continue
			}
			a.shards[i] <- shardMsg{frag: frag}
		}
	}
}

// runShard is a single-writer merge loop: only this goroutine ever touches
// its core.Report. Fragments are drained in batches of up to BatchSize per
// merge call; control messages (stats/snapshot) are answered between
// batches, so they observe merge-complete states only.
func (a *Aggregator) runShard(i int) {
	defer a.shardWG.Done()
	rep := core.NewReport()
	ch := a.shards[i]
	batch := make([]*core.Report, 0, a.cfg.BatchSize)
	ctrl := make([]shardMsg, 0, 4)
	serve := func(m shardMsg) {
		switch {
		case m.stats != nil:
			m.stats <- ShardStats{Entries: rep.Len(), Hangs: rep.TotalHangs(), Health: rep.Health}
		case m.snap != nil:
			m.snap <- rep.Clone()
		}
	}
	for msg := range ch {
		if msg.frag == nil {
			serve(msg)
			continue
		}
		batch = append(batch[:0], msg.frag)
		ctrl = ctrl[:0]
	drain:
		for len(batch) < a.cfg.BatchSize {
			select {
			case m2, ok := <-ch:
				if !ok {
					break drain
				}
				if m2.frag == nil {
					// Answer after the in-flight batch merges.
					ctrl = append(ctrl, m2)
					break drain
				}
				batch = append(batch, m2.frag)
			default:
				break drain
			}
		}
		start := time.Now()
		rep.Merge(batch...)
		a.metrics.noteMerge(len(batch), time.Since(start))
		for _, m2 := range ctrl {
			serve(m2)
		}
	}
	a.finals[i] = rep
}

// ShardStats queries every shard; after Close it reads the final reports
// directly.
func (a *Aggregator) ShardStats() []ShardStats {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]ShardStats, a.cfg.Shards)
	if a.finalized {
		// Shard channels are closed; wait for the drain to finish (outside
		// the lock) and read the final reports directly.
		a.mu.RUnlock()
		a.shardWG.Wait()
		a.mu.RLock()
		for i, rep := range a.finals {
			out[i] = ShardStats{Entries: rep.Len(), Hangs: rep.TotalHangs(), Health: rep.Health}
		}
		return out
	}
	replies := make([]chan ShardStats, a.cfg.Shards)
	for i, ch := range a.shards {
		replies[i] = make(chan ShardStats, 1)
		ch <- shardMsg{stats: replies[i]}
	}
	for i := range replies {
		out[i] = <-replies[i]
	}
	return out
}

// Fold snapshots every shard and merges the snapshots, in shard order, into
// one fleet report. While traffic is in flight the result is a consistent
// merge-boundary snapshot per shard (not a global cut); once the aggregator
// is closed and drained it is the exact fleet total, byte-identical in
// Export/Render to a serial merge of every accepted upload.
func (a *Aggregator) Fold() *core.Report {
	start := time.Now()
	defer func() { a.metrics.noteFold(time.Since(start)) }()
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.finalized {
		a.mu.RUnlock()
		a.shardWG.Wait()
		a.mu.RLock()
		return core.FoldReports(a.finals...)
	}
	replies := make([]chan *core.Report, a.cfg.Shards)
	for i, ch := range a.shards {
		replies[i] = make(chan *core.Report, 1)
		ch <- shardMsg{snap: replies[i]}
	}
	snaps := make([]*core.Report, a.cfg.Shards)
	for i := range replies {
		snaps[i] = <-replies[i]
	}
	return core.FoldReports(snaps...)
}

// Close drains and stops the aggregator: no new uploads are accepted, but
// everything already queued is split and merged before Close returns, so a
// graceful shutdown loses nothing it acknowledged. Close is idempotent.
func (a *Aggregator) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		a.shardWG.Wait()
		return
	}
	a.closed = true
	close(a.intake)
	a.mu.Unlock()

	a.dispatchWG.Wait()
	// finalized must flip in the same critical section that closes the shard
	// channels: a snapshot that sees finalized==false is about to send a
	// control message, and a send may never race a close.
	a.mu.Lock()
	a.finalized = true
	for _, ch := range a.shards {
		close(ch)
	}
	a.mu.Unlock()
	a.shardWG.Wait()
}

// String describes the aggregator's shape for logs.
func (a *Aggregator) String() string {
	return fmt.Sprintf("fleet.Aggregator{shards=%d queue=%d batch=%d dispatchers=%d}",
		a.cfg.Shards, a.cfg.QueueDepth, a.cfg.BatchSize, a.cfg.Dispatchers)
}
