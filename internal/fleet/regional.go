package fleet

// regional.go is the second fleet tier: a regional aggregator that folds N
// fleetd nodes into one view the same way one node folds its shards. Each
// node serves its folded state in canonical binary form on /v1/snapshot
// and its obs registry on /metrics/snapshot; the Regional fetches both and
// folds them — core.FoldReports for the report (commutative merge, so the
// fold is byte-identical to single-node operation on the same uploads) and
// obs.MergeSnapshots for the metrics (per-series sums). The shard fold and
// the node fold are the same algebra at different radii, which is what
// makes the two-tier determinism test meaningful: shards→node→region and
// uploads→one-aggregator must produce identical bytes.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"hangdoctor/internal/core"
	"hangdoctor/internal/obs"
)

// maxSnapshotBytes bounds one node's snapshot document (a folded fleet
// report can be much larger than one upload).
const maxSnapshotBytes = 256 << 20

// Regional folds a set of fleetd nodes. The zero value is not usable;
// construct with NewRegional.
type Regional struct {
	nodes  []string
	client *http.Client
}

// NewRegional builds a regional folder over node base URLs (e.g.
// "http://127.0.0.1:8717"). client nil uses a 30s-timeout default.
func NewRegional(nodes []string, client *http.Client) *Regional {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Regional{nodes: append([]string(nil), nodes...), client: client}
}

// Nodes returns the configured node list.
func (r *Regional) Nodes() []string { return append([]string(nil), r.nodes...) }

// FetchSnapshot pulls one node's folded report from /v1/snapshot and
// decodes the canonical binary document.
func (r *Regional) FetchSnapshot(ctx context.Context, node string) (*core.Report, error) {
	body, err := r.get(ctx, node+"/v1/snapshot")
	if err != nil {
		return nil, err
	}
	wr, err := core.NewBinaryDecoder().Decode(body)
	if err != nil {
		return nil, fmt.Errorf("fleet: node %s snapshot: %w", node, err)
	}
	return wr.Report(), nil
}

// Fold fetches every node's snapshot concurrently and merges them into one
// regional report. Any node failure fails the fold — a partial region
// would silently under-count, which is worse than a late one.
func (r *Regional) Fold(ctx context.Context) (*core.Report, error) {
	snaps := make([]*core.Report, len(r.nodes))
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	for i, node := range r.nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			snaps[i], errs[i] = r.FetchSnapshot(ctx, node)
		}(i, node)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return core.FoldReports(snaps...), nil
}

// Metrics fetches every node's obs snapshot from /metrics/snapshot and
// folds them with obs.MergeSnapshots — counters and gauges sum per series,
// histograms sum per bucket — so the regional exposition has the same
// shape as a node's.
func (r *Regional) Metrics(ctx context.Context) (obs.Snapshot, error) {
	snaps := make([]obs.Snapshot, len(r.nodes))
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	for i, node := range r.nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			body, err := r.get(ctx, node+"/metrics/snapshot")
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = json.Unmarshal(body, &snaps[i])
		}(i, node)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return obs.Snapshot{}, err
		}
	}
	return obs.MergeSnapshots(snaps...), nil
}

func (r *Regional) get(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxSnapshotBytes))
	if err != nil {
		return nil, fmt.Errorf("fleet: %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: %s: status %d", url, resp.StatusCode)
	}
	return body, nil
}
