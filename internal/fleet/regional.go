package fleet

// regional.go is the second fleet tier: a regional aggregator that folds N
// fleetd nodes into one view the same way one node folds its shards. Each
// node serves its folded state in canonical binary form on /v1/snapshot
// and its obs registry on /metrics/snapshot; the Regional fetches both and
// folds them — the report through the parallel fold tree (commutative
// merge, so the fold is byte-identical to single-node operation on the
// same uploads) and the metrics through obs.MergeSnapshots (per-series
// sums). The shard fold and the node fold are the same algebra at
// different radii, which is what makes the two-tier determinism test
// meaningful: shards→node→region and uploads→one-aggregator must produce
// identical bytes.
//
// Two read paths coexist. Fold is the stateless one: fetch every node's
// full snapshot, fold, fail closed on any error. PollDelta is the
// incremental one a long-running fleet-agg drives: it keeps a materialized
// per-node mirror plus a regional master report, echoes each node's
// version vector back via /v1/snapshot?since=, applies the returned
// deltas, and re-derives only the changed keys — so steady-state poll
// cost scales with change, not fleet size. A node restart (epoch change)
// degrades that node to a full snapshot automatically, and a failed node
// keeps its last mirrored state so the region serves stale-but-complete
// data instead of nothing (the caller surfaces the failure as degraded).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"sync"
	"time"

	"hangdoctor/internal/core"
	"hangdoctor/internal/obs"
)

// maxSnapshotBytes bounds one node's snapshot document (a folded fleet
// report can be much larger than one upload).
const maxSnapshotBytes = 256 << 20

// nodeState is the poller's materialized mirror of one node: the last
// applied folded state, the vector it corresponds to, and whether a full
// snapshot has ever been applied (until then ?since= is withheld).
type nodeState struct {
	rep    *core.Report
	vec    VersionVector
	synced bool
}

// Regional folds a set of fleetd nodes. The zero value is not usable;
// construct with NewRegional.
type Regional struct {
	nodes  []string
	client *http.Client

	// NodeTimeout bounds one node's fetch inside a PollDelta round so a
	// slow or wedged node cannot stall the whole round (0 = only the
	// client's own timeout applies).
	NodeTimeout time.Duration
	// FoldWorkers bounds the parallel fold tree used by Fold
	// (0 = GOMAXPROCS).
	FoldWorkers int

	// mu guards the poller's materialized state (Fold and Metrics are
	// stateless and never take it).
	mu     sync.Mutex
	states []nodeState
	master *core.Report        // fold of every node mirror; refreshed per changed key
	cache  *core.SnapshotCache // copy-on-write server over master
}

// NewRegional builds a regional folder over node base URLs (e.g.
// "http://127.0.0.1:8717"). client nil uses a 30s-timeout default.
func NewRegional(nodes []string, client *http.Client) *Regional {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	r := &Regional{
		nodes:  append([]string(nil), nodes...),
		client: client,
		cache:  core.NewSnapshotCache(),
	}
	r.states = make([]nodeState, len(r.nodes))
	for i := range r.states {
		r.states[i].rep = core.NewReport()
	}
	return r
}

func (r *Regional) foldWorkers() int {
	if r.FoldWorkers > 0 {
		return r.FoldWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// Nodes returns the configured node list.
func (r *Regional) Nodes() []string { return append([]string(nil), r.nodes...) }

// FetchSnapshot pulls one node's folded report from /v1/snapshot and
// decodes the canonical binary document.
func (r *Regional) FetchSnapshot(ctx context.Context, node string) (*core.Report, error) {
	body, _, err := r.get(ctx, node+"/v1/snapshot")
	if err != nil {
		return nil, err
	}
	wr, err := core.NewBinaryDecoder().Decode(body)
	if err != nil {
		return nil, fmt.Errorf("fleet: node %s snapshot: %w", node, err)
	}
	return wr.Report(), nil
}

// Fold fetches every node's snapshot concurrently and merges them into one
// regional report through the parallel fold tree. Any node failure fails
// the fold — a partial region would silently under-count, which is worse
// than a late one. (PollDelta is the degradation-tolerant path.)
func (r *Regional) Fold(ctx context.Context) (*core.Report, error) {
	snaps := make([]*core.Report, len(r.nodes))
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	for i, node := range r.nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			snaps[i], errs[i] = r.FetchSnapshot(ctx, node)
		}(i, node)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return core.FoldReportsParallel(r.foldWorkers(), snaps...), nil
}

// nodeFetch is one node's decoded /v1/snapshot response.
type nodeFetch struct {
	wr    *core.WireReport
	vec   VersionVector
	delta bool
}

// fetchSince pulls one node's snapshot, echoing since when the mirror is
// synced, and decodes the vector and kind headers alongside the body.
func (r *Regional) fetchSince(ctx context.Context, node string, since VersionVector, haveSince bool) (nodeFetch, error) {
	u := node + "/v1/snapshot"
	if haveSince {
		u += "?since=" + url.QueryEscape(since.String())
	}
	body, hdr, err := r.get(ctx, u)
	if err != nil {
		return nodeFetch{}, err
	}
	wr, err := core.NewBinaryDecoder().Decode(body)
	if err != nil {
		return nodeFetch{}, fmt.Errorf("fleet: node %s snapshot: %w", node, err)
	}
	nf := nodeFetch{wr: wr, delta: hdr.Get(SnapshotKindHeader) == SnapshotDelta}
	if vs := hdr.Get(VectorHeader); vs != "" {
		nf.vec, err = ParseVersionVector(vs)
		if err != nil {
			return nodeFetch{}, fmt.Errorf("fleet: node %s: %w", node, err)
		}
	}
	return nf, nil
}

// PollResult summarizes one PollDelta round.
type PollResult struct {
	// Report is the immutable regional fold after the round (copy-on-write
	// snapshot of the poller's master; safe to hold across rounds).
	Report *core.Report
	// Errs holds one slot per configured node; nil entries are healthy.
	Errs []error
	// Failed counts non-nil Errs; Deltas counts nodes that answered with a
	// delta rather than a full snapshot.
	Failed int
	Deltas int
}

// PollDelta runs one incremental poll round: fetch each node (bounded by
// NodeTimeout so one slow node cannot stall the round), apply full
// snapshots or deltas to the per-node mirrors, and re-derive only the
// changed keys of the regional master. Failed nodes keep their last
// mirrored state. The returned report is byte-identical to a from-scratch
// fold of the mirrors — and, once every node has answered one round
// cleanly, to Fold over the same nodes.
func (r *Regional) PollDelta(ctx context.Context) PollResult {
	n := len(r.nodes)
	sinces := make([]VersionVector, n)
	haveSince := make([]bool, n)
	r.mu.Lock()
	for i := range r.states {
		sinces[i], haveSince[i] = r.states[i].vec, r.states[i].synced
	}
	r.mu.Unlock()

	fetches := make([]nodeFetch, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, node := range r.nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			nctx := ctx
			if r.NodeTimeout > 0 {
				var cancel context.CancelFunc
				nctx, cancel = context.WithTimeout(ctx, r.NodeTimeout)
				defer cancel()
			}
			fetches[i], errs[i] = r.fetchSince(nctx, node, sinces[i], haveSince[i])
		}(i, node)
	}
	wg.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	res := PollResult{Errs: errs}
	var changed []string
	advanced := false
	for i := range fetches {
		if errs[i] != nil {
			res.Failed++
			continue
		}
		nf := fetches[i]
		if nf.delta {
			res.Deltas++
			if nf.vec.Equal(sinces[i]) && len(nf.wr.Entries) == 0 {
				continue // nothing moved on this node
			}
			changed = append(changed, r.states[i].rep.ApplyWireDelta(nf.wr)...)
		} else {
			changed = append(changed, r.states[i].rep.ApplyWireFull(nf.wr)...)
		}
		advanced = true
		r.states[i].vec, r.states[i].synced = nf.vec, !nf.vec.Zero()
	}
	parts := make([]*core.Report, n)
	for i := range r.states {
		parts[i] = r.states[i].rep
	}
	switch {
	case r.master == nil:
		// First round: build the master fresh; the snapshot cache starts
		// empty so the first Snapshot deep-copies it into immutability.
		r.master = core.FoldReportsShared(parts...)
		r.cache = core.NewSnapshotCache()
		r.cache.Bump()
	case advanced:
		// Mirrors replace entries rather than mutating them, and RefreshKeys
		// rebuilds the master's changed entries fresh — so report snapshots
		// handed out in earlier rounds stay valid.
		r.master.RefreshKeys(changed, parts...)
		for _, key := range changed {
			r.cache.MarkKey(key)
		}
		r.cache.Bump()
	}
	res.Report = r.cache.Snapshot(r.master)
	return res
}

// ForceResync discards every node's vector so the next PollDelta refetches
// full snapshots — the operator's "re-verify from scratch" lever; the
// convergence tests use it to pin delta polling against full polling.
func (r *Regional) ForceResync() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.states {
		r.states[i].synced = false
	}
}

// Metrics fetches every node's obs snapshot from /metrics/snapshot and
// folds them with obs.MergeSnapshots — counters and gauges sum per series,
// histograms sum per bucket — so the regional exposition has the same
// shape as a node's. Each fetch is bounded by NodeTimeout like the report
// polls, so a hung node fails this round instead of wedging every round.
func (r *Regional) Metrics(ctx context.Context) (obs.Snapshot, error) {
	snaps := make([]obs.Snapshot, len(r.nodes))
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	for i, node := range r.nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			nctx := ctx
			if r.NodeTimeout > 0 {
				var cancel context.CancelFunc
				nctx, cancel = context.WithTimeout(ctx, r.NodeTimeout)
				defer cancel()
			}
			body, _, err := r.get(nctx, node+"/metrics/snapshot")
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = json.Unmarshal(body, &snaps[i])
		}(i, node)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return obs.Snapshot{}, err
		}
	}
	return obs.MergeSnapshots(snaps...), nil
}

func (r *Regional) get(ctx context.Context, u string) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxSnapshotBytes))
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: %s: %w", u, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("fleet: %s: status %d", u, resp.StatusCode)
	}
	return body, resp.Header, nil
}
