package stack

import (
	"fmt"
	"testing"
)

func testResolver(class, method string) SymAttrs {
	var a SymAttrs
	if class == "android.view.View" {
		a |= SymUI
	}
	if class == "android.os.Looper" {
		a |= SymFramework
	}
	return a
}

func TestSymtabInternIdempotent(t *testing.T) {
	st := NewSymtab(testResolver)
	a := st.Intern("a.B", "m")
	b := st.Intern("a.B", "n")
	if a == NoSym || b == NoSym {
		t.Fatal("assigned IDs must not be NoSym")
	}
	if a == b {
		t.Fatal("distinct symbols share an ID")
	}
	if again := st.Intern("a.B", "m"); again != a {
		t.Fatalf("re-intern = %d, want %d", again, a)
	}
	if st.Len() != 3 { // NoSym placeholder + 2 symbols
		t.Fatalf("Len = %d, want 3", st.Len())
	}
	if k := st.Key(a); k != "a.B.m" {
		t.Fatalf("Key = %q", k)
	}
	if k := st.Key(NoSym); k != "" {
		t.Fatalf("Key(NoSym) = %q, want empty", k)
	}
}

func TestSymtabLookup(t *testing.T) {
	st := NewSymtab(nil)
	id := st.Intern("p.C", "run")
	if got, ok := st.Lookup("p.C", "run"); !ok || got != id {
		t.Fatalf("Lookup = %d, %v", got, ok)
	}
	if _, ok := st.Lookup("p.C", "absent"); ok {
		t.Fatal("Lookup invented a symbol")
	}
	if got, ok := st.LookupKey("p.C.run"); !ok || got != id {
		t.Fatalf("LookupKey = %d, %v", got, ok)
	}
	if _, ok := st.LookupKey("nodotkey"); ok {
		t.Fatal("dotless key resolved")
	}
}

func TestSymtabAttrsResolvedOnce(t *testing.T) {
	st := NewSymtab(testResolver)
	ui := st.Intern("android.view.View", "draw")
	fw := st.Intern("android.os.Looper", "loop")
	plain := st.Intern("com.app.X", "y")
	if st.Attrs(ui)&SymUI == 0 {
		t.Fatal("UI bit missing")
	}
	if st.Attrs(fw)&SymFramework == 0 {
		t.Fatal("framework bit missing")
	}
	if st.Attrs(plain) != 0 {
		t.Fatalf("plain symbol attrs = %v", st.Attrs(plain))
	}
	if st.Attrs(NoSym) != 0 {
		t.Fatal("NoSym must carry no attributes")
	}
}

func TestSymtabViewSnapshot(t *testing.T) {
	st := NewSymtab(testResolver)
	a := st.Intern("a.A", "x")
	v := st.View()
	if v.Len() != 2 || v.Key(a) != "a.A.x" || v.Class(a) != "a.A" || v.Method(a) != "x" {
		t.Fatalf("view = len %d key %q class %q method %q", v.Len(), v.Key(a), v.Class(a), v.Method(a))
	}
	// Symbols interned after the snapshot are out of range for it.
	b := st.Intern("b.B", "y")
	if int(b) < v.Len() {
		t.Fatal("new ID inside stale view range")
	}
	if v.Key(b) != "" || v.Attrs(b) != 0 {
		t.Fatal("stale view resolved a newer symbol")
	}
	if st.View().Key(b) != "b.B.y" {
		t.Fatal("fresh view missed the new symbol")
	}
}

func TestSymtabKnownBlockingEpoch(t *testing.T) {
	st := NewSymtab(nil)
	id := st.Intern("java.net.Socket", "connect")
	db := map[string]bool{}
	resolves := 0
	resolve := func(key string) bool { resolves++; return db[key] }

	if st.KnownBlocking(id, resolve) {
		t.Fatal("empty database reported blocking")
	}
	// Cached: same epoch, no second resolve.
	st.KnownBlocking(id, resolve)
	if resolves != 1 {
		t.Fatalf("resolves = %d, want 1 (cached)", resolves)
	}
	// Database mutation + invalidate: next read re-resolves and flips.
	db["java.net.Socket.connect"] = true
	st.InvalidateKnownBlocking()
	if !st.KnownBlocking(id, resolve) {
		t.Fatal("stale verdict served after invalidation")
	}
	if resolves != 2 {
		t.Fatalf("resolves = %d, want 2", resolves)
	}
	if !st.KnownBlocking(id, resolve) || resolves != 2 {
		t.Fatalf("verdict not re-cached (resolves = %d)", resolves)
	}
	if st.KnownBlocking(NoSym, resolve) {
		t.Fatal("NoSym reported blocking")
	}
}

func TestSymtabConcurrentIntern(t *testing.T) {
	st := NewSymtab(nil)
	done := make(chan map[string]SymID, 4)
	for g := 0; g < 4; g++ {
		go func() {
			got := map[string]SymID{}
			for i := 0; i < 200; i++ {
				cls := fmt.Sprintf("p.C%d", i%50)
				got[cls] = st.Intern(cls, "m")
			}
			done <- got
		}()
	}
	ref := <-done
	for g := 1; g < 4; g++ {
		other := <-done
		for cls, id := range ref {
			if other[cls] != id {
				t.Fatalf("goroutines disagree on %s: %d vs %d", cls, id, other[cls])
			}
		}
	}
	if st.Len() != 51 { // placeholder + 50 classes
		t.Fatalf("Len = %d, want 51", st.Len())
	}
}

// TestContainsCallerOfZeroAlloc pins the satellite fix: membership and
// caller scans compare Class/Method fields directly instead of building a
// key string per frame.
func TestContainsCallerOfZeroAlloc(t *testing.T) {
	s := New(
		frame("lib.API", "get"),
		frame("app.Repo", "load"),
		frame("app.UI", "onClick"),
		frame("android.os.Looper", "loop"),
	)
	allocs := testing.AllocsPerRun(100, func() {
		if !s.Contains("app.Repo.load") || s.Contains("absent.X.y") {
			t.Fatal("Contains wrong")
		}
		if _, ok := s.CallerOf("lib.API.get"); !ok {
			t.Fatal("CallerOf wrong")
		}
		if _, ok := s.CallerOf("android.os.Looper.loop"); ok {
			t.Fatal("outermost frame grew a caller")
		}
	})
	if allocs != 0 {
		t.Fatalf("Contains/CallerOf allocate %.1f objects, want 0", allocs)
	}
}
