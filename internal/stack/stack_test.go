package stack

import (
	"strings"
	"testing"
	"testing/quick"
)

func frame(cls, m string) Frame {
	return Frame{Class: cls, Method: m, File: m + ".java", Line: 1}
}

func TestFrameString(t *testing.T) {
	f := Frame{Class: "org.htmlcleaner.HtmlCleaner", Method: "clean", File: "HtmlCleaner.java", Line: 25}
	want := "org.htmlcleaner.HtmlCleaner.clean(HtmlCleaner.java:25)"
	if got := f.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestFrameKeyIgnoresLine(t *testing.T) {
	a := Frame{Class: "a.B", Method: "m", Line: 1}
	b := Frame{Class: "a.B", Method: "m", Line: 99}
	if a.Key() != b.Key() {
		t.Fatal("Key must ignore line numbers")
	}
}

func TestFramePackage(t *testing.T) {
	if got := frame("android.widget.TextView", "setText").Package(); got != "android.widget" {
		t.Fatalf("Package() = %q", got)
	}
	if got := frame("Plain", "m").Package(); got != "" {
		t.Fatalf("Package() of unpackaged class = %q, want empty", got)
	}
}

func TestLeafAndDepth(t *testing.T) {
	s := New(frame("a.Leaf", "l"), frame("a.Mid", "m"), frame("a.Root", "r"))
	if s.Leaf().Class != "a.Leaf" {
		t.Fatalf("Leaf = %v", s.Leaf())
	}
	if s.Depth() != 3 {
		t.Fatalf("Depth = %d", s.Depth())
	}
	var nilStack *Stack
	if nilStack.Depth() != 0 {
		t.Fatal("nil stack depth must be 0")
	}
	if nilStack.Leaf() != (Frame{}) {
		t.Fatal("nil stack leaf must be zero frame")
	}
}

func TestContains(t *testing.T) {
	s := New(frame("a.Leaf", "l"), frame("a.Mid", "m"))
	if !s.Contains("a.Mid.m") {
		t.Fatal("Contains missed a present frame")
	}
	if s.Contains("a.Other.x") {
		t.Fatal("Contains found an absent frame")
	}
	var nilStack *Stack
	if nilStack.Contains("a.Mid.m") {
		t.Fatal("nil stack must contain nothing")
	}
}

func TestCallerOf(t *testing.T) {
	s := New(frame("lib.API", "get"), frame("app.Repo", "load"), frame("app.UI", "onClick"))
	caller, ok := s.CallerOf("lib.API.get")
	if !ok || caller.Class != "app.Repo" {
		t.Fatalf("CallerOf = %v, %v", caller, ok)
	}
	if _, ok := s.CallerOf("app.UI.onClick"); ok {
		t.Fatal("outermost frame must have no caller")
	}
	if _, ok := s.CallerOf("absent.X.y"); ok {
		t.Fatal("absent key must have no caller")
	}
}

func TestPushImmutability(t *testing.T) {
	base := New(frame("a.Root", "r"))
	pushed := base.Push(frame("a.Leaf", "l"))
	if base.Depth() != 1 {
		t.Fatal("Push mutated receiver")
	}
	if pushed.Depth() != 2 || pushed.Leaf().Class != "a.Leaf" {
		t.Fatalf("pushed = %v", pushed)
	}
	var nilStack *Stack
	single := nilStack.Push(frame("a.X", "x"))
	if single.Depth() != 1 {
		t.Fatal("Push on nil stack failed")
	}
}

func TestConcat(t *testing.T) {
	outer := New(frame("app.Handler", "handle"), frame("android.os.Looper", "loop"))
	inner := New(frame("lib.Deep", "work"), frame("lib.API", "call"))
	full := outer.Concat(inner)
	if full.Depth() != 4 {
		t.Fatalf("Depth = %d, want 4", full.Depth())
	}
	if full.Leaf().Class != "lib.Deep" {
		t.Fatalf("leaf = %v, want lib.Deep", full.Leaf())
	}
	if full.Frames[3].Class != "android.os.Looper" {
		t.Fatalf("outermost = %v", full.Frames[3])
	}
	// Receiver and argument untouched.
	if outer.Depth() != 2 || inner.Depth() != 2 {
		t.Fatal("Concat mutated inputs")
	}
}

func TestStringFormat(t *testing.T) {
	s := New(frame("a.B", "m"))
	if !strings.HasPrefix(s.String(), "  at a.B.m(") {
		t.Fatalf("String() = %q", s.String())
	}
	var nilStack *Stack
	if nilStack.String() != "<empty stack>" {
		t.Fatalf("nil String() = %q", nilStack.String())
	}
}

// Property: Concat depth is additive and preserves frame order.
func TestConcatProperty(t *testing.T) {
	f := func(na, nb uint8) bool {
		a, b := &Stack{}, &Stack{}
		for i := 0; i < int(na%10); i++ {
			a.Frames = append(a.Frames, Frame{Class: "A", Method: string(rune('a' + i))})
		}
		for i := 0; i < int(nb%10); i++ {
			b.Frames = append(b.Frames, Frame{Class: "B", Method: string(rune('a' + i))})
		}
		c := a.Concat(b)
		if c.Depth() != a.Depth()+b.Depth() {
			return false
		}
		for i, fr := range b.Frames {
			if c.Frames[i] != fr {
				return false
			}
		}
		for i, fr := range a.Frames {
			if c.Frames[len(b.Frames)+i] != fr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruncate(t *testing.T) {
	s := New(frame("a.Leaf", "l"), frame("a.Mid", "m"), frame("a.Root", "r"))
	cut := s.Truncate(2)
	if cut.Depth() != 2 {
		t.Fatalf("Truncate(2) depth = %d", cut.Depth())
	}
	if cut.Leaf().Class != "a.Leaf" || cut.Frames[1].Class != "a.Mid" {
		t.Fatalf("Truncate kept wrong frames: %v", cut.Frames)
	}
	if s.Depth() != 3 {
		t.Fatal("Truncate mutated the receiver")
	}
	if got := s.Truncate(3); got != s {
		t.Fatal("Truncate covering the whole stack must return the receiver")
	}
	if got := s.Truncate(10); got != s {
		t.Fatal("Truncate beyond depth must return the receiver")
	}
	if got := s.Truncate(0); got != nil {
		t.Fatalf("Truncate(0) = %v, want nil", got)
	}
	var nilStack *Stack
	if got := nilStack.Truncate(2); got != nil {
		t.Fatal("nil stack truncates to nil")
	}
}
