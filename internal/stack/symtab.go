package stack

import "sync"

// SymID is a dense identifier for a class.method frame key. IDs are assigned
// by a Symtab in intern order starting at 1; NoSym (0) means "no symbol
// assigned" and is what zero-valued frames carry. Dense IDs let hot loops
// (the Trace Analyzer's occurrence counting, the registry's attribute
// queries) replace string maps with array indexing.
type SymID uint32

// NoSym is the zero SymID: no symbol interned/assigned.
const NoSym SymID = 0

// SymAttrs is the attribute bit set of a symbol, resolved once at intern
// time by the table's owner (api.Registry for the Android model).
type SymAttrs uint32

const (
	// SymUI marks symbols whose class is UI code (View, Widget, ... —
	// legitimate main-thread work, never a soft hang bug).
	SymUI SymAttrs = 1 << iota
	// SymFramework marks main-loop plumbing frames (Handler.dispatchMessage,
	// Looper.loop) that top every main-thread stack and can never be a root
	// cause.
	SymFramework
	// SymKnownBlocking marks symbols currently in the known-blocking
	// database. Unlike the other bits it is mutable at runtime (Hang
	// Doctor's feedback loop extends the database), so it is cached per
	// symbol under an epoch counter and re-resolved lazily after each
	// database change; read it through KnownBlocking, never through Attrs.
	SymKnownBlocking
	// SymAwait marks synchronization symbols (FutureTask.get,
	// CountDownLatch.await, ...) whose presence at the leaf of a main-thread
	// stack means the dispatch is waiting on asynchronous work: the hang's
	// real root cause lives in the chain being awaited, not in these frames.
	SymAwait
)

// AttrResolver computes the static attribute bits (SymUI, SymFramework) of
// a class.method symbol at intern time. It must be deterministic over the
// life of the table: attributes are resolved exactly once per symbol.
type AttrResolver func(class, method string) SymAttrs

type symKey struct{ class, method string }

// symEntry is the immutable per-symbol record. The canonical key string is
// built once here so ID-to-key resolution never concatenates again.
type symEntry struct {
	class, method string
	key           string // class + "." + method
	attrs         SymAttrs
}

// kbSlot caches one symbol's known-blocking verdict, valid while its epoch
// matches the table's current known-blocking epoch.
type kbSlot struct {
	epoch uint64
	known bool
}

// Symtab interns class.method frame keys to dense symbol IDs with attribute
// bits. It is safe for concurrent use: interning takes a write lock, and
// lookups by ID go through an immutable View snapshot so steady-state hot
// loops never touch the lock. One table belongs to one api.Registry; IDs
// are meaningless across tables.
type Symtab struct {
	resolve AttrResolver

	mu      sync.RWMutex
	ids     map[symKey]SymID
	entries []symEntry // index = SymID; entries[0] is the NoSym placeholder

	// Known-blocking cache: epoch bumps on every database change
	// (InvalidateKnownBlocking); slots lazily re-resolve on first read in
	// the new epoch. Guarded by its own mutex so the read-mostly static
	// tables above stay contention-free.
	kbMu    sync.Mutex
	kbEpoch uint64
	kb      []kbSlot
}

// NewSymtab returns an empty table whose static attribute bits are computed
// by resolve (nil means all symbols get zero attributes).
func NewSymtab(resolve AttrResolver) *Symtab {
	if resolve == nil {
		resolve = func(string, string) SymAttrs { return 0 }
	}
	return &Symtab{
		resolve: resolve,
		ids:     map[symKey]SymID{},
		entries: make([]symEntry, 1), // reserve NoSym
		kbEpoch: 1,
	}
}

// Intern returns the ID for class.method, assigning the next dense ID (and
// resolving attributes) on first sight. Looking up an existing symbol does
// not allocate.
func (t *Symtab) Intern(class, method string) SymID {
	k := symKey{class, method}
	t.mu.RLock()
	id, ok := t.ids[k]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[k]; ok {
		return id
	}
	id = SymID(len(t.entries))
	t.entries = append(t.entries, symEntry{
		class: class, method: method,
		key:   class + "." + method,
		attrs: t.resolve(class, method),
	})
	t.ids[k] = id
	return id
}

// Lookup returns the ID for class.method without interning, and whether it
// exists.
func (t *Symtab) Lookup(class, method string) (SymID, bool) {
	t.mu.RLock()
	id, ok := t.ids[symKey{class, method}]
	t.mu.RUnlock()
	return id, ok
}

// LookupKey is Lookup for an already-concatenated "class.method" key (the
// string-input boundary: fleet imports, offline tools, tests).
func (t *Symtab) LookupKey(key string) (SymID, bool) {
	cls, m := splitKey(key)
	return t.Lookup(cls, m)
}

// Len returns the number of slots including the NoSym placeholder, i.e. one
// past the highest assigned ID. Dense per-symbol scratch buffers size to it.
func (t *Symtab) Len() int {
	t.mu.RLock()
	n := len(t.entries)
	t.mu.RUnlock()
	return n
}

// Key returns the canonical "class.method" string for id ("" for NoSym or
// out-of-range). The string is built at intern time, so this never
// allocates.
func (t *Symtab) Key(id SymID) string { return t.View().Key(id) }

// Attrs returns id's static attribute bits (zero for NoSym/out-of-range).
func (t *Symtab) Attrs(id SymID) SymAttrs { return t.View().Attrs(id) }

// View returns an immutable snapshot for lock-free ID-indexed reads.
// Symbols interned after the snapshot are out of its range — take a fresh
// View after interning. Entries visible in a View are never mutated, so a
// View is safe to use concurrently with interning.
func (t *Symtab) View() View {
	t.mu.RLock()
	v := View{entries: t.entries}
	t.mu.RUnlock()
	return v
}

// View is a point-in-time, lock-free window onto a Symtab's static tables.
// The zero View is valid and empty.
type View struct {
	entries []symEntry
}

// Len returns one past the highest ID visible in the view.
func (v View) Len() int { return len(v.entries) }

// Key returns the canonical key for id, or "" when id is NoSym or beyond
// the view.
func (v View) Key(id SymID) string {
	if int(id) >= len(v.entries) {
		return ""
	}
	return v.entries[id].key
}

// Class returns the class part for id ("" when out of view).
func (v View) Class(id SymID) string {
	if int(id) >= len(v.entries) {
		return ""
	}
	return v.entries[id].class
}

// Method returns the method part for id ("" when out of view).
func (v View) Method(id SymID) string {
	if int(id) >= len(v.entries) {
		return ""
	}
	return v.entries[id].method
}

// Attrs returns the static attribute bits for id (zero when out of view).
func (v View) Attrs(id SymID) SymAttrs {
	if int(id) >= len(v.entries) {
		return 0
	}
	return v.entries[id].attrs
}

// InvalidateKnownBlocking starts a new known-blocking epoch: every cached
// SymKnownBlocking verdict becomes stale and re-resolves on its next read.
// The table's owner calls this after any database mutation (feedback-loop
// insert, snapshot reset) — an O(1) bump instead of rewriting a bit per
// symbol.
func (t *Symtab) InvalidateKnownBlocking() {
	t.kbMu.Lock()
	t.kbEpoch++
	t.kbMu.Unlock()
}

// KnownBlocking reports whether id's symbol is in the known-blocking
// database, consulting the per-symbol cache and re-resolving through
// resolve (a string-keyed database lookup) only when the cache predates the
// current epoch. resolve must not call back into this Symtab.
func (t *Symtab) KnownBlocking(id SymID, resolve func(key string) bool) bool {
	if id == NoSym {
		return false
	}
	key := t.Key(id)
	if key == "" {
		return false
	}
	t.kbMu.Lock()
	if int(id) >= len(t.kb) {
		grown := make([]kbSlot, t.Len())
		copy(grown, t.kb)
		t.kb = grown
	}
	slot := &t.kb[id]
	if slot.epoch == t.kbEpoch {
		known := slot.known
		t.kbMu.Unlock()
		return known
	}
	epoch := t.kbEpoch
	t.kbMu.Unlock()

	// Resolve outside kbMu: the database lookup takes the owner's lock, and
	// holding both here would order locks against the owner's own
	// mutate-then-invalidate path.
	known := resolve(key)

	t.kbMu.Lock()
	if t.kbEpoch == epoch && int(id) < len(t.kb) {
		t.kb[id] = kbSlot{epoch: epoch, known: known}
	}
	t.kbMu.Unlock()
	return known
}

// splitKey splits "class.method" at the last dot; a dotless key is all
// class.
func splitKey(key string) (class, method string) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '.' {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}
