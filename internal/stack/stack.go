// Package stack models Java-style call stacks of a simulated Android app:
// ordered frames carrying class, method, file, and line. Hang Doctor's
// Diagnoser works entirely from sampled stacks (§3.4.1 of the paper), so the
// model keeps exactly the information a real stack dump provides — enough to
// compute occurrence factors, recognize UI classes by name, and point the
// developer at file:line.
package stack

import (
	"fmt"
	"strings"
)

// Frame is one stack frame. Frames print like Android stack-trace lines:
// "com.example.Cls.method(File.java:42)".
type Frame struct {
	Class  string // fully qualified class, e.g. "org.htmlcleaner.HtmlCleaner"
	Method string // method name, e.g. "clean"
	File   string // source file, e.g. "HtmlCleaner.java"
	Line   int

	// Sym caches the frame's symbol ID in its registry's Symtab; NoSym (0)
	// means unassigned. App.Finalize assigns it when precomputing dispatch
	// stacks, so every sampled stack carries IDs for free and the Diagnoser
	// counts occurrences without touching strings. It is a cache of the
	// (Class, Method) identity only — externally built frames may leave it
	// zero and consumers intern on the fly.
	Sym SymID
}

// String renders the frame in Android stack-trace format.
func (f Frame) String() string {
	return fmt.Sprintf("%s.%s(%s:%d)", f.Class, f.Method, f.File, f.Line)
}

// Key returns a stable identity for occurrence counting: class.method.
// Line numbers are excluded so that multiple samples inside one long method
// aggregate to the same operation.
func (f Frame) Key() string { return f.Class + "." + f.Method }

// Package returns the package portion of the class name ("org.htmlcleaner"
// for "org.htmlcleaner.HtmlCleaner"), or "" if the class has no package.
func (f Frame) Package() string {
	if i := strings.LastIndexByte(f.Class, '.'); i >= 0 {
		return f.Class[:i]
	}
	return ""
}

// Stack is an immutable call stack. Frames[0] is the leaf (innermost) frame;
// the last frame is the outermost caller (the looper dispatch frame in a
// main-thread stack). Stacks are shared between segments and samples, so
// they must never be mutated after construction.
type Stack struct {
	Frames []Frame
}

// New builds a stack from leaf-first frames.
func New(frames ...Frame) *Stack {
	return &Stack{Frames: frames}
}

// Leaf returns the innermost frame, or a zero Frame for an empty stack.
func (s *Stack) Leaf() Frame {
	if s == nil || len(s.Frames) == 0 {
		return Frame{}
	}
	return s.Frames[0]
}

// Depth returns the number of frames; it is 0 for a nil stack.
func (s *Stack) Depth() int {
	if s == nil {
		return 0
	}
	return len(s.Frames)
}

// matchesKey reports whether f's class.method equals key without building
// the concatenation: key must be f.Class, a '.', then f.Method.
func (f *Frame) matchesKey(key string) bool {
	nc, nm := len(f.Class), len(f.Method)
	if len(key) != nc+1+nm || key[nc] != '.' {
		return false
	}
	return key[:nc] == f.Class && key[nc+1:] == f.Method
}

// Contains reports whether any frame has the given key (class.method).
func (s *Stack) Contains(key string) bool {
	if s == nil {
		return false
	}
	for i := range s.Frames {
		if s.Frames[i].matchesKey(key) {
			return true
		}
	}
	return false
}

// CallerOf returns the frame immediately above the first frame matching key,
// and whether such a caller exists.
func (s *Stack) CallerOf(key string) (Frame, bool) {
	if s == nil {
		return Frame{}, false
	}
	for i := range s.Frames {
		if s.Frames[i].matchesKey(key) && i+1 < len(s.Frames) {
			return s.Frames[i+1], true
		}
	}
	return Frame{}, false
}

// Push returns a new stack with frame added as the new leaf. The receiver is
// not modified.
func (s *Stack) Push(frame Frame) *Stack {
	var base []Frame
	if s != nil {
		base = s.Frames
	}
	frames := make([]Frame, 0, len(base)+1)
	frames = append(frames, frame)
	frames = append(frames, base...)
	return &Stack{Frames: frames}
}

// Truncate returns a stack keeping only the n innermost (leaf-side) frames
// — the shape of a partial dump cut off under load, which loses the
// outermost caller frames first. It returns the receiver unchanged when n
// covers the whole stack, and nil for n <= 0.
func (s *Stack) Truncate(n int) *Stack {
	if n <= 0 {
		return nil
	}
	if s == nil || n >= len(s.Frames) {
		return s
	}
	return &Stack{Frames: s.Frames[:n]}
}

// Concat returns a new stack with inner's frames below... is the leaf side;
// specifically the result is inner.Frames followed by s.Frames, i.e. inner
// becomes the innermost portion. Used to nest a blocking API inside library
// wrapper frames and then inside the app handler frames.
func (s *Stack) Concat(inner *Stack) *Stack {
	var a, b []Frame
	if inner != nil {
		a = inner.Frames
	}
	if s != nil {
		b = s.Frames
	}
	frames := make([]Frame, 0, len(a)+len(b))
	frames = append(frames, a...)
	frames = append(frames, b...)
	return &Stack{Frames: frames}
}

// Origin is the causal edge from a unit of work back to the user action
// that transitively spawned it. Input-event dispatches carry an Origin with
// Kind "input"; every task an op posts, submits, or delays inherits the
// spawning dispatch's ActionUID with its own Site and Kind, so a sampled
// worker-thread stack can be attributed to the action whose dispatch is
// waiting on it. Origins are comparable values and precomputed at app
// finalization, so tagging a sample is a plain struct copy.
type Origin struct {
	// ActionUID is the injected UID of the originating user action.
	ActionUID string
	// Site is the class.method of the API that created the causal edge (the
	// spawn site: the submit/post call, or the input handler for dispatches).
	Site string
	// Kind classifies the edge: "input" (direct input-event dispatch),
	// "submit" (worker-pool task), "post" (looper self-post), "delay"
	// (PostDelayed timer hop), or "completion" (result delivered back to the
	// main thread).
	Kind string
}

// IsZero reports whether o carries no provenance (an untagged sample).
func (o Origin) IsZero() bool { return o == Origin{} }

// Tagged pairs a sampled stack with its provenance: which thread family it
// was dumped from and which causal chain it belongs to. The causal trace
// analyzer groups samples by (Worker, Origin) to compute per-chain
// occurrence factors.
type Tagged struct {
	Stack *Stack
	// Origin is the causal edge of the work the thread was executing when
	// sampled; zero for unattributed work.
	Origin Origin
	// Worker marks samples dumped from a background worker thread rather
	// than the main thread.
	Worker bool
}

// String renders the stack one frame per line, leaf first, matching the
// layout of an Android ANR trace.
func (s *Stack) String() string {
	if s == nil || len(s.Frames) == 0 {
		return "<empty stack>"
	}
	var b strings.Builder
	for i, f := range s.Frames {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString("  at ")
		b.WriteString(f.String())
	}
	return b.String()
}
