// Package simclock implements the virtual time base of the simulation: a
// discrete-event clock with an ordered event queue and cancellable timers.
//
// Every component of the simulated device (CPU scheduler, looper, render
// thread, perf sessions, detectors) shares one Clock. Time only advances when
// events run, so an entire 60-day field study executes in milliseconds of
// wall time and is bit-for-bit reproducible.
package simclock

import (
	"container/heap"
	"fmt"
)

// Time is an absolute simulated timestamp in nanoseconds since device boot.
type Time int64

// Duration is a span of simulated time in nanoseconds. It mirrors
// time.Duration's unit so constants read naturally.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
	Day                  = 24 * Hour
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t - u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Milliseconds reports d in milliseconds as a float for display.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Seconds reports d in seconds as a float for display.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats a duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d >= Second || d <= -Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond || d <= -Millisecond:
		return fmt.Sprintf("%.2fms", d.Milliseconds())
	case d >= Microsecond || d <= -Microsecond:
		return fmt.Sprintf("%.1fus", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Event is a scheduled callback. Events fire in (time, scheduling order).
type Event struct {
	at    Time
	seq   uint64
	index int // heap index, -1 once fired or cancelled
	fn    func()
}

// Time returns the moment this event is scheduled to fire.
func (e *Event) Time() Time { return e.at }

// Clock is a discrete-event virtual clock. The zero value is ready to use
// and starts at time 0.
type Clock struct {
	now    Time
	seq    uint64
	events eventHeap
}

// New returns a clock starting at time 0.
func New() *Clock { return &Clock{} }

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// At schedules fn to run at time t. Scheduling in the past (t < Now) panics:
// in a discrete-event simulation that is always a logic bug and silently
// clamping it would hide causality violations. Scheduling at exactly Now is
// allowed and runs after currently queued events at Now.
func (c *Clock) At(t Time, fn func()) *Event {
	if t < c.now {
		panic(fmt.Sprintf("simclock: scheduling event at %d before now %d", t, c.now))
	}
	if fn == nil {
		panic("simclock: nil event function")
	}
	e := &Event{at: t, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.events, e)
	return e
}

// After schedules fn to run d from now. Negative d panics via At.
func (c *Clock) After(d Duration, fn func()) *Event {
	return c.At(c.now.Add(d), fn)
}

// Cancel removes e from the queue. Cancelling an already-fired or
// already-cancelled event is a no-op, so callers can cancel unconditionally
// in cleanup paths.
func (c *Clock) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&c.events, e.index)
	e.index = -1
	e.fn = nil
}

// Len reports the number of pending events.
func (c *Clock) Len() int { return len(c.events) }

// Step fires the earliest pending event, advancing Now to its timestamp.
// It returns false if the queue is empty.
func (c *Clock) Step() bool {
	if len(c.events) == 0 {
		return false
	}
	e := heap.Pop(&c.events).(*Event)
	e.index = -1
	c.now = e.at
	fn := e.fn
	e.fn = nil
	fn()
	return true
}

// RunUntil fires events until the queue is empty or the next event is after
// t, then advances Now to exactly t. Events scheduled at t itself do run.
func (c *Clock) RunUntil(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: RunUntil target %d before now %d", t, c.now))
	}
	for len(c.events) > 0 && c.events[0].at <= t {
		c.Step()
	}
	c.now = t
}

// RunUntilIdle fires events until the queue is empty. maxEvents bounds the
// number of events processed to catch runaway self-rescheduling loops; it
// returns the number of events fired and whether the queue drained.
func (c *Clock) RunUntilIdle(maxEvents int) (fired int, drained bool) {
	for fired < maxEvents {
		if !c.Step() {
			return fired, true
		}
		fired++
	}
	return fired, c.Len() == 0
}

// eventHeap orders events by (time, seq) so simultaneous events fire in
// scheduling order, which keeps the simulation deterministic.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
