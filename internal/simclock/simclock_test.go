package simclock

import (
	"testing"
	"testing/quick"

	"hangdoctor/internal/simrand"
)

func TestOrdering(t *testing.T) {
	c := New()
	var order []int
	c.At(30, func() { order = append(order, 3) })
	c.At(10, func() { order = append(order, 1) })
	c.At(20, func() { order = append(order, 2) })
	if _, drained := c.RunUntilIdle(100); !drained {
		t.Fatal("queue not drained")
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if c.Now() != 30 {
		t.Fatalf("Now = %d, want 30", c.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(100, func() { order = append(order, i) })
	}
	c.RunUntilIdle(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	c := New()
	fired := false
	e := c.At(10, func() { fired = true })
	c.Cancel(e)
	c.RunUntilIdle(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel and nil cancel are no-ops.
	c.Cancel(e)
	c.Cancel(nil)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	c := New()
	var fired []int
	var events []*Event
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, c.At(Time(i*10), func() { fired = append(fired, i) }))
	}
	// Cancel every odd event.
	for i := 1; i < 20; i += 2 {
		c.Cancel(events[i])
	}
	c.RunUntilIdle(100)
	if len(fired) != 10 {
		t.Fatalf("fired %d events, want 10: %v", len(fired), fired)
	}
	for idx, v := range fired {
		if v != idx*2 {
			t.Fatalf("wrong events fired: %v", fired)
		}
	}
}

func TestAfter(t *testing.T) {
	c := New()
	c.At(5, func() {
		c.After(10, func() {
			if c.Now() != 15 {
				t.Fatalf("After fired at %d, want 15", c.Now())
			}
		})
	})
	c.RunUntilIdle(10)
}

func TestSchedulingInPastPanics(t *testing.T) {
	c := New()
	c.At(100, func() {})
	c.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	c.At(50, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil fn")
		}
	}()
	New().At(1, nil)
}

func TestRunUntil(t *testing.T) {
	c := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		c.At(at, func() { fired = append(fired, at) })
	}
	c.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20", fired)
	}
	if c.Now() != 25 {
		t.Fatalf("Now = %d, want 25", c.Now())
	}
	c.RunUntil(40) // inclusive boundary
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all four", fired)
	}
}

func TestRunUntilIdleBound(t *testing.T) {
	c := New()
	var reschedule func()
	n := 0
	reschedule = func() {
		n++
		c.After(1, reschedule)
	}
	c.At(0, reschedule)
	fired, drained := c.RunUntilIdle(50)
	if drained {
		t.Fatal("self-rescheduling loop reported drained")
	}
	if fired != 50 {
		t.Fatalf("fired = %d, want 50", fired)
	}
}

func TestEventTimeAccessor(t *testing.T) {
	c := New()
	e := c.At(77, func() {})
	if e.Time() != 77 {
		t.Fatalf("Time() = %d, want 77", e.Time())
	}
}

// TestHeapPropertyRandomized checks, with random schedules and cancellations,
// that surviving events always fire in nondecreasing time order.
func TestHeapPropertyRandomized(t *testing.T) {
	rng := simrand.New(99)
	f := func(seed uint16) bool {
		r := rng.Derive(string(rune(seed)))
		c := New()
		var events []*Event
		var firedTimes []Time
		n := 5 + r.Intn(50)
		for i := 0; i < n; i++ {
			at := Time(r.Int63n(1000))
			events = append(events, c.At(at, func() { firedTimes = append(firedTimes, c.Now()) }))
		}
		// Randomly cancel about a third.
		for _, e := range events {
			if r.Bool(0.33) {
				c.Cancel(e)
			}
		}
		c.RunUntilIdle(10000)
		for i := 1; i < len(firedTimes); i++ {
			if firedTimes[i] < firedTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{1500 * Millisecond, "1.500s"},
		{250 * Millisecond, "250.00ms"},
		{42 * Microsecond, "42.0us"},
		{17, "17ns"},
	}
	for _, tc := range cases {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tc.d), got, tc.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	var base Time = 1000
	if base.Add(500) != 1500 {
		t.Fatal("Add failed")
	}
	if Time(1500).Sub(base) != 500 {
		t.Fatal("Sub failed")
	}
}
