// Package trace records the simulation's execution as spans — per-thread
// on-CPU intervals from the scheduler, message dispatches from the looper,
// and user actions from the app session — and exports them in the Chrome
// trace-event JSON format (load in chrome://tracing or Perfetto). It is the
// systrace equivalent for the simulated device: the tool you reach for when
// a soft hang diagnosis looks surprising and you want to see exactly what
// every thread was doing.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/android/looper"
	"hangdoctor/internal/cpu"
	"hangdoctor/internal/simclock"
)

// Span is one closed interval of activity.
type Span struct {
	Name     string
	Category string // "sched", "dispatch", "action"
	ThreadID int
	Thread   string
	Start    simclock.Time
	End      simclock.Time
	// Args carries span metadata (core, desched reason, response time...).
	Args map[string]string
}

// Dur returns the span length.
func (s Span) Dur() simclock.Duration { return s.End.Sub(s.Start) }

// Collector accumulates spans. Attach it to a scheduler with
// cpu.Scheduler.SetTracer, to a looper with AddDispatchHook, and to an app
// session with AddListener — any subset works.
type Collector struct {
	clk *simclock.Clock

	spans []Span
	// open on-CPU span per thread ID.
	running map[int]openSpan
}

type openSpan struct {
	start simclock.Time
	core  int
}

// NewCollector builds a collector over the shared clock.
func NewCollector(clk *simclock.Clock) *Collector {
	return &Collector{clk: clk, running: map[int]openSpan{}}
}

// ThreadScheduled implements cpu.ExecTracer.
func (c *Collector) ThreadScheduled(t *cpu.Thread, coreID int, at simclock.Time) {
	c.running[t.ID] = openSpan{start: at, core: coreID}
}

// ThreadDescheduled implements cpu.ExecTracer.
func (c *Collector) ThreadDescheduled(t *cpu.Thread, at simclock.Time, reason cpu.DeschedReason) {
	open, ok := c.running[t.ID]
	if !ok {
		return
	}
	delete(c.running, t.ID)
	if at <= open.start {
		return // zero-length occupancy (pure Call chains); nothing to plot
	}
	c.spans = append(c.spans, Span{
		Name:     t.Name,
		Category: "sched",
		ThreadID: t.ID,
		Thread:   t.Name,
		Start:    open.start,
		End:      at,
		Args: map[string]string{
			"core":   fmt.Sprintf("%d", open.core),
			"reason": string(reason),
		},
	})
}

// DispatchStart implements looper.DispatchHook.
func (c *Collector) DispatchStart(m *looper.Message, at simclock.Time) {}

// DispatchEnd implements looper.DispatchHook: one span per message.
func (c *Collector) DispatchEnd(m *looper.Message, start, end simclock.Time) {
	c.spans = append(c.spans, Span{
		Name:     m.Name,
		Category: "dispatch",
		ThreadID: -1,
		Thread:   "looper",
		Start:    start,
		End:      end,
	})
}

// ActionStart implements app.Listener.
func (c *Collector) ActionStart(e *app.ActionExec) {}

// EventStart implements app.Listener.
func (c *Collector) EventStart(e *app.ActionExec, ev *app.EventExec) {}

// EventEnd implements app.Listener.
func (c *Collector) EventEnd(e *app.ActionExec, ev *app.EventExec) {}

// ActionEnd implements app.Listener: one span per user action.
func (c *Collector) ActionEnd(e *app.ActionExec) {
	c.spans = append(c.spans, Span{
		Name:     e.Action.UID,
		Category: "action",
		ThreadID: -2,
		Thread:   "actions",
		Start:    e.Start,
		End:      e.End,
		Args: map[string]string{
			"response": e.ResponseTime().String(),
			"seq":      fmt.Sprintf("%d", e.Seq),
		},
	})
}

// Spans returns everything recorded so far, ordered by start time.
func (c *Collector) Spans() []Span {
	out := append([]Span(nil), c.spans...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ThreadID < out[j].ThreadID
	})
	return out
}

// OnCPUTime sums the on-CPU span time of one thread ID, a cross-check
// against the scheduler's task clock.
func (c *Collector) OnCPUTime(threadID int) simclock.Duration {
	var total simclock.Duration
	for _, s := range c.spans {
		if s.Category == "sched" && s.ThreadID == threadID {
			total += s.Dur()
		}
	}
	return total
}

// chromeEvent is the Chrome trace-event wire format ("X" complete events,
// timestamps and durations in microseconds).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace serializes all spans as a Chrome trace JSON document.
// Scheduler spans land on their thread rows; dispatch and action spans get
// dedicated rows below them.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, len(c.spans))
	for _, s := range c.Spans() {
		tid := s.ThreadID
		switch s.Category {
		case "dispatch":
			tid = 1000
		case "action":
			tid = 1001
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  s.Category,
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.Dur()) / 1e3,
			PID:  1,
			TID:  tid,
			Args: s.Args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events})
}
