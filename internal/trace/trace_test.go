package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/simclock"
)

// tracedSession wires a collector into a fresh K9-Mail session.
func tracedSession(t *testing.T) (*Collector, *app.Session, *app.App) {
	t.Helper()
	c := corpus.Build()
	a := c.MustApp("K9-Mail")
	s, err := app.NewSession(a, app.LGV10(), 42)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(s.Clk)
	s.Sched.SetTracer(col)
	s.Looper.AddDispatchHook(col)
	s.AddListener(col)
	return col, s, a
}

func TestSpansCoverExecution(t *testing.T) {
	col, s, a := tracedSession(t)
	for i := 0; i < 5; i++ {
		s.Perform(a.MustAction("Inbox"))
		s.Idle(simclock.Second)
	}
	spans := col.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	cats := map[string]int{}
	for _, sp := range spans {
		cats[sp.Category]++
		if sp.End < sp.Start {
			t.Fatalf("negative span: %+v", sp)
		}
	}
	if cats["sched"] == 0 || cats["dispatch"] == 0 || cats["action"] == 0 {
		t.Fatalf("span categories missing: %v", cats)
	}
	if cats["action"] != 5 || cats["dispatch"] != 5 {
		t.Fatalf("expected 5 action and 5 dispatch spans: %v", cats)
	}
}

func TestOnCPUTimeMatchesTaskClock(t *testing.T) {
	col, s, a := tracedSession(t)
	for i := 0; i < 4; i++ {
		s.Perform(a.MustAction("Open Email"))
		s.Idle(simclock.Second)
	}
	main := s.MainThread()
	got := col.OnCPUTime(main.ID)
	want := simclock.Duration(main.Counters().TaskClock)
	// On-CPU occupancy includes zero-cost scheduling overheadless gaps; the
	// two accountings must agree exactly in this simulator.
	if got != want {
		t.Fatalf("traced on-CPU %v != task clock %v", got, want)
	}
}

func TestSchedSpansDoNotOverlapPerThread(t *testing.T) {
	col, s, a := tracedSession(t)
	for i := 0; i < 6; i++ {
		s.Perform(a.MustAction("Folders"))
		s.Idle(500 * simclock.Millisecond)
	}
	last := map[int]simclock.Time{}
	for _, sp := range col.Spans() {
		if sp.Category != "sched" {
			continue
		}
		if sp.Start < last[sp.ThreadID] {
			t.Fatalf("overlapping spans on thread %d at %v", sp.ThreadID, sp.Start)
		}
		last[sp.ThreadID] = sp.End
	}
}

func TestChromeTraceExport(t *testing.T) {
	col, s, a := tracedSession(t)
	s.Perform(a.MustAction("Inbox"))
	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	sawAction := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Dur < 0 {
			t.Fatalf("bad event: %+v", ev)
		}
		if ev.TID == 1001 {
			sawAction = true
		}
	}
	if !sawAction {
		t.Fatal("action row missing from Chrome trace")
	}
}

func TestDeschedReasonsRecorded(t *testing.T) {
	col, s, a := tracedSession(t)
	s.Perform(a.MustAction("Open Email")) // blocks + parks + preemption
	reasons := map[string]bool{}
	for _, sp := range col.Spans() {
		if sp.Category == "sched" {
			reasons[sp.Args["reason"]] = true
		}
	}
	for _, want := range []string{"parked", "blocked"} {
		if !reasons[want] {
			t.Errorf("reason %q never recorded: %v", want, reasons)
		}
	}
}
