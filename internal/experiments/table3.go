package experiments

import (
	"fmt"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/simrand"
	"hangdoctor/internal/stats"
)

// appDevice is the evaluation device (the paper's LG V10).
func appDevice() app.Device { return app.LGV10() }

// Table3 reproduces the paper's Table 3: the top-10 Pearson-correlated
// performance events for soft-hang-bug diagnosis, (a) on main-minus-render
// differences and (b) on main-thread-only counters.
type Table3 struct {
	Table    TextTable
	DiffRank []stats.Ranked
	MainRank []stats.Ranked
	// SpearmanRank is the §3.3.1 future-work check: rank (monotone,
	// non-linear) correlation on the same difference samples.
	SpearmanRank []stats.Ranked
	DiffTop10    float64 // average coefficient of the diff top-10
	MainTop10    float64
	Samples      *SampleSet
	SampleCount  int
}

// Name implements Result.
func (t *Table3) Name() string { return "table3" }

// Render implements Result.
func (t *Table3) Render() string { return t.Table.Render() }

// RunTable3 collects training samples and ranks all 46 events both ways.
func RunTable3(ctx *Context) (*Table3, error) {
	set, err := CollectSamples(ctx.Corpus, ctx.Training, ctx.Scale.SamplesPerItem, ctx.Seed, ctx.Workers())
	if err != nil {
		return nil, err
	}
	out := &Table3{
		Samples:      set,
		SampleCount:  set.Len(),
		DiffRank:     stats.RankByCorrelation(set.Diff, set.Labels),
		MainRank:     stats.RankByCorrelation(set.MainOnly, set.Labels),
		SpearmanRank: stats.RankBySpearman(set.Diff, set.Labels),
		Table: TextTable{
			Title:  "Table 3: top-10 correlated events (a) main-render diff vs (b) main only",
			Header: []string{"#", "(a) event", "(a) corr", "(b) event", "(b) corr"},
		},
	}
	for i := 0; i < 10; i++ {
		out.DiffTop10 += out.DiffRank[i].Coeff / 10
		out.MainTop10 += out.MainRank[i].Coeff / 10
		out.Table.Add(itoa(i+1),
			out.DiffRank[i].Name, f3(out.DiffRank[i].Coeff),
			out.MainRank[i].Name, f3(out.MainRank[i].Coeff))
	}
	out.Table.Add("avg", "", f3(out.DiffTop10), "", f3(out.MainTop10))
	out.Table.Notes = append(out.Table.Notes,
		fmt.Sprintf("%d samples; paper: diff avg 0.545 vs main-only 0.472, context-switches ranked first in diff mode", set.Len()),
		fmt.Sprintf("future-work check (§3.3.1, non-linear correlation): Spearman diff top-3 = %s (%.3f), %s (%.3f), %s (%.3f) — same family as Pearson's",
			out.SpearmanRank[0].Name, out.SpearmanRank[0].Coeff,
			out.SpearmanRank[1].Name, out.SpearmanRank[1].Coeff,
			out.SpearmanRank[2].Name, out.SpearmanRank[2].Coeff))
	return out, nil
}

// Table4 reproduces the paper's Table 4: the sensitivity of the correlation
// ranking to the training set (75% and 50% subsamples keep the same
// top-correlated events).
type Table4 struct {
	Table    TextTable
	Full     []stats.Ranked
	Sub75    []stats.Ranked
	Sub50    []stats.Ranked
	Overlap5 [2]int // top-5 overlap of 75% and 50% vs full
}

// Name implements Result.
func (t *Table4) Name() string { return "table4" }

// Render implements Result.
func (t *Table4) Render() string { return t.Table.Render() }

// RunTable4 reruns the Table-3 diff-mode analysis on subsampled training
// sets.
func RunTable4(ctx *Context) (*Table4, error) {
	t3, err := RunTable3(ctx)
	if err != nil {
		return nil, err
	}
	rng := simrand.New(ctx.Seed).Derive("table4")
	out := &Table4{
		Full:  t3.DiffRank,
		Sub75: stats.Subsample(t3.Samples.Diff, t3.Samples.Labels, 0.75, rng),
		Sub50: stats.Subsample(t3.Samples.Diff, t3.Samples.Labels, 0.50, rng),
		Table: TextTable{
			Title:  "Table 4: sensitivity of the correlation analysis to the training set",
			Header: []string{"#", "full", "75% set", "50% set"},
		},
	}
	out.Overlap5[0] = stats.OverlapCount(out.Full, out.Sub75, 5)
	out.Overlap5[1] = stats.OverlapCount(out.Full, out.Sub50, 5)
	for i := 0; i < 10; i++ {
		out.Table.Add(itoa(i+1),
			fmt.Sprintf("%s (%.3f)", out.Full[i].Name, out.Full[i].Coeff),
			fmt.Sprintf("%s (%.3f)", out.Sub75[i].Name, out.Sub75[i].Coeff),
			fmt.Sprintf("%s (%.3f)", out.Sub50[i].Name, out.Sub50[i].Coeff))
	}
	out.Table.Notes = append(out.Table.Notes,
		fmt.Sprintf("top-5 overlap with full set: 75%%=%d/5, 50%%=%d/5 (paper: top-5 identical across sets)",
			out.Overlap5[0], out.Overlap5[1]))
	return out, nil
}

// Fig4 reproduces the paper's Figure 4: the sorted per-sample differences
// of the three chosen events with the thresholds the design procedure
// derives, showing how they split soft hang bugs (HB) from UI operations.
type Fig4 struct {
	Text      string
	Selection stats.Selection
	// ShareHBAbove / ShareUIBelow per condition: the "90% of bugs above,
	// 90% of UI below" split the paper quotes.
	Split map[string][2]float64
}

// Name implements Result.
func (f *Fig4) Name() string { return "fig4" }

// Render implements Result.
func (f *Fig4) Render() string { return f.Text }

// RunFig4 renders the class separation of the paper's three filter events
// on the training samples (the three panels of Figure 4) and re-derives a
// filter with the §3.3.1 greedy procedure on the same data.
func RunFig4(ctx *Context) (*Fig4, error) {
	t3, err := RunTable3(ctx)
	if err != nil {
		return nil, err
	}
	set := t3.Samples
	sel := stats.GreedySelect(t3.DiffRank, set.Diff, set.Labels, 3)
	out := &Fig4{Selection: sel, Split: map[string][2]float64{}}

	split := func(name string, thr float64) (shareHB, shareUI float64) {
		vec := set.Diff[name]
		var hbAbove, hbTotal, uiBelow, uiTotal int
		for i, v := range vec {
			if set.Labels[i] == 1 {
				hbTotal++
				if v > thr {
					hbAbove++
				}
			} else {
				uiTotal++
				if v <= thr {
					uiBelow++
				}
			}
		}
		return float64(hbAbove) / float64(hbTotal), float64(uiBelow) / float64(uiTotal)
	}

	text := "== Figure 4: soft hang filter design (sorted HB vs UI-API differences) ==\n"
	text += "paper's three filter conditions on our training samples:\n"
	paperConds := []struct {
		name string
		thr  float64
	}{
		{"context-switches", 0},
		{"task-clock", 1.7e8},
		{"page-faults", 500},
	}
	for _, pc := range paperConds {
		hb, ui := split(pc.name, pc.thr)
		out.Split[pc.name] = [2]float64{hb, ui}
		text += fmt.Sprintf("  %-20s > %-8.3g: %.0f%% of HB samples above, %.0f%% of UI samples below\n",
			pc.name, pc.thr, 100*hb, 100*ui)
	}
	text += "filter re-derived by the greedy design procedure on this training set:\n"
	for _, cond := range sel.Conditions {
		hb, ui := split(cond.Name, cond.Threshold)
		text += fmt.Sprintf("  %-20s > %-8.3g: %.0f%% of HB above, %.0f%% of UI below\n",
			cond.Name, cond.Threshold, 100*hb, 100*ui)
	}
	text += fmt.Sprintf("filter on training set: TP=%d FN=%d FP=%d TN=%d (FP pruned %.0f%%, accuracy %.0f%%)\n",
		sel.TruePositives, sel.FalseNegatives, sel.FalsePositives, sel.TrueNegatives,
		100*float64(sel.TrueNegatives)/float64(sel.TrueNegatives+sel.FalsePositives),
		100*float64(sel.TruePositives+sel.TrueNegatives)/float64(len(set.Labels)))
	text += "paper: ctx-switch>0, task-clock>1.7e8, page-faults>500; 100% of bugs kept, 64% of FPs pruned (81% accuracy)\n"
	out.Text = text
	return out, nil
}
