package experiments

import (
	"fmt"
	"sort"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/core"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/experiments/pool"
)

// newHarnessOn runs one app's standard trace on a specific device model.
func newHarnessOn(ctx *Context, a *app.App, dev app.Device, seedOffset uint64, d detect.Detector) (*detect.Harness, error) {
	h, err := detect.NewHarness(a, dev, ctx.Seed+seedOffset, d)
	if err != nil {
		return nil, err
	}
	h.Run(corpus.Trace(a, ctx.Seed+seedOffset, ctx.Scale.TracePerApp), ctx.Scale.Think)
	return h, nil
}

// DeviceGenerality tests the paper's §3.3.1 claim that the filter's events
// and thresholds, designed on the LG V10, "are generally good also for
// other platforms": the same Hang Doctor configuration runs on all three
// devices the paper verified (LG V10, Nexus 5, Galaxy S3) and must find the
// same validation bugs.
type DeviceGenerality struct {
	Table TextTable
	// FoundPerDevice maps device name -> set of validation bug IDs found.
	FoundPerDevice map[string]map[string]bool
	// CommonBugs is the count found on every device.
	CommonBugs int
	// UnionBugs is the count found on at least one device.
	UnionBugs int
}

// Name implements Result.
func (d *DeviceGenerality) Name() string { return "devices" }

// Render implements Result.
func (d *DeviceGenerality) Render() string { return d.Table.Render() }

// deviceRoster are the three phones of the paper's generality check.
func deviceRoster() []app.Device {
	return []app.Device{app.LGV10(), app.Nexus5(), app.GalaxyS3()}
}

// RunDeviceGenerality runs the unmodified default filter on each device
// over the validation apps.
func RunDeviceGenerality(ctx *Context) (*DeviceGenerality, error) {
	out := &DeviceGenerality{
		FoundPerDevice: map[string]map[string]bool{},
		Table: TextTable{
			Title:  "Filter generality across devices (unchanged thresholds, validation bugs found)",
			Header: []string{"Device", "Cores", "PMU regs", "Bugs found", "of"},
		},
	}
	// Validation apps = apps owning offline-missed bugs, in sorted order:
	// per-app seeds derive from the position in this list, so the order
	// must be fixed (ranging over the set here used to make the run
	// nondeterministic).
	appSet := map[string]bool{}
	totalBugs := 0
	for _, b := range ctx.Corpus.Table5Bugs() {
		if ctx.BaselineMissedOffline[b.ID] {
			appSet[b.App.Name] = true
			totalBugs++
		}
	}
	appNames := make([]string, 0, len(appSet))
	for name := range appSet {
		appNames = append(appNames, name)
	}
	sort.Strings(appNames)
	devices := deviceRoster()
	// One unit per (device, app) pair; each returns the validation bugs
	// found, merged below per device in roster × sorted-app order.
	nApps := len(appNames)
	units, err := pool.Map(ctx.Workers(), len(devices)*nApps, func(k int) (map[string]bool, error) {
		dev := devices[k/nApps]
		i := k % nApps
		a := ctx.Corpus.MustApp(appNames[i])
		d := core.New(core.Config{})
		// Same per-app trace and seed on every device: only the device
		// model differs.
		if _, err := newHarnessOn(ctx, a, dev, uint64(5000+(i+1)*7), d); err != nil {
			return nil, err
		}
		found := map[string]bool{}
		for id := range matchDetections(a, d.Detections()) {
			if ctx.BaselineMissedOffline[id] {
				found[id] = true
			}
		}
		return found, nil
	})
	if err != nil {
		return nil, err
	}
	union := map[string]bool{}
	var intersection map[string]bool
	for di, dev := range devices {
		found := map[string]bool{}
		for i := 0; i < nApps; i++ {
			for id := range units[di*nApps+i] {
				found[id] = true
			}
		}
		out.FoundPerDevice[dev.Name] = found
		for id := range found {
			union[id] = true
		}
		if intersection == nil {
			intersection = map[string]bool{}
			for id := range found {
				intersection[id] = true
			}
		} else {
			for id := range intersection {
				if !found[id] {
					delete(intersection, id)
				}
			}
		}
		out.Table.Add(dev.Name, itoa(dev.Cores), itoa(dev.Registers),
			itoa(len(found)), itoa(totalBugs))
	}
	out.CommonBugs = len(intersection)
	out.UnionBugs = len(union)
	out.Table.Notes = append(out.Table.Notes,
		fmt.Sprintf("found on every device: %d; on at least one: %d of %d", out.CommonBugs, out.UnionBugs, totalBugs),
		"paper §3.3.1: the selected thresholds and events are generally good also for other platforms")
	return out, nil
}
