package experiments

import (
	"fmt"
	"sort"

	"hangdoctor/internal/core"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/simclock"
)

// Testbed reproduces the paper's §4.6 discussion of the alternative
// deployment: running Hang Doctor on an in-lab test bed with automated
// (Monkey-style) inputs instead of in the wild. The test bed removes the
// overhead concern — it can even run the Diagnoser on every hang — but it
// cannot recreate the environment that makes many bugs manifest (large
// mailboxes, cold caches, heavy content), so bugs are missed that the
// in-the-wild deployment catches.
type Testbed struct {
	Table TextTable
	// WildFound / LabFound are distinct-bug counts per app.
	WildFound, LabFound map[string]int
	// TotalWild / TotalLab are the bottom lines.
	TotalWild, TotalLab int
	// LabOnlyOverheadPct is the phase-2-only overhead the test bed can
	// afford (externally powered; §4.6).
	LabOverheadPct, WildOverheadPct float64
}

// Name implements Result.
func (t *Testbed) Name() string { return "testbed" }

// Render implements Result.
func (t *Testbed) Render() string { return t.Table.Render() }

// labRichness is how much of the real-world bug-triggering state an
// automated test bed reproduces.
const labRichness = 0.15

// RunTestbed compares in-the-wild and test-bed deployments over the
// Table-5 apps.
func RunTestbed(ctx *Context) (*Testbed, error) {
	out := &Testbed{
		WildFound: map[string]int{},
		LabFound:  map[string]int{},
		Table: TextTable{
			Title:  "Test bed vs in-the-wild deployment (distinct bugs found per app)",
			Header: []string{"App", "Seeded", "Wild (HD)", "Test bed (Monkey)"},
		},
	}
	var names []string
	for _, a := range ctx.Corpus.Table5 {
		names = append(names, a.Name)
	}
	sort.Strings(names)

	var wildCost, labCost float64
	for i, name := range names {
		a := ctx.Corpus.MustApp(name)

		// In the wild: weighted user trace, full environment, two-phase HD.
		dWild := core.New(core.Config{})
		hWild, err := detect.NewHarness(a, appDevice(), ctx.Seed+uint64(2000+i), dWild)
		if err != nil {
			return nil, err
		}
		hWild.Run(corpus.Trace(a, ctx.Seed+uint64(2000+i), ctx.Scale.TracePerApp), ctx.Scale.Think)
		wild := len(matchDetections(a, dWild.Detections()))
		wildCost += hWild.Overhead(dWild).Avg()

		// Test bed: Monkey inputs, impoverished environment, phase-2-only
		// (overhead is no concern on external power, §4.6).
		labDev := appDevice()
		labDev.EnvRichness = labRichness
		dLab := core.New(core.Config{Phase2Only: true})
		hLab, err := detect.NewHarness(a, labDev, ctx.Seed+uint64(3000+i), dLab)
		if err != nil {
			return nil, err
		}
		// An in-lab campaign is hours, not a 60-day deployment: a third of
		// the wild trace length.
		hLab.Run(corpus.MonkeyTrace(a, ctx.Seed+uint64(3000+i), ctx.Scale.TracePerApp/3),
			200*simclock.Millisecond) // monkeys don't think
		lab := len(matchDetections(a, dLab.Detections()))
		labCost += hLab.Overhead(dLab).Avg()

		out.WildFound[name] = wild
		out.LabFound[name] = lab
		out.TotalWild += wild
		out.TotalLab += lab
		out.Table.Add(name, itoa(len(a.Bugs)), itoa(wild), itoa(lab))
	}
	out.WildOverheadPct = wildCost / float64(len(names))
	out.LabOverheadPct = labCost / float64(len(names))
	out.Table.Add("TOTAL", itoa(len(ctx.Corpus.Table5Bugs())), itoa(out.TotalWild), itoa(out.TotalLab))
	out.Table.Notes = append(out.Table.Notes,
		fmt.Sprintf("test bed runs Monkey inputs on a %.0f%%-richness environment with phase-2-only HD (overhead %.2f%% vs %.2f%% in the wild)",
			100*labRichness, out.LabOverheadPct, out.WildOverheadPct),
		"paper §4.6: test beds cannot completely recreate the real environment, so soft hang bugs are still missed and Hang Doctor must run in the wild")
	return out, nil
}
