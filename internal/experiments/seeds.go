package experiments

import (
	"fmt"

	"hangdoctor/internal/core"
	"hangdoctor/internal/experiments/pool"
)

// SeedStat aggregates one metric across seeds.
type SeedStat struct {
	Mean, Min, Max float64
}

func newSeedStat(vals []float64) SeedStat {
	s := SeedStat{Min: vals[0], Max: vals[0]}
	for _, v := range vals {
		s.Mean += v / float64(len(vals))
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	return s
}

// SeedRobustness re-runs the core detection metrics across independent
// seeds: every randomized ingredient (jitter, manifestation, interference,
// measurement noise) is redrawn, so the spread bounds how much of the
// headline results is luck. The paper's equivalent is 20 users with 20
// different usage histories all confirming the same bugs.
type SeedRobustness struct {
	Table TextTable
	// Recall/FPShare stats for Hang Doctor across seeds (aggregated over
	// the probe apps).
	Recall  SeedStat
	FPShare SeedStat
	// BugsFound per seed (distinct across the probe apps).
	BugsFound SeedStat
	Seeds     int
}

// Name implements Result.
func (s *SeedRobustness) Name() string { return "seeds" }

// Render implements Result.
func (s *SeedRobustness) Render() string { return s.Table.Render() }

// seedProbeApps cover the three hardest signature families.
var seedProbeApps = []string{"K9-Mail", "Omni-Notes", "CycleStreets"}

// RunSeedRobustness runs Hang Doctor under six distinct seeds.
func RunSeedRobustness(ctx *Context) (*SeedRobustness, error) {
	const nSeeds = 6
	out := &SeedRobustness{
		Seeds: nSeeds,
		Table: TextTable{
			Title:  "Seed robustness: Hang Doctor across independent random worlds",
			Header: []string{"Seed", "recall", "FP/UI-hangs", "distinct bugs"},
		},
	}
	// Flatten the sweep to one unit per (seed, probe app): each unit's
	// harness is seeded by its own offset, so units are independent and the
	// per-seed aggregation below runs over units in serial order.
	type seedUnit struct {
		tp, fn, fp, uiHangs int
		bugs                map[string]bool
	}
	nApps := len(seedProbeApps)
	units, err := pool.Map(ctx.Workers(), nSeeds*nApps, func(u int) (seedUnit, error) {
		s, i := u/nApps, u%nApps
		a := ctx.Corpus.MustApp(seedProbeApps[i])
		d := core.New(core.Config{})
		h, err := newHarnessOn(ctx, a, appDevice(), uint64(7000+s*97+i), d)
		if err != nil {
			return seedUnit{}, err
		}
		ev := h.Evaluate(d)
		bugs := map[string]bool{}
		for id := range matchDetections(a, d.Detections()) {
			bugs[id] = true
		}
		return seedUnit{tp: ev.TP, fn: ev.FN, fp: ev.FP, uiHangs: ev.UIHangs, bugs: bugs}, nil
	})
	if err != nil {
		return nil, err
	}
	var recalls, fpShares, bugCounts []float64
	for s := 0; s < nSeeds; s++ {
		var tp, fn, fp, uiHangs int
		bugs := map[string]bool{}
		for i := 0; i < nApps; i++ {
			u := units[s*nApps+i]
			tp += u.tp
			fn += u.fn
			fp += u.fp
			uiHangs += u.uiHangs
			for id := range u.bugs {
				bugs[id] = true
			}
		}
		recall := 0.0
		if tp+fn > 0 {
			recall = float64(tp) / float64(tp+fn)
		}
		fpShare := 0.0
		if uiHangs > 0 {
			fpShare = float64(fp) / float64(uiHangs)
		}
		recalls = append(recalls, recall)
		fpShares = append(fpShares, fpShare)
		bugCounts = append(bugCounts, float64(len(bugs)))
		out.Table.Add(itoa(s), f2(recall), f2(fpShare), itoa(len(bugs)))
	}
	out.Recall = newSeedStat(recalls)
	out.FPShare = newSeedStat(fpShares)
	out.BugsFound = newSeedStat(bugCounts)
	out.Table.Add("mean", f2(out.Recall.Mean), f2(out.FPShare.Mean), f1(out.BugsFound.Mean))
	out.Table.Notes = append(out.Table.Notes,
		fmt.Sprintf("recall range [%.2f, %.2f]; FP share range [%.2f, %.2f]; bugs found range [%.0f, %.0f] of %d seeded",
			out.Recall.Min, out.Recall.Max, out.FPShare.Min, out.FPShare.Max,
			out.BugsFound.Min, out.BugsFound.Max, probeBugCount(ctx)))
	return out, nil
}

func probeBugCount(ctx *Context) int {
	n := 0
	for _, name := range seedProbeApps {
		n += len(ctx.Corpus.MustApp(name).Bugs)
	}
	return n
}
