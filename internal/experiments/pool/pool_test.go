package pool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8, 100} {
		got, err := Map(workers, 57, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 57 {
			t.Fatalf("workers=%d: got %d results, want 57", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map[int](4, 0, func(i int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("Map(4, 0) = %v, %v; want nil, nil", got, err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(workers, 64, func(i int) (struct{}, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent units, want <= %d", p, workers)
	}
}

func TestMapSerialRunsInline(t *testing.T) {
	// workers==1 must execute strictly in order on the calling goroutine.
	var seen []int
	_, err := Map(1, 10, func(i int) (int, error) {
		seen = append(seen, i) // no locking: only safe if truly serial
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("serial order broken: seen=%v", seen)
		}
	}
}

func TestMapReturnsSmallestIndexError(t *testing.T) {
	// Indexes 3 and 7 fail; the reported error must be index 3's when the
	// run is serial, and the smallest *observed* failing index otherwise.
	fail := func(i int) (int, error) {
		if i == 3 || i == 7 {
			return 0, fmt.Errorf("unit %d failed", i)
		}
		return i, nil
	}
	if _, err := Map(1, 10, fail); err == nil || err.Error() != "unit 3 failed" {
		t.Fatalf("serial error = %v, want unit 3's", err)
	}
	if _, err := Map(4, 10, fail); err == nil {
		t.Fatal("parallel run reported no error")
	}
}

func TestMapSkipsAfterFailure(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	_, err := Map(2, 1000, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("all %d units ran despite early failure", n)
	}
}

func TestMapConcurrentWrites(t *testing.T) {
	// Exercised under -race in CI: concurrent indexed writes to the shared
	// result slice plus the shared map below must be race-free.
	var mu sync.Mutex
	seen := map[int]bool{}
	got, err := Map(8, 200, func(i int) (int, error) {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 200 || len(got) != 200 {
		t.Fatalf("ran %d units, merged %d results, want 200/200", len(seen), len(got))
	}
}
