// Package pool is the bounded worker pool behind the parallel experiment
// engine. Sweep-style experiments fan per-app (or per-item) work units out
// across a fixed number of goroutines and merge the results back in unit
// order, so rendered artifacts are byte-identical to a serial run: every
// unit derives its RNG from (seed, unit identity) and shares no mutable
// state, and Map returns results indexed exactly as the inputs were.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hangdoctor/internal/obs"
)

// DefaultWorkers is the fan-out width used when a caller does not override
// it: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// poolMetrics is the pool's obs view. It is installed process-wide (the
// pool is package-level machinery with no instance to hang state off)
// and read through an atomic pointer, so an uninstrumented Map pays one
// pointer load and nothing else.
type poolMetrics struct {
	maps     *obs.Counter
	units    *obs.Counter
	failures *obs.Counter
	unitNs   *obs.Histogram
}

var metrics atomic.Pointer[poolMetrics]

// RegisterMetrics projects the pool's work accounting into reg:
// hangdoctor_pool_maps_total, hangdoctor_pool_units_total,
// hangdoctor_pool_unit_failures_total, and the per-unit wall-time
// histogram hangdoctor_pool_unit_latency_ns. Unit timing never feeds
// rendered experiment artifacts, so instrumented runs stay
// byte-identical to uninstrumented ones.
func RegisterMetrics(reg *obs.Registry) {
	metrics.Store(&poolMetrics{
		maps:     reg.Counter("hangdoctor_pool_maps_total", "Map calls executed."),
		units:    reg.Counter("hangdoctor_pool_units_total", "Work units completed."),
		failures: reg.Counter("hangdoctor_pool_unit_failures_total", "Work units that returned an error."),
		unitNs: reg.Histogram("hangdoctor_pool_unit_latency_ns",
			"Wall time of one work unit.", obs.ExpBuckets(4096, 4, 12)),
	})
}

// runUnit executes one work unit, timing it when metrics are installed.
func runUnit[T any](m *poolMetrics, fn func(i int) (T, error), i int) (T, error) {
	if m == nil {
		return fn(i)
	}
	start := time.Now()
	v, err := fn(i)
	m.unitNs.Observe(float64(time.Since(start)))
	m.units.Inc()
	if err != nil {
		m.failures.Inc()
	}
	return v, err
}

// Map runs fn(i) for every index in [0, n) on at most workers goroutines
// and returns the n results in index order. workers <= 0 selects
// DefaultWorkers(); workers == 1 (or n == 1) runs inline on the calling
// goroutine — the true serial path, with no goroutine hand-off at all.
//
// On failure Map returns the error with the smallest unit index among the
// units that ran; once any unit has failed, unstarted units are skipped.
// Units already in flight always run to completion (fn sees no
// cancellation), so fn must be safe to run even when a sibling failed.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	m := metrics.Load()
	if m != nil {
		m.maps.Inc()
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := runUnit(m, fn, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx int = n
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := runUnit(m, fn, i)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
