package experiments

import (
	"testing"
)

// renderAt runs one registry experiment on a fresh context pinned to the
// given worker count and returns its rendered artifact. Each call gets its
// own context: NewContext resets the shared corpus's known-blocking
// database, so runs start from identical state.
func renderAt(t *testing.T, name string, parallel int) string {
	t.Helper()
	ctx := NewContext(11, SmallScale())
	ctx.Parallel = parallel
	res, err := Run(ctx, name)
	if err != nil {
		t.Fatalf("%s at parallel=%d: %v", name, parallel, err)
	}
	return res.Render()
}

// TestRenderDeterministicAcrossParallelism is the engine's core contract:
// for every registry experiment, the rendered artifact at -parallel 1 (the
// inline serial path) is byte-identical to -parallel 8. Work units derive
// their RNG from (seed, unit identity) and merge in unit order, so worker
// scheduling must never leak into the output.
func TestRenderDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry double sweep; skipped in -short")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			serial := renderAt(t, e.Name, 1)
			parallel := renderAt(t, e.Name, 8)
			if serial != parallel {
				t.Errorf("%s renders differently at parallel=1 vs parallel=8:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s",
					e.Name, serial, parallel)
			}
		})
	}
}

// TestTable5ParallelOrderIndependent pins the table5 sweep — the one
// experiment that was already concurrent before the pool existed — to the
// order-independence claim: with 8 workers racing over 114 apps (run under
// -race in CI), repeated merged outputs are identical to each other and to
// the serial path.
func TestTable5ParallelOrderIndependent(t *testing.T) {
	serial := renderAt(t, "table5", 1)
	first := renderAt(t, "table5", 8)
	second := renderAt(t, "table5", 8)
	if first != second {
		t.Fatalf("two parallel=8 runs of table5 disagree:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", first, second)
	}
	if serial != first {
		t.Fatalf("table5 parallel=8 differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, first)
	}
}
