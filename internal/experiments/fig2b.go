package experiments

import (
	"fmt"
	"strings"

	"hangdoctor/internal/core"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
)

// Fig2b reproduces the paper's Figure 2(b): Hang Bug Report entries for
// AndStatus aggregated across user devices, ordered by occurrence share.
type Fig2b struct {
	Text   string
	Report *core.Report
	// TopRoots are the root causes in report order.
	TopRoots []string
}

// Name implements Result.
func (f *Fig2b) Name() string { return "fig2b" }

// Render implements Result.
func (f *Fig2b) Render() string { return f.Text }

// RunFig2b runs AndStatus on several simulated user devices and merges the
// per-device reports, the paper's fleet aggregation.
func RunFig2b(ctx *Context) (*Fig2b, error) {
	a := ctx.Corpus.MustApp("AndStatus")
	merged := core.NewReport()
	for u := 0; u < ctx.Scale.Users; u++ {
		d := core.New(core.Config{})
		h, err := detect.NewHarness(a, appDevice(), ctx.Seed+uint64(300+u), d)
		if err != nil {
			return nil, err
		}
		// Each simulated user drives their own trace; the doctor labels
		// entries with the device, so the merge counts distinct devices.
		h.Session.Device.Name = fmt.Sprintf("user-%02d", u)
		d.Attach(h.Session)
		h.Run(corpus.Trace(a, ctx.Seed+uint64(300+u), ctx.Scale.TracePerApp), ctx.Scale.Think)
		merged.Merge(d.Report())
	}
	out := &Fig2b{Report: merged}
	for _, e := range merged.Entries() {
		out.TopRoots = append(out.TopRoots, e.RootCause)
	}
	var b strings.Builder
	b.WriteString("== Figure 2(b): Hang Bug Report, AndStatus, aggregated across devices ==\n")
	b.WriteString(merged.Render())
	b.WriteString("paper: three entries (e.g. transform) with 75/15/10% occurrence shares across 74/67/64% of devices\n")
	out.Text = b.String()
	return out, nil
}
