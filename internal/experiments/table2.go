package experiments

import (
	"fmt"

	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/experiments/pool"
	"hangdoctor/internal/simclock"
)

// Table1 reproduces the paper's Table 1: the motivation apps and their
// commits.
type Table1 struct{ Table TextTable }

// Name implements Result.
func (t *Table1) Name() string { return "table1" }

// Render implements Result.
func (t *Table1) Render() string { return t.Table.Render() }

// RunTable1 lists the motivation-study apps.
func RunTable1(ctx *Context) *Table1 {
	out := &Table1{Table: TextTable{
		Title:  "Table 1: apps with well-known soft hang bugs (motivation study)",
		Header: []string{"App", "Commit", "Category", "Bugs"},
	}}
	for _, a := range ctx.Corpus.Motivation {
		out.Table.Add(a.Name, a.Commit, a.Category, itoa(len(a.Bugs)))
	}
	return out
}

// Table2 reproduces the paper's Table 2: per-app true/false positives of
// the Timeout-based detector at 5 s, 1 s, 500 ms, and 100 ms.
type Table2 struct {
	Table TextTable
	// TP[timeout][app], FP[timeout][app] keyed by timeout string then app.
	TP, FP map[string]map[string]int
	// Timeouts in display order.
	Timeouts []simclock.Duration
	// Hangs is the ground-truth number of bug hangs across all traces.
	Hangs int
}

// Name implements Result.
func (t *Table2) Name() string { return "table2" }

// Render implements Result.
func (t *Table2) Render() string { return t.Table.Render() }

// TotalTP sums true positives across apps for a timeout.
func (t *Table2) TotalTP(d simclock.Duration) int {
	n := 0
	for _, v := range t.TP[d.String()] {
		n += v
	}
	return n
}

// TotalFP sums false positives across apps for a timeout.
func (t *Table2) TotalFP(d simclock.Duration) int {
	n := 0
	for _, v := range t.FP[d.String()] {
		n += v
	}
	return n
}

// RunTable2 runs the timeout sweep over the motivation apps.
func RunTable2(ctx *Context) (*Table2, error) {
	timeouts := []simclock.Duration{
		5 * simclock.Second, simclock.Second, 500 * simclock.Millisecond, 100 * simclock.Millisecond,
	}
	out := &Table2{
		Timeouts: timeouts,
		TP:       map[string]map[string]int{},
		FP:       map[string]map[string]int{},
		Table: TextTable{
			Title: "Table 2: Timeout-based detection vs timeout value (TP | FP)",
			Header: []string{"App", "TP 5s", "TP 1s", "TP 500ms", "TP 100ms",
				"FP 5s", "FP 1s", "FP 500ms", "FP 100ms"},
		},
	}
	for _, d := range timeouts {
		out.TP[d.String()] = map[string]int{}
		out.FP[d.String()] = map[string]int{}
	}
	// One work unit per motivation app: each unit's harnesses are seeded by
	// (ctx.Seed, app) alone, so units are order-independent and merge back
	// in corpus order below.
	type t2unit struct {
		tp, fp []int
		hangs  int
	}
	apps := ctx.Corpus.Motivation
	units, err := pool.Map(ctx.Workers(), len(apps), func(i int) (t2unit, error) {
		a := apps[i]
		trace := corpus.Trace(a, ctx.Seed, ctx.Scale.TracePerApp)
		u := t2unit{tp: make([]int, len(timeouts)), fp: make([]int, len(timeouts))}
		for k, d := range timeouts {
			ti := detect.NewTimeout(d)
			h, err := detect.NewHarness(a, appDevice(), ctx.Seed, ti)
			if err != nil {
				return t2unit{}, err
			}
			h.Run(trace, ctx.Scale.Think)
			ev := h.Evaluate(ti)
			u.tp[k], u.fp[k] = ev.TP, ev.FP
			if d == 100*simclock.Millisecond {
				u.hangs = ev.GroundTruthHangs
			}
		}
		return u, nil
	})
	if err != nil {
		return nil, err
	}
	for i, a := range apps {
		u := units[i]
		row := []string{a.Name}
		var fpCells []string
		for k, d := range timeouts {
			out.TP[d.String()][a.Name] = u.tp[k]
			out.FP[d.String()][a.Name] = u.fp[k]
			row = append(row, itoa(u.tp[k]))
			fpCells = append(fpCells, itoa(u.fp[k]))
		}
		out.Hangs += u.hangs
		out.Table.Add(append(row, fpCells...)...)
	}
	total := []string{"TOTAL"}
	var fpTot []string
	for _, d := range timeouts {
		total = append(total, fmt.Sprintf("%d/%d", out.TotalTP(d), out.Hangs))
		fpTot = append(fpTot, itoa(out.TotalFP(d)))
	}
	out.Table.Add(append(total, fpTot...)...)
	out.Table.Notes = append(out.Table.Notes,
		"paper: 5s finds 0/19 TP, 100ms finds 19/19 TP with 33 FP; shape = TP and FP both grow as the timeout shrinks")
	return out, nil
}
