package experiments

import (
	"fmt"
	"strings"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/core"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/simclock"
)

// Fig6 reproduces the paper's Figure 6 walk-through (§4.3): Hang Doctor
// detecting the K9-Mail HtmlCleaner.clean bug — the S-Checker flag on the
// first hang, then the Diagnoser's stack-trace collection and
// occurrence-factor analysis on the next one.
type Fig6 struct {
	Text string
	// Detection is the confirmed clean diagnosis.
	Detection *core.Detection
	// SCheckExec and DiagnoseExec are the execution indexes (within the
	// Open Email action) where each phase acted.
	SCheckExec, DiagnoseExec int
	// HangResponse is the diagnosed hang's response time.
	HangResponse simclock.Duration
}

// Name implements Result.
func (f *Fig6) Name() string { return "fig6" }

// Render implements Result.
func (f *Fig6) Render() string { return f.Text }

// RunFig6 drives Open Email executions until the bug is diagnosed.
func RunFig6(ctx *Context) (*Fig6, error) {
	a := ctx.Corpus.MustApp("K9-Mail")
	d := core.New(core.Config{})
	s, err := app.NewSession(a, appDevice(), ctx.Seed+9)
	if err != nil {
		return nil, err
	}
	d.Attach(s)
	s.AddListener(d)
	act := a.MustAction("Open Email")
	out := &Fig6{SCheckExec: -1, DiagnoseExec: -1}
	var diagnosed *core.Detection
	for i := 0; i < 60 && diagnosed == nil; i++ {
		exec := s.Perform(act)
		s.Idle(simclock.Second)
		for _, det := range d.Detections() {
			if det.RootCause == "org.htmlcleaner.HtmlCleaner.clean" {
				diagnosed = det
				out.DiagnoseExec = i
				out.HangResponse = exec.ResponseTime()
			}
		}
	}
	d.Detach()
	if diagnosed == nil {
		return nil, fmt.Errorf("experiments: clean bug never diagnosed")
	}
	out.Detection = diagnosed
	for _, tr := range d.Transitions() {
		if tr.ActionUID == act.UID && tr.To == core.Suspicious {
			out.SCheckExec = tr.ExecSeq
			break
		}
	}

	var b strings.Builder
	b.WriteString("== Figure 6: K9-Mail 'Open Email' walk-through ==\n")
	fmt.Fprintf(&b, "(a) execution %d: soft hang observed; S-Checker reads positive counter differences\n", out.SCheckExec)
	fmt.Fprintf(&b, "    -> action transitions Uncategorized -> Suspicious\n")
	fmt.Fprintf(&b, "(b) execution %d: soft hang of %v; Diagnoser collects stack traces:\n", out.DiagnoseExec, out.HangResponse)
	nSamples := int(out.HangResponse / (20 * simclock.Millisecond))
	for _, k := range []int{1, 2, 3} {
		fmt.Fprintf(&b, "    [ST %2d] clean(HtmlCleaner.java:25) <- sanitize(HtmlSanitizer.java:25) <- onClick_OpenEmail\n", k)
	}
	fmt.Fprintf(&b, "    ... (%d samples over the hang)\n", nSamples)
	fmt.Fprintf(&b, "    root cause: %s (%s:%d), occurrence factor %.0f%% (paper: clean, 96%%)\n",
		out.Detection.RootCause, out.Detection.File, out.Detection.Line, 100*out.Detection.Occurrence)
	fmt.Fprintf(&b, "    not a UI class -> soft hang bug; action -> HangBug; API added to known-blocking DB\n")
	fmt.Fprintf(&b, "paper: response 1.3s, ~62 stack traces, clean at HtmlSanitizer.java:25\n")
	out.Text = b.String()
	return out, nil
}

// Fig7 reproduces the paper's Figure 7: the state transitions that prune
// UI-caused false positives for K9-Mail's Folders and Inbox actions.
type Fig7 struct {
	Text string
	// Transitions per action UID, in order.
	Paths map[string][]string
	// TracedUIActions counts Diagnoser trace collections spent on UI
	// actions before they settled Normal (should be small).
	TracedUIActions int
	// FinalStates per action.
	FinalStates map[string]core.ActionState
}

// Name implements Result.
func (f *Fig7) Name() string { return "fig7" }

// Render implements Result.
func (f *Fig7) Render() string { return f.Text }

// RunFig7 runs a K9 trace and renders the per-action state paths.
func RunFig7(ctx *Context) (*Fig7, error) {
	a := ctx.Corpus.MustApp("K9-Mail")
	d := core.New(core.Config{ResetEvery: 1 << 30})
	h, err := detect.NewHarness(a, appDevice(), ctx.Seed+3, d)
	if err != nil {
		return nil, err
	}
	h.Run(corpus.Trace(a, ctx.Seed+3, ctx.Scale.TracePerApp), ctx.Scale.Think)

	out := &Fig7{Paths: map[string][]string{}, FinalStates: map[string]core.ActionState{}}
	for _, tr := range d.Transitions() {
		out.Paths[tr.ActionUID] = append(out.Paths[tr.ActionUID],
			fmt.Sprintf("%s: %v->%v (exec %d)", tr.Phase, tr.From, tr.To, tr.ExecSeq))
	}
	for _, act := range a.Actions {
		out.FinalStates[act.UID] = d.State(act.UID)
	}
	for _, hng := range d.Log().Traced {
		if hng.Exec.BugCaused(detect.PerceivableDelay) == nil {
			out.TracedUIActions++
		}
	}

	var b strings.Builder
	b.WriteString("== Figure 7: action state transitioning (K9-Mail) ==\n")
	for _, act := range a.Actions {
		fmt.Fprintf(&b, "%-28s final=%v\n", act.Name, out.FinalStates[act.UID])
		for _, p := range out.Paths[act.UID] {
			fmt.Fprintf(&b, "    %s\n", p)
		}
	}
	fmt.Fprintf(&b, "Diagnoser trace collections spent on UI actions: %d (pruned to Normal afterwards)\n", out.TracedUIActions)
	b.WriteString("paper: Folders goes Uncategorized->Normal at first hang; Inbox is a one-time S-Checker false positive pruned by the Diagnoser\n")
	out.Text = b.String()
	return out, nil
}
