package experiments

import (
	"fmt"
	"strings"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/cpu"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/perf"
	"hangdoctor/internal/simclock"
)

// Fig5 reproduces the paper's Figure 5: 100 ms-windowed context-switch time
// series of the main and render threads during (a) a soft-hang-bug action
// and (b) a UI action. The point of the figure: the UI action shows
// bug-like symptoms in its first windows (main busy, render not yet fed),
// so S-Checker must accumulate to the end of the action before judging.
type Fig5 struct {
	Text string
	// Bug and UI are the per-window (main, render) context-switch counts.
	Bug, UI []windowSample
	// UIEarlyPositive reports whether the UI action's first window had a
	// positive main-minus-render difference (the early-read trap).
	UIEarlyPositive bool
	// UITotalPositive reports whether the UI action's full-window
	// difference stayed positive (it should not).
	UITotalPositive bool
}

type windowSample struct {
	At           simclock.Time
	Main, Render int64
}

// Name implements Result.
func (f *Fig5) Name() string { return "fig5" }

// Render implements Result.
func (f *Fig5) Render() string { return f.Text }

// seriesFor runs one action until cause selects an execution, sampling
// context switches every 100 ms.
func seriesFor(ctx *Context, a *app.App, actName string, wantBug bool, seed uint64) ([]windowSample, error) {
	s, err := app.NewSession(a, appDevice(), seed)
	if err != nil {
		return nil, err
	}
	act := a.MustAction(actName)
	for try := 0; try < 40; try++ {
		ps := perf.Open(s.Clk, []*cpu.Thread{s.MainThread(), s.RenderThread()},
			[]perf.Event{perf.ContextSwitches}, perf.Config{})
		ps.SampleEvery(100 * simclock.Millisecond)
		exec := s.Perform(act)
		// Flush the final partial window before stopping.
		s.Idle(100 * simclock.Millisecond)
		ps.Stop()
		samples := ps.Samples()
		s.Idle(simclock.Second)
		isBug := exec.BugCaused(detect.PerceivableDelay) != nil
		if exec.ResponseTime() > detect.PerceivableDelay && isBug == wantBug {
			var out []windowSample
			for _, smp := range samples {
				out = append(out, windowSample{
					At: smp.At, Main: smp.PerThread[0][0], Render: smp.PerThread[1][0],
				})
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("experiments: no qualifying execution of %s/%s", a.Name, actName)
}

// RunFig5 produces both series from K9-Mail.
func RunFig5(ctx *Context) (*Fig5, error) {
	a := ctx.Corpus.MustApp("K9-Mail")
	bug, err := seriesFor(ctx, a, "Open Email", true, ctx.Seed+5)
	if err != nil {
		return nil, err
	}
	ui, err := seriesFor(ctx, a, "Folders", false, ctx.Seed+6)
	if err != nil {
		return nil, err
	}
	out := &Fig5{Bug: bug, UI: ui}
	if len(ui) > 0 {
		out.UIEarlyPositive = ui[0].Main > ui[0].Render
	}
	var uiMain, uiRender int64
	for _, w := range ui {
		uiMain += w.Main
		uiRender += w.Render
	}
	out.UITotalPositive = uiMain > uiRender

	var b strings.Builder
	b.WriteString("== Figure 5: context-switch traces, main vs render thread (100ms windows) ==\n")
	render := func(label string, series []windowSample) {
		fmt.Fprintf(&b, "(%s)\n%10s %8s %8s %8s\n", label, "t", "main", "render", "diff")
		for _, w := range series {
			fmt.Fprintf(&b, "%10s %8d %8d %+8d\n",
				simclock.Duration(w.At).String(), w.Main, w.Render, w.Main-w.Render)
		}
	}
	render("a: soft hang bug (Open Email)", bug)
	render("b: UI-API (Folders)", ui)
	fmt.Fprintf(&b, "UI action first window main>render: %v; UI full-action main>render: %v\n",
		out.UIEarlyPositive, out.UITotalPositive)
	b.WriteString("paper: the UI action looks bug-like early (0-0.6s) but not over the full window — S-Checker must count to action end\n")
	out.Text = b.String()
	return out, nil
}
