package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// SweepPoint is one operating point of a single-event filter condition.
type SweepPoint struct {
	Threshold float64
	// TPR: fraction of soft-hang-bug samples above the threshold.
	TPR float64
	// FPR: fraction of UI samples above the threshold.
	FPR float64
}

// Youden returns TPR-FPR, the balance statistic the sweep optimizes.
func (p SweepPoint) Youden() float64 { return p.TPR - p.FPR }

// ThresholdSweep charts, for each of the paper's three filter events, how
// detection quality moves with the threshold — the analysis behind Figure
// 4's threshold placement. For every event it reports the full ROC-style
// curve on the training samples, the threshold maximizing Youden's J, and
// where the paper's published threshold sits relative to it.
type ThresholdSweep struct {
	Text string
	// Curves per event name.
	Curves map[string][]SweepPoint
	// BestThreshold per event (max Youden).
	BestThreshold map[string]float64
	// PaperPoint per event: the operating point at the paper's threshold.
	PaperPoint map[string]SweepPoint
}

// Name implements Result.
func (s *ThresholdSweep) Name() string { return "sweep" }

// Render implements Result.
func (s *ThresholdSweep) Render() string { return s.Text }

// paperThresholds are §3.3.1's published values.
var paperThresholds = map[string]float64{
	"context-switches": 0,
	"task-clock":       1.7e8,
	"page-faults":      500,
}

// RunThresholdSweep computes the curves on the Table-3 training samples.
func RunThresholdSweep(ctx *Context) (*ThresholdSweep, error) {
	t3, err := RunTable3(ctx)
	if err != nil {
		return nil, err
	}
	set := t3.Samples
	out := &ThresholdSweep{
		Curves:        map[string][]SweepPoint{},
		BestThreshold: map[string]float64{},
		PaperPoint:    map[string]SweepPoint{},
	}

	var b strings.Builder
	b.WriteString("== Threshold sweep: detection quality vs filter threshold ==\n")
	var names []string
	for name := range paperThresholds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		vec := set.Diff[name]
		pointAt := func(thr float64) SweepPoint {
			var tpAbove, bugs, fpAbove, uis int
			for i, v := range vec {
				if set.Labels[i] == 1 {
					bugs++
					if v > thr {
						tpAbove++
					}
				} else {
					uis++
					if v > thr {
						fpAbove++
					}
				}
			}
			return SweepPoint{
				Threshold: thr,
				TPR:       float64(tpAbove) / float64(bugs),
				FPR:       float64(fpAbove) / float64(uis),
			}
		}
		// Candidate thresholds: midpoints of the sorted sample values.
		sorted := append([]float64(nil), vec...)
		sort.Float64s(sorted)
		var curve []SweepPoint
		best := SweepPoint{Threshold: math.Inf(1), TPR: 0, FPR: 0}
		add := func(thr float64) {
			p := pointAt(thr)
			curve = append(curve, p)
			if p.Youden() > best.Youden() {
				best = p
			}
		}
		add(sorted[0] - 1)
		for i := 1; i < len(sorted); i++ {
			if sorted[i] != sorted[i-1] {
				add((sorted[i] + sorted[i-1]) / 2)
			}
		}
		add(sorted[len(sorted)-1] + 1)

		out.Curves[name] = curve
		out.BestThreshold[name] = best.Threshold
		paper := pointAt(paperThresholds[name])
		out.PaperPoint[name] = paper

		fmt.Fprintf(&b, "%s:\n", name)
		fmt.Fprintf(&b, "  best threshold (max TPR-FPR): %.4g -> TPR %.0f%%, FPR %.0f%%\n",
			best.Threshold, 100*best.TPR, 100*best.FPR)
		fmt.Fprintf(&b, "  paper threshold %.4g          -> TPR %.0f%%, FPR %.0f%% (J gap %.2f)\n",
			paperThresholds[name], 100*paper.TPR, 100*paper.FPR, best.Youden()-paper.Youden())
		// A coarse 10-step curve for the record.
		step := len(curve) / 10
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(curve); i += step {
			p := curve[i]
			fmt.Fprintf(&b, "    thr %-12.4g TPR %5.1f%%  FPR %5.1f%%\n", p.Threshold, 100*p.TPR, 100*p.FPR)
		}
	}
	b.WriteString("single events trade TPR against FPR; the paper resolves the tension by OR-ing three complementary events\n")
	out.Text = b.String()
	return out, nil
}
