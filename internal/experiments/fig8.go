package experiments

import (
	"fmt"

	"hangdoctor/internal/core"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/experiments/pool"
)

// Fig8Apps are the representative apps the paper plots in Figure 8.
var Fig8Apps = []string{"AndStatus", "CycleStreets", "K9-Mail", "Omni-Notes", "UOITDC Booking"}

// Fig8Row holds one detector's results on one app.
type Fig8Row struct {
	App      string
	Detector string
	TP, FP   int
	// NormTP and NormFP are normalized to the TI baseline on the same app.
	NormTP, NormFP float64
	Overhead       float64
}

// Fig8 reproduces the paper's Figure 8: detection performance (true and
// false positives normalized to the Timeout baseline) and overhead, for
// Hang Doctor against TI, UTL, UTH, UTL+TI, UTH+TI.
type Fig8 struct {
	Table TextTable
	Rows  []Fig8Row
	// AvgNormTP / AvgNormFP / AvgOverhead per detector across apps.
	AvgNormTP, AvgNormFP, AvgOverhead map[string]float64
}

// Name implements Result.
func (f *Fig8) Name() string { return "fig8" }

// Render implements Result.
func (f *Fig8) Render() string { return f.Table.Render() }

// fig8Detectors builds the detector roster for one app (UT thresholds are
// calibrated per app, as in §4.1).
func fig8Detectors(ctx *Context, appName string) (map[string]func() detect.Detector, error) {
	a := ctx.Corpus.MustApp(appName)
	calTrace := corpus.Trace(a, ctx.Seed+77, ctx.Scale.TracePerApp)
	low, high, err := detect.CalibrateUT(a, appDevice(), ctx.Seed+77, calTrace)
	if err != nil {
		return nil, fmt.Errorf("calibrating %s: %w", appName, err)
	}
	return map[string]func() detect.Detector{
		"HD":     func() detect.Detector { return core.New(core.Config{}) },
		"TI":     func() detect.Detector { return detect.NewTimeout(detect.PerceivableDelay) },
		"UTL":    func() detect.Detector { return detect.NewUtilization("UTL", low, false, 0) },
		"UTH":    func() detect.Detector { return detect.NewUtilization("UTH", high, false, 0) },
		"UTL+TI": func() detect.Detector { return detect.NewUtilization("UTL", low, true, 0) },
		"UTH+TI": func() detect.Detector { return detect.NewUtilization("UTH", high, true, 0) },
	}, nil
}

// Fig8Detectors is the display order.
var Fig8Detectors = []string{"HD", "TI", "UTL", "UTH", "UTL+TI", "UTH+TI"}

// RunFig8 runs every detector over every representative app on identical
// traces.
func RunFig8(ctx *Context) (*Fig8, error) {
	out := &Fig8{
		AvgNormTP:   map[string]float64{},
		AvgNormFP:   map[string]float64{},
		AvgOverhead: map[string]float64{},
		Table: TextTable{
			Title:  "Figure 8: detection performance and overhead (normalized to TI)",
			Header: []string{"App", "Detector", "TP", "FP", "TP/TI", "FP/TI", "Overhead%"},
		},
	}
	// One work unit per representative app: calibration and all six
	// detector runs for that app. Units share only the read-only trace
	// cache; rows merge below in Fig8Apps × Fig8Detectors order, so the
	// float averages accumulate exactly as in a serial run.
	perApp, err := pool.Map(ctx.Workers(), len(Fig8Apps), func(i int) (map[string]Fig8Row, error) {
		appName := Fig8Apps[i]
		a := ctx.Corpus.MustApp(appName)
		roster, err := fig8Detectors(ctx, appName)
		if err != nil {
			return nil, err
		}
		trace := corpus.Trace(a, ctx.Seed, ctx.Scale.TracePerApp)
		results := map[string]Fig8Row{}
		for _, name := range Fig8Detectors {
			det := roster[name]()
			h, err := detect.NewHarness(a, appDevice(), ctx.Seed, det)
			if err != nil {
				return nil, err
			}
			h.Run(trace, ctx.Scale.Think)
			ev := h.Evaluate(det)
			results[name] = Fig8Row{
				App: appName, Detector: name,
				TP: ev.TP, FP: ev.FP,
				Overhead: h.Overhead(det).Avg(),
			}
		}
		return results, nil
	})
	if err != nil {
		return nil, err
	}
	for _, results := range perApp {
		ti := results["TI"]
		for _, name := range Fig8Detectors {
			r := results[name]
			if ti.TP > 0 {
				r.NormTP = float64(r.TP) / float64(ti.TP)
			}
			if ti.FP > 0 {
				r.NormFP = float64(r.FP) / float64(ti.FP)
			}
			out.Rows = append(out.Rows, r)
			out.AvgNormTP[name] += r.NormTP / float64(len(Fig8Apps))
			out.AvgNormFP[name] += r.NormFP / float64(len(Fig8Apps))
			out.AvgOverhead[name] += r.Overhead / float64(len(Fig8Apps))
			out.Table.Add(r.App, r.Detector, itoa(r.TP), itoa(r.FP),
				f2(r.NormTP), f2(r.NormFP), f2(r.Overhead))
		}
	}
	for _, name := range Fig8Detectors {
		out.Table.Add("AVERAGE", name, "", "",
			f2(out.AvgNormTP[name]), f2(out.AvgNormFP[name]), f2(out.AvgOverhead[name]))
	}
	out.Table.Notes = append(out.Table.Notes,
		"paper: HD traces ~80% of TI's TPs with <10% of its FPs; UTL floods 8-22x FPs; UTH misses 62% of TPs",
		"paper overheads: UTL~25%, UTH~10%, TI~2.26%, HD~0.83%, UTH+TI~0.58%")
	return out, nil
}
