package experiments

import (
	"strings"
	"testing"

	"hangdoctor/internal/simclock"
)

// testCtx caches one small-scale context across tests in this package: the
// experiments are deterministic, and several of them share the expensive
// sample-collection step.
var testCtx = NewContext(42, SmallScale())

func TestTextTableRender(t *testing.T) {
	tbl := TextTable{
		Title:  "T",
		Header: []string{"a", "bb"},
		Notes:  []string{"n"},
	}
	tbl.Add("xxx", "y")
	out := tbl.Render()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "xxx  y") ||
		!strings.Contains(out, "note: n") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTrainingSetComposition(t *testing.T) {
	items := testCtx.Training
	bugs, uis := 0, 0
	for _, it := range items {
		if it.IsBug() {
			bugs++
		} else {
			uis++
		}
	}
	if bugs != 10 {
		t.Errorf("training bugs = %d, want 10 (paper §3.3.1)", bugs)
	}
	if uis != 11 {
		t.Errorf("training UI items = %d, want 11", uis)
	}
	// Validation set is disjoint from the training set: training bugs are
	// offline-visible, validation bugs are not.
	for _, it := range items {
		if it.IsBug() && testCtx.BaselineMissedOffline[it.BugID] {
			t.Errorf("training bug %s is in the validation set", it.BugID)
		}
	}
	if got := len(testCtx.BaselineMissedOffline); got != 23 {
		t.Errorf("validation set size = %d, want 23", got)
	}
}

func TestTable1(t *testing.T) {
	r := RunTable1(testCtx)
	if len(r.Table.Rows) != 8 {
		t.Fatalf("Table 1 rows = %d, want 8", len(r.Table.Rows))
	}
}

func TestTable2Shape(t *testing.T) {
	r, err := RunTable2(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	t5, t1s := 5*simclock.Second, simclock.Second
	t500, t100 := 500*simclock.Millisecond, 100*simclock.Millisecond
	// The ANR-style 5s timeout finds nothing.
	if r.TotalTP(t5) != 0 || r.TotalFP(t5) != 0 {
		t.Errorf("5s timeout found TP=%d FP=%d, want 0/0", r.TotalTP(t5), r.TotalFP(t5))
	}
	// The 100ms timeout finds every bug hang, plus many false positives.
	if r.TotalTP(t100) != r.Hangs {
		t.Errorf("100ms TP = %d, want all %d hangs", r.TotalTP(t100), r.Hangs)
	}
	if r.TotalFP(t100) == 0 {
		t.Error("100ms timeout found no false positives")
	}
	// Monotone in the timeout.
	if !(r.TotalTP(t1s) <= r.TotalTP(t500) && r.TotalTP(t500) < r.TotalTP(t100)) {
		t.Errorf("TP not monotone: %d, %d, %d", r.TotalTP(t1s), r.TotalTP(t500), r.TotalTP(t100))
	}
	// Seadroid's >1s bug is the only one surviving the 1s timeout; FrostWire
	// joins at 500ms.
	if r.TP["1.000s"]["Seadroid"] == 0 {
		t.Error("Seadroid bug not caught at 1s")
	}
	if r.TP["500.00ms"]["FrostWire"] == 0 {
		t.Error("FrostWire bug not caught at 500ms")
	}
	if r.TP["1.000s"]["FrostWire"] != 0 {
		t.Error("FrostWire bug should not survive the 1s timeout")
	}
}

func TestTable3Shape(t *testing.T) {
	r, err := RunTable3(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	// Context switches top the difference ranking (the paper's headline).
	if r.DiffRank[0].Name != "context-switches" {
		t.Errorf("diff rank #1 = %s, want context-switches", r.DiffRank[0].Name)
	}
	// Difference mode beats main-thread-only on average.
	if r.DiffTop10 <= r.MainTop10 {
		t.Errorf("diff avg %.3f not above main-only avg %.3f", r.DiffTop10, r.MainTop10)
	}
	// The paper's filter events all carry meaningful correlation in diff mode.
	for _, want := range []string{"context-switches", "task-clock", "page-faults"} {
		found := false
		for _, rk := range r.DiffRank {
			if rk.Name == want && rk.Coeff > 0.3 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s missing or weak in diff ranking", want)
		}
	}
	// Kernel scheduling events dominate the top of the diff ranking.
	kernelTop := 0
	for _, rk := range r.DiffRank[:5] {
		switch rk.Name {
		case "context-switches", "task-clock", "cpu-clock", "cpu-migrations", "page-faults", "minor-faults", "major-faults":
			kernelTop++
		}
	}
	if kernelTop < 3 {
		t.Errorf("only %d kernel events in diff top-5", kernelTop)
	}
}

func TestTable4Stability(t *testing.T) {
	r, err := RunTable4(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	// Table 4's claim: the top of the ranking survives subsampling.
	if r.Overlap5[0] < 4 {
		t.Errorf("75%% subsample top-5 overlap = %d/5", r.Overlap5[0])
	}
	if r.Overlap5[1] < 3 {
		t.Errorf("50%% subsample top-5 overlap = %d/5", r.Overlap5[1])
	}
	if r.Sub75[0].Name != "context-switches" || r.Sub50[0].Name != "context-switches" {
		t.Errorf("context-switches not #1 in subsamples: %s / %s", r.Sub75[0].Name, r.Sub50[0].Name)
	}
}

func TestFig4FilterDesign(t *testing.T) {
	r, err := RunFig4(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	// The derived filter catches every training bug.
	if r.Selection.FalseNegatives != 0 {
		t.Errorf("derived filter FN = %d", r.Selection.FalseNegatives)
	}
	// And prunes at least half the UI samples (paper: 64%).
	pruned := float64(r.Selection.TrueNegatives) /
		float64(r.Selection.TrueNegatives+r.Selection.FalsePositives)
	if pruned < 0.5 {
		t.Errorf("FP pruning = %.2f, want >= 0.5", pruned)
	}
	// Few events suffice.
	if n := len(r.Selection.Conditions); n == 0 || n > 3 {
		t.Errorf("selected %d conditions, want 1..3", n)
	}
	// First selected condition is the context-switch difference with a
	// near-zero threshold (paper: "positive context-switch difference").
	first := r.Selection.Conditions[0]
	if first.Name != "context-switches" {
		t.Errorf("first condition = %s", first.Name)
	}
	if first.Threshold < -15 || first.Threshold > 15 {
		t.Errorf("ctx threshold = %v, want near zero", first.Threshold)
	}
	// The paper's ctx>0 condition splits the classes well on our samples.
	sp := r.Split["context-switches"]
	if sp[0] < 0.6 || sp[1] < 0.6 {
		t.Errorf("ctx>0 split = %.2f/%.2f, want both >= 0.6", sp[0], sp[1])
	}
}

func TestTable5Headline(t *testing.T) {
	r, err := RunTable5(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	// At small scale nearly every seeded bug is found; no clean app is ever
	// falsely reported.
	if r.TotalBD < 30 {
		t.Errorf("BD = %d, want >= 30 of 34 at small scale", r.TotalBD)
	}
	if r.TotalMO < 20 {
		t.Errorf("MO = %d, want >= 20 of 23 at small scale", r.TotalMO)
	}
	if r.TotalBD > 34 || r.TotalMO > 23 {
		t.Errorf("BD/MO overcount: %d/%d", r.TotalBD, r.TotalMO)
	}
	if r.FalseApps != 0 {
		t.Errorf("clean apps falsely reported: %d", r.FalseApps)
	}
}

func TestTable6Signatures(t *testing.T) {
	r, err := RunTable6(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total[0] < 19 {
		t.Errorf("new bugs found = %d, want >= 19 of 23 at small scale", r.Total[0])
	}
	// Every found bug is recognized by at least one counter, and no single
	// counter covers everything (the paper's point).
	for _, name := range []string{"Omni-Notes", "QKSMS"} {
		cell := r.PerApp[name]
		if cell[0] == 0 {
			t.Errorf("%s: no bugs found", name)
		}
	}
	if omni := r.PerApp["Omni-Notes"]; omni[1] != 0 || omni[3] != omni[0] {
		t.Errorf("Omni-Notes signature = %v, want page-faults only", omni)
	}
	if qk := r.PerApp["QKSMS"]; qk[3] != 0 || qk[2] == 0 {
		t.Errorf("QKSMS signature = %v, want task-clock without page-faults", qk)
	}
	if r.Total[1] == r.Total[0] && r.Total[2] == r.Total[0] && r.Total[3] == r.Total[0] {
		t.Error("every counter detected every bug; signatures collapsed")
	}
}

func TestFig1Timeline(t *testing.T) {
	r, err := RunFig1(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if r.BuggyMean < 300*simclock.Millisecond || r.BuggyMean > 650*simclock.Millisecond {
		t.Errorf("buggy mean = %v, want ~423ms band", r.BuggyMean)
	}
	if r.FixedMean >= r.BuggyMean {
		t.Errorf("fixed (%v) not faster than buggy (%v)", r.FixedMean, r.BuggyMean)
	}
	if r.OpenShareBug < 0.35 {
		t.Errorf("camera.open share = %.2f, want dominant", r.OpenShareBug)
	}
}

func TestFig2bReport(t *testing.T) {
	r, err := RunFig2b(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Report.Len() != 3 {
		t.Fatalf("AndStatus report entries = %d, want 3 (its three bugs)", r.Report.Len())
	}
	for _, e := range r.Report.Entries() {
		if len(e.Devices) < 2 {
			t.Errorf("entry %s seen on %d devices, want >= 2", e.RootCause, len(e.Devices))
		}
	}
}

func TestFig5Series(t *testing.T) {
	r, err := RunFig5(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	// Bug execution: the main thread dominates context switches throughout.
	var bugMain, bugRender int64
	for _, w := range r.Bug {
		bugMain += w.Main
		bugRender += w.Render
	}
	if bugMain <= bugRender {
		t.Errorf("bug series: main %d <= render %d", bugMain, bugRender)
	}
	// UI execution: bug-like early, not overall (the Figure 5 lesson).
	if !r.UIEarlyPositive {
		t.Error("UI series not bug-like in its first window")
	}
	if r.UITotalPositive {
		t.Error("UI series main-dominant over the full action")
	}
}

func TestFig6Walkthrough(t *testing.T) {
	r, err := RunFig6(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Detection.RootCause != "org.htmlcleaner.HtmlCleaner.clean" {
		t.Fatalf("root = %s", r.Detection.RootCause)
	}
	if r.Detection.Occurrence < 0.5 {
		t.Errorf("occurrence = %.2f, want high (paper: 0.96)", r.Detection.Occurrence)
	}
	if r.SCheckExec < 0 || r.DiagnoseExec <= r.SCheckExec {
		t.Errorf("phases out of order: s-check exec %d, diagnose exec %d", r.SCheckExec, r.DiagnoseExec)
	}
	if r.Detection.File != "HtmlCleaner.java" || r.Detection.Line != 25 {
		t.Errorf("location = %s:%d", r.Detection.File, r.Detection.Line)
	}
}

func TestFig7StatePruning(t *testing.T) {
	r, err := RunFig7(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	// Bug actions converge to HangBug; UI actions to Normal.
	if got := r.FinalStates["K9-Mail/Open Email"]; got.String() != "HangBug" {
		t.Errorf("Open Email final = %v", got)
	}
	for _, ui := range []string{"K9-Mail/Folders", "K9-Mail/Inbox"} {
		if got := r.FinalStates[ui]; got.String() == "HangBug" {
			t.Errorf("%s converged to HangBug", ui)
		}
	}
	// UI trace collections are bounded (at most a handful before pruning).
	if r.TracedUIActions > 6 {
		t.Errorf("Diagnoser traced UI actions %d times", r.TracedUIActions)
	}
}

func TestFig8Comparison(t *testing.T) {
	r, err := RunFig8(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	// Paper's Figure 8 shape: HD keeps most of TI's recall at a fraction of
	// its false positives; UTL floods; UTH misses; HD's overhead is below
	// TI's.
	if r.AvgNormTP["HD"] < 0.6 {
		t.Errorf("HD TP/TI = %.2f, want >= 0.6 (paper ~0.8)", r.AvgNormTP["HD"])
	}
	if r.AvgNormFP["HD"] > 0.15 {
		t.Errorf("HD FP/TI = %.2f, want <= 0.15 (paper <0.1)", r.AvgNormFP["HD"])
	}
	if r.AvgNormFP["UTL"] < 2 {
		t.Errorf("UTL FP/TI = %.2f, want flood (paper 8-22x)", r.AvgNormFP["UTL"])
	}
	if r.AvgNormTP["UTH"] > 0.85 {
		t.Errorf("UTH TP/TI = %.2f, want misses (paper ~0.38)", r.AvgNormTP["UTH"])
	}
	if !(r.AvgOverhead["HD"] < r.AvgOverhead["TI"]) {
		t.Errorf("HD overhead %.2f not below TI %.2f", r.AvgOverhead["HD"], r.AvgOverhead["TI"])
	}
	if !(r.AvgOverhead["UTL"] > r.AvgOverhead["UTH"] && r.AvgOverhead["UTH"] > r.AvgOverhead["TI"]) {
		t.Errorf("overhead ordering broken: UTL=%.2f UTH=%.2f TI=%.2f",
			r.AvgOverhead["UTL"], r.AvgOverhead["UTH"], r.AvgOverhead["TI"])
	}
	if !(r.AvgOverhead["UTH+TI"] < r.AvgOverhead["TI"]) {
		t.Errorf("UTH+TI overhead %.2f not below TI %.2f", r.AvgOverhead["UTH+TI"], r.AvgOverhead["TI"])
	}
}

func TestAblationShape(t *testing.T) {
	r, err := RunAblations(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	full := r.Rows["HD (full)"]
	p1 := r.Rows["phase1-only"]
	p2 := r.Rows["phase2-only"]
	ctxOnly := r.Rows["ctx-only"]
	if p1.FP <= full.FP {
		t.Errorf("phase1-only FP %d not above full %d (no Diagnoser confirmation)", p1.FP, full.FP)
	}
	if p2.FP <= full.FP {
		t.Errorf("phase2-only FP %d not above full %d", p2.FP, full.FP)
	}
	if p2.Overhead <= full.Overhead {
		t.Errorf("phase2-only overhead %.2f not above full %.2f", p2.Overhead, full.Overhead)
	}
	if ctxOnly.FN <= full.FN {
		t.Errorf("ctx-only FN %d not above full %d (page-fault bugs missed)", ctxOnly.FN, full.FN)
	}
}

func TestRegistryRunsByName(t *testing.T) {
	res, err := Run(testCtx, "table1")
	if err != nil || res.Name() != "table1" {
		t.Fatalf("Run(table1) = %v, %v", res, err)
	}
	if _, err := Run(testCtx, "nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// Registry covers every paper artifact.
	names := map[string]bool{}
	for _, e := range Registry() {
		names[e.Name] = true
	}
	for _, want := range []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"fig1", "fig2b", "fig4", "fig5", "fig6", "fig7", "fig8", "ablation"} {
		if !names[want] {
			t.Errorf("registry missing %s", want)
		}
	}
}

func TestTestbedMissesEnvironmentGatedBugs(t *testing.T) {
	r, err := RunTestbed(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalLab >= r.TotalWild {
		t.Errorf("test bed found %d bugs, wild %d; the wild deployment must win (§4.6)",
			r.TotalLab, r.TotalWild)
	}
	if r.TotalWild < 30 {
		t.Errorf("wild deployment found only %d bugs", r.TotalWild)
	}
	// The externally powered test bed can afford phase-2-only at lower
	// per-run overhead pressure (shorter campaign, no battery constraint).
	if r.LabOverheadPct <= 0 {
		t.Error("lab overhead not accounted")
	}
}

func TestFixVerify(t *testing.T) {
	r, err := RunFixVerify(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(fixVerifyTargets) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.BugHangsBefore == 0 {
			t.Errorf("%s: no bug hangs before the fix; nothing verified", row.BugID)
		}
		if row.BugHangsAfter != 0 {
			t.Errorf("%s: %d bug hangs remain after the fix", row.BugID, row.BugHangsAfter)
		}
		if row.MeanRTAfterMs >= row.MeanRTBeforeMs {
			t.Errorf("%s: mean response did not improve (%.0f -> %.0f ms)",
				row.BugID, row.MeanRTBeforeMs, row.MeanRTAfterMs)
		}
	}
}

func TestLongitudinalStudy(t *testing.T) {
	r, err := RunLongitudinal(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Latencies) == 0 {
		t.Fatal("no bugs diagnosed in the longitudinal study")
	}
	// Every studied app contributes at least one diagnosed bug, and fleet
	// detection happens well inside the study horizon.
	for _, lat := range r.Latencies {
		if lat.FirstDay < 0 || lat.FirstDay >= LongitudinalDays {
			t.Errorf("%s: fleet first day = %d", lat.BugID, lat.FirstDay)
		}
		if lat.UsersFound == 0 {
			t.Errorf("%s: found by no device", lat.BugID)
		}
	}
	if r.MedianFirstDay >= LongitudinalDays/2 {
		t.Errorf("median device detection day = %.0f, suspiciously late", r.MedianFirstDay)
	}
}

func TestThresholdSweep(t *testing.T) {
	r, err := RunThresholdSweep(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	for name, curve := range r.Curves {
		if len(curve) < 5 {
			t.Fatalf("%s: curve too small", name)
		}
		// TPR and FPR are monotone non-increasing in the threshold.
		for i := 1; i < len(curve); i++ {
			if curve[i].Threshold < curve[i-1].Threshold {
				t.Fatalf("%s: thresholds not sorted", name)
			}
			if curve[i].TPR > curve[i-1].TPR+1e-9 || curve[i].FPR > curve[i-1].FPR+1e-9 {
				t.Fatalf("%s: rates not monotone at %d", name, i)
			}
		}
		// Extremes: lowest threshold flags everything, highest nothing.
		if curve[0].TPR != 1 || curve[0].FPR != 1 {
			t.Fatalf("%s: lowest threshold point = %+v", name, curve[0])
		}
		last := curve[len(curve)-1]
		if last.TPR != 0 || last.FPR != 0 {
			t.Fatalf("%s: highest threshold point = %+v", name, last)
		}
	}
	// The context-switch event separates well at its best threshold, and the
	// paper's ctx>0 choice is close to optimal on our samples.
	bestCtx := r.BestThreshold["context-switches"]
	paperCtx := r.PaperPoint["context-switches"]
	if paperCtx.TPR-paperCtx.FPR < 0.4 {
		t.Errorf("paper ctx>0 point weak: %+v", paperCtx)
	}
	if bestCtx < -30 || bestCtx > 30 {
		t.Errorf("best ctx threshold = %v, far from the paper's 0", bestCtx)
	}
}

func TestDeviceGenerality(t *testing.T) {
	r, err := RunDeviceGenerality(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.FoundPerDevice) != 3 {
		t.Fatalf("devices = %d", len(r.FoundPerDevice))
	}
	// The unchanged filter works on every device: each finds the large
	// majority of the validation set, and most bugs are found everywhere.
	for name, found := range r.FoundPerDevice {
		if len(found) < 19 {
			t.Errorf("%s found only %d/23 validation bugs", name, len(found))
		}
	}
	if r.CommonBugs < 17 {
		t.Errorf("only %d bugs found on every device", r.CommonBugs)
	}
}

func TestImpactNegligibleForHD(t *testing.T) {
	r, err := RunImpact(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	var hd, utl *ImpactRow
	for i := range r.Rows {
		switch r.Rows[i].Detector {
		case "HD":
			hd = &r.Rows[i]
		case "UTL":
			utl = &r.Rows[i]
		}
	}
	if hd == nil || utl == nil {
		t.Fatal("rows missing")
	}
	// §4.5: HD's responsiveness impact is negligible (<0.5% mean inflation);
	// the heavy sampler is measurably worse.
	if hd.InflationPct > 0.5 {
		t.Errorf("HD inflation = %.2f%%", hd.InflationPct)
	}
	if utl.InflationPct <= hd.InflationPct {
		t.Errorf("UTL inflation %.2f%% not above HD %.2f%%", utl.InflationPct, hd.InflationPct)
	}
}

func TestSeedRobustness(t *testing.T) {
	r, err := RunSeedRobustness(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seeds != 6 {
		t.Fatalf("seeds = %d", r.Seeds)
	}
	// The headline properties hold on every seed, not just the default one.
	if r.Recall.Min < 0.5 {
		t.Errorf("worst-seed recall = %.2f", r.Recall.Min)
	}
	if r.FPShare.Max > 0.4 {
		t.Errorf("worst-seed FP share = %.2f", r.FPShare.Max)
	}
	if r.BugsFound.Min < 6 {
		t.Errorf("worst-seed distinct bugs = %.0f of 9 seeded", r.BugsFound.Min)
	}
}

// TestEveryRegisteredExperimentRuns regenerates every artifact end to end on
// a fresh context — the integration test behind cmd/experiments' default
// "run everything" mode.
func TestEveryRegisteredExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep skipped in -short mode")
	}
	ctx := NewContext(7, SmallScale())
	seen := map[string]bool{}
	for _, e := range Registry() {
		res, err := e.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if res.Name() != e.Name {
			t.Errorf("%s: result names itself %q", e.Name, res.Name())
		}
		if len(res.Render()) < 40 {
			t.Errorf("%s: suspiciously short artifact", e.Name)
		}
		if seen[e.Name] {
			t.Errorf("duplicate registry name %s", e.Name)
		}
		seen[e.Name] = true
	}
	if len(seen) < 20 {
		t.Errorf("registry has only %d experiments", len(seen))
	}
}
