package experiments

import (
	"fmt"
	"sort"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/core"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/experiments/pool"
)

// matchDetections maps a doctor's detections onto ground-truth bugs of an
// app: a detection matches a bug when it names the bug's action and root
// cause.
func matchDetections(a *app.App, dets []*core.Detection) map[string]*core.Detection {
	out := map[string]*core.Detection{}
	for _, b := range a.Bugs {
		for _, det := range dets {
			if det.ActionUID == b.Action.UID && det.RootCause == b.RootCauseKey() {
				out[b.ID] = det
				break
			}
		}
	}
	return out
}

// RunHDOnApp runs Hang Doctor over one app's trace and returns the doctor.
func RunHDOnApp(ctx *Context, a *app.App, cfg core.Config, seedOffset uint64) (*core.Doctor, *detect.Harness, error) {
	d := core.New(cfg)
	h, err := detect.NewHarness(a, appDevice(), ctx.Seed+seedOffset, d)
	if err != nil {
		return nil, nil, err
	}
	h.Run(corpus.Trace(a, ctx.Seed+seedOffset, ctx.Scale.TracePerApp), ctx.Scale.Think)
	return d, h, nil
}

// Table5 reproduces the paper's Table 5: per-app bugs detected by Hang
// Doctor (BD) and how many of them offline detection misses (MO), over the
// full 114-app corpus.
type Table5 struct {
	Table TextTable
	// Found maps bug ID -> true for bugs Hang Doctor diagnosed.
	Found map[string]bool
	// TotalBD and TotalMO are the table's bottom line (paper: 34 and 23).
	TotalBD, TotalMO int
	// SeededBD is the number of seeded bugs whose actions were exercised.
	SeededBD int
	// FalseApps counts clean apps where HD reported any bug (paper: none).
	FalseApps int
}

// Name implements Result.
func (t *Table5) Name() string { return "table5" }

// Render implements Result.
func (t *Table5) Render() string { return t.Table.Render() }

// RunTable5 runs Hang Doctor over every app in the corpus.
func RunTable5(ctx *Context) (*Table5, error) {
	out := &Table5{
		Found: map[string]bool{},
		Table: TextTable{
			Title:  "Table 5: soft hang bugs found by Hang Doctor across the corpus",
			Header: []string{"App", "Commit", "Category", "Downloads", "BD", "MO"},
		},
	}
	table5Set := map[string]bool{}
	for _, a := range ctx.Corpus.Table5 {
		table5Set[a.Name] = true
	}
	// Each app runs in its own fully isolated session, so the corpus sweep
	// fans out across the shared worker pool; the only shared mutable state
	// is the known-blocking database, which is mutex-guarded and write-only
	// during detection. Per-app results are deterministic regardless of
	// scheduling; aggregation order is fixed by the apps slice.
	type appResult struct {
		matched    map[string]*core.Detection
		falseApp   bool
		detections int
	}
	apps := ctx.Corpus.Apps
	results, err := pool.Map(ctx.Workers(), len(apps), func(i int) (appResult, error) {
		a := apps[i]
		d, _, err := RunHDOnApp(ctx, a, core.Config{}, uint64(i))
		if err != nil {
			return appResult{}, err
		}
		return appResult{
			matched:    matchDetections(a, d.Detections()),
			falseApp:   len(a.Bugs) == 0 && len(d.Detections()) > 0,
			detections: len(d.Detections()),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	type row struct {
		app    *app.App
		bd, mo int
	}
	var rows []row
	motivationBugs := 0
	for i, a := range ctx.Corpus.Apps {
		res := results[i]
		bd, mo := 0, 0
		for id := range res.matched {
			out.Found[id] = true
			bd++
			if ctx.BaselineMissedOffline[id] {
				mo++
			}
		}
		if res.falseApp {
			out.FalseApps++
		}
		if !table5Set[a.Name] {
			motivationBugs += bd
			continue
		}
		if bd > 0 {
			rows = append(rows, row{app: a, bd: bd, mo: mo})
			out.TotalBD += bd
			out.TotalMO += mo
		}
	}
	out.SeededBD = len(ctx.Corpus.Table5Bugs())
	sort.Slice(rows, func(i, j int) bool { return rows[i].app.Name < rows[j].app.Name })
	for _, r := range rows {
		out.Table.Add(r.app.Name, r.app.Commit, r.app.Category, r.app.Downloads,
			itoa(r.bd), fmt.Sprintf("(%d)", r.mo))
	}
	out.Table.Add("TOTAL", "", "", "", itoa(out.TotalBD), fmt.Sprintf("(%d)", out.TotalMO))
	out.Table.Notes = append(out.Table.Notes,
		fmt.Sprintf("corpus seeds %d Table-5 bugs (23 missed offline); clean apps falsely reported: %d; motivation-app (Table 1) bugs also diagnosed: %d; paper: 34 bugs, 23 missed offline, 114 apps tested",
			out.SeededBD, out.FalseApps, motivationBugs))
	return out, nil
}

// Table6 reproduces the paper's Table 6: for each app with previously
// unknown (offline-missed) bugs, how many are recognized by each of
// S-Checker's three counters.
type Table6 struct {
	Table TextTable
	// PerApp[app] = [new bugs found, by ctx, by task-clock, by page-faults]
	PerApp map[string][4]int
	Total  [4]int
}

// Name implements Result.
func (t *Table6) Name() string { return "table6" }

// Render implements Result.
func (t *Table6) Render() string { return t.Table.Render() }

// RunTable6 runs Hang Doctor on the validation apps and attributes each
// diagnosed unknown bug to the S-Checker symptoms that flagged it.
func RunTable6(ctx *Context) (*Table6, error) {
	out := &Table6{
		PerApp: map[string][4]int{},
		Table: TextTable{
			Title:  "Table 6: which performance events detect the previously unknown bugs",
			Header: []string{"App", "New bugs found", "context-switches", "task-clock", "page-faults"},
		},
	}
	byApp := map[string][]*app.Bug{}
	var appOrder []string
	for _, b := range ctx.Corpus.Table5Bugs() {
		if !ctx.BaselineMissedOffline[b.ID] {
			continue
		}
		if len(byApp[b.App.Name]) == 0 {
			appOrder = append(appOrder, b.App.Name)
		}
		byApp[b.App.Name] = append(byApp[b.App.Name], b)
	}
	sort.Strings(appOrder)
	conds := core.DefaultConditions()
	cells, err := pool.Map(ctx.Workers(), len(appOrder), func(i int) ([4]int, error) {
		name := appOrder[i]
		a := ctx.Corpus.MustApp(name)
		d, _, err := RunHDOnApp(ctx, a, core.Config{}, 1000+uint64(i))
		if err != nil {
			return [4]int{}, err
		}
		matched := matchDetections(a, d.Detections())
		var cell [4]int
		for _, b := range byApp[name] {
			det, ok := matched[b.ID]
			if !ok {
				continue
			}
			cell[0]++
			for _, si := range det.Symptoms {
				if si >= 0 && si < len(conds) {
					cell[1+si]++
				}
			}
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range appOrder {
		cell := cells[i]
		out.PerApp[name] = cell
		for k := range cell {
			out.Total[k] += cell[k]
		}
		out.Table.Add(name, itoa(cell[0]), itoa(cell[1]), itoa(cell[2]), itoa(cell[3]))
	}
	out.Table.Add("TOTAL", itoa(out.Total[0]), itoa(out.Total[1]), itoa(out.Total[2]), itoa(out.Total[3]))
	out.Table.Notes = append(out.Table.Notes,
		"paper: 23 new bugs; 18 recognized by context-switches, 12 by task-clock, 12 by page-faults; no counter alone suffices")
	return out, nil
}
