package experiments

import (
	"hangdoctor/internal/core"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/experiments/pool"
	"hangdoctor/internal/perf"
	"hangdoctor/internal/simclock"
)

// AblationRow summarizes one Hang Doctor variant on the reference app.
type AblationRow struct {
	Variant  string
	TP, FP   int
	FN       int
	Overhead float64
}

// Ablation compares Hang Doctor design choices the paper argues for:
// two-phase vs single-phase, main-render difference vs main-only counters,
// three events vs one vs the full 46 (multiplexed), end-of-action counting
// vs an early read, and the periodic Normal reset.
type Ablation struct {
	Table TextTable
	Rows  map[string]AblationRow
}

// Name implements Result.
func (a *Ablation) Name() string { return "ablation" }

// Render implements Result.
func (a *Ablation) Render() string { return a.Table.Render() }

// ablationVariants enumerates the configurations under study.
func ablationVariants() []struct {
	Name string
	Cfg  core.Config
} {
	one := []core.Condition{core.DefaultConditions()[0]}
	all := func() []core.Condition {
		var out []core.Condition
		for _, c := range core.DefaultConditions() {
			out = append(out, c)
		}
		// Pad with every PMU event at an uninformative threshold: models a
		// kitchen-sink filter paying multiplexing inaccuracy.
		for _, e := range perfAllPMU() {
			out = append(out, core.Condition{Event: e, Threshold: 1 << 62})
		}
		return out
	}()
	return []struct {
		Name string
		Cfg  core.Config
	}{
		{"HD (full)", core.Config{}},
		{"phase1-only", core.Config{Phase1Only: true}},
		{"phase2-only", core.Config{Phase2Only: true}},
		{"main-only", core.Config{MainThreadOnly: true}},
		{"ctx-only", core.Config{Conditions: one}},
		{"all-46-events", core.Config{Conditions: all}},
		{"early-read-250ms", core.Config{EarlyRead: 250 * simclock.Millisecond}},
		{"no-reset", core.Config{ResetEvery: 1 << 30}},
		// Diagnoser sensitivity: the §3.4.1 occurrence threshold ("the exact
		// threshold can be adjusted") and the minimum trace population.
		{"occurrence-0.85", core.Config{OccurrenceHigh: 0.85}},
		{"min-traces-1", core.Config{MinTraces: 1}},
	}
}

// RunAblations evaluates each variant on K9-Mail plus Omni-Notes (the
// page-fault-signature app that a ctx-only filter must miss).
func RunAblations(ctx *Context) (*Ablation, error) {
	out := &Ablation{
		Rows: map[string]AblationRow{},
		Table: TextTable{
			Title:  "Ablations: Hang Doctor design choices (K9-Mail + Omni-Notes)",
			Header: []string{"Variant", "TP", "FP", "FN", "Overhead%"},
		},
	}
	apps := []string{"K9-Mail", "Omni-Notes"}
	// One unit per variant (each runs both apps on the same cached traces);
	// rows merge in variant order.
	variants := ablationVariants()
	rows, err := pool.Map(ctx.Workers(), len(variants), func(i int) (AblationRow, error) {
		v := variants[i]
		row := AblationRow{Variant: v.Name}
		var ovSum float64
		for _, appName := range apps {
			a := ctx.Corpus.MustApp(appName)
			d := core.New(v.Cfg)
			h, err := detect.NewHarness(a, appDevice(), ctx.Seed, d)
			if err != nil {
				return AblationRow{}, err
			}
			h.Run(corpus.Trace(a, ctx.Seed, ctx.Scale.TracePerApp), ctx.Scale.Think)
			ev := h.Evaluate(d)
			row.TP += ev.TP
			row.FP += ev.FP
			row.FN += ev.FN
			ovSum += h.Overhead(d).Avg()
		}
		row.Overhead = ovSum / float64(len(apps))
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		out.Rows[row.Variant] = row
		out.Table.Add(row.Variant, itoa(row.TP), itoa(row.FP), itoa(row.FN), f2(row.Overhead))
	}
	out.Table.Notes = append(out.Table.Notes,
		"expected: phase2-only pays TI-like overhead; ctx-only misses the page-fault bugs; main-only and early-read lose filter quality",
	)
	return out, nil
}

// perfAllPMU returns every PMU event.
func perfAllPMU() []perf.Event {
	var out []perf.Event
	for _, e := range perf.AllEvents() {
		if !e.Kernel() {
			out = append(out, e)
		}
	}
	return out
}
