package experiments

import (
	"fmt"

	"hangdoctor/internal/core"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/stats"
)

// ImpactRow is one detector's responsiveness footprint.
type ImpactRow struct {
	Detector string
	// MeanMs / P95Ms of action response times with the detector's costs
	// executing as real work on a monitoring thread.
	MeanMs, P95Ms float64
	// InflationPct is the mean response-time increase vs the unmonitored
	// baseline run.
	InflationPct float64
}

// Impact verifies the paper's §4.5 closing claim — "Hang Doctor has also a
// negligible impact on apps' ... responsiveness" — mechanically: detector
// costs are injected as real CPU work on a monitoring thread that contends
// with the app, and the resulting response-time distributions are compared
// against an unmonitored run of the same trace.
type Impact struct {
	Table      TextTable
	Rows       []ImpactRow
	BaselineMs float64
}

// Name implements Result.
func (i *Impact) Name() string { return "impact" }

// Render implements Result.
func (i *Impact) Render() string { return i.Table.Render() }

// RunImpact measures response-time inflation for HD and the heavier
// baselines on K9-Mail.
func RunImpact(ctx *Context) (*Impact, error) {
	a := ctx.Corpus.MustApp("K9-Mail")
	trace := corpus.Trace(a, ctx.Seed, ctx.Scale.TracePerApp)
	low, high, err := detect.CalibrateUT(a, appDevice(), ctx.Seed+77, trace)
	if err != nil {
		return nil, err
	}
	_ = high

	run := func(det detect.Detector, inject bool) ([]float64, error) {
		var dets []detect.Detector
		if det != nil {
			dets = append(dets, det)
		}
		h, err := detect.NewHarness(a, appDevice(), ctx.Seed, dets...)
		if err != nil {
			return nil, err
		}
		if inject && det != nil {
			h.EnableCostInjection()
		}
		h.Run(trace, ctx.Scale.Think)
		rts := make([]float64, len(h.Execs))
		for i, e := range h.Execs {
			rts[i] = e.ResponseTime().Milliseconds()
		}
		return rts, nil
	}

	base, err := run(nil, false)
	if err != nil {
		return nil, err
	}
	out := &Impact{
		BaselineMs: stats.Mean(base),
		Table: TextTable{
			Title:  "Responsiveness impact of monitoring (detector costs run as real work)",
			Header: []string{"Detector", "mean RT", "P95 RT", "inflation vs unmonitored"},
		},
	}
	out.Table.Add("(none)", fmt.Sprintf("%.1fms", out.BaselineMs),
		fmt.Sprintf("%.1fms", stats.Quantile(base, 0.95)), "-")

	rosters := []struct {
		name string
		mk   func() detect.Detector
	}{
		{"HD", func() detect.Detector { return core.New(core.Config{}) }},
		{"TI", func() detect.Detector { return detect.NewTimeout(detect.PerceivableDelay) }},
		{"UTL", func() detect.Detector { return detect.NewUtilization("UTL", low, false, 0) }},
	}
	for _, r := range rosters {
		rts, err := run(r.mk(), true)
		if err != nil {
			return nil, err
		}
		row := ImpactRow{
			Detector: r.name,
			MeanMs:   stats.Mean(rts),
			P95Ms:    stats.Quantile(rts, 0.95),
		}
		row.InflationPct = 100 * (row.MeanMs - out.BaselineMs) / out.BaselineMs
		out.Rows = append(out.Rows, row)
		out.Table.Add(r.name, fmt.Sprintf("%.1fms", row.MeanMs),
			fmt.Sprintf("%.1fms", row.P95Ms), fmt.Sprintf("%+.2f%%", row.InflationPct))
	}
	out.Table.Notes = append(out.Table.Notes,
		"paper §4.5: Hang Doctor has a negligible impact on apps' responsiveness; heavier samplers contend visibly")
	return out, nil
}
