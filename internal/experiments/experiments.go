// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.2 and §4) on the simulated corpus: one harness per
// artifact, each returning a Result whose Render output mirrors the rows or
// series the paper prints. The cmd/experiments binary and the repository's
// benchmarks drive these harnesses; EXPERIMENTS.md records paper-reported
// versus measured values.
package experiments

import (
	"fmt"
	"strings"

	"hangdoctor/internal/corpus"
	"hangdoctor/internal/experiments/pool"
	"hangdoctor/internal/simclock"
)

// Result is one regenerated artifact.
type Result interface {
	// Name is the artifact identifier, e.g. "table2" or "fig8".
	Name() string
	// Render returns the artifact as a text table/series.
	Render() string
}

// Scale sizes an experiment run. The paper's field study is 20 users for 60
// days; simulated runs trade that for bounded trace lengths that preserve
// every effect (each bug manifests many times at any of these scales).
type Scale struct {
	// TracePerApp is the number of user actions per app trace.
	TracePerApp int
	// Think is the idle gap between actions.
	Think simclock.Duration
	// SamplesPerItem is the per-training-item sample count for the
	// correlation analyses.
	SamplesPerItem int
	// Users is the number of simulated devices in field-study experiments.
	Users int
}

// SmallScale is sized for unit tests (seconds of wall time).
func SmallScale() Scale {
	return Scale{TracePerApp: 90, Think: simclock.Second, SamplesPerItem: 6, Users: 4}
}

// FullScale is sized for the cmd/experiments binary and benchmarks.
func FullScale() Scale {
	return Scale{TracePerApp: 240, Think: simclock.Second, SamplesPerItem: 10, Users: 12}
}

// Context carries the shared inputs of all experiments, plus baseline
// snapshots taken before any Hang Doctor run: HD's feedback loop extends
// the shared known-blocking database at runtime, so "missed by offline
// detection" must be evaluated against the database as it was shipped.
type Context struct {
	Corpus *corpus.Corpus
	Seed   uint64
	Scale  Scale

	// Parallel is the worker count sweep-style experiments fan per-app work
	// units out across: 0 means one worker per CPU (pool.DefaultWorkers), 1
	// forces the serial path. Every unit derives its RNG from (seed, unit
	// identity) and results merge in unit order, so rendered artifacts are
	// byte-identical at any setting (DESIGN.md §8).
	Parallel int

	// BaselineMissedOffline is the set of bug IDs invisible to offline
	// scanning before any feedback (the paper's MO column / validation set).
	BaselineMissedOffline map[string]bool
	// Training is the §3.3.1 training set, fixed at context creation.
	Training []TrainingItem
}

// NewContext builds a context over the shared memoized corpus. The corpus's
// known-blocking database is reset to its shipped snapshot by
// corpus.Shared, so the context starts from exactly the state a freshly
// built corpus would give it.
func NewContext(seed uint64, scale Scale) *Context {
	return NewContextWith(corpus.Shared(), seed, scale)
}

// NewContextWith builds a context over an injected corpus. Tests and
// benches that mutate corpus state beyond the known-blocking database pass
// their own corpus.Build() here; everything else shares the memoized
// corpus via NewContext. Baseline snapshots are taken from the corpus as
// passed.
func NewContextWith(c *corpus.Corpus, seed uint64, scale Scale) *Context {
	ctx := &Context{Corpus: c, Seed: seed, Scale: scale,
		BaselineMissedOffline: map[string]bool{}}
	for _, b := range c.MissedOfflineBugs() {
		ctx.BaselineMissedOffline[b.ID] = true
	}
	ctx.Training = TrainingSet(c)
	return ctx
}

// Workers resolves the effective fan-out width for this context.
func (c *Context) Workers() int {
	if c.Parallel > 0 {
		return c.Parallel
	}
	return pool.DefaultWorkers()
}

// TextTable renders aligned rows for terminal output.
type TextTable struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row.
func (t *TextTable) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table with column alignment.
func (t *TextTable) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f3 formats a float with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func itoa(v int) string { return fmt.Sprintf("%d", v) }
