package experiments

import (
	"fmt"
	"sort"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/cpu"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/experiments/pool"
	"hangdoctor/internal/perf"
	"hangdoctor/internal/simclock"
)

// TrainingItem is one entry of the §3.3.1 training set: either a well-known
// soft hang bug (detected by offline tools) or a UI-API-heavy action.
type TrainingItem struct {
	App    *app.App
	Action *app.Action
	// BugID is non-empty for bug items (matched against ground truth when
	// selecting samples).
	BugID string
	Label string
}

// IsBug reports whether the item is a soft-hang-bug item.
func (ti TrainingItem) IsBug() bool { return ti.BugID != "" }

// TrainingSet assembles the paper's training set: 10 of the 11 well-known
// (offline-visible) Table-5 bugs plus 11 UI-heavy actions from across the
// corpus.
func TrainingSet(c *corpus.Corpus) []TrainingItem {
	var items []TrainingItem
	known := c.KnownBugs()
	sort.Slice(known, func(i, j int) bool { return known[i].ID < known[j].ID })
	if len(known) > 10 {
		known = known[:10]
	}
	for _, b := range known {
		items = append(items, TrainingItem{
			App: b.App, Action: b.Action, BugID: b.ID, Label: b.ID,
		})
	}
	uiActions := []struct{ app, action string }{
		{"K9-Mail", "Folders"},
		{"K9-Mail", "Inbox"},
		{"DashClock", "Open Settings"},
		{"DroidWall", "App List"},
		{"FrostWire", "Transfers"},
		{"Ushaidi", "Map View"},
		{"WebSMS", "Compose"},
		{"cgeo", "Nearby List"},
		{"Seadroid", "File List"},
		{"FBReaderJ", "Bookmarks"},
		{"A Better Camera", "Gallery"},
	}
	for _, ua := range uiActions {
		a := c.MustApp(ua.app)
		items = append(items, TrainingItem{
			App: a, Action: a.MustAction(ua.action),
			Label: ua.app + "/" + ua.action + " (UI)",
		})
	}
	return items
}

// ValidationBugs returns the paper's validation set: the 23 bugs missed by
// offline detection.
func ValidationBugs(c *corpus.Corpus) []*app.Bug { return c.MissedOfflineBugs() }

// SampleSet holds per-event sample vectors for the correlation analyses,
// in both thread-selection modes of Table 3.
type SampleSet struct {
	// Diff[name][k] is sample k of the main-minus-render difference of the
	// event; MainOnly is the main-thread-only reading.
	Diff     map[string][]float64
	MainOnly map[string][]float64
	// Labels[k] is 1 for a soft-hang-bug sample, 0 for a UI sample.
	Labels []float64
	// Items[k] names the training item sample k came from.
	Items []string
}

// Len returns the number of samples.
func (s *SampleSet) Len() int { return len(s.Labels) }

// CollectSamples runs each training item until perItem soft hangs of the
// right cause have been observed (bounded tries), measuring all 46
// performance events over each action window — the data collection behind
// Tables 3 and 4 and Figure 4. Items fan out across workers goroutines
// (0 = one per CPU): each item's session is seeded by (seed, item app)
// alone, and per-item sample vectors merge back in item order, so the
// result is identical at any worker count.
func CollectSamples(c *corpus.Corpus, items []TrainingItem, perItem int, seed uint64, workers int) (*SampleSet, error) {
	events := perf.AllEvents()
	// diff[k]/mainOnly[k] are indexed like events; labels hold one entry
	// per collected sample of this item.
	type itemSamples struct {
		diff, mainOnly [][]float64
		labels         []float64
	}
	units, err := pool.Map(workers, len(items), func(i int) (itemSamples, error) {
		it := items[i]
		u := itemSamples{
			diff:     make([][]float64, len(events)),
			mainOnly: make([][]float64, len(events)),
		}
		s, err := app.NewSession(it.App, app.LGV10(), seed)
		if err != nil {
			return itemSamples{}, err
		}
		collected := 0
		for try := 0; try < perItem*8 && collected < perItem; try++ {
			ps := perf.Open(s.Clk, []*cpu.Thread{s.MainThread(), s.RenderThread()}, events, s.PerfConfig())
			exec := s.Perform(it.Action)
			reading := ps.Stop()
			s.Idle(simclock.Second)
			if exec.ResponseTime() <= detect.PerceivableDelay {
				continue
			}
			bug := exec.BugCaused(detect.PerceivableDelay)
			if it.IsBug() {
				if bug == nil || bug.ID != it.BugID {
					continue
				}
			} else if bug != nil {
				continue
			}
			for k, e := range events {
				u.diff[k] = append(u.diff[k], float64(reading.Diff(e)))
				u.mainOnly[k] = append(u.mainOnly[k], float64(reading.Value(0, e)))
			}
			if it.IsBug() {
				u.labels = append(u.labels, 1)
			} else {
				u.labels = append(u.labels, 0)
			}
			collected++
		}
		if collected == 0 {
			return itemSamples{}, fmt.Errorf("experiments: training item %s never produced a qualifying hang", it.Label)
		}
		return u, nil
	})
	if err != nil {
		return nil, err
	}
	set := &SampleSet{
		Diff:     map[string][]float64{},
		MainOnly: map[string][]float64{},
	}
	for i, u := range units {
		for k, e := range events {
			set.Diff[e.Name()] = append(set.Diff[e.Name()], u.diff[k]...)
			set.MainOnly[e.Name()] = append(set.MainOnly[e.Name()], u.mainOnly[k]...)
		}
		set.Labels = append(set.Labels, u.labels...)
		for range u.labels {
			set.Items = append(set.Items, items[i].Label)
		}
	}
	return set, nil
}
