package experiments

import (
	"fmt"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
)

// FixVerifyRow compares one app before and after fixing one bug.
type FixVerifyRow struct {
	BugID string
	// BugHangsBefore/After count soft hangs attributable to the fixed bug's
	// action (the ones users would stop seeing).
	BugHangsBefore, BugHangsAfter int
	// UIHangsBefore/After verify the fix didn't suppress legitimate UI work.
	UIHangsBefore, UIHangsAfter int
	// MeanResponseBefore/After on the buggy action, milliseconds.
	MeanRTBeforeMs, MeanRTAfterMs float64
}

// FixVerify reproduces the paper's §4.2 validation methodology: for issues
// with no developer response, the authors fixed the diagnosed bug themselves
// (moving the blocking call to a worker thread) and verified the modified
// app showed no more soft hangs from that cause.
type FixVerify struct {
	Table TextTable
	Rows  []FixVerifyRow
}

// Name implements Result.
func (f *FixVerify) Name() string { return "fixverify" }

// Render implements Result.
func (f *FixVerify) Render() string { return f.Table.Render() }

// fixVerifyTargets are representative diagnosed bugs to fix: one per
// signature archetype.
var fixVerifyTargets = []struct{ appName, bugID string }{
	{"K9-Mail", "K9-Mail/1007-clean"},
	{"Omni-Notes", "Omni-Notes/253-getNotes"},
	{"AndStatus", "AndStatus/303-transform"},
	{"QKSMS", "QKSMS/382-formatThread"},
}

// RunFixVerify measures each app before and after the fix on identical
// traces.
func RunFixVerify(ctx *Context) (*FixVerify, error) {
	out := &FixVerify{Table: TextTable{
		Title: "Fix verification: soft hangs before/after moving the bug off the main thread",
		Header: []string{"Bug", "bug hangs before", "after",
			"UI hangs before", "after", "mean RT before", "after"},
	}}
	for i, tgt := range fixVerifyTargets {
		orig := ctx.Corpus.MustApp(tgt.appName)
		fixedApp, err := corpus.FixedApp(orig, tgt.bugID)
		if err != nil {
			return nil, err
		}
		var bugAction *app.Action
		for _, b := range orig.Bugs {
			if b.ID == tgt.bugID {
				bugAction = b.Action
			}
		}
		row := FixVerifyRow{BugID: tgt.bugID}
		measure := func(a *app.App, bugHangs, uiHangs *int, meanMs *float64) error {
			s, err := app.NewSession(a, appDevice(), ctx.Seed+uint64(4000+i))
			if err != nil {
				return err
			}
			// Drive the same action names on both variants.
			var rtSum float64
			var rtN int
			for _, act := range corpus.Trace(orig, ctx.Seed+uint64(4000+i), ctx.Scale.TracePerApp) {
				target := a.MustAction(act.Name)
				exec := s.Perform(target)
				s.Idle(ctx.Scale.Think)
				hang := exec.ResponseTime() > detect.PerceivableDelay
				if act.Name == bugAction.Name {
					rtSum += exec.ResponseTime().Milliseconds()
					rtN++
					if hang {
						if exec.BugCaused(detect.PerceivableDelay) != nil {
							*bugHangs++
						} else {
							*uiHangs++
						}
					}
				} else if hang && exec.BugCaused(detect.PerceivableDelay) == nil {
					*uiHangs++
				}
			}
			if rtN > 0 {
				*meanMs = rtSum / float64(rtN)
			}
			return nil
		}
		if err := measure(orig, &row.BugHangsBefore, &row.UIHangsBefore, &row.MeanRTBeforeMs); err != nil {
			return nil, err
		}
		if err := measure(fixedApp, &row.BugHangsAfter, &row.UIHangsAfter, &row.MeanRTAfterMs); err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
		out.Table.Add(row.BugID,
			itoa(row.BugHangsBefore), itoa(row.BugHangsAfter),
			itoa(row.UIHangsBefore), itoa(row.UIHangsAfter),
			fmt.Sprintf("%.0fms", row.MeanRTBeforeMs), fmt.Sprintf("%.0fms", row.MeanRTAfterMs))
	}
	out.Table.Notes = append(out.Table.Notes,
		"paper §4.2: 'in all the cases, the modified app did not show any more soft hangs' from the fixed cause")
	return out, nil
}
