package experiments

import (
	"fmt"
	"sort"
	"strings"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/simclock"
)

// Fig1 reproduces the paper's Figure 1: the main-thread timeline of A
// Better Camera's Resume action with the camera-open soft hang bug, versus
// the fixed version that moves the API to a worker thread (423 ms → 160 ms
// in the paper).
type Fig1 struct {
	Text         string
	BuggyMean    simclock.Duration
	FixedMean    simclock.Duration
	BuggyOps     []opSpan
	OpenShareBug float64 // camera.open share of the buggy response time
}

type opSpan struct {
	Name string
	Dur  simclock.Duration
}

// Name implements Result.
func (f *Fig1) Name() string { return "fig1" }

// Render implements Result.
func (f *Fig1) Render() string { return f.Text }

// RunFig1 measures both variants.
func RunFig1(ctx *Context) (*Fig1, error) {
	buggy, fixed := ctx.Corpus.ABetterCameraPair()
	out := &Fig1{}

	measure := func(a *app.App, keepOps bool) (simclock.Duration, error) {
		s, err := app.NewSession(a, appDevice(), ctx.Seed)
		if err != nil {
			return 0, err
		}
		act := a.MustAction("Resume")
		const n = 12
		var total simclock.Duration
		for i := 0; i < n; i++ {
			exec := s.Perform(act)
			total += exec.ResponseTime()
			if keepOps && i == 0 {
				spans := map[string]simclock.Duration{}
				for _, h := range exec.Heavy {
					spans[h.Op.Name] += h.Dur
				}
				for name, dur := range spans {
					out.BuggyOps = append(out.BuggyOps, opSpan{Name: name, Dur: dur})
				}
				sort.Slice(out.BuggyOps, func(i, j int) bool { return out.BuggyOps[i].Dur > out.BuggyOps[j].Dur })
			}
			s.Idle(simclock.Second)
		}
		return total / n, nil
	}
	var err error
	if out.BuggyMean, err = measure(buggy, true); err != nil {
		return nil, err
	}
	if out.FixedMean, err = measure(fixed, false); err != nil {
		return nil, err
	}
	for _, sp := range out.BuggyOps {
		if sp.Name == "open" {
			out.OpenShareBug = float64(sp.Dur) / float64(out.BuggyMean)
		}
	}

	var b strings.Builder
	b.WriteString("== Figure 1: A Better Camera 'Resume' main-thread timeline ==\n")
	fmt.Fprintf(&b, "buggy main thread response: %v (paper: 423ms)\n", out.BuggyMean)
	fmt.Fprintf(&b, "fixed main thread response: %v (paper: 160ms, camera.open on worker thread)\n", out.FixedMean)
	b.WriteString("buggy-run operation spans (main thread):\n")
	var cum simclock.Duration
	for _, sp := range out.BuggyOps {
		bar := strings.Repeat("#", int(sp.Dur/(10*simclock.Millisecond))+1)
		fmt.Fprintf(&b, "  %-16s %9s %s\n", sp.Name, sp.Dur, bar)
		cum += sp.Dur
	}
	fmt.Fprintf(&b, "speedup from moving one blocking API off the main thread: %.1fx\n",
		float64(out.BuggyMean)/float64(out.FixedMean))
	out.Text = b.String()
	return out, nil
}
