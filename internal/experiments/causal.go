package experiments

import (
	"fmt"
	"sort"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/core"
	"hangdoctor/internal/experiments/pool"
)

// Causal is the head-to-head evaluation of causal-chain attribution against
// main-thread-only analysis over the async corpus slice: the same traces,
// the same sampler, one doctor with NoCausal set and one without.
type Causal struct {
	Table TextTable
	// Seeded is the number of async bugs in the ground truth.
	Seeded int
	// CausalFound / MainFound count seeded bugs each mode diagnosed.
	CausalFound, MainFound int
	// CausalFalse / MainFalse count detections not matching any seeded bug
	// (on bug apps: misattributions; on controls: outright false positives).
	CausalFalse, MainFalse int
}

// Name implements Result.
func (c *Causal) Name() string { return "causal" }

// Render implements Result.
func (c *Causal) Render() string { return c.Table.Render() }

// RunCausal runs every async-slice app twice — once with causal attribution
// and once restricted to the paper's main-thread-only analysis — and scores
// both against the seeded ground truth.
func RunCausal(ctx *Context) (*Causal, error) {
	out := &Causal{
		Table: TextTable{
			Title:  "Causal attribution vs main-thread-only analysis (async corpus slice)",
			Header: []string{"App", "Bugs", "Causal hit", "Main hit", "Causal FP", "Main FP"},
		},
	}
	apps := ctx.Corpus.Async
	type appResult struct {
		causalHit, mainHit, causalFP, mainFP int
	}
	results, err := pool.Map(ctx.Workers(), len(apps), func(i int) (appResult, error) {
		a := apps[i]
		// The same seed offset for both modes: identical trace, identical
		// manifest draws, so the only variable is the analyzer.
		dc, _, err := RunHDOnApp(ctx, a, core.Config{}, 5000+uint64(i))
		if err != nil {
			return appResult{}, err
		}
		dm, _, err := RunHDOnApp(ctx, a, core.Config{NoCausal: true}, 5000+uint64(i))
		if err != nil {
			return appResult{}, err
		}
		var res appResult
		res.causalHit = len(matchDetections(a, dc.Detections()))
		res.mainHit = len(matchDetections(a, dm.Detections()))
		res.causalFP = falseDetections(a, dc.Detections())
		res.mainFP = falseDetections(a, dm.Detections())
		return res, nil
	})
	if err != nil {
		return nil, err
	}

	names := make([]int, len(apps))
	for i := range apps {
		names[i] = i
	}
	sort.Slice(names, func(i, j int) bool { return apps[names[i]].Name < apps[names[j]].Name })
	for _, i := range names {
		a, res := apps[i], results[i]
		out.Seeded += len(a.Bugs)
		out.CausalFound += res.causalHit
		out.MainFound += res.mainHit
		out.CausalFalse += res.causalFP
		out.MainFalse += res.mainFP
		out.Table.Add(a.Name, itoa(len(a.Bugs)),
			itoa(res.causalHit), itoa(res.mainHit), itoa(res.causalFP), itoa(res.mainFP))
	}
	out.Table.Add("TOTAL", itoa(out.Seeded),
		itoa(out.CausalFound), itoa(out.MainFound), itoa(out.CausalFalse), itoa(out.MainFalse))
	out.Table.Notes = append(out.Table.Notes,
		fmt.Sprintf("causal recall %d/%d vs main-thread-only %d/%d; false attributions %d vs %d; main-only analysis stalls at the await frame (FutureTask.get) or never sees the origin action",
			out.CausalFound, out.Seeded, out.MainFound, out.Seeded, out.CausalFalse, out.MainFalse))
	return out, nil
}

// falseDetections counts detections that match no seeded bug of the app.
func falseDetections(a *app.App, dets []*core.Detection) int {
	n := 0
	for _, det := range dets {
		matched := false
		for _, b := range a.Bugs {
			if det.ActionUID == b.Action.UID && det.RootCause == b.RootCauseKey() {
				matched = true
				break
			}
		}
		if !matched {
			n++
		}
	}
	return n
}
