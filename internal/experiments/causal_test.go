package experiments

import (
	"strings"
	"testing"
)

// TestCausalBeatsMainOnly is the headline claim of the causal extension:
// over the async corpus slice, causal-chain attribution recalls strictly
// more seeded bugs than the paper's main-thread-only analysis, without
// giving back precision.
func TestCausalBeatsMainOnly(t *testing.T) {
	ctx := NewContext(42, SmallScale())
	res, err := RunCausal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeded != 6 {
		t.Fatalf("async slice seeds %d bugs, want 6", res.Seeded)
	}
	if res.CausalFound != res.Seeded {
		t.Errorf("causal mode found %d/%d seeded async bugs", res.CausalFound, res.Seeded)
	}
	if res.CausalFound <= res.MainFound {
		t.Errorf("causal recall %d not strictly above main-thread-only %d", res.CausalFound, res.MainFound)
	}
	if res.CausalFalse > res.MainFalse {
		t.Errorf("causal false attributions %d exceed main-thread-only %d", res.CausalFalse, res.MainFalse)
	}
	render := res.Render()
	for _, want := range []string{"ChatRelay", "CloudNotes", "StreamCast", "TOTAL"} {
		if !strings.Contains(render, want) {
			t.Errorf("render missing %q:\n%s", want, render)
		}
	}
}

// TestCausalControlsStayClean pins the three async-clean controls: neither
// mode may report a bug on them at the default thresholds.
func TestCausalControlsStayClean(t *testing.T) {
	ctx := NewContext(42, SmallScale())
	res, err := RunCausal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(res.Render(), "\n") {
		for _, control := range []string{"FitSync", "PodGrid", "InkBoard"} {
			if !strings.HasPrefix(strings.TrimSpace(line), control) {
				continue
			}
			fields := strings.Fields(line)
			// App Bugs CausalHit MainHit CausalFP MainFP
			if len(fields) == 6 && (fields[4] != "0" || fields[5] != "0") {
				t.Errorf("control %s reported false positives: %s", control, line)
			}
		}
	}
}
