package experiments

import "fmt"

// Runner produces one artifact.
type Runner func(*Context) (Result, error)

// Registry maps artifact names to their runners, in paper order.
func Registry() []struct {
	Name string
	Run  Runner
} {
	return []struct {
		Name string
		Run  Runner
	}{
		{"table1", func(c *Context) (Result, error) { return RunTable1(c), nil }},
		{"table2", func(c *Context) (Result, error) { return RunTable2(c) }},
		{"table3", func(c *Context) (Result, error) { return RunTable3(c) }},
		{"table4", func(c *Context) (Result, error) { return RunTable4(c) }},
		{"table5", func(c *Context) (Result, error) { return RunTable5(c) }},
		{"table6", func(c *Context) (Result, error) { return RunTable6(c) }},
		{"fig1", func(c *Context) (Result, error) { return RunFig1(c) }},
		{"fig2b", func(c *Context) (Result, error) { return RunFig2b(c) }},
		{"fig4", func(c *Context) (Result, error) { return RunFig4(c) }},
		{"fig5", func(c *Context) (Result, error) { return RunFig5(c) }},
		{"fig6", func(c *Context) (Result, error) { return RunFig6(c) }},
		{"fig7", func(c *Context) (Result, error) { return RunFig7(c) }},
		{"fig8", func(c *Context) (Result, error) { return RunFig8(c) }},
		{"ablation", func(c *Context) (Result, error) { return RunAblations(c) }},
		{"testbed", func(c *Context) (Result, error) { return RunTestbed(c) }},
		{"fixverify", func(c *Context) (Result, error) { return RunFixVerify(c) }},
		{"longitudinal", func(c *Context) (Result, error) { return RunLongitudinal(c) }},
		{"sweep", func(c *Context) (Result, error) { return RunThresholdSweep(c) }},
		{"devices", func(c *Context) (Result, error) { return RunDeviceGenerality(c) }},
		{"impact", func(c *Context) (Result, error) { return RunImpact(c) }},
		{"seeds", func(c *Context) (Result, error) { return RunSeedRobustness(c) }},
		{"causal", func(c *Context) (Result, error) { return RunCausal(c) }},
	}
}

// Run executes one named experiment.
func Run(ctx *Context, name string) (Result, error) {
	for _, e := range Registry() {
		if e.Name == name {
			return e.Run(ctx)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", name)
}
