package experiments

import (
	"fmt"
	"sort"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/core"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/experiments/pool"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
)

// LongitudinalDays is how many simulated days the fleet runs (the paper's
// field study ran 60; detection latencies converge much earlier).
const LongitudinalDays = 30

// BugLatency is the fleet-level detection latency of one bug.
type BugLatency struct {
	BugID string
	// FirstDay is the earliest simulated day (0-based) any user's doctor
	// confirmed the bug; -1 if never.
	FirstDay int
	// UsersFound is how many of the fleet's devices had confirmed it by the
	// end of the study.
	UsersFound int
}

// Longitudinal runs the paper's deployment model over simulated weeks: a
// small fleet of mixed-profile users lives with the buggy apps, and we
// measure how quickly Hang Doctor's two-phase pipeline converges on each
// bug in the wild — the "track the responsiveness performance of their apps
// in the wild" workflow of §3.1.
type Longitudinal struct {
	Table TextTable
	// Latencies per app/bug.
	Latencies []BugLatency
	Users     int
	Days      int
	// MedianFirstDay across bugs that were found.
	MedianFirstDay float64
}

// Name implements Result.
func (l *Longitudinal) Name() string { return "longitudinal" }

// Render implements Result.
func (l *Longitudinal) Render() string { return l.Table.Render() }

// longitudinalApps keeps the study affordable while covering every bug
// signature.
var longitudinalApps = []string{"K9-Mail", "AndStatus", "Omni-Notes", "CycleStreets"}

// RunLongitudinal runs the fleet and computes per-bug detection latency.
func RunLongitudinal(ctx *Context) (*Longitudinal, error) {
	profiles := corpus.DefaultProfiles()
	users := ctx.Scale.Users
	if users < len(profiles) {
		users = len(profiles)
	}
	out := &Longitudinal{
		Users: users,
		Days:  LongitudinalDays,
		Table: TextTable{
			Title: fmt.Sprintf("Longitudinal field study: %d users, %d days", users, LongitudinalDays),
			Header: []string{"Bug", "fleet first (day)", "median device (day)",
				"devices", "manifest prob"},
		},
	}

	type bugStat struct {
		// deviceDays holds each finding device's first-detection day.
		deviceDays []float64
	}
	stats := map[string]*bugStat{}

	// Per-user environment richness: in the wild, whether a bug's trigger
	// state exists at all (a huge mailbox, a dense map region) varies per
	// user. A lognormal spread around ~0.15 puts the fleet in the rare-bug
	// regime where detection latency is the interesting quantity — and
	// where some devices legitimately never see some bugs (the <100% device
	// coverage of the paper's Figure 2(b)).
	richRng := simrand.New(ctx.Seed).Derive("longitudinal-richness")
	richness := make([]float64, users)
	for u := range richness {
		r := 0.15 * richRng.LogNormal(0, 0.8)
		if r > 1 {
			r = 1
		}
		if r < 0.02 {
			r = 0.02
		}
		richness[u] = r
	}

	// Flatten the fleet to one unit per (app, user) device-run. Each unit's
	// trace and session are seeded by (ctx.Seed, user) and richness is
	// precomputed above, so units are independent; per-bug day lists merge
	// below in the exact order the serial nested loop produced them.
	nApps := len(longitudinalApps)
	units, err := pool.Map(ctx.Workers(), nApps*users, func(k int) (map[string]float64, error) {
		appName := longitudinalApps[k/users]
		u := k % users
		a := ctx.Corpus.MustApp(appName)
		p := profiles[u%len(profiles)]
		seed := ctx.Seed + uint64(9000+u*31)
		trace := corpus.LongitudinalTrace(a, p, seed, LongitudinalDays)
		dev := appDevice()
		dev.EnvRichness = richness[u]
		s, err := app.NewSession(a, dev, seed)
		if err != nil {
			return nil, err
		}
		d := core.New(core.Config{})
		d.Attach(s)
		s.AddListener(d)
		corpus.RunLongitudinal(s, trace)
		days := map[string]float64{}
		for id, det := range matchDetections(a, d.Detections()) {
			days[id] = float64(det.FirstAt / simclock.Time(simclock.Day))
		}
		return days, nil
	})
	if err != nil {
		return nil, err
	}
	for _, days := range units {
		for id, day := range days {
			st, ok := stats[id]
			if !ok {
				st = &bugStat{}
				stats[id] = st
			}
			st.deviceDays = append(st.deviceDays, day)
		}
	}

	var ids []string
	for id := range stats {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var firstDays []float64
	manifestOf := func(id string) float64 {
		for _, b := range ctx.Corpus.Table5Bugs() {
			if b.ID == id {
				return b.Op.Manifest
			}
		}
		return 0
	}
	for _, id := range ids {
		st := stats[id]
		sort.Float64s(st.deviceDays)
		fleetFirst := int(st.deviceDays[0])
		medianDevice := st.deviceDays[len(st.deviceDays)/2]
		firstDays = append(firstDays, medianDevice)
		out.Latencies = append(out.Latencies, BugLatency{
			BugID: id, FirstDay: fleetFirst, UsersFound: len(st.deviceDays),
		})
		out.Table.Add(id, itoa(fleetFirst), fmt.Sprintf("%.0f", medianDevice),
			fmt.Sprintf("%d/%d", len(st.deviceDays), users), f2(manifestOf(id)))
	}
	if len(firstDays) > 0 {
		sort.Float64s(firstDays)
		out.MedianFirstDay = firstDays[len(firstDays)/2]
	}
	out.Table.Notes = append(out.Table.Notes,
		fmt.Sprintf("median per-device detection day across bugs: %.0f of %d; a single power user finds most bugs within the first days — the value of fleet-scale deployment", out.MedianFirstDay, LongitudinalDays),
		"the paper's 60-day study found all manifesting bugs; latency depends on action frequency and manifestation probability")
	return out, nil
}
