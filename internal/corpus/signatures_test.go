package corpus

import (
	"testing"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/cpu"
	"hangdoctor/internal/perf"
	"hangdoctor/internal/simclock"
)

// expectedSignatures encodes Table 6's design: for each offline-missed bug,
// which of the three S-Checker conditions (ctx>0, task-clock>1.7e8,
// page-faults>500) must fire on the majority of its manifesting executions.
// This is the regression guard that keeps corpus tuning honest: any cost or
// noise change that flips a signature fails here, not in a downstream
// experiment.
var expectedSignatures = map[string][3]bool{
	// ctx, task, pf
	"AndStatus/303-transform":         {true, false, false},
	"AndStatus/303-prettify":          {false, false, true},
	"CycleStreets/117-readMapData":    {true, false, false},
	"CycleStreets/117-fetchTile":      {true, false, false},
	"CycleStreets/117-loadRoute":      {true, false, false},
	"K9-Mail/1007-clean":              {true, true, true},
	"K9-Mail/1007-parse":              {true, true, true},
	"Omni-Notes/253-getNotes":         {false, false, true},
	"Omni-Notes/253-getAttachments":   {false, false, true},
	"Omni-Notes/253-readMediaIndex":   {false, false, true},
	"QKSMS/382-formatThread":          {true, true, false},
	"QKSMS/382-substitute":            {true, true, false},
	"QKSMS/382-backupLoop":            {true, true, false},
	"AntennaPod/1921-buildViewModels": {true, true, false},
	"AntennaPod/1921-extractChapters": {true, true, false},
	"Merchant/17-loadSnapshot":        {true, false, false},
	"UOITDC/3-parseTimetable":         {true, true, true},
	"UOITDC/3-importCalendar":         {true, true, true},
	"SageMath/84-toJson-cell":         {true, true, true},
	"SageMath/84-toJson-session":      {true, true, true},
	"RadioDroid/29-rebuildIndex":      {false, false, true},
	"Git@OSC/89-refreshMetadata":      {true, false, false},
	"SkyTube/88-decodeChannelFeed":    {true, true, true},
}

// TestValidationBugSignatures drives every offline-missed bug's action until
// enough manifestations are observed and checks the majority-vote condition
// signature against the Table 6 design.
func TestValidationBugSignatures(t *testing.T) {
	c := Build()
	bugs := c.MissedOfflineBugs()
	if len(bugs) != len(expectedSignatures) {
		t.Fatalf("validation bugs = %d, signature table = %d", len(bugs), len(expectedSignatures))
	}
	for _, b := range bugs {
		want, ok := expectedSignatures[b.ID]
		if !ok {
			t.Errorf("no expected signature for %s", b.ID)
			continue
		}
		bug, wantSig := b, want
		t.Run(bug.ID, func(t *testing.T) {
			b, want := bug, wantSig
			s, err := app.NewSession(b.App, app.LGV10(), 23)
			if err != nil {
				t.Fatal(err)
			}
			var hits [3]int
			manifests := 0
			for try := 0; try < 120 && manifests < 9; try++ {
				ps := perf.Open(s.Clk,
					[]*cpu.Thread{s.MainThread(), s.RenderThread()},
					[]perf.Event{perf.ContextSwitches, perf.TaskClock, perf.PageFaults},
					s.PerfConfig())
				exec := s.Perform(b.Action)
				r := ps.Stop()
				s.Idle(simclock.Second)
				got := exec.BugCaused(100 * simclock.Millisecond)
				if got == nil || got.ID != b.ID {
					continue
				}
				manifests++
				if r.Diff(perf.ContextSwitches) > 0 {
					hits[0]++
				}
				if r.Diff(perf.TaskClock) > 170_000_000 {
					hits[1]++
				}
				if r.Diff(perf.PageFaults) > 500 {
					hits[2]++
				}
			}
			if manifests < 5 {
				t.Fatalf("bug manifested only %d times", manifests)
			}
			names := [3]string{"context-switches", "task-clock", "page-faults"}
			anyFired := false
			for i := range want {
				majority := hits[i]*2 > manifests
				if majority {
					anyFired = true
				}
				if majority != want[i] {
					t.Errorf("%s: majority=%v (hits %d/%d), designed %v",
						names[i], majority, hits[i], manifests, want[i])
				}
			}
			if !anyFired {
				t.Error("no condition fires: S-Checker would never flag this bug")
			}
		})
	}
}
