package corpus

import (
	"fmt"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
)

// Generated-app name material: the corpus pads out to 114 apps with
// bug-free apps across the same Play Store categories the paper samples.
var genCategories = []string{
	"Tools", "Social", "Productivity", "Communication", "Travel & Local",
	"Music & Audio", "Photography", "Education", "Business", "Media & Video",
	"Personalization", "Books", "Entertainment", "Video Players",
}

var genNameA = []string{
	"Swift", "Nova", "Pocket", "Clear", "Quick", "Open", "Micro", "Hyper",
	"Silent", "Bright", "Simple", "Ultra", "Metro", "Prime", "Echo",
}

var genNameB = []string{
	"Notes", "Weather", "Reader", "Chat", "Budget", "Tracker", "Player",
	"Scanner", "Timer", "Gallery", "Launcher", "Radio", "Maps", "Mail",
	"Tasks",
}

var genDownloads = []string{"100+", "1K+", "5K+", "10K+", "50K+", "100K+", "500K+", "1M+"}

// generatedApps builds n deterministic bug-free apps. Each has a handful of
// actions mixing sub-perceivable work with occasionally heavy UI operations,
// so runtime detectors see realistic false-positive pressure without any
// true soft hang bug.
func generatedApps(b *builder, n int) []*app.App {
	rng := simrand.New(0xC0FFEE).Derive("generated-apps")
	out := make([]*app.App, 0, n)
	seen := map[string]bool{"": true}
	for i := 0; i < n; i++ {
		var name string
		for attempt := 0; ; attempt++ {
			name = genNameA[rng.Intn(len(genNameA))] + genNameB[rng.Intn(len(genNameB))]
			if attempt > 0 {
				name = fmt.Sprintf("%s%d", name, attempt)
			}
			if !seen[name] {
				break
			}
		}
		seen[name] = true
		out = append(out, generatedApp(b, rng.Derive(name), name, i))
	}
	return out
}

// generatedApp builds one clean app from its private RNG stream.
func generatedApp(b *builder, rng *simrand.Rand, name string, idx int) *app.App {
	a := &app.App{
		Name:      name,
		Commit:    fmt.Sprintf("%07x", rng.Uint64()&0xFFFFFFF),
		Category:  genCategories[idx%len(genCategories)],
		Downloads: genDownloads[rng.Intn(len(genDownloads))],
		Registry:  b.reg,
	}
	uiKeys := []string{
		"android.widget.ListView.layoutChildren",
		"android.view.LayoutInflater.inflate",
		"android.widget.TextView.setText",
		"android.view.View.invalidate",
		"android.widget.ImageView.setImageBitmap",
	}
	nActions := 3 + rng.Intn(4)
	for j := 0; j < nActions; j++ {
		actName := fmt.Sprintf("Screen %d", j+1)
		key := uiKeys[rng.Intn(len(uiKeys))]
		var ops []*app.Op
		switch {
		case j == 0 && rng.Bool(0.55):
			// One occasionally heavy UI screen: a legitimate soft hang.
			heavy := app.UIWork(simclock.Duration(90+rng.Intn(160))*simclock.Millisecond, 10+rng.Intn(10))
			op := b.uiOp(key, heavy)
			op.Manifest = 0.35 + rng.Float64()*0.4
			op.Light = heavy.Light(0.15)
			ops = append(ops, op)
		case rng.Bool(0.3):
			// Moderate UI work, borderline perceivable.
			ops = append(ops, b.uiOp(key, app.UIWork(simclock.Duration(60+rng.Intn(60))*simclock.Millisecond, 6+rng.Intn(6))))
		default:
			ops = append(ops, b.quickUIOp(key))
		}
		a.Actions = append(a.Actions, action(actName, "onClick", 0.5+rng.Float64()*2, ops...))
	}
	return a
}
