package corpus

import (
	"fmt"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
)

// UserProfile shapes how one user drives an app over days: how often they
// pick it up, how long they stay, and when they are awake. The paper's
// field study (20 users, 60 days) is modeled as a mix of these.
type UserProfile struct {
	Name string
	// SessionsPerDay is the mean number of app sessions per day.
	SessionsPerDay float64
	// ActionsPerSession is the mean actions per session (geometric-ish).
	ActionsPerSession float64
	// Think is the median gap between actions within a session.
	Think simclock.Duration
	// WakeHour and SleepHour bound the daily activity window.
	WakeHour, SleepHour int
}

// DefaultProfiles returns the light/regular/power mix used by the
// longitudinal experiments.
func DefaultProfiles() []UserProfile {
	return []UserProfile{
		{Name: "light", SessionsPerDay: 2, ActionsPerSession: 5, Think: 4 * simclock.Second, WakeHour: 8, SleepHour: 22},
		{Name: "regular", SessionsPerDay: 5, ActionsPerSession: 9, Think: 2 * simclock.Second, WakeHour: 7, SleepHour: 23},
		{Name: "power", SessionsPerDay: 10, ActionsPerSession: 14, Think: simclock.Second, WakeHour: 6, SleepHour: 24},
	}
}

// TimedAction is one scheduled user action in a longitudinal trace.
type TimedAction struct {
	At     simclock.Time
	Action *app.Action
}

// LongitudinalTrace lays out days of usage for one user on one app:
// sessions scattered through the user's waking hours, weighted action picks
// inside each session. The result is sorted by time and deterministic per
// (app, profile, seed).
func LongitudinalTrace(a *app.App, p UserProfile, seed uint64, days int) []TimedAction {
	rng := simrand.New(seed).Derive(fmt.Sprintf("longitudinal/%s/%s", a.Name, p.Name))
	weights := make([]float64, len(a.Actions))
	for i, act := range a.Actions {
		weights[i] = act.Weight
	}
	var out []TimedAction
	for day := 0; day < days; day++ {
		dayStart := simclock.Time(day) * simclock.Time(simclock.Day)
		nSessions := int(rng.Jitter(p.SessionsPerDay, 0.4) + 0.5)
		if nSessions < 1 {
			nSessions = 1
		}
		wakeSpanHours := p.SleepHour - p.WakeHour
		if wakeSpanHours <= 0 {
			wakeSpanHours = 14
		}
		for s := 0; s < nSessions; s++ {
			// Session start uniform in the waking window.
			offset := simclock.Duration(p.WakeHour)*simclock.Hour +
				simclock.Duration(rng.Int63n(int64(wakeSpanHours)*int64(simclock.Hour)))
			at := dayStart.Add(offset)
			nActions := int(rng.Jitter(p.ActionsPerSession, 0.5) + 0.5)
			if nActions < 1 {
				nActions = 1
			}
			for k := 0; k < nActions; k++ {
				out = append(out, TimedAction{At: at, Action: a.Actions[rng.WeightedPick(weights)]})
				at = at.Add(simclock.Duration(rng.Jitter(float64(p.Think), 0.5)))
			}
		}
	}
	// Sessions were generated per-day in time order except within a day;
	// sort by time (stable outcome since times are distinct with
	// probability ~1; ties keep generation order).
	sortTimedActions(out)
	return out
}

// sortTimedActions sorts by At, keeping generation order on ties
// (insertion-friendly: traces are near-sorted already).
func sortTimedActions(ta []TimedAction) {
	for i := 1; i < len(ta); i++ {
		for j := i; j > 0 && ta[j].At < ta[j-1].At; j-- {
			ta[j], ta[j-1] = ta[j-1], ta[j]
		}
	}
}

// RunLongitudinal executes a timed trace on a session, advancing virtual
// time to each action's scheduled slot (a Perform can overrun its slot; in
// that case the next action follows immediately, like a real impatient
// user). It returns the execution records aligned with the trace.
func RunLongitudinal(s *app.Session, trace []TimedAction) []*app.ActionExec {
	execs := make([]*app.ActionExec, 0, len(trace))
	for _, ta := range trace {
		if now := s.Clk.Now(); ta.At > now {
			s.Idle(ta.At.Sub(now))
		}
		execs = append(execs, s.Perform(ta.Action))
	}
	return execs
}
