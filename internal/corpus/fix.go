package corpus

import (
	"fmt"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/stack"
)

// FixedApp returns a deep copy of a with the given bug fixed the way the
// paper's developers fix theirs (§2.1, §4.2): the blocking operation moves
// to a worker thread, leaving only a few milliseconds of hand-off on the
// main thread. The returned app carries no ground-truth entry for the fixed
// bug, so the same evaluation harness verifies the fix — "we fix the bug
// ourselves and verify that the app does not have any more soft hangs".
func FixedApp(a *app.App, bugID string) (*app.App, error) {
	var target *app.Bug
	for _, b := range a.Bugs {
		if b.ID == bugID {
			target = b
		}
	}
	if target == nil {
		return nil, fmt.Errorf("corpus: app %s has no bug %q", a.Name, bugID)
	}

	fixed := &app.App{
		Name:      a.Name + " (fix " + bugID + ")",
		Commit:    a.Commit + "+fix",
		Category:  a.Category,
		Downloads: a.Downloads,
		Registry:  a.Registry,
	}
	// Deep-copy the remaining bugs so Finalize relinks them to the clone
	// without mutating the original app's ground truth.
	bugCopies := map[*app.Bug]*app.Bug{}
	for _, b := range a.Bugs {
		if b == target {
			continue
		}
		nb := &app.Bug{ID: b.ID, IssueID: b.IssueID, Description: b.Description}
		bugCopies[b] = nb
		fixed.Bugs = append(fixed.Bugs, nb)
	}
	for _, act := range a.Actions {
		nact := &app.Action{
			Name:    act.Name,
			Kind:    act.Kind,
			Weight:  act.Weight,
			Handler: act.Handler,
		}
		for _, ev := range act.Events {
			nev := &app.InputEvent{Name: ev.Name}
			for _, op := range ev.Ops {
				nop := *op // value copy; shared API/Via/Self pointers are immutable
				if op.Bug == target {
					nop = asyncHandoff(op)
				} else if op.Bug != nil {
					nop.Bug = bugCopies[op.Bug]
				}
				nev.Ops = append(nev.Ops, &nop)
			}
			nact.Events = append(nact.Events, nev)
		}
		fixed.Actions = append(fixed.Actions, nact)
	}
	if err := fixed.Finalize(); err != nil {
		return nil, fmt.Errorf("corpus: finalizing fixed app: %w", err)
	}
	return fixed, nil
}

// asyncHandoff is the fixed form of a buggy op: the main thread only posts
// the work to an AsyncTask and wires the completion callback (~4 ms), as in
// the paper's Figure 1 fix.
func asyncHandoff(op *app.Op) app.Op {
	stub := app.CostModel{
		CPU:                4 * simclock.Millisecond,
		Jitter:             0.2,
		MinorFaultsPerSec:  400,
		InstructionsPerSec: 1.0e9,
	}
	fixedOp := app.Op{
		Name:     op.Name + "#async",
		Heavy:    stub,
		Manifest: 1,
	}
	// The hand-off runs app code (execute + onPostExecute wiring), so the
	// stack shows the AsyncTask site rather than the old blocking API.
	frame := op.LeafFrame()
	fixedOp.Self = &stack.Frame{
		Class:  frame.Class + "$AsyncFix",
		Method: "execute",
		File:   frame.File,
		Line:   frame.Line,
	}
	return fixedOp
}
