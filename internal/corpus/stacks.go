package corpus

import (
	"hangdoctor/internal/android/app"
	"hangdoctor/internal/simrand"
	"hangdoctor/internal/stack"
)

// DispatchStacks returns every distinct precomputed stack a sampler can
// observe while the app executes: each action's caller stack plus each op's
// full dispatch stack. The app must be finalized. The returned stacks are
// the same immutable values Session dispatches sample, so frames carry the
// symbol IDs App.Finalize assigned.
func DispatchStacks(a *app.App) []*stack.Stack {
	var out []*stack.Stack
	for _, act := range a.Actions {
		if cs := act.CallerStack(); cs != nil {
			out = append(out, cs)
		}
		for _, ev := range act.Events {
			out = append(out, ev.DispatchStacks()...)
		}
	}
	return out
}

// SampledTraces synthesizes the stack set the Trace Collector would gather
// during one soft hang of app a: n samples drawn from the app's precomputed
// dispatch and caller stacks, with a deterministic seed-driven mix. A
// fraction of the samples are truncated partial dumps (outer frames lost),
// exercising caller-poor stacks the way a loaded device does. Diagnoser
// tests and benchmarks use this to get corpus-shaped traces without running
// a session.
func SampledTraces(a *app.App, seed uint64, n int) []*stack.Stack {
	pool := DispatchStacks(a)
	if len(pool) == 0 {
		return nil
	}
	rng := simrand.New(seed).Derive("sampled/" + a.Name)
	out := make([]*stack.Stack, 0, n)
	for i := 0; i < n; i++ {
		st := pool[rng.Intn(len(pool))]
		if rng.Bool(0.15) {
			// Partial dump: keep a random leaf-side prefix (at least one
			// frame), as fault-injected truncation would.
			st = st.Truncate(1 + rng.Intn(st.Depth()))
		}
		out = append(out, st)
	}
	return out
}
