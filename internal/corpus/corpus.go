// Package corpus defines the application universe Hang Doctor is evaluated
// on, standing in for the 114 real open-source apps of the paper's Table 5:
//
//   - the 16 Table-5 apps, modeled bug-by-bug from the paper's descriptions
//     (34 soft hang bugs total, 23 of which are invisible to offline
//     scanning because their root cause is an undocumented blocking API or
//     self-developed code);
//   - the 8 Table-1 motivation apps with well-known soft hang bugs, used for
//     the timeout study (Table 2) and as the S-Checker training set;
//   - 90 generated bug-free apps that round the corpus out to 114 and
//     exercise the false-positive path (UI-only soft hangs);
//   - a separate async slice (async.go) of 6 asynchronous-bug apps plus 3
//     async-clean controls, kept outside the frozen 114-app universe, that
//     exercises causal-chain attribution.
//
// Every app shares one api.Registry so the known-blocking database — the
// artifact Hang Doctor's feedback loop extends — is global, as in the paper.
package corpus

import (
	"fmt"
	"sort"
	"sync"

	"hangdoctor/internal/android/api"
	"hangdoctor/internal/android/app"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
	"hangdoctor/internal/stack"
)

// Corpus is the full evaluation universe.
type Corpus struct {
	Registry *api.Registry
	// Apps is every app, Table-5 first, then motivation, then generated.
	Apps []*app.App
	// Table5 are the 16 apps with seeded soft hang bugs (paper Table 5).
	Table5 []*app.App
	// Motivation are the 8 Table-1 apps with well-known bugs.
	Motivation []*app.App
	// Async are the asynchronous-bug apps and their async-clean controls
	// (see async.go). They share the registry but live outside Apps: the
	// 114-app universe and its Table-5 counts are the paper's corpus and
	// stay frozen; the async slice extends the evaluation, it does not
	// rewrite it.
	Async []*app.App
}

// Build assembles the corpus. It panics on any internal inconsistency
// (corpus definitions are static data; a malformed app is a programming
// error, not a runtime condition).
func Build() *Corpus {
	reg := api.NewRegistry()
	b := &builder{reg: reg}
	c := &Corpus{Registry: reg}

	c.Table5 = table5Apps(b)
	c.Motivation = motivationApps(b)
	gen := generatedApps(b, 114-len(c.Table5)-len(c.Motivation))
	c.Async = asyncApps(b)

	c.Apps = append(c.Apps, c.Table5...)
	c.Apps = append(c.Apps, c.Motivation...)
	c.Apps = append(c.Apps, gen...)

	for _, a := range c.Apps {
		if err := a.Finalize(); err != nil {
			panic("corpus: " + err.Error())
		}
	}
	for _, a := range c.Async {
		if err := a.Finalize(); err != nil {
			panic("corpus: " + err.Error())
		}
	}
	return c
}

var (
	sharedOnce   sync.Once
	sharedCorpus *Corpus
)

// Shared returns a process-wide memoized corpus. Build is deterministic —
// the class/API tables, the 114 apps, and every derived trace are identical
// across calls — so rebuilding the corpus per context or per benchmark
// iteration is pure waste. The one piece of mutable state, the registry's
// known-blocking database (extended at runtime by Hang Doctor's feedback
// loop), is reset to its shipped snapshot on every call, so each caller
// starts from exactly the state a fresh Build would hand it. Callers that
// mutate anything beyond the known-blocking database must use Build.
func Shared() *Corpus {
	sharedOnce.Do(func() { sharedCorpus = Build() })
	sharedCorpus.Registry.SnapshotYear(api.ShippedYear)
	return sharedCorpus
}

// App returns the app with the given name (searching Apps, then Async).
func (c *Corpus) App(name string) (*app.App, bool) {
	for _, a := range c.Apps {
		if a.Name == name {
			return a, true
		}
	}
	for _, a := range c.Async {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// AsyncBugs returns the seeded bugs of the async slice, sorted by ID.
func (c *Corpus) AsyncBugs() []*app.Bug {
	var out []*app.Bug
	for _, a := range c.Async {
		out = append(out, a.Bugs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MustApp returns the named app or panics.
func (c *Corpus) MustApp(name string) *app.App {
	a, ok := c.App(name)
	if !ok {
		panic("corpus: no app " + name)
	}
	return a
}

// AllBugs returns every seeded bug across the corpus, sorted by ID.
func (c *Corpus) AllBugs() []*app.Bug {
	var out []*app.Bug
	for _, a := range c.Apps {
		out = append(out, a.Bugs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Table5Bugs returns the 34 bugs of the Table-5 apps.
func (c *Corpus) Table5Bugs() []*app.Bug {
	var out []*app.Bug
	for _, a := range c.Table5 {
		out = append(out, a.Bugs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OfflineVisible reports whether an offline scanner with the registry's
// current known-blocking database detects the bug: some API in the visible
// prefix of its call chain is known blocking.
func (c *Corpus) OfflineVisible(b *app.Bug) bool {
	for _, a := range b.Op.VisibleAPIs() {
		if c.Registry.IsKnownBlocking(a.Key()) {
			return true
		}
	}
	return false
}

// MissedOfflineBugs returns Table-5 bugs invisible to offline scanning (the
// paper's "MO" column, 23 bugs — the validation set).
func (c *Corpus) MissedOfflineBugs() []*app.Bug {
	var out []*app.Bug
	for _, b := range c.Table5Bugs() {
		if !c.OfflineVisible(b) {
			out = append(out, b)
		}
	}
	return out
}

// KnownBugs returns Table-5 bugs an offline scanner does detect (the
// training-set pool, 11 bugs).
func (c *Corpus) KnownBugs() []*app.Bug {
	var out []*app.Bug
	for _, b := range c.Table5Bugs() {
		if c.OfflineVisible(b) {
			out = append(out, b)
		}
	}
	return out
}

// builder provides compact app-definition helpers over the shared registry.
type builder struct {
	reg *api.Registry
}

// class defines (or fetches) a class.
func (b *builder) class(name string, ui bool, lib string, closed bool) *api.Class {
	return b.reg.DefineClass(name, ui, lib, closed)
}

// api defines a method; knownSince 0 marks an API never documented blocking.
func (b *builder) api(c *api.Class, method string, line, knownSince int) *api.API {
	if a, ok := b.reg.API(c.Name + "." + method); ok {
		return a
	}
	a := b.reg.DefineAPI(c, method, "", line, knownSince)
	if knownSince != 0 && knownSince <= 2017 {
		b.reg.AddKnownBlocking(a.Key())
	}
	return a
}

// platform fetches a preloaded platform API by key, panicking if absent.
func (b *builder) platform(key string) *api.API {
	a, ok := b.reg.API(key)
	if !ok {
		panic("corpus: missing platform API " + key)
	}
	return a
}

// pmuScale derives a per-op micro-architectural profile multiplier from the
// op's identity: real operations differ by multiples in cache/instruction
// behaviour even within one archetype, which is why PMU events separate
// bugs from UI work poorly (Table 3). Deterministic per name.
func pmuScale(name string) float64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return simrand.New(h).LogNormal(0, 1.05)
}

// op builds an API-call op.
func (b *builder) op(name string, a *api.API, via []*api.API, cost app.CostModel, manifest float64, bug *app.Bug) *app.Op {
	cost.PMUScale = pmuScale(a.Key())
	return &app.Op{Name: name, API: a, Via: via, Heavy: cost,
		Light: cost.Light(0.06), Manifest: manifest, Bug: bug}
}

// selfOp builds a self-developed-code op.
func (b *builder) selfOp(class, method, file string, line int, cost app.CostModel, manifest float64, bug *app.Bug) *app.Op {
	cost.PMUScale = pmuScale(class + "." + method)
	return &app.Op{
		Name:     method,
		Self:     &stack.Frame{Class: class, Method: method, File: file, Line: line},
		Heavy:    cost,
		Light:    cost.Light(0.06),
		Manifest: manifest,
		Bug:      bug,
	}
}

// uiOp builds an always-manifesting UI op on a platform UI API. The PMU
// profile varies by API, and the render-to-main work ratio varies by call
// site: the same setText drives very different view trees in different
// apps, so the render thread receives anywhere from ~0.6x to ~1.6x the
// main-thread CPU. Without that spread the main-minus-render time
// difference of UI work would be unrealistically close to zero.
func (b *builder) uiOp(key string, cost app.CostModel) *app.Op {
	cost.PMUScale = pmuScale(key)
	if cost.Frames > 0 && cost.PerFrame > 0 {
		site := fmt.Sprintf("%s/%d/%d", key, cost.CPU, cost.Frames)
		ratio := pmuJitterAt(site, 0.28)
		cost.PerFrame = simclock.Duration(float64(cost.PerFrame) * ratio)
	}
	return &app.Op{Name: keyMethod(key), API: b.platform(key), Heavy: cost}
}

// pmuJitterAt returns a deterministic lognormal factor for a name at the
// given sigma.
func pmuJitterAt(name string, sigma float64) float64 {
	h := uint64(1099511628211)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 16777619
	}
	return simrand.New(h).LogNormal(0, sigma)
}

// quickUIOp is sub-perceivable UI housekeeping present in most actions.
func (b *builder) quickUIOp(key string) *app.Op {
	return b.uiOp(key, app.UIWork(18*simclock.Millisecond, 3))
}

func keyMethod(key string) string {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '.' {
			return key[i+1:]
		}
	}
	return key
}

// action assembles a single-event action from ops.
func action(name, kind string, weight float64, ops ...*app.Op) *app.Action {
	return &app.Action{
		Name:   name,
		Kind:   kind,
		Weight: weight,
		Events: []*app.InputEvent{{Name: "evt0", Ops: ops}},
	}
}

// ms is a duration literal helper.
func ms(v int) simclock.Duration { return simclock.Duration(v) * simclock.Millisecond }

// traceKey identifies a memoized trace. The app is keyed by pointer: a
// trace holds *Action pointers owned by that specific App value, so an
// entry is only valid for the corpus instance that produced it. Shared()
// callers all hit the same pointers; fresh Build() corpora get their own
// entries.
type traceKey struct {
	app  *app.App
	kind byte // 'u' = user trace, 'm' = monkey trace
	seed uint64
	n    int
}

// traceCache memoizes generated traces across harnesses and experiment
// runs (traceKey -> []*app.Action). Trace generation is deterministic, so
// a cached slice is bit-for-bit what a fresh generation would produce.
var traceCache sync.Map

// Trace generates a deterministic user trace for an app: n weighted action
// picks. The same (app, seed, n) always yields the same trace. The returned
// slice is memoized and shared between callers — it must not be mutated.
func Trace(a *app.App, seed uint64, n int) []*app.Action {
	key := traceKey{app: a, kind: 'u', seed: seed, n: n}
	if v, ok := traceCache.Load(key); ok {
		return v.([]*app.Action)
	}
	rng := simrand.New(seed).Derive("trace/" + a.Name)
	weights := make([]float64, len(a.Actions))
	for i, act := range a.Actions {
		weights[i] = act.Weight
	}
	out := make([]*app.Action, n)
	for i := range out {
		out[i] = a.Actions[rng.WeightedPick(weights)]
	}
	v, _ := traceCache.LoadOrStore(key, out)
	return v.([]*app.Action)
}

// MonkeyTrace generates an automated-input trace in the style of Android's
// Monkey: n uniformly random action picks, ignoring the app's real usage
// weights. The paper's §4.6 test-bed discussion runs on traces like these.
// Like Trace, the returned slice is memoized and must not be mutated.
func MonkeyTrace(a *app.App, seed uint64, n int) []*app.Action {
	key := traceKey{app: a, kind: 'm', seed: seed, n: n}
	if v, ok := traceCache.Load(key); ok {
		return v.([]*app.Action)
	}
	rng := simrand.New(seed).Derive("monkey/" + a.Name)
	out := make([]*app.Action, n)
	for i := range out {
		out[i] = a.Actions[rng.Intn(len(a.Actions))]
	}
	v, _ := traceCache.LoadOrStore(key, out)
	return v.([]*app.Action)
}

// RunTrace executes a trace on a session with think-time gaps between
// actions, returning every execution record.
func RunTrace(s *app.Session, trace []*app.Action, think simclock.Duration) []*app.ActionExec {
	execs := make([]*app.ActionExec, 0, len(trace))
	for _, act := range trace {
		execs = append(execs, s.Perform(act))
		s.Idle(think)
	}
	return execs
}

// CheckInvariants validates global corpus invariants and returns an error
// describing the first violation; tests and Build-time checks use it.
func (c *Corpus) CheckInvariants() error {
	if len(c.Apps) != 114 {
		return fmt.Errorf("corpus has %d apps, want 114", len(c.Apps))
	}
	if len(c.Table5) != 16 {
		return fmt.Errorf("corpus has %d Table-5 apps, want 16", len(c.Table5))
	}
	if len(c.Motivation) != 8 {
		return fmt.Errorf("corpus has %d motivation apps, want 8", len(c.Motivation))
	}
	if got := len(c.Table5Bugs()); got != 34 {
		return fmt.Errorf("Table-5 bugs = %d, want 34", got)
	}
	if got := len(c.MissedOfflineBugs()); got != 23 {
		return fmt.Errorf("missed-offline bugs = %d, want 23", got)
	}
	if len(c.Async) != 9 {
		return fmt.Errorf("corpus has %d async apps, want 9", len(c.Async))
	}
	if got := len(c.AsyncBugs()); got != 6 {
		return fmt.Errorf("async bugs = %d, want 6", got)
	}
	asyncBugApps, asyncClean := 0, 0
	for _, a := range c.Async {
		if !a.HasAsync() {
			return fmt.Errorf("async app %s has no async ops", a.Name)
		}
		if len(a.Bugs) > 0 {
			asyncBugApps++
		} else {
			asyncClean++
		}
	}
	if asyncBugApps != 6 || asyncClean != 3 {
		return fmt.Errorf("async slice = %d bug apps + %d controls, want 6 + 3", asyncBugApps, asyncClean)
	}
	names := map[string]bool{}
	for _, a := range c.Apps {
		if names[a.Name] {
			return fmt.Errorf("duplicate app name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, a := range c.Async {
		if names[a.Name] {
			return fmt.Errorf("duplicate app name %q", a.Name)
		}
		names[a.Name] = true
	}
	ids := map[string]bool{}
	for _, b := range append(c.AllBugs(), c.AsyncBugs()...) {
		if ids[b.ID] {
			return fmt.Errorf("duplicate bug ID %q", b.ID)
		}
		ids[b.ID] = true
	}
	return nil
}
