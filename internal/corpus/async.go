package corpus

import (
	"hangdoctor/internal/android/app"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/stack"
)

// async.go defines the asynchronous-bug slice of the corpus: six apps whose
// soft hangs originate in work spawned through the bounded worker pool —
// on-main awaits, pool convoys, post-storms, delayed-post chains, leaky
// ordering across actions, and completion dispatches — plus three async-clean
// controls. The paper's main-thread-only occurrence-factor analysis either
// misattributes these hangs (the await API, FutureTask.get, dominates the
// samples) or misses them entirely (the blocking work belongs to another
// action); the causal analyzer is evaluated head-to-head against it on this
// slice (the `causal` experiment).
//
// The slice is deliberately kept out of Corpus.Apps: the 114-app universe
// and its Table-5 pins (34 bugs, 23 missed offline) are the paper's corpus
// and stay frozen.
func asyncApps(b *builder) []*app.App {
	return []*app.App{
		chatRelay(b), photoFeed(b), newsBurst(b), geoTracker(b),
		cloudNotes(b), streamCast(b),
		fitSync(b), podGrid(b), inkBoard(b),
	}
}

// marshalCost is the small on-main marshalling an async spawn costs at its
// call site (argument packing, executor bookkeeping).
func marshalCost(cpu simclock.Duration) app.CostModel {
	return app.CostModel{CPU: cpu, Jitter: 0.2,
		MinorFaultsPerSec: 600, InstructionsPerSec: 1.1e9}
}

// chatRelay: messaging client. The thread-history DB query runs on a pool
// worker but the click handler awaits it with FutureTask.get — the on-main-
// await pattern. Main-thread samples during the hang all show the await API,
// so the plain analyzer blames java.util.concurrent.FutureTask.get; only the
// worker samples name the query.
func chatRelay(b *builder) *app.App {
	store := b.class("com.chatrelay.db.MessageStore", false, "", false)
	query := b.api(store, "queryThread", 152, 0)
	awaitBug := bug("ChatRelay/412-queryThread", "412", "thread-history DB query awaited on main via FutureTask.get")

	q := b.op("queryThread", query, nil, marshalCost(ms(6)), 0.55, awaitBug)
	q.Async = &app.Async{Task: app.IOHeavy(ms(30), 8, ms(20)), Await: true}

	a := &app.App{
		Name: "ChatRelay", Commit: "b3a91e2", Category: "Communication", Downloads: "500K+",
		Registry: b.reg, Bugs: []*app.Bug{awaitBug},
	}
	a.Actions = []*app.Action{
		action("Open Thread", "onClick", 2,
			q, b.quickUIOp("android.widget.ListView.layoutChildren")),
		action("Scroll Threads", "onScroll", 2.5,
			b.quickUIOp("android.widget.ListView.layoutChildren")),
		action("Compose", "onClick", 1.5,
			b.uiOp("android.view.LayoutInflater.inflate", app.UIWork(ms(60), 8))),
	}
	return a
}

// photoFeed: photo browser with a single-threaded decode executor. Opening an
// album fans four thumbnail decodes onto the width-1 pool and awaits the
// join, so the decodes serialize into a convoy behind each other.
func photoFeed(b *builder) *app.App {
	dec := b.class("com.photofeed.image.ThumbDecoder", false, "", false)
	decode := b.api(dec, "decode", 77, 0)
	convoy := bug("PhotoFeed/188-decode", "188", "four thumbnail decodes serialize on a width-1 executor while the album open awaits them")

	d := b.op("decode", decode, nil, marshalCost(ms(7)), 0.55, convoy)
	d.Async = &app.Async{Tasks: 4, Task: app.ParseHeavy(ms(60)), Await: true}

	a := &app.App{
		Name: "PhotoFeed", Commit: "9f04c71", Category: "Photography", Downloads: "100K+",
		Registry: b.reg, Bugs: []*app.Bug{convoy},
		PoolWidth: 1,
	}
	a.Actions = []*app.Action{
		action("Open Album", "onClick", 2,
			d, b.uiOp("android.widget.ImageView.setImageBitmap", app.UIWork(ms(35), 10))),
		action("Scroll Feed", "onScroll", 2.5,
			b.quickUIOp("android.widget.ListView.layoutChildren")),
		action("Open Settings", "onClick", 1.2,
			b.uiOp("android.view.LayoutInflater.inflate", app.UIWork(ms(55), 7))),
	}
	return a
}

// newsBurst: feed reader that posts one parse task per feed entry — a
// post-storm of 24 tasks onto the width-2 pool, awaited at the end of the
// refresh handler. No single task is slow; the backlog is.
func newsBurst(b *builder) *app.App {
	parser := b.class("com.newsburst.feed.FeedParser", false, "", false)
	parse := b.api(parser, "parseEntry", 203, 0)
	storm := bug("NewsBurst/57-parseEntry", "57", "refresh posts one parse task per entry (24 at once) and awaits the storm")

	p := b.op("parseEntry", parse, nil, marshalCost(ms(8)), 0.5, storm)
	p.Async = &app.Async{Tasks: 24, Task: app.CPULoop(ms(25)), Await: true}

	a := &app.App{
		Name: "NewsBurst", Commit: "4dd82a0", Category: "News & Magazines", Downloads: "1M+",
		Registry: b.reg, Bugs: []*app.Bug{storm},
	}
	a.Actions = []*app.Action{
		action("Refresh Feed", "onClick", 2,
			p, b.quickUIOp("android.widget.TextView.setText")),
		action("Read Article", "onClick", 2.5,
			b.uiOp("android.widget.TextView.setText", app.UIWork(ms(70), 9))),
		action("Scroll Feed", "onScroll", 2.2,
			b.quickUIOp("android.widget.ListView.layoutChildren")),
	}
	return a
}

// geoTracker: location logger whose tile fetch reaches the pool through a
// six-hop postDelayed retry chain before the map open can join it — the
// delayed-post pattern, where most of the stall is timer hops, not work.
func geoTracker(b *builder) *app.App {
	fetcher := b.class("com.geotracker.map.TileFetcher", false, "", false)
	fetch := b.api(fetcher, "fetchTile", 131, 0)
	delayed := bug("GeoTracker/73-fetchTile", "73", "tile fetch rides a six-hop postDelayed chain before running, awaited on main")

	f := b.op("fetchTile", fetch, nil, marshalCost(ms(6)), 0.5, delayed)
	f.Async = &app.Async{Task: app.IOHeavy(ms(15), 3, ms(15)),
		Hops: 6, HopDelay: ms(30), Await: true}

	a := &app.App{
		Name: "GeoTracker", Commit: "e7c2b95", Category: "Travel & Local", Downloads: "50K+",
		Registry: b.reg, Bugs: []*app.Bug{delayed},
	}
	a.Actions = []*app.Action{
		action("Open Map", "onClick", 2,
			f, b.uiOp("android.view.View.invalidate", app.UIWork(ms(40), 6))),
		action("Pan Map", "onScroll", 2.5,
			b.quickUIOp("android.view.View.invalidate")),
		action("Track List", "onClick", 1.5,
			b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(50), 8))),
	}
	return a
}

// cloudNotes: note-taking app with the leaky-ordering bug. The sync action
// detaches a long upload task onto the width-1 pool and returns immediately
// (its own dispatch never hangs); a note opened afterwards awaits a quick
// DB load that queues behind the upload. The hang manifests on "Open Note",
// but the bug — and the causal attribution — belongs to "Sync Notes".
func cloudNotes(b *builder) *app.App {
	leaky := bug("CloudNotes/266-uploadAll", "266", "detached full-sync upload monopolizes the width-1 executor; later note loads queue behind it")

	sync := b.selfOp("com.cloudnotes.sync.SyncEngine", "uploadAll", "SyncEngine.java", 324,
		marshalCost(ms(8)), 0.5, leaky)
	sync.Async = &app.Async{Task: app.IOHeavy(ms(200), 24, ms(50))}

	store := b.class("com.cloudnotes.db.NoteStore", false, "", false)
	load := b.api(store, "load", 91, 0)
	open := b.op("load", load, nil, marshalCost(ms(5)), 1, nil)
	open.Async = &app.Async{Task: app.IOHeavy(ms(8), 2, ms(8)), Await: true}

	a := &app.App{
		Name: "CloudNotes", Commit: "51fe8d3", Category: "Productivity", Downloads: "100K+",
		Registry: b.reg, Bugs: []*app.Bug{leaky},
		PoolWidth: 1,
	}
	a.Actions = []*app.Action{
		action("Sync Notes", "onClick", 1.5,
			sync, b.quickUIOp("android.widget.TextView.setText")),
		action("Open Note", "onClick", 2.5,
			open, b.quickUIOp("android.widget.TextView.setText")),
		action("Browse Notebooks", "onScroll", 2,
			b.quickUIOp("android.widget.ListView.layoutChildren")),
	}
	return a
}

// streamCast: media player with the completion-on-main pattern. The segment
// fetch itself runs off-thread (correctly), but its completion — parsing the
// fetched segment — is posted back and hangs the main thread as its own
// dispatch. The worker-side stack (SegmentFetcher.fetch) is innocent; the
// on-main parse leaf is the root cause, with completion provenance attached.
func streamCast(b *builder) *app.App {
	completion := bug("StreamCast/329-parse", "329", "segment-fetch completion parses the segment on the main thread")

	parse := b.selfOp("com.streamcast.player.SegmentParser", "parse", "SegmentParser.java", 166,
		marshalCost(ms(6)), 0.55, completion)
	parse.Async = &app.Async{
		Task: app.IOHeavy(ms(20), 5, ms(20)),
		TaskFrame: &stack.Frame{Class: "com.streamcast.net.SegmentFetcher",
			Method: "fetch", File: "SegmentFetcher.java", Line: 58},
		Completion:      app.ParseHeavy(ms(160)),
		CompletionDelay: ms(10),
	}

	a := &app.App{
		Name: "StreamCast", Commit: "a60d4f8", Category: "Video Players", Downloads: "1M+",
		Registry: b.reg, Bugs: []*app.Bug{completion},
	}
	a.Actions = []*app.Action{
		action("Play Stream", "onClick", 2,
			parse, b.uiOp("android.view.View.invalidate", app.UIWork(ms(30), 5))),
		action("Browse Channels", "onScroll", 2.5,
			b.quickUIOp("android.widget.ListView.layoutChildren")),
		action("Open Guide", "onClick", 1.5,
			b.uiOp("android.view.LayoutInflater.inflate", app.UIWork(ms(65), 8))),
	}
	return a
}

// fitSync: async-clean control — a quick awaited append plus a postDelayed
// refresh completion, all comfortably sub-perceivable. Exercises every async
// mechanism (pool, await, delayed completion) without a single hang.
func fitSync(b *builder) *app.App {
	logCls := b.class("com.fitsync.db.WorkoutLog", false, "", false)
	appendAPI := b.api(logCls, "append", 44, 0)

	w := b.op("append", appendAPI, nil, marshalCost(ms(5)), 1, nil)
	w.Async = &app.Async{Task: app.IOHeavy(ms(10), 2, ms(10)), Await: true,
		Completion: app.CPULoop(ms(12)), CompletionDelay: ms(15)}

	a := &app.App{
		Name: "FitSync", Commit: "0c9b7aa", Category: "Health & Fitness", Downloads: "500K+",
		Registry: b.reg,
	}
	a.Actions = []*app.Action{
		action("Log Workout", "onClick", 2,
			w, b.quickUIOp("android.widget.TextView.setText")),
		action("View History", "onScroll", 2.5,
			b.quickUIOp("android.widget.ListView.layoutChildren")),
		action("Open Goals", "onClick", 1.5,
			b.uiOp("android.view.LayoutInflater.inflate", app.UIWork(ms(55), 7))),
	}
	return a
}

// podGrid: async-clean control — a detached prefetch keeps a worker busy for
// ~300 ms while the dispatch returns instantly. Worker CPU alone must not
// produce a detection: the action never hangs, so the S-Checker never reads.
func podGrid(b *builder) *app.App {
	pre := b.selfOp("com.podgrid.feed.EpisodePrefetcher", "prefetch", "EpisodePrefetcher.java", 102,
		marshalCost(ms(5)), 1, nil)
	pre.Async = &app.Async{Task: app.IOHeavy(ms(40), 8, ms(30))}

	a := &app.App{
		Name: "PodGrid", Commit: "77d13c4", Category: "Music & Audio", Downloads: "100K+",
		Registry: b.reg,
	}
	a.Actions = []*app.Action{
		action("Refresh Grid", "onClick", 2,
			pre, b.quickUIOp("android.widget.ListView.layoutChildren")),
		action("Browse Episodes", "onScroll", 2.5,
			b.quickUIOp("android.widget.ListView.layoutChildren")),
		action("Open Player", "onClick", 1.5,
			b.uiOp("android.view.LayoutInflater.inflate", app.UIWork(ms(50), 7))),
	}
	return a
}

// inkBoard: async-clean control — a legitimately heavy UI canvas open with a
// detached brush-cache warmup in flight. The worker's CPU lands on the app
// side of the S-Checker difference and may flag the action, but the
// Diagnoser must still read the main-thread samples as UI work and settle
// it Normal: workers in the counter set must not turn UI hangs into bugs.
func inkBoard(b *builder) *app.App {
	warm := b.selfOp("com.inkboard.brush.BrushCache", "warm", "BrushCache.java", 61,
		marshalCost(ms(5)), 1, nil)
	warm.Async = &app.Async{Task: app.IOHeavy(ms(30), 5, ms(25))}

	a := &app.App{
		Name: "InkBoard", Commit: "2b8ac09", Category: "Art & Design", Downloads: "50K+",
		Registry: b.reg,
	}
	a.Actions = []*app.Action{
		action("Open Canvas", "onClick", 2,
			b.uiOp("android.view.LayoutInflater.inflate", app.UIWork(ms(140), 13)), warm),
		action("Pick Brush", "onClick", 2.2,
			b.quickUIOp("android.widget.ListView.layoutChildren")),
		action("Zoom", "onScroll", 2.5,
			b.quickUIOp("android.view.View.invalidate")),
	}
	return a
}
