package corpus

import (
	"testing"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/simclock"
)

func TestBuildInvariants(t *testing.T) {
	c := Build()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPerAppBugCounts(t *testing.T) {
	c := Build()
	// Paper Table 5: BD (MO) per app.
	want := map[string][2]int{
		"AndStatus": {3, 2}, "DashClock": {1, 0}, "CycleStreets": {4, 3},
		"K9-Mail": {2, 2}, "Omni-Notes": {3, 3}, "OwnTracks": {1, 0},
		"QKSMS": {3, 3}, "StickerCamera": {3, 0}, "AntennaPod": {3, 2},
		"Merchant": {1, 1}, "UOITDC Booking": {2, 2}, "SageMath": {3, 2},
		"RadioDroid": {2, 1}, "Git@OSC": {1, 1}, "Lens-Launcher": {1, 0},
		"SkyTube": {1, 1},
	}
	for name, exp := range want {
		a := c.MustApp(name)
		if got := len(a.Bugs); got != exp[0] {
			t.Errorf("%s: BD = %d, want %d", name, got, exp[0])
		}
		missed := 0
		for _, b := range a.Bugs {
			if !c.OfflineVisible(b) {
				missed++
			}
		}
		if missed != exp[1] {
			t.Errorf("%s: MO = %d, want %d", name, missed, exp[1])
		}
	}
	if got := len(c.KnownBugs()); got != 11 {
		t.Errorf("known (offline-visible) bugs = %d, want 11", got)
	}
}

func TestSageMathNestingVisibleThroughOpenLibrary(t *testing.T) {
	c := Build()
	sm := c.MustApp("SageMath")
	var nested *app.Bug
	for _, b := range sm.Bugs {
		if b.ID == "SageMath/84-cupboardGet" {
			nested = b
		}
	}
	if nested == nil {
		t.Fatal("cupboard bug missing")
	}
	vis := nested.Op.VisibleAPIs()
	if len(vis) != 2 {
		t.Fatalf("visible chain length = %d, want 2 (cupboard.get + insertWithOnConflict)", len(vis))
	}
	if !c.OfflineVisible(nested) {
		t.Fatal("nested known API through open library should be offline-visible")
	}
}

func TestK9CleanMissedOffline(t *testing.T) {
	c := Build()
	k9 := c.MustApp("K9-Mail")
	for _, b := range k9.Bugs {
		if c.OfflineVisible(b) {
			t.Errorf("K9 bug %s should be missed offline", b.ID)
		}
	}
	// After Hang Doctor's feedback, the offline tool would catch clean.
	c.Registry.AddKnownBlocking("org.htmlcleaner.HtmlCleaner.clean")
	found := false
	for _, b := range k9.Bugs {
		if b.RootCauseKey() == "org.htmlcleaner.HtmlCleaner.clean" && c.OfflineVisible(b) {
			found = true
		}
	}
	if !found {
		t.Fatal("feedback loop did not make clean offline-visible")
	}
}

func TestTraceDeterminismAndWeighting(t *testing.T) {
	c := Build()
	a := c.MustApp("K9-Mail")
	t1 := Trace(a, 7, 200)
	t2 := Trace(a, 7, 200)
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace diverged at %d", i)
		}
	}
	counts := map[string]int{}
	for _, act := range t1 {
		counts[act.Name]++
	}
	// Every action appears; high-weight actions appear more often than the
	// lowest-weight one.
	if len(counts) != len(a.Actions) {
		t.Fatalf("trace missing actions: %v", counts)
	}
	if counts["Inbox"] <= counts["Download Attachment"] {
		t.Fatalf("weighting ineffective: %v", counts)
	}
}

func TestRunTraceProducesHangsAndBenignExecutions(t *testing.T) {
	c := Build()
	a := c.MustApp("K9-Mail")
	s, err := app.NewSession(a, app.LGV10(), 99)
	if err != nil {
		t.Fatal(err)
	}
	execs := RunTrace(s, Trace(a, 3, 60), simclock.Second)
	if len(execs) != 60 {
		t.Fatalf("got %d execs", len(execs))
	}
	bugHangs, uiHangs, quick := 0, 0, 0
	for _, e := range execs {
		hang := e.ResponseTime() > 100*simclock.Millisecond
		switch {
		case hang && e.BugCaused(100*simclock.Millisecond) != nil:
			bugHangs++
		case hang:
			uiHangs++
		default:
			quick++
		}
	}
	if bugHangs == 0 || uiHangs == 0 || quick == 0 {
		t.Fatalf("trace lacks variety: bugHangs=%d uiHangs=%d quick=%d", bugHangs, uiHangs, quick)
	}
}

func TestMotivationHangDurationBands(t *testing.T) {
	// Table 2 structure: FrostWire's bug hang must fall in (500ms, 1s],
	// Seadroid's in (1s, 5s], and a typical short bug (WebSMS) in
	// (100ms, 500ms].
	c := Build()
	check := func(appName, actName string, lo, hi simclock.Duration) {
		t.Helper()
		a := c.MustApp(appName)
		s, err := app.NewSession(a, app.LGV10(), 5)
		if err != nil {
			t.Fatal(err)
		}
		var hangs []simclock.Duration
		act := a.MustAction(actName)
		for i := 0; i < 30; i++ {
			e := s.Perform(act)
			if e.BugCaused(100*simclock.Millisecond) != nil {
				hangs = append(hangs, e.ResponseTime())
			}
			s.Idle(simclock.Second)
		}
		if len(hangs) == 0 {
			t.Fatalf("%s/%s: bug never manifested", appName, actName)
		}
		in := 0
		for _, h := range hangs {
			if h > lo && h <= hi {
				in++
			}
		}
		if in*2 < len(hangs) {
			t.Errorf("%s/%s: only %d/%d hangs in (%v, %v]: %v", appName, actName, in, len(hangs), lo, hi, hangs)
		}
	}
	check("FrostWire", "Open Library", 500*simclock.Millisecond, simclock.Second)
	check("Seadroid", "Sync Library", simclock.Second, 5*simclock.Second)
	check("WebSMS", "Open Threads", 100*simclock.Millisecond, 500*simclock.Millisecond)
}

func TestABetterCameraPair(t *testing.T) {
	c := Build()
	buggy, fixed := c.ABetterCameraPair()
	run := func(a *app.App) simclock.Duration {
		s, err := app.NewSession(a, app.LGV10(), 3)
		if err != nil {
			t.Fatal(err)
		}
		var total simclock.Duration
		const n = 10
		for i := 0; i < n; i++ {
			total += s.Perform(a.MustAction("Resume")).ResponseTime()
			s.Idle(simclock.Second)
		}
		return total / n
	}
	rtBuggy, rtFixed := run(buggy), run(fixed)
	// Figure 1: 423 ms buggy vs 160 ms fixed. Shape: fixed is much faster
	// and drops below the buggy camera-open time.
	if rtBuggy < 300*simclock.Millisecond || rtBuggy > 650*simclock.Millisecond {
		t.Errorf("buggy resume = %v, want ~423ms band", rtBuggy)
	}
	if rtFixed < 80*simclock.Millisecond || rtFixed > 280*simclock.Millisecond {
		t.Errorf("fixed resume = %v, want ~160ms band", rtFixed)
	}
	if rtFixed >= rtBuggy {
		t.Errorf("fixed (%v) not faster than buggy (%v)", rtFixed, rtBuggy)
	}
}

func TestGeneratedAppsAreClean(t *testing.T) {
	c := Build()
	n := 0
	for _, a := range c.Apps[len(c.Table5)+len(c.Motivation):] {
		n++
		if len(a.Bugs) != 0 {
			t.Errorf("generated app %s has bugs", a.Name)
		}
		if len(a.Actions) < 3 {
			t.Errorf("generated app %s has %d actions", a.Name, len(a.Actions))
		}
	}
	if n != 90 {
		t.Fatalf("generated apps = %d, want 90", n)
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	a, b := Build(), Build()
	if len(a.Apps) != len(b.Apps) {
		t.Fatal("corpus size differs between builds")
	}
	for i := range a.Apps {
		if a.Apps[i].Name != b.Apps[i].Name || a.Apps[i].Commit != b.Apps[i].Commit {
			t.Fatalf("app %d differs: %s/%s vs %s/%s", i,
				a.Apps[i].Name, a.Apps[i].Commit, b.Apps[i].Name, b.Apps[i].Commit)
		}
	}
}

func TestFixedAppRemovesBugHangs(t *testing.T) {
	c := Build()
	orig := c.MustApp("K9-Mail")
	fixed, err := FixedApp(orig, "K9-Mail/1007-clean")
	if err != nil {
		t.Fatal(err)
	}
	// The fixed app keeps the other bug but not the fixed one.
	if len(fixed.Bugs) != len(orig.Bugs)-1 {
		t.Fatalf("fixed app has %d bugs, want %d", len(fixed.Bugs), len(orig.Bugs)-1)
	}
	for _, b := range fixed.Bugs {
		if b.ID == "K9-Mail/1007-clean" {
			t.Fatal("fixed bug still present")
		}
		if b.App != fixed {
			t.Fatal("cloned bug not relinked to the fixed app")
		}
	}
	// The original app's ground truth is untouched.
	if len(orig.Bugs) != 2 || orig.Bugs[0].App != orig {
		t.Fatal("FixedApp mutated the original")
	}
	// Driving the previously buggy action no longer produces bug hangs.
	s, err := app.NewSession(fixed, app.LGV10(), 7)
	if err != nil {
		t.Fatal(err)
	}
	act := fixed.MustAction("Open Email")
	for i := 0; i < 25; i++ {
		exec := s.Perform(act)
		if exec.BugCaused(100*simclock.Millisecond) != nil {
			t.Fatal("fixed action still manifests the bug")
		}
		if exec.ResponseTime() > 150*simclock.Millisecond {
			t.Fatalf("fixed action still hangs: %v", exec.ResponseTime())
		}
		s.Idle(simclock.Second)
	}
}

func TestFixedAppUnknownBug(t *testing.T) {
	c := Build()
	if _, err := FixedApp(c.MustApp("K9-Mail"), "no/such-bug"); err == nil {
		t.Fatal("unknown bug accepted")
	}
}

func TestMonkeyTraceUniform(t *testing.T) {
	c := Build()
	a := c.MustApp("K9-Mail")
	tr := MonkeyTrace(a, 5, 1000)
	counts := map[string]int{}
	for _, act := range tr {
		counts[act.Name]++
	}
	if len(counts) != len(a.Actions) {
		t.Fatalf("monkey missed actions: %v", counts)
	}
	// Uniform picks: every action within a loose band of 1000/len.
	expect := 1000 / len(a.Actions)
	for name, n := range counts {
		if n < expect/2 || n > expect*2 {
			t.Errorf("action %s picked %d times, expected ~%d", name, n, expect)
		}
	}
	// Deterministic.
	tr2 := MonkeyTrace(a, 5, 1000)
	for i := range tr {
		if tr[i] != tr2[i] {
			t.Fatal("monkey trace not deterministic")
		}
	}
}

func TestEnvRichnessGatesManifestation(t *testing.T) {
	c := Build()
	a := c.MustApp("K9-Mail")
	run := func(rich float64) int {
		dev := app.LGV10()
		dev.EnvRichness = rich
		s, err := app.NewSession(a, dev, 9)
		if err != nil {
			t.Fatal(err)
		}
		act := a.MustAction("Open Email")
		hangs := 0
		for i := 0; i < 40; i++ {
			if s.Perform(act).BugCaused(100*simclock.Millisecond) != nil {
				hangs++
			}
			s.Idle(simclock.Second)
		}
		return hangs
	}
	full, poor := run(1), run(0.15)
	if poor >= full {
		t.Fatalf("impoverished environment manifested %d >= %d", poor, full)
	}
	if full == 0 {
		t.Fatal("bug never manifested at full richness")
	}
}

func TestLongitudinalTraceShape(t *testing.T) {
	c := Build()
	a := c.MustApp("K9-Mail")
	p := DefaultProfiles()[1] // regular
	const days = 7
	tr := LongitudinalTrace(a, p, 3, days)
	if len(tr) == 0 {
		t.Fatal("empty longitudinal trace")
	}
	// Sorted by time, all within the horizon, all inside waking hours.
	for i, ta := range tr {
		if i > 0 && ta.At < tr[i-1].At {
			t.Fatalf("trace not sorted at %d", i)
		}
		day := int64(ta.At) / int64(simclock.Day)
		if day < 0 || day >= days {
			t.Fatalf("action outside horizon: day %d", day)
		}
		hourNs := int64(ta.At) % int64(simclock.Day)
		hour := int(hourNs / int64(simclock.Hour))
		if hour < p.WakeHour-1 || hour > p.SleepHour+1 {
			t.Fatalf("action at hour %d outside waking window [%d,%d]", hour, p.WakeHour, p.SleepHour)
		}
	}
	// Rough volume: sessions*actions per day within a loose band.
	perDay := float64(len(tr)) / days
	expect := p.SessionsPerDay * p.ActionsPerSession
	if perDay < expect/3 || perDay > expect*3 {
		t.Fatalf("actions/day = %.1f, expected ~%.1f", perDay, expect)
	}
	// Deterministic.
	tr2 := LongitudinalTrace(a, p, 3, days)
	for i := range tr {
		if tr[i] != tr2[i] {
			t.Fatal("longitudinal trace not deterministic")
		}
	}
}

func TestRunLongitudinalAdvancesTime(t *testing.T) {
	c := Build()
	a := c.MustApp("DashClock")
	p := DefaultProfiles()[0]
	tr := LongitudinalTrace(a, p, 11, 3)
	s, err := app.NewSession(a, app.LGV10(), 11)
	if err != nil {
		t.Fatal(err)
	}
	execs := RunLongitudinal(s, tr)
	if len(execs) != len(tr) {
		t.Fatalf("execs = %d, want %d", len(execs), len(tr))
	}
	for i := range execs {
		if execs[i].Start < tr[i].At {
			t.Fatalf("action %d started before its slot", i)
		}
	}
	// The session clock ends in the final day.
	if got := int64(s.Clk.Now()) / int64(simclock.Day); got < 2 {
		t.Fatalf("clock ended on day %d, want >= 2", got)
	}
}

func TestProfilesDistinct(t *testing.T) {
	profs := DefaultProfiles()
	if len(profs) != 3 {
		t.Fatalf("profiles = %d", len(profs))
	}
	if !(profs[0].SessionsPerDay < profs[1].SessionsPerDay && profs[1].SessionsPerDay < profs[2].SessionsPerDay) {
		t.Fatal("profiles not ordered light < regular < power")
	}
}

func TestMultiEventActionResponseSemantics(t *testing.T) {
	// AntennaPod's Open Episode posts two input events; the action response
	// time is the max event response time (§2.2), so the quick UI event
	// must not mask the chapter-extraction hang.
	c := Build()
	a := c.MustApp("AntennaPod")
	act := a.MustAction("Open Episode")
	if len(act.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(act.Events))
	}
	s, err := app.NewSession(a, app.LGV10(), 13)
	if err != nil {
		t.Fatal(err)
	}
	sawHang := false
	for i := 0; i < 30; i++ {
		exec := s.Perform(act)
		if len(exec.Events) != 2 {
			t.Fatalf("exec events = %d", len(exec.Events))
		}
		// Serial dispatch: second event starts when the first ends.
		if exec.Events[1].Start != exec.Events[0].End {
			t.Fatalf("events not serial: %v vs %v", exec.Events[1].Start, exec.Events[0].End)
		}
		maxEv := exec.Events[0].ResponseTime()
		if rt := exec.Events[1].ResponseTime(); rt > maxEv {
			maxEv = rt
		}
		if exec.ResponseTime() != maxEv {
			t.Fatalf("action RT %v != max event RT %v", exec.ResponseTime(), maxEv)
		}
		if exec.BugCaused(100*simclock.Millisecond) != nil {
			sawHang = true
		}
		s.Idle(simclock.Second)
	}
	if !sawHang {
		t.Fatal("chapter bug never manifested")
	}
}

// TestSoakDeterminism runs a multi-day longitudinal deployment twice and
// requires identical detection fingerprints — the repository's core
// reproducibility guarantee under a long mixed workload.
func TestSoakDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	run := func() string {
		c := Build()
		a := c.MustApp("K9-Mail")
		s, err := app.NewSession(a, app.LGV10(), 77)
		if err != nil {
			t.Fatal(err)
		}
		trace := LongitudinalTrace(a, DefaultProfiles()[2], 77, 5)
		execs := RunLongitudinal(s, trace)
		fp := ""
		for _, e := range execs {
			fp += e.ResponseTime().String() + ";"
		}
		return fp
	}
	if run() != run() {
		t.Fatal("soak replay diverged")
	}
}
