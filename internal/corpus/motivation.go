package corpus

import (
	"hangdoctor/internal/android/app"
)

// motivationApps builds the eight Table-1 apps used in the paper's §2.2
// motivation study (the Table-2 timeout sweep). Their bugs are *well-known*
// blocking APIs, with hang durations arranged to reproduce Table 2's shape:
// most bug hangs sit in the 100-500 ms band, FrostWire's reaches the
// 500 ms-1 s band, SeaDroid's crosses 1 s, and nothing reaches the 5 s ANR
// timeout; UI-caused hangs populate 100 ms-1 s.
func motivationApps(b *builder) []*app.App {
	return []*app.App{
		droidWall(b), frostWire(b), ushaidi(b), webSMS(b),
		cgeo(b), seadroid(b), fbReaderJ(b), aBetterCamera(b, false),
	}
}

func droidWall(b *builder) *app.App {
	exec := b.platform("android.database.sqlite.SQLiteDatabase.execSQL")
	k := bug("DroidWall/rules-execSQL", "m1", "firewall rules write on apply")
	a := &app.App{
		Name: "DroidWall", Commit: "3e2b654", Category: "Tools", Downloads: "1M+",
		Registry: b.reg, Bugs: []*app.Bug{k},
	}
	a.Actions = []*app.Action{
		action("Apply Rules", "onClick", 1,
			b.op("execSQL", exec, nil, app.IOHeavy(ms(45), 9, ms(24)), 0.55, k)),
		action("App List", "onScroll", 2.6, b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(115), 12))),
		action("Toggle App", "onClick", 2.2, b.quickUIOp("android.widget.TextView.setText")),
	}
	return a
}

func frostWire(b *builder) *app.App {
	read := b.platform("java.io.FileInputStream.read")
	// FrostWire's hang is the long one of the 500 ms band in Table 2.
	k := bug("FrostWire/library-read", "m2", "library metadata read on open (~650 ms)")
	a := &app.App{
		Name: "FrostWire", Commit: "55427ef", Category: "Media", Downloads: "10M+",
		Registry: b.reg, Bugs: []*app.Bug{k},
	}
	cost := app.IOHeavy(ms(80), 12, ms(48))
	cost.Jitter = 0.12
	a.Actions = []*app.Action{
		action("Open Library", "onClick", 1,
			b.op("read", read, nil, cost, 0.55, k)),
		action("Transfers", "onScroll", 2.4, b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(105), 11))),
		action("Search", "onClick", 2, b.quickUIOp("android.view.LayoutInflater.inflate")),
	}
	return a
}

func ushaidi(b *builder) *app.App {
	query := b.platform("android.database.sqlite.SQLiteDatabase.query")
	insert := b.platform("android.database.sqlite.SQLiteDatabase.insert")
	k1 := bug("Ushaidi/reports-query", "m3", "report list query on open")
	k2 := bug("Ushaidi/report-insert", "m4", "report insert on submit")
	a := &app.App{
		Name: "Ushaidi", Commit: "59fbb533d0", Category: "Social", Downloads: "100K+",
		Registry: b.reg, Bugs: []*app.Bug{k1, k2},
	}
	a.Actions = []*app.Action{
		action("Open Reports", "onClick", 1.4,
			b.op("query", query, nil, app.MemHeavy(ms(55), 3, ms(70), 15000), 0.55, k1)),
		action("Submit Report", "onClick", 1,
			b.op("insert", insert, nil, app.IOHeavy(ms(42), 9, ms(23)), 0.55, k2)),
		action("Map View", "onClick", 2.2, b.uiOp("android.view.View.invalidate", app.UIWork(ms(125), 13))),
	}
	return a
}

func webSMS(b *builder) *app.App {
	query := b.platform("android.database.sqlite.SQLiteDatabase.query")
	k := bug("WebSMS/threads-query", "m5", "conversation query on open")
	a := &app.App{
		Name: "WebSMS", Commit: "1f596fbd29", Category: "Communication", Downloads: "500K+",
		Registry: b.reg, Bugs: []*app.Bug{k},
	}
	a.Actions = []*app.Action{
		action("Open Threads", "onClick", 1.2,
			b.op("query", query, nil, app.IOHeavy(ms(48), 10, ms(22)), 0.5, k)),
		action("Compose", "onClick", 2.2, b.uiOp("android.view.LayoutInflater.inflate", app.UIWork(ms(110), 12))),
		action("Send", "onClick", 2, b.quickUIOp("android.widget.TextView.setText")),
	}
	return a
}

// cgeo has several frequently-manifesting bugs (Table 2 records five true
// positives at the 100 ms timeout) plus heavy map UI.
func cgeo(b *builder) *app.App {
	query := b.platform("android.database.sqlite.SQLiteDatabase.query")
	read := b.platform("java.io.FileInputStream.read")
	decode := b.platform("android.graphics.BitmapFactory.decodeFile")
	k1 := bug("cgeo/caches-query", "m6", "cache list query on map pan")
	k2 := bug("cgeo/gpx-read", "m7", "GPX read on import")
	k3 := bug("cgeo/map-decode", "m8", "map tile bitmap decode")
	a := &app.App{
		Name: "cgeo", Commit: "6e4a8d4ba8", Category: "Entertainment", Downloads: "5M+",
		Registry: b.reg, Bugs: []*app.Bug{k1, k2, k3},
	}
	a.Actions = []*app.Action{
		action("Pan Map", "onScroll", 2.5,
			b.op("query", query, nil, app.MemHeavy(ms(52), 3, ms(65), 14000), 0.65, k1),
			b.uiOp("android.view.View.invalidate", app.UIWork(ms(60), 10))),
		action("Import GPX", "onClick", 1,
			b.op("read", read, nil, app.IOHeavy(ms(45), 10, ms(23)), 0.6, k2)),
		action("Open Cache", "onClick", 1.6,
			b.op("decodeFile", decode, nil, app.ParseHeavy(ms(300)), 0.6, k3)),
		action("Nearby List", "onScroll", 2, b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(105), 11))),
		action("Cold Start", "onResume", 0.5, b.uiOp("android.view.LayoutInflater.inflate", func() app.CostModel {
			m := app.UIWork(ms(410), 20)
			m.Jitter = 0.35
			return m
		}())),
	}
	return a
}

// seadroid's bug is Table 2's longest: it alone survives the 1 s timeout.
func seadroid(b *builder) *app.App {
	read := b.platform("java.io.FileInputStream.read")
	k := bug("Seadroid/sync-read", "m9", "full file read on library sync (~1.2 s)")
	a := &app.App{
		Name: "Seadroid", Commit: "5a7531d", Category: "Productivity", Downloads: "100K+",
		Registry: b.reg, Bugs: []*app.Bug{k},
	}
	cost := app.IOHeavy(ms(140), 14, ms(75))
	cost.Jitter = 0.1
	coldStart := app.UIWork(ms(430), 22)
	coldStart.Jitter = 0.35
	a.Actions = []*app.Action{
		action("Sync Library", "onClick", 1,
			b.op("read", read, nil, cost, 0.55, k)),
		action("File List", "onScroll", 2.4, b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(115), 12))),
		action("Starred", "onClick", 1.8, b.quickUIOp("android.view.LayoutInflater.inflate")),
		// Cold-start layout storm: a legitimate UI hang that occasionally
		// crosses 500 ms — the source of Table 2's 500 ms-band false
		// positives.
		action("Cold Start", "onResume", 0.6, b.uiOp("android.view.LayoutInflater.inflate", coldStart)),
	}
	return a
}

// fbReaderJ records Table 2's highest per-app true-positive count: several
// frequently-hit blocking operations in the reading path.
func fbReaderJ(b *builder) *app.App {
	read := b.platform("java.io.FileInputStream.read")
	query := b.platform("android.database.sqlite.SQLiteDatabase.query")
	decode := b.platform("android.graphics.BitmapFactory.decodeStream")
	k1 := bug("FBReaderJ/book-read", "m10", "book chunk read on page turn")
	k2 := bug("FBReaderJ/library-query", "m11", "library query on shelf open")
	k3 := bug("FBReaderJ/cover-decode", "m12", "cover bitmap decode on shelf scroll")
	a := &app.App{
		Name: "FBReaderJ", Commit: "0f02d4e923", Category: "Books", Downloads: "10M+",
		Registry: b.reg, Bugs: []*app.Bug{k1, k2, k3},
	}
	a.Actions = []*app.Action{
		action("Turn Page", "onClick", 3,
			b.op("read", read, nil, app.IOHeavy(ms(40), 9, ms(22)), 0.6, k1)),
		action("Open Shelf", "onClick", 1.5,
			b.op("query", query, nil, app.MemHeavy(ms(50), 3, ms(62), 15000), 0.6, k2)),
		action("Scroll Shelf", "onScroll", 1.8,
			b.op("decodeStream", decode, nil, app.ParseHeavy(ms(280)), 0.6, k3),
			b.uiOp("android.widget.ImageView.setImageBitmap", app.UIWork(ms(45), 8))),
		action("Bookmarks", "onClick", 1.6, b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(100), 11))),
	}
	return a
}

// aBetterCamera reproduces Figure 1: the Resume action runs setParameters,
// open (the bug), setText, inflate, SeekBar.<init>, and
// OrientationEventListener.enable, totalling ~423 ms; the fixed variant
// replaces the open call with a worker-thread handoff stub, dropping the
// response to ~160 ms.
func aBetterCamera(b *builder, fixed bool) *app.App {
	setParams := b.platform("android.hardware.Camera.setParameters")
	open := b.platform("android.hardware.Camera.open")
	k := bug("ABetterCamera/resume-open", "m13", "camera open on activity resume (Figure 1)")

	name := "A Better Camera"
	bugs := []*app.Bug{k}

	openCost := app.IOHeavy(ms(28), 8, ms(29)) // ~260 ms inside open
	openCost.Jitter = 0.1
	openOp := b.op("open", open, nil, openCost, 1, k)
	if fixed {
		name += " (fixed)"
		bugs = nil
		// Moving the API to a worker thread leaves a ~4 ms post on main.
		openOp = b.op("open", open, nil, app.CostModel{
			CPU: ms(4), Jitter: 0.1, InstructionsPerSec: 1e9, MinorFaultsPerSec: 300,
		}, 1, nil)
	}

	spCost := app.CostModel{CPU: ms(52), Jitter: 0.1, Blocks: 1, BlockEach: ms(8),
		MinorFaultsPerSec: 800, InstructionsPerSec: 1.0e9}

	a := &app.App{
		Name: name, Commit: "9f8e3b0", Category: "Photography", Downloads: "5M+",
		Registry: b.reg, Bugs: bugs,
	}
	a.Actions = []*app.Action{
		action("Resume", "onResume", 1.5,
			b.op("setParameters", setParams, nil, spCost, 1, nil),
			openOp,
			b.uiOp("android.widget.TextView.setText", app.UIWork(ms(16), 2)),
			b.uiOp("android.view.LayoutInflater.inflate", app.UIWork(ms(38), 4)),
			b.uiOp("android.widget.SeekBar.<init>", app.UIWork(ms(14), 2)),
			b.uiOp("android.view.OrientationEventListener.enable", app.UIWork(ms(12), 1)),
		),
		action("Shoot", "onClick", 3, b.quickUIOp("android.view.View.invalidate")),
		action("Gallery", "onScroll", 1.8, b.uiOp("android.widget.ImageView.setImageBitmap", app.UIWork(ms(108), 11))),
	}
	return a
}

// ABetterCameraPair returns the corpus's buggy A Better Camera alongside a
// freshly built fixed variant (camera.open moved to a worker thread), for
// the Figure 1 experiment.
func (c *Corpus) ABetterCameraPair() (buggy, fixedApp *app.App) {
	b := &builder{reg: c.Registry}
	buggy = c.MustApp("A Better Camera")
	fixedApp = aBetterCamera(b, true)
	if err := fixedApp.Finalize(); err != nil {
		panic("corpus: " + err.Error())
	}
	return buggy, fixedApp
}
