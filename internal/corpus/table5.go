package corpus

import (
	"hangdoctor/internal/android/api"
	"hangdoctor/internal/android/app"
)

// table5Apps builds the 16 apps of the paper's Table 5, each with the number
// of seeded bugs (BD) and offline-missed bugs (MO) the paper reports:
//
//	AndStatus 3(2)  DashClock 1(0)   CycleStreets 4(3)  K9-Mail 2(2)
//	Omni-Notes 3(3) OwnTracks 1(0)   QKSMS 3(3)         StickerCamera 3(0)
//	AntennaPod 3(2) Merchant 1(1)    UOITDC Booking 2(2) SageMath 3(2)
//	RadioDroid 2(1) Git@OSC 1(1)     Lens-Launcher 1(0)  SkyTube 1(1)
//
// Total: 34 bugs, 23 missed offline. The per-bug cost archetypes encode the
// performance-event signatures of Table 6 (which of S-Checker's three
// conditions detect each unknown bug): IOHeavy → context switches only,
// CPULoop → switches + task clock, ParseHeavy → all three, MemHeavy beside
// UI work → page faults only.
func table5Apps(b *builder) []*app.App {
	return []*app.App{
		andStatus(b), dashClock(b), cycleStreets(b), k9Mail(b),
		omniNotes(b), ownTracks(b), qksms(b), stickerCamera(b),
		antennaPod(b), merchant(b), uoitdcBooking(b), sageMath(b),
		radioDroid(b), gitOSC(b), lensLauncher(b), skyTube(b),
	}
}

// bug is a terse Bug constructor.
func bug(id, issue, desc string) *app.Bug {
	return &app.Bug{ID: id, IssueID: issue, Description: desc}
}

// andStatus: social timeline client. One known bug (BitmapFactory.decodeFile
// on timeline scroll, issue 303, ~600 ms hangs) plus two unknown bugs: a
// self-developed HTML transform (I/O-bound) and an undocumented
// attachment-preview API (memory-bound). Figure 2(b) of the paper shows
// these three in the Hang Bug Report.
func andStatus(b *builder) *app.App {
	decode := b.platform("android.graphics.BitmapFactory.decodeFile")
	myHTML := b.class("org.andstatus.app.util.MyHtml", false, "", false)
	prettify := b.api(myHTML, "prettify", 129, 0)

	known := bug("AndStatus/303-decodeFile", "303", "BitmapFactory.decodeFile on timeline scroll")
	newIO := bug("AndStatus/303-transform", "303", "self-developed HTML transform with file I/O on main thread")
	newPF := bug("AndStatus/303-prettify", "303", "undocumented MyHtml.prettify allocates heavily on main thread")

	a := &app.App{
		Name: "AndStatus", Commit: "49ef41c", Category: "Social", Downloads: "1K+",
		Registry: b.reg,
		Bugs:     []*app.Bug{known, newIO, newPF},
	}
	a.Actions = []*app.Action{
		action("Scroll Timeline", "onScroll", 2.5,
			b.op("decodeFile", decode, nil, app.ParseHeavy(ms(430)), 0.55, known),
			b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(30), 6)),
		),
		action("Open Conversation", "onClick", 1.5,
			b.selfOp("org.andstatus.app.data.MessageInserter", "transform", "MessageInserter.java", 371,
				app.IOHeavy(ms(55), 12, ms(21)), 0.5, newIO),
			b.quickUIOp("android.widget.TextView.setText"),
		),
		action("Preview Attachment", "onClick", 1.2,
			b.op("prettify", prettify, nil, app.MemHeavy(ms(62), 2, ms(95), 26000), 0.5, newPF),
			b.uiOp("android.widget.ImageView.setImageBitmap", app.UIWork(ms(42), 15)),
		),
		action("Refresh Menu", "onClick", 2, b.quickUIOp("android.view.LayoutInflater.inflate")),
		action("Compose", "onClick", 1.5, b.uiOp("android.view.LayoutInflater.inflate", app.UIWork(ms(140), 13))),
	}
	return a
}

// dashClock: widget host. One bug a state-of-the-art offline tool also
// finds: SharedPreferences.commit on the main thread.
func dashClock(b *builder) *app.App {
	commit := b.platform("android.content.SharedPreferences$Editor.commit")
	known := bug("DashClock/874-commit", "874", "SharedPreferences.commit on configuration save")
	a := &app.App{
		Name: "DashClock", Commit: "7e248f7", Category: "Personalization", Downloads: "1M+",
		Registry: b.reg, Bugs: []*app.Bug{known},
	}
	a.Actions = []*app.Action{
		action("Save Settings", "onClick", 1.3,
			b.op("commit", commit, nil, app.IOHeavy(ms(40), 9, ms(24)), 0.6, known),
			b.quickUIOp("android.widget.TextView.setText"),
		),
		action("Open Settings", "onClick", 2, b.uiOp("android.view.LayoutInflater.inflate", app.UIWork(ms(120), 13))),
		action("Cycle Extensions", "onScroll", 2.5, b.quickUIOp("android.widget.ListView.layoutChildren")),
	}
	return a
}

// cycleStreets: maps and routing. Four bugs: three unknown map-tile /
// route-file I/O APIs (mapsforge is not documented blocking) and one known
// FileInputStream.read. Map loading also runs legitimately heavy UI work,
// which is what confuses utilization-threshold baselines (§4.4).
func cycleStreets(b *builder) *app.App {
	mapFile := b.class("org.mapsforge.map.reader.MapFile", false, "org.mapsforge", false)
	readMap := b.api(mapFile, "readMapData", 612, 0)
	tileLoader := b.class("net.cyclestreets.tiles.TileLoader", false, "", false)
	fetchTile := b.api(tileLoader, "fetchTile", 88, 0)
	routeStore := b.class("net.cyclestreets.content.RouteDataFile", false, "", false)
	loadRoute := b.api(routeStore, "load", 140, 0)
	read := b.platform("java.io.FileInputStream.read")

	bugTiles := bug("CycleStreets/117-readMapData", "117", "mapsforge readMapData blocks on map pan")
	bugFetch := bug("CycleStreets/117-fetchTile", "117", "tile fetch on main thread")
	bugRoute := bug("CycleStreets/117-loadRoute", "117", "route data file load on main thread")
	known := bug("CycleStreets/117-read", "117", "raw FileInputStream.read of GPX track")

	a := &app.App{
		Name: "CycleStreets", Commit: "2d8d550", Category: "Travel & Local", Downloads: "50K+",
		Registry: b.reg, Bugs: []*app.Bug{bugTiles, bugFetch, bugRoute, known},
	}
	a.Actions = []*app.Action{
		action("Pan Map", "onScroll", 2.5,
			b.op("readMapData", readMap, nil, app.IOHeavy(ms(48), 11, ms(22)), 0.45, bugTiles),
			b.uiOp("android.view.View.invalidate", app.UIWork(ms(70), 8)), // legit map redraw, sub-perceivable alone
		),
		action("Zoom Map", "onClick", 1.8,
			b.op("fetchTile", fetchTile, nil, app.IOHeavy(ms(52), 13, ms(20)), 0.45, bugFetch),
			b.uiOp("android.view.View.invalidate", app.UIWork(ms(60), 7)),
		),
		action("Open Route", "onClick", 1.2,
			b.op("load", loadRoute, nil, app.IOHeavy(ms(45), 10, ms(24)), 0.5, bugRoute),
			b.quickUIOp("android.widget.TextView.setText"),
		),
		action("Import Track", "onClick", 0.8,
			b.op("read", read, nil, app.IOHeavy(ms(60), 12, ms(25)), 0.55, known),
		),
		action("Show Itinerary", "onClick", 2, b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(95), 10))),
	}
	return a
}

// k9Mail: the paper's walk-through app (§4.3, Figures 6 and 7). Two unknown
// parse bugs: org.htmlcleaner.HtmlCleaner.clean (issue 1007, ~1.3 s on heavy
// HTML email) and mime4j MimeStreamParser.parse. Folders and Inbox are
// UI-heavy actions; Inbox is tuned to occasionally trip the page-fault
// condition so the Diagnoser must prune it (Figure 7's false positive).
func k9Mail(b *builder) *app.App {
	cleaner := b.class("org.htmlcleaner.HtmlCleaner", false, "org.htmlcleaner", false)
	clean := b.api(cleaner, "clean", 25, 0)
	sanitizer := b.class("com.fsck.k9.message.html.HtmlSanitizer", false, "", false)
	sanitize := b.api(sanitizer, "sanitize", 25, 0)
	mime := b.class("org.apache.james.mime4j.parser.MimeStreamParser", false, "org.apache.james.mime4j", false)
	parse := b.api(mime, "parse", 946, 0)

	bugClean := bug("K9-Mail/1007-clean", "1007", "HtmlCleaner.clean parses heavy HTML on main thread")
	bugParse := bug("K9-Mail/1007-parse", "1007", "mime4j MimeStreamParser.parse on message open")

	cleanCost := app.ParseHeavy(ms(980))
	cleanCost.Jitter = 0.22

	a := &app.App{
		Name: "K9-Mail", Commit: "ac131a2", Category: "Communication", Downloads: "5M+",
		Registry: b.reg, Bugs: []*app.Bug{bugClean, bugParse},
	}
	inboxUI := app.UIWork(ms(185), 18)
	inboxUI.MinorFaultsPerSec = 6200 // main-side allocation spike: borderline pf diff
	a.Actions = []*app.Action{
		action("Open Email", "onClick", 1.6,
			b.op("clean", clean, []*api.API{sanitize}, cleanCost, 0.5, bugClean),
			b.quickUIOp("android.widget.TextView.setText"),
		),
		action("Download Attachment", "onClick", 0.9,
			b.op("parse", parse, nil, app.ParseHeavy(ms(520)), 0.45, bugParse),
		),
		action("Folders", "onClick", 2,
			b.uiOp("android.view.LayoutInflater.inflate", app.UIWork(ms(175), 19)),
		),
		action("Inbox", "onClick", 2.5,
			b.uiOp("android.widget.ListView.layoutChildren", inboxUI),
		),
		action("Mark Read", "onClick", 2, b.quickUIOp("android.widget.TextView.setText")),
	}
	return a
}

// omniNotes: note taking. Three unknown bugs, all page-fault-signature:
// mmap-backed note loading beside legitimate list rendering (Table 6 shows
// Omni-Notes detected only by the page-fault counter).
func omniNotes(b *builder) *app.App {
	db := b.class("it.feio.android.omninotes.db.DbHelper", false, "", false)
	getNotes := b.api(db, "getNotes", 409, 0)
	getAttach := b.api(db, "getAttachments", 771, 0)
	storage := b.class("it.feio.android.omninotes.utils.StorageHelper", false, "", false)
	readMedia := b.api(storage, "readMediaIndex", 152, 0)

	bug1 := bug("Omni-Notes/253-getNotes", "253", "mmap-backed note query faults heavily on main thread")
	bug2 := bug("Omni-Notes/253-getAttachments", "253", "attachment query on note open")
	bug3 := bug("Omni-Notes/253-readMediaIndex", "253", "media index scan on gallery open")

	memCost := func(faults float64) app.CostModel {
		return app.MemHeavy(ms(58), 2, ms(92), faults)
	}
	sibling := func() *app.Op {
		return b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(45), 15))
	}
	a := &app.App{
		Name: "Omni-Notes", Commit: "8ffde3a", Category: "Productivity", Downloads: "50K+",
		Registry: b.reg, Bugs: []*app.Bug{bug1, bug2, bug3},
	}
	a.Actions = []*app.Action{
		action("Open Note List", "onClick", 2,
			b.op("getNotes", getNotes, nil, memCost(25000), 0.5, bug1), sibling()),
		action("Open Note", "onClick", 1.6,
			b.op("getAttachments", getAttach, nil, memCost(27000), 0.5, bug2), sibling()),
		action("Open Gallery", "onClick", 1.1,
			b.op("readMediaIndex", readMedia, nil, memCost(24000), 0.5, bug3), sibling()),
		action("Edit Note", "onClick", 2.2, b.uiOp("android.widget.TextView.setText", app.UIWork(ms(105), 11))),
		action("Search", "onClick", 1.5, b.quickUIOp("android.view.LayoutInflater.inflate")),
	}
	return a
}

// ownTracks: location diary. One bug an offline tool finds: a known
// FileOutputStream.write nested in an open-source helper library (visible
// to source scanning, hence MO = 0).
func ownTracks(b *builder) *app.App {
	write := b.platform("java.io.FileOutputStream.write")
	prefsLib := b.class("org.owntracks.android.support.Preferences", false, "org.owntracks.support", false)
	export := b.api(prefsLib, "exportToFile", 301, 0)
	known := bug("OwnTracks/303-write", "303", "config export writes file via helper on main thread")

	a := &app.App{
		Name: "OwnTracks", Commit: "1514d4a", Category: "Travel & Local", Downloads: "1K+",
		Registry: b.reg, Bugs: []*app.Bug{known},
	}
	a.Actions = []*app.Action{
		action("Export Config", "onClick", 0.9,
			b.op("write", write, []*api.API{export}, app.IOHeavy(ms(42), 10, ms(23)), 0.55, known)),
		action("Show Map", "onClick", 2.4, b.uiOp("android.view.View.invalidate", app.UIWork(ms(115), 12))),
		action("Contacts", "onClick", 2, b.quickUIOp("android.widget.ListView.layoutChildren")),
	}
	return a
}

// qksms: SMS client. Three unknown CPU-loop bugs (conversation formatting,
// emoji substitution, backup serialization) — context-switch + task-clock
// signature per Table 6.
func qksms(b *builder) *app.App {
	fmtC := b.class("com.moez.QKSMS.common.ConversationFormatter", false, "", false)
	format := b.api(fmtC, "formatThread", 233, 0)
	emoji := b.class("com.moez.QKSMS.common.EmojiRegistry", false, "", false)
	substitute := b.api(emoji, "substitute", 87, 0)

	bug1 := bug("QKSMS/382-formatThread", "382", "conversation formatting loop on main thread")
	bug2 := bug("QKSMS/382-substitute", "382", "emoji substitution over full thread history")
	bug3 := bug("QKSMS/382-backupLoop", "382", "self-developed backup serialization loop")

	a := &app.App{
		Name: "QKSMS", Commit: "2a80947", Category: "Communication", Downloads: "100K+",
		Registry: b.reg, Bugs: []*app.Bug{bug1, bug2, bug3},
	}
	a.Actions = []*app.Action{
		action("Open Conversation", "onClick", 2.3,
			b.op("formatThread", format, nil, app.CPULoop(ms(360)), 0.5, bug1)),
		action("Load Emoji", "onClick", 1.4,
			b.op("substitute", substitute, nil, app.CPULoop(ms(300)), 0.5, bug2)),
		action("Backup Messages", "onClick", 0.8,
			b.selfOp("com.moez.QKSMS.backup.BackupTask", "serializeAll", "BackupTask.java", 516,
				app.CPULoop(ms(420)), 0.55, bug3)),
		action("Inbox List", "onScroll", 2.6, b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(100), 11))),
		action("Compose", "onClick", 2, b.quickUIOp("android.view.LayoutInflater.inflate")),
	}
	return a
}

// stickerCamera: photo editor. Three bugs offline tools also find: two
// bitmap decodes and a camera open (all documented blocking APIs).
func stickerCamera(b *builder) *app.App {
	decodeFile := b.platform("android.graphics.BitmapFactory.decodeFile")
	decodeStream := b.platform("android.graphics.BitmapFactory.decodeStream")
	open := b.platform("android.hardware.Camera.open")

	k1 := bug("StickerCamera/29-decodeFile", "29", "full-size photo decode on edit")
	k2 := bug("StickerCamera/29-decodeStream", "29", "sticker sheet decode on picker open")
	k3 := bug("StickerCamera/29-cameraOpen", "29", "camera open on resume")

	a := &app.App{
		Name: "StickerCamera", Commit: "6fc41b1", Category: "Photography", Downloads: "5K+",
		Registry: b.reg, Bugs: []*app.Bug{k1, k2, k3},
	}
	a.Actions = []*app.Action{
		action("Edit Photo", "onClick", 1.5,
			b.op("decodeFile", decodeFile, nil, app.ParseHeavy(ms(340)), 0.55, k1)),
		action("Open Stickers", "onClick", 1.3,
			b.op("decodeStream", decodeStream, nil, app.ParseHeavy(ms(290)), 0.5, k2)),
		action("Resume Camera", "onResume", 1.1,
			b.op("open", open, nil, app.IOHeavy(ms(35), 9, ms(26)), 0.6, k3),
			b.quickUIOp("android.view.LayoutInflater.inflate")),
		action("Gallery", "onScroll", 2.4, b.uiOp("android.widget.ImageView.setImageBitmap", app.UIWork(ms(110), 12))),
	}
	return a
}

// antennaPod: podcast player. Two unknown CPU-loop bugs (feed parsing into
// view models, chapter extraction) and one known MediaPlayer.prepare.
func antennaPod(b *builder) *app.App {
	prepare := b.platform("android.media.MediaPlayer.prepare")
	feed := b.class("de.danoeh.antennapod.core.feed.FeedItemlistAdapter", false, "", false)
	buildModels := b.api(feed, "buildViewModels", 1921, 0)
	chapters := b.class("de.danoeh.antennapod.core.util.ChapterUtils", false, "", false)
	extract := b.api(chapters, "extractChapters", 233, 0)

	new1 := bug("AntennaPod/1921-buildViewModels", "1921", "feed view-model construction loop on main thread")
	new2 := bug("AntennaPod/1921-extractChapters", "1921", "chapter extraction loop on episode open")
	known := bug("AntennaPod/1921-prepare", "1921", "MediaPlayer.prepare on play")

	a := &app.App{
		Name: "AntennaPod", Commit: "c3808e2", Category: "Media & Video", Downloads: "100K+",
		Registry: b.reg, Bugs: []*app.Bug{new1, new2, known},
	}
	a.Actions = []*app.Action{
		action("Refresh Feed", "onClick", 2,
			b.op("buildViewModels", buildModels, nil, app.CPULoop(ms(340)), 0.5, new1)),
		{
			Name: "Open Episode", Kind: "onClick", Weight: 1.7,
			Events: []*app.InputEvent{
				{Name: "evt0-show", Ops: []*app.Op{b.quickUIOp("android.view.LayoutInflater.inflate")}},
				{Name: "evt1-chapters", Ops: []*app.Op{
					b.op("extractChapters", extract, nil, app.CPULoop(ms(290)), 0.45, new2),
				}},
			},
		},
		action("Play Episode", "onClick", 1.4,
			b.op("prepare", prepare, nil, app.IOHeavy(ms(45), 10, ms(24)), 0.55, known)),
		action("Queue", "onScroll", 2.5, b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(95), 10))),
		action("Settings", "onClick", 1.2, b.quickUIOp("android.view.LayoutInflater.inflate")),
	}
	return a
}

// merchant: business dashboard. One unknown I/O bug: a report cache file
// loaded through an undocumented storage API.
func merchant(b *builder) *app.App {
	store := b.class("com.qianmi.merchant.cache.ReportCache", false, "", false)
	loadCache := b.api(store, "loadSnapshot", 17, 0)
	new1 := bug("Merchant/17-loadSnapshot", "17", "report cache snapshot load on dashboard open")
	a := &app.App{
		Name: "Merchant", Commit: "c87d69a", Category: "Business", Downloads: "10K+",
		Registry: b.reg, Bugs: []*app.Bug{new1},
	}
	a.Actions = []*app.Action{
		action("Open Dashboard", "onClick", 1.6,
			b.op("loadSnapshot", loadCache, nil, app.IOHeavy(ms(50), 12, ms(21)), 0.5, new1),
			b.quickUIOp("android.widget.TextView.setText")),
		action("Orders", "onScroll", 2.3, b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(100), 11))),
		action("Profile", "onClick", 1.5, b.quickUIOp("android.view.LayoutInflater.inflate")),
	}
	return a
}

// uoitdcBooking: room booking tool. Two unknown parse bugs (timetable JSON
// and iCal parsing), both all-three signature.
func uoitdcBooking(b *builder) *app.App {
	jsonC := b.class("ca.uoit.dcbooking.TimetableParser", false, "", false)
	parseTimetable := b.api(jsonC, "parseTimetable", 3, 0)
	ical := b.class("ca.uoit.dcbooking.ICalImporter", false, "", false)
	importIcal := b.api(ical, "importCalendar", 77, 0)

	new1 := bug("UOITDC/3-parseTimetable", "3", "timetable JSON parse on booking screen")
	new2 := bug("UOITDC/3-importCalendar", "3", "iCal import parse on sync")

	a := &app.App{
		Name: "UOITDC Booking", Commit: "5d18c26", Category: "Tools", Downloads: "100+",
		Registry: b.reg, Bugs: []*app.Bug{new1, new2},
	}
	a.Actions = []*app.Action{
		action("Open Booking", "onClick", 1.8,
			b.op("parseTimetable", parseTimetable, nil, app.ParseHeavy(ms(430)), 0.5, new1)),
		action("Sync Calendar", "onClick", 1.1,
			b.op("importCalendar", importIcal, nil, app.ParseHeavy(ms(480)), 0.5, new2)),
		action("Room List", "onScroll", 2.3, b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(125), 12))),
	}
	return a
}

// sageMath: math client. Two unknown gson.toJson serialization bugs (~1 s on
// large objects, §4.2) and one known SQLite insertWithOnConflict reached
// through the open-source cupboard wrapper (visible to offline scanning).
func sageMath(b *builder) *app.App {
	gson := b.class("com.google.gson.Gson", false, "com.google.gson", false)
	toJSON := b.api(gson, "toJson", 704, 0)
	cupboard := b.class("nl.qbusict.cupboard.Cupboard", false, "nl.qbusict.cupboard", false)
	get := b.api(cupboard, "get", 210, 0)
	insert := b.platform("android.database.sqlite.SQLiteDatabase.insertWithOnConflict")

	new1 := bug("SageMath/84-toJson-cell", "84", "gson.toJson of worksheet cell graph (~1 s)")
	new2 := bug("SageMath/84-toJson-session", "84", "gson.toJson of session state on save")
	known := bug("SageMath/84-cupboardGet", "84", "SQLite insertWithOnConflict via cupboard.get on main thread")

	big := app.ParseHeavy(ms(820))
	big.Jitter = 0.25
	a := &app.App{
		Name: "SageMath", Commit: "3198106", Category: "Education", Downloads: "10K+",
		Registry: b.reg, Bugs: []*app.Bug{new1, new2, known},
	}
	a.Actions = []*app.Action{
		action("Evaluate Cell", "onClick", 2,
			b.op("toJson", toJSON, nil, big, 0.45, new1)),
		action("Save Session", "onClick", 1.2,
			b.op("toJson#2", toJSON, nil, app.ParseHeavy(ms(620)), 0.5, new2)),
		action("Open Worksheet", "onClick", 1.5,
			b.op("insertWithOnConflict", insert, []*api.API{get}, app.MemHeavy(ms(55), 3, ms(70), 16000), 0.5, known),
			b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(40), 12))),
		action("Browse Examples", "onScroll", 2.4, b.uiOp("android.view.LayoutInflater.inflate", app.UIWork(ms(105), 11))),
	}
	return a
}

// radioDroid: internet radio. One unknown memory-bound station-index bug
// (page-fault signature) and one known MediaPlayer.prepare.
func radioDroid(b *builder) *app.App {
	prepare := b.platform("android.media.MediaPlayer.prepare")
	idx := b.class("net.programmierecke.radiodroid.StationIndex", false, "", false)
	rebuild := b.api(idx, "rebuildIndex", 29, 0)

	new1 := bug("RadioDroid/29-rebuildIndex", "29", "station index rebuild faults heavily beside list render")
	known := bug("RadioDroid/29-prepare", "29", "MediaPlayer.prepare on station play")

	a := &app.App{
		Name: "RadioDroid", Commit: "0108e8b", Category: "Music & Audio", Downloads: "10+",
		Registry: b.reg, Bugs: []*app.Bug{new1, known},
	}
	a.Actions = []*app.Action{
		action("Filter Stations", "onClick", 1.8,
			b.op("rebuildIndex", rebuild, nil, app.MemHeavy(ms(60), 2, ms(88), 25000), 0.5, new1),
			b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(45), 15))),
		action("Play Station", "onClick", 1.5,
			b.op("prepare", prepare, nil, app.IOHeavy(ms(42), 10, ms(25)), 0.5, known)),
		action("Browse", "onScroll", 2.4, b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(95), 10))),
	}
	return a
}

// gitOSC: git client. One unknown I/O bug: repository metadata refresh.
func gitOSC(b *builder) *app.App {
	repo := b.class("net.oschina.gitapp.api.RepositoryCache", false, "", false)
	refresh := b.api(repo, "refreshMetadata", 89, 0)
	new1 := bug("Git@OSC/89-refreshMetadata", "89", "repository metadata refresh I/O on project open")
	a := &app.App{
		Name: "Git@OSC", Commit: "bb80e0a95", Category: "Tools", Downloads: "10K+",
		Registry: b.reg, Bugs: []*app.Bug{new1},
	}
	a.Actions = []*app.Action{
		action("Open Project", "onClick", 1.7,
			b.op("refreshMetadata", refresh, nil, app.IOHeavy(ms(52), 12, ms(20)), 0.5, new1),
			b.quickUIOp("android.widget.TextView.setText")),
		action("Commits List", "onScroll", 2.3, b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(100), 11))),
		action("Explore", "onClick", 1.8, b.quickUIOp("android.view.LayoutInflater.inflate")),
	}
	return a
}

// lensLauncher: launcher. One bug offline tools find: bitmap decode nested
// in an open-source icon helper (visible chain, MO = 0).
func lensLauncher(b *builder) *app.App {
	decode := b.platform("android.graphics.BitmapFactory.decodeStream")
	iconLib := b.class("com.nickrout.lenslauncher.util.IconPackManager", false, "iconpack", false)
	loadIcon := b.api(iconLib, "loadIconBitmap", 15, 0)
	known := bug("Lens-Launcher/15-decodeStream", "15", "icon bitmap decode via icon pack helper on app grid")
	a := &app.App{
		Name: "Lens-Launcher", Commit: "e41e6c6", Category: "Personalization", Downloads: "100K+",
		Registry: b.reg, Bugs: []*app.Bug{known},
	}
	a.Actions = []*app.Action{
		action("Load App Grid", "onResume", 2,
			b.op("decodeStream", decode, []*api.API{loadIcon}, app.ParseHeavy(ms(310)), 0.5, known),
			b.uiOp("android.view.View.invalidate", app.UIWork(ms(40), 9))),
		action("Swipe Lens", "onScroll", 2.6, b.uiOp("android.view.View.invalidate", app.UIWork(ms(105), 12))),
		action("Settings", "onClick", 1.2, b.quickUIOp("android.view.LayoutInflater.inflate")),
	}
	return a
}

// skyTube: YouTube client. One unknown parse bug: video metadata
// deserialization on channel open (all-three signature).
func skyTube(b *builder) *app.App {
	meta := b.class("free.rm.skytube.businessobjects.VideoMetadataCodec", false, "", false)
	decodeMeta := b.api(meta, "decodeChannelFeed", 88, 0)
	new1 := bug("SkyTube/88-decodeChannelFeed", "88", "channel feed metadata parse on channel open")
	a := &app.App{
		Name: "SkyTube", Commit: "3da671c", Category: "Video Players", Downloads: "5K+",
		Registry: b.reg, Bugs: []*app.Bug{new1},
	}
	a.Actions = []*app.Action{
		action("Open Channel", "onClick", 1.8,
			b.op("decodeChannelFeed", decodeMeta, nil, app.ParseHeavy(ms(460)), 0.5, new1)),
		action("Trending", "onScroll", 2.4, b.uiOp("android.widget.ListView.layoutChildren", app.UIWork(ms(110), 12))),
		action("Search", "onClick", 1.6, b.quickUIOp("android.view.LayoutInflater.inflate")),
	}
	return a
}
