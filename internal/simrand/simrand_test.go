package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Derive("sched")
	c2 := r.Derive("noise")
	// Deriving must not consume from the parent.
	r2 := New(7)
	if r.Uint64() != r2.Uint64() {
		t.Fatal("Derive consumed parent state")
	}
	// Distinct names give distinct streams.
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("derived streams for distinct names coincide")
	}
	// Same name gives identical streams.
	d1 := New(7).Derive("sched")
	d2 := New(7).Derive("sched")
	for i := 0; i < 100; i++ {
		if d1.Uint64() != d2.Uint64() {
			t.Fatalf("same-name derived streams diverged at draw %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	cfg := &quick.Config{MaxCount: 2000}
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	New(1).Int63n(0)
}

func TestInt63nUniformity(t *testing.T) {
	r := New(17)
	const buckets = 10
	const n = 100000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Int63n(buckets)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bucket %d has fraction %v, want ~0.1", i, frac)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(31)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 2); v <= 0 {
			t.Fatalf("LogNormal produced non-positive value %v", v)
		}
	}
}

func TestJitterZeroSigma(t *testing.T) {
	r := New(1)
	if got := r.Jitter(12.5, 0); got != 12.5 {
		t.Fatalf("Jitter(x, 0) = %v, want 12.5", got)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency = %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	f := func(n uint8) bool {
		m := int(n % 64)
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedPick(t *testing.T) {
	r := New(29)
	weights := []float64{0, 1, 3, 0}
	const n = 100000
	var counts [4]int
	for i := 0; i < n; i++ {
		counts[r.WeightedPick(weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight buckets were picked: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedPickAllZero(t *testing.T) {
	r := New(37)
	weights := []float64{0, 0, 0}
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		idx := r.WeightedPick(weights)
		if idx < 0 || idx >= 3 {
			t.Fatalf("index out of range: %d", idx)
		}
		seen[idx] = true
	}
	if len(seen) != 3 {
		t.Fatalf("uniform fallback did not cover all buckets: %v", seen)
	}
}

func TestPickEmpty(t *testing.T) {
	if got := New(1).Pick(0); got != -1 {
		t.Fatalf("Pick(0) = %d, want -1", got)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(41)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}
