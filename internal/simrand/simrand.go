// Package simrand provides a deterministic pseudo-random source for the
// simulation substrate. All randomness in the repository flows through this
// package so that every experiment, test, and benchmark is exactly
// reproducible from a seed, independent of math/rand global state and of
// iteration order elsewhere in the program.
//
// The generator is xoshiro256**, seeded through splitmix64, the combination
// recommended by the xoshiro authors. Sub-streams derived with Derive are
// statistically independent for distinct names, which lets each simulated
// component (scheduler, device noise, per-app workload, ...) own a private
// stream that does not perturb its siblings when one component draws more
// numbers than before.
package simrand

import (
	"math"
	"math/bits"
)

// Rand is a deterministic random number generator. The zero value is not
// valid; use New or Derive.
type Rand struct {
	s [4]uint64

	// Box-Muller cache for NormFloat64.
	haveGauss bool
	gauss     float64
}

// splitmix64 advances the seed state and returns the next output. It is used
// only to initialize xoshiro state and to hash derivation names.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Two generators constructed with
// the same seed produce identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro256** must not be seeded with the all-zero state. splitmix64
	// cannot produce four zero outputs in a row, so this is unreachable, but
	// guard anyway: a broken RNG would silently corrupt every experiment.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Derive returns a new generator whose stream is a deterministic function of
// r's original seed material and name. Deriving the same name twice from
// generators in the same state yields identical sub-streams. Derive does not
// consume numbers from r.
func (r *Rand) Derive(name string) *Rand {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	sm := r.s[0] ^ bits.RotateLeft64(r.s[1], 13) ^ h
	child := &Rand{}
	for i := range child.s {
		child.s[i] = splitmix64(&sm)
	}
	if child.s[0]|child.s[1]|child.s[2]|child.s[3] == 0 {
		child.s[0] = 1
	}
	return child
}

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Int63n returns a uniform random int64 in [0, n). It panics if n <= 0.
// Modulo bias is removed by rejection sampling.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("simrand: Int63n called with n <= 0")
	}
	if n&(n-1) == 0 { // power of two
		return r.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Intn returns a uniform random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	return int(r.Int63n(int64(n)))
}

// Float64 returns a uniform random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p. p <= 0 always yields false and
// p >= 1 always yields true.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box-Muller with caching).
func (r *Rand) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}

// LogNormal returns exp(N(mu, sigma)). It is the workhorse distribution for
// operation costs: strictly positive, right-skewed, like real I/O latencies.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Jitter returns base scaled by a lognormal factor with the given sigma and
// unit median. Jitter(x, 0) == x.
func (r *Rand) Jitter(base float64, sigma float64) float64 {
	if sigma == 0 {
		return base
	}
	return base * r.LogNormal(0, sigma)
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using swap (Fisher-Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := int(r.Int63n(int64(i + 1)))
		swap(i, j)
	}
}

// Pick returns a uniformly random index into a slice of length n, or -1 for
// an empty slice.
func (r *Rand) Pick(n int) int {
	if n == 0 {
		return -1
	}
	return r.Intn(n)
}

// WeightedPick returns an index sampled in proportion to weights. Negative
// weights are treated as zero. If all weights are zero it falls back to a
// uniform pick. It panics on an empty slice.
func (r *Rand) WeightedPick(weights []float64) int {
	if len(weights) == 0 {
		panic("simrand: WeightedPick on empty slice")
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
