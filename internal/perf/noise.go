package perf

import (
	"math"

	"hangdoctor/internal/simrand"
)

// NoiseModel is the measurement-environment model applied to counter
// readings. On a real phone, per-thread counters do not contain only the
// thread's own work: interrupt handling, scheduler ticks, binder transactions
// and other co-resident kernel activity are charged to whichever thread
// context is current when they occur. Over a window this appears as
//
//	measured = true + base_e * window * g + eps_thread,e
//
// where base_e is the typical per-second baseline attributed to a foreground
// app thread, g is a *device-load factor shared by every thread measured in
// the same window* (thermal state, governor frequency, background sync
// bursts hit all threads together), and eps is thread-specific jitter.
//
// The shared g term is the mechanism behind the paper's Table 3 result:
// main-thread-only counters carry the full base*g variance, while the
// main-minus-render difference cancels it, so scheduling-related events
// correlate noticeably better with soft hang bugs in difference form.
// Thread-specific noise dominates for micro-architectural (PMU) events,
// whose counts depend on the particular code executed, so differencing
// helps them much less — exactly the split the paper observes.
type NoiseModel struct {
	rng *simrand.Rand

	// CommonSigma is the lognormal sigma of the shared device-load factor g.
	CommonSigma float64
	// KernelThreadSigma scales thread-specific jitter on kernel software
	// events (relative to their baseline).
	KernelThreadSigma float64
	// PMUThreadSigma scales thread-specific jitter on PMU events.
	PMUThreadSigma float64
	// BaseScale multiplies every baseline rate (device "busyness" knob).
	BaseScale float64

	pendingG float64
	haveG    bool
}

// DefaultNoise returns the measurement model calibrated against the paper's
// training data shapes (Table 3, Figure 4): baseline magnitudes comparable
// to — but not dominant over — the soft-hang signal over a few-hundred-ms
// window.
func DefaultNoise(rng *simrand.Rand) *NoiseModel {
	return &NoiseModel{
		rng:               rng.Derive("perf-noise"),
		CommonSigma:       0.45,
		KernelThreadSigma: 0.18,
		PMUThreadSigma:    0.9,
		BaseScale:         1,
	}
}

// baselinePerSec is the co-resident activity attributed to an app thread per
// second of wall time, per event. Time-based events are in nanoseconds per
// second; counts are events per second. PMU baselines are derived from the
// baseline CPU share (~1.2% of one core) at typical ARM rates.
func baselinePerSec(e Event) float64 {
	const baseCPU = 0.012 // fraction of a core of attributed activity
	switch e {
	case ContextSwitches:
		return 55
	case TaskClock, CPUClock:
		return baseCPU * 1e9
	case PageFaults:
		return 110
	case MinorFaults:
		return 104
	case MajorFaults:
		return 6
	case CPUMigrations:
		return 7
	case AlignmentFaults, EmulationFaults:
		return 0.02
	}
	// PMU events: rate while executing * baseline CPU share.
	perSecOfCPU := map[Event]float64{
		Instructions:          2.0e9,
		Cycles:                1.8e9,
		CacheReferences:       4.0e7,
		CacheMisses:           9.0e6,
		BranchInstructions:    3.6e8,
		BranchMisses:          8.0e6,
		BusCycles:             4.5e8,
		StalledCyclesFrontend: 3.0e8,
		StalledCyclesBackend:  5.0e8,
		L1DcacheLoads:         6.0e8,
		L1DcacheLoadMisses:    2.2e7,
		L1DcacheStores:        3.3e8,
		L1DcacheStoreMisses:   1.1e7,
		L1IcacheLoads:         5.5e8,
		L1IcacheLoadMisses:    9.0e6,
		LLCLoads:              2.4e7,
		LLCLoadMisses:         5.0e6,
		LLCStores:             1.2e7,
		LLCStoreMisses:        2.6e6,
		DTLBLoads:             5.8e8,
		DTLBLoadMisses:        2.4e6,
		ITLBLoads:             5.2e8,
		ITLBLoadMisses:        1.1e6,
		BranchLoads:           3.5e8,
		BranchLoadMisses:      7.6e6,
		NodeLoads:             1.8e7,
		NodeLoadMisses:        3.4e6,
		NodeStores:            9.0e6,
		NodeStoreMisses:       1.7e6,
		RawL1DcacheRefill:     2.1e7,
		RawL1ItlbRefill:       1.2e6,
		RawL2DcacheRefill:     7.0e6,
		RawBusAccess:          3.1e7,
		RawMemAccess:          8.9e8,
		RawExcTaken:           3.0e4,
		RawLdRetired:          5.9e8,
		RawStRetired:          3.2e8,
	}
	return perSecOfCPU[e] * baseCPU
}

// kernelSigmaScale captures how uneven per-event attribution jitter is on a
// real kernel: scheduler placement (migrations) and wakeup charging
// (context switches) fluctuate far more, relative to their baselines, than
// time accounting does.
func kernelSigmaScale(e Event) float64 {
	switch e {
	case CPUMigrations:
		return 13.0
	case ContextSwitches:
		return 0.8
	case MajorFaults:
		return 3.2
	case TaskClock, CPUClock:
		return 1.0
	default:
		return 1.4
	}
}

// commonFactor draws (or reuses, within one read pass) the shared
// device-load factor for the current window. Session.read calls it once per
// window so every thread in the window sees the same g.
func (n *NoiseModel) commonFactor() float64 {
	g := n.rng.LogNormal(0, n.CommonSigma)
	return g
}

// contribution returns the additive noise for event e over a window of
// windowSec seconds given the shared factor g. The common-mode term grows
// linearly with the window (it is real attributed activity); the
// thread-specific term grows with sqrt(window), as a sum of independent
// per-tick increments does.
func (n *NoiseModel) contribution(e Event, windowSec, g float64) float64 {
	rate := baselinePerSec(e) * n.BaseScale
	if rate == 0 || windowSec <= 0 {
		return 0
	}
	var sigma float64
	if e.Kernel() {
		sigma = n.KernelThreadSigma * kernelSigmaScale(e)
	} else {
		sigma = n.PMUThreadSigma
	}
	// refWindow anchors the sqrt scaling so a ~0.4 s action window keeps
	// the calibrated noise magnitude.
	const refWindow = 0.4
	common := rate * windowSec * g
	eps := n.rng.NormFloat64() * sigma * rate * math.Sqrt(windowSec*refWindow)
	v := common + eps
	if v < 0 {
		v = 0
	}
	return v
}
