package perf

import (
	"math"
	"testing"

	"hangdoctor/internal/cpu"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
)

func TestOpenPanicsOnEmptyInputs(t *testing.T) {
	clk := simclock.New()
	s := cpu.New(clk, 1)
	th := s.NewThread("x")
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("no threads", func() { Open(clk, nil, []Event{TaskClock}, Config{}) })
	mustPanic("no events", func() { Open(clk, []*cpu.Thread{th}, nil, Config{}) })
}

func TestSampleEveryPanics(t *testing.T) {
	clk := simclock.New()
	s := cpu.New(clk, 1)
	th := s.NewThread("x")
	sess := Open(clk, []*cpu.Thread{th}, []Event{TaskClock}, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive interval accepted")
		}
	}()
	sess.SampleEvery(0)
}

func TestSampleEveryAfterStopPanics(t *testing.T) {
	clk := simclock.New()
	s := cpu.New(clk, 1)
	th := s.NewThread("x")
	sess := Open(clk, []*cpu.Thread{th}, []Event{TaskClock}, Config{})
	sess.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("SampleEvery on stopped session accepted")
		}
	}()
	sess.SampleEvery(simclock.Millisecond)
}

func TestReadingWindow(t *testing.T) {
	clk := simclock.New()
	s := cpu.New(clk, 1)
	th := s.NewThread("x")
	sess := Open(clk, []*cpu.Thread{th}, []Event{TaskClock}, Config{})
	th.Enqueue(cpu.Compute{Dur: 30 * simclock.Millisecond})
	clk.RunUntil(simclock.Time(45 * simclock.Millisecond))
	r := sess.Stop()
	if got := r.Window(); got != 45*simclock.Millisecond {
		t.Fatalf("Window = %v", got)
	}
}

func TestEventStringAndBounds(t *testing.T) {
	if ContextSwitches.String() != "context-switches" {
		t.Fatalf("String() = %q", ContextSwitches.String())
	}
	if got := Event(-1).Name(); got != "event(-1)" {
		t.Fatalf("out-of-range name = %q", got)
	}
	if got := Event(1000).Name(); got != "event(1000)" {
		t.Fatalf("out-of-range name = %q", got)
	}
}

func TestBaselineCoversEveryEvent(t *testing.T) {
	// Every PMU event must have a baseline rate: a zero baseline would make
	// the noise model silently skip it and overstate its correlation.
	for _, e := range AllEvents() {
		if e == AlignmentFaults || e == EmulationFaults {
			continue // genuinely near-zero events
		}
		if baselinePerSec(e) <= 0 {
			t.Errorf("event %v has no baseline rate", e)
		}
	}
}

func TestKernelSigmaScalePositive(t *testing.T) {
	for _, e := range KernelEvents() {
		if kernelSigmaScale(e) <= 0 {
			t.Errorf("event %v has non-positive sigma scale", e)
		}
	}
}

func TestNoiseSqrtWindowScaling(t *testing.T) {
	// Thread-specific noise must grow sub-linearly with the window: the
	// relative spread of a 4x longer window is ~2x, not 4x.
	rng := simrand.New(99)
	spread := func(window simclock.Duration) float64 {
		var sumsq float64
		const trials = 400
		n := DefaultNoise(rng.Derive(window.String()))
		for i := 0; i < trials; i++ {
			g := 1.0 // isolate eps: fixed common factor
			v := n.contribution(ContextSwitches, float64(window)/1e9, g)
			base := baselinePerSec(ContextSwitches) * float64(window) / 1e9 * g
			d := v - base
			sumsq += d * d
		}
		return math.Sqrt(sumsq / trials)
	}
	s1 := spread(400 * simclock.Millisecond)
	s4 := spread(1600 * simclock.Millisecond)
	ratio := s4 / s1
	if ratio < 1.4 || ratio > 3.0 {
		t.Fatalf("noise spread ratio over 4x window = %.2f, want ~2 (sqrt scaling)", ratio)
	}
}

func TestNoiseNonNegative(t *testing.T) {
	rng := simrand.New(123)
	n := DefaultNoise(rng)
	for i := 0; i < 5000; i++ {
		g := n.commonFactor()
		for _, e := range []Event{ContextSwitches, TaskClock, PageFaults, Instructions} {
			if v := n.contribution(e, 0.5, g); v < 0 {
				t.Fatalf("negative noise contribution %v for %v", v, e)
			}
		}
	}
}

func TestBaseScaleZeroDisablesBaseline(t *testing.T) {
	rng := simrand.New(7)
	n := DefaultNoise(rng)
	n.BaseScale = 0
	if v := n.contribution(ContextSwitches, 1, 1.5); v != 0 {
		t.Fatalf("BaseScale=0 contribution = %v", v)
	}
}

func TestGalaxyS3RegistersIncreaseMuxError(t *testing.T) {
	// Fewer PMU registers -> larger multiplexing error on an oversubscribed
	// session (the Galaxy S3 device model has 4).
	run := func(regs int, seed uint64) float64 {
		var relSum float64
		const trials = 60
		rng := simrand.New(seed)
		for i := 0; i < trials; i++ {
			clk := simclock.New()
			s := cpu.New(clk, 1)
			th := s.NewThread("x")
			var rates cpu.Rates
			rates.HW[Instructions.HWIndex()] = 2e9
			var events []Event
			for _, e := range AllEvents() {
				if !e.Kernel() {
					events = append(events, e)
				}
			}
			sess := Open(clk, []*cpu.Thread{th}, events, Config{Registers: regs, Rng: rng})
			th.Enqueue(cpu.Compute{Dur: 100 * simclock.Millisecond, Rates: rates})
			clk.RunUntilIdle(100000)
			r := sess.Stop()
			truth := 200_000_000.0
			relSum += math.Abs(float64(r.Value(0, Instructions))-truth) / truth
		}
		return relSum / trials
	}
	err6 := run(6, 5)
	err4 := run(4, 5)
	if err4 <= err6 {
		t.Fatalf("4 registers error %.4f not above 6 registers %.4f", err4, err6)
	}
}
