package perf

import (
	"testing"
	"testing/quick"

	"hangdoctor/internal/cpu"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
)

func TestEventCatalog(t *testing.T) {
	if NumEvents != 46 {
		t.Fatalf("NumEvents = %d, want 46 (the paper's catalog size)", NumEvents)
	}
	kernel := 0
	seen := map[string]bool{}
	for _, e := range AllEvents() {
		name := e.Name()
		if name == "" || seen[name] {
			t.Fatalf("bad or duplicate event name %q", name)
		}
		seen[name] = true
		if e.Kernel() {
			kernel++
		}
	}
	if kernel != 9 {
		t.Fatalf("kernel events = %d, want 9", kernel)
	}
	if len(KernelEvents()) != 9 {
		t.Fatalf("KernelEvents() length = %d", len(KernelEvents()))
	}
}

func TestParseEventRoundTrip(t *testing.T) {
	for _, e := range AllEvents() {
		got, ok := ParseEvent(e.Name())
		if !ok || got != e {
			t.Fatalf("ParseEvent(%q) = %v, %v", e.Name(), got, ok)
		}
	}
	if _, ok := ParseEvent("not-an-event"); ok {
		t.Fatal("ParseEvent accepted garbage")
	}
}

func TestHWIndexPanicsForKernel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ContextSwitches.HWIndex()
}

func TestReadCounterMapping(t *testing.T) {
	var c cpu.Counters
	c.TaskClock = 111
	c.CPUClock = 222
	c.VoluntaryCtxSwitches = 3
	c.InvoluntaryCtxSwitch = 4
	c.MinorFaults = 10
	c.MajorFaults = 2
	c.Migrations = 5
	c.HW[Instructions.HWIndex()] = 999
	cases := []struct {
		e    Event
		want int64
	}{
		{TaskClock, 111}, {CPUClock, 222}, {ContextSwitches, 7},
		{PageFaults, 12}, {MinorFaults, 10}, {MajorFaults, 2},
		{CPUMigrations, 5}, {Instructions, 999},
	}
	for _, tc := range cases {
		if got := ReadCounter(c, tc.e); got != tc.want {
			t.Errorf("ReadCounter(%v) = %d, want %d", tc.e, got, tc.want)
		}
	}
}

// runWorkload executes a compute+block program on two threads and returns
// them with their shared clock.
func runWorkload(t *testing.T) (*simclock.Clock, *cpu.Thread, *cpu.Thread) {
	t.Helper()
	clk := simclock.New()
	s := cpu.New(clk, 2)
	main := s.NewThread("main")
	render := s.NewThread("render")
	return clk, main, render
}

func TestSessionExactWithoutNoise(t *testing.T) {
	clk, main, render := runWorkload(t)
	var rates cpu.Rates
	rates.MinorFaults = 2000
	rates.HW[Instructions.HWIndex()] = 1e9
	sess := Open(clk, []*cpu.Thread{main, render}, []Event{TaskClock, PageFaults, Instructions, ContextSwitches}, Config{})
	main.Enqueue(cpu.Compute{Dur: 100 * simclock.Millisecond, Rates: rates})
	render.Enqueue(cpu.Compute{Dur: 40 * simclock.Millisecond})
	clk.RunUntilIdle(100000)
	r := sess.Stop()
	if got := r.Value(0, TaskClock); got != int64(100*simclock.Millisecond) {
		t.Fatalf("main task-clock = %d, want 100ms", got)
	}
	if got := r.Value(1, TaskClock); got != int64(40*simclock.Millisecond) {
		t.Fatalf("render task-clock = %d, want 40ms", got)
	}
	if got := r.Value(0, PageFaults); got != 200 {
		t.Fatalf("main page-faults = %d, want 200", got)
	}
	if got := r.Value(0, Instructions); got != 100_000_000 {
		t.Fatalf("main instructions = %d, want 1e8", got)
	}
	if got := r.Diff(TaskClock); got != int64(60*simclock.Millisecond) {
		t.Fatalf("task-clock diff = %d, want 60ms", got)
	}
}

func TestSessionCountsOnlyItsWindow(t *testing.T) {
	clk, main, _ := runWorkload(t)
	main.Enqueue(cpu.Compute{Dur: 50 * simclock.Millisecond})
	clk.RunUntilIdle(100000)
	// Open after the first burst: it must not be visible.
	sess := Open(clk, []*cpu.Thread{main}, []Event{TaskClock}, Config{})
	main.Enqueue(cpu.Compute{Dur: 30 * simclock.Millisecond})
	clk.RunUntilIdle(100000)
	r := sess.Stop()
	if got := r.Value(0, TaskClock); got != int64(30*simclock.Millisecond) {
		t.Fatalf("windowed task-clock = %d, want 30ms", got)
	}
}

func TestDoubleStopPanics(t *testing.T) {
	clk, main, _ := runWorkload(t)
	sess := Open(clk, []*cpu.Thread{main}, []Event{TaskClock}, Config{})
	sess.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double Stop")
		}
	}()
	sess.Stop()
}

func TestMultiplexingError(t *testing.T) {
	// With all 37 PMU events on 6 registers, estimates must deviate from
	// truth; with 6 or fewer they must be exact (no noise model).
	rng := simrand.New(5)
	run := func(events []Event) (got, want int64) {
		clk, main, _ := runWorkload(t)
		var rates cpu.Rates
		rates.HW[Instructions.HWIndex()] = 2e9
		sess := Open(clk, []*cpu.Thread{main}, events, Config{Rng: rng})
		main.Enqueue(cpu.Compute{Dur: 200 * simclock.Millisecond, Rates: rates})
		clk.RunUntilIdle(100000)
		r := sess.Stop()
		return r.Value(0, Instructions), 400_000_000
	}
	var all []Event
	for _, e := range AllEvents() {
		if !e.Kernel() {
			all = append(all, e)
		}
	}
	got, want := run(all)
	if got == want {
		t.Fatalf("oversubscribed PMU read was exact (%d); expected multiplexing error", got)
	}
	// Error should still be within a sane band (±50%).
	if got < want/2 || got > want*2 {
		t.Fatalf("multiplexing error too large: got %d, want ~%d", got, want)
	}
	got2, want2 := run([]Event{Instructions, Cycles})
	if got2 != want2 {
		t.Fatalf("undersubscribed PMU read = %d, want exact %d", got2, want2)
	}
}

func TestKernelEventsNeverMultiplexed(t *testing.T) {
	rng := simrand.New(6)
	clk, main, _ := runWorkload(t)
	events := append([]Event{TaskClock}, func() []Event {
		var pmu []Event
		for _, e := range AllEvents() {
			if !e.Kernel() {
				pmu = append(pmu, e)
			}
		}
		return pmu
	}()...)
	sess := Open(clk, []*cpu.Thread{main}, events, Config{Rng: rng})
	main.Enqueue(cpu.Compute{Dur: 80 * simclock.Millisecond})
	clk.RunUntilIdle(100000)
	r := sess.Stop()
	if got := r.Value(0, TaskClock); got != int64(80*simclock.Millisecond) {
		t.Fatalf("kernel event perturbed by multiplexing: %d", got)
	}
}

func TestNoiseCommonModeCancelsInDiff(t *testing.T) {
	// With a noise model, the main-only reading must be noisier (relative to
	// truth) than the main-minus-render difference for a kernel event whose
	// true per-thread values are equal. Run many windows and compare spreads.
	rng := simrand.New(7)
	noise := DefaultNoise(rng)
	var diffDev, soloDev float64
	const trials = 300
	for i := 0; i < trials; i++ {
		clk := simclock.New()
		s := cpu.New(clk, 2)
		main := s.NewThread("main")
		render := s.NewThread("render")
		sess := Open(clk, []*cpu.Thread{main, render}, []Event{TaskClock}, Config{Noise: noise, Rng: rng})
		main.Enqueue(cpu.Compute{Dur: 100 * simclock.Millisecond})
		render.Enqueue(cpu.Compute{Dur: 100 * simclock.Millisecond})
		clk.RunUntilIdle(100000)
		r := sess.Stop()
		d := float64(r.Diff(TaskClock)) // truth: 0
		sv := float64(r.Value(0, TaskClock)) - float64(100*simclock.Millisecond)
		diffDev += d * d
		soloDev += sv * sv
	}
	if diffDev >= soloDev {
		t.Fatalf("common-mode noise did not cancel in diff: diffVar=%g soloVar=%g", diffDev, soloDev)
	}
}

func TestSampleEvery(t *testing.T) {
	clk, main, render := runWorkload(t)
	sess := Open(clk, []*cpu.Thread{main, render}, []Event{TaskClock}, Config{})
	sess.SampleEvery(100 * simclock.Millisecond)
	main.Enqueue(cpu.Compute{Dur: 350 * simclock.Millisecond})
	clk.RunUntil(simclock.Time(500 * simclock.Millisecond))
	r := sess.Stop()
	samples := sess.Samples()
	if len(samples) != 5 {
		t.Fatalf("got %d samples, want 5 over 500ms", len(samples))
	}
	// First three windows: full 100ms of main compute each.
	for i := 0; i < 3; i++ {
		if got := samples[i].PerThread[0][0]; got != int64(100*simclock.Millisecond) {
			t.Fatalf("sample %d main task-clock = %d, want 100ms", i, got)
		}
	}
	// Window 4 has the 50ms tail, window 5 is idle.
	if got := samples[3].PerThread[0][0]; got != int64(50*simclock.Millisecond) {
		t.Fatalf("sample 3 main task-clock = %d, want 50ms", got)
	}
	if got := samples[4].PerThread[0][0]; got != 0 {
		t.Fatalf("sample 4 main task-clock = %d, want 0", got)
	}
	// Full-window reading still covers everything.
	if got := r.Value(0, TaskClock); got != int64(350*simclock.Millisecond) {
		t.Fatalf("final reading = %d, want 350ms", got)
	}
}

func TestSamplingStopsAtStop(t *testing.T) {
	clk, main, _ := runWorkload(t)
	sess := Open(clk, []*cpu.Thread{main}, []Event{TaskClock}, Config{})
	sess.SampleEvery(10 * simclock.Millisecond)
	clk.RunUntil(simclock.Time(35 * simclock.Millisecond))
	sess.Stop()
	n := len(sess.Samples())
	clk.RunUntil(simclock.Time(200 * simclock.Millisecond))
	if len(sess.Samples()) != n {
		t.Fatal("sampling continued after Stop")
	}
}

func TestSessionCost(t *testing.T) {
	clk, main, render := runWorkload(t)
	sess := Open(clk, []*cpu.Thread{main, render}, []Event{TaskClock, PageFaults, ContextSwitches}, Config{})
	if sess.CostNs() != CostOpenNs {
		t.Fatalf("open cost = %d", sess.CostNs())
	}
	sess.Stop()
	want := int64(CostOpenNs + 2*3*CostReadPerCounterNs)
	if got := sess.CostNs(); got != want {
		t.Fatalf("total cost = %d, want %d", got, want)
	}
}

func TestReadingValueUnknownEventPanics(t *testing.T) {
	clk, main, _ := runWorkload(t)
	sess := Open(clk, []*cpu.Thread{main}, []Event{TaskClock}, Config{})
	r := sess.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Value(0, PageFaults)
}

// Property: without noise, readings are non-negative and additive across
// consecutive sample windows (sum of window deltas == full-window reading).
func TestSampleAdditivityProperty(t *testing.T) {
	rng := simrand.New(321)
	f := func(seed uint32) bool {
		r := rng.Derive(string(rune(seed)))
		clk := simclock.New()
		s := cpu.New(clk, 2)
		main := s.NewThread("main")
		var rates cpu.Rates
		rates.MinorFaults = float64(1000 + r.Intn(5000))
		total := simclock.Duration(50+r.Intn(300)) * simclock.Millisecond
		sess := Open(clk, []*cpu.Thread{main}, []Event{TaskClock, PageFaults, ContextSwitches}, Config{})
		sess.SampleEvery(simclock.Duration(10+r.Intn(50)) * simclock.Millisecond)
		main.Enqueue(cpu.Compute{Dur: total, Rates: rates})
		clk.RunUntil(simclock.Time(total) + simclock.Time(100*simclock.Millisecond))
		final := sess.Stop()
		var sum [3]int64
		for _, smp := range sess.Samples() {
			for i := range sum {
				sum[i] += smp.PerThread[0][i]
			}
		}
		// The final reading includes the residual window after the last
		// sample, so sums may be <= final values; re-read remainder:
		// final - sum must be the residual, hence >= 0 for all events.
		for i := range sum {
			if final.PerThread[0][i] < sum[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
