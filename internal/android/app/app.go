// Package app models the simulated Android applications Hang Doctor is
// evaluated on: apps composed of user actions, each action dispatching input
// events to the main thread, each event executing a sequence of operations
// (UI work, API calls, self-developed code). The package also provides the
// execution engine (Session) that runs actions on the cpu/looper/render
// substrate with deterministic per-execution cost jitter and background
// interference, producing the response times, counters, and sampled stacks
// that detectors observe.
package app

import (
	"fmt"

	"hangdoctor/internal/android/api"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/stack"
)

// Bug is the ground-truth record of a seeded soft hang bug, mirroring a row
// of the paper's Table 5.
type Bug struct {
	// ID is unique within the corpus, e.g. "K9-Mail/1007-clean".
	ID string
	// IssueID is the tracker issue number from Table 5.
	IssueID string
	// Description summarizes the root cause.
	Description string
	// Op is the buggy operation; set by App.Finalize.
	Op *Op
	// Action is the action whose execution manifests the bug.
	Action *Action
	// App is the owning app.
	App *App
}

// RootCauseKey returns the class.method the Diagnoser should report for this
// bug: the leaf API, or the self-developed function.
func (b *Bug) RootCauseKey() string { return b.Op.LeafKey() }

// InputEvent is one message the action posts to the main thread.
type InputEvent struct {
	Name string
	Ops  []*Op

	// fullStacks[i] is the precomputed dispatch stack of Ops[i] under this
	// event's action (leaf, wrapper chain, handler, framework), built once
	// at Finalize; stacks are immutable and shared by every execution.
	fullStacks []*stack.Stack
	// segCap is the worst-case scheduler-segment count of one dispatch of
	// this event, so Session.buildSegments can allocate exactly once.
	segCap int
}

// Action is a user action: the unit Hang Doctor tracks state for. The App
// Injector assigns each action a UID at packaging time (§3.5).
type Action struct {
	// Name is the user-facing label ("Open Email", "Scroll Timeline").
	Name string
	// UID is assigned by Finalize as "<app>/<name>".
	UID string
	// Kind is the triggering callback ("onClick", "onScroll", "onResume").
	Kind string
	// Handler is the developer-callback frame that tops app-level stacks.
	Handler stack.Frame
	// Events are the input events posted, in order.
	Events []*InputEvent
	// Weight is the relative frequency in generated workloads (default 1).
	Weight float64

	// callerStack is the precomputed handler-plus-framework stack every
	// execution of this action samples while in caller-level code; built
	// once at Finalize.
	callerStack *stack.Stack
	// inputOrigin is the causal edge input-event dispatches of this action
	// carry (Kind "input"); built once at Finalize so tagging is a copy.
	inputOrigin stack.Origin
}

// InputOrigin returns the causal edge of this action's input-event
// dispatches; zero before App.Finalize.
func (a *Action) InputOrigin() stack.Origin { return a.inputOrigin }

// CallerStack returns the action's precomputed handler-plus-framework stack
// (what a sampler sees while the main thread runs caller-level code). It is
// nil before App.Finalize. The stack is immutable and shared by every
// execution — callers must not mutate it.
func (a *Action) CallerStack() *stack.Stack { return a.callerStack }

// DispatchStacks returns the event's precomputed full dispatch stacks,
// DispatchStacks()[i] being the stack one dispatch of Ops[i] exposes (leaf,
// wrapper chain, handler, framework). It is nil before App.Finalize. The
// stacks are immutable and shared by every execution — callers must not
// mutate them.
func (ie *InputEvent) DispatchStacks() []*stack.Stack { return ie.fullStacks }

// Ops returns all ops across the action's events, in execution order.
func (a *Action) Ops() []*Op {
	var out []*Op
	for _, ev := range a.Events {
		out = append(out, ev.Ops...)
	}
	return out
}

// App is one simulated application.
type App struct {
	Name      string
	Commit    string
	Category  string
	Downloads string
	Actions   []*Action
	Bugs      []*Bug
	// Registry is the API universe the app links against (shared across the
	// corpus so the known-blocking database is global, as in the paper).
	Registry *api.Registry
	// PoolWidth is the size of the app's bounded worker pool (its
	// ExecutorService). Zero defaults to 2 when any op is async; apps with
	// no async ops get no pool at all, so the pre-async corpus executes
	// bit-for-bit identically.
	PoolWidth int

	finalized bool
	hasAsync  bool
}

// HasAsync reports whether any op spawns work asynchronously (meaningful
// after Finalize); sessions only create a worker pool for such apps.
func (a *App) HasAsync() bool { return a.hasAsync }

// Finalize assigns action UIDs and default handler frames, links bug
// back-references, and validates the app. It must be called once after
// assembly; Session construction requires it.
func (a *App) Finalize() error {
	if a.finalized {
		return nil
	}
	if a.Name == "" {
		return fmt.Errorf("app: missing name")
	}
	if a.Registry == nil {
		return fmt.Errorf("app %s: missing registry", a.Name)
	}
	if len(a.Actions) == 0 {
		return fmt.Errorf("app %s: no actions", a.Name)
	}
	seen := map[string]bool{}
	for _, act := range a.Actions {
		if act.Name == "" {
			return fmt.Errorf("app %s: action with empty name", a.Name)
		}
		if seen[act.Name] {
			return fmt.Errorf("app %s: duplicate action %q", a.Name, act.Name)
		}
		seen[act.Name] = true
		act.UID = a.Name + "/" + act.Name
		if act.Weight == 0 {
			act.Weight = 1
		}
		if act.Kind == "" {
			act.Kind = "onClick"
		}
		if act.Handler == (stack.Frame{}) {
			act.Handler = stack.Frame{
				Class:  "app." + sanitize(a.Name) + ".MainActivity",
				Method: act.Kind + "_" + sanitize(act.Name),
				File:   "MainActivity.java",
				Line:   100 + len(act.Name),
			}
		}
		if len(act.Events) == 0 {
			return fmt.Errorf("app %s: action %q has no events", a.Name, act.Name)
		}
		// Precompute everything a dispatch needs that depends only on static
		// app data: the caller stack, each op's full stack under this
		// action, each op's event-rate vectors, and the worst-case segment
		// count per event. Sessions share these across all executions, so
		// the per-dispatch hot path allocates nothing but the final program.
		callerFrames := append([]stack.Frame{act.Handler}, frameworkFrames...)
		act.callerStack = stack.New(callerFrames...)
		internStack(a.Registry, act.callerStack)
		act.inputOrigin = stack.Origin{ActionUID: act.UID, Site: act.Handler.Key(), Kind: "input"}
		for _, ev := range act.Events {
			if len(ev.Ops) == 0 {
				return fmt.Errorf("app %s: action %q event %q has no ops", a.Name, act.Name, ev.Name)
			}
			ev.fullStacks = make([]*stack.Stack, len(ev.Ops))
			ev.segCap = 0
			for i, op := range ev.Ops {
				if op.Manifest == 0 {
					op.Manifest = 1
				}
				if op.Bug != nil {
					op.Bug.Op = op
					op.Bug.Action = act
					op.Bug.App = a
				}
				leafFrames := make([]stack.Frame, 0, len(op.Via)+1+len(callerFrames))
				leafFrames = append(leafFrames, op.LeafFrame())
				for v := len(op.Via) - 1; v >= 0; v-- {
					leafFrames = append(leafFrames, op.Via[v].Frame())
				}
				ev.fullStacks[i] = stack.New(append(leafFrames, callerFrames...)...)
				internStack(a.Registry, ev.fullStacks[i])
				op.heavyRates = op.Heavy.rates()
				if op.Light != nil {
					op.lightRates = op.Light.rates()
				}
				ev.segCap += op.maxSegments()
				if op.Async != nil {
					if op.Async.Hops > 0 && op.Async.HopDelay <= 0 {
						return fmt.Errorf("app %s: async op %q has hops without a hop delay", a.Name, op.Name)
					}
					a.hasAsync = true
					a.finalizeAsync(act, op, callerFrames)
				}
			}
		}
	}
	if a.hasAsync && a.PoolWidth <= 0 {
		a.PoolWidth = 2
	}
	// Validate bug list consistency: every listed bug must be wired to an op.
	for _, b := range a.Bugs {
		if b.Op == nil {
			return fmt.Errorf("app %s: bug %s not attached to any op", a.Name, b.ID)
		}
	}
	a.finalized = true
	return nil
}

// Action returns the action with the given name.
func (a *App) Action(name string) (*Action, bool) {
	for _, act := range a.Actions {
		if act.Name == name {
			return act, true
		}
	}
	return nil, false
}

// MustAction returns the named action or panics; for tests and examples.
func (a *App) MustAction(name string) *Action {
	act, ok := a.Action(name)
	if !ok {
		panic(fmt.Sprintf("app %s: no action %q", a.Name, name))
	}
	return act
}

// finalizeAsync precomputes an async op's immutable execution material: the
// worker-side task stack (task leaf, wrapper chain, executor plumbing), the
// main-thread await stack (FutureTask.get over the action's caller frames),
// the task and completion rate vectors, and the causal origins every
// spawned task and completion message will carry.
func (a *App) finalizeAsync(act *Action, op *Op, callerFrames []stack.Frame) {
	spec := op.Async
	taskLeaf := op.TaskLeafFrame()
	taskFrames := make([]stack.Frame, 0, 1+len(op.Via)+len(workerFrames))
	taskFrames = append(taskFrames, taskLeaf)
	if spec.TaskFrame == nil {
		// The spawned work is the op's own call chain, moved off-thread.
		for v := len(op.Via) - 1; v >= 0; v-- {
			taskFrames = append(taskFrames, op.Via[v].Frame())
		}
	}
	taskFrames = append(taskFrames, workerFrames...)
	op.taskStack = stack.New(taskFrames...)
	internStack(a.Registry, op.taskStack)
	awaitFrames := make([]stack.Frame, 0, 1+len(callerFrames))
	awaitFrames = append(awaitFrames, futureGetFrame)
	awaitFrames = append(awaitFrames, callerFrames...)
	op.awaitStack = stack.New(awaitFrames...)
	internStack(a.Registry, op.awaitStack)
	op.taskRates = spec.Task.rates()
	if spec.Completion.CPU > 0 {
		op.completionRates = spec.Completion.rates()
	}
	kind := "submit"
	if spec.Hops > 0 {
		kind = "delay"
	}
	op.spawnOrigin = stack.Origin{ActionUID: act.UID, Site: op.taskStack.Leaf().Key(), Kind: kind}
	op.completionOrigin = stack.Origin{ActionUID: act.UID, Site: op.LeafKey(), Kind: "completion"}
}

// internStack assigns every frame of a freshly built (still Finalize-owned)
// stack its symbol ID in the app's registry, so sampled stacks carry dense
// IDs and the diagnosis pipeline never touches frame strings. API frames
// arrive pre-interned via api.API.Frame; handler, framework, and
// self-developed frames are interned here.
func internStack(reg *api.Registry, st *stack.Stack) {
	for i := range st.Frames {
		f := &st.Frames[i]
		if f.Sym == stack.NoSym {
			f.Sym = reg.Intern(f.Class, f.Method)
		}
	}
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out = append(out, c)
		}
	}
	return string(out)
}

// Device is the hardware model an app session runs on.
type Device struct {
	Name string
	// Cores is the number of big-cluster cores app threads contend on.
	Cores int
	// Registers is the PMU register count (6 on the LG V10).
	Registers int
	// BGThreads is the number of background interference threads active
	// during an action window (system services, app workers).
	BGThreads int
	// BGBurst and BGGap shape each interference thread's duty cycle.
	BGBurst simclock.Duration
	BGGap   simclock.Duration
	// NoiseScale scales the perf measurement-noise baselines (0 disables
	// measurement noise entirely — used by unit tests).
	NoiseScale float64
	// EnvRichness scales every op's manifestation probability (0 is treated
	// as 1). It models how much of the real-world state that triggers soft
	// hang bugs — large mailboxes, cold caches, heavy HTML, slow flash — the
	// environment can reproduce. In-lab test beds run well below 1, which
	// is the paper's §4.6 argument for keeping Hang Doctor in the wild.
	EnvRichness float64
}

// LGV10 is the paper's primary test device.
func LGV10() Device {
	return Device{
		Name:       "LG V10",
		Cores:      2,
		Registers:  6,
		BGThreads:  2,
		BGBurst:    6 * simclock.Millisecond,
		BGGap:      8 * simclock.Millisecond,
		NoiseScale: 1,
	}
}

// Nexus5 is a secondary device with slightly different interference.
func Nexus5() Device {
	d := LGV10()
	d.Name = "Nexus 5"
	d.BGBurst = 5 * simclock.Millisecond
	d.BGGap = 9 * simclock.Millisecond
	return d
}

// GalaxyS3 is an older device: fewer PMU registers, more background churn.
func GalaxyS3() Device {
	d := LGV10()
	d.Name = "Galaxy S3"
	d.Registers = 4
	d.BGBurst = 7 * simclock.Millisecond
	d.BGGap = 7 * simclock.Millisecond
	return d
}

// Quiet returns a copy of d with measurement noise and background
// interference disabled; unit tests use it for exact assertions.
func (d Device) Quiet() Device {
	d.BGThreads = 0
	d.NoiseScale = 0
	return d
}
