package app

import (
	"hangdoctor/internal/android/api"
	"hangdoctor/internal/cpu"
	"hangdoctor/internal/perf"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/stack"
)

// CostModel describes how an operation consumes the machine when it runs:
// main-thread CPU, blocking waits, memory behaviour, and the rendering work
// it posts to the render thread. The model is the knob set that gives each
// seeded bug its performance-event signature (which of S-Checker's three
// conditions it trips, Table 6) and each UI operation its render-heavy
// profile.
type CostModel struct {
	// CPU is the median main-thread CPU time.
	CPU simclock.Duration
	// Jitter is the lognormal sigma applied to CPU and block durations per
	// execution (real I/O and parse times are right-skewed).
	Jitter float64
	// Blocks is the number of blocking waits (file reads, lock waits, DB
	// round trips) interleaved with the CPU time. Each wait is a voluntary
	// context switch.
	Blocks int
	// BlockEach is the median duration of each blocking wait.
	BlockEach simclock.Duration
	// PreShare is the fraction of CPU spent in caller-level code before and
	// after the leaf operation (stacks sampled there show the handler, not
	// the leaf API), controlling the Diagnoser's occurrence factor. Zero
	// means the default of 0.15.
	PreShare float64

	// MinorFaultsPerSec / MajorFaultsPerSec while on CPU.
	MinorFaultsPerSec float64
	MajorFaultsPerSec float64
	// InstructionsPerSec while on CPU (PMU profile anchor).
	InstructionsPerSec float64
	// MemIntensity scales cache/memory PMU event rates (1 = typical).
	MemIntensity float64

	// Frames and PerFrame describe render-thread work posted at the end of
	// the main-thread portion (UI operations only).
	Frames   int
	PerFrame simclock.Duration

	// PMUScale multiplies every micro-architectural (PMU) event rate.
	// Different operations have wildly different instruction mixes even
	// within one archetype — this is the per-op heterogeneity that makes
	// PMU events correlate worse with the bug/UI label than scheduling
	// events do (paper Table 3). Zero means 1.
	PMUScale float64
}

// preShare returns the effective caller-level share.
func (m CostModel) preShare() float64 {
	if m.PreShare == 0 {
		return 0.15
	}
	return m.PreShare
}

// MainDuration returns the median wall time the op occupies the main thread.
func (m CostModel) MainDuration() simclock.Duration {
	return m.CPU + simclock.Duration(m.Blocks)*m.BlockEach
}

// rates derives the full per-second event rate vector from the cost knobs,
// using fixed architectural ratios typical of a big ARM core.
func (m CostModel) rates() cpu.Rates {
	var r cpu.Rates
	r.MinorFaults = m.MinorFaultsPerSec
	r.MajorFaults = m.MajorFaultsPerSec
	ips := m.InstructionsPerSec
	if ips == 0 {
		ips = 1.2e9
	}
	mem := m.MemIntensity
	if mem == 0 {
		mem = 1
	}
	set := func(e perf.Event, v float64) { r.HW[e.HWIndex()] = v }
	set(perf.Instructions, ips)
	set(perf.Cycles, 1.8e9)
	set(perf.CacheReferences, ips*0.020*mem)
	set(perf.CacheMisses, ips*0.0045*mem)
	set(perf.BranchInstructions, ips*0.18)
	set(perf.BranchMisses, ips*0.004)
	set(perf.BusCycles, 4.5e8)
	set(perf.StalledCyclesFrontend, 1.8e9*0.15)
	set(perf.StalledCyclesBackend, 1.8e9*0.25*mem)
	set(perf.L1DcacheLoads, ips*0.30)
	set(perf.L1DcacheLoadMisses, ips*0.011*mem)
	set(perf.L1DcacheStores, ips*0.165)
	set(perf.L1DcacheStoreMisses, ips*0.0055*mem)
	set(perf.L1IcacheLoads, ips*0.275)
	set(perf.L1IcacheLoadMisses, ips*0.0045)
	set(perf.LLCLoads, ips*0.012*mem)
	set(perf.LLCLoadMisses, ips*0.0025*mem)
	set(perf.LLCStores, ips*0.006*mem)
	set(perf.LLCStoreMisses, ips*0.0013*mem)
	set(perf.DTLBLoads, ips*0.29)
	set(perf.DTLBLoadMisses, ips*0.0012*mem)
	set(perf.ITLBLoads, ips*0.26)
	set(perf.ITLBLoadMisses, ips*0.00055)
	set(perf.BranchLoads, ips*0.175)
	set(perf.BranchLoadMisses, ips*0.0038)
	set(perf.NodeLoads, ips*0.009*mem)
	set(perf.NodeLoadMisses, ips*0.0017*mem)
	set(perf.NodeStores, ips*0.0045*mem)
	set(perf.NodeStoreMisses, ips*0.00085*mem)
	set(perf.RawL1DcacheRefill, ips*0.0105*mem)
	set(perf.RawL1ItlbRefill, ips*0.0006)
	set(perf.RawL2DcacheRefill, ips*0.0035*mem)
	set(perf.RawBusAccess, ips*0.0155*mem)
	set(perf.RawMemAccess, ips*0.445)
	set(perf.RawExcTaken, 1.5e4)
	set(perf.RawLdRetired, ips*0.295)
	set(perf.RawStRetired, ips*0.16)
	if m.PMUScale != 0 && m.PMUScale != 1 {
		for i := range r.HW {
			r.HW[i] *= m.PMUScale
		}
	}
	return r
}

// renderRates is the PMU/fault profile of render-thread frame work: memory
// heavy (texture uploads, display lists) with its own fault pressure.
func renderRates() cpu.Rates {
	m := CostModel{InstructionsPerSec: 1.4e9, MemIntensity: 1.6,
		MinorFaultsPerSec: 2600, MajorFaultsPerSec: 8}
	return m.rates()
}

// renderRatesV is the render profile derived once: it has no per-op knobs,
// so every frame batch shares one vector.
var renderRatesV = renderRates()

// Cost archetype constructors. These encode the four bug signatures the
// corpus needs (see DESIGN.md §4, Table 6) plus the UI profile.

// UIWork models a legitimate heavy UI operation: main-thread layout/measure
// CPU followed by a comparable amount of render-thread frame work. Both
// sides of the main-minus-render difference move together, so none of
// S-Checker's conditions should fire (most of the time).
func UIWork(mainCPU simclock.Duration, frames int) CostModel {
	perFrame := simclock.Duration(0)
	if frames > 0 {
		perFrame = mainCPU / simclock.Duration(frames)
		if perFrame < simclock.Millisecond {
			perFrame = simclock.Millisecond
		}
	}
	return CostModel{
		CPU:                mainCPU,
		Jitter:             0.25,
		MinorFaultsPerSec:  1500,
		MajorFaultsPerSec:  4,
		InstructionsPerSec: 1.0e9,
		MemIntensity:       1.2,
		Frames:             frames,
		PerFrame:           perFrame,
	}
}

// IOHeavy models a blocking-I/O operation (file reads, network on main,
// camera open): many voluntary context switches, little CPU. Trips the
// context-switch condition only.
func IOHeavy(cpuTime simclock.Duration, blocks int, blockEach simclock.Duration) CostModel {
	return CostModel{
		CPU:                cpuTime,
		Jitter:             0.35,
		Blocks:             blocks,
		BlockEach:          blockEach,
		MinorFaultsPerSec:  900,
		MajorFaultsPerSec:  30,
		InstructionsPerSec: 0.8e9,
		MemIntensity:       0.8,
	}
}

// CPULoop models a self-developed lengthy computation (heavy loop): long
// main-thread CPU burns that get preempted under background load. Trips the
// context-switch and task-clock conditions.
func CPULoop(cpuTime simclock.Duration) CostModel {
	return CostModel{
		CPU:                cpuTime,
		Jitter:             0.20,
		MinorFaultsPerSec:  350,
		InstructionsPerSec: 2.2e9,
		MemIntensity:       0.5,
	}
}

// MemHeavy models a mostly-blocked operation with intense memory churn in
// its short CPU portions (mmap-backed DB pages, large allocations): high
// page-fault counts without much CPU or many switches. Trips the page-fault
// condition only — provided the surrounding action also renders frames so
// the render thread collects comparable switches.
func MemHeavy(cpuTime simclock.Duration, blocks int, blockEach simclock.Duration, faultsPerSec float64) CostModel {
	return CostModel{
		CPU:                cpuTime,
		Jitter:             0.30,
		Blocks:             blocks,
		BlockEach:          blockEach,
		MinorFaultsPerSec:  faultsPerSec,
		MajorFaultsPerSec:  faultsPerSec * 0.04,
		InstructionsPerSec: 0.9e9,
		MemIntensity:       2.2,
	}
}

// ParseHeavy models parse/serialize work (HtmlCleaner.clean, gson.toJson):
// long CPU with heavy allocation — trips all three conditions.
func ParseHeavy(cpuTime simclock.Duration) CostModel {
	return CostModel{
		CPU:                cpuTime,
		Jitter:             0.30,
		MinorFaultsPerSec:  9000,
		MajorFaultsPerSec:  60,
		InstructionsPerSec: 1.8e9,
		MemIntensity:       1.8,
	}
}

// Light returns a scaled-down version of m for non-manifesting executions
// (cached data, small inputs): same shape, fraction of the cost.
func (m CostModel) Light(frac float64) *CostModel {
	l := m
	l.CPU = simclock.Duration(float64(m.CPU) * frac)
	l.BlockEach = simclock.Duration(float64(m.BlockEach) * frac)
	if l.Blocks > 2 {
		l.Blocks = 2
	}
	l.Frames = int(float64(m.Frames) * frac)
	return &l
}

// Async describes asynchronous work an op triggers through the session's
// bounded worker pool instead of running its heavy portion on the main
// thread. The op's own CostModel becomes the on-main marshalling around the
// spawn; the real work is Task, executed on a pool worker carrying a causal
// edge back to the originating action. The fields compose into the async
// bug patterns the corpus seeds: Await alone is the on-main-await pattern,
// Tasks > pool width is the post-storm / serialized-pool convoy, Hops adds
// a delayed-post timer chain, Completion.CPU > 0 delivers the result as its
// own main-thread dispatch (async-I/O completion on main), and neither
// Await nor Completion leaves the task detached past the dispatch — the
// leaky-ordering ingredient, where a later action's await queues behind it.
type Async struct {
	// Tasks is the number of tasks submitted (fan-out); 0 means 1.
	Tasks int
	// Task is each task's worker-side cost.
	Task CostModel
	// Await blocks the dispatch on the tasks' join (FutureTask.get on main).
	Await bool
	// Hops routes the submission through a postDelayed timer chain of this
	// many hops before the task reaches the pool.
	Hops int
	// HopDelay is the per-hop delay (required when Hops > 0).
	HopDelay simclock.Duration
	// Completion, when its CPU is non-zero, is posted back to the main
	// thread after the last task finishes and runs as its own monitored
	// dispatch within the action.
	Completion CostModel
	// CompletionDelay posts the completion through Handler.postDelayed with
	// this delay instead of posting it immediately.
	CompletionDelay simclock.Duration
	// TaskFrame overrides the leaf frame of the worker-side stack; nil means
	// the op's own leaf (the usual case, where the spawned work *is* the
	// op's API). Completion-pattern ops use it to separate the off-thread
	// I/O frame from the on-main completion leaf.
	TaskFrame *stack.Frame
}

// Op is one operation executed by an input event on the main thread: a call
// to a platform/library API, or a self-developed code region.
type Op struct {
	// Name is a short human-readable label.
	Name string
	// API is the leaf API called, or nil for self-developed code.
	API *api.API
	// Self is the leaf frame for self-developed code (nil for API ops).
	Self *stack.Frame
	// Via is the wrapper chain between the handler and the leaf API,
	// outermost first: the handler calls Via[0], which calls Via[1], ...,
	// which calls API. Library nesting (the cupboard → SQLite case) lives
	// here.
	Via []*api.API
	// Heavy is the manifesting cost; Light (optional) the benign cost.
	Heavy CostModel
	Light *CostModel
	// Manifest is the per-execution probability that Heavy applies
	// (occasionally-manifesting bugs have Manifest < 1).
	Manifest float64
	// Bug links the op to its seeded-bug metadata; nil for benign ops.
	Bug *Bug
	// Async, when non-nil, makes the op spawn its heavy work through the
	// session's worker pool instead of executing it inline; see Async.
	Async *Async

	// heavyRates / lightRates are the cost models' event-rate vectors,
	// derived once at App.Finalize so dispatches stop recomputing the
	// 40-slot HW vector per execution. lightRates is only meaningful when
	// Light is non-nil (ops without a Light model share defaultLightRates).
	heavyRates cpu.Rates
	lightRates cpu.Rates

	// Async precomputation (App.Finalize, ops with Async only): the
	// worker-side and await-side stacks, their rate vectors, and the causal
	// origins every spawned task is tagged with — all immutable and shared
	// across executions so tagging a sample is a struct copy.
	taskStack        *stack.Stack
	awaitStack       *stack.Stack
	taskRates        cpu.Rates
	completionRates  cpu.Rates
	spawnOrigin      stack.Origin
	completionOrigin stack.Origin
}

// segmentsFor returns the scheduler-segment count one dispatch of the op
// needs under cost m: pre + post caller slices, the leaf portion (with its
// block/compute interleaving), and the render post.
func segmentsFor(m CostModel) int {
	n := 2 // pre + post
	if m.Blocks > 0 {
		n += 1 + 2*m.Blocks
	} else {
		n++
	}
	if m.Frames > 0 && m.PerFrame > 0 {
		n++
	}
	return n
}

// maxSegments bounds the segment count across the op's heavy and light
// executions.
func (o *Op) maxSegments() int {
	n := segmentsFor(o.Heavy)
	light := defaultLightCost()
	if o.Light != nil {
		light = *o.Light
	}
	if ln := segmentsFor(light); ln > n {
		n = ln
	}
	if o.Async != nil {
		n += 2 // launch Call + (possibly) the await gate
	}
	return n
}

// taskCount returns the effective fan-out of an Async spec.
func (a *Async) taskCount() int {
	if a.Tasks <= 0 {
		return 1
	}
	return a.Tasks
}

// TaskLeafFrame returns the leaf frame of the op's worker-side stack: the
// Async.TaskFrame override, or the op's own leaf.
func (o *Op) TaskLeafFrame() stack.Frame {
	if o.Async != nil && o.Async.TaskFrame != nil {
		return *o.Async.TaskFrame
	}
	return o.LeafFrame()
}

// SpawnOrigin returns the causal edge tasks spawned by this op carry; zero
// before App.Finalize or for non-async ops.
func (o *Op) SpawnOrigin() stack.Origin { return o.spawnOrigin }

// LeafFrame returns the innermost frame this op puts on the stack.
func (o *Op) LeafFrame() stack.Frame {
	if o.API != nil {
		return o.API.Frame()
	}
	if o.Self != nil {
		return *o.Self
	}
	return stack.Frame{Class: "app.Unknown", Method: o.Name, File: "Unknown.java", Line: 1}
}

// LeafKey returns the occurrence-counting key of the leaf frame.
func (o *Op) LeafKey() string { return o.LeafFrame().Key() }

// CallChain returns the API chain [Via..., API] (empty for self ops).
func (o *Op) CallChain() []*api.API {
	if o.API == nil {
		return nil
	}
	chain := make([]*api.API, 0, len(o.Via)+1)
	chain = append(chain, o.Via...)
	chain = append(chain, o.API)
	return chain
}

// VisibleAPIs returns the prefix of the call chain an offline source scanner
// can observe: the call *into* a closed-source library is visible in app
// code, but nothing the library calls internally is. Self-developed ops have
// no API chain at all, so offline tools see nothing.
func (o *Op) VisibleAPIs() []*api.API {
	chain := o.CallChain()
	if len(chain) == 0 {
		return nil
	}
	visible := chain[:1]
	for i := 1; i < len(chain); i++ {
		if chain[i-1].Class.ClosedSource {
			break
		}
		visible = chain[:i+1]
	}
	return visible
}

// IsUI reports whether the op's leaf is a UI-class call per the registry.
func (o *Op) IsUI(reg *api.Registry) bool {
	if o.API == nil {
		return false
	}
	return reg.IsUIClass(o.API.Class.Name)
}
