package app

import (
	"testing"
	"testing/quick"

	"hangdoctor/internal/android/api"
	"hangdoctor/internal/cpu"
	"hangdoctor/internal/perf"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
)

func TestCostModelHelpers(t *testing.T) {
	m := IOHeavy(40*simclock.Millisecond, 5, 20*simclock.Millisecond)
	if got := m.MainDuration(); got != 140*simclock.Millisecond {
		t.Fatalf("MainDuration = %v", got)
	}
	l := m.Light(0.1)
	if l.CPU != 4*simclock.Millisecond {
		t.Fatalf("Light CPU = %v", l.CPU)
	}
	if l.Blocks > 2 {
		t.Fatalf("Light blocks = %d", l.Blocks)
	}
	// Default and custom pre-share.
	if (CostModel{}).preShare() != 0.15 {
		t.Fatal("default preShare wrong")
	}
	if (CostModel{PreShare: 0.3}).preShare() != 0.3 {
		t.Fatal("custom preShare ignored")
	}
}

func TestRatesDerivation(t *testing.T) {
	m := CostModel{InstructionsPerSec: 2e9, MemIntensity: 2, MinorFaultsPerSec: 100, MajorFaultsPerSec: 5}
	r := m.rates()
	if r.MinorFaults != 100 || r.MajorFaults != 5 {
		t.Fatalf("fault rates = %v/%v", r.MinorFaults, r.MajorFaults)
	}
	if got := r.HW[perf.Instructions.HWIndex()]; got != 2e9 {
		t.Fatalf("instructions rate = %v", got)
	}
	// Mem intensity scales cache misses but not branch instructions.
	m2 := m
	m2.MemIntensity = 4
	r2 := m2.rates()
	if r2.HW[perf.CacheMisses.HWIndex()] <= r.HW[perf.CacheMisses.HWIndex()] {
		t.Fatal("MemIntensity did not scale cache misses")
	}
	if r2.HW[perf.BranchInstructions.HWIndex()] != r.HW[perf.BranchInstructions.HWIndex()] {
		t.Fatal("MemIntensity leaked into branch instructions")
	}
	// PMUScale multiplies everything micro-architectural.
	m3 := m
	m3.PMUScale = 2
	r3 := m3.rates()
	if r3.HW[perf.Instructions.HWIndex()] != 2*r.HW[perf.Instructions.HWIndex()] {
		t.Fatal("PMUScale not applied")
	}
	if r3.MinorFaults != r.MinorFaults {
		t.Fatal("PMUScale leaked into kernel fault rates")
	}
}

func TestOpLeafFallback(t *testing.T) {
	op := &Op{Name: "mystery"}
	f := op.LeafFrame()
	if f.Method != "mystery" {
		t.Fatalf("fallback frame = %+v", f)
	}
}

func TestEventExecResponseBeforeDone(t *testing.T) {
	ev := &EventExec{Start: 100}
	if ev.ResponseTime() != 0 {
		t.Fatal("unfinished event reported a response time")
	}
}

func TestSessionPerfConfigDefaults(t *testing.T) {
	reg := api.NewRegistry()
	a := testApp(reg)
	dev := LGV10()
	dev.Registers = 0 // unset: must default
	s, err := NewSession(a, dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PerfConfig().Registers; got != perf.DefaultRegisters {
		t.Fatalf("default registers = %d", got)
	}
	if s.PerfConfig().Noise == nil {
		t.Fatal("noise model missing on a noisy device")
	}
	quiet, _ := NewSession(a, LGV10().Quiet(), 1)
	if quiet.PerfConfig().Noise != nil {
		t.Fatal("Quiet device still has measurement noise")
	}
}

func TestPerformReentryPanics(t *testing.T) {
	reg := api.NewRegistry()
	a := testApp(reg)
	s, _ := NewSession(a, LGV10().Quiet(), 1)
	s.AddListener(funcListener{onActionStart: func(e *ActionExec) {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Perform accepted")
			}
		}()
		s.Perform(a.Actions[1])
	}})
	s.Perform(a.Actions[0])
}

func TestSessionOnSharedKernel(t *testing.T) {
	reg := api.NewRegistry()
	a1 := testApp(reg)
	a2 := testApp(reg)
	a2.Name = "TestApp2"
	clk := simclock.New()
	sched := cpu.New(clk, 2)
	rng := simrand.New(9)
	s1, err := NewSessionOn(clk, sched, a1, LGV10().Quiet(), rng)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSessionOn(clk, sched, a2, LGV10().Quiet(), rng)
	if err != nil {
		t.Fatal(err)
	}
	e1 := s1.Perform(a1.MustAction("Open Camera"))
	e2 := s2.Perform(a2.MustAction("Open Camera"))
	if e1.ResponseTime() <= 0 || e2.ResponseTime() <= 0 {
		t.Fatal("shared-kernel sessions did not execute")
	}
	// Time is shared: the second action happened after the first.
	if e2.Start < e1.End {
		t.Fatal("shared clock not monotonic across sessions")
	}
}

// TestResponseAtLeastPlannedDuration: an execution's response time can never
// be below the planned main-thread duration of its manifested ops
// (preemption and noise only add).
func TestResponseAtLeastPlannedDuration(t *testing.T) {
	reg := api.NewRegistry()
	a := testApp(reg)
	s, _ := NewSession(a, LGV10(), 17)
	f := func(pick uint8) bool {
		act := a.Actions[int(pick)%len(a.Actions)]
		exec := s.Perform(act)
		s.Idle(simclock.Second)
		var planned simclock.Duration
		for _, h := range exec.Heavy {
			planned += h.Dur
		}
		return exec.ResponseTime() >= planned*98/100 // integer rounding slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceModels(t *testing.T) {
	for _, dev := range []Device{LGV10(), Nexus5(), GalaxyS3()} {
		if dev.Cores <= 0 || dev.Name == "" {
			t.Errorf("bad device %+v", dev)
		}
	}
	if GalaxyS3().Registers >= LGV10().Registers {
		t.Error("Galaxy S3 should have fewer PMU registers")
	}
	q := LGV10().Quiet()
	if q.BGThreads != 0 || q.NoiseScale != 0 {
		t.Errorf("Quiet() = %+v", q)
	}
}
