package app

import (
	"fmt"

	"hangdoctor/internal/android/looper"
	"hangdoctor/internal/android/render"
	"hangdoctor/internal/cpu"
	"hangdoctor/internal/fault"
	"hangdoctor/internal/perf"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
	"hangdoctor/internal/stack"
)

// EventExec records one input event's dispatch on the main thread.
type EventExec struct {
	Name  string
	Index int
	Start simclock.Time
	End   simclock.Time
	Done  bool
	// Exec is the owning action execution.
	Exec *ActionExec
}

// ResponseTime returns the dispatch duration (End-Start); for an unfinished
// event it returns the time elapsed so far relative to now being unknown,
// i.e. zero until Done.
func (e *EventExec) ResponseTime() simclock.Duration {
	if !e.Done {
		return 0
	}
	return e.End.Sub(e.Start)
}

// HeavyOp records that an op manifested its heavy cost during an execution,
// with the planned main-thread duration (CPU + blocking) it was given.
type HeavyOp struct {
	Op  *Op
	Dur simclock.Duration
}

// ActionExec records one execution of an action: timing, per-event response
// times, and the ground-truth set of manifested heavy operations (which the
// evaluation harness uses to label hangs as bug-caused or UI-caused; a real
// deployment has no access to this).
type ActionExec struct {
	Action *Action
	Seq    int
	Start  simclock.Time
	End    simclock.Time
	Events []*EventExec
	Heavy  []HeavyOp
}

// ResponseTime returns the action's response time: the maximum input-event
// response time, per the paper's definition (§2.2).
func (a *ActionExec) ResponseTime() simclock.Duration {
	var max simclock.Duration
	for _, e := range a.Events {
		if rt := e.ResponseTime(); rt > max {
			max = rt
		}
	}
	return max
}

// BugCaused returns the manifested bug op with the longest planned duration
// at or above minDur, or nil. This is the evaluation ground truth for
// whether a soft hang of this execution is attributable to a soft hang bug.
func (a *ActionExec) BugCaused(minDur simclock.Duration) *Bug {
	var best *Bug
	var bestDur simclock.Duration
	for _, h := range a.Heavy {
		if h.Op.Bug != nil && h.Dur >= minDur && h.Dur > bestDur {
			best = h.Op.Bug
			bestDur = h.Dur
		}
	}
	return best
}

// Listener observes action lifecycle events; detectors implement it.
type Listener interface {
	ActionStart(*ActionExec)
	EventStart(*ActionExec, *EventExec)
	EventEnd(*ActionExec, *EventExec)
	ActionEnd(*ActionExec)
}

// Session executes an app's actions on a simulated device.
type Session struct {
	App    *App
	Device Device

	Clk    *simclock.Clock
	Sched  *cpu.Scheduler
	Looper *looper.Looper
	Render *render.Thread

	rng      *simrand.Rand
	noise    *perf.NoiseModel
	perfRng  *simrand.Rand
	faults   *fault.Injector
	listener []Listener

	execCount map[string]int
	current   *ActionExec

	// pool is the app's bounded worker pool; nil for apps with no async ops,
	// so the pre-async corpus runs on an unchanged thread population.
	pool *workerPool
	// pendingCompletions counts async completions submitted but not yet
	// dispatched; Perform waits for them (the completion is part of the
	// action), while detached tasks deliberately are not waited on.
	pendingCompletions int

	bg     []*cpu.Thread
	bgStop bool
}

// NewSession builds the full simulated stack for one app on one device.
// The app must be finalized. seed determines every random choice of the
// session (jitter, manifestation, interference, measurement noise).
func NewSession(a *App, dev Device, seed uint64) (*Session, error) {
	if dev.Cores <= 0 {
		return nil, fmt.Errorf("app: device %q has no cores", dev.Name)
	}
	clk := simclock.New()
	sched := cpu.New(clk, dev.Cores)
	return NewSessionOn(clk, sched, a, dev, simrand.New(seed))
}

// NewSessionOn builds a session on an existing clock and scheduler, so
// several apps can share one simulated kernel (the multi-app device of
// internal/system). The caller owns rng; the session derives a private
// sub-stream from it.
func NewSessionOn(clk *simclock.Clock, sched *cpu.Scheduler, a *App, dev Device, rng *simrand.Rand) (*Session, error) {
	if err := a.Finalize(); err != nil {
		return nil, err
	}
	s := &Session{
		App:       a,
		Device:    dev,
		Clk:       clk,
		Sched:     sched,
		Looper:    looper.New(sched, "main:"+a.Name),
		Render:    render.New(sched),
		rng:       rng.Derive("session/" + a.Name),
		execCount: map[string]int{},
	}
	if dev.NoiseScale > 0 {
		s.noise = perf.DefaultNoise(s.rng.Derive("noise"))
		s.noise.BaseScale = dev.NoiseScale
	}
	s.perfRng = s.rng.Derive("perf")
	s.Looper.AddDispatchHook(sessionHook{s})
	if a.HasAsync() {
		s.pool = newWorkerPool(sched, a.Name, a.PoolWidth)
	}
	return s, nil
}

// MainThread returns the app's main thread.
func (s *Session) MainThread() *cpu.Thread { return s.Looper.Thread() }

// RenderThread returns the render thread.
func (s *Session) RenderThread() *cpu.Thread { return s.Render.CPUThread() }

// WorkerThreads returns the app's pool worker threads (nil when the app has
// no async ops). They are scheduled entities like any other: a perf session
// can open counters on them, and the sampler walks them via SampleTagged.
func (s *Session) WorkerThreads() []*cpu.Thread {
	if s.pool == nil {
		return nil
	}
	return s.pool.threads
}

// PerfConfig returns the perf session configuration matching this device
// (register count, measurement-noise model, deterministic RNG). It does not
// carry the fault injector: consumers that can survive measurement faults
// opt in explicitly (see core.Doctor), so auxiliary perf users keep their
// must-succeed semantics.
func (s *Session) PerfConfig() perf.Config {
	regs := s.Device.Registers
	if regs == 0 {
		regs = perf.DefaultRegisters
	}
	return perf.Config{Registers: regs, Noise: s.noise, Rng: s.perfRng}
}

// SetFaults installs a fault injector on the session's measurement plane.
// Nil (the default) means a perfect measurement plane.
func (s *Session) SetFaults(in *fault.Injector) { s.faults = in }

// Faults returns the installed fault injector (nil-safe to use directly).
func (s *Session) Faults() *fault.Injector { return s.faults }

// SampleMainStack is the fault-aware main-thread stack dump: what a trace
// collector actually gets on a loaded device. missed is true when the dump
// was lost to fault injection (as opposed to the thread being idle, which
// returns nil/false/false); truncated is true when outer frames were cut.
func (s *Session) SampleMainStack() (st *stack.Stack, missed, truncated bool) {
	st = s.MainThread().CurrentStack()
	if st == nil {
		return nil, false, false
	}
	if s.faults.StackMissed() {
		return nil, true, false
	}
	if kept, ok := s.faults.TruncateTo(st.Depth()); ok {
		return st.Truncate(kept), false, true
	}
	return st, false, false
}

// SampleTagged is the causal sampler's dump: the main-thread stack plus the
// stack of every busy pool worker, each tagged with the causal origin of the
// work it is executing. Samples are appended onto buf (the caller reuses one
// slice across a hang, so the warm path is allocation-free), and the returns
// report whether the main dump was lost to fault injection, how many dumps
// were truncated, and how many worker dumps were lost. Idle threads
// contribute nothing; worker dumps obey the same truncation faults as main
// dumps and their own loss rate (fault.Rates.WorkerStackMiss).
func (s *Session) SampleTagged(buf []stack.Tagged) (out []stack.Tagged, mainMissed bool, truncated, workersLost int) {
	out = buf
	st, missed, trunc := s.SampleMainStack()
	if trunc {
		truncated++
	}
	if st != nil {
		var o stack.Origin
		if m := s.Looper.Current(); m != nil {
			o = m.Origin
		}
		out = append(out, stack.Tagged{Stack: st, Origin: o})
	}
	if s.pool != nil {
		for i, th := range s.pool.threads {
			if !s.pool.busy[i] {
				continue
			}
			wst := th.CurrentStack()
			if wst == nil {
				continue
			}
			if s.faults.WorkerStackMissed() {
				workersLost++
				continue
			}
			if kept, ok := s.faults.TruncateTo(wst.Depth()); ok {
				wst = wst.Truncate(kept)
				truncated++
			}
			out = append(out, stack.Tagged{Stack: wst, Origin: s.pool.origins[i], Worker: true})
		}
	}
	return out, missed, truncated, workersLost
}

// AddListener attaches a lifecycle observer (typically a detector).
func (s *Session) AddListener(l Listener) { s.listener = append(s.listener, l) }

// Current returns the in-flight action execution, or nil between actions.
func (s *Session) Current() *ActionExec { return s.current }

// sessionHook adapts looper dispatch boundaries to Listener event calls.
type sessionHook struct{ s *Session }

func (h sessionHook) DispatchStart(m *looper.Message, at simclock.Time) {
	ev, ok := m.Meta.(*EventExec)
	if !ok {
		return
	}
	ev.Start = at
	for _, l := range h.s.listener {
		l.EventStart(ev.Exec, ev)
	}
}

func (h sessionHook) DispatchEnd(m *looper.Message, start, end simclock.Time) {
	ev, ok := m.Meta.(*EventExec)
	if !ok {
		return
	}
	ev.End = end
	ev.Done = true
	for _, l := range h.s.listener {
		l.EventEnd(ev.Exec, ev)
	}
}

// Idle advances simulated time by d with the device quiescent (user think
// time between actions). Pending events in that window (detector timers,
// leftover wakeups) do fire.
func (s *Session) Idle(d simclock.Duration) {
	s.Clk.RunUntil(s.Clk.Now().Add(d))
}

// Perform executes one action to completion: posts its input events, runs
// the simulation until the main thread, the render thread, and the message
// queue are all idle (the paper's "none of the two threads execute" action
// boundary), and returns the execution record.
func (s *Session) Perform(act *Action) *ActionExec {
	if s.current != nil {
		panic("app: Perform re-entered while an action is in flight")
	}
	exec := &ActionExec{
		Action: act,
		Seq:    s.execCount[act.UID],
		Start:  s.Clk.Now(),
	}
	s.execCount[act.UID]++
	s.current = exec
	s.startInterference()
	for _, l := range s.listener {
		l.ActionStart(exec)
	}
	exec.Events = make([]*EventExec, 0, len(act.Events))
	for i, ie := range act.Events {
		ev := &EventExec{Name: ie.Name, Index: i, Exec: exec}
		exec.Events = append(exec.Events, ev)
		msg := &looper.Message{
			Name:     act.UID + "/" + ie.Name,
			Segments: s.buildSegments(act, ie, exec),
			Meta:     ev,
			Origin:   act.inputOrigin,
		}
		s.Looper.Post(msg)
	}
	guard := 0
	for !s.actionDone() {
		if !s.Clk.Step() {
			panic(fmt.Sprintf("app: simulation stalled during action %s", act.UID))
		}
		guard++
		if guard > 5_000_000 {
			panic(fmt.Sprintf("app: action %s exceeded event budget", act.UID))
		}
	}
	s.stopInterference()
	exec.End = s.Clk.Now()
	s.current = nil
	for _, l := range s.listener {
		l.ActionEnd(exec)
	}
	return exec
}

// actionDone reports whether both threads have drained. Pending async
// completions count as part of the action (their dispatch is the user-visible
// result delivery); detached worker tasks do not — they may outlive the
// action, which is exactly what makes cross-action convoys possible.
func (s *Session) actionDone() bool {
	return s.Looper.Idle() &&
		s.MainThread().State() == cpu.Waiting &&
		s.Render.Idle() &&
		s.RenderThread().State() == cpu.Waiting &&
		s.pendingCompletions == 0
}

// buildSegments turns an input event's ops into the main-thread program,
// drawing this execution's manifestation and jitter, and recording heavy
// ops into exec. Stacks and rate vectors were precomputed at Finalize; the
// only allocation here is the program slice itself, sized once from the
// event's worst case (it escapes into the posted looper message, so it
// cannot be pooled).
func (s *Session) buildSegments(act *Action, ie *InputEvent, exec *ActionExec) []cpu.Segment {
	rich := s.Device.EnvRichness
	if rich == 0 {
		rich = 1
	}
	segs := make([]cpu.Segment, 0, ie.segCap)
	for oi, op := range ie.Ops {
		manifest := op.Manifest
		if manifest < 1 {
			// Environment-dependent ops manifest less often in a poorer
			// environment; always-heavy ops (UI work) are unaffected.
			manifest *= rich
		}
		heavy := s.rng.Bool(manifest)
		cost := op.Heavy
		rates := &op.heavyRates
		if !heavy {
			if op.Light != nil {
				cost = *op.Light
				rates = &op.lightRates
			} else {
				cost = defaultLightCost()
				rates = &defaultLightRates
			}
		}
		f := s.rng.Jitter(1, cost.Jitter)
		if op.Async != nil {
			segs = s.asyncSegments(op, heavy, f, cost, rates, act.callerStack, ie.fullStacks[oi], exec, segs)
			continue
		}
		var mainDur simclock.Duration
		segs, mainDur = s.opSegments(op, cost, rates, f, act.callerStack, ie.fullStacks[oi], segs)
		if heavy {
			exec.Heavy = append(exec.Heavy, HeavyOp{Op: op, Dur: mainDur})
		}
	}
	return segs
}

// asyncSegments appends an async op's main-thread program: the on-main
// marshalling at the op's site (the op's own cost model), a Call that
// launches the spawn — optionally through a postDelayed hop chain — and, for
// awaited ops, a WaitGate that parks the dispatch in FutureTask.get until
// the join. Ground truth is recorded at runtime with actual durations:
// awaited ops record the real stall between submit and join (which includes
// queueing behind other origins' tasks — the convoy and leaky-ordering
// patterns), completion ops record the dispatch they post back. All
// randomness is drawn here, in build order, so executions stay replayable.
func (s *Session) asyncSegments(op *Op, heavy bool, f float64, cost CostModel, rates *cpu.Rates,
	callerStack, fullStack *stack.Stack, exec *ActionExec, segs []cpu.Segment) []cpu.Segment {
	spec := op.Async
	segs, _ = s.opSegments(op, cost, rates, f, callerStack, fullStack, segs)

	taskCost, tRates := spec.Task, &op.taskRates
	if !heavy {
		taskCost, tRates = defaultLightCost(), &defaultLightRates
	}
	tasks := make([]*poolTask, spec.taskCount())
	for i := range tasks {
		tsegs, _ := taskSegments(taskCost, tRates, s.rng.Jitter(1, taskCost.Jitter), op.taskStack)
		tasks[i] = &poolTask{op: op, origin: op.spawnOrigin, segs: tsegs}
	}

	var compSegs []cpu.Segment
	var compDur simclock.Duration
	if spec.Completion.CPU > 0 {
		compCost, cRates := spec.Completion, &op.completionRates
		if !heavy {
			compCost, cRates = defaultLightCost(), &defaultLightRates
		}
		compSegs, compDur = taskSegments(compCost, cRates, s.rng.Jitter(1, compCost.Jitter), fullStack)
		compSegs = append(compSegs, cpu.Call{Fn: func() { s.pendingCompletions-- }})
	}

	var gate *cpu.Gate
	if spec.Await {
		gate = cpu.NewGate()
	}
	segs = append(segs, cpu.Call{Fn: func() {
		s.launchAsync(op, exec, tasks, gate, compSegs, compDur, heavy)
	}})
	if spec.Await {
		segs = append(segs, cpu.WaitGate{G: gate, Stack: op.awaitStack})
	}
	return segs
}

// launchAsync runs on the main thread at dispatch time. It captures the
// submit instant and the pool's current cross-op blocker (ground truth for
// convoy stalls), wires the join, and hands the tasks to the pool — directly
// or through the postDelayed hop chain (the timer runs off-thread, so hops
// delay the work without occupying the looper).
func (s *Session) launchAsync(op *Op, exec *ActionExec, tasks []*poolTask, gate *cpu.Gate,
	compSegs []cpu.Segment, compDur simclock.Duration, heavy bool) {
	spec := op.Async
	submitAt := s.Clk.Now()
	blocker := s.pool.blocker(op)
	if compSegs != nil {
		s.pendingCompletions++
	}
	remaining := len(tasks)
	done := func() {
		if remaining--; remaining > 0 {
			return
		}
		if gate != nil {
			// The stall an awaited spawn actually imposed on the dispatch:
			// hop delays + queueing + task runtime. Recorded unconditionally —
			// the harness's perceivability threshold discards benign waits —
			// and attributed to the blocking op too when the pool was busy
			// with another op's work at submit (its bug caused this stall).
			stall := s.Clk.Now().Sub(submitAt)
			exec.Heavy = append(exec.Heavy, HeavyOp{Op: op, Dur: stall})
			if blocker != nil {
				exec.Heavy = append(exec.Heavy, HeavyOp{Op: blocker, Dur: stall})
			}
			gate.Open()
		}
		if compSegs != nil {
			s.postCompletion(op, exec, compSegs, compDur, heavy)
		}
	}
	for _, t := range tasks {
		t.done = done
	}
	submit := func() {
		for _, t := range tasks {
			s.pool.submit(t)
		}
	}
	if spec.Hops == 0 {
		submit()
		return
	}
	var hop func(int)
	hop = func(left int) {
		if left == 0 {
			submit()
			return
		}
		s.Clk.After(spec.HopDelay, func() { hop(left - 1) })
	}
	hop(spec.Hops)
}

// postCompletion delivers an async op's result back to the main thread as
// its own monitored dispatch: a synthetic event appended to the execution and
// posted (postDelayed when the spec says so) carrying the op's completion
// origin, so samplers see the causal chain and detectors see the response
// time like any input event's.
func (s *Session) postCompletion(op *Op, exec *ActionExec, compSegs []cpu.Segment,
	compDur simclock.Duration, heavy bool) {
	ev := &EventExec{Name: "completion:" + op.Name, Index: len(exec.Events), Exec: exec}
	exec.Events = append(exec.Events, ev)
	if heavy {
		exec.Heavy = append(exec.Heavy, HeavyOp{Op: op, Dur: compDur})
	}
	msg := &looper.Message{
		Name:     exec.Action.UID + "/" + ev.Name,
		Segments: compSegs,
		Meta:     ev,
		Origin:   op.completionOrigin,
	}
	s.Looper.PostDelayed(msg, op.Async.CompletionDelay)
}

// defaultLightCost is the benign execution of an occasionally-manifesting
// op: a few milliseconds of plain work.
func defaultLightCost() CostModel {
	return CostModel{CPU: 3 * simclock.Millisecond, Jitter: 0.3,
		MinorFaultsPerSec: 500, InstructionsPerSec: 1.0e9}
}

// defaultLightRates is defaultLightCost's rate vector, derived once.
var defaultLightRates = defaultLightCost().rates()

// frameworkFrames are the constant outermost frames of any main-thread
// dispatch stack.
var frameworkFrames = []stack.Frame{
	{Class: "android.os.Handler", Method: "dispatchMessage", File: "Handler.java", Line: 106},
	{Class: "android.os.Looper", Method: "loop", File: "Looper.java", Line: 193},
}

// opSegments appends the scheduler program for one op at the given cost and
// jitter factor onto segs, returning the extended program and the planned
// main-thread duration. callerStack and fullStack are the action's and
// op's precomputed immutable stacks; rates points at the matching
// precomputed vector (segments copy it by value).
func (s *Session) opSegments(op *Op, cost CostModel, rates *cpu.Rates, f float64,
	callerStack, fullStack *stack.Stack, segs []cpu.Segment) ([]cpu.Segment, simclock.Duration) {
	cpuTotal := simclock.Duration(float64(cost.CPU) * f)
	pre := simclock.Duration(float64(cpuTotal) * cost.preShare() / 2)
	post := pre
	mid := cpuTotal - pre - post
	if mid < 0 {
		mid = 0
	}
	blockEach := simclock.Duration(float64(cost.BlockEach) * f)
	mainDur := cpuTotal + simclock.Duration(cost.Blocks)*blockEach

	if pre > 0 {
		segs = append(segs, cpu.Compute{Dur: pre, Rates: *rates, Stack: callerStack})
	}
	if cost.Blocks > 0 {
		chunk := mid / simclock.Duration(cost.Blocks+1)
		segs = append(segs, cpu.Compute{Dur: chunk, Rates: *rates, Stack: fullStack})
		for i := 0; i < cost.Blocks; i++ {
			segs = append(segs,
				cpu.Block{Dur: blockEach, Stack: fullStack},
				cpu.Compute{Dur: chunk, Rates: *rates, Stack: fullStack},
			)
		}
	} else if mid > 0 {
		segs = append(segs, cpu.Compute{Dur: mid, Rates: *rates, Stack: fullStack})
	}
	if post > 0 {
		segs = append(segs, cpu.Compute{Dur: post, Rates: *rates, Stack: callerStack})
	}
	if cost.Frames > 0 && cost.PerFrame > 0 {
		// Render cost varies per execution independently of the main-thread
		// jitter: frame complexity depends on what actually changed on
		// screen, not on how long the handler ran.
		rf := s.rng.Jitter(f, 0.18)
		batch := render.FrameBatch{
			Frames:   cost.Frames,
			PerFrame: simclock.Duration(float64(cost.PerFrame) * rf),
			Rates:    renderRatesV,
		}
		segs = append(segs, cpu.Call{Fn: func() { s.Render.Post(batch) }})
	}
	return segs, mainDur
}

// startInterference spins up the device's background threads for the action
// window: system services and app workers whose bursts preempt the app
// threads, producing the involuntary context switches long main-thread
// computations accumulate on a real phone.
func (s *Session) startInterference() {
	s.bgStop = false
	if s.Device.BGThreads <= 0 {
		return
	}
	s.bg = s.bg[:0]
	for i := 0; i < s.Device.BGThreads; i++ {
		th := s.Sched.NewThread(fmt.Sprintf("bg%d", i))
		rng := s.rng.Derive(fmt.Sprintf("bg/%d/%d", i, s.Clk.Now()))
		burst, gap := s.Device.BGBurst, s.Device.BGGap
		th.SetOnIdle(func() {
			if s.bgStop {
				return
			}
			th.Enqueue(
				cpu.Block{Dur: simclock.Duration(rng.Jitter(float64(gap), 0.4))},
				cpu.Compute{
					Dur:   simclock.Duration(rng.Jitter(float64(burst), 0.4)),
					Rates: defaultLightRates,
				},
			)
		})
		// Kick the loop.
		th.Enqueue(cpu.Block{Dur: simclock.Duration(rng.Jitter(float64(gap)/2, 0.4))})
		s.bg = append(s.bg, th)
	}
}

// stopInterference tears the background threads down at action end.
func (s *Session) stopInterference() {
	s.bgStop = true
	for _, th := range s.bg {
		if th.State() != cpu.Dead {
			th.Exit()
		}
	}
	s.bg = s.bg[:0]
}
