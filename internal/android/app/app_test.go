package app

import (
	"testing"

	"hangdoctor/internal/android/api"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/stack"
)

// testApp builds a minimal two-action app: one with an always-manifesting
// IO-heavy bug, one with pure UI work.
func testApp(reg *api.Registry) *App {
	camera, _ := reg.API("android.hardware.Camera.open")
	setText, _ := reg.API("android.widget.TextView.setText")
	a := &App{
		Name:     "TestApp",
		Commit:   "abc123",
		Category: "Tools",
		Registry: reg,
	}
	bug := &Bug{ID: "TestApp/1", IssueID: "1", Description: "camera open on main"}
	a.Bugs = []*Bug{bug}
	a.Actions = []*Action{
		{
			Name: "Open Camera",
			Events: []*InputEvent{{
				Name: "evt0",
				Ops: []*Op{{
					Name:  "open",
					API:   camera,
					Heavy: IOHeavy(40*simclock.Millisecond, 8, 25*simclock.Millisecond),
					Bug:   bug,
				}},
			}},
		},
		{
			Name: "Show Text",
			Events: []*InputEvent{{
				Name: "evt0",
				Ops: []*Op{{
					Name:  "setText",
					API:   setText,
					Heavy: UIWork(130*simclock.Millisecond, 14),
				}},
			}},
		},
	}
	return a
}

func TestFinalizeAssignsUIDsAndLinksBugs(t *testing.T) {
	reg := api.NewRegistry()
	a := testApp(reg)
	if err := a.Finalize(); err != nil {
		t.Fatal(err)
	}
	act := a.MustAction("Open Camera")
	if act.UID != "TestApp/Open Camera" {
		t.Fatalf("UID = %q", act.UID)
	}
	if act.Handler.Class == "" {
		t.Fatal("handler frame not defaulted")
	}
	b := a.Bugs[0]
	if b.Op == nil || b.Action != act || b.App != a {
		t.Fatalf("bug not linked: %+v", b)
	}
	if b.RootCauseKey() != "android.hardware.Camera.open" {
		t.Fatalf("RootCauseKey = %q", b.RootCauseKey())
	}
	// Finalize is idempotent.
	if err := a.Finalize(); err != nil {
		t.Fatal(err)
	}
}

func TestFinalizeValidation(t *testing.T) {
	reg := api.NewRegistry()
	cases := []struct {
		name string
		mut  func(*App)
	}{
		{"no actions", func(a *App) { a.Actions = nil }},
		{"duplicate action", func(a *App) { a.Actions = append(a.Actions, a.Actions[0]) }},
		{"empty event ops", func(a *App) { a.Actions[0].Events[0].Ops = nil }},
		{"unattached bug", func(a *App) { a.Actions[0].Events[0].Ops[0].Bug = nil }},
	}
	for _, tc := range cases {
		a := testApp(reg)
		tc.mut(a)
		if err := a.Finalize(); err == nil {
			t.Errorf("%s: Finalize accepted invalid app", tc.name)
		}
	}
}

func TestVisibleAPIsClosedSourceBoundary(t *testing.T) {
	reg := api.NewRegistry()
	sqlite, _ := reg.API("android.database.sqlite.SQLiteDatabase.insertWithOnConflict")
	cupboardClass := reg.DefineClass("nl.qbusict.cupboard.Cupboard", false, "cupboard", true)
	cupboardGet := reg.DefineAPI(cupboardClass, "get", "", 210, 0)

	// Known blocking API nested inside a closed-source wrapper: offline sees
	// only the wrapper.
	op := &Op{Name: "get", API: sqlite, Via: []*api.API{cupboardGet}}
	vis := op.VisibleAPIs()
	if len(vis) != 1 || vis[0] != cupboardGet {
		t.Fatalf("visible = %v, want just cupboard.get", vis)
	}

	// Same nesting through an open-source wrapper: the inner call is visible.
	openClass := reg.DefineClass("org.open.Helper", false, "helper", false)
	openWrap := reg.DefineAPI(openClass, "store", "", 5, 0)
	op2 := &Op{Name: "store", API: sqlite, Via: []*api.API{openWrap}}
	if vis := op2.VisibleAPIs(); len(vis) != 2 || vis[1] != sqlite {
		t.Fatalf("visible = %v, want wrapper+sqlite", vis)
	}

	// Self-developed op: nothing for an offline scanner to match.
	op3 := &Op{Name: "loop", Self: &stack.Frame{Class: "app.X", Method: "heavyLoop"}}
	if vis := op3.VisibleAPIs(); vis != nil {
		t.Fatalf("self op visible = %v, want nil", vis)
	}
}

func TestIsUI(t *testing.T) {
	reg := api.NewRegistry()
	setText, _ := reg.API("android.widget.TextView.setText")
	camera, _ := reg.API("android.hardware.Camera.open")
	if !(&Op{API: setText}).IsUI(reg) {
		t.Fatal("setText should be UI")
	}
	if (&Op{API: camera}).IsUI(reg) {
		t.Fatal("camera.open should not be UI")
	}
	if (&Op{Self: &stack.Frame{Class: "a.B", Method: "m"}}).IsUI(reg) {
		t.Fatal("self op should not be UI")
	}
}

func TestPerformResponseTimeQuietDevice(t *testing.T) {
	reg := api.NewRegistry()
	a := testApp(reg)
	s, err := NewSession(a, LGV10().Quiet(), 1)
	if err != nil {
		t.Fatal(err)
	}
	exec := s.Perform(a.MustAction("Open Camera"))
	// IOHeavy(40ms CPU, 8 x 25ms blocks): ~240ms median, jittered.
	rt := exec.ResponseTime()
	if rt < 120*simclock.Millisecond || rt > 600*simclock.Millisecond {
		t.Fatalf("bug action response = %v, want a perceivable hang in [120ms,600ms]", rt)
	}
	if exec.BugCaused(100*simclock.Millisecond) == nil {
		t.Fatal("always-manifesting bug not recorded as heavy")
	}
	if exec.End.Sub(exec.Start) < rt {
		t.Fatal("action window shorter than its response time")
	}
}

func TestPerformUIActionGroundTruth(t *testing.T) {
	reg := api.NewRegistry()
	a := testApp(reg)
	s, err := NewSession(a, LGV10().Quiet(), 2)
	if err != nil {
		t.Fatal(err)
	}
	exec := s.Perform(a.MustAction("Show Text"))
	if exec.BugCaused(100*simclock.Millisecond) != nil {
		t.Fatal("UI action misattributed to a bug")
	}
	// Render work extends the action window past the main-thread response.
	if exec.End.Sub(exec.Start) <= exec.ResponseTime() {
		t.Fatalf("action window %v should exceed response %v (render drain)",
			exec.End.Sub(exec.Start), exec.ResponseTime())
	}
	// UI work must still be a perceivable hang for Table 2's false positives.
	if exec.ResponseTime() < 100*simclock.Millisecond {
		t.Fatalf("UI response = %v, want >100ms", exec.ResponseTime())
	}
}

func TestListenersFireInOrder(t *testing.T) {
	reg := api.NewRegistry()
	a := testApp(reg)
	s, _ := NewSession(a, LGV10().Quiet(), 3)
	var trace []string
	s.AddListener(funcListener{
		onActionStart: func(e *ActionExec) { trace = append(trace, "AS") },
		onEventStart:  func(e *ActionExec, ev *EventExec) { trace = append(trace, "ES") },
		onEventEnd:    func(e *ActionExec, ev *EventExec) { trace = append(trace, "EE") },
		onActionEnd:   func(e *ActionExec) { trace = append(trace, "AE") },
	})
	s.Perform(a.MustAction("Open Camera"))
	want := "AS ES EE AE"
	got := ""
	for i, s := range trace {
		if i > 0 {
			got += " "
		}
		got += s
	}
	if got != want {
		t.Fatalf("listener order = %q, want %q", got, want)
	}
}

type funcListener struct {
	onActionStart func(*ActionExec)
	onEventStart  func(*ActionExec, *EventExec)
	onEventEnd    func(*ActionExec, *EventExec)
	onActionEnd   func(*ActionExec)
}

func (f funcListener) ActionStart(e *ActionExec) {
	if f.onActionStart != nil {
		f.onActionStart(e)
	}
}
func (f funcListener) EventStart(e *ActionExec, ev *EventExec) {
	if f.onEventStart != nil {
		f.onEventStart(e, ev)
	}
}
func (f funcListener) EventEnd(e *ActionExec, ev *EventExec) {
	if f.onEventEnd != nil {
		f.onEventEnd(e, ev)
	}
}
func (f funcListener) ActionEnd(e *ActionExec) {
	if f.onActionEnd != nil {
		f.onActionEnd(e)
	}
}

func TestDeterministicReplay(t *testing.T) {
	reg := api.NewRegistry()
	run := func() []simclock.Duration {
		a := testApp(reg)
		s, _ := NewSession(a, LGV10(), 42)
		var rts []simclock.Duration
		for i := 0; i < 5; i++ {
			exec := s.Perform(a.MustAction("Open Camera"))
			rts = append(rts, exec.ResponseTime())
			s.Idle(simclock.Second)
		}
		return rts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Jitter means not all executions are identical.
	allSame := true
	for i := 1; i < len(a); i++ {
		if a[i] != a[0] {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("expected per-execution jitter in response times")
	}
}

func TestOccasionalManifestation(t *testing.T) {
	reg := api.NewRegistry()
	camera, _ := reg.API("android.hardware.Camera.open")
	bug := &Bug{ID: "X/1", IssueID: "1"}
	a := &App{
		Name:     "Occasional",
		Registry: reg,
		Bugs:     []*Bug{bug},
		Actions: []*Action{{
			Name: "Act",
			Events: []*InputEvent{{Name: "e", Ops: []*Op{{
				Name:     "open",
				API:      camera,
				Heavy:    IOHeavy(40*simclock.Millisecond, 8, 30*simclock.Millisecond),
				Manifest: 0.3,
				Bug:      bug,
			}}}},
		}},
	}
	s, err := NewSession(a, LGV10().Quiet(), 7)
	if err != nil {
		t.Fatal(err)
	}
	manifested, benign := 0, 0
	for i := 0; i < 60; i++ {
		exec := s.Perform(a.Actions[0])
		if exec.BugCaused(100*simclock.Millisecond) != nil {
			manifested++
		} else {
			benign++
		}
		s.Idle(500 * simclock.Millisecond)
	}
	if manifested == 0 || benign == 0 {
		t.Fatalf("manifested=%d benign=%d; want a mix at p=0.3", manifested, benign)
	}
	if manifested > benign {
		t.Fatalf("manifested=%d > benign=%d at p=0.3", manifested, benign)
	}
}

func TestInterferenceProducesPreemption(t *testing.T) {
	reg := api.NewRegistry()
	a := testApp(reg)
	// Replace the bug op with a pure CPU loop to measure preemption.
	a.Actions[0].Events[0].Ops[0] = &Op{
		Name:  "loop",
		Self:  &stack.Frame{Class: "app.TestApp.Worker", Method: "heavyLoop", File: "Worker.java", Line: 12},
		Heavy: CPULoop(400 * simclock.Millisecond),
	}
	a.Bugs = nil
	s, _ := NewSession(a, LGV10(), 11)
	before := s.MainThread().Counters()
	s.Perform(a.MustAction("Open Camera"))
	d := s.MainThread().Counters().Sub(before)
	if d.InvoluntaryCtxSwitch < 5 {
		t.Fatalf("involuntary switches = %d; background interference should preempt a 400ms loop", d.InvoluntaryCtxSwitch)
	}
}

func TestCostModelArchetypeSignatures(t *testing.T) {
	// Verify each archetype produces its designed counter signature on the
	// main-minus-render difference (cf. Table 6 signatures).
	reg := api.NewRegistry()
	camera, _ := reg.API("android.hardware.Camera.open")
	setText, _ := reg.API("android.widget.TextView.setText")

	type want struct {
		ctxPositive bool
		taskAbove   bool // > 1.7e8 ns
		pfAbove     bool // > 500
	}
	cases := []struct {
		name string
		op   *Op
		ui   *Op // optional concurrent UI op in the same action
		want want
	}{
		{
			name: "IOHeavy trips only ctx",
			op:   &Op{Name: "open", API: camera, Heavy: IOHeavy(50*simclock.Millisecond, 12, 20*simclock.Millisecond)},
			want: want{ctxPositive: true},
		},
		{
			name: "CPULoop trips ctx+task",
			op:   &Op{Name: "loop", Self: &stack.Frame{Class: "a.W", Method: "loop"}, Heavy: CPULoop(400 * simclock.Millisecond)},
			want: want{ctxPositive: true, taskAbove: true},
		},
		{
			name: "ParseHeavy trips all three",
			op:   &Op{Name: "clean", Self: &stack.Frame{Class: "a.P", Method: "parse"}, Heavy: ParseHeavy(500 * simclock.Millisecond)},
			want: want{ctxPositive: true, taskAbove: true, pfAbove: true},
		},
		{
			name: "MemHeavy with UI sibling trips only pf",
			op:   &Op{Name: "db", Self: &stack.Frame{Class: "a.D", Method: "load"}, Heavy: MemHeavy(60*simclock.Millisecond, 2, 90*simclock.Millisecond, 25000)},
			ui:   &Op{Name: "list", API: setText, Heavy: UIWork(40*simclock.Millisecond, 14)},
			want: want{pfAbove: true},
		},
		{
			name: "UIWork trips nothing",
			op:   &Op{Name: "setText", API: setText, Heavy: UIWork(150*simclock.Millisecond, 16)},
			want: want{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ops := []*Op{tc.op}
			if tc.ui != nil {
				ops = append(ops, tc.ui)
			}
			a := &App{
				Name:     "Sig",
				Registry: reg,
				Actions: []*Action{{
					Name:   "act",
					Events: []*InputEvent{{Name: "e", Ops: ops}},
				}},
			}
			// Noisy interference on, measurement noise off, to check the
			// mechanical (pre-noise) signature. Majority vote over runs.
			dev := LGV10()
			dev.NoiseScale = 0
			s, err := NewSession(a, dev, 19)
			if err != nil {
				t.Fatal(err)
			}
			const runs = 9
			ctxHits, taskHits, pfHits := 0, 0, 0
			for i := 0; i < runs; i++ {
				mBefore := s.MainThread().Counters()
				rBefore := s.RenderThread().Counters()
				s.Perform(a.Actions[0])
				m := s.MainThread().Counters().Sub(mBefore)
				r := s.RenderThread().Counters().Sub(rBefore)
				if m.CtxSwitches()-r.CtxSwitches() > 0 {
					ctxHits++
				}
				if m.TaskClock-r.TaskClock > 170_000_000 {
					taskHits++
				}
				if m.PageFaults()-r.PageFaults() > 500 {
					pfHits++
				}
				s.Idle(time500)
			}
			check := func(name string, hits int, want bool) {
				major := hits > runs/2
				if major != want {
					t.Errorf("%s: hits=%d/%d, want majority=%v", name, hits, runs, want)
				}
			}
			check("ctx", ctxHits, tc.want.ctxPositive)
			check("task", taskHits, tc.want.taskAbove)
			check("pf", pfHits, tc.want.pfAbove)
		})
	}
}

const time500 = 500 * simclock.Millisecond
