package app

import (
	"fmt"

	"hangdoctor/internal/cpu"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/stack"
)

// workerFrames are the constant outermost frames of any pool-worker stack —
// the executor plumbing that tops every worker dump, the off-main analogue
// of frameworkFrames.
var workerFrames = []stack.Frame{
	{Class: "java.util.concurrent.ThreadPoolExecutor$Worker", Method: "run", File: "ThreadPoolExecutor.java", Line: 1167},
	{Class: "java.lang.Thread", Method: "run", File: "Thread.java", Line: 764},
}

// futureGetFrame is the leaf a main-thread stack shows while a dispatch
// awaits asynchronous work — the SymAwait symbol that tells the causal
// analyzer the root cause lives in the awaited chain, not on this thread.
var futureGetFrame = stack.Frame{Class: "java.util.concurrent.FutureTask", Method: "get", File: "FutureTask.java", Line: 190}

// poolTask is one unit of work queued on the session's worker pool.
type poolTask struct {
	// op is the spawning op (ground-truth backref for cross-action blame).
	op *Op
	// origin is the causal edge the task's samples are tagged with.
	origin stack.Origin
	// segs is the worker-side program.
	segs []cpu.Segment
	// done runs on the worker when the program retires, before the worker
	// picks its next task (join bookkeeping, completion posting).
	done func()
}

// workerPool is the app's bounded ExecutorService: a fixed set of worker
// threads draining a FIFO task queue. Assignment is deterministic — the
// lowest-indexed idle worker takes the task, otherwise it queues — so
// replays are bit-identical. Each busy worker remembers its current task's
// causal origin for the sampler.
type workerPool struct {
	threads []*cpu.Thread
	busy    []bool
	origins []stack.Origin
	ops     []*Op
	queue   []*poolTask
}

func newWorkerPool(sched *cpu.Scheduler, appName string, width int) *workerPool {
	p := &workerPool{
		threads: make([]*cpu.Thread, width),
		busy:    make([]bool, width),
		origins: make([]stack.Origin, width),
		ops:     make([]*Op, width),
	}
	for i := range p.threads {
		p.threads[i] = sched.NewThread(fmt.Sprintf("pool%d:%s", i, appName))
	}
	return p
}

// submit hands t to an idle worker or queues it.
func (p *workerPool) submit(t *poolTask) {
	for i := range p.threads {
		if !p.busy[i] {
			p.start(i, t)
			return
		}
	}
	p.queue = append(p.queue, t)
}

// start runs t on worker i. The finishing Call fires while the worker still
// holds its core, so a queued successor is picked up without a park — the
// executor's tight drain loop, mirroring the looper's.
func (p *workerPool) start(i int, t *poolTask) {
	p.busy[i] = true
	p.origins[i] = t.origin
	p.ops[i] = t.op
	program := make([]cpu.Segment, 0, len(t.segs)+1)
	program = append(program, t.segs...)
	program = append(program, cpu.Call{Fn: func() { p.finish(i, t) }})
	p.threads[i].Enqueue(program...)
}

func (p *workerPool) finish(i int, t *poolTask) {
	if t.done != nil {
		t.done()
	}
	if len(p.queue) > 0 {
		next := p.queue[0]
		p.queue = p.queue[1:]
		p.origins[i] = next.origin
		p.ops[i] = next.op
		program := make([]cpu.Segment, 0, len(next.segs)+1)
		program = append(program, next.segs...)
		program = append(program, cpu.Call{Fn: func() { p.finish(i, next) }})
		p.threads[i].Enqueue(program...)
		return
	}
	p.busy[i] = false
	p.origins[i] = stack.Origin{}
	p.ops[i] = nil
}

// idle reports whether no worker is busy and nothing is queued.
func (p *workerPool) idle() bool {
	if len(p.queue) > 0 {
		return false
	}
	for _, b := range p.busy {
		if b {
			return false
		}
	}
	return true
}

// blocker returns the op of a currently running task (lowest worker index
// first) spawned by a different op than o — the work a fresh submission
// would queue behind. nil when no such task runs.
func (p *workerPool) blocker(o *Op) *Op {
	for i := range p.threads {
		if p.busy[i] && p.ops[i] != o {
			return p.ops[i]
		}
	}
	return nil
}

// taskSegments builds a task's worker-side program: cost.CPU of compute at
// the task stack, interleaved with cost.Blocks blocking waits — the worker
// analogue of the main-thread op program, without caller slices or render
// posts. f is this execution's jitter factor.
func taskSegments(cost CostModel, rates *cpu.Rates, f float64, st *stack.Stack) ([]cpu.Segment, simclock.Duration) {
	cpuTotal := simclock.Duration(float64(cost.CPU) * f)
	blockEach := simclock.Duration(float64(cost.BlockEach) * f)
	dur := cpuTotal + simclock.Duration(cost.Blocks)*blockEach
	n := 1
	if cost.Blocks > 0 {
		n += 2 * cost.Blocks
	}
	segs := make([]cpu.Segment, 0, n)
	if cost.Blocks > 0 {
		chunk := cpuTotal / simclock.Duration(cost.Blocks+1)
		segs = append(segs, cpu.Compute{Dur: chunk, Rates: *rates, Stack: st})
		for i := 0; i < cost.Blocks; i++ {
			segs = append(segs,
				cpu.Block{Dur: blockEach, Stack: st},
				cpu.Compute{Dur: chunk, Rates: *rates, Stack: st},
			)
		}
	} else {
		segs = append(segs, cpu.Compute{Dur: cpuTotal, Rates: *rates, Stack: st})
	}
	return segs, dur
}
