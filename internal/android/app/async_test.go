package app

import (
	"testing"

	"hangdoctor/internal/android/api"
	"hangdoctor/internal/cpu"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/stack"
)

// asyncTestApp builds a minimal app with one awaited async op so sessions
// get a worker pool.
func asyncTestApp(reg *api.Registry) *App {
	query, _ := reg.API("android.database.sqlite.SQLiteDatabase.query")
	a := &App{
		Name: "AsyncApp", Commit: "fffffff", Category: "Tools",
		Registry: reg,
		Actions: []*Action{{
			Name: "Load",
			Events: []*InputEvent{{
				Name: "evt0",
				Ops: []*Op{{
					Name:  "load",
					API:   query,
					Heavy: IOHeavy(6*simclock.Millisecond, 1, 6*simclock.Millisecond),
					Async: &Async{
						Task:  IOHeavy(30*simclock.Millisecond, 6, 20*simclock.Millisecond),
						Await: true,
					},
				}},
			}},
		}},
	}
	if err := a.Finalize(); err != nil {
		panic(err)
	}
	return a
}

// TestSampleTaggedWorkerProvenance pins the tagging contract: busy workers
// are sampled with their origin and Worker set, idle workers are skipped.
func TestSampleTaggedWorkerProvenance(t *testing.T) {
	s, err := NewSession(asyncTestApp(api.NewRegistry()), LGV10(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.WorkerThreads()) != 2 {
		t.Fatalf("pool width = %d, want default 2", len(s.WorkerThreads()))
	}
	st := stack.New(stack.Frame{Class: "com.demo.db.Store", Method: "query", File: "Store.java", Line: 10})
	s.MainThread().Enqueue(cpu.Compute{Dur: simclock.Duration(1e12), Stack: st})

	// Only worker 0 is busy; worker 1 stays idle and must not be sampled.
	origin := stack.Origin{ActionUID: "AsyncApp/Load", Site: "com.demo.db.Store.query", Kind: "submit"}
	s.pool.busy[0] = true
	s.pool.origins[0] = origin
	s.pool.threads[0].Enqueue(cpu.Compute{Dur: simclock.Duration(1e12), Stack: st})

	out, missed, truncated, lost := s.SampleTagged(nil)
	if missed || truncated != 0 || lost != 0 {
		t.Fatalf("fault-free sample degraded: missed=%v truncated=%d lost=%d", missed, truncated, lost)
	}
	if len(out) != 2 {
		t.Fatalf("sampled %d stacks, want main + 1 busy worker", len(out))
	}
	if out[0].Worker || !out[0].Origin.IsZero() {
		t.Fatalf("main sample mis-tagged: %+v", out[0])
	}
	if !out[1].Worker || out[1].Origin != origin {
		t.Fatalf("worker sample mis-tagged: %+v", out[1])
	}
}

// TestSampleTaggedZeroAlloc pins the sampler hot path of the causal
// extension: a warm SampleTagged into a reused buffer — main thread plus
// busy pool workers — must not allocate.
func TestSampleTaggedZeroAlloc(t *testing.T) {
	s, err := NewSession(asyncTestApp(api.NewRegistry()), LGV10(), 7)
	if err != nil {
		t.Fatal(err)
	}
	st := stack.New(stack.Frame{Class: "com.demo.db.Store", Method: "query", File: "Store.java", Line: 10})
	s.MainThread().Enqueue(cpu.Compute{Dur: simclock.Duration(1e12), Stack: st})
	for i, th := range s.pool.threads {
		s.pool.busy[i] = true
		s.pool.origins[i] = stack.Origin{ActionUID: "AsyncApp/Load", Site: "com.demo.db.Store.query", Kind: "submit"}
		th.Enqueue(cpu.Compute{Dur: simclock.Duration(1e12), Stack: st})
	}
	buf := make([]stack.Tagged, 0, 64)
	out, missed, truncated, lost := s.SampleTagged(buf)
	if missed || truncated != 0 || lost != 0 {
		t.Fatalf("fault-free sample degraded: missed=%v truncated=%d lost=%d", missed, truncated, lost)
	}
	if len(out) != 1+len(s.pool.threads) {
		t.Fatalf("sampled %d stacks, want main + %d workers", len(out), len(s.pool.threads))
	}
	allocs := testing.AllocsPerRun(100, func() {
		out, _, _, _ := s.SampleTagged(buf[:0])
		if len(out) == 0 {
			t.Fatal("no samples")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm SampleTagged allocates %.1f objects per tick, want 0", allocs)
	}
}
