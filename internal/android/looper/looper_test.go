package looper

import (
	"strings"
	"testing"

	"hangdoctor/internal/cpu"
	"hangdoctor/internal/simclock"
)

type recordingHook struct {
	starts []simclock.Time
	ends   []simclock.Time
	names  []string
}

func (h *recordingHook) DispatchStart(m *Message, at simclock.Time) {
	h.starts = append(h.starts, at)
	h.names = append(h.names, m.Name)
}

func (h *recordingHook) DispatchEnd(m *Message, start, end simclock.Time) {
	h.ends = append(h.ends, end)
}

func setup() (*simclock.Clock, *cpu.Scheduler, *Looper) {
	clk := simclock.New()
	s := cpu.New(clk, 2)
	return clk, s, New(s, "main")
}

func TestDispatchResponseTime(t *testing.T) {
	clk, _, l := setup()
	h := &recordingHook{}
	l.AddDispatchHook(h)
	l.Post(&Message{Name: "evt", Segments: []cpu.Segment{cpu.Compute{Dur: 123 * simclock.Millisecond}}})
	clk.RunUntilIdle(10000)
	if len(h.starts) != 1 || len(h.ends) != 1 {
		t.Fatalf("hook fired %d/%d times", len(h.starts), len(h.ends))
	}
	rt := h.ends[0].Sub(h.starts[0])
	if rt != 123*simclock.Millisecond {
		t.Fatalf("response time = %v, want 123ms", rt)
	}
}

func TestFIFOOrderAndNoInterleaving(t *testing.T) {
	clk, _, l := setup()
	h := &recordingHook{}
	l.AddDispatchHook(h)
	for _, name := range []string{"a", "b", "c"} {
		l.Post(&Message{Name: name, Segments: []cpu.Segment{cpu.Compute{Dur: 10 * simclock.Millisecond}}})
	}
	clk.RunUntilIdle(10000)
	if strings.Join(h.names, "") != "abc" {
		t.Fatalf("dispatch order = %v", h.names)
	}
	// Message k starts exactly when k-1 ends (serial execution).
	for i := 1; i < 3; i++ {
		if h.starts[i] != h.ends[i-1] {
			t.Fatalf("message %d started at %v, previous ended at %v", i, h.starts[i], h.ends[i-1])
		}
	}
}

func TestBackToBackMessagesNoExtraSwitches(t *testing.T) {
	clk, _, l := setup()
	for i := 0; i < 5; i++ {
		l.Post(&Message{Name: "m", Segments: []cpu.Segment{cpu.Compute{Dur: simclock.Millisecond}}})
	}
	clk.RunUntilIdle(10000)
	// A queue of back-to-back messages drains with a single park at the end,
	// like a real Looper.loop.
	if got := l.Thread().Counters().VoluntaryCtxSwitches; got != 1 {
		t.Fatalf("VoluntaryCtxSwitches = %d, want 1", got)
	}
}

func TestMessageLoggingFormat(t *testing.T) {
	clk, _, l := setup()
	var lines []string
	l.SetMessageLogging(func(s string) { lines = append(lines, s) })
	l.Post(&Message{Name: "Open Email/evt0", Segments: []cpu.Segment{cpu.Compute{Dur: simclock.Millisecond}}})
	clk.RunUntilIdle(10000)
	if len(lines) != 2 {
		t.Fatalf("logging lines = %v", lines)
	}
	if !strings.HasPrefix(lines[0], ">>>>> Dispatching to ") || !strings.Contains(lines[0], "Open Email/evt0") {
		t.Fatalf("start line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "<<<<< Finished") {
		t.Fatalf("end line = %q", lines[1])
	}
}

func TestPostWhileDispatching(t *testing.T) {
	clk, _, l := setup()
	h := &recordingHook{}
	l.AddDispatchHook(h)
	l.Post(&Message{Name: "first", Segments: []cpu.Segment{
		cpu.Call{Fn: func() {
			l.Post(&Message{Name: "nested", Segments: []cpu.Segment{cpu.Compute{Dur: simclock.Millisecond}}})
		}},
		cpu.Compute{Dur: 5 * simclock.Millisecond},
	}})
	clk.RunUntilIdle(10000)
	if len(h.names) != 2 || h.names[0] != "first" || h.names[1] != "nested" {
		t.Fatalf("dispatch order = %v", h.names)
	}
	// Nested message must start only after the first finishes.
	if h.starts[1] != h.ends[0] {
		t.Fatalf("nested started at %v, first ended at %v", h.starts[1], h.ends[0])
	}
}

func TestIdleAndQueueLen(t *testing.T) {
	clk, _, l := setup()
	if !l.Idle() {
		t.Fatal("fresh looper should be idle")
	}
	l.Post(&Message{Name: "a", Segments: []cpu.Segment{cpu.Compute{Dur: 20 * simclock.Millisecond}}})
	l.Post(&Message{Name: "b", Segments: []cpu.Segment{cpu.Compute{Dur: 20 * simclock.Millisecond}}})
	if l.Idle() {
		t.Fatal("looper with queued work reported idle")
	}
	clk.At(5*1e6, func() {
		if l.QueueLen() != 1 {
			t.Errorf("QueueLen during first message = %d, want 1", l.QueueLen())
		}
		if l.Current() == nil || l.Current().Name != "a" {
			t.Errorf("Current = %v", l.Current())
		}
	})
	clk.RunUntilIdle(10000)
	if !l.Idle() {
		t.Fatal("drained looper should be idle")
	}
	if l.Current() != nil {
		t.Fatal("Current should be nil after drain")
	}
}

func TestBlockingSegmentsKeepResponseTimeInclusive(t *testing.T) {
	clk, _, l := setup()
	h := &recordingHook{}
	l.AddDispatchHook(h)
	l.Post(&Message{Name: "io", Segments: []cpu.Segment{
		cpu.Compute{Dur: 10 * simclock.Millisecond},
		cpu.Block{Dur: 90 * simclock.Millisecond},
		cpu.Compute{Dur: 10 * simclock.Millisecond},
	}})
	clk.RunUntilIdle(10000)
	rt := h.ends[0].Sub(h.starts[0])
	if rt != 110*simclock.Millisecond {
		t.Fatalf("response time = %v, want 110ms (block time counts)", rt)
	}
}

func TestPostNilPanics(t *testing.T) {
	_, _, l := setup()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Post(nil)
}
