// Package looper reproduces the Android main-thread message loop that Hang
// Doctor instruments: a serial message queue drained by one thread, with the
// Looper.setMessageLogging hook that brackets every dispatch. The paper's
// response-time monitor (§3.5) measures each input event as the time between
// the ">>>>> Dispatching" and "<<<<< Finished" logging callbacks; this
// package exposes both the string-typed logging hook (for fidelity) and
// structured dispatch hooks (what the monitor actually consumes).
package looper

import (
	"fmt"

	"hangdoctor/internal/cpu"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/stack"
)

// Message is one unit of main-thread work: an input event (or any posted
// runnable) expressed as scheduler segments.
type Message struct {
	// Name identifies the message for logging, e.g. "Open Email/evt0".
	Name string
	// Segments is the main-thread program the message executes.
	Segments []cpu.Segment
	// Meta carries an opaque payload for higher layers (the app session
	// attaches its EventExec record here).
	Meta any
	// Origin is the message's causal provenance: which user action (and
	// through which spawn site) transitively produced it. Input-event
	// dispatches carry Kind "input"; Handler.post chains and worker
	// completions propagate the spawning dispatch's ActionUID. Samplers use
	// it to tag main-thread traces with the chain being executed.
	Origin stack.Origin
}

// DispatchHook observes message dispatch boundaries.
type DispatchHook interface {
	// DispatchStart fires when a message is dequeued for execution.
	DispatchStart(m *Message, at simclock.Time)
	// DispatchEnd fires when the message's last segment has retired.
	DispatchEnd(m *Message, start, end simclock.Time)
}

// Looper owns a thread and drains messages through it in FIFO order.
type Looper struct {
	clk    *simclock.Clock
	thread *cpu.Thread

	queue       []*Message
	dispatching bool

	hooks   []DispatchHook
	logging func(string)

	current      *Message
	currentStart simclock.Time
}

// New creates a looper with a fresh thread named name on sched.
func New(sched *cpu.Scheduler, name string) *Looper {
	return &Looper{
		clk:    sched.Clock(),
		thread: sched.NewThread(name),
	}
}

// Thread returns the looper's thread (the app's "main thread").
func (l *Looper) Thread() *cpu.Thread { return l.thread }

// SetMessageLogging installs the Android-compatible string logging callback.
// It receives ">>>>> Dispatching to <name>" and "<<<<< Finished to <name>"
// lines, exactly the two invocations the paper exploits to measure response
// time.
func (l *Looper) SetMessageLogging(fn func(string)) { l.logging = fn }

// AddDispatchHook registers a structured observer of dispatch boundaries.
func (l *Looper) AddDispatchHook(h DispatchHook) {
	l.hooks = append(l.hooks, h)
}

// QueueLen returns the number of messages not yet started (the currently
// executing message is excluded).
func (l *Looper) QueueLen() int { return len(l.queue) }

// Idle reports whether no message is executing and the queue is empty.
func (l *Looper) Idle() bool { return !l.dispatching && len(l.queue) == 0 }

// Current returns the message currently executing, or nil.
func (l *Looper) Current() *Message { return l.current }

// Post appends a message to the queue, starting the dispatch pump if the
// looper is idle.
func (l *Looper) Post(m *Message) {
	if m == nil {
		panic("looper: Post(nil)")
	}
	l.queue = append(l.queue, m)
	if !l.dispatching {
		l.dispatching = true
		l.feed()
	}
}

// PostDelayed schedules m to be posted after delay — Handler.postDelayed.
// The timer hop runs off-thread (the clock is the alarm subsystem); the
// message enters the queue, and competes with other messages, only when the
// delay fires. A non-positive delay posts immediately.
func (l *Looper) PostDelayed(m *Message, delay simclock.Duration) {
	if m == nil {
		panic("looper: PostDelayed(nil)")
	}
	if delay <= 0 {
		l.Post(m)
		return
	}
	l.clk.After(delay, func() { l.Post(m) })
}

// feed moves the next queued message onto the thread, bracketed by the
// dispatch hooks. The end bracket chains into the next message so that
// back-to-back messages run without the thread parking in between (matching
// Looper.loop's behaviour and its context-switch profile).
func (l *Looper) feed() {
	m := l.queue[0]
	l.queue = l.queue[1:]
	program := make([]cpu.Segment, 0, len(m.Segments)+2)
	program = append(program, cpu.Call{Fn: func() { l.begin(m) }})
	program = append(program, m.Segments...)
	program = append(program, cpu.Call{Fn: func() { l.end(m) }})
	l.thread.Enqueue(program...)
}

func (l *Looper) begin(m *Message) {
	l.current = m
	l.currentStart = l.clk.Now()
	if l.logging != nil {
		l.logging(fmt.Sprintf(">>>>> Dispatching to %s", m.Name))
	}
	for _, h := range l.hooks {
		h.DispatchStart(m, l.currentStart)
	}
}

func (l *Looper) end(m *Message) {
	start := l.currentStart
	now := l.clk.Now()
	l.current = nil
	if l.logging != nil {
		l.logging(fmt.Sprintf("<<<<< Finished to %s", m.Name))
	}
	for _, h := range l.hooks {
		h.DispatchEnd(m, start, now)
	}
	if len(l.queue) > 0 {
		l.feed()
	} else {
		l.dispatching = false
	}
}
