package api

import (
	"testing"
)

func TestPreloadedUIClasses(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{
		"android.view.View",
		"android.widget.TextView",
		"android.view.LayoutInflater",
	} {
		if !r.IsUIClass(name) {
			t.Errorf("%s should be a UI class", name)
		}
	}
	for _, name := range []string{
		"android.hardware.Camera",
		"android.database.sqlite.SQLiteDatabase",
		"org.htmlcleaner.HtmlCleaner",
	} {
		if r.IsUIClass(name) {
			t.Errorf("%s should not be a UI class", name)
		}
	}
}

func TestUIPackagePrefixRecognition(t *testing.T) {
	r := NewRegistry()
	// A class never registered, but in a UI package: recognized by prefix —
	// the "new UI-API" case of §3.4.1.
	if !r.IsUIClass("android.widget.FancyNewChip") {
		t.Fatal("unregistered android.widget class must be recognized as UI")
	}
	if r.IsUIClass("com.example.widget.Thing") {
		t.Fatal("non-android package must not match UI prefixes")
	}
}

func TestKnownBlockingSnapshot(t *testing.T) {
	r := NewRegistry()
	// Present-day database includes camera.open (documented 2011).
	if !r.IsKnownBlocking("android.hardware.Camera.open") {
		t.Fatal("camera.open should be known blocking in 2017 snapshot")
	}
	// A 2010 database predates the documentation.
	r.SnapshotYear(2010)
	if r.IsKnownBlocking("android.hardware.Camera.open") {
		t.Fatal("camera.open must be unknown to a 2010 offline tool")
	}
	// But SQLite insert was already documented in 2010.
	if !r.IsKnownBlocking("android.database.sqlite.SQLiteDatabase.insert") {
		t.Fatal("SQLite insert should be known in 2010")
	}
	// UI APIs are never blocking.
	if r.IsKnownBlocking("android.widget.TextView.setText") {
		t.Fatal("setText must never be known blocking")
	}
}

func TestAddKnownBlockingFeedback(t *testing.T) {
	r := NewRegistry()
	key := "org.htmlcleaner.HtmlCleaner.clean"
	if r.IsKnownBlocking(key) {
		t.Fatal("clean should start unknown")
	}
	if !r.AddKnownBlocking(key) {
		t.Fatal("first add should report new")
	}
	if r.AddKnownBlocking(key) {
		t.Fatal("second add should report existing")
	}
	if !r.IsKnownBlocking(key) {
		t.Fatal("key missing after add")
	}
	found := false
	for _, k := range r.KnownBlocking() {
		if k == key {
			found = true
		}
	}
	if !found {
		t.Fatal("KnownBlocking() listing missing added key")
	}
}

func TestKnownBlockingSorted(t *testing.T) {
	r := NewRegistry()
	keys := r.KnownBlocking()
	if len(keys) == 0 {
		t.Fatal("expected preloaded blocking APIs")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("KnownBlocking not sorted: %q > %q", keys[i-1], keys[i])
		}
	}
}

func TestDefineClassIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.DefineClass("com.x.Y", false, "com.x", true)
	b := r.DefineClass("com.x.Y", true, "", false) // attributes ignored on re-define
	if a != b {
		t.Fatal("DefineClass must return the existing class")
	}
	if b.UI || !b.ClosedSource {
		t.Fatal("re-definition must not mutate attributes")
	}
}

func TestAPIKeyAndFrame(t *testing.T) {
	r := NewRegistry()
	c := r.DefineClass("org.htmlcleaner.HtmlCleaner", false, "org.htmlcleaner", true)
	a := r.DefineAPI(c, "clean", "", 25, 0)
	if a.Key() != "org.htmlcleaner.HtmlCleaner.clean" {
		t.Fatalf("Key = %q", a.Key())
	}
	f := a.Frame()
	if f.File != "HtmlCleaner.java" {
		t.Fatalf("default file = %q, want HtmlCleaner.java", f.File)
	}
	if f.Line != 25 || f.Class != c.Name || f.Method != "clean" {
		t.Fatalf("Frame = %+v", f)
	}
	got, ok := r.API(a.Key())
	if !ok || got != a {
		t.Fatal("API lookup failed")
	}
}

func TestLookupMissing(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Class("no.such.Class"); ok {
		t.Fatal("found missing class")
	}
	if _, ok := r.API("no.such.Class.m"); ok {
		t.Fatal("found missing API")
	}
}
