// Package api models the Android API surface a soft-hang detector reasons
// about: classes (with their UI-or-not nature and library provenance),
// methods, and the *database of known blocking APIs* that offline detection
// tools such as PerfChecker scan for.
//
// Three properties of this model drive the paper's central argument:
//
//  1. An API has a KnownBlockingSince year. camera.open existed since 2008
//     but was only documented blocking in 2011; an offline tool running with
//     a 2010 database misses it. Hang Doctor feeds newly diagnosed blocking
//     APIs back into the database (AddKnownBlocking), closing the loop.
//  2. A class can live in a closed-source third-party library. Offline
//     tools cannot see *inside* such a library, so a known blocking API
//     called by a library wrapper is invisible to them (the SageMath
//     cupboard.get → insertWithOnConflict case).
//  3. UI classes (android.view.*, android.widget.*, ...) are enumerable by
//     name, which is how the Trace Analyzer separates legitimate UI work
//     from soft hang bugs in collected stacks (§3.4.1).
package api

import (
	"sort"
	"strings"
	"sync"

	"hangdoctor/internal/stack"
)

// Class describes a Java class in the simulated app ecosystem.
type Class struct {
	// Name is the fully qualified class name.
	Name string
	// UI marks classes whose methods must run on the main thread (View,
	// Widget, ...). Calls to UI classes are never soft hang bugs.
	UI bool
	// Library is the owning third-party library ("" for platform or app
	// code), e.g. "org.htmlcleaner".
	Library string
	// ClosedSource marks libraries whose source an offline tool cannot
	// analyze.
	ClosedSource bool
}

// API is one method of a class.
type API struct {
	Class  *Class
	Method string
	File   string
	Line   int
	// KnownBlockingSince is the year the method was first documented as
	// blocking; 0 means it has never been documented blocking.
	KnownBlockingSince int
	// Sym is the API's symbol ID in its registry's symbol table, assigned
	// at DefineAPI time. Frames produced by Frame carry it, so dispatch
	// stacks are born pre-interned.
	Sym stack.SymID

	// key is the canonical identity, built once at DefineAPI so Key never
	// concatenates on hot paths (offline scans walk every op's chain).
	key string
}

// Key returns the canonical identity "class.method".
func (a *API) Key() string {
	if a.key != "" {
		return a.key
	}
	// Hand-built API values (tests) fall back to concatenation.
	return a.Class.Name + "." + a.Method
}

// Frame returns the stack frame a call to this API produces.
func (a *API) Frame() stack.Frame {
	return stack.Frame{Class: a.Class.Name, Method: a.Method, File: a.File, Line: a.Line, Sym: a.Sym}
}

// uiPackagePrefixes are package families whose classes are UI by
// construction; the Trace Analyzer recognizes *new* UI-APIs from these
// prefixes even when the specific class is not in the table (§3.4.1: "Trace
// Analyzer can recognize even new UI-APIs from their class name").
var uiPackagePrefixes = []string{
	"android.view.",
	"android.widget.",
	"android.webkit.",
	"android.animation.",
	"android.transition.",
}

// Registry holds the class/API tables and the mutable known-blocking
// database shared with offline tools. The known-blocking database is
// guarded by a mutex: it is the one piece of state concurrent evaluation
// harnesses share (every app's Hang Doctor feeds it), while the class/API
// tables are immutable once the corpus is built.
//
// Every registry owns a symbol table interning class.method keys to dense
// IDs with attribute bits resolved at intern time (UI class, framework
// plumbing) — the diagnosis pipeline runs entirely on those IDs. The
// string-keyed paths (IsUIClass, IsKnownBlocking, API) remain the boundary
// for external inputs: fleet imports, the offline detector, and tests that
// build frames by hand.
type Registry struct {
	classes map[string]*Class
	apis    map[string]*API
	symtab  *stack.Symtab
	// apisBySym is the dense ID-indexed view of apis; nil slots are symbols
	// that are not registered APIs (handlers, self-developed code,
	// framework frames). Like the maps above it is immutable once the
	// corpus is built.
	apisBySym []*API

	mu sync.RWMutex
	// knownBlocking is keyed by API key. It is the database offline tools
	// scan with, snapshotted to a year and extended at runtime by Hang
	// Doctor's feedback loop.
	knownBlocking map[string]bool
}

// ShippedYear is the year the known-blocking database ships snapshotted to
// — the paper's present day. NewRegistry starts from this snapshot, and
// corpus.Shared resets the database back to it between contexts.
const ShippedYear = 2017

// IsFrameworkClass reports whether a class is main-loop plumbing that tops
// every main-thread stack and can never be a root cause (the Trace
// Analyzer's exclusion rule, §3.4.1).
func IsFrameworkClass(cls string) bool {
	return cls == "android.os.Handler" || cls == "android.os.Looper" ||
		cls == "java.util.concurrent.ThreadPoolExecutor$Worker" ||
		cls == "java.lang.Thread" ||
		strings.HasPrefix(cls, "com.android.internal.os.")
}

// IsAwaitMethod reports whether class.method is a synchronization point
// that parks the calling thread until asynchronous work finishes. A
// main-thread sample leafed at one of these is not itself the root cause —
// the cause lives in whatever chain the thread is waiting on, which is why
// the causal analyzer treats the bit as its escalation trigger (and why the
// main-thread-only baseline, lacking that context, misattributes such hangs
// to the await API itself).
func IsAwaitMethod(cls, method string) bool {
	switch cls {
	case "java.util.concurrent.FutureTask":
		return method == "get"
	case "java.util.concurrent.CountDownLatch":
		return method == "await"
	case "java.lang.Object":
		return method == "wait"
	}
	return false
}

// NewRegistry returns a registry preloaded with the standard platform
// classes and the blocking APIs the paper names, with the known-blocking
// database snapshotted to the present (every API documented blocking by
// now is in it).
func NewRegistry() *Registry {
	r := &Registry{
		classes:       map[string]*Class{},
		apis:          map[string]*API{},
		knownBlocking: map[string]bool{},
	}
	r.symtab = stack.NewSymtab(func(class, method string) stack.SymAttrs {
		var a stack.SymAttrs
		if r.IsUIClass(class) {
			a |= stack.SymUI
		}
		if IsFrameworkClass(class) {
			a |= stack.SymFramework
		}
		if IsAwaitMethod(class, method) {
			a |= stack.SymAwait
		}
		return a
	})
	r.preload()
	r.SnapshotYear(ShippedYear)
	return r
}

// Symtab returns the registry's symbol table.
func (r *Registry) Symtab() *stack.Symtab { return r.symtab }

// SymtabView returns a lock-free snapshot of the symbol table for
// ID-indexed hot loops; see stack.Symtab.View.
func (r *Registry) SymtabView() stack.View { return r.symtab.View() }

// Intern returns the dense symbol ID for class.method, assigning one (with
// attribute bits) on first sight. UI and framework attributes are resolved
// against the class tables at intern time, so classes must be defined
// before the first frame of that class is interned — corpus construction
// guarantees this by building the registry before finalizing apps.
func (r *Registry) Intern(class, method string) stack.SymID {
	return r.symtab.Intern(class, method)
}

// SymOf returns the frame's symbol ID: the cached one when App.Finalize
// already assigned it, interning the (Class, Method) identity otherwise.
// The frame itself is not mutated — sampled stacks are shared and
// immutable.
func (r *Registry) SymOf(f stack.Frame) stack.SymID {
	if f.Sym != stack.NoSym {
		return f.Sym
	}
	return r.symtab.Intern(f.Class, f.Method)
}

// DefineClass registers (or returns the existing) class with the given
// attributes.
func (r *Registry) DefineClass(name string, ui bool, library string, closedSource bool) *Class {
	if c, ok := r.classes[name]; ok {
		return c
	}
	c := &Class{Name: name, UI: ui, Library: library, ClosedSource: closedSource}
	r.classes[name] = c
	return c
}

// DefineAPI registers a method on a class. file defaults to the class base
// name + ".java" when empty.
func (r *Registry) DefineAPI(class *Class, method, file string, line, knownSince int) *API {
	if file == "" {
		base := class.Name
		if i := strings.LastIndexByte(base, '.'); i >= 0 {
			base = base[i+1:]
		}
		file = base + ".java"
	}
	a := &API{Class: class, Method: method, File: file, Line: line, KnownBlockingSince: knownSince}
	a.Sym = r.symtab.Intern(class.Name, method)
	a.key = r.symtab.Key(a.Sym)
	r.apis[a.key] = a
	for int(a.Sym) >= len(r.apisBySym) {
		r.apisBySym = append(r.apisBySym, nil)
	}
	r.apisBySym[a.Sym] = a
	return a
}

// APIBySym is the ID-indexed fast path of API: it resolves a diagnosed
// symbol to its registered API, if any, without building a key string.
func (r *Registry) APIBySym(id stack.SymID) (*API, bool) {
	if int(id) >= len(r.apisBySym) || r.apisBySym[id] == nil {
		return nil, false
	}
	return r.apisBySym[id], true
}

// IsUISym is the ID-indexed fast path of IsUIClass: the verdict was
// resolved once when the symbol was interned.
func (r *Registry) IsUISym(id stack.SymID) bool {
	return r.symtab.Attrs(id)&stack.SymUI != 0
}

// IsAwaitSym is the ID-indexed fast path of IsAwaitMethod.
func (r *Registry) IsAwaitSym(id stack.SymID) bool {
	return r.symtab.Attrs(id)&stack.SymAwait != 0
}

// IsKnownBlockingSym is the ID-indexed fast path of IsKnownBlocking. The
// verdict is cached per symbol under the table's known-blocking epoch;
// database mutations (AddKnownBlocking, SnapshotYear) start a new epoch and
// stale entries lazily re-resolve through the string-keyed database.
func (r *Registry) IsKnownBlockingSym(id stack.SymID) bool {
	return r.symtab.KnownBlocking(id, r.IsKnownBlocking)
}

// Class looks up a class by fully qualified name.
func (r *Registry) Class(name string) (*Class, bool) {
	c, ok := r.classes[name]
	return c, ok
}

// API looks up an API by "class.method" key.
func (r *Registry) API(key string) (*API, bool) {
	a, ok := r.apis[key]
	return a, ok
}

// IsUIClass reports whether className denotes UI code, by table or by
// package family.
func (r *Registry) IsUIClass(className string) bool {
	if c, ok := r.classes[className]; ok && c.UI {
		return true
	}
	for _, p := range uiPackagePrefixes {
		if strings.HasPrefix(className, p) {
			return true
		}
	}
	return false
}

// IsKnownBlocking reports whether the key is in the current known-blocking
// database.
func (r *Registry) IsKnownBlocking(key string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.knownBlocking[key]
}

// AddKnownBlocking inserts key into the database (Hang Doctor's feedback to
// offline tools, Figure 2a). It reports whether the entry was new. An
// insert starts a new symbol-table epoch so cached per-symbol verdicts
// re-resolve.
func (r *Registry) AddKnownBlocking(key string) bool {
	r.mu.Lock()
	if r.knownBlocking[key] {
		r.mu.Unlock()
		return false
	}
	r.knownBlocking[key] = true
	r.mu.Unlock()
	r.symtab.InvalidateKnownBlocking()
	return true
}

// KnownBlocking returns the sorted database contents.
func (r *Registry) KnownBlocking() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.knownBlocking))
	for k := range r.knownBlocking {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SnapshotYear resets the known-blocking database to what an offline tool
// shipped in the given year would contain: every registered API documented
// blocking in or before that year. The reset starts a new symbol-table
// epoch so cached per-symbol verdicts re-resolve.
func (r *Registry) SnapshotYear(year int) {
	r.mu.Lock()
	r.knownBlocking = map[string]bool{}
	for k, a := range r.apis {
		if a.KnownBlockingSince != 0 && a.KnownBlockingSince <= year {
			r.knownBlocking[k] = true
		}
	}
	r.mu.Unlock()
	r.symtab.InvalidateKnownBlocking()
}

// preload registers the platform classes and APIs the paper mentions.
func (r *Registry) preload() {
	// UI classes (must-run-on-main-thread work; never soft hang bugs).
	view := r.DefineClass("android.view.View", true, "", false)
	inflater := r.DefineClass("android.view.LayoutInflater", true, "", false)
	textView := r.DefineClass("android.widget.TextView", true, "", false)
	listView := r.DefineClass("android.widget.ListView", true, "", false)
	imageView := r.DefineClass("android.widget.ImageView", true, "", false)
	seekBar := r.DefineClass("android.widget.SeekBar", true, "", false)
	orient := r.DefineClass("android.view.OrientationEventListener", true, "", false)
	recycler := r.DefineClass("android.widget.RecyclerView", true, "", false)
	webview := r.DefineClass("android.webkit.WebView", true, "", false)

	r.DefineAPI(view, "requestLayout", "", 18122, 0)
	r.DefineAPI(view, "invalidate", "", 13971, 0)
	r.DefineAPI(view, "measure", "", 19921, 0)
	r.DefineAPI(inflater, "inflate", "", 482, 0)
	r.DefineAPI(textView, "setText", "", 5361, 0)
	r.DefineAPI(listView, "layoutChildren", "", 1666, 0)
	r.DefineAPI(imageView, "setImageBitmap", "", 453, 0)
	r.DefineAPI(seekBar, "<init>", "", 65, 0)
	r.DefineAPI(orient, "enable", "", 107, 0)
	r.DefineAPI(recycler, "onLayout", "", 4110, 0)
	r.DefineAPI(webview, "loadDataWithBaseURL", "", 940, 0)

	// Platform blocking APIs with their documentation history (§2.2: camera
	// open available since 2008, marked blocking only after 2011; prepare,
	// decode, accept available since 2009, marked after 2012).
	camera := r.DefineClass("android.hardware.Camera", false, "", false)
	r.DefineAPI(camera, "open", "", 330, 2011)
	r.DefineAPI(camera, "setParameters", "", 1885, 0)
	mediaPlayer := r.DefineClass("android.media.MediaPlayer", false, "", false)
	r.DefineAPI(mediaPlayer, "prepare", "", 1171, 2012)
	bitmapFactory := r.DefineClass("android.graphics.BitmapFactory", false, "", false)
	r.DefineAPI(bitmapFactory, "decodeFile", "", 391, 2012)
	r.DefineAPI(bitmapFactory, "decodeStream", "", 606, 2012)
	bluetooth := r.DefineClass("android.bluetooth.BluetoothServerSocket", false, "", false)
	r.DefineAPI(bluetooth, "accept", "", 97, 2012)

	// Storage / database blocking APIs (well known long before the paper).
	sqlite := r.DefineClass("android.database.sqlite.SQLiteDatabase", false, "", false)
	r.DefineAPI(sqlite, "insert", "", 1592, 2010)
	r.DefineAPI(sqlite, "query", "", 1287, 2010)
	r.DefineAPI(sqlite, "insertWithOnConflict", "", 1631, 2010)
	r.DefineAPI(sqlite, "execSQL", "", 1764, 2010)
	fis := r.DefineClass("java.io.FileInputStream", false, "", false)
	r.DefineAPI(fis, "read", "", 255, 2009)
	fos := r.DefineClass("java.io.FileOutputStream", false, "", false)
	r.DefineAPI(fos, "write", "", 313, 2009)
	prefs := r.DefineClass("android.content.SharedPreferences$Editor", false, "", false)
	r.DefineAPI(prefs, "commit", "", 230, 2010)

	// Framework plumbing classes, referenced by synthetic stacks.
	r.DefineClass("android.os.Looper", false, "", false)
	r.DefineClass("android.os.Handler", false, "", false)
	r.DefineClass("android.app.Activity", false, "", false)
}
