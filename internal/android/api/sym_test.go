package api

import (
	"testing"

	"hangdoctor/internal/stack"
)

func TestInternAssignsAttrs(t *testing.T) {
	r := NewRegistry()
	ui := r.Intern("android.widget.TextView", "setText")
	fw := r.Intern("android.os.Looper", "loop")
	plain := r.Intern("org.htmlcleaner.HtmlCleaner", "clean")
	v := r.SymtabView()
	if v.Attrs(ui)&stack.SymUI == 0 || !r.IsUISym(ui) {
		t.Fatal("UI attribute missing on interned UI symbol")
	}
	if v.Attrs(fw)&stack.SymFramework == 0 {
		t.Fatal("framework attribute missing")
	}
	if v.Attrs(plain)&(stack.SymUI|stack.SymFramework) != 0 {
		t.Fatal("plain symbol grew attributes")
	}
	// ID and string paths must agree.
	if r.IsUISym(ui) != r.IsUIClass("android.widget.TextView") {
		t.Fatal("IsUISym disagrees with IsUIClass")
	}
}

func TestSymOfPrefersCachedID(t *testing.T) {
	r := NewRegistry()
	id := r.Intern("a.B", "m")
	cached := stack.Frame{Class: "other.C", Method: "x", Sym: id}
	if got := r.SymOf(cached); got != id {
		t.Fatalf("SymOf ignored the cached ID: %d != %d", got, id)
	}
	// Uncached frames intern on the fly without mutating the frame.
	f := stack.Frame{Class: "p.Q", Method: "r"}
	got := r.SymOf(f)
	if got == stack.NoSym {
		t.Fatal("SymOf failed to intern")
	}
	if f.Sym != stack.NoSym {
		t.Fatal("SymOf mutated its argument")
	}
	if again := r.SymOf(f); again != got {
		t.Fatal("SymOf not stable")
	}
}

func TestAPIBySym(t *testing.T) {
	r := NewRegistry()
	c := r.DefineClass("org.htmlcleaner.HtmlCleaner", false, "org.htmlcleaner", true)
	a := r.DefineAPI(c, "clean", "", 25, 0)
	if a.Sym == stack.NoSym {
		t.Fatal("DefineAPI left Sym unassigned")
	}
	got, ok := r.APIBySym(a.Sym)
	if !ok || got != a {
		t.Fatalf("APIBySym = %v, %v", got, ok)
	}
	// A symbol that is not an API resolves to nothing.
	plain := r.Intern("com.app.M", "helper")
	if _, ok := r.APIBySym(plain); ok {
		t.Fatal("non-API symbol resolved to an API")
	}
	if _, ok := r.APIBySym(stack.NoSym); ok {
		t.Fatal("NoSym resolved to an API")
	}
	// The API's frame carries the cached symbol.
	if f := a.Frame(); f.Sym != a.Sym {
		t.Fatalf("Frame.Sym = %d, want %d", f.Sym, a.Sym)
	}
}

func TestIsKnownBlockingSymTracksFeedback(t *testing.T) {
	r := NewRegistry()
	id := r.Intern("org.htmlcleaner.HtmlCleaner", "clean")
	if r.IsKnownBlockingSym(id) {
		t.Fatal("clean should start unknown")
	}
	// Read again so the epoch cache is warm, then mutate the database.
	r.IsKnownBlockingSym(id)
	r.AddKnownBlocking("org.htmlcleaner.HtmlCleaner.clean")
	if !r.IsKnownBlockingSym(id) {
		t.Fatal("stale cached verdict after AddKnownBlocking")
	}
	// Snapshot reset invalidates in the other direction.
	r.SnapshotYear(2010)
	if r.IsKnownBlockingSym(id) {
		t.Fatal("feedback entry survived snapshot reset")
	}
	// ID path matches string path on a preloaded API too.
	cam, ok := r.Symtab().LookupKey("android.hardware.Camera.open")
	if !ok {
		t.Fatal("preloaded API never interned")
	}
	r.SnapshotYear(ShippedYear)
	if r.IsKnownBlockingSym(cam) != r.IsKnownBlocking("android.hardware.Camera.open") {
		t.Fatal("ID and string known-blocking paths disagree")
	}
}

func TestIsKnownBlockingSymZeroAllocWarm(t *testing.T) {
	r := NewRegistry()
	id, ok := r.Symtab().LookupKey("android.hardware.Camera.open")
	if !ok {
		t.Fatal("preloaded API never interned")
	}
	r.IsKnownBlockingSym(id) // warm the epoch cache
	allocs := testing.AllocsPerRun(100, func() {
		if !r.IsKnownBlockingSym(id) {
			t.Fatal("verdict flipped")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm IsKnownBlockingSym allocates %.1f objects, want 0", allocs)
	}
}
