// Package render models the Android render thread introduced in Android 5.0,
// which the paper's S-Checker pairs with the main thread: "when there is no
// soft hang bug, the main thread executes mostly UI-related jobs and
// generates a lot of work for the render thread" (§3.3.1). UI operations on
// the main thread post frame batches here; the render thread consumes them
// paced by the 60 Hz vsync, burning CPU and generating context switches and
// page faults of its own. The main-minus-render counter *difference* is what
// separates soft hang bugs (main busy, render idle) from heavy UI work (main
// busy, render busier).
package render

import (
	"hangdoctor/internal/cpu"
	"hangdoctor/internal/simclock"
)

// VsyncPeriod is the 60 Hz display refresh interval.
const VsyncPeriod = simclock.Duration(16_666_667)

// FrameBatch is a block of rendering work posted by a main-thread UI
// operation: Frames frames, each costing PerFrame of render-thread CPU at
// the given event rates.
type FrameBatch struct {
	Frames   int
	PerFrame simclock.Duration
	Rates    cpu.Rates
}

// Thread is the render thread plus its frame pump.
type Thread struct {
	clk    *simclock.Clock
	thread *cpu.Thread

	pending []FrameBatch
	active  bool
}

// New creates the render thread on sched.
func New(sched *cpu.Scheduler) *Thread {
	return &Thread{
		clk:    sched.Clock(),
		thread: sched.NewThread("RenderThread"),
	}
}

// CPUThread exposes the underlying scheduler thread for perf attachment.
func (r *Thread) CPUThread() *cpu.Thread { return r.thread }

// Idle reports whether all posted frames have been rendered.
func (r *Thread) Idle() bool { return !r.active && len(r.pending) == 0 }

// PendingFrames returns the number of frames queued behind the one
// currently in flight (the pump hands a frame to the thread as soon as it
// is posted, so an otherwise-empty queue reports 0 while that frame waits
// for vsync).
func (r *Thread) PendingFrames() int {
	n := 0
	for _, b := range r.pending {
		n += b.Frames
	}
	return n
}

// Post enqueues a frame batch. Batches with no frames or non-positive cost
// are ignored.
func (r *Thread) Post(b FrameBatch) {
	if b.Frames <= 0 || b.PerFrame <= 0 {
		return
	}
	r.pending = append(r.pending, b)
	if !r.active {
		r.active = true
		r.pump()
	}
}

// pump renders one frame per vsync: wait for the next vsync boundary, do the
// frame's work, then re-enter the pump. Each vsync wait is a voluntary
// context switch on the render thread — the natural cadence that makes a
// busy render thread's switch count scale with frames rendered.
func (r *Thread) pump() {
	if len(r.pending) == 0 {
		r.active = false
		return
	}
	b := &r.pending[0]
	b.Frames--
	frame := cpu.Compute{Dur: b.PerFrame, Rates: b.Rates}
	if b.Frames == 0 {
		r.pending = r.pending[1:]
	}
	now := r.clk.Now()
	next := nextVsync(now)
	r.thread.Enqueue(
		cpu.BlockUntil{At: next},
		frame,
		cpu.Call{Fn: r.pump},
	)
}

// nextVsync returns the first vsync boundary strictly after now.
func nextVsync(now simclock.Time) simclock.Time {
	n := int64(now)/int64(VsyncPeriod) + 1
	return simclock.Time(n * int64(VsyncPeriod))
}
