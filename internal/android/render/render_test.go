package render

import (
	"testing"

	"hangdoctor/internal/cpu"
	"hangdoctor/internal/simclock"
)

func setup() (*simclock.Clock, *Thread) {
	clk := simclock.New()
	s := cpu.New(clk, 2)
	return clk, New(s)
}

func TestVsyncPacing(t *testing.T) {
	clk, r := setup()
	r.Post(FrameBatch{Frames: 3, PerFrame: 4 * simclock.Millisecond})
	clk.RunUntilIdle(10000)
	// Frame k renders after vsync boundary k: last work ends after the third
	// vsync plus the frame cost.
	wantEnd := simclock.Time(3*VsyncPeriod) + simclock.Time(4*simclock.Millisecond)
	if clk.Now() != wantEnd {
		t.Fatalf("render finished at %d, want %d", clk.Now(), wantEnd)
	}
	c := r.CPUThread().Counters()
	if c.TaskClock != int64(12*simclock.Millisecond) {
		t.Fatalf("render task-clock = %d, want 12ms", c.TaskClock)
	}
}

func TestSwitchesScaleWithFrames(t *testing.T) {
	clk, r := setup()
	const frames = 10
	r.Post(FrameBatch{Frames: frames, PerFrame: 2 * simclock.Millisecond})
	clk.RunUntilIdle(100000)
	c := r.CPUThread().Counters()
	// One voluntary switch per vsync wait plus the final park.
	if c.VoluntaryCtxSwitches != frames+1 {
		t.Fatalf("VoluntaryCtxSwitches = %d, want %d", c.VoluntaryCtxSwitches, frames+1)
	}
}

func TestMultipleBatchesQueue(t *testing.T) {
	clk, r := setup()
	r.Post(FrameBatch{Frames: 2, PerFrame: simclock.Millisecond})
	r.Post(FrameBatch{Frames: 3, PerFrame: simclock.Millisecond})
	// The first frame is already in flight; four remain queued.
	if got := r.PendingFrames(); got != 4 {
		t.Fatalf("PendingFrames = %d, want 4", got)
	}
	clk.RunUntilIdle(100000)
	if !r.Idle() {
		t.Fatal("render thread should be idle after draining")
	}
	if got := r.CPUThread().Counters().TaskClock; got != int64(5*simclock.Millisecond) {
		t.Fatalf("task-clock = %d, want 5ms", got)
	}
}

func TestRatesApplied(t *testing.T) {
	clk, r := setup()
	var rates cpu.Rates
	rates.MinorFaults = 10000
	r.Post(FrameBatch{Frames: 5, PerFrame: 10 * simclock.Millisecond, Rates: rates})
	clk.RunUntilIdle(100000)
	// 50ms of render CPU at 10k faults/s = 500 faults.
	if got := r.CPUThread().Counters().MinorFaults; got != 500 {
		t.Fatalf("render MinorFaults = %d, want 500", got)
	}
}

func TestEmptyAndInvalidBatchesIgnored(t *testing.T) {
	clk, r := setup()
	r.Post(FrameBatch{Frames: 0, PerFrame: simclock.Millisecond})
	r.Post(FrameBatch{Frames: 3, PerFrame: 0})
	if !r.Idle() {
		t.Fatal("invalid batches must not activate the pump")
	}
	clk.RunUntilIdle(100)
	if got := r.CPUThread().Counters().TaskClock; got != 0 {
		t.Fatalf("task-clock = %d, want 0", got)
	}
}

func TestPostWhileActive(t *testing.T) {
	clk, r := setup()
	r.Post(FrameBatch{Frames: 2, PerFrame: simclock.Millisecond})
	clk.At(simclock.Time(VsyncPeriod), func() {
		r.Post(FrameBatch{Frames: 2, PerFrame: simclock.Millisecond})
	})
	clk.RunUntilIdle(100000)
	if got := r.CPUThread().Counters().TaskClock; got != int64(4*simclock.Millisecond) {
		t.Fatalf("task-clock = %d, want 4ms", got)
	}
	if !r.Idle() {
		t.Fatal("not idle after drain")
	}
}

func TestNextVsyncBoundary(t *testing.T) {
	if got := nextVsync(0); got != simclock.Time(VsyncPeriod) {
		t.Fatalf("nextVsync(0) = %d", got)
	}
	// Exactly on a boundary: strictly after.
	if got := nextVsync(simclock.Time(VsyncPeriod)); got != simclock.Time(2*VsyncPeriod) {
		t.Fatalf("nextVsync(vsync) = %d", got)
	}
}
