package cpu

import (
	"testing"
	"testing/quick"

	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
	"hangdoctor/internal/stack"
)

func newSched(cores int) (*simclock.Clock, *Scheduler) {
	clk := simclock.New()
	return clk, New(clk, cores)
}

func drain(t *testing.T, clk *simclock.Clock) {
	t.Helper()
	if _, ok := clk.RunUntilIdle(1_000_000); !ok {
		t.Fatal("simulation did not drain")
	}
}

func TestSingleComputeAccounting(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("main")
	th.Enqueue(Compute{Dur: 50 * simclock.Millisecond, Rates: Rates{MinorFaults: 1000}})
	drain(t, clk)
	c := th.Counters()
	if c.TaskClock != int64(50*simclock.Millisecond) {
		t.Fatalf("TaskClock = %d, want 50ms", c.TaskClock)
	}
	if c.CPUClock != c.TaskClock {
		t.Fatalf("CPUClock = %d != TaskClock %d", c.CPUClock, c.TaskClock)
	}
	// 1000 faults/s * 0.05s = 50 faults.
	if c.MinorFaults != 50 {
		t.Fatalf("MinorFaults = %d, want 50", c.MinorFaults)
	}
	// Finishing all work parks the thread: exactly one voluntary switch.
	if c.VoluntaryCtxSwitches != 1 {
		t.Fatalf("VoluntaryCtxSwitches = %d, want 1", c.VoluntaryCtxSwitches)
	}
	if c.InvoluntaryCtxSwitch != 0 {
		t.Fatalf("InvoluntaryCtxSwitch = %d, want 0", c.InvoluntaryCtxSwitch)
	}
	if th.State() != Waiting {
		t.Fatalf("state = %v, want waiting", th.State())
	}
}

func TestBlockCountsVoluntarySwitch(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("io")
	th.Enqueue(
		Compute{Dur: 5 * simclock.Millisecond},
		Block{Dur: 20 * simclock.Millisecond},
		Compute{Dur: 5 * simclock.Millisecond},
	)
	drain(t, clk)
	c := th.Counters()
	// One switch entering the Block, one parking at the end.
	if c.VoluntaryCtxSwitches != 2 {
		t.Fatalf("VoluntaryCtxSwitches = %d, want 2", c.VoluntaryCtxSwitches)
	}
	if c.TaskClock != int64(10*simclock.Millisecond) {
		t.Fatalf("TaskClock = %d, want 10ms (block time must not count)", c.TaskClock)
	}
	if clk.Now() != 30*1e6 {
		t.Fatalf("end time = %d, want 30ms", clk.Now())
	}
}

func TestPreemptionUnderContention(t *testing.T) {
	clk, s := newSched(1)
	a := s.NewThread("a")
	b := s.NewThread("b")
	a.Enqueue(Compute{Dur: 50 * simclock.Millisecond})
	b.Enqueue(Compute{Dur: 50 * simclock.Millisecond})
	drain(t, clk)
	ca, cb := a.Counters(), b.Counters()
	if ca.TaskClock != int64(50*simclock.Millisecond) || cb.TaskClock != int64(50*simclock.Millisecond) {
		t.Fatalf("task clocks = %d, %d; want 50ms each", ca.TaskClock, cb.TaskClock)
	}
	// On one core with a 10ms slice, each thread is preempted repeatedly.
	if ca.InvoluntaryCtxSwitch < 3 || cb.InvoluntaryCtxSwitch < 3 {
		t.Fatalf("involuntary switches = %d, %d; want several each", ca.InvoluntaryCtxSwitch, cb.InvoluntaryCtxSwitch)
	}
	// Total elapsed: 100ms of compute serialized on one core.
	if clk.Now() != simclock.Time(100*simclock.Millisecond) {
		t.Fatalf("end = %d, want 100ms", clk.Now())
	}
}

func TestNoPreemptionWhenAlone(t *testing.T) {
	clk, s := newSched(2)
	a := s.NewThread("solo")
	a.Enqueue(Compute{Dur: 100 * simclock.Millisecond})
	drain(t, clk)
	if got := a.Counters().InvoluntaryCtxSwitch; got != 0 {
		t.Fatalf("uncontended thread has %d involuntary switches, want 0", got)
	}
}

func TestTwoCoresRunInParallel(t *testing.T) {
	clk, s := newSched(2)
	a := s.NewThread("a")
	b := s.NewThread("b")
	a.Enqueue(Compute{Dur: 40 * simclock.Millisecond})
	b.Enqueue(Compute{Dur: 40 * simclock.Millisecond})
	drain(t, clk)
	if clk.Now() != simclock.Time(40*simclock.Millisecond) {
		t.Fatalf("end = %v, want 40ms (parallel execution)", clk.Now())
	}
}

func TestMigrationCounting(t *testing.T) {
	clk, s := newSched(2)
	// Three contending threads on two cores force re-dispatches; at least
	// one thread must eventually land on a different core than before.
	ths := make([]*Thread, 3)
	for i := range ths {
		ths[i] = s.NewThread("t")
		ths[i].Enqueue(Compute{Dur: 60 * simclock.Millisecond})
	}
	drain(t, clk)
	var mig int64
	for _, th := range ths {
		mig += th.Counters().Migrations
	}
	if mig == 0 {
		t.Fatal("no migrations recorded under cross-core contention")
	}
}

func TestCallSegmentsRunInline(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("main")
	var at []simclock.Time
	th.Enqueue(
		Call{Fn: func() { at = append(at, clk.Now()) }},
		Compute{Dur: 7 * simclock.Millisecond},
		Call{Fn: func() { at = append(at, clk.Now()) }},
	)
	drain(t, clk)
	if len(at) != 2 {
		t.Fatalf("calls fired %d times, want 2", len(at))
	}
	if at[0] != 0 || at[1] != simclock.Time(7*simclock.Millisecond) {
		t.Fatalf("call times = %v, want [0 7ms]", at)
	}
}

func TestBlockUntilSkippedWhenPast(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("r")
	th.Enqueue(
		Compute{Dur: 10 * simclock.Millisecond},
		BlockUntil{At: 5 * 1e6}, // already past by then
		Compute{Dur: 10 * simclock.Millisecond},
	)
	drain(t, clk)
	c := th.Counters()
	// Only the final park switch: the stale BlockUntil costs nothing.
	if c.VoluntaryCtxSwitches != 1 {
		t.Fatalf("VoluntaryCtxSwitches = %d, want 1", c.VoluntaryCtxSwitches)
	}
	if clk.Now() != simclock.Time(20*simclock.Millisecond) {
		t.Fatalf("end = %v, want 20ms", clk.Now())
	}
}

func TestBlockUntilFuture(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("r")
	th.Enqueue(BlockUntil{At: simclock.Time(16 * simclock.Millisecond)}, Compute{Dur: simclock.Millisecond})
	drain(t, clk)
	if clk.Now() != simclock.Time(17*simclock.Millisecond) {
		t.Fatalf("end = %v, want 17ms", clk.Now())
	}
}

func TestOnIdleRefillKeepsRunningWithoutSwitch(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("looper")
	n := 0
	th.SetOnIdle(func() {
		if n < 5 {
			n++
			th.Enqueue(Compute{Dur: simclock.Millisecond})
		}
	})
	th.Enqueue(Compute{Dur: simclock.Millisecond})
	drain(t, clk)
	c := th.Counters()
	if c.TaskClock != int64(6*simclock.Millisecond) {
		t.Fatalf("TaskClock = %d, want 6ms", c.TaskClock)
	}
	// All six segments back to back, then one park.
	if c.VoluntaryCtxSwitches != 1 {
		t.Fatalf("VoluntaryCtxSwitches = %d, want 1 (refills must not switch)", c.VoluntaryCtxSwitches)
	}
}

func TestEnqueueWakesParkedThread(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("main")
	th.Enqueue(Compute{Dur: simclock.Millisecond})
	drain(t, clk)
	if th.State() != Waiting {
		t.Fatal("thread should be parked")
	}
	th.Enqueue(Compute{Dur: 2 * simclock.Millisecond})
	if th.State() != Running {
		t.Fatalf("state after wake = %v, want running", th.State())
	}
	drain(t, clk)
	if got := th.Counters().TaskClock; got != int64(3*simclock.Millisecond) {
		t.Fatalf("TaskClock = %d, want 3ms", got)
	}
}

func TestCurrentStackVisibility(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("main")
	computeStack := stack.New(stack.Frame{Class: "a.B", Method: "busy", File: "B.java", Line: 10})
	blockStack := stack.New(stack.Frame{Class: "a.IO", Method: "read", File: "IO.java", Line: 20})
	th.Enqueue(
		Compute{Dur: 10 * simclock.Millisecond, Stack: computeStack},
		Block{Dur: 10 * simclock.Millisecond, Stack: blockStack},
	)
	clk.At(5*1e6, func() {
		if got := th.CurrentStack(); got != computeStack {
			t.Errorf("at 5ms stack = %v, want compute stack", got)
		}
	})
	clk.At(15*1e6, func() {
		if got := th.CurrentStack(); got != blockStack {
			t.Errorf("at 15ms stack = %v, want block stack", got)
		}
	})
	drain(t, clk)
	if th.CurrentStack() != nil {
		t.Error("parked thread should expose no stack")
	}
}

func TestCountersMidSegment(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("main")
	th.Enqueue(Compute{Dur: 100 * simclock.Millisecond, Rates: Rates{MinorFaults: 10000}})
	clk.At(30*1e6, func() {
		c := th.Counters()
		if c.TaskClock != int64(30*simclock.Millisecond) {
			t.Errorf("mid-segment TaskClock = %d, want 30ms", c.TaskClock)
		}
		if c.MinorFaults != 300 {
			t.Errorf("mid-segment MinorFaults = %d, want 300", c.MinorFaults)
		}
	})
	drain(t, clk)
	if got := th.Counters().TaskClock; got != int64(100*simclock.Millisecond) {
		t.Fatalf("final TaskClock = %d, want 100ms (mid-reads must not double-charge)", got)
	}
}

func TestExitRunningThread(t *testing.T) {
	clk, s := newSched(1)
	a := s.NewThread("a")
	b := s.NewThread("b")
	a.Enqueue(Compute{Dur: 100 * simclock.Millisecond})
	b.Enqueue(Compute{Dur: 10 * simclock.Millisecond})
	clk.At(20*1e6, func() { a.Exit() })
	drain(t, clk)
	if a.State() != Dead {
		t.Fatalf("a state = %v, want dead", a.State())
	}
	// b must have gotten the core and completed.
	if got := b.Counters().TaskClock; got != int64(10*simclock.Millisecond) {
		t.Fatalf("b TaskClock = %d, want 10ms", got)
	}
	// a accrued only what it ran before exit (nonzero, at most 20ms).
	got := a.Counters().TaskClock
	if got <= 0 || got > int64(20*simclock.Millisecond) {
		t.Fatalf("a TaskClock = %d, want in (0, 20ms]", got)
	}
}

func TestEnqueueOnDeadThreadPanics(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("x")
	th.Exit()
	_ = clk
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic enqueueing to dead thread")
		}
	}()
	th.Enqueue(Compute{Dur: 1})
}

func TestCountersSubAdd(t *testing.T) {
	a := Counters{TaskClock: 100, MinorFaults: 5, VoluntaryCtxSwitches: 2}
	a.HW[3] = 42
	b := Counters{TaskClock: 40, MinorFaults: 2, VoluntaryCtxSwitches: 1}
	b.HW[3] = 12
	d := a.Sub(b)
	if d.TaskClock != 60 || d.MinorFaults != 3 || d.VoluntaryCtxSwitches != 1 || d.HW[3] != 30 {
		t.Fatalf("Sub wrong: %+v", d)
	}
	back := d.Add(b)
	if back != a {
		t.Fatalf("Add(Sub) != identity: %+v vs %+v", back, a)
	}
}

func TestBusyNs(t *testing.T) {
	clk, s := newSched(2)
	a := s.NewThread("a")
	b := s.NewThread("b")
	a.Enqueue(Compute{Dur: 30 * simclock.Millisecond})
	b.Enqueue(Compute{Dur: 20 * simclock.Millisecond})
	drain(t, clk)
	if got := s.BusyNs(); got != int64(50*simclock.Millisecond) {
		t.Fatalf("BusyNs = %d, want 50ms", got)
	}
}

func TestZeroDurationSegmentsSkipped(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("z")
	th.Enqueue(Compute{Dur: 0}, Block{Dur: 0}, Compute{Dur: simclock.Millisecond})
	drain(t, clk)
	c := th.Counters()
	if c.TaskClock != int64(simclock.Millisecond) {
		t.Fatalf("TaskClock = %d, want 1ms", c.TaskClock)
	}
	if c.VoluntaryCtxSwitches != 1 {
		t.Fatalf("zero-duration Block must not context switch; got %d", c.VoluntaryCtxSwitches)
	}
}

// TestConservationProperty: for random programs, total task clock equals the
// sum of compute durations, and the simulation always drains. This is the
// central scheduler invariant — CPU time is neither created nor lost.
func TestConservationProperty(t *testing.T) {
	rng := simrand.New(1234)
	f := func(seed uint32) bool {
		r := rng.Derive(string(rune(seed)))
		clk := simclock.New()
		s := New(clk, 1+r.Intn(4))
		nThreads := 1 + r.Intn(5)
		want := make([]int64, nThreads)
		ths := make([]*Thread, nThreads)
		for i := 0; i < nThreads; i++ {
			ths[i] = s.NewThread("t")
			nSegs := 1 + r.Intn(6)
			var segs []Segment
			for j := 0; j < nSegs; j++ {
				d := simclock.Duration(1+r.Int63n(30)) * simclock.Millisecond
				if r.Bool(0.3) {
					segs = append(segs, Block{Dur: d})
				} else {
					segs = append(segs, Compute{Dur: d})
					want[i] += int64(d)
				}
			}
			ths[i].Enqueue(segs...)
		}
		if _, ok := clk.RunUntilIdle(1_000_000); !ok {
			return false
		}
		for i, th := range ths {
			if th.Counters().TaskClock != want[i] {
				return false
			}
			if th.State() != Waiting {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCtxSwitchLowerBound: every Block and the final park each cost exactly
// one voluntary switch, regardless of contention.
func TestCtxSwitchLowerBound(t *testing.T) {
	rng := simrand.New(77)
	f := func(seed uint32) bool {
		r := rng.Derive(string(rune(seed)))
		clk := simclock.New()
		s := New(clk, 2)
		th := s.NewThread("t")
		blocks := 0
		var segs []Segment
		for j := 0; j < 1+r.Intn(8); j++ {
			d := simclock.Duration(1+r.Int63n(10)) * simclock.Millisecond
			if r.Bool(0.5) {
				segs = append(segs, Block{Dur: d})
				blocks++
			} else {
				segs = append(segs, Compute{Dur: d})
			}
		}
		th.Enqueue(segs...)
		clk.RunUntilIdle(1_000_000)
		return th.Counters().VoluntaryCtxSwitches == int64(blocks)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRunnablePreemptedStackStillVisible(t *testing.T) {
	clk, s := newSched(1)
	a := s.NewThread("a")
	b := s.NewThread("b")
	st := stack.New(stack.Frame{Class: "x.Y", Method: "loop", File: "Y.java", Line: 1})
	a.Enqueue(Compute{Dur: 50 * simclock.Millisecond, Stack: st})
	b.Enqueue(Compute{Dur: 50 * simclock.Millisecond})
	// After the first slice (10ms), one of them is preempted (Runnable); its
	// stack must still be observable, as a real /proc stack dump would show.
	clk.At(15*1e6, func() {
		if a.State() == Runnable {
			if a.CurrentStack() != st {
				t.Error("preempted thread lost its stack")
			}
		}
	})
	drain(t, clk)
}
