package cpu

import (
	"testing"

	"hangdoctor/internal/simclock"
	"hangdoctor/internal/stack"
)

func TestStateString(t *testing.T) {
	cases := map[State]string{
		Waiting: "waiting", Runnable: "runnable", Running: "running",
		Blocked: "blocked", Dead: "dead", State(99): "state(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestSetTimeslice(t *testing.T) {
	clk, s := newSched(1)
	s.SetTimeslice(2 * simclock.Millisecond)
	a := s.NewThread("a")
	b := s.NewThread("b")
	a.Enqueue(Compute{Dur: 20 * simclock.Millisecond})
	b.Enqueue(Compute{Dur: 20 * simclock.Millisecond})
	drain(t, clk)
	// With a 2ms slice, contention forces many more preemptions than the
	// default 10ms would.
	if got := a.Counters().InvoluntaryCtxSwitch; got < 8 {
		t.Fatalf("short slice produced only %d preemptions", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive timeslice accepted")
		}
	}()
	s.SetTimeslice(0)
}

func TestExitBlockedThreadCancelsWake(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("io")
	th.Enqueue(Block{Dur: 50 * simclock.Millisecond})
	clk.At(10*1e6, func() { th.Exit() })
	drain(t, clk)
	if th.State() != Dead {
		t.Fatalf("state = %v", th.State())
	}
	// The wake event must not resurrect the thread.
	if clk.Now() > simclock.Time(15*simclock.Millisecond) {
		t.Fatalf("clock ran to %v; cancelled wake event leaked", clk.Now())
	}
}

func TestExitRunnableThread(t *testing.T) {
	clk, s := newSched(1)
	a := s.NewThread("a")
	b := s.NewThread("b")
	a.Enqueue(Compute{Dur: 30 * simclock.Millisecond})
	b.Enqueue(Compute{Dur: 30 * simclock.Millisecond})
	// b starts Runnable (a holds the core); kill it before it ever runs.
	if b.State() != Runnable {
		t.Fatalf("b state = %v", b.State())
	}
	b.Exit()
	drain(t, clk)
	if got := b.Counters().TaskClock; got != 0 {
		t.Fatalf("dead-before-running thread accrued %d ns", got)
	}
	if clk.Now() != simclock.Time(30*simclock.Millisecond) {
		t.Fatalf("end = %v", clk.Now())
	}
}

func TestEnqueueNothingIsNoop(t *testing.T) {
	_, s := newSched(1)
	th := s.NewThread("x")
	th.Enqueue()
	if th.State() != Waiting {
		t.Fatalf("state = %v", th.State())
	}
}

func TestQueueLen(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("x")
	th.Enqueue(Compute{Dur: 10 * simclock.Millisecond}, Compute{Dur: 10 * simclock.Millisecond})
	if got := th.QueueLen(); got != 2 {
		t.Fatalf("QueueLen = %d", got)
	}
	drain(t, clk)
	if got := th.QueueLen(); got != 0 {
		t.Fatalf("QueueLen after drain = %d", got)
	}
}

func TestBlockUntilStackVisible(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("r")
	st := stack.New(stack.Frame{Class: "a.Vsync", Method: "wait"})
	th.Enqueue(BlockUntil{At: simclock.Time(20 * simclock.Millisecond), Stack: st})
	clk.At(10*1e6, func() {
		if got := th.CurrentStack(); got != st {
			t.Errorf("stack during BlockUntil = %v", got)
		}
	})
	drain(t, clk)
}

func TestCallExitingOwnThread(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("suicidal")
	ran := false
	th.Enqueue(
		Call{Fn: func() { th.Exit() }},
		Compute{Dur: simclock.Millisecond},
		Call{Fn: func() { ran = true }},
	)
	drain(t, clk)
	if th.State() != Dead {
		t.Fatalf("state = %v", th.State())
	}
	if ran {
		t.Fatal("segments after self-exit still ran")
	}
}

func TestOnIdleRunawayGuard(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("runaway")
	// An OnIdle that refills with only zero-duration work must trip the
	// inline-step budget instead of hanging the simulation.
	th.SetOnIdle(func() {
		th.Enqueue(Call{Fn: func() {}})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("runaway OnIdle loop not caught")
		}
	}()
	th.Enqueue(Call{Fn: func() {}})
	drain(t, clk)
}

func TestTracerNilSafe(t *testing.T) {
	clk, s := newSched(1)
	s.SetTracer(nil)
	th := s.NewThread("x")
	th.Enqueue(Compute{Dur: simclock.Millisecond}, Block{Dur: simclock.Millisecond})
	drain(t, clk)
}

type countingTracer struct{ sched, desched int }

func (c *countingTracer) ThreadScheduled(t *Thread, core int, at simclock.Time) { c.sched++ }
func (c *countingTracer) ThreadDescheduled(t *Thread, at simclock.Time, r DeschedReason) {
	c.desched++
}

func TestTracerBalancedEvents(t *testing.T) {
	clk, s := newSched(2)
	tr := &countingTracer{}
	s.SetTracer(tr)
	for i := 0; i < 3; i++ {
		th := s.NewThread("t")
		th.Enqueue(
			Compute{Dur: 8 * simclock.Millisecond},
			Block{Dur: 4 * simclock.Millisecond},
			Compute{Dur: 8 * simclock.Millisecond},
		)
	}
	drain(t, clk)
	if tr.sched == 0 || tr.sched != tr.desched {
		t.Fatalf("unbalanced tracer events: sched=%d desched=%d", tr.sched, tr.desched)
	}
}

func TestBusyNsMidRun(t *testing.T) {
	clk, s := newSched(1)
	th := s.NewThread("x")
	th.Enqueue(Compute{Dur: 40 * simclock.Millisecond})
	clk.At(25*1e6, func() {
		if got := s.BusyNs(); got != int64(25*simclock.Millisecond) {
			t.Errorf("BusyNs mid-run = %d", got)
		}
	})
	drain(t, clk)
	if got := s.BusyNs(); got != int64(40*simclock.Millisecond) {
		t.Fatalf("BusyNs = %d", got)
	}
}

func TestWakeAffinityReducesMigrations(t *testing.T) {
	// A thread that blocks repeatedly on an otherwise idle 2-core machine
	// should keep returning to the same core.
	clk, s := newSched(2)
	th := s.NewThread("io")
	var segs []Segment
	for i := 0; i < 10; i++ {
		segs = append(segs, Compute{Dur: simclock.Millisecond}, Block{Dur: simclock.Millisecond})
	}
	th.Enqueue(segs...)
	drain(t, clk)
	if got := th.Counters().Migrations; got != 0 {
		t.Fatalf("uncontended wake migrated %d times; affinity broken", got)
	}
}

func TestZeroCoreSchedulerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(simclock.New(), 0)
}
