// Package cpu implements a deterministic discrete-event multicore scheduler
// for simulated threads. It is the substrate that generates the kernel-level
// performance events Hang Doctor's S-Checker consumes: task-clock and
// cpu-clock (CPU time actually received), voluntary context switches (thread
// blocks or parks), involuntary context switches (timeslice preemption under
// contention), CPU migrations (re-dispatch on a different core), and page
// faults (attributed to compute segments through per-second rates).
//
// Threads execute *segment programs*: Compute consumes CPU, Block and
// BlockUntil sleep, and Call runs an instantaneous callback that may enqueue
// further work on any thread. Higher layers (the Android looper, the render
// thread, background interference) are all expressed as segment producers,
// which keeps every microsecond of simulated execution attributable and
// reproducible.
//
// The model intentionally mirrors the mechanisms — not the implementation —
// of the Linux scheduler the paper measured through simpleperf: a global FIFO
// run queue with a fixed timeslice stands in for CFS. The events the paper's
// correlation analysis ranks highest (context switches, task clock, page
// faults, §3.3.1) are produced by the same causes here as on a phone:
// blocking I/O, preemption under load, and memory-hungry operations.
package cpu

import (
	"fmt"

	"hangdoctor/internal/simclock"
	"hangdoctor/internal/stack"
)

// NumHWCounters is the number of micro-architectural (PMU) counter slots a
// thread accumulates. The perf package maps named PMU events onto these
// slots; the scheduler itself is agnostic to their meaning.
const NumHWCounters = 40

// DefaultTimeslice is the preemption quantum. 10ms approximates the
// effective CFS slice on a loaded big.LITTLE phone core.
const DefaultTimeslice = 10 * simclock.Millisecond

// maxInlineSteps bounds the number of zero-time segment transitions (Call
// chains, OnIdle refills) a thread may perform without consuming simulated
// time, so a buggy self-feeding program fails loudly instead of hanging.
const maxInlineSteps = 100000

// State is a thread's scheduling state.
type State int

// Thread states.
const (
	// Waiting: no work queued; parked off the run queue (an idle looper).
	Waiting State = iota
	// Runnable: has work, sitting on the run queue.
	Runnable
	// Running: currently on a core executing a Compute segment.
	Running
	// Blocked: sleeping in a Block/BlockUntil segment.
	Blocked
	// Dead: exited; enqueueing to it panics.
	Dead
)

func (s State) String() string {
	switch s {
	case Waiting:
		return "waiting"
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Rates describes how fast a Compute segment generates countable events, in
// events per second of CPU time consumed.
type Rates struct {
	MinorFaults float64
	MajorFaults float64
	HW          [NumHWCounters]float64
}

// Counters is a snapshot of a thread's accumulated performance events.
// Time counters are in nanoseconds.
type Counters struct {
	TaskClock            int64
	CPUClock             int64
	VoluntaryCtxSwitches int64
	InvoluntaryCtxSwitch int64
	Migrations           int64
	MinorFaults          int64
	MajorFaults          int64
	AlignmentFaults      int64
	EmulationFaults      int64
	HW                   [NumHWCounters]int64
}

// CtxSwitches returns voluntary + involuntary context switches, the quantity
// perf reports as "context-switches".
func (c Counters) CtxSwitches() int64 {
	return c.VoluntaryCtxSwitches + c.InvoluntaryCtxSwitch
}

// PageFaults returns minor + major faults, perf's "page-faults".
func (c Counters) PageFaults() int64 { return c.MinorFaults + c.MajorFaults }

// Sub returns c - o field by field, the delta over a measurement window.
func (c Counters) Sub(o Counters) Counters {
	r := Counters{
		TaskClock:            c.TaskClock - o.TaskClock,
		CPUClock:             c.CPUClock - o.CPUClock,
		VoluntaryCtxSwitches: c.VoluntaryCtxSwitches - o.VoluntaryCtxSwitches,
		InvoluntaryCtxSwitch: c.InvoluntaryCtxSwitch - o.InvoluntaryCtxSwitch,
		Migrations:           c.Migrations - o.Migrations,
		MinorFaults:          c.MinorFaults - o.MinorFaults,
		MajorFaults:          c.MajorFaults - o.MajorFaults,
		AlignmentFaults:      c.AlignmentFaults - o.AlignmentFaults,
		EmulationFaults:      c.EmulationFaults - o.EmulationFaults,
	}
	for i := range c.HW {
		r.HW[i] = c.HW[i] - o.HW[i]
	}
	return r
}

// Add returns c + o field by field.
func (c Counters) Add(o Counters) Counters {
	r := Counters{
		TaskClock:            c.TaskClock + o.TaskClock,
		CPUClock:             c.CPUClock + o.CPUClock,
		VoluntaryCtxSwitches: c.VoluntaryCtxSwitches + o.VoluntaryCtxSwitches,
		InvoluntaryCtxSwitch: c.InvoluntaryCtxSwitch + o.InvoluntaryCtxSwitch,
		Migrations:           c.Migrations + o.Migrations,
		MinorFaults:          c.MinorFaults + o.MinorFaults,
		MajorFaults:          c.MajorFaults + o.MajorFaults,
		AlignmentFaults:      c.AlignmentFaults + o.AlignmentFaults,
		EmulationFaults:      c.EmulationFaults + o.EmulationFaults,
	}
	for i := range c.HW {
		r.HW[i] = c.HW[i] + o.HW[i]
	}
	return r
}

// Segment is one step of a thread program.
type Segment interface{ isSegment() }

// Compute consumes Dur of CPU time, accruing events at Rates, with Stack
// visible to samplers while it runs.
type Compute struct {
	Dur   simclock.Duration
	Rates Rates
	Stack *stack.Stack
}

// Block sleeps for Dur (blocking I/O, lock wait, ...). Entering a Block is a
// voluntary context switch. Stack is what a sampler sees while blocked —
// exactly how a blocking API shows up in a real ANR trace.
type Block struct {
	Dur   simclock.Duration
	Stack *stack.Stack
}

// BlockUntil sleeps until the absolute time At (vsync waits, alarms). If At
// is not in the future when reached, it is skipped without a context switch.
type BlockUntil struct {
	At    simclock.Time
	Stack *stack.Stack
}

// Call runs Fn instantaneously on the thread. Fn may enqueue segments on any
// thread, start/stop samplers, or record timestamps. It must not advance the
// clock.
type Call struct {
	Fn func()
}

// WaitGate parks the thread until G opens — the completion of asynchronous
// work whose finish time is unknown when the segment is enqueued, unlike
// Block's fixed Dur. Entering the wait is a voluntary context switch; Stack
// is what a sampler sees while parked (an await frame such as
// FutureTask.get, exactly as in a real ANR trace). A WaitGate reached after
// its gate already opened is skipped without a switch.
type WaitGate struct {
	G     *Gate
	Stack *stack.Stack
}

func (Compute) isSegment()    {}
func (Block) isSegment()      {}
func (BlockUntil) isSegment() {}
func (Call) isSegment()       {}
func (WaitGate) isSegment()   {}

// Gate is a one-shot completion latch: threads wait on it with a WaitGate
// segment, and whoever finishes the guarded work calls Open exactly once to
// release them. It models join points whose timing emerges from scheduling
// (a worker task the main thread awaits) rather than being scripted.
type Gate struct {
	open    bool
	waiters []*Thread
}

// NewGate returns a closed gate.
func NewGate() *Gate { return &Gate{} }

// Opened reports whether Open has been called.
func (g *Gate) Opened() bool { return g.open }

// Open releases the gate, waking every thread parked in a WaitGate on it.
// Waiters that exited while parked are skipped. Opening twice panics: the
// one-shot contract keeps completion accounting honest.
func (g *Gate) Open() {
	if g.open {
		panic("cpu: gate opened twice")
	}
	g.open = true
	var s *Scheduler
	for _, t := range g.waiters {
		if t.state != Blocked || len(t.segs) == 0 {
			continue
		}
		if wg, ok := t.segs[0].(WaitGate); !ok || wg.G != g {
			continue
		}
		t.blockStack = nil
		t.segs = t.segs[1:] // retire the WaitGate
		s = t.sched
		s.makeRunnable(t)
	}
	g.waiters = nil
	if s != nil {
		s.dispatch()
	}
}

// Thread is a simulated kernel thread.
type Thread struct {
	ID   int
	Name string

	sched *Scheduler
	state State

	segs []Segment // pending program; segs[0] is current when Running/Blocked

	// Running bookkeeping.
	core         int // core index when Running, else -1
	lastCore     int // last core this thread ran on, -1 if never
	remaining    simclock.Duration
	chargedUntil simclock.Time
	sliceLeft    simclock.Duration
	runEvent     *simclock.Event
	wakeEvent    *simclock.Event
	blockStack   *stack.Stack

	counters   Counters
	minorAccum float64
	majorAccum float64
	hwAccum    [NumHWCounters]float64

	onIdle func() // optional work refill hook; see SetOnIdle
}

// State returns the thread's current scheduling state.
func (t *Thread) State() State { return t.state }

// SetOnIdle registers fn to run when the thread drains its program. If fn
// enqueues new segments the thread keeps running without a context switch —
// this models a looper's tight dispatch loop and a render thread's frame
// pump. fn runs on the thread (zero simulated time).
func (t *Thread) SetOnIdle(fn func()) { t.onIdle = fn }

// CurrentStack returns the stack visible to a sampler right now: the stack
// of the executing Compute segment or of the Block the thread sleeps in.
// It returns nil when the thread has no attributable activity (Waiting,
// Runnable between slices with no stack, or Dead).
func (t *Thread) CurrentStack() *stack.Stack {
	switch t.state {
	case Running:
		if len(t.segs) > 0 {
			if c, ok := t.segs[0].(Compute); ok {
				return c.Stack
			}
		}
	case Blocked:
		return t.blockStack
	case Runnable:
		// Preempted mid-Compute: the frames are still on the stack.
		if len(t.segs) > 0 {
			if c, ok := t.segs[0].(Compute); ok {
				return c.Stack
			}
		}
	}
	return nil
}

// Counters returns an up-to-date snapshot, charging any partially executed
// Compute segment through the present moment first.
func (t *Thread) Counters() Counters {
	if t.state == Running {
		t.charge(t.sched.clk.Now())
	}
	return t.counters
}

// Enqueue appends segments to the thread's program, waking it if parked.
func (t *Thread) Enqueue(segs ...Segment) {
	if t.state == Dead {
		panic("cpu: Enqueue on dead thread " + t.Name)
	}
	if len(segs) == 0 {
		return
	}
	t.segs = append(t.segs, segs...)
	if t.state == Waiting {
		t.sched.makeRunnable(t)
		t.sched.dispatch()
	}
}

// QueueLen reports the number of pending segments (including the one
// currently executing).
func (t *Thread) QueueLen() int { return len(t.segs) }

// Exit terminates the thread. Pending segments are dropped. Exiting a
// Running or Blocked thread releases its core / cancels its wakeup.
func (t *Thread) Exit() {
	s := t.sched
	switch t.state {
	case Running:
		t.charge(s.clk.Now())
		s.clk.Cancel(t.runEvent)
		t.runEvent = nil
		s.traceDescheduled(t, DeschedExited)
		s.releaseCore(t)
	case Blocked:
		s.clk.Cancel(t.wakeEvent)
		t.wakeEvent = nil
	case Runnable:
		s.removeFromRunq(t)
	}
	t.segs = nil
	t.state = Dead
	t.blockStack = nil
	s.dispatch()
}

// charge accounts CPU time from chargedUntil to now against the running
// Compute segment: task/cpu clock, fault and HW accumulators.
func (t *Thread) charge(now simclock.Time) {
	dt := now.Sub(t.chargedUntil)
	if dt <= 0 {
		return
	}
	t.chargedUntil = now
	t.remaining -= dt
	t.sliceLeft -= dt
	ns := int64(dt)
	t.counters.TaskClock += ns
	t.counters.CPUClock += ns
	if len(t.segs) > 0 {
		if c, ok := t.segs[0].(Compute); ok {
			sec := float64(ns) / 1e9
			t.minorAccum += c.Rates.MinorFaults * sec
			t.majorAccum += c.Rates.MajorFaults * sec
			for i := range c.Rates.HW {
				if c.Rates.HW[i] != 0 {
					t.hwAccum[i] += c.Rates.HW[i] * sec
				}
			}
			t.flushAccums()
		}
	}
	t.sched.busyNs += ns
}

// flushAccums moves whole events from float accumulators into counters.
func (t *Thread) flushAccums() {
	if t.minorAccum >= 1 {
		n := int64(t.minorAccum)
		t.counters.MinorFaults += n
		t.minorAccum -= float64(n)
	}
	if t.majorAccum >= 1 {
		n := int64(t.majorAccum)
		t.counters.MajorFaults += n
		t.majorAccum -= float64(n)
	}
	for i := range t.hwAccum {
		if t.hwAccum[i] >= 1 {
			n := int64(t.hwAccum[i])
			t.counters.HW[i] += n
			t.hwAccum[i] -= float64(n)
		}
	}
}

// DeschedReason explains why a thread left its core, for tracing.
type DeschedReason string

// Descheduling reasons.
const (
	DeschedBlocked   DeschedReason = "blocked"
	DeschedParked    DeschedReason = "parked"
	DeschedPreempted DeschedReason = "preempted"
	DeschedExited    DeschedReason = "exited"
)

// ExecTracer observes scheduling decisions (systrace-style span recording).
// Implementations must not advance the clock or mutate scheduler state.
type ExecTracer interface {
	// ThreadScheduled fires when a thread is placed on a core.
	ThreadScheduled(t *Thread, coreID int, at simclock.Time)
	// ThreadDescheduled fires when a thread leaves its core.
	ThreadDescheduled(t *Thread, at simclock.Time, reason DeschedReason)
}

// Scheduler multiplexes threads over a fixed set of cores.
type Scheduler struct {
	clk       *simclock.Clock
	cores     []*Thread // nil = idle
	runq      []*Thread
	threads   []*Thread
	timeslice simclock.Duration
	nextTID   int
	busyNs    int64
	inDisp    bool
	tracer    ExecTracer
}

// SetTracer installs (or clears, with nil) an execution tracer.
func (s *Scheduler) SetTracer(tr ExecTracer) { s.tracer = tr }

func (s *Scheduler) traceScheduled(t *Thread, core int) {
	if s.tracer != nil {
		s.tracer.ThreadScheduled(t, core, s.clk.Now())
	}
}

func (s *Scheduler) traceDescheduled(t *Thread, reason DeschedReason) {
	if s.tracer != nil {
		s.tracer.ThreadDescheduled(t, s.clk.Now(), reason)
	}
}

// New creates a scheduler over numCores cores sharing clk.
func New(clk *simclock.Clock, numCores int) *Scheduler {
	if numCores <= 0 {
		panic("cpu: scheduler needs at least one core")
	}
	return &Scheduler{
		clk:       clk,
		cores:     make([]*Thread, numCores),
		timeslice: DefaultTimeslice,
	}
}

// SetTimeslice overrides the preemption quantum (for tests and ablations).
func (s *Scheduler) SetTimeslice(d simclock.Duration) {
	if d <= 0 {
		panic("cpu: non-positive timeslice")
	}
	s.timeslice = d
}

// Clock returns the shared simulation clock.
func (s *Scheduler) Clock() *simclock.Clock { return s.clk }

// NumCores returns the number of simulated cores.
func (s *Scheduler) NumCores() int { return len(s.cores) }

// BusyNs returns total CPU nanoseconds consumed by all threads so far; the
// denominator for overhead percentages.
func (s *Scheduler) BusyNs() int64 {
	for _, t := range s.threads {
		if t.state == Running {
			t.charge(s.clk.Now())
		}
	}
	return s.busyNs
}

// Threads returns all live and dead threads ever created (stable order).
func (s *Scheduler) Threads() []*Thread { return s.threads }

// NewThread creates a parked (Waiting) thread.
func (s *Scheduler) NewThread(name string) *Thread {
	t := &Thread{
		ID:       s.nextTID,
		Name:     name,
		sched:    s,
		state:    Waiting,
		core:     -1,
		lastCore: -1,
	}
	s.nextTID++
	s.threads = append(s.threads, t)
	return t
}

func (s *Scheduler) makeRunnable(t *Thread) {
	t.state = Runnable
	s.runq = append(s.runq, t)
}

func (s *Scheduler) removeFromRunq(t *Thread) {
	for i, q := range s.runq {
		if q == t {
			s.runq = append(s.runq[:i], s.runq[i+1:]...)
			return
		}
	}
}

func (s *Scheduler) releaseCore(t *Thread) {
	if t.core >= 0 {
		s.cores[t.core] = nil
		t.lastCore = t.core
		t.core = -1
	}
}

// dispatch places runnable threads on idle cores until one side is
// exhausted. It is re-entrancy-safe: Call segments executed while
// dispatching may enqueue more work, which is absorbed by the outer loop.
func (s *Scheduler) dispatch() {
	if s.inDisp {
		return
	}
	s.inDisp = true
	defer func() { s.inDisp = false }()
	for {
		core := -1
		for i, occ := range s.cores {
			if occ == nil {
				core = i
				break
			}
		}
		if core < 0 || len(s.runq) == 0 {
			return
		}
		// Wake affinity: prefer a waiter that last ran on this core (or has
		// never run), falling back to the queue head. This mirrors CFS's
		// cache-affine placement and keeps migration counts low except under
		// real cross-core pressure.
		pick := 0
		for i, q := range s.runq {
			if q.lastCore == core || q.lastCore == -1 {
				pick = i
				break
			}
		}
		t := s.runq[pick]
		s.runq = append(s.runq[:pick], s.runq[pick+1:]...)
		t.core = core
		s.cores[core] = t
		if t.lastCore >= 0 && t.lastCore != core {
			t.counters.Migrations++
		}
		t.state = Running
		s.traceScheduled(t, core)
		s.runThread(t)
	}
}

// runThread advances t's program while it holds a core, stopping when the
// thread settles into a Compute segment, blocks, or parks.
func (s *Scheduler) runThread(t *Thread) {
	now := s.clk.Now()
	t.sliceLeft = s.timeslice
	for step := 0; ; step++ {
		if step > maxInlineSteps {
			panic("cpu: thread " + t.Name + " exceeded inline step budget (runaway Call/OnIdle loop?)")
		}
		if t.state == Dead {
			return // a Call exited the thread
		}
		if len(t.segs) == 0 {
			if t.onIdle != nil {
				before := len(t.segs)
				t.onIdle()
				if len(t.segs) > before {
					continue // refilled; keep running without a switch
				}
			}
			// Park: going off-CPU to wait for work is a voluntary switch.
			t.counters.VoluntaryCtxSwitches++
			t.state = Waiting
			s.traceDescheduled(t, DeschedParked)
			s.releaseCore(t)
			s.dispatch()
			return
		}
		switch seg := t.segs[0].(type) {
		case Call:
			t.segs = t.segs[1:]
			seg.Fn()
		case Block:
			if seg.Dur <= 0 {
				t.segs = t.segs[1:]
				continue
			}
			s.blockThread(t, now.Add(seg.Dur), seg.Stack)
			return
		case BlockUntil:
			if seg.At <= now {
				t.segs = t.segs[1:]
				continue
			}
			s.blockThread(t, seg.At, seg.Stack)
			return
		case WaitGate:
			if seg.G.open {
				t.segs = t.segs[1:]
				continue
			}
			// Park like blockThread, but with no wake event: Open pops the
			// segment and re-runs the thread whenever the guarded work lands.
			seg.G.waiters = append(seg.G.waiters, t)
			t.counters.VoluntaryCtxSwitches++
			t.state = Blocked
			t.blockStack = seg.Stack
			s.traceDescheduled(t, DeschedBlocked)
			s.releaseCore(t)
			s.dispatch()
			return
		case Compute:
			if seg.Dur <= 0 {
				t.segs = t.segs[1:]
				continue
			}
			if t.remaining <= 0 {
				t.remaining = seg.Dur // fresh segment
			}
			t.chargedUntil = now
			s.armRunEvent(t)
			return
		default:
			panic(fmt.Sprintf("cpu: unknown segment type %T", seg))
		}
	}
}

// blockThread transitions a running thread into a sleep until wake.
func (s *Scheduler) blockThread(t *Thread, wake simclock.Time, st *stack.Stack) {
	// segs[0] stays the Block segment while asleep so QueueLen reflects it;
	// pop it on wake.
	t.counters.VoluntaryCtxSwitches++
	t.state = Blocked
	t.blockStack = st
	s.traceDescheduled(t, DeschedBlocked)
	s.releaseCore(t)
	t.wakeEvent = s.clk.At(wake, func() {
		t.wakeEvent = nil
		t.blockStack = nil
		if t.state != Blocked {
			return
		}
		t.segs = t.segs[1:] // retire the Block
		s.makeRunnable(t)
		s.dispatch()
	})
	s.dispatch()
}

// armRunEvent schedules the next scheduling decision for a running thread:
// either its Compute segment completes or its timeslice expires, whichever
// comes first.
func (s *Scheduler) armRunEvent(t *Thread) {
	run := t.remaining
	if t.sliceLeft < run {
		run = t.sliceLeft
	}
	if run <= 0 {
		run = 1 // defensive: always make progress
	}
	t.runEvent = s.clk.After(run, func() {
		t.runEvent = nil
		s.onRunEvent(t)
	})
}

// onRunEvent handles Compute completion or slice expiry for t.
func (s *Scheduler) onRunEvent(t *Thread) {
	now := s.clk.Now()
	t.charge(now)
	if t.remaining <= 0 {
		// Segment retired; continue the program on-core.
		t.segs = t.segs[1:]
		t.remaining = 0
		s.runThread(t)
		return
	}
	// Timeslice expired mid-segment.
	if len(s.runq) > 0 {
		t.counters.InvoluntaryCtxSwitch++
		t.state = Runnable
		s.traceDescheduled(t, DeschedPreempted)
		s.releaseCore(t)
		s.runq = append(s.runq, t)
		s.dispatch()
		return
	}
	// Nobody waiting: start a new slice and keep going.
	t.sliceLeft = s.timeslice
	s.armRunEvent(t)
}
