package core

import (
	"testing"

	"hangdoctor/internal/android/api"
	"hangdoctor/internal/android/app"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/fault"
	"hangdoctor/internal/simrand"
	"hangdoctor/internal/stack"
)

// tagMain wraps plain main-thread traces into the tagged-sample form the
// causal analyzer consumes: Worker false, zero origin.
func tagMain(traces []*stack.Stack) []stack.Tagged {
	out := make([]stack.Tagged, len(traces))
	for i, tr := range traces {
		out[i] = stack.Tagged{Stack: tr}
	}
	return out
}

// TestCausalMainOnlyDifferential is the differential oracle of the causal
// extension: restricted to main-thread samples, CausalAnalyzer.Analyze must
// reproduce TraceAnalyzer.Analyze bit for bit — same Diagnosis, same ok,
// zero chain, no fallback — over randomized corpus-derived trace sets.
func TestCausalMainOnlyDifferential(t *testing.T) {
	c := corpus.Shared()
	rng := simrand.New(131).Derive("causal-diff")
	var ta TraceAnalyzer
	ca := NewCausalAnalyzer(&ta)
	cases := 0
	apps := append(append([]*app.App{}, c.Apps...), c.Async...)
	for _, a := range apps {
		for trial := 0; trial < 2; trial++ {
			seed := uint64(rng.Intn(1 << 30))
			n := 4 + rng.Intn(100)
			traces := corpus.SampledTraces(a, seed, n)
			if len(traces) == 0 {
				continue
			}
			tagged := tagMain(traces)
			for _, occHigh := range []float64{0.3, 0.5, 0.9} {
				want, wantOK := ta.Analyze(traces, c.Registry, occHigh)
				got, chain, fallback, gotOK := ca.Analyze(tagged, c.Registry, occHigh)
				if gotOK != wantOK || !diagEqual(got, want) {
					t.Fatalf("%s seed=%d n=%d occHigh=%v:\n  causal = %+v (ok=%v)\n  plain  = %+v (ok=%v)",
						a.Name, seed, n, occHigh, got, gotOK, want, wantOK)
				}
				if !chain.Zero() || fallback {
					t.Fatalf("%s: main-only input produced chain=%+v fallback=%v", a.Name, chain, fallback)
				}
				cases++
			}
		}
	}
	if cases < 100 {
		t.Fatalf("only %d differential cases ran", cases)
	}
}

// TestCausalDoctorBitIdenticalOnSyncApps runs the full detection pipeline
// twice over every synchronous corpus app — causal attribution enabled and
// disabled — and asserts byte-identical output. Apps without worker threads
// must be completely untouched by the causal machinery. Subtests run in
// parallel so a -race run also exercises concurrent doctors.
func TestCausalDoctorBitIdenticalOnSyncApps(t *testing.T) {
	names := make([]string, 0, 16)
	for i, a := range corpus.Shared().Apps {
		if i%8 == 0 { // every 8th app keeps the sweep fast; seeds vary by app
			names = append(names, a.Name)
		}
	}
	names = append(names, "K9-Mail", "SageMath")
	for i, name := range names {
		i, name := i, name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			seed := uint64(200 + i)
			dCausal, _ := runFaulted(t, name, Config{}, seed, 90, nil)
			dPlain, _ := runFaulted(t, name, Config{NoCausal: true}, seed, 90, nil)
			a, b := doctorFingerprint(t, dCausal), doctorFingerprint(t, dPlain)
			if a != b {
				t.Fatalf("causal doctor diverged on sync app:\n--- causal ---\n%s\n--- plain ---\n%s", a, b)
			}
		})
	}
}

// TestMergeChainCommutativeAssociative pins the algebra fleet merges rely
// on: mergeChain must be commutative and associative so reports reach the
// same fixed point regardless of upload order.
func TestMergeChainCommutativeAssociative(t *testing.T) {
	rng := simrand.New(7).Derive("chains")
	kinds := []string{"", "submit", "delay", "post", "completion"}
	randChain := func() CausalChain {
		return CausalChain{
			Kind:          kinds[rng.Intn(len(kinds))],
			OriginAction:  []string{"", "A/open", "B/sync"}[rng.Intn(3)],
			OriginSite:    []string{"", "p.C.f", "q.D.g"}[rng.Intn(3)],
			SharePermille: rng.Intn(1001),
		}
	}
	for trial := 0; trial < 500; trial++ {
		a, b, c := randChain(), randChain(), randChain()
		if mergeChain(a, b) != mergeChain(b, a) {
			t.Fatalf("not commutative: %+v vs %+v", a, b)
		}
		if mergeChain(mergeChain(a, b), c) != mergeChain(a, mergeChain(b, c)) {
			t.Fatalf("not associative: %+v %+v %+v", a, b, c)
		}
		if mergeChain(a, CausalChain{}) != a {
			t.Fatalf("zero not identity for %+v", a)
		}
	}
}

// TestCausalAnalyzeZeroAlloc pins the escalation hot path: a warm causal
// analyzer re-attributing an await-parked hang to its dominant worker chain
// must not allocate.
func TestCausalAnalyzeZeroAlloc(t *testing.T) {
	reg := api.NewRegistry()
	awaitStack := frames("java.util.concurrent.FutureTask.get", "app.Main.onClick", "android.os.Looper.loop")
	workStack := frames("com.demo.db.Store.query", "com.demo.task.Loader.run")
	otherStack := frames("com.demo.net.Http.fetch", "com.demo.task.Prefetch.run")
	origin := stack.Origin{ActionUID: "Demo/Open", Site: "com.demo.task.Loader.run", Kind: "submit"}
	other := stack.Origin{ActionUID: "Demo/Scroll", Site: "com.demo.task.Prefetch.run", Kind: "submit"}
	var samples []stack.Tagged
	for i := 0; i < 24; i++ {
		samples = append(samples, stack.Tagged{Stack: awaitStack})
		samples = append(samples, stack.Tagged{Stack: workStack, Origin: origin, Worker: true})
		if i%3 == 0 {
			samples = append(samples, stack.Tagged{Stack: otherStack, Origin: other, Worker: true})
		}
	}
	var ta TraceAnalyzer
	ca := NewCausalAnalyzer(&ta)
	diag, chain, fallback, ok := ca.Analyze(samples, reg, 0.5)
	if !ok || fallback || chain.Zero() {
		t.Fatalf("warm-up: diag=%+v chain=%+v fallback=%v ok=%v", diag, chain, fallback, ok)
	}
	if diag.RootCause != "com.demo.db.Store.query" {
		t.Fatalf("escalation blamed %s, want the worker chain's leaf", diag.RootCause)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, _, ok := ca.Analyze(samples, reg, 0.5); !ok {
			t.Fatal("no diagnosis")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm causal Analyze allocates %.1f objects per hang, want 0", allocs)
	}
}

// TestWorkerStackLossDegradesToMainOnly drives the worker-stack-loss fault
// at rate 1.0 over an async-bug app: every causal escalation must fall back
// to the main-thread await verdict (wrong but honest), both causal health
// counters must record the degradation, and nothing may be fabricated.
func TestWorkerStackLossDegradesToMainOnly(t *testing.T) {
	inj := fault.New(17, fault.Rates{WorkerStackMiss: 1})
	d, _ := runFaulted(t, "NewsBurst", Config{}, 23, 120, inj)

	h := d.Health()
	if h.WorkerStacksLost == 0 {
		t.Fatal("full worker stack loss recorded no WorkerStacksLost")
	}
	if h.CausalFallbacks == 0 {
		t.Fatal("await-parked hangs with no worker samples recorded no CausalFallbacks")
	}
	for _, det := range d.Detections() {
		if !det.Chain.Zero() {
			t.Fatalf("chain attributed without worker samples: %+v", det.Chain)
		}
		// The fallback verdict is the await frame — the analyzer must not
		// invent the task's root cause out of thin air.
		if det.RootCause == "com.newsburst.feed.FeedParser.parseEntry" {
			t.Fatalf("worker-blind doctor diagnosed the worker-side root cause %s", det.RootCause)
		}
	}

	// The fault-free causal run over the same trace reaches the real root
	// cause, pinning that the fallback above is a genuine degradation.
	dOK, _ := runFaulted(t, "NewsBurst", Config{}, 23, 120, nil)
	found := false
	for _, det := range dOK.Detections() {
		if det.RootCause == "com.newsburst.feed.FeedParser.parseEntry" && !det.Chain.Zero() {
			found = true
		}
	}
	if !found {
		t.Fatal("fault-free causal run did not diagnose the seeded async bug")
	}
	if hOK := dOK.Health(); hOK.WorkerStacksLost != 0 || hOK.CausalFallbacks != 0 {
		t.Fatalf("fault-free run recorded causal degradation: %+v", hOK)
	}
}
