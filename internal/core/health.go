package core

import "fmt"

// Health is the degraded-operation summary: what the measurement plane lost
// during a deployment and how the Doctor compensated. All counters stay zero
// on a perfect plane, and a zero Health is invisible in every rendered or
// exported artifact, so fault-free outputs are unchanged by its existence.
type Health struct {
	// PerfOpenFailures counts failed perf-session open attempts (including
	// failed retries).
	PerfOpenFailures int
	// PerfOpenRetries counts retries scheduled after failed opens.
	PerfOpenRetries int
	// CountersLost counts S-Checker condition values dropped mid-window
	// (counter multiplexed away on either thread).
	CountersLost int
	// RenderLost counts sessions that fell back to main-thread-only
	// evaluation because the render thread's counters were unavailable.
	RenderLost int
	// StacksDropped counts stack samples lost during trace collection.
	StacksDropped int
	// StacksTruncated counts stack samples that lost their outer frames.
	StacksTruncated int
	// SamplerOverruns counts late trace-collector ticks.
	SamplerOverruns int
	// VerdictsDeferred counts S-Checker/Diagnoser decisions postponed
	// because too little data survived to judge safely.
	VerdictsDeferred int
	// LowConfidence counts verdicts rendered from degraded data (main-only
	// thresholds, partial counters, or partial stack sets).
	LowConfidence int
	// Quarantines counts actions quarantined for repeated open failures.
	Quarantines int
	// WorkerStacksLost counts pool-worker stack samples lost during causal
	// trace collection (the worker side of StacksDropped).
	WorkerStacksLost int
	// CausalFallbacks counts diagnoses where the main thread was parked in an
	// await but no worker samples survived to attribute the chain, so the
	// Doctor fell back to main-thread-only attribution.
	CausalFallbacks int
}

// Zero reports whether nothing degraded.
func (h Health) Zero() bool { return h == Health{} }

// Add accumulates another summary (fleet-side merge).
func (h *Health) Add(o Health) {
	h.PerfOpenFailures += o.PerfOpenFailures
	h.PerfOpenRetries += o.PerfOpenRetries
	h.CountersLost += o.CountersLost
	h.RenderLost += o.RenderLost
	h.StacksDropped += o.StacksDropped
	h.StacksTruncated += o.StacksTruncated
	h.SamplerOverruns += o.SamplerOverruns
	h.VerdictsDeferred += o.VerdictsDeferred
	h.LowConfidence += o.LowConfidence
	h.Quarantines += o.Quarantines
	h.WorkerStacksLost += o.WorkerStacksLost
	h.CausalFallbacks += o.CausalFallbacks
}

// String renders the summary on one line. The causal counters are appended
// only when non-zero, so pre-causal renderings (and the goldens that pin
// them) are unchanged.
func (h Health) String() string {
	s := fmt.Sprintf(
		"open-fail=%d retries=%d counters-lost=%d render-lost=%d stacks-dropped=%d stacks-truncated=%d overruns=%d deferred=%d low-confidence=%d quarantines=%d",
		h.PerfOpenFailures, h.PerfOpenRetries, h.CountersLost, h.RenderLost,
		h.StacksDropped, h.StacksTruncated, h.SamplerOverruns,
		h.VerdictsDeferred, h.LowConfidence, h.Quarantines)
	if h.WorkerStacksLost != 0 || h.CausalFallbacks != 0 {
		s += fmt.Sprintf(" worker-stacks-lost=%d causal-fallbacks=%d",
			h.WorkerStacksLost, h.CausalFallbacks)
	}
	return s
}
