package core

import (
	"errors"
	"testing"

	"hangdoctor/internal/simclock"
)

// docWriterDoc hand-encodes a two-entry document the way a simulated
// device does: refs assigned in first-use walk order over the entries,
// device name last.
func docWriterDoc(w *DocWriter, device string, dictBase int, delta []string) []byte {
	// Refs (full dict): app=1 action=2 root=3 file=4, second entry reuses
	// the app and introduces root=5 file=6; device=7.
	w.Begin(device, dictBase, delta, 2)
	w.Entry(1, 2, 3, 4, 42, true, 3, []uint32{7}, 5*simclock.Millisecond, 15*simclock.Millisecond)
	w.Entry(1, 2, 5, 6, 99, false, 1, []uint32{7}, 2*simclock.Millisecond, 2*simclock.Millisecond)
	return w.Finish()
}

var docWriterDict = []string{
	"app-00", "app-00/Action-01", "com.example.Op001.run", "Op001.java",
	"com.example.Op002.run", "Op002.java", "device-x",
}

func TestDocWriterDecodes(t *testing.T) {
	var w DocWriter
	doc := docWriterDoc(&w, "device-x", 0, docWriterDict)
	dec := NewBinaryDecoder()
	wr, err := dec.Decode(doc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if wr.Device != "device-x" || len(wr.Entries) != 2 {
		t.Fatalf("decoded device=%q entries=%d", wr.Device, len(wr.Entries))
	}
	e0 := wr.Entries[0]
	if e0.App != "app-00" || e0.ActionUID != "app-00/Action-01" ||
		e0.RootCause != "com.example.Op001.run" || e0.File != "Op001.java" {
		t.Fatalf("entry 0 strings wrong: %+v", e0)
	}
	if e0.Line != 42 || !e0.ViaCaller || e0.Hangs != 3 ||
		e0.MaxResponse != 5*simclock.Millisecond || e0.SumResponse != 15*simclock.Millisecond {
		t.Fatalf("entry 0 fields wrong: %+v", e0)
	}
	if len(e0.Devices) != 1 || e0.Devices[0] != "device-x" {
		t.Fatalf("entry 0 devices wrong: %v", e0.Devices)
	}
	if want := EntryKey("app-00", "app-00/Action-01", "com.example.Op001.run"); e0.Key != want {
		t.Fatalf("entry 0 key %q, want %q", e0.Key, want)
	}
	if wr.Entries[1].RootCause != "com.example.Op002.run" || wr.Entries[1].ViaCaller {
		t.Fatalf("entry 1 wrong: %+v", wr.Entries[1])
	}
	if !wr.Health.Zero() {
		t.Fatalf("DocWriter documents must carry no health section: %+v", wr.Health)
	}
}

// TestDocWriterMatchesEncoderReport pins decode-equivalence with the
// canonical encoder: a DocWriter document and a BinaryEncoder document of
// the same logical upload must materialize identical reports.
func TestDocWriterMatchesEncoderReport(t *testing.T) {
	rep := NewReport()
	d1 := Diagnosis{RootCause: "com.example.Op001.run", File: "Op001.java", Line: 42, Occurrence: 1, ViaCaller: true}
	for i := 0; i < 3; i++ {
		rep.Add("app-00", "device-x", "app-00/Action-01", d1, 5*simclock.Millisecond)
	}
	d2 := Diagnosis{RootCause: "com.example.Op002.run", File: "Op002.java", Line: 99, Occurrence: 1}
	rep.Add("app-00", "device-x", "app-00/Action-01", d2, 2*simclock.Millisecond)

	var w DocWriter
	doc := docWriterDoc(&w, "device-x", 0, docWriterDict)
	wr, err := NewBinaryDecoder().Decode(doc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, want := string(exportJSON(t, wr.Report())), string(exportJSON(t, rep))
	if got != want {
		t.Fatalf("DocWriter report diverges from canonical:\n got %s\nwant %s", got, want)
	}
}

// TestDocWriterDeltaProtocol drives the steady-state delta path and the
// 409-style mismatch recovery a simulated device performs.
func TestDocWriterDeltaProtocol(t *testing.T) {
	var w DocWriter
	dec := NewBinaryDecoder()
	if _, err := dec.Decode(docWriterDoc(&w, "device-x", 0, docWriterDict)); err != nil {
		t.Fatalf("full upload: %v", err)
	}
	if dec.DictLen() != len(docWriterDict) {
		t.Fatalf("dict len %d, want %d", dec.DictLen(), len(docWriterDict))
	}

	// Steady state: empty delta against the committed base.
	steady := docWriterDoc(&w, "device-x", len(docWriterDict), nil)
	wr, err := dec.Decode(steady)
	if err != nil {
		t.Fatalf("delta upload: %v", err)
	}
	if len(wr.Entries) != 2 || wr.Entries[0].App != "app-00" {
		t.Fatalf("delta decode wrong: %+v", wr.Entries)
	}

	// A fresh decoder (server restart) rejects the delta with a
	// dictionary mismatch; resending in full recovers.
	fresh := NewBinaryDecoder()
	_, err = fresh.Decode(docWriterDoc(&w, "device-x", len(docWriterDict), nil))
	var dm *DictMismatchError
	if !errors.As(err, &dm) {
		t.Fatalf("stale delta err = %v, want DictMismatchError", err)
	}
	if _, err := fresh.Decode(docWriterDoc(&w, "device-x", 0, docWriterDict)); err != nil {
		t.Fatalf("resync resend: %v", err)
	}
}

func TestDocWriterFinishCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Finish with a short entry count must panic")
		}
	}()
	var w DocWriter
	w.Begin("d", 0, []string{"a"}, 2)
	w.Entry(1, 1, 1, 1, 1, false, 1, nil, 0, 0)
	w.Finish()
}

func TestDocWriterSteadyStateAllocs(t *testing.T) {
	var w DocWriter
	docWriterDoc(&w, "device-x", 0, docWriterDict) // grow the buffer once
	allocs := testing.AllocsPerRun(100, func() {
		docWriterDoc(&w, "device-x", 0, docWriterDict)
	})
	if allocs != 0 {
		t.Fatalf("warm DocWriter document costs %.1f allocs/op, want 0", allocs)
	}
}
