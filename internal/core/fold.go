package core

// This file holds the merge/fold helpers the fleet ingestion service builds
// on: partitioning a device upload into per-shard fragments and folding the
// shard-local reports back into one fleet view. Every operation here is a
// rearrangement of Merge's commutative sums and set unions, so any
// partition/fold composition yields byte-identical Export/Render output to a
// serial Merge of the same uploads — the determinism guarantee the sharded
// server's tests pin down.

// fnv64a hashes s with FNV-1a inline (no hash.Hash allocation — shard
// routing runs once per entry on the dispatch hot path).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ShardIndex returns the shard an entry belongs to: a stable FNV-1a hash of
// the entry identity modulo the shard count. Every device reporting the
// same (app, action, root cause) lands on the same shard, so each shard owns
// a disjoint slice of the fleet's entry key space.
func ShardIndex(appName, actionUID, rootCause string, shards int) int {
	return ShardIndexKey(entryKey(appName, actionUID, rootCause), shards)
}

// ShardIndexKey is ShardIndex for an already-built entry key (the form
// decoded binary uploads carry); it hashes without allocating.
func ShardIndexKey(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(fnv64a(key) % uint64(shards))
}

// Clone returns a deep copy of the report; mutating either copy never
// affects the other. Shards use it to answer snapshot requests without
// handing their single-writer state to a reader.
func (r *Report) Clone() *Report {
	out := NewReport()
	out.totalHangs = r.totalHangs
	out.Health = r.Health
	for key, e := range r.entries {
		out.entries[key] = cloneEntry(e)
	}
	return out
}

// Split partitions the report into shards fragment reports by ShardIndex of
// each entry. The report's Health counters ride on fragment 0 (they are
// device-wide, not per-entry, and must be counted exactly once), and each
// fragment's hang total covers only its own entries, so merging every
// fragment reconstructs the original report exactly. Entries are deep-copied;
// the receiver is left untouched. Fragments with no entries and zero health
// are returned as nil so callers can skip routing them.
func (r *Report) Split(shards int) []*Report {
	if shards <= 1 {
		frag := r.Clone()
		if frag.Len() == 0 && frag.Health.Zero() {
			return []*Report{nil}
		}
		return []*Report{frag}
	}
	out := make([]*Report, shards)
	frag := func(i int) *Report {
		if out[i] == nil {
			out[i] = NewReport()
		}
		return out[i]
	}
	if !r.Health.Zero() {
		frag(0).Health = r.Health
	}
	for key, e := range r.entries {
		f := frag(ShardIndex(e.App, e.ActionUID, e.RootCause, shards))
		f.entries[key] = cloneEntry(e)
		f.totalHangs += e.Hangs
	}
	return out
}

// FoldReports merges parts (nil entries are skipped) into a fresh report.
// Because Merge is commutative and associative, the fold result is
// independent of part order and of how entries were partitioned.
func FoldReports(parts ...*Report) *Report {
	out := NewReport()
	for _, p := range parts {
		if p != nil {
			out.Merge(p)
		}
	}
	return out
}
