package core

import (
	"bytes"
	"testing"

	"hangdoctor/internal/simclock"
)

// FuzzBinaryDecode feeds the binary decoder arbitrary bytes: it must never
// panic, never allocate proportionally to corrupt length fields, and every
// accepted document must canonicalize to a fixed point (decode → encode →
// decode → encode is byte-identical).
func FuzzBinaryDecode(f *testing.F) {
	rep := NewReport()
	rep.Add("App", "dev-1", "App/act", Diagnosis{RootCause: "x.Y.m", File: "Y.java", Line: 2}, 150*simclock.Millisecond)
	rep.Add("App", "dev-2", "App/act", Diagnosis{RootCause: "x.Y.m", File: "Y.java", Line: 2}, 90*simclock.Millisecond)
	rep.Health = Health{CountersLost: 1}
	f.Add(AppendReportBinary(nil, rep))
	// Causal-extension seeds: a maximal causal doc, and one where only the
	// health counters set the flag (empty chain list in the section).
	f.Add(AppendReportBinary(nil, causalReport()))
	onlyHealth := NewReport()
	onlyHealth.Add("App", "dev-1", "App/act", Diagnosis{RootCause: "x.Y.m", File: "Y.java", Line: 2}, 150*simclock.Millisecond)
	onlyHealth.Health = Health{WorkerStacksLost: 2, CausalFallbacks: 1}
	f.Add(AppendReportBinary(nil, onlyHealth))
	f.Add([]byte(binMagic))
	f.Add(append([]byte(binMagic), binWireVersion, 0, 0, 0, 0, 0))
	f.Add([]byte("garbage that is longer than the header"))
	// A huge claimed entry count with no bytes behind it.
	f.Add(append(append([]byte(binMagic), binWireVersion, 0, 0, 0, 0), 0xFF, 0xFF, 0xFF, 0xFF, 0x0F))

	f.Fuzz(func(t *testing.T, doc []byte) {
		wr, err := NewBinaryDecoder().Decode(doc)
		if err != nil {
			return
		}
		// Accepted: materializing and re-encoding must reach a canonical
		// fixed point.
		once := AppendReportBinary(nil, wr.Report())
		wr2, err := NewBinaryDecoder().Decode(once)
		if err != nil {
			t.Fatalf("canonical re-encode of accepted doc rejected: %v", err)
		}
		twice := AppendReportBinary(nil, wr2.Report())
		if !bytes.Equal(once, twice) {
			t.Fatalf("canonicalization is not a fixed point (%d vs %d bytes)", len(once), len(twice))
		}
		// The wire totals must survive materialization.
		if wr.TotalHangs() != wr.Report().TotalHangs() {
			t.Fatalf("hang totals diverge: wire=%d report=%d", wr.TotalHangs(), wr.Report().TotalHangs())
		}
	})
}

// FuzzBinaryDeltaSequence drives an encoder/decoder pair with fuzz-chosen
// report shapes, checking the dictionary-delta protocol stays in lockstep
// and every document round-trips content-identically.
func FuzzBinaryDeltaSequence(f *testing.F) {
	f.Add(uint64(1), uint64(2), 10, 20)
	f.Add(uint64(7), uint64(7), 1, 1)
	f.Add(uint64(3), uint64(9), 60, 0)
	f.Fuzz(func(t *testing.T, seed1, seed2 uint64, n1, n2 int) {
		if n1 < 0 || n1 > 200 || n2 < 0 || n2 > 200 {
			t.Skip()
		}
		enc := NewBinaryEncoder("dev")
		dec := NewBinaryDecoder()
		for i, spec := range []struct {
			seed uint64
			n    int
		}{{seed1, n1}, {seed2, n2}} {
			rep := synthReport(spec.seed, "dev", spec.n)
			doc := enc.Encode(rep)
			wr, err := dec.Decode(doc)
			if err != nil {
				t.Fatalf("upload %d: %v", i, err)
			}
			var want, got bytes.Buffer
			if err := rep.Export(&want); err != nil {
				t.Fatal(err)
			}
			if err := wr.Report().Export(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Fatalf("upload %d content diverged", i)
			}
			if enc.DictLen() != dec.DictLen() {
				t.Fatalf("upload %d: dictionaries diverged: enc=%d dec=%d", i, enc.DictLen(), dec.DictLen())
			}
		}
	})
}
