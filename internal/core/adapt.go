package core

import (
	"fmt"

	"hangdoctor/internal/perf"
	"hangdoctor/internal/stats"
)

// LabeledReading is one S-Checker reading with its eventual ground-truth
// label, collected by the periodic data-collection task of the automatic
// filter adaptation extension (§3.3.1, "Automatic Adaptation of the
// Filter"). In a deployment the label comes from the Diagnoser's verdict on
// the same action; the simulation uses its ground truth, which is what the
// Diagnoser converges to.
type LabeledReading struct {
	ActionUID string
	// Values are the condition-event differences, aligned with the doctor's
	// Config.Conditions.
	Values []int64
	IsBug  bool
}

// AdaptResult describes what an adaptation pass decided.
type AdaptResult struct {
	// Light is true when threshold nudging sufficed; false means the heavy
	// (server-side) re-selection ran.
	Light bool
	// Conditions is the adapted condition set.
	Conditions []Condition
	// FN and FP are the residual errors on the collected data.
	FN, FP int
}

// LightAdapt nudges the existing thresholds to eliminate classification
// errors without changing the selected events: for each condition it
// searches the best threshold on the collected data (the low-overhead
// on-device pass). It returns ok=false when no threshold assignment removes
// every false negative, signalling that the heavy adaptation is needed.
func LightAdapt(conds []Condition, data []LabeledReading) (AdaptResult, bool) {
	if len(data) == 0 {
		return AdaptResult{Light: true, Conditions: conds}, true
	}
	samples := map[string][]float64{}
	labels := make([]float64, len(data))
	ranking := make([]stats.Ranked, len(conds))
	for i, c := range conds {
		name := c.Event.Name()
		vec := make([]float64, len(data))
		for j, d := range data {
			if len(d.Values) != len(conds) {
				return AdaptResult{}, false
			}
			vec[j] = float64(d.Values[i])
		}
		samples[name] = vec
		ranking[i] = stats.Ranked{Name: name, Coeff: 1 - float64(i)*1e-6} // keep order
	}
	for j, d := range data {
		if d.IsBug {
			labels[j] = 1
		}
	}
	sel := stats.GreedySelect(ranking, samples, labels, len(conds))
	out := AdaptResult{Light: true, FN: sel.FalseNegatives, FP: sel.FalsePositives}
	for _, sc := range sel.Conditions {
		ev, ok := perf.ParseEvent(sc.Name)
		if !ok {
			return AdaptResult{}, false
		}
		out.Conditions = append(out.Conditions, Condition{Event: ev, Threshold: int64(sc.Threshold)})
	}
	if sel.FalseNegatives > 0 || len(out.Conditions) == 0 {
		return out, false
	}
	return out, true
}

// HeavyReading is the richer sample the heavy adaptation consumes: the
// top-correlated event differences (not just the three in use).
type HeavyReading struct {
	Values map[perf.Event]int64
	IsBug  bool
}

// CandidateEvents is the wide event set the periodic data-collection task
// measures: the paper's Table 3(a) top-10.
func CandidateEvents() []perf.Event {
	return []perf.Event{
		perf.ContextSwitches, perf.TaskClock, perf.CPUClock,
		perf.PageFaults, perf.MinorFaults, perf.CPUMigrations,
		perf.CacheMisses, perf.Instructions, perf.CacheReferences,
		perf.RawL1DcacheRefill,
	}
}

// HeavyAdapt is the server-side pass: re-run the full §3.3.1 design
// procedure (correlation ranking + greedy selection) over a wider event
// set, possibly choosing different events. maxEvents bounds the filter
// size.
func HeavyAdapt(events []perf.Event, data []HeavyReading, maxEvents int) (AdaptResult, error) {
	if len(data) == 0 {
		return AdaptResult{}, fmt.Errorf("core: no adaptation data")
	}
	samples := map[string][]float64{}
	labels := make([]float64, len(data))
	for _, ev := range events {
		vec := make([]float64, len(data))
		for j, d := range data {
			vec[j] = float64(d.Values[ev])
		}
		samples[ev.Name()] = vec
	}
	for j, d := range data {
		if d.IsBug {
			labels[j] = 1
		}
	}
	ranking := stats.RankByCorrelation(samples, labels)
	sel := stats.GreedySelect(ranking, samples, labels, maxEvents)
	out := AdaptResult{Light: false, FN: sel.FalseNegatives, FP: sel.FalsePositives}
	for _, sc := range sel.Conditions {
		ev, ok := perf.ParseEvent(sc.Name)
		if !ok {
			return AdaptResult{}, fmt.Errorf("core: unknown event %q from selection", sc.Name)
		}
		out.Conditions = append(out.Conditions, Condition{Event: ev, Threshold: int64(sc.Threshold)})
	}
	if len(out.Conditions) == 0 {
		return out, fmt.Errorf("core: heavy adaptation selected no conditions")
	}
	return out, nil
}

// SetConditions installs adapted conditions on a Doctor (between actions).
func (d *Doctor) SetConditions(conds []Condition) {
	if len(conds) == 0 {
		panic("core: SetConditions with empty set")
	}
	d.cfg.Conditions = append([]Condition(nil), conds...)
}
