package core

import (
	"reflect"
	"testing"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/fault"
	"hangdoctor/internal/simclock"
)

// TestQuarantineEngagesMidBackoff is the regression test for the
// short-action quarantine bug: openFailed used to be set only by the *final*
// retry attempt, so when an action ended while a backoff timer was still
// pending, the no-reading branch of sCheck saw openFailed == false,
// consecOpenFails never advanced, and a permanently failing measurement
// plane never quarantined any action shorter than the backoff. With the
// backoff stretched to an hour, every K9-Mail action ends mid-backoff, so
// before the fix this run recorded zero quarantines.
func TestQuarantineEngagesMidBackoff(t *testing.T) {
	d, _ := runFaulted(t, "K9-Mail", Config{PerfRetryBackoff: simclock.Hour}, 11, 140,
		fault.New(7, fault.Rates{PerfOpenFail: 1}))
	h := d.Health()
	if h.PerfOpenFailures == 0 || h.PerfOpenRetries == 0 {
		t.Fatalf("precondition failed: expected open failures and scheduled retries, got %s", h)
	}
	if h.Quarantines == 0 {
		t.Errorf("quarantine never engaged although every open failed and every action ended mid-backoff: %s", h)
	}
	if n := len(d.Detections()); n != 0 {
		t.Errorf("diagnosed %d bugs with no counter evidence", n)
	}
}

// TestDetachMidActionReleasesMeasurementPlane is the regression test for the
// Detach leak: detaching mid-action used to stop only the sampler and early
// timer, leaving the open perf session unread (its cost never charged) and
// curRec/curExec/earlyRead dangling into a later re-attach.
func TestDetachMidActionReleasesMeasurementPlane(t *testing.T) {
	a := corpus.Build().MustApp("K9-Mail")
	d := New(Config{})
	h, err := detect.NewHarness(a, app.LGV10(), 11, d)
	if err != nil {
		t.Fatal(err)
	}
	s := h.Session
	trace := corpus.Trace(a, 11, 60)

	checked := false
	// The callback lands mid-action: Perform drives the clock through it
	// while the first action is still executing and its session is open.
	s.Clk.After(simclock.Microsecond, func() {
		checked = true
		if d.perfSess == nil {
			t.Fatal("precondition failed: no perf session open mid-action")
		}
		costBefore := d.log.CostNs
		d.Detach()
		if d.perfSess != nil {
			t.Error("Detach left the perf session open")
		}
		if d.log.CostNs <= costBefore {
			t.Error("Detach did not charge the open session's read cost")
		}
		if d.curRec != nil || d.curExec != nil {
			t.Error("Detach left per-execution state dangling")
		}
		if d.earlyRead != nil || d.curTraces != nil || d.curDropped != 0 {
			t.Error("Detach left stale collection state")
		}
	})
	s.Perform(trace[0])
	if !checked {
		t.Fatal("mid-action callback never ran")
	}

	// Re-attach and keep running: the Doctor must start from a clean plane,
	// not from the interrupted execution's leftovers.
	d.Attach(s)
	for _, act := range trace[1:] {
		s.Perform(act)
		s.Idle(simclock.Second)
	}
	if len(d.Transitions()) == 0 {
		t.Error("no state transitions recorded after re-attach")
	}
	if d.perfSess != nil {
		t.Error("perf session still open after the re-attached run ended")
	}
}

// TestRedetectionRefreshesSymptoms is the regression test for the stale
// Detection.Symptoms bug: recordDetection used to copy r.lastSymptoms only
// when the detection was first created, so after a ResetEvery cycle
// re-flagged the action under *different* S-Checker conditions, the report
// kept the original symptom set forever.
func TestRedetectionRefreshesSymptoms(t *testing.T) {
	a := corpus.Build().MustApp("K9-Mail")
	d := New(Config{})
	if _, err := detect.NewHarness(a, app.LGV10(), 11, d); err != nil {
		t.Fatal(err)
	}
	r := d.record("K9-Mail/Inbox")
	diag := Diagnosis{RootCause: "com.example.Blocking.run", File: "Blocking.java", Line: 42, Occurrence: 0.8}

	r.lastSymptoms = []int{0}
	d.recordDetection(r, &app.ActionExec{}, 200*simclock.Millisecond, diag, CausalChain{})

	// As after a periodic reset: the S-Checker re-flags the same action, now
	// on different conditions, and the Diagnoser confirms the same cause.
	r.lastSymptoms = []int{1, 2}
	d.recordDetection(r, &app.ActionExec{}, 150*simclock.Millisecond, diag, CausalChain{})

	dets := d.Detections()
	if len(dets) != 1 {
		t.Fatalf("expected one detection, got %d", len(dets))
	}
	if got, want := dets[0].Symptoms, []int{1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("Symptoms = %v after re-detection, want latest firing %v", got, want)
	}
	if dets[0].Count != 2 {
		t.Errorf("Count = %d, want 2", dets[0].Count)
	}
}
