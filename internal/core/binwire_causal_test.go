package core

import (
	"bytes"
	"testing"

	"hangdoctor/internal/simclock"
)

// causalReport builds a report where every entry carries a chain and both
// causal health counters are set — the maximal causal payload.
func causalReport() *Report {
	rep := NewReport()
	diag := Diagnosis{RootCause: "com.demo.db.Store.query", File: "Store.java", Line: 41}
	chain := CausalChain{Kind: "submit", OriginAction: "Demo/Open", OriginSite: "com.demo.task.Loader.run", SharePermille: 640}
	rep.AddChained("Demo", "dev-1", "Demo/Open", diag, chain, 300*simclock.Millisecond)
	rep.AddChained("Demo", "dev-2", "Demo/Open", diag, chain, 200*simclock.Millisecond)
	diag2 := Diagnosis{RootCause: "com.demo.sync.Engine.uploadAll", File: "Engine.java", Line: 324}
	chain2 := CausalChain{Kind: "completion", OriginAction: "Demo/Sync", OriginSite: "com.demo.sync.Engine.uploadAll", SharePermille: 910}
	rep.AddChained("Demo", "dev-1", "Demo/Sync", diag2, chain2, 450*simclock.Millisecond)
	rep.Health = Health{WorkerStacksLost: 3, CausalFallbacks: 1}
	return rep
}

// TestBinaryCausalFlagSetOnlyWhenNeeded pins the compatibility contract:
// the causal flag bit appears exactly when the document carries chains or
// causal health counters, so chain-free uploads stay byte-identical to the
// pre-causal format.
func TestBinaryCausalFlagSetOnlyWhenNeeded(t *testing.T) {
	plain := NewReport()
	plain.Add("App", "d", "App/a", Diagnosis{RootCause: "x.Y.m", File: "Y.java", Line: 2}, 150*simclock.Millisecond)
	doc := AppendReportBinary(nil, plain)
	flags := doc[len(binMagic)+1]
	if flags&binFlagCausal != 0 {
		t.Fatalf("chain-free doc sets causal flag (flags=%#x)", flags)
	}

	doc = AppendReportBinary(nil, causalReport())
	flags = doc[len(binMagic)+1]
	if flags&binFlagCausal == 0 {
		t.Fatalf("causal doc does not set causal flag (flags=%#x)", flags)
	}
}

// TestBinaryPR9DecoderSkipsCausal emulates the previous decoder generation
// (no causal support) via restrictExtensions(0): a causal document must
// decode cleanly, with identical entries minus the chain provenance and
// with the new health counters dropped.
func TestBinaryPR9DecoderSkipsCausal(t *testing.T) {
	rep := causalReport()
	doc := AppendReportBinary(nil, rep)

	full, err := NewBinaryDecoder().Decode(doc)
	if err != nil {
		t.Fatalf("full decode: %v", err)
	}
	old := NewBinaryDecoder()
	old.restrictExtensions(0)
	legacy, err := old.Decode(doc)
	if err != nil {
		t.Fatalf("legacy decode of causal doc: %v", err)
	}

	if got := legacy.Report().Health; got.WorkerStacksLost != 0 || got.CausalFallbacks != 0 {
		t.Fatalf("legacy decoder surfaced causal health counters: %+v", got)
	}
	fullRep, legacyRep := full.Report(), legacy.Report()
	if fullRep.Len() != legacyRep.Len() || fullRep.TotalHangs() != legacyRep.TotalHangs() {
		t.Fatalf("legacy decode lost entries: %d/%d vs %d/%d hangs",
			legacyRep.Len(), legacyRep.TotalHangs(), fullRep.Len(), fullRep.TotalHangs())
	}
	fullEntries, legacyEntries := fullRep.Entries(), legacyRep.Entries()
	for i := range fullEntries {
		fe, le := fullEntries[i], legacyEntries[i]
		if !le.Chain.Zero() {
			t.Fatalf("legacy decoder produced a chain: %+v", le.Chain)
		}
		if fe.RootCause != le.RootCause || fe.Hangs != le.Hangs || fe.ActionUID != le.ActionUID ||
			fe.MaxResponse != le.MaxResponse || fe.SumResponse != le.SumResponse {
			t.Fatalf("legacy decode diverged beyond chains:\n  full   = %+v\n  legacy = %+v", fe, le)
		}
		if fe.Chain.Zero() {
			t.Fatal("causalReport produced a chain-free entry; test fixture broken")
		}
	}
}

// TestBinaryCausalRoundTripCanonical: documents with chains reach the
// canonical fixed point like everything else.
func TestBinaryCausalRoundTripCanonical(t *testing.T) {
	doc := AppendReportBinary(nil, causalReport())
	wr, err := NewBinaryDecoder().Decode(doc)
	if err != nil {
		t.Fatal(err)
	}
	again := AppendReportBinary(nil, wr.Report())
	if !bytes.Equal(doc, again) {
		t.Fatalf("causal encode→decode→encode not byte-identical (%d vs %d bytes)", len(doc), len(again))
	}
	// And the materialized report carries the chains.
	for _, e := range wr.Report().Entries() {
		if e.Chain.Zero() {
			t.Fatalf("chain lost in round trip: %+v", e)
		}
	}
}

// TestBinaryCausalDictDelta: chain strings participate in the per-device
// dictionary protocol, so steady-state causal uploads collapse to refs.
func TestBinaryCausalDictDelta(t *testing.T) {
	enc := NewBinaryEncoder("dev-c")
	dec := NewBinaryDecoder()
	doc1 := append([]byte(nil), enc.Encode(causalReport())...)
	if _, err := dec.Decode(doc1); err != nil {
		t.Fatalf("upload 1: %v", err)
	}
	doc2 := append([]byte(nil), enc.Encode(causalReport())...)
	wr2, err := dec.Decode(doc2)
	if err != nil {
		t.Fatalf("upload 2: %v", err)
	}
	if len(doc2) >= len(doc1) {
		t.Fatalf("warm-dictionary causal upload did not shrink: %dB then %dB", len(doc1), len(doc2))
	}
	for _, e := range wr2.Report().Entries() {
		if e.Chain.Zero() {
			t.Fatalf("delta upload lost chain: %+v", e)
		}
	}
	if enc.DictLen() != dec.DictLen() {
		t.Fatalf("dictionaries diverged: enc=%d dec=%d", enc.DictLen(), dec.DictLen())
	}
}

// TestBinaryCausalDecodeValidation rejects malformed causal sections
// instead of merging garbage.
func TestBinaryCausalDecodeValidation(t *testing.T) {
	base := AppendReportBinary(nil, causalReport())
	if _, err := NewBinaryDecoder().Decode(base); err != nil {
		t.Fatalf("fixture does not decode: %v", err)
	}
	// Truncations inside the causal section must error, not panic or hang.
	for cut := 1; cut < 40 && cut < len(base); cut++ {
		trunc := base[:len(base)-cut]
		if _, err := NewBinaryDecoder().Decode(trunc); err == nil {
			t.Fatalf("truncated doc (-%dB) accepted", cut)
		}
	}
	// Flipping the share bytes out of range must be caught by validation;
	// find the encoded share (910 = varint 0x8e 0x07) and corrupt it.
	idx := bytes.LastIndex(base, []byte{0x8e, 0x07})
	if idx >= 0 {
		bad := append([]byte(nil), base...)
		bad[idx], bad[idx+1] = 0xff, 0x7f // 16383 permille
		if _, err := NewBinaryDecoder().Decode(bad); err == nil {
			t.Fatal("out-of-range chain share accepted")
		}
	}
}

// TestJSONCausalRoundTrip: the JSON wire carries chains and the causal
// health counters through export → import unchanged.
func TestJSONCausalRoundTrip(t *testing.T) {
	rep := causalReport()
	var buf bytes.Buffer
	if err := rep.Export(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ImportReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Health != rep.Health {
		t.Fatalf("health diverged: %+v vs %+v", back.Health, rep.Health)
	}
	var again bytes.Buffer
	if err := back.Export(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("JSON causal round trip not byte-identical")
	}
	for _, e := range back.Entries() {
		if e.Chain.Zero() {
			t.Fatalf("chain lost in JSON round trip: %+v", e)
		}
	}
	// Out-of-range share is rejected on import.
	bad := bytes.Replace(buf.Bytes(), []byte(`"chain_share_permille": 910`), []byte(`"chain_share_permille": 1910`), 1)
	if !bytes.Equal(bad, buf.Bytes()) {
		if _, err := ImportReport(bytes.NewReader(bad)); err == nil {
			t.Fatal("chain share 1910 accepted by ImportReport")
		}
	} else {
		t.Fatal("fixture did not contain the expected share field")
	}
}
