package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
)

// synthReport builds a randomized but deterministic report in the shape of
// fleet uploads: entries drawn from bounded pools so repeated reports
// overlap on hot causes.
func synthReport(seed uint64, device string, entries int) *Report {
	rng := simrand.New(seed)
	rep := NewReport()
	for i := 0; i < entries; i++ {
		app := fmt.Sprintf("app-%02d", rng.Intn(8))
		action := fmt.Sprintf("%s/Action-%02d", app, rng.Intn(24))
		op := rng.Intn(200)
		diag := Diagnosis{
			RootCause: fmt.Sprintf("com.example.blocking.Op%03d.run", op),
			File:      fmt.Sprintf("Op%03d.java", op),
			Line:      1 + op*7%899,
			ViaCaller: op%17 == 0,
		}
		rt := simclock.Duration(100+rng.Intn(1900)) * simclock.Millisecond
		// A slice of entries carries causal-chain provenance, so every
		// round-trip and differential test also covers the causal extension.
		var chain CausalChain
		if op%5 == 0 {
			chain = CausalChain{
				Kind:          []string{"submit", "delay", "post", "completion"}[op%4],
				OriginAction:  fmt.Sprintf("%s/Origin-%02d", app, op%6),
				OriginSite:    fmt.Sprintf("com.example.spawn.Site%02d.run", op%9),
				SharePermille: 1 + op%1000,
			}
		}
		for h := 0; h < 1+rng.Intn(3); h++ {
			rep.AddChained(app, device, action, diag, chain, rt)
		}
	}
	if rng.Bool(0.3) {
		rep.Health = Health{CountersLost: rng.Intn(5), StacksDropped: rng.Intn(3), Quarantines: rng.Intn(2)}
	}
	if rng.Bool(0.25) {
		rep.Health.WorkerStacksLost = rng.Intn(4)
		rep.Health.CausalFallbacks = rng.Intn(3)
	}
	return rep
}

func exportJSON(t *testing.T, r *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinaryRoundTripCanonical pins the canonical-form guarantee:
// encode → decode → encode is byte-identical, for stateless documents and
// across a delta sequence.
func TestBinaryRoundTripCanonical(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rep := synthReport(seed, fmt.Sprintf("device-%d", seed), 40)
		doc := AppendReportBinary(nil, rep)

		dec := NewBinaryDecoder()
		wr, err := dec.Decode(doc)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		again := AppendReportBinary(nil, wr.Report())
		if !bytes.Equal(doc, again) {
			t.Fatalf("seed %d: encode→decode→encode is not byte-identical (%d vs %d bytes)", seed, len(doc), len(again))
		}
	}
}

// TestBinaryDifferentialJSON is the differential oracle: for randomized
// reports, the binary path (encode→decode→Report) exports byte-identically
// to the JSON path (export→import), including render output.
func TestBinaryDifferentialJSON(t *testing.T) {
	for seed := uint64(1); seed <= 24; seed++ {
		rep := synthReport(seed*31, fmt.Sprintf("device-%d", seed), 1+int(seed)%60)
		viaJSON, err := ImportReport(bytes.NewReader(exportJSON(t, rep)))
		if err != nil {
			t.Fatalf("seed %d: json import: %v", seed, err)
		}
		dec := NewBinaryDecoder()
		wr, err := dec.Decode(AppendReportBinary(nil, rep))
		if err != nil {
			t.Fatalf("seed %d: binary decode: %v", seed, err)
		}
		viaBin := wr.Report()
		if got, want := exportJSON(t, viaBin), exportJSON(t, viaJSON); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: binary and JSON paths diverge\n--- json ---\n%s\n--- binary ---\n%s", seed, want, got)
		}
		if viaBin.Render() != viaJSON.Render() {
			t.Fatalf("seed %d: rendered output diverges", seed)
		}
	}
}

// TestBinaryDictDelta exercises the per-device dictionary protocol: the
// second upload of overlapping content carries only new strings, decodes
// against the retained dictionary, and shrinks dramatically.
func TestBinaryDictDelta(t *testing.T) {
	enc := NewBinaryEncoder("device-7")
	dec := NewBinaryDecoder()

	rep1 := synthReport(1, "device-7", 60)
	doc1 := append([]byte(nil), enc.Encode(rep1)...)
	wr1, err := dec.Decode(doc1)
	if err != nil {
		t.Fatalf("upload 1: %v", err)
	}
	if wr1.Device != "device-7" {
		t.Fatalf("device = %q", wr1.Device)
	}
	if got, want := exportJSON(t, wr1.Report()), exportJSON(t, rep1); !bytes.Equal(got, want) {
		t.Fatal("upload 1 content diverged")
	}
	if dec.DictLen() == 0 || dec.DictLen() != enc.DictLen() {
		t.Fatalf("dict lengths diverge: enc=%d dec=%d", enc.DictLen(), dec.DictLen())
	}

	// Steady state: the device re-reports the same causes with new hangs —
	// every string is already in the dictionary, so the document carries an
	// empty delta and collapses to refs.
	rep2 := synthReport(1, "device-7", 60)
	doc2 := append([]byte(nil), enc.Encode(rep2)...)
	wr2, err := dec.Decode(doc2)
	if err != nil {
		t.Fatalf("upload 2: %v", err)
	}
	if got, want := exportJSON(t, wr2.Report()), exportJSON(t, rep2); !bytes.Equal(got, want) {
		t.Fatal("upload 2 content diverged")
	}
	if len(doc2) >= len(doc1)/3 {
		t.Fatalf("warm-dictionary upload did not shrink: first=%dB second=%dB", len(doc1), len(doc2))
	}
	jsonLen := len(exportJSON(t, rep2))
	if len(doc2)*10 >= jsonLen {
		t.Fatalf("binary steady-state doc (%dB) is not ≥10x smaller than JSON (%dB)", len(doc2), jsonLen)
	}

	// Partial overlap: a shifted seed re-uses hot strings and deltas only
	// the unseen tail.
	rep3 := synthReport(2, "device-7", 60)
	dict3 := dec.DictLen()
	doc3 := append([]byte(nil), enc.Encode(rep3)...)
	wr3, err := dec.Decode(doc3)
	if err != nil {
		t.Fatalf("upload 3: %v", err)
	}
	if got, want := exportJSON(t, wr3.Report()), exportJSON(t, rep3); !bytes.Equal(got, want) {
		t.Fatal("upload 3 content diverged")
	}
	if dec.DictLen() <= dict3 {
		t.Fatal("partial-overlap upload added no dictionary strings")
	}
}

// TestBinaryDictMismatchAndReset: a decoder that lost its dictionary (fresh
// server) rejects a delta document with *DictMismatchError, and the
// encoder-side Reset + full resend recovers.
func TestBinaryDictMismatchAndReset(t *testing.T) {
	enc := NewBinaryEncoder("d")
	rep := synthReport(3, "d", 20)
	enc.Encode(rep)                                 // upload 1 establishes the dictionary
	doc2 := append([]byte(nil), enc.Encode(rep)...) // delta-only document

	fresh := NewBinaryDecoder()
	_, err := fresh.Decode(doc2)
	var mismatch *DictMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("want DictMismatchError, got %v", err)
	}
	if mismatch.Have != 0 || mismatch.Base == 0 {
		t.Fatalf("mismatch = %+v", mismatch)
	}

	enc.Reset()
	full := enc.Encode(rep)
	wr, err := fresh.Decode(full)
	if err != nil {
		t.Fatalf("full resend after reset: %v", err)
	}
	if got, want := exportJSON(t, wr.Report()), exportJSON(t, rep); !bytes.Equal(got, want) {
		t.Fatal("resend content diverged")
	}

	// A dictBase-0 document also resets a decoder that held state.
	warm := NewBinaryDecoder()
	if _, err := warm.Decode(full); err != nil {
		t.Fatal(err)
	}
	before := warm.DictLen()
	enc2 := NewBinaryEncoder("d")
	tiny := synthReport(4, "d", 2)
	if _, err := warm.Decode(enc2.Encode(tiny)); err != nil {
		t.Fatalf("reset document rejected: %v", err)
	}
	if warm.DictLen() >= before {
		t.Fatalf("dictionary did not reset: %d -> %d", before, warm.DictLen())
	}
}

// TestBinaryRejectedDocDoesNotCommit: a document that fails validation
// midway must not advance the dictionary.
func TestBinaryRejectedDocDoesNotCommit(t *testing.T) {
	enc := NewBinaryEncoder("d")
	rep := synthReport(5, "d", 10)
	doc := append([]byte(nil), enc.Encode(rep)...)

	dec := NewBinaryDecoder()
	if _, err := dec.Decode(doc[:len(doc)-1]); err == nil {
		t.Fatal("truncated document accepted")
	}
	if dec.DictLen() != 0 {
		t.Fatalf("rejected document committed %d dictionary strings", dec.DictLen())
	}
	if _, err := dec.Decode(doc); err != nil {
		t.Fatalf("clean document after rejection: %v", err)
	}
}

// TestBinaryDecodeValidation spot-checks the corrupt-document rejections.
func TestBinaryDecodeValidation(t *testing.T) {
	rep := synthReport(6, "d", 4)
	good := AppendReportBinary(nil, rep)

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"bad version": append(append([]byte(binMagic), 99), good[5:]...),
		"trailing":    append(append([]byte(nil), good...), 0xEE),
	}
	for name, doc := range cases {
		if _, err := NewBinaryDecoder().Decode(doc); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Ref beyond dictionary: a handcrafted doc with one entry and no dict.
	var doc []byte
	doc = append(doc, binMagic...)
	doc = append(doc, binWireVersion, 0)
	doc = appendStr(doc, "")    // device
	doc = appendUvarint(doc, 0) // dictBase
	doc = appendUvarint(doc, 0) // dict count
	doc = appendUvarint(doc, 1) // entry count
	doc = appendUvarint(doc, 9) // app ref out of range
	if _, err := NewBinaryDecoder().Decode(doc); err == nil {
		t.Error("out-of-range ref accepted")
	}

	// Invalid UTF-8 in a dictionary string.
	var doc2 []byte
	doc2 = append(doc2, binMagic...)
	doc2 = append(doc2, binWireVersion, 0)
	doc2 = appendStr(doc2, "")
	doc2 = appendUvarint(doc2, 0)
	doc2 = appendUvarint(doc2, 1)
	doc2 = appendUvarint(doc2, 2)
	doc2 = append(doc2, 0xFF, 0xFE)
	doc2 = appendUvarint(doc2, 0)
	if _, err := NewBinaryDecoder().Decode(doc2); err == nil {
		t.Error("invalid UTF-8 accepted")
	}
}

// TestMergeWireMatchesMerge: merging decoded wire entries into an existing
// report gives the same bytes as merging the materialized report.
func TestMergeWireMatchesMerge(t *testing.T) {
	base := synthReport(7, "base", 30)
	up := synthReport(8, "d8", 30)

	want := base.Clone()
	want.Merge(up.Clone())

	got := base.Clone()
	dec := NewBinaryDecoder()
	wr, err := dec.Decode(AppendReportBinary(nil, up))
	if err != nil {
		t.Fatal(err)
	}
	got.MergeWire(wr)

	if g, w := exportJSON(t, got), exportJSON(t, want); !bytes.Equal(g, w) {
		t.Fatalf("MergeWire diverged from Merge\n--- want ---\n%s\n--- got ---\n%s", w, g)
	}
}

// TestBinaryDecodeScratchAllocs pins the hot-path claim: steady-state
// decoding of a warm-dictionary (empty-delta) document through
// DecodeScratch does not allocate.
func TestBinaryDecodeScratchAllocs(t *testing.T) {
	enc := NewBinaryEncoder("device-0")
	rep := synthReport(9, "device-0", 60)
	full := append([]byte(nil), enc.Encode(rep)...) // establishes the dictionary
	doc := append([]byte(nil), enc.Encode(rep)...)  // empty-delta document

	dec := NewBinaryDecoder()
	if _, err := dec.DecodeScratch(full); err != nil {
		t.Fatal(err)
	}
	// The empty-delta doc neither grows the dictionary nor mismatches, so
	// it decodes repeatably; one warm pass fills the key cache and scratch.
	if _, err := dec.DecodeScratch(doc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := dec.DecodeScratch(doc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm DecodeScratch allocates %v times per op, want 0", allocs)
	}
}

// TestShardIndexKeyMatchesShardIndex: the key-form router must agree with
// the field-form router (both paths of the dispatcher must agree on shard
// ownership).
func TestShardIndexKeyMatchesShardIndex(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		rep := synthReport(seed, "d", 20)
		for _, e := range rep.Entries() {
			for _, shards := range []int{1, 2, 4, 7, 16} {
				byFields := ShardIndex(e.App, e.ActionUID, e.RootCause, shards)
				byKey := ShardIndexKey(entryKey(e.App, e.ActionUID, e.RootCause), shards)
				if byFields != byKey {
					t.Fatalf("shard routing diverges for %s: %d vs %d", e.RootCause, byFields, byKey)
				}
			}
		}
	}
}
