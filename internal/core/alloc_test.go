package core

import (
	"testing"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/cpu"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/stack"
)

// TestAnalyzeTracesZeroAlloc pins the tentpole acceptance criterion: a warm
// TraceAnalyzer diagnoses a corpus-shaped hang with zero heap allocations.
// Any map revival, string building, or scratch reallocation in the hot path
// fails this test immediately.
func TestAnalyzeTracesZeroAlloc(t *testing.T) {
	c := corpus.Shared()
	traces := corpus.SampledTraces(c.MustApp("K9-Mail"), 42, 64)
	if len(traces) == 0 {
		t.Fatal("no traces")
	}
	var ta TraceAnalyzer
	if _, ok := ta.Analyze(traces, c.Registry, 0.5); !ok {
		t.Fatal("warm-up produced no diagnosis")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := ta.Analyze(traces, c.Registry, 0.5); !ok {
			t.Fatal("no diagnosis")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Analyze allocates %.1f objects per hang, want 0", allocs)
	}
}

// TestSamplerPathZeroAlloc covers the other per-sample hot loop: dumping the
// main thread's stack and appending it to the Doctor's reused trace buffer.
// Dispatch stacks are precomputed and fault injection is off, so the whole
// sample must be pointer shuffling — no copies, no key strings.
func TestSamplerPathZeroAlloc(t *testing.T) {
	c := corpus.Shared()
	a := c.MustApp("K9-Mail")
	s, err := app.NewSession(a, app.LGV10(), 7)
	if err != nil {
		t.Fatal(err)
	}
	st := corpus.DispatchStacks(a)[0]
	// Park the main thread inside a long Compute so CurrentStack sees it,
	// exactly as the sampler does mid-hang.
	s.MainThread().Enqueue(cpu.Compute{Dur: simclock.Duration(1e12), Stack: st})
	if got := s.MainThread().State(); got != cpu.Running {
		t.Fatalf("main thread state = %v, want Running", got)
	}
	curTraces := make([]*stack.Stack, 0, 256) // warm, as Doctor reuses it
	allocs := testing.AllocsPerRun(100, func() {
		curTraces = curTraces[:0]
		for i := 0; i < 32; i++ {
			dump, missed, _ := s.SampleMainStack()
			if dump == nil || missed {
				t.Fatal("sample lost without fault injection")
			}
			curTraces = append(curTraces, dump)
		}
	})
	if allocs != 0 {
		t.Fatalf("sampler path allocates %.1f objects per hang, want 0", allocs)
	}
}
