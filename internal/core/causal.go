package core

import (
	"hangdoctor/internal/android/api"
	"hangdoctor/internal/stack"
)

// causal.go is the causal-chain extension of the Trace Analyzer. The paper's
// occurrence-factor analysis (§3.4.1) assumes the root cause executes on the
// main thread during the hang. Asynchronous app code breaks that assumption:
// a dispatch that parks in FutureTask.get while a pool worker does the real
// work shows the await API as its most frequent leaf, and a convoy behind
// another action's task shows nothing of the blocker at all. The causal
// analyzer closes that gap with the provenance the instrumented runtime
// already has — every sampled stack arrives tagged with the causal edge
// (origin action, spawn site, edge kind) of the work its thread was
// executing — by grouping worker samples into per-origin chains, computing
// occurrence factors per chain, and re-attributing await-parked hangs to the
// dominant chain's own trace population.

// CausalChain describes the asynchronous chain a diagnosis was attributed
// through. The zero value means the diagnosis was plain main-thread work.
// SharePermille is an integer share (‰ of the hang's samples that belonged
// to the chain) so reports carrying chains stay canonically encodable.
type CausalChain struct {
	// Kind is the causal edge type: "submit", "delay", "post", or
	// "completion".
	Kind string
	// OriginAction is the UID of the action that transitively spawned the
	// chain — for a cross-action convoy this differs from the action that
	// hung, and detections are attributed to it.
	OriginAction string
	// OriginSite is the spawn site (the task's leaf frame key for submitted
	// work, the spawning op's leaf for completions).
	OriginSite string
	// SharePermille is the chain's share of all samples collected during the
	// hang, in thousandths.
	SharePermille int
}

// Zero reports whether no chain was attributed.
func (c CausalChain) Zero() bool { return c == CausalChain{} }

// mergeChain folds two chain attributions of the same detection row
// componentwise: strings keep the lexicographically smallest non-empty
// value, the share keeps the maximum. Componentwise min/max is commutative
// and associative, so fleet merges reach the same fixed point regardless of
// upload order — the same property the rest of the report fold relies on.
func mergeChain(a, b CausalChain) CausalChain {
	s := func(x, y string) string {
		if x == "" {
			return y
		}
		if y != "" && y < x {
			return y
		}
		return x
	}
	out := CausalChain{
		Kind:          s(a.Kind, b.Kind),
		OriginAction:  s(a.OriginAction, b.OriginAction),
		OriginSite:    s(a.OriginSite, b.OriginSite),
		SharePermille: a.SharePermille,
	}
	if b.SharePermille > out.SharePermille {
		out.SharePermille = b.SharePermille
	}
	return out
}

// chainGroup accumulates one origin's samples during partitioning. Groups
// live in a reused slice scanned linearly — a hang sees a handful of
// distinct origins at most, and avoiding a map keeps the warm path
// allocation-free.
type chainGroup struct {
	origin stack.Origin
	count  int
	first  int // index of the group's first sample: deterministic tie-break
}

// CausalAnalyzer is the Trace Analyzer extended with causal-chain
// attribution. It shares the Doctor's TraceAnalyzer (and its dense scratch),
// so a causal analysis in steady state allocates nothing: partitioning
// reuses the main/chain stack buffers and the group slice, and both verdict
// passes run on the shared analyzer's per-symbol counters.
//
// Not safe for concurrent use; each Doctor owns one.
type CausalAnalyzer struct {
	ta *TraceAnalyzer

	mainBuf  []*stack.Stack
	chainBuf []*stack.Stack
	groups   []chainGroup
	mainOrg  []chainGroup
}

// NewCausalAnalyzer wraps an existing TraceAnalyzer (sharing scratch with
// the plain diagnosis path).
func NewCausalAnalyzer(ta *TraceAnalyzer) *CausalAnalyzer {
	return &CausalAnalyzer{ta: ta}
}

// note appends a sample to the group matching origin (linear scan).
func note(groups []chainGroup, origin stack.Origin, idx int) []chainGroup {
	for i := range groups {
		if groups[i].origin == origin {
			groups[i].count++
			return groups
		}
	}
	return append(groups, chainGroup{origin: origin, count: 1, first: idx})
}

// dominant returns the group with the most samples, breaking ties toward
// the earliest-seen group (deterministic: samples arrive in collection
// order).
func dominant(groups []chainGroup) *chainGroup {
	best := &groups[0]
	for i := 1; i < len(groups); i++ {
		g := &groups[i]
		if g.count > best.count || (g.count == best.count && g.first < best.first) {
			best = g
		}
	}
	return best
}

// Analyze renders a causal diagnosis from tagged samples.
//
// Main-thread samples are analyzed exactly as the plain Trace Analyzer would
// (restricted to main-thread input, the result is identical — the
// differential oracle in causal_test.go pins this). If the main verdict is
// an await symbol (the dispatch was parked on asynchronous work) and worker
// chains were sampled, the hang is re-attributed: the dominant chain's
// samples get their own occurrence-factor pass, and that verdict — with the
// chain's provenance — replaces the await. If the main verdict is an await
// but no worker samples survived, the analyzer keeps the main-thread verdict
// and reports fallback=true so the Doctor can count the degradation.
//
// When no escalation happens, main-thread samples executing provenance-
// carrying dispatches (worker completions posted back to the looper) still
// contribute chain metadata to the verdict, so completion-pattern bugs
// surface with their origin attached.
//
// ok is false when no usable main-thread samples were collected.
func (ca *CausalAnalyzer) Analyze(samples []stack.Tagged, reg *api.Registry, occHigh float64) (diag Diagnosis, chain CausalChain, fallback, ok bool) {
	ca.mainBuf = ca.mainBuf[:0]
	ca.groups = ca.groups[:0]
	ca.mainOrg = ca.mainOrg[:0]
	for i := range samples {
		s := &samples[i]
		if s.Stack == nil {
			continue
		}
		if s.Worker {
			ca.groups = note(ca.groups, s.Origin, i)
			continue
		}
		ca.mainBuf = append(ca.mainBuf, s.Stack)
		if s.Origin.Kind != "input" && !s.Origin.IsZero() {
			ca.mainOrg = note(ca.mainOrg, s.Origin, i)
		}
	}
	diag, ok = ca.ta.Analyze(ca.mainBuf, reg, occHigh)
	if !ok {
		return Diagnosis{}, CausalChain{}, false, false
	}
	total := len(samples)
	if reg.IsAwaitSym(diag.Sym) {
		if len(ca.groups) == 0 {
			// The thread is demonstrably waiting on asynchronous work, but
			// no worker sample survived to say which; keep the (wrong but
			// honest) await verdict and let the Doctor count the fallback.
			return diag, CausalChain{}, true, true
		}
		g := dominant(ca.groups)
		ca.chainBuf = ca.chainBuf[:0]
		for i := range samples {
			s := &samples[i]
			if s.Worker && s.Stack != nil && s.Origin == g.origin {
				ca.chainBuf = append(ca.chainBuf, s.Stack)
			}
		}
		chainDiag, chainOK := ca.ta.Analyze(ca.chainBuf, reg, occHigh)
		if chainOK {
			return chainDiag, CausalChain{
				Kind:          g.origin.Kind,
				OriginAction:  g.origin.ActionUID,
				OriginSite:    g.origin.Site,
				SharePermille: 1000 * g.count / total,
			}, false, true
		}
		return diag, CausalChain{}, true, true
	}
	if len(ca.mainOrg) > 0 {
		// No escalation, but the hang ran (at least partly) inside
		// provenance-carrying dispatches — completion deliveries, posted
		// chains. Attach the dominant origin as metadata; attribution
		// stays with the diagnosed main-thread code.
		g := dominant(ca.mainOrg)
		chain = CausalChain{
			Kind:          g.origin.Kind,
			OriginAction:  g.origin.ActionUID,
			OriginSite:    g.origin.Site,
			SharePermille: 1000 * g.count / total,
		}
	}
	return diag, chain, false, true
}
