package core

import (
	"fmt"
	"sort"
	"strings"

	"hangdoctor/internal/simclock"
)

// maxReservoir bounds per-action response-time samples; beyond it, samples
// are replaced reservoir-style so long deployments stay O(1) per action.
const maxReservoir = 512

// ActionStats summarizes one action's responsiveness over the deployment.
type ActionStats struct {
	ActionUID string
	// Executions counts every observed execution; Hangs counts those above
	// the perceivable delay.
	Executions int
	Hangs      int
	// reservoir holds response-time samples in milliseconds.
	reservoir []float64
	seen      int
	// sorted caches the reservoir in ascending order for Percentile;
	// Record invalidates it. The backing array persists across re-sorts,
	// so once the reservoir is full a dashboard render allocates nothing
	// no matter how many percentiles it asks for.
	sorted      []float64
	sortedValid bool
}

// HangRate returns the fraction of executions that were soft hangs.
func (s *ActionStats) HangRate() float64 {
	if s.Executions == 0 {
		return 0
	}
	return float64(s.Hangs) / float64(s.Executions)
}

// Percentile returns the q-quantile of observed response times in
// milliseconds (0 if nothing recorded).
func (s *ActionStats) Percentile(q float64) float64 {
	if len(s.reservoir) == 0 {
		return 0
	}
	if !s.sortedValid {
		s.sorted = append(s.sorted[:0], s.reservoir...)
		sort.Float64s(s.sorted)
		s.sortedValid = true
	}
	sorted := s.sorted
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Telemetry tracks per-action responsiveness across a deployment — the
// statistics view of the Hang Bug Report dashboard (§3.2 "allows to view
// statistical information about the app responsiveness performance in the
// wild"). The Doctor feeds it on every action execution, hang or not.
type Telemetry struct {
	perceivable simclock.Duration
	actions     map[string]*ActionStats
	// rngState drives reservoir replacement deterministically without an
	// external RNG dependency (splitmix64 step).
	rngState uint64
	// Health is the degraded-operation summary the owning Doctor keeps in
	// sync; it stays zero (and invisible in Render) on a perfect
	// measurement plane.
	Health Health
}

// NewTelemetry builds an empty telemetry store.
func NewTelemetry(perceivable simclock.Duration) *Telemetry {
	if perceivable <= 0 {
		perceivable = 100 * simclock.Millisecond
	}
	return &Telemetry{
		perceivable: perceivable,
		actions:     map[string]*ActionStats{},
		rngState:    0x9e3779b97f4a7c15,
	}
}

// Record adds one execution's response time.
func (t *Telemetry) Record(actionUID string, rt simclock.Duration) {
	s, ok := t.actions[actionUID]
	if !ok {
		s = &ActionStats{ActionUID: actionUID}
		t.actions[actionUID] = s
	}
	s.Executions++
	if rt > t.perceivable {
		s.Hangs++
	}
	ms := rt.Milliseconds()
	s.seen++
	if len(s.reservoir) < maxReservoir {
		s.reservoir = append(s.reservoir, ms)
		s.sortedValid = false
		return
	}
	// Reservoir sampling: replace a uniformly random slot with probability
	// maxReservoir/seen.
	t.rngState += 0x9e3779b97f4a7c15
	z := t.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	idx := int(z % uint64(s.seen))
	if idx < maxReservoir {
		s.reservoir[idx] = ms
		s.sortedValid = false
	}
}

// Action returns one action's stats (nil if never observed).
func (t *Telemetry) Action(uid string) *ActionStats { return t.actions[uid] }

// Actions returns all stats sorted by hang rate descending.
func (t *Telemetry) Actions() []*ActionStats {
	out := make([]*ActionStats, 0, len(t.actions))
	for _, s := range t.actions {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].HangRate() != out[j].HangRate() {
			return out[i].HangRate() > out[j].HangRate()
		}
		return out[i].ActionUID < out[j].ActionUID
	})
	return out
}

// Render formats the responsiveness dashboard.
func (t *Telemetry) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %8s %8s %9s %9s %9s\n",
		"Action", "Execs", "HangRate", "P50", "P95", "P99")
	for _, s := range t.Actions() {
		fmt.Fprintf(&b, "%-40s %8d %7.0f%% %8.0fms %8.0fms %8.0fms\n",
			s.ActionUID, s.Executions, 100*s.HangRate(),
			s.Percentile(0.50), s.Percentile(0.95), s.Percentile(0.99))
	}
	if !t.Health.Zero() {
		fmt.Fprintf(&b, "\nDegraded-mode health: %s\n", t.Health)
	}
	return b.String()
}

// Telemetry returns the doctor's responsiveness dashboard, stamped with the
// current degraded-operation health.
func (d *Doctor) Telemetry() *Telemetry {
	if d.telemetry == nil {
		d.telemetry = NewTelemetry(d.cfg.PerceivableDelay)
	}
	d.telemetry.Health = d.health
	return d.telemetry
}
