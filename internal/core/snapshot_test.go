package core

import (
	"bytes"
	"fmt"
	"testing"

	"hangdoctor/internal/simclock"
)

// markAll marks every entry key of r dirty in sc (the shape of a merge
// that touched the whole report) and commits the batch.
func markAll(sc *SnapshotCache, r *Report) {
	sc.MarkReport(r)
	sc.Bump()
}

// TestSnapshotCacheCOW pins the copy-on-write contract: an unchanged
// version returns the identical snapshot, a changed version deep-clones
// only the dirtied entries and shares every clean *ReportEntry pointer
// with the previous snapshot — and every snapshot exports byte-identically
// to a deep clone of the live report at that moment.
func TestSnapshotCacheCOW(t *testing.T) {
	live := foldFixture()
	sc := NewSnapshotCache()
	markAll(sc, live)

	s1 := sc.Snapshot(live)
	if got, want := exportBytes(t, s1), exportBytes(t, live.Clone()); !bytes.Equal(got, want) {
		t.Fatal("first snapshot does not match the live report")
	}
	if sc.Snapshot(live) != s1 {
		t.Fatal("unchanged version must return the cached snapshot")
	}
	if !sc.Cached() {
		t.Fatal("Cached() false right after a snapshot build")
	}

	// Mutate one entry and add one new entry; mark exactly those keys.
	diag := Diagnosis{RootCause: "com.example.Fresh.run", File: "Fresh.java", Line: 3}
	live.Add("app-0", "device-9", "app-0/Action-0", diag, 300*simclock.Millisecond)
	sc.MarkKey(entryKey("app-0", "app-0/Action-0", diag.RootCause))
	hot := live.Entries()[0]
	hotKey := entryKey(hot.App, hot.ActionUID, hot.RootCause)
	live.Add(hot.App, "device-new", hot.ActionUID,
		Diagnosis{RootCause: hot.RootCause, File: hot.File, Line: hot.Line, ViaCaller: hot.ViaCaller},
		500*simclock.Millisecond)
	sc.Bump()
	sc.MarkKey(hotKey)
	sc.Bump()
	if sc.Cached() {
		t.Fatal("Cached() true after the version moved")
	}

	s2 := sc.Snapshot(live)
	if got, want := exportBytes(t, s2), exportBytes(t, live.Clone()); !bytes.Equal(got, want) {
		t.Fatal("rebuilt snapshot does not match the live report")
	}
	// Clean entries share structure, the dirtied one does not.
	shared, cloned := 0, 0
	for key, e := range s1.entries {
		switch s2.entries[key] {
		case e:
			shared++
		default:
			cloned++
		}
	}
	if shared == 0 {
		t.Error("no clean entry pointer was shared between consecutive snapshots")
	}
	if s2.entries[hotKey] == s1.entries[hotKey] {
		t.Error("dirtied entry pointer was shared — the old snapshot would see new data")
	}
	// The first snapshot is immutable: its bytes must not have moved.
	if s1.Len() == live.Len() {
		t.Error("new entry leaked into the previous snapshot")
	}
}

// TestSnapshotCacheDelta pins DeltaSince: entries changed after `since`
// (and only those), the live report's full health, and a hang total that
// sums exactly the included entries.
func TestSnapshotCacheDelta(t *testing.T) {
	live := foldFixture()
	sc := NewSnapshotCache()
	markAll(sc, live)
	_ = sc.Snapshot(live)
	v1 := sc.Version()

	d, v := sc.DeltaSince(live, v1)
	if v != v1 || d.Len() != 0 {
		t.Fatalf("delta at the current version: %d entries, version %d (want 0 at %d)", d.Len(), v, v1)
	}
	if d.Health != live.Health {
		t.Error("delta must carry the full absolute health section")
	}

	diag := Diagnosis{RootCause: "com.example.Late.run", File: "Late.java", Line: 8}
	live.Add("app-1", "device-1", "app-1/Action-1", diag, 250*simclock.Millisecond)
	key := entryKey("app-1", "app-1/Action-1", diag.RootCause)
	sc.MarkKey(key)
	sc.Bump()

	d, v = sc.DeltaSince(live, v1)
	if v != v1+1 {
		t.Fatalf("delta version = %d, want %d", v, v1+1)
	}
	if d.Len() != 1 || d.entries[key] == nil {
		t.Fatalf("delta holds %d entries, want exactly the changed key", d.Len())
	}
	if d.TotalHangs() != d.entries[key].Hangs {
		t.Errorf("delta hang total %d != its entries' sum %d", d.TotalHangs(), d.entries[key].Hangs)
	}
	// since=0 returns everything ever modified.
	d, _ = sc.DeltaSince(live, 0)
	if d.Len() != live.Len() {
		t.Errorf("delta since 0 holds %d entries, want all %d", d.Len(), live.Len())
	}
}

// TestFoldReportsSharedByteIdentical: the pointer-sharing fold must match
// FoldReports byte-for-byte for disjoint and overlapping parts alike, and
// must never mutate its inputs.
func TestFoldReportsSharedByteIdentical(t *testing.T) {
	r := foldFixture()
	disjoint := r.Split(4)
	overlapping := []*Report{r.Clone(), foldFixture(), nil, r.Clone()}
	for name, parts := range map[string][]*Report{"disjoint": disjoint, "overlapping": overlapping} {
		before := make([][]byte, len(parts))
		for i, p := range parts {
			if p != nil {
				before[i] = exportBytes(t, p)
			}
		}
		want := exportBytes(t, FoldReports(parts...))
		got := exportBytes(t, FoldReportsShared(parts...))
		if !bytes.Equal(got, want) {
			t.Errorf("%s: FoldReportsShared diverged from FoldReports", name)
		}
		for i, p := range parts {
			if p != nil && !bytes.Equal(exportBytes(t, p), before[i]) {
				t.Errorf("%s: part %d was mutated by the fold", name, i)
			}
		}
	}
}

// TestFoldReportsParallelDifferential sweeps worker counts against the
// serial fold — the determinism bar for the pairwise tree.
func TestFoldReportsParallelDifferential(t *testing.T) {
	var parts []*Report
	for i := 0; i < 9; i++ {
		parts = append(parts, foldFixture())
		parts[i].Health.Quarantines = i
	}
	parts = append(parts, nil)
	want := exportBytes(t, FoldReports(parts...))
	for _, workers := range []int{0, 1, 2, 3, 4, 8, 32} {
		got := exportBytes(t, FoldReportsParallel(workers, parts...))
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: parallel fold diverged from serial fold", workers)
		}
	}
}

// TestFoldCacheIncremental: updating only the changed parts must equal a
// from-scratch fold, and a no-change update must return the cached result.
func TestFoldCacheIncremental(t *testing.T) {
	base := foldFixture()
	const shards = 4
	parts := base.Split(shards)
	var fc FoldCache
	r1 := fc.Update(parts, make([]bool, shards))
	if got, want := exportBytes(t, r1), exportBytes(t, FoldReports(parts...)); !bytes.Equal(got, want) {
		t.Fatal("initial FoldCache.Update diverged from FoldReports")
	}
	if fc.Update(parts, make([]bool, shards)) != r1 {
		t.Fatal("no-change Update must return the cached fold")
	}

	// Grow the underlying state and re-split: shard key sets only grow.
	grown := base.Clone()
	for i := 0; i < 10; i++ {
		diag := Diagnosis{RootCause: fmt.Sprintf("com.example.Grow%d.run", i), File: "Grow.java", Line: i}
		grown.Add("app-9", fmt.Sprintf("device-g%d", i), "app-9/Act", diag, 150*simclock.Millisecond)
	}
	next := grown.Split(shards)
	changed := make([]bool, shards)
	for i := range next {
		// A shard that gained entries (or whose fragment changed at all) is
		// dirty; unchanged fragments keep their flag false.
		switch {
		case next[i] == nil && parts[i] == nil:
		case next[i] == nil || parts[i] == nil:
			changed[i] = true
		default:
			changed[i] = !bytes.Equal(exportBytes(t, next[i]), exportBytes(t, parts[i]))
		}
		if next[i] == nil && parts[i] != nil {
			t.Fatal("fixture bug: a shard's key set shrank")
		}
	}
	r2 := fc.Update(next, changed)
	if got, want := exportBytes(t, r2), exportBytes(t, FoldReports(next...)); !bytes.Equal(got, want) {
		t.Fatal("incremental Update diverged from a from-scratch fold")
	}
	// Part-count change invalidates the structure and rebuilds.
	r3 := fc.Update(grown.Split(8), make([]bool, 8))
	if got, want := exportBytes(t, r3), exportBytes(t, grown); !bytes.Equal(got, want) {
		t.Fatal("rebuild after part-count change diverged")
	}
}

// wireFrom round-trips a report through the canonical binary encoding to
// produce the WireReport a delta-protocol client receives.
func wireFrom(t *testing.T, r *Report) *WireReport {
	t.Helper()
	wr, err := NewBinaryDecoder().Decode(AppendReportBinary(nil, r))
	if err != nil {
		t.Fatal(err)
	}
	return wr
}

// TestApplyWireFullAndDelta drives the client half of the delta protocol
// against a SnapshotCache-produced delta: full apply mirrors the upstream,
// a delta apply converges the mirror to the upstream's new state, and a
// full apply after upstream data loss shrinks the mirror.
func TestApplyWireFullAndDelta(t *testing.T) {
	live := foldFixture()
	sc := NewSnapshotCache()
	markAll(sc, live)
	_ = sc.Snapshot(live)
	v1 := sc.Version()

	mirror := NewReport()
	if changed := mirror.ApplyWireFull(wireFrom(t, sc.Snapshot(live))); len(changed) != live.Len() {
		t.Fatalf("full apply reported %d changed keys, want %d", len(changed), live.Len())
	}
	if !bytes.Equal(exportBytes(t, mirror), exportBytes(t, live)) {
		t.Fatal("mirror after full apply does not match upstream")
	}

	diag := Diagnosis{RootCause: "com.example.Delta.run", File: "Delta.java", Line: 2}
	live.Add("app-2", "device-2", "app-2/Action-2", diag, 400*simclock.Millisecond)
	live.Health.StacksDropped++
	sc.MarkKey(entryKey("app-2", "app-2/Action-2", diag.RootCause))
	sc.Bump()
	d, _ := sc.DeltaSince(live, v1)
	if changed := mirror.ApplyWireDelta(wireFrom(t, d)); len(changed) != 1 {
		t.Fatalf("delta apply reported %d changed keys, want 1", len(changed))
	}
	if !bytes.Equal(exportBytes(t, mirror), exportBytes(t, live)) {
		t.Fatal("mirror after delta apply does not match upstream")
	}

	// Upstream restart with less data: a full apply must also *remove*.
	small := NewReport()
	small.Add("app-0", "dev", "app-0/Act", Diagnosis{RootCause: "com.example.Only.run", File: "O.java", Line: 1}, 200*simclock.Millisecond)
	changed := mirror.ApplyWireFull(wireFrom(t, small))
	if !bytes.Equal(exportBytes(t, mirror), exportBytes(t, small)) {
		t.Fatal("mirror after shrinking full apply does not match upstream")
	}
	if len(changed) < live.Len() {
		t.Errorf("shrinking full apply reported %d changed keys, want the old∪new union", len(changed))
	}
}

// TestRefreshKeys: re-deriving the changed keys across parts must equal a
// from-scratch fold, rebuild entries fresh (so shared old snapshots stay
// valid), and delete keys no part holds.
func TestRefreshKeys(t *testing.T) {
	a, b := foldFixture(), foldFixture()
	b.Health.PerfOpenFailures = 9
	master := FoldReportsShared(a, b)

	// Replace one entry in part a the way ApplyWireDelta would: fresh
	// pointer, different counters.
	victim := a.Entries()[0]
	key := entryKey(victim.App, victim.ActionUID, victim.RootCause)
	repl := cloneEntry(victim)
	repl.Hangs += 5
	repl.Devices["device-refresh"] = true
	a.totalHangs += 5
	a.entries[key] = repl

	oldEntry := master.entries[key]
	oldHangs := oldEntry.Hangs
	master.RefreshKeys([]string{key}, a, b)
	if got, want := exportBytes(t, master), exportBytes(t, FoldReports(a, b)); !bytes.Equal(got, want) {
		t.Fatal("RefreshKeys diverged from a from-scratch fold")
	}
	if master.entries[key] == oldEntry {
		t.Error("RefreshKeys mutated an entry in place instead of rebuilding it")
	}
	if oldEntry.Hangs != oldHangs {
		t.Error("the replaced entry was mutated — shared snapshots would corrupt")
	}

	// A key held by no part disappears.
	ghost := "no\x00such\x00key"
	master.entries[ghost] = cloneEntry(victim)
	master.RefreshKeys([]string{ghost}, a, b)
	if _, ok := master.entries[ghost]; ok {
		t.Error("RefreshKeys kept a key no part holds")
	}
}
