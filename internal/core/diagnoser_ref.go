package core

import (
	"hangdoctor/internal/android/api"
	"hangdoctor/internal/stack"
)

// analyzeTracesReference is the retained string-map reference
// implementation of the Trace Analyzer: maps keyed by Frame.Key() strings,
// per-trace seen-sets, string-path UI classification — the shape the
// ID-based TraceAnalyzer replaced. It exists solely as the differential
// oracle: TestAnalyzeTracesDifferential runs both over randomized
// corpus-derived traces and asserts identical Diagnosis output, including
// tie-break cases (ties resolve to the smallest symbol ID in both). Keep
// its semantics in lockstep with TraceAnalyzer.Analyze; it is not called
// outside tests.
func analyzeTracesReference(traces []*stack.Stack, reg *api.Registry, occHigh float64) (Diagnosis, bool) {
	type info struct {
		count int
		frame stack.Frame
		depth int // cumulative frame index, for closest-to-leaf tie-breaks
		sym   stack.SymID
	}
	leaf := map[string]*info{}
	caller := map[string]*info{}
	total := 0
	for _, tr := range traces {
		if tr.Depth() == 0 {
			continue
		}
		total++
		lf := tr.Leaf()
		if li := leaf[lf.Key()]; li != nil {
			li.count++
		} else {
			leaf[lf.Key()] = &info{count: 1, frame: lf, sym: reg.SymOf(lf)}
		}
		seen := map[string]bool{lf.Key(): true}
		for i := 1; i < len(tr.Frames); i++ {
			f := tr.Frames[i]
			if frameworkClass(f.Class) || seen[f.Key()] {
				continue
			}
			seen[f.Key()] = true
			if ci := caller[f.Key()]; ci != nil {
				ci.count++
				ci.depth += i
			} else {
				caller[f.Key()] = &info{count: 1, frame: f, depth: i, sym: reg.SymOf(f)}
			}
		}
	}
	if total == 0 {
		return Diagnosis{}, false
	}

	pick := func(m map[string]*info) (string, *info) {
		var bestKey string
		var best *info
		for k, i := range m {
			if best == nil || i.count > best.count ||
				(i.count == best.count && (i.depth < best.depth ||
					(i.depth == best.depth && i.sym < best.sym))) {
				best, bestKey = i, k
			}
		}
		return bestKey, best
	}

	leafKey, leafInfo := pick(leaf)
	d := Diagnosis{
		RootCause:  leafKey,
		Sym:        leafInfo.sym,
		File:       leafInfo.frame.File,
		Line:       leafInfo.frame.Line,
		Occurrence: float64(leafInfo.count) / float64(total),
	}
	if d.Occurrence < occHigh && len(caller) > 0 {
		callerKey, callerInfo := pick(caller)
		callerOcc := float64(callerInfo.count) / float64(total)
		if callerOcc >= occHigh {
			d = Diagnosis{
				RootCause:  callerKey,
				Sym:        callerInfo.sym,
				File:       callerInfo.frame.File,
				Line:       callerInfo.frame.Line,
				Occurrence: callerOcc,
				ViaCaller:  true,
			}
		}
	}
	d.IsUI = reg.IsUIClass(classOf(d.RootCause))
	return d, true
}
