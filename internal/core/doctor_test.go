package core

import (
	"strings"
	"testing"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/perf"
	"hangdoctor/internal/simclock"
)

// runHD runs Hang Doctor over a trace of one app and returns the doctor and
// harness.
func runHD(t *testing.T, c *corpus.Corpus, appName string, cfg Config, seed uint64, n int) (*Doctor, *detect.Harness) {
	t.Helper()
	a := c.MustApp(appName)
	d := New(cfg)
	h, err := detect.NewHarness(a, app.LGV10(), seed, d)
	if err != nil {
		t.Fatal(err)
	}
	h.Run(corpus.Trace(a, seed, n), simclock.Second)
	return d, h
}

func TestDoctorFindsK9Bugs(t *testing.T) {
	c := corpus.Build()
	d, h := runHD(t, c, "K9-Mail", Config{}, 11, 140)

	roots := map[string]bool{}
	for _, det := range d.Detections() {
		roots[det.RootCause] = true
	}
	if !roots["org.htmlcleaner.HtmlCleaner.clean"] {
		t.Errorf("clean not diagnosed; detections: %v", roots)
	}
	if !roots["org.apache.james.mime4j.parser.MimeStreamParser.parse"] {
		t.Errorf("mime4j parse not diagnosed; detections: %v", roots)
	}
	for r := range roots {
		if strings.HasPrefix(r, "android.widget.") || strings.HasPrefix(r, "android.view.") {
			t.Errorf("UI API reported as bug: %s", r)
		}
	}

	ev := h.Evaluate(d)
	if ev.TP == 0 {
		t.Fatal("no true positives")
	}
	// The paper: HD traces ~80% of bug hangs (misses only the initial
	// S-Checker pass) and <10% of UI hangs.
	if ev.GroundTruthHangs > 0 {
		recall := float64(ev.TP) / float64(ev.GroundTruthHangs)
		if recall < 0.5 {
			t.Errorf("recall = %.2f (TP=%d of %d)", recall, ev.TP, ev.GroundTruthHangs)
		}
	}
	if ev.UIHangs > 0 {
		fpRate := float64(ev.FP) / float64(ev.UIHangs)
		if fpRate > 0.4 {
			t.Errorf("FP rate vs UI hangs = %.2f (FP=%d of %d UI hangs)", fpRate, ev.FP, ev.UIHangs)
		}
	}
}

func TestDoctorStateConvergence(t *testing.T) {
	c := corpus.Build()
	d, _ := runHD(t, c, "K9-Mail", Config{ResetEvery: 1 << 30}, 11, 140)
	// Bug actions end in HangBug, pure-UI hang actions in Normal.
	if got := d.State("K9-Mail/Open Email"); got != HangBug {
		t.Errorf("Open Email state = %v, want HangBug", got)
	}
	if got := d.State("K9-Mail/Folders"); got != Normal {
		t.Errorf("Folders state = %v, want Normal", got)
	}
	// Inbox (the engineered borderline UI action) must not be HangBug.
	if got := d.State("K9-Mail/Inbox"); got == HangBug {
		t.Error("Inbox (UI) converged to HangBug")
	}
}

func TestDoctorInboxPrunedByDiagnoser(t *testing.T) {
	// Figure 7: Inbox occasionally trips S-Checker (Suspicious) but the
	// Diagnoser prunes it back to Normal. Across seeds, it must never be
	// reported as a bug.
	c := corpus.Build()
	sawSuspicious := false
	for seed := uint64(1); seed <= 6; seed++ {
		d, _ := runHD(t, c, "K9-Mail", Config{ResetEvery: 1 << 30}, seed, 120)
		for _, tr := range d.Transitions() {
			if tr.ActionUID == "K9-Mail/Inbox" && tr.To == Suspicious {
				sawSuspicious = true
			}
		}
		for _, det := range d.Detections() {
			if det.ActionUID == "K9-Mail/Inbox" {
				t.Fatalf("Inbox diagnosed as bug: %+v", det)
			}
		}
	}
	if !sawSuspicious {
		t.Error("Inbox never became Suspicious; the Figure 7 false-positive path is not exercised")
	}
}

func TestDoctorFeedsKnownBlockingDatabase(t *testing.T) {
	c := corpus.Build()
	key := "org.htmlcleaner.HtmlCleaner.clean"
	if c.Registry.IsKnownBlocking(key) {
		t.Fatal("clean should start unknown")
	}
	runHD(t, c, "K9-Mail", Config{}, 11, 140)
	if !c.Registry.IsKnownBlocking(key) {
		t.Fatal("diagnosed API not fed back to the known-blocking database")
	}
}

func TestDoctorSelfDevelopedNotAddedToDatabase(t *testing.T) {
	c := corpus.Build()
	d, _ := runHD(t, c, "AndStatus", Config{}, 13, 200)
	found := false
	for _, det := range d.Detections() {
		if det.RootCause == "org.andstatus.app.data.MessageInserter.transform" {
			found = true
		}
	}
	if !found {
		t.Skip("self-developed transform not diagnosed in this trace")
	}
	if c.Registry.IsKnownBlocking("org.andstatus.app.data.MessageInserter.transform") {
		t.Fatal("self-developed operation added to the API database")
	}
}

func TestDoctorSymptomAttribution(t *testing.T) {
	// Table 6 mechanics: QKSMS bugs are CPU loops — flagged by the
	// context-switch and/or task-clock conditions, never by page faults
	// alone; Omni-Notes bugs are flagged by page faults.
	c := corpus.Build()
	d, _ := runHD(t, c, "QKSMS", Config{}, 17, 160)
	conds := DefaultConditions()
	for _, det := range d.Detections() {
		for _, si := range det.Symptoms {
			if conds[si].Event == perf.PageFaults {
				t.Errorf("QKSMS detection %s flagged by page faults", det.RootCause)
			}
		}
		if len(det.Symptoms) == 0 {
			t.Errorf("detection %s has no recorded symptoms", det.RootCause)
		}
	}

	d2, _ := runHD(t, c, "Omni-Notes", Config{}, 17, 160)
	if len(d2.Detections()) == 0 {
		t.Fatal("no Omni-Notes detections")
	}
	for _, det := range d2.Detections() {
		hasPF := false
		for _, si := range det.Symptoms {
			if conds[si].Event == perf.PageFaults {
				hasPF = true
			}
		}
		if !hasPF {
			t.Errorf("Omni-Notes detection %s not flagged by page faults (symptoms %v)", det.RootCause, det.Symptoms)
		}
	}
}

func TestDoctorOverheadBelowTimeout(t *testing.T) {
	c := corpus.Build()
	a := c.MustApp("K9-Mail")
	trace := corpus.Trace(a, 4, 100)

	run := func(det detect.Detector) float64 {
		h, err := detect.NewHarness(a, app.LGV10(), 21, det)
		if err != nil {
			t.Fatal(err)
		}
		h.Run(trace, simclock.Second)
		return h.Overhead(det).Avg()
	}
	hd := run(New(Config{}))
	ti := run(detect.NewTimeout(detect.PerceivableDelay))
	if hd >= ti {
		t.Fatalf("HD overhead %.2f%% not below TI %.2f%%", hd, ti)
	}
}

func TestDoctorResetRecoversOccasionalBug(t *testing.T) {
	// An action wrongly settled as Normal must be re-examined after
	// ResetEvery executions and eventually reach HangBug.
	c := corpus.Build()
	d, _ := runHD(t, c, "K9-Mail", Config{ResetEvery: 5}, 23, 200)
	resets := 0
	for _, tr := range d.Transitions() {
		if tr.Phase == "Reset" {
			resets++
		}
	}
	if resets == 0 {
		t.Fatal("periodic reset never fired")
	}
}

func TestDoctorReportAggregation(t *testing.T) {
	c := corpus.Build()
	d, _ := runHD(t, c, "K9-Mail", Config{}, 11, 140)
	rep := d.Report()
	if rep.Len() == 0 {
		t.Fatal("empty report")
	}
	entries := rep.Entries()
	var pctSum float64
	for _, e := range entries {
		if e.Hangs <= 0 {
			t.Fatalf("entry with no hangs: %+v", e)
		}
		pctSum += rep.OccurrencePct(e)
	}
	if pctSum < 99.9 || pctSum > 100.1 {
		t.Fatalf("occurrence percentages sum to %v", pctSum)
	}
	// Sorted descending.
	for i := 1; i < len(entries); i++ {
		if entries[i].Hangs > entries[i-1].Hangs {
			t.Fatal("entries not sorted by occurrence")
		}
	}
	if !strings.Contains(rep.Render(), "clean") {
		t.Fatal("rendered report missing the clean entry")
	}
}

func TestReportMerge(t *testing.T) {
	a := NewReport()
	b := NewReport()
	diag := Diagnosis{RootCause: "x.Y.m", File: "Y.java", Line: 3}
	a.Add("App", "dev1", "App/act", diag, 200*simclock.Millisecond)
	b.Add("App", "dev2", "App/act", diag, 300*simclock.Millisecond)
	b.Add("App", "dev2", "App/act2", Diagnosis{RootCause: "z.W.n"}, 150*simclock.Millisecond)
	a.Merge(b)
	if a.Len() != 2 || a.TotalHangs() != 3 {
		t.Fatalf("merged: len=%d hangs=%d", a.Len(), a.TotalHangs())
	}
	top := a.Entries()[0]
	if top.RootCause != "x.Y.m" || top.Hangs != 2 || len(top.Devices) != 2 {
		t.Fatalf("top entry: %+v", top)
	}
	if top.MaxResponse != 300*simclock.Millisecond {
		t.Fatalf("MaxResponse = %v", top.MaxResponse)
	}
	if top.AvgResponse() != 250*simclock.Millisecond {
		t.Fatalf("AvgResponse = %v", top.AvgResponse())
	}
}

func TestDoctorDeterministic(t *testing.T) {
	c1 := corpus.Build()
	c2 := corpus.Build()
	d1, _ := runHD(t, c1, "K9-Mail", Config{}, 31, 80)
	d2, _ := runHD(t, c2, "K9-Mail", Config{}, 31, 80)
	a, b := d1.Detections(), d2.Detections()
	if len(a) != len(b) {
		t.Fatalf("detection counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].RootCause != b[i].RootCause || a[i].Count != b[i].Count {
			t.Fatalf("detections differ at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLightAdapt(t *testing.T) {
	conds := DefaultConditions()
	var data []LabeledReading
	// Context-switch and task-clock differences carry no signal (constant);
	// only tightening the page-fault threshold to ~800 separates the data.
	for i := 0; i < 10; i++ {
		data = append(data, LabeledReading{Values: []int64{3, 1e8, 1000 + int64(i)}, IsBug: true})
		data = append(data, LabeledReading{Values: []int64{3, 1e8, 600 + int64(i)}, IsBug: false})
	}
	res, ok := LightAdapt(conds, data)
	if !ok {
		t.Fatalf("light adaptation failed: %+v", res)
	}
	if res.FN != 0 {
		t.Fatalf("FN = %d", res.FN)
	}
	var pfThr int64 = -1
	for _, c := range res.Conditions {
		if c.Event == perf.PageFaults {
			pfThr = c.Threshold
		}
	}
	if pfThr < 600 || pfThr >= 1000 {
		t.Fatalf("adapted page-fault threshold = %d, want in [600,1000)", pfThr)
	}
}

func TestHeavyAdapt(t *testing.T) {
	// The in-use events are useless; a different event separates perfectly.
	events := []perf.Event{perf.ContextSwitches, perf.TaskClock, perf.CacheMisses}
	var data []HeavyReading
	for i := 0; i < 12; i++ {
		isBug := i%2 == 0
		v := map[perf.Event]int64{
			perf.ContextSwitches: 5,
			perf.TaskClock:       1e8,
			perf.CacheMisses:     100,
		}
		if isBug {
			v[perf.CacheMisses] = 10000 + int64(i)
		}
		data = append(data, HeavyReading{Values: v, IsBug: isBug})
	}
	res, err := HeavyAdapt(events, data, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.FN != 0 || res.FP != 0 {
		t.Fatalf("residual errors: %+v", res)
	}
	if len(res.Conditions) != 1 || res.Conditions[0].Event != perf.CacheMisses {
		t.Fatalf("conditions = %+v, want cache-misses only", res.Conditions)
	}
}

func TestAdaptationDataCollection(t *testing.T) {
	c := corpus.Build()
	d, _ := runHD(t, c, "K9-Mail", Config{CollectAdaptation: true}, 11, 100)
	data := d.AdaptationData()
	if len(data) == 0 {
		t.Fatal("no adaptation data collected")
	}
	bugs, uis := 0, 0
	for _, r := range data {
		if len(r.Values) != 3 {
			t.Fatalf("reading has %d values", len(r.Values))
		}
		if r.IsBug {
			bugs++
		} else {
			uis++
		}
	}
	if bugs == 0 || uis == 0 {
		t.Fatalf("labels lack variety: bugs=%d uis=%d", bugs, uis)
	}
}
