package core

import (
	"strings"
	"testing"

	"hangdoctor/internal/fault"
	"hangdoctor/internal/simclock"
)

// TestDoctorMetricsMirrorAccounting checks the tentpole contract of the
// obs refactor: the registry snapshot is a projection of the Doctor's
// existing accounting, not a second bookkeeping system that can drift.
// Every health counter, the action/hang totals, and the monitor cost must
// equal the plain-int sources after a run.
func TestDoctorMetricsMirrorAccounting(t *testing.T) {
	d, _ := runFaulted(t, "K9-Mail", Config{}, 11, 140, nil)
	snap := d.Metrics()

	if got := snap.Value("hangdoctor_actions_total"); got == 0 || got != d.execsSeen {
		t.Errorf("actions_total = %d, want %d (nonzero)", got, d.execsSeen)
	}
	hangs := snap.Value("hangdoctor_hangs_total")
	if hangs == 0 || hangs != d.hangsSeen {
		t.Errorf("hangs_total = %d, want %d (nonzero)", hangs, d.hangsSeen)
	}
	if hist := snap.Histogram("hangdoctor_hang_response_ms"); hist.Count != uint64(hangs) {
		t.Errorf("hang_response_ms count = %d, want one observation per hang (%d)", hist.Count, hangs)
	}
	if got := snap.Value("hangdoctor_monitor_cost_ns_total"); got != d.log.CostNs {
		t.Errorf("monitor_cost_ns_total = %d, want %d", got, d.log.CostNs)
	}
	if got := snap.Value("hangdoctor_monitor_mem_bytes_total"); got != d.log.MemUsed {
		t.Errorf("monitor_mem_bytes_total = %d, want %d", got, d.log.MemUsed)
	}
	h := d.Health()
	for i, hc := range healthCounterHelp {
		if got, want := snap.Value(hc[0]), int64(*healthField(&h, i)); got != want {
			t.Errorf("%s = %d, want %d", hc[0], got, want)
		}
	}
	if got := snap.Value("hangdoctor_perf_sessions_opened_total"); got == 0 {
		t.Error("perf_sessions_opened_total = 0 after a full run")
	}
	// The S-Checker ran at least once per Uncategorized hang; its wall-clock
	// latency histogram must have recorded those decisions.
	if hist := snap.Histogram("hangdoctor_scheck_latency_ns"); hist.Count == 0 {
		t.Error("scheck_latency_ns recorded no decisions")
	}
}

// TestDoctorMetricsFaultGroundTruth runs a hostile plane and checks that
// the injector's delivered-fault counts surface on the same snapshot as
// the Doctor's health view, and that the Prometheus exposition carries
// all three metric kinds.
func TestDoctorMetricsFaultGroundTruth(t *testing.T) {
	inj := fault.New(7, fault.Rates{PerfOpenFail: 0.5, StackMiss: 0.5})
	d, _ := runFaulted(t, "K9-Mail", Config{}, 11, 140, inj)
	snap := d.Metrics()
	st := inj.Stats()
	if st.PerfOpenFails == 0 {
		t.Fatal("precondition failed: no perf-open faults delivered at rate 0.5")
	}
	if got := snap.Value("hangdoctor_fault_perf_open_fails_total"); got != int64(st.PerfOpenFails) {
		t.Errorf("fault_perf_open_fails_total = %d, want %d", got, st.PerfOpenFails)
	}
	if got := snap.Value("hangdoctor_fault_stacks_missed_total"); got != int64(st.StacksMissed) {
		t.Errorf("fault_stacks_missed_total = %d, want %d", got, st.StacksMissed)
	}

	text := snap.String()
	for _, want := range []string{
		"# TYPE hangdoctor_actions_total counter",
		"# TYPE hangdoctor_hang_response_ms histogram",
		`hangdoctor_hang_response_ms_bucket{le="+Inf"}`,
		"hangdoctor_health_perf_open_failures_total",
		"hangdoctor_fault_perf_open_fails_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestPercentileCacheCorrectAndInvalidated pins the Percentile fix: the
// cached sorted view must return the same interpolated values as the old
// sort-per-call implementation, and a Record between calls must refresh
// it.
func TestPercentileCacheCorrectAndInvalidated(t *testing.T) {
	tel := NewTelemetry(100 * simclock.Millisecond)
	for _, ms := range []int{30, 10, 20} {
		tel.Record("a", simclock.Duration(ms)*simclock.Millisecond)
	}
	s := tel.Action("a")
	if got := s.Percentile(0.5); got != 20 {
		t.Fatalf("p50 of {10,20,30} = %v, want 20", got)
	}
	if got := s.Percentile(0); got != 10 {
		t.Fatalf("p0 = %v, want 10", got)
	}
	if got := s.Percentile(1); got != 30 {
		t.Fatalf("p100 = %v, want 30", got)
	}
	// Interpolation between ranks: pos = 0.25*(3-1) = 0.5 → midway 10..20.
	if got, want := s.Percentile(0.25), 15.0; got != want {
		t.Fatalf("p25 = %v, want %v", got, want)
	}
	// A new sample must invalidate the cached order.
	tel.Record("a", 1000*simclock.Millisecond)
	if got, want := s.Percentile(0.5), 25.0; got != want { // {10,20,30,1000}, pos 1.5
		t.Fatalf("p50 after insert = %v, want %v", got, want)
	}
	if got := s.Percentile(1); got != 1000 {
		t.Fatalf("p100 after insert = %v, want 1000", got)
	}
}

// TestPercentileWarmZeroAlloc is the regression guard for the satellite
// fix: Percentile used to copy and sort the whole reservoir on every
// call, so rendering one dashboard row cost three sorts. A warm stats row
// must now answer any number of percentile queries without allocating.
func TestPercentileWarmZeroAlloc(t *testing.T) {
	tel := NewTelemetry(100 * simclock.Millisecond)
	for i := 0; i < 2*maxReservoir; i++ {
		tel.Record("a", simclock.Duration(i%400)*simclock.Millisecond)
	}
	s := tel.Action("a")
	s.Percentile(0.5) // build the cache
	allocs := testing.AllocsPerRun(100, func() {
		_ = s.Percentile(0.50)
		_ = s.Percentile(0.95)
		_ = s.Percentile(0.99)
	})
	if allocs != 0 {
		t.Fatalf("warm Percentile allocates %.1f objects per render, want 0", allocs)
	}
}
