package core

import (
	"testing"

	"hangdoctor/internal/android/api"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/simrand"
	"hangdoctor/internal/stack"
)

// diagEqual compares two Diagnoses field by field; Sym is included so the
// differential test also pins down which interned symbol each side blamed.
func diagEqual(a, b Diagnosis) bool {
	return a.RootCause == b.RootCause && a.Sym == b.Sym &&
		a.File == b.File && a.Line == b.Line &&
		a.Occurrence == b.Occurrence && a.IsUI == b.IsUI &&
		a.ViaCaller == b.ViaCaller
}

// TestAnalyzeTracesDifferential runs the ID-based TraceAnalyzer and the
// retained string-map reference implementation over randomized
// corpus-derived trace sets and asserts bit-identical Diagnosis output. The
// analyzer is reused across cases (the Doctor's steady-state shape) so any
// stale-scratch bug between hangs shows up as a divergence.
func TestAnalyzeTracesDifferential(t *testing.T) {
	c := corpus.Shared()
	rng := simrand.New(97).Derive("diff")
	var ta TraceAnalyzer
	cases := 0
	for _, a := range c.Apps {
		for trial := 0; trial < 3; trial++ {
			seed := uint64(rng.Intn(1 << 30))
			n := 4 + rng.Intn(120)
			traces := corpus.SampledTraces(a, seed, n)
			if len(traces) == 0 {
				continue
			}
			for _, occHigh := range []float64{0.3, 0.5, 0.9} {
				got, gotOK := ta.Analyze(traces, c.Registry, occHigh)
				want, wantOK := analyzeTracesReference(traces, c.Registry, occHigh)
				if gotOK != wantOK || !diagEqual(got, want) {
					t.Fatalf("%s seed=%d n=%d occHigh=%v:\n  new = %+v (ok=%v)\n  ref = %+v (ok=%v)",
						a.Name, seed, n, occHigh, got, gotOK, want, wantOK)
				}
				cases++
			}
		}
	}
	if cases < 100 {
		t.Fatalf("only %d differential cases ran", cases)
	}
}

// TestAnalyzeTracesDifferentialTies builds trace sets with exact count (and
// depth) ties and checks both implementations resolve them identically — to
// the smallest symbol ID — instead of depending on map iteration order.
func TestAnalyzeTracesDifferentialTies(t *testing.T) {
	reg := api.NewRegistry()
	mk := func(keys ...string) *stack.Stack { return frames(keys...) }

	fixtures := []struct {
		name   string
		traces []*stack.Stack
	}{
		{
			// Two leaves, identical counts: smallest interned ID wins.
			name: "leaf-count-tie",
			traces: []*stack.Stack{
				mk("p.A.x", "app.M.on", "android.os.Looper.loop"),
				mk("p.B.y", "app.M.on", "android.os.Looper.loop"),
				mk("p.A.x", "app.M.on", "android.os.Looper.loop"),
				mk("p.B.y", "app.M.on", "android.os.Looper.loop"),
			},
		},
		{
			// Two candidate callers with equal counts and equal cumulative
			// depth: the smallest-ID rule is the only thing separating them.
			name: "caller-count-and-depth-tie",
			traces: []*stack.Stack{
				mk("l.L1.a", "c.C1.f", "c.C2.g", "android.os.Looper.loop"),
				mk("l.L2.b", "c.C2.g", "c.C1.f", "android.os.Looper.loop"),
				mk("l.L3.c", "c.C1.f", "c.C2.g", "android.os.Looper.loop"),
				mk("l.L4.d", "c.C2.g", "c.C1.f", "android.os.Looper.loop"),
			},
		},
		{
			// Caller count tie broken by depth before ID: the closer caller
			// must win even though it interned later (larger ID).
			name: "caller-depth-breaks-tie",
			traces: []*stack.Stack{
				mk("l.L1.a", "z.Far.f", "android.os.Looper.loop"),
				mk("l.L2.b", "a.Near.g", "z.Far.f", "android.os.Looper.loop"),
				mk("l.L3.c", "a.Near.g", "android.os.Looper.loop"),
				mk("l.L4.d", "a.Near.g", "z.Far.f", "android.os.Looper.loop"),
			},
		},
	}

	var ta TraceAnalyzer
	for _, fx := range fixtures {
		got, gotOK := ta.Analyze(fx.traces, reg, 0.5)
		want, wantOK := analyzeTracesReference(fx.traces, reg, 0.5)
		if gotOK != wantOK || !diagEqual(got, want) {
			t.Errorf("%s:\n  new = %+v (ok=%v)\n  ref = %+v (ok=%v)",
				fx.name, got, gotOK, want, wantOK)
		}
		// Re-running the same fixture must be stable (no map-order effects).
		again, _ := ta.Analyze(fx.traces, reg, 0.5)
		if !diagEqual(got, again) {
			t.Errorf("%s: unstable across runs: %+v vs %+v", fx.name, got, again)
		}
	}
}
