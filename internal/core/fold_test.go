package core

import (
	"bytes"
	"fmt"
	"testing"

	"hangdoctor/internal/simclock"
)

// foldFixture builds a report with entries spread over several apps, actions
// and devices, plus nonzero health, so partitioning has something to chew on.
func foldFixture() *Report {
	r := NewReport()
	for i := 0; i < 40; i++ {
		app := fmt.Sprintf("app-%d", i%3)
		action := fmt.Sprintf("%s/Action-%d", app, i%7)
		diag := Diagnosis{
			RootCause:  fmt.Sprintf("com.example.Op%02d.run", i%11),
			File:       fmt.Sprintf("Op%02d.java", i%11),
			Line:       10 + i,
			Occurrence: 0.7,
		}
		for d := 0; d < 1+i%4; d++ {
			r.Add(app, fmt.Sprintf("device-%d", (i+d)%9), action, diag,
				simclock.Duration(120+10*i)*simclock.Millisecond)
		}
	}
	r.Health = Health{PerfOpenFailures: 5, StacksDropped: 2, LowConfidence: 1}
	return r
}

func exportBytes(t *testing.T, r *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSplitFoldRoundTrip: splitting a report into any number of fragments
// and folding them back must reproduce the original byte-for-byte, and must
// leave the source untouched.
func TestSplitFoldRoundTrip(t *testing.T) {
	r := foldFixture()
	want := exportBytes(t, r)
	for _, shards := range []int{1, 2, 3, 8, 32} {
		frags := r.Split(shards)
		if len(frags) != shards {
			t.Fatalf("Split(%d) returned %d fragments", shards, len(frags))
		}
		hangs := 0
		for _, f := range frags {
			if f != nil {
				hangs += f.TotalHangs()
			}
		}
		if hangs != r.TotalHangs() {
			t.Errorf("shards=%d: fragment hang totals sum to %d, want %d", shards, hangs, r.TotalHangs())
		}
		folded := FoldReports(frags...)
		if got := exportBytes(t, folded); !bytes.Equal(got, want) {
			t.Errorf("shards=%d: fold round trip diverged:\n--- want ---\n%s\n--- got ---\n%s", shards, want, got)
		}
		if folded.Render() != r.Render() {
			t.Errorf("shards=%d: rendered fold differs from source", shards)
		}
	}
	if got := exportBytes(t, r); !bytes.Equal(got, want) {
		t.Error("Split mutated its receiver")
	}
}

// TestSplitSkipsEmptyFragments: an upload with nothing for a shard yields a
// nil fragment so the dispatcher can skip the send entirely.
func TestSplitSkipsEmptyFragments(t *testing.T) {
	r := NewReport()
	diag := Diagnosis{RootCause: "com.example.Only.run", File: "Only.java", Line: 1}
	r.Add("app", "dev", "app/Act", diag, 200*simclock.Millisecond)
	frags := r.Split(64)
	nonNil := 0
	for _, f := range frags {
		if f != nil {
			nonNil++
		}
	}
	if nonNil != 1 {
		t.Errorf("single-entry report split into %d non-nil fragments, want 1", nonNil)
	}
	if empty := NewReport().Split(4); func() bool {
		for _, f := range empty {
			if f != nil {
				return false
			}
		}
		return true
	}() == false {
		t.Error("empty zero-health report produced non-nil fragments")
	}
}

// TestCloneIsIndependent: mutating a clone must not leak into the source.
func TestCloneIsIndependent(t *testing.T) {
	r := foldFixture()
	want := exportBytes(t, r)
	c := r.Clone()
	if got := exportBytes(t, c); !bytes.Equal(got, want) {
		t.Fatal("clone does not export identically to its source")
	}
	c.Add("new-app", "new-dev", "new-app/Act",
		Diagnosis{RootCause: "com.example.New.run", File: "New.java", Line: 9}, simclock.Second)
	c.Health.Quarantines++
	if got := exportBytes(t, r); !bytes.Equal(got, want) {
		t.Error("mutating a clone changed the source report")
	}
}

// TestShardIndexStable: the hash is deterministic and in range, and spreads
// a realistic key population over more than one shard.
func TestShardIndexStable(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		app, action, root := fmt.Sprintf("a%d", i%5), fmt.Sprintf("act%d", i), fmt.Sprintf("r%d", i%13)
		idx := ShardIndex(app, action, root, 8)
		if idx < 0 || idx >= 8 {
			t.Fatalf("ShardIndex out of range: %d", idx)
		}
		if idx != ShardIndex(app, action, root, 8) {
			t.Fatal("ShardIndex not deterministic")
		}
		seen[idx] = true
	}
	if len(seen) < 2 {
		t.Errorf("100 keys all hashed to %d shard(s)", len(seen))
	}
	if ShardIndex("a", "b", "c", 1) != 0 || ShardIndex("a", "b", "c", 0) != 0 {
		t.Error("degenerate shard counts must map to shard 0")
	}
}
