package core

import (
	"fmt"
	"testing"

	"hangdoctor/internal/android/api"
	"hangdoctor/internal/stack"
)

// causalBenchSamples synthesizes the tagged-sample population of an
// await-parked hang: main thread in FutureTask.get, workers split across
// two chains so escalation has to group and pick a dominant one.
func causalBenchSamples(mainN, workerN int) []stack.Tagged {
	awaitStack := frames("java.util.concurrent.FutureTask.get", "app.Main.onClick", "android.os.Looper.loop")
	workStack := frames("com.demo.db.Store.query", "com.demo.task.Loader.run")
	otherStack := frames("com.demo.net.Http.fetch", "com.demo.task.Prefetch.run")
	origin := stack.Origin{ActionUID: "Demo/Open", Site: "com.demo.task.Loader.run", Kind: "submit"}
	other := stack.Origin{ActionUID: "Demo/Scroll", Site: "com.demo.task.Prefetch.run", Kind: "submit"}
	var out []stack.Tagged
	for i := 0; i < mainN; i++ {
		out = append(out, stack.Tagged{Stack: awaitStack})
	}
	for i := 0; i < workerN; i++ {
		if i%3 == 0 {
			out = append(out, stack.Tagged{Stack: otherStack, Origin: other, Worker: true})
		} else {
			out = append(out, stack.Tagged{Stack: workStack, Origin: origin, Worker: true})
		}
	}
	return out
}

// BenchmarkCausalAnalyze measures the causal analyzer's steady-state cost on
// the escalation path (await verdict → chain grouping → second occurrence
// pass). CI records these rows in BENCH_causal.json and fails if the warm
// path allocates.
func BenchmarkCausalAnalyze(b *testing.B) {
	reg := api.NewRegistry()
	for _, tc := range []struct{ mainN, workerN int }{
		{16, 16},
		{64, 64},
		{256, 128},
	} {
		samples := causalBenchSamples(tc.mainN, tc.workerN)
		b.Run(fmt.Sprintf("main=%d/worker=%d", tc.mainN, tc.workerN), func(b *testing.B) {
			var ta TraceAnalyzer
			ca := NewCausalAnalyzer(&ta)
			if _, _, _, ok := ca.Analyze(samples, reg, 0.5); !ok {
				b.Fatal("no diagnosis")
			}
			var sink int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, _, _, ok := ca.Analyze(samples, reg, 0.5)
				if !ok {
					b.Fatal("no diagnosis")
				}
				sink += d.Line
			}
			_ = sink
		})
	}
}
