package core

import (
	"testing"

	"hangdoctor/internal/android/api"
	"hangdoctor/internal/stack"
)

func frames(keys ...string) *stack.Stack {
	var fs []stack.Frame
	for i, k := range keys {
		cls := classOf(k)
		m := k[len(cls)+1:]
		fs = append(fs, stack.Frame{Class: cls, Method: m, File: "F.java", Line: 10 + i})
	}
	return stack.New(fs...)
}

func TestAnalyzeSingleHeavyAPI(t *testing.T) {
	reg := api.NewRegistry()
	var traces []*stack.Stack
	// 60 samples inside clean, 5 in caller code: occurrence 0.92.
	for i := 0; i < 60; i++ {
		traces = append(traces, frames(
			"org.htmlcleaner.HtmlCleaner.clean",
			"com.fsck.k9.HtmlSanitizer.sanitize",
			"app.K9.MainActivity.onClick_OpenEmail",
			"android.os.Handler.dispatchMessage",
			"android.os.Looper.loop",
		))
	}
	for i := 0; i < 5; i++ {
		traces = append(traces, frames(
			"app.K9.MainActivity.onClick_OpenEmail",
			"android.os.Handler.dispatchMessage",
			"android.os.Looper.loop",
		))
	}
	d, ok := AnalyzeTraces(traces, reg, 0.5)
	if !ok {
		t.Fatal("no diagnosis")
	}
	if d.RootCause != "org.htmlcleaner.HtmlCleaner.clean" {
		t.Fatalf("root = %q", d.RootCause)
	}
	if d.Occurrence < 0.9 || d.Occurrence > 0.95 {
		t.Fatalf("occurrence = %v", d.Occurrence)
	}
	if d.IsUI || d.ViaCaller {
		t.Fatalf("diag = %+v", d)
	}
}

func TestAnalyzeUIRootCause(t *testing.T) {
	reg := api.NewRegistry()
	var traces []*stack.Stack
	for i := 0; i < 20; i++ {
		traces = append(traces, frames(
			"android.view.LayoutInflater.inflate",
			"app.X.MainActivity.onClick_Folders",
			"android.os.Looper.loop",
		))
	}
	d, ok := AnalyzeTraces(traces, reg, 0.5)
	if !ok || !d.IsUI {
		t.Fatalf("UI hang misdiagnosed: %+v (ok=%v)", d, ok)
	}
}

func TestAnalyzeSelfDevelopedAggregate(t *testing.T) {
	reg := api.NewRegistry()
	// A heavy loop calling many different light APIs: no single leaf has a
	// high occurrence, but the common caller does.
	var traces []*stack.Stack
	leaves := []string{
		"java.lang.String.format", "java.util.ArrayList.add",
		"java.util.HashMap.put", "org.json.JSONObject.getString",
	}
	for i := 0; i < 40; i++ {
		traces = append(traces, frames(
			leaves[i%len(leaves)],
			"com.app.BackupTask.serializeAll",
			"app.Q.MainActivity.onClick_Backup",
			"android.os.Looper.loop",
		))
	}
	d, ok := AnalyzeTraces(traces, reg, 0.5)
	if !ok {
		t.Fatal("no diagnosis")
	}
	if !d.ViaCaller {
		t.Fatalf("expected caller diagnosis, got %+v", d)
	}
	if d.RootCause != "com.app.BackupTask.serializeAll" {
		t.Fatalf("root = %q", d.RootCause)
	}
	if d.IsUI {
		t.Fatal("self-developed op flagged UI")
	}
}

func TestAnalyzeCallerPrefersClosestToLeaf(t *testing.T) {
	reg := api.NewRegistry()
	var traces []*stack.Stack
	leaves := []string{"a.A.x", "b.B.y", "c.C.z"}
	for i := 0; i < 30; i++ {
		traces = append(traces, frames(
			leaves[i%3],
			"com.app.Worker.inner", // closest common caller
			"com.app.Worker.outer",
			"android.os.Looper.loop",
		))
	}
	d, _ := AnalyzeTraces(traces, reg, 0.5)
	if d.RootCause != "com.app.Worker.inner" {
		t.Fatalf("root = %q, want the innermost common caller", d.RootCause)
	}
}

func TestAnalyzeFrameworkNeverRoot(t *testing.T) {
	reg := api.NewRegistry()
	var traces []*stack.Stack
	leaves := []string{"a.A.x", "b.B.y", "c.C.z", "d.D.w"}
	for i := 0; i < 40; i++ {
		// No common app caller at all: only framework frames above.
		traces = append(traces, frames(
			leaves[i%4],
			"android.os.Handler.dispatchMessage",
			"android.os.Looper.loop",
		))
	}
	d, ok := AnalyzeTraces(traces, reg, 0.5)
	if !ok {
		t.Fatal("no diagnosis")
	}
	if cls := classOf(d.RootCause); cls == "android.os.Handler" || cls == "android.os.Looper" {
		t.Fatalf("framework frame chosen as root: %q", d.RootCause)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	reg := api.NewRegistry()
	if _, ok := AnalyzeTraces(nil, reg, 0.5); ok {
		t.Fatal("empty trace set produced a diagnosis")
	}
	if _, ok := AnalyzeTraces([]*stack.Stack{{}}, reg, 0.5); ok {
		t.Fatal("zero-depth traces produced a diagnosis")
	}
}

func TestStateMachineLegalEdges(t *testing.T) {
	r := &actionRecord{uid: "x", state: Uncategorized}
	r.transition(Suspicious)
	r.transition(HangBug)
	if r.state != HangBug {
		t.Fatalf("state = %v", r.state)
	}
	r2 := &actionRecord{uid: "y", state: Uncategorized}
	r2.transition(Normal)
	r2.transition(Uncategorized)
	r2.transition(Suspicious)
	r2.transition(Normal)
	if r2.state != Normal {
		t.Fatalf("state = %v", r2.state)
	}
}

func TestStateMachineIllegalEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r := &actionRecord{uid: "x", state: Normal}
	r.transition(HangBug)
}
