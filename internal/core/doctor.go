package core

import (
	"sort"
	"time"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/cpu"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/perf"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/stack"
)

// detectionKey identifies a detection-table row: one root cause under one
// action. A comparable struct key, so lookups neither build a concatenated
// string per diagnosis nor rely on a separator byte never appearing in UIDs.
type detectionKey struct {
	actionUID string
	rootCause string
}

// Detection is one confirmed soft hang bug diagnosis, the unit of the
// paper's Tables 5 and 6: where it is, what S-Checker symptoms led to it,
// and how often it has been seen.
type Detection struct {
	ActionUID  string
	RootCause  string
	File       string
	Line       int
	Occurrence float64
	// Symptoms are the S-Checker conditions (indexes into Config.Conditions)
	// that flagged the action when it became Suspicious.
	Symptoms []int
	// ViaCaller marks a self-developed aggregate operation.
	ViaCaller bool
	// Chain is the causal chain the diagnosis was attributed through (zero
	// for plain main-thread diagnoses). For cross-action convoys ActionUID
	// is already the *origin* action — the chain records how the blame got
	// there.
	Chain CausalChain
	// Count is the number of soft hangs diagnosed to this root cause.
	Count   int
	FirstAt simclock.Time
	// MaxResponse is the worst response time observed for this cause.
	MaxResponse simclock.Duration
}

// Doctor is Hang Doctor: it implements detect.Detector so the evaluation
// harness can run it side by side with the baselines.
type Doctor struct {
	cfg     Config
	session *app.Session
	log     detect.Log
	report  *Report

	states      map[string]*actionRecord
	transitions []StateTransition
	detections  map[detectionKey]*Detection

	// analyzer is the Doctor's Trace Analyzer with its reusable dense
	// scratch; the Diagnoser and the wide collector share it (both run on
	// the Doctor's listener callbacks, never concurrently).
	analyzer TraceAnalyzer
	// causal wraps analyzer with causal-chain attribution; it runs instead
	// of the plain analyzer whenever the attached app has pool workers and
	// Config.NoCausal is off.
	causal *CausalAnalyzer

	// condEvents is cfg.conditionEvents() computed once at construction; the
	// S-Checker opens a perf session per action execution and the event list
	// never changes after New.
	condEvents []perf.Event
	// valScratch backs sCheck's per-condition value vector between hangs; a
	// copy is taken before anything retains it (adaptSet).
	valScratch []int64

	// Per-action-execution state.
	perfSess    *perf.Session
	earlyRead   *perf.Reading
	earlyTimer  *simclock.Event
	retryTimer  *simclock.Event
	curRec      *actionRecord
	curExec     *app.ActionExec
	curTraces   []*stack.Stack
	curTagged   []stack.Tagged
	curMain     int
	curDropped  int
	openFailed  bool
	sampler     *simclock.Event
	sampling    bool
	adaptSet    []LabeledReading
	deviceLabel string
	wide        wideCollector
	telemetry   *Telemetry
	health      Health

	// metrics is the per-Doctor obs registry; execsSeen/hangsSeen back its
	// action counters (plain ints: the Doctor runs on one sim goroutine),
	// samplerStart anchors the stack-collection-duration histogram.
	metrics      *doctorMetrics
	execsSeen    int64
	hangsSeen    int64
	samplerStart simclock.Time
}

// New builds a Doctor with the given configuration.
func New(cfg Config) *Doctor {
	d := &Doctor{
		cfg:        cfg.withDefaults(),
		states:     map[string]*actionRecord{},
		detections: map[detectionKey]*Detection{},
		report:     NewReport(),
	}
	d.wide.doctor = d
	d.causal = NewCausalAnalyzer(&d.analyzer)
	d.condEvents = d.cfg.conditionEvents()
	d.metrics = newDoctorMetrics(d)
	return d
}

// Name implements detect.Detector.
func (d *Doctor) Name() string { return "HD" }

// Log implements detect.Detector.
func (d *Doctor) Log() *detect.Log { return &d.log }

// Report returns the Hang Bug Report accumulated so far, stamped with the
// current degraded-operation health so uploads carry it.
func (d *Doctor) Report() *Report {
	d.report.Health = d.health
	return d.report
}

// Health returns the degraded-operation summary: what the measurement plane
// lost so far and how the Doctor compensated. It is all zeros on a perfect
// plane.
func (d *Doctor) Health() Health { return d.health }

// Attach implements detect.Detector.
func (d *Doctor) Attach(s *app.Session) {
	d.session = s
	d.deviceLabel = s.Device.Name
}

// Detach implements detect.Detector. It may be called mid-action (app
// shutdown, detector swap), so it must release the whole measurement plane:
// the open perf session is stopped with its read cost charged, pending
// timers are cancelled, and per-execution state is cleared so a later
// re-attach starts clean instead of inheriting a dangling execution.
func (d *Doctor) Detach() {
	d.stopSampler()
	d.wide.stopSampler()
	d.cancelEarly()
	d.cancelRetry()
	if d.perfSess != nil {
		d.perfSess.Stop()
		d.log.AddCost(d.perfSess.CostNs())
		d.perfSess = nil
	}
	d.earlyRead = nil
	d.curRec = nil
	d.curExec = nil
	d.curTraces = nil
	d.curTagged = nil
	d.curMain = 0
	d.curDropped = 0
	d.openFailed = false
}

// State returns an action's current state (Uncategorized if never seen).
func (d *Doctor) State(uid string) ActionState {
	if r, ok := d.states[uid]; ok {
		return r.state
	}
	return Uncategorized
}

// Transitions returns the audit log of state changes.
func (d *Doctor) Transitions() []StateTransition { return d.transitions }

// Detections returns all confirmed diagnoses, most frequent first.
func (d *Doctor) Detections() []*Detection {
	out := make([]*Detection, 0, len(d.detections))
	for _, det := range d.detections {
		out = append(out, det)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].ActionUID != out[j].ActionUID {
			return out[i].ActionUID < out[j].ActionUID
		}
		return out[i].RootCause < out[j].RootCause
	})
	return out
}

// AdaptationData returns the labeled readings recorded for the filter
// adaptation extension (empty unless Config.CollectAdaptation).
func (d *Doctor) AdaptationData() []LabeledReading { return d.adaptSet }

// record fetches or creates the look-up-table row for an action.
func (d *Doctor) record(uid string) *actionRecord {
	r, ok := d.states[uid]
	if !ok {
		r = &actionRecord{uid: uid, state: Uncategorized}
		d.states[uid] = r
	}
	return r
}

func (d *Doctor) logTransition(r *actionRecord, to ActionState, phase string, seq int) {
	d.logTransitionConf(r, to, phase, seq, false)
}

func (d *Doctor) logTransitionConf(r *actionRecord, to ActionState, phase string, seq int, lowConf bool) {
	d.transitions = append(d.transitions, StateTransition{
		ActionUID: r.uid, From: r.state, To: to, Phase: phase, ExecSeq: seq,
		LowConfidence: lowConf,
	})
	r.transition(to)
}

// ActionStart implements app.Listener: look up the action's state and start
// whatever monitoring that state requires.
func (d *Doctor) ActionStart(e *app.ActionExec) {
	r := d.record(e.Action.UID)
	d.curRec = r
	d.curExec = e
	r.execs++
	d.curTraces = d.curTraces[:0] // reuse the backing arrays across executions
	d.curTagged = d.curTagged[:0]
	d.curMain = 0
	d.curDropped = 0
	d.openFailed = false
	d.earlyRead = nil
	d.wide.onActionStart()

	if r.state == Normal {
		r.sinceNormal++
		if d.cfg.ResetEvery > 0 && r.sinceNormal >= d.cfg.ResetEvery {
			// Periodic reset: occasionally-manifesting bugs get re-checked.
			d.logTransition(r, Uncategorized, "Reset", e.Seq)
		}
	}
	if r.state == Uncategorized && !d.cfg.Phase2Only {
		if r.quarantineLeft > 0 {
			// The action's measurement plane kept failing; skip monitoring
			// for a while instead of paying open costs for nothing. The
			// S-Checker defers judgement meanwhile.
			r.quarantineLeft--
		} else {
			// S-Checker monitors the three performance events on main and
			// render threads for the whole action window.
			d.openPerf(r, e, 0)
		}
		if d.cfg.EarlyRead > 0 {
			d.earlyTimer = d.session.Clk.After(d.cfg.EarlyRead, func() {
				d.earlyTimer = nil
				if d.perfSess != nil {
					rd := d.perfSess.Stop()
					d.earlyRead = &rd
					d.log.AddCost(d.perfSess.CostNs())
					d.perfSess = nil
				}
			})
		}
	}
}

// openPerf opens the S-Checker's perf session, retrying failed opens with
// bounded exponential backoff while the same execution is still running.
func (d *Doctor) openPerf(r *actionRecord, e *app.ActionExec, attempt int) {
	cfg := d.perfConfig()
	cfg.Faults = d.session.Faults()
	sess, err := perf.TryOpen(d.session.Clk, d.monitoredThreads(), d.condEvents, cfg)
	if err != nil {
		// A failed perf_event_open still costs the syscall round trip.
		d.log.AddCost(perf.CostOpenNs)
		d.health.PerfOpenFailures++
		if attempt < d.cfg.PerfOpenRetries {
			d.health.PerfOpenRetries++
			backoff := d.cfg.PerfRetryBackoff << attempt
			d.retryTimer = d.session.Clk.After(backoff, func() {
				d.retryTimer = nil
				if d.curExec == e && d.perfSess == nil && d.earlyRead == nil {
					d.openPerf(r, e, attempt+1)
				}
			})
		} else {
			d.openFailed = true
		}
		return
	}
	d.perfSess = sess
}

// perfConfig is the session's perf configuration stamped with the
// Doctor's metrics sink; the S-Checker additionally stamps the fault
// plane (the wide collector deliberately measures an unfaulted plane, so
// its readings stay comparable across chaos sweeps).
func (d *Doctor) perfConfig() perf.Config {
	cfg := d.session.PerfConfig()
	cfg.Metrics = d.metrics.perf
	return cfg
}

// causalActive reports whether causal async diagnosis is in effect: the
// attached app has pool workers and the ablation knob is off. Apps without
// async ops run the original pipeline untouched.
func (d *Doctor) causalActive() bool {
	return !d.cfg.NoCausal && d.session != nil && len(d.session.WorkerThreads()) > 0
}

func (d *Doctor) monitoredThreads() []*cpu.Thread {
	if d.cfg.MainThreadOnly {
		return []*cpu.Thread{d.session.MainThread()}
	}
	threads := []*cpu.Thread{d.session.MainThread(), d.session.RenderThread()}
	if d.causalActive() {
		// Pool workers are scheduled entities on the app side of the
		// main-minus-render difference: an await hang burns its CPU there,
		// and without their counters the S-Checker would see an idle main
		// thread and never flag the action.
		threads = append(threads, d.session.WorkerThreads()...)
	}
	return threads
}

// EventStart arms the Diagnoser's watchdog when the action state calls for
// deep analysis (Suspicious or HangBug), or in Phase2Only mode for every
// action.
func (d *Doctor) EventStart(e *app.ActionExec, ev *app.EventExec) {
	r := d.curRec
	if r == nil {
		return
	}
	d.wide.onEventStart(ev)
	diagnose := r.state == Suspicious || r.state == HangBug || d.cfg.Phase2Only
	if !diagnose || d.cfg.Phase1Only {
		return
	}
	d.log.AddCost(detect.CostWatchdogNs)
	evRef := ev
	d.session.Clk.After(d.cfg.PerceivableDelay, func() {
		if !evRef.Done && d.curRec == r {
			d.startSampler()
		}
	})
}

// startSampler begins periodic main-thread stack collection (the Trace
// Collector) until the current event ends.
func (d *Doctor) startSampler() {
	if d.sampling {
		return
	}
	d.sampling = true
	d.samplerStart = d.session.Clk.Now()
	var tick func()
	tick = func() {
		d.sampler = nil
		if !d.sampling {
			return
		}
		if d.causalActive() {
			// Causal mode dumps the main thread plus every busy pool worker,
			// each sample tagged with the provenance of the work its thread
			// was executing.
			before := len(d.curTagged)
			var missed bool
			var truncated, lost int
			d.curTagged, missed, truncated, lost = d.session.SampleTagged(d.curTagged)
			if missed {
				d.curDropped++
				d.health.StacksDropped++
			}
			d.health.StacksTruncated += truncated
			d.health.WorkerStacksLost += lost
			for i := before; i < len(d.curTagged); i++ {
				if !d.curTagged[i].Worker {
					d.curMain++
				}
				d.log.AddCost(detect.CostStackSampleNs)
				d.log.AddMem(detect.BytesPerStackSample)
			}
		} else {
			st, missed, truncated := d.session.SampleMainStack()
			if missed {
				d.curDropped++
				d.health.StacksDropped++
			}
			if truncated {
				d.health.StacksTruncated++
			}
			if st != nil {
				d.curTraces = append(d.curTraces, st)
				d.log.AddCost(detect.CostStackSampleNs)
				d.log.AddMem(detect.BytesPerStackSample)
			}
		}
		period := d.cfg.SamplePeriod
		if extra, ok := d.session.Faults().OverrunExtra(period); ok {
			period += extra
			d.health.SamplerOverruns++
		}
		d.sampler = d.session.Clk.After(period, tick)
	}
	tick()
}

func (d *Doctor) stopSampler() {
	if d.sampling && len(d.curTraces) > 0 {
		// The burst collected at least one sample: record how long the
		// Trace Collector ran (simulated time — the span the app hung
		// under observation).
		elapsed := d.session.Clk.Now().Sub(d.samplerStart)
		d.metrics.stackCollectMs.Observe(elapsed.Milliseconds())
	}
	d.sampling = false
	if d.sampler != nil {
		d.session.Clk.Cancel(d.sampler)
		d.sampler = nil
	}
}

func (d *Doctor) cancelEarly() {
	if d.earlyTimer != nil {
		d.session.Clk.Cancel(d.earlyTimer)
		d.earlyTimer = nil
	}
}

func (d *Doctor) cancelRetry() {
	if d.retryTimer != nil {
		d.session.Clk.Cancel(d.retryTimer)
		d.retryTimer = nil
	}
}

// EventEnd stops trace collection at the end of a hanging event.
func (d *Doctor) EventEnd(e *app.ActionExec, ev *app.EventExec) {
	d.stopSampler()
	d.wide.stopSampler()
}

// ActionEnd runs the phase appropriate to the action's state: the S-Checker
// filter for Uncategorized actions, the Trace Analyzer for diagnosed ones.
func (d *Doctor) ActionEnd(e *app.ActionExec) {
	r := d.curRec
	d.curRec = nil
	d.curExec = nil
	if r == nil {
		return
	}
	d.cancelEarly()
	if d.retryTimer != nil {
		// The action ended while an open retry was still backing off: every
		// attempt this execution made has failed, and no further one can run
		// inside its window. Count the execution as an open failure now —
		// otherwise actions shorter than the backoff never accumulate
		// consecutive failures and quarantine never engages — and cancel the
		// stale callback so it cannot fire into a later execution.
		d.cancelRetry()
		d.openFailed = true
	}
	rt := e.ResponseTime()
	hang := rt > d.cfg.PerceivableDelay
	d.execsSeen++
	if hang {
		d.hangsSeen++
		d.metrics.hangResponseMs.Observe(rt.Milliseconds())
	}
	d.Telemetry().Record(r.uid, rt)
	d.wide.onActionEnd(rt, hang)

	switch {
	case r.state == Uncategorized && !d.cfg.Phase2Only:
		start := time.Now()
		d.sCheck(r, e, rt, hang)
		d.metrics.scheckLatencyNs.Observe(float64(time.Since(start)))
	case r.state == Suspicious && d.cfg.Phase1Only:
		// Phase-1-only ablation: without a Diagnoser, every further hang of
		// a flagged action is reported unconfirmed.
		if hang {
			d.log.Trace(detect.TracedHang{At: e.End, Exec: e, ResponseTime: rt, RootCauseIsBug: true})
		}
	case (r.state == Suspicious || r.state == HangBug || d.cfg.Phase2Only) && !d.cfg.Phase1Only:
		d.diagnose(r, e, rt, hang)
	}
}

// sCheck is the first phase: read the counters, compare against the
// symptom thresholds, and route the action (Figure 3 paths A/B/C start).
// When the measurement plane degrades — no session could be opened, the
// render thread was lost, or counters dropped out mid-window — it judges
// only from what survived, widening margins and marking the verdict
// low-confidence, and defers entirely rather than guess from nothing.
func (d *Doctor) sCheck(r *actionRecord, e *app.ActionExec, rt simclock.Duration, hang bool) {
	var reading perf.Reading
	switch {
	case d.earlyRead != nil:
		reading = *d.earlyRead
		d.earlyRead = nil
	case d.perfSess != nil:
		reading = d.perfSess.Stop()
		d.log.AddCost(d.perfSess.CostNs())
		d.perfSess = nil
	default:
		// No reading at all: every open attempt failed, or the action is
		// quarantined. Never judge without data.
		if d.openFailed {
			r.consecOpenFails++
			if d.cfg.QuarantineAfter > 0 && r.consecOpenFails >= d.cfg.QuarantineAfter {
				r.consecOpenFails = 0
				r.quarantineLeft = d.cfg.QuarantineExecs
				d.health.Quarantines++
			}
		}
		if hang {
			d.health.VerdictsDeferred++
		}
		return
	}
	r.consecOpenFails = 0
	if !hang {
		// No soft hang: stay Uncategorized, keep watching.
		return
	}
	mainOnly := d.cfg.MainThreadOnly
	degraded := false
	if !mainOnly && len(reading.PerThread) < 2 {
		// Render-thread counters were unavailable: fall back to main-only
		// thresholds with wider margins; the verdict is low-confidence.
		mainOnly, degraded = true, true
		d.health.RenderLost++
	}
	var fired []int
	evaluated := 0
	lowConf := degraded
	// Reuse the scratch vector across hangs; zero it because multiplexed-away
	// conditions skip their slot and must not read a stale value.
	if cap(d.valScratch) < len(d.cfg.Conditions) {
		d.valScratch = make([]int64, len(d.cfg.Conditions))
	}
	values := d.valScratch[:len(d.cfg.Conditions)]
	for i := range values {
		values[i] = 0
	}
	for i, cond := range d.cfg.Conditions {
		var v int64
		var ok bool
		if mainOnly {
			v, ok = reading.ValueOK(0, cond.Event)
		} else {
			v, ok = reading.DiffOK(cond.Event)
			// Pool workers (threads 2+, present only in causal mode) sit on
			// the app side of the difference: an await hang burns its CPU
			// there while the parked main thread looks idle. A worker counter
			// lost mid-window contributes zero rather than spoiling the
			// main-render difference that survived.
			for t := 2; ok && t < len(reading.PerThread); t++ {
				if wv, wok := reading.ValueOK(t, cond.Event); wok {
					v += wv
				}
			}
		}
		if !ok {
			// This condition's counter was multiplexed away; skip it.
			d.health.CountersLost++
			lowConf = true
			continue
		}
		evaluated++
		values[i] = v
		thr := cond.Threshold
		if degraded {
			thr = d.cfg.degradedThreshold(cond)
		}
		if v > thr {
			fired = append(fired, i)
		}
	}
	if evaluated == 0 {
		// Every counter of the window was lost; defer the verdict.
		d.health.VerdictsDeferred++
		return
	}
	if d.cfg.CollectAdaptation && !lowConf {
		// Degraded readings are excluded: their values are not comparable
		// with difference-mode thresholds and would skew adaptation.
		d.adaptSet = append(d.adaptSet, LabeledReading{
			ActionUID: r.uid, Values: append([]int64(nil), values...),
			IsBug: e.BugCaused(d.cfg.PerceivableDelay) != nil,
		})
	}
	if lowConf {
		d.health.LowConfidence++
	}
	if len(fired) > 0 {
		r.lastSymptoms = fired
		d.logTransitionConf(r, Suspicious, "S-Checker", e.Seq, lowConf)
		if d.cfg.Phase1Only {
			// Ablation: no confirmation pass; report straight away.
			d.log.Trace(detect.TracedHang{At: e.End, Exec: e, ResponseTime: rt, RootCauseIsBug: true})
		}
	} else {
		d.logTransitionConf(r, Normal, "S-Checker", e.Seq, lowConf)
	}
}

// diagnose is the second phase: analyze the traces collected during this
// execution's soft hang and settle the action's state (Figure 3 paths B/C).
// In causal mode the samples are the tagged main+worker dump and the analysis
// can re-attribute an await-parked hang to the asynchronous chain that caused
// it; otherwise it is the paper's plain main-thread occurrence-factor pass.
func (d *Doctor) diagnose(r *actionRecord, e *app.ActionExec, rt simclock.Duration, hang bool) {
	causal := d.causalActive()
	traces := d.curTraces
	tagged := d.curTagged
	dropped := d.curDropped
	// collected counts only main-thread dumps either way: MinTraces guards
	// the occurrence factors of the *hanging dispatch*, and worker samples
	// must not let a barely-sampled hang clear it.
	collected := len(traces)
	if causal {
		collected = d.curMain
	}
	// The analyzers copy what they keep (frame values), so the slice backings
	// can be reused by the next execution's sampler.
	d.curTraces = traces[:0]
	d.curTagged = tagged[:0]
	d.curMain = 0
	d.curDropped = 0
	if !hang || collected < d.cfg.MinTraces {
		// The bug did not manifest this time (or the hang was too short to
		// sample meaningfully); keep the action's state so the next soft
		// hang is traced (§3.2 path discussion).
		if hang && dropped > 0 {
			// Samples were lost to the measurement plane, not absent from
			// the hang: the Suspicious → HangBug/Normal decision is
			// deferred rather than rendered from too little data.
			d.health.VerdictsDeferred++
		}
		return
	}
	var diag Diagnosis
	var chain CausalChain
	var fallback, ok bool
	if causal {
		diag, chain, fallback, ok = d.causal.Analyze(tagged, d.session.App.Registry, d.cfg.OccurrenceHigh)
	} else {
		diag, ok = d.analyzer.Analyze(traces, d.session.App.Registry, d.cfg.OccurrenceHigh)
	}
	if !ok {
		return
	}
	if fallback {
		// The main thread was demonstrably parked on asynchronous work, but
		// no worker sample survived to attribute it; the verdict degrades to
		// the main-thread-only await attribution.
		d.health.CausalFallbacks++
	}
	// Enough samples survived to judge, but a partial set (or truncated
	// frames, or a failed chain attribution) still lowers confidence in the
	// occurrence factors.
	lowConf := dropped > 0 || fallback
	if lowConf {
		d.health.LowConfidence++
	}
	d.log.Trace(detect.TracedHang{
		At: e.End, Exec: e, ResponseTime: rt,
		RootCause: diag.RootCause, RootCauseIsBug: !diag.IsUI,
	})
	if diag.IsUI {
		if r.state == Suspicious || r.state == Uncategorized {
			d.logTransitionConf(r, Normal, "Diagnoser", e.Seq, lowConf)
		}
		return
	}
	if r.state == Normal {
		// Phase2Only ablation: a Normal action is still being diagnosed;
		// re-open it before confirming.
		d.logTransitionConf(r, Uncategorized, "Diagnoser", e.Seq, lowConf)
	}
	if r.state == Uncategorized {
		// Phase2Only ablation: no S-Checker ran, so step through Suspicious
		// to keep the audit trail on Figure 3's edges.
		d.logTransitionConf(r, Suspicious, "Diagnoser", e.Seq, lowConf)
	}
	if r.state != HangBug {
		d.logTransitionConf(r, HangBug, "Diagnoser", e.Seq, lowConf)
	}
	d.recordDetection(r, e, rt, diag, chain)
}

// recordDetection updates the detection table, the Hang Bug Report, and the
// known-blocking database. A chain carrying an origin action re-attributes
// the detection row to that action (a cross-action convoy is the *origin's*
// bug — the hanging action was merely queued behind it); the chain itself is
// kept on the row so the report shows how the blame travelled.
func (d *Doctor) recordDetection(r *actionRecord, e *app.ActionExec, rt simclock.Duration, diag Diagnosis, chain CausalChain) {
	uid := r.uid
	if chain.OriginAction != "" {
		uid = chain.OriginAction
	}
	key := detectionKey{actionUID: uid, rootCause: diag.RootCause}
	det, ok := d.detections[key]
	if !ok {
		det = &Detection{
			ActionUID: uid, RootCause: diag.RootCause,
			File: diag.File, Line: diag.Line,
			Occurrence: diag.Occurrence,
			ViaCaller:  diag.ViaCaller,
			FirstAt:    e.End,
		}
		d.detections[key] = det
	}
	// Symptoms track the latest S-Checker firing, not the first: after a
	// periodic reset re-flags the action, the re-detection may rest on a
	// different condition set than the original one (Table 6 data).
	det.Symptoms = append([]int(nil), r.lastSymptoms...)
	det.Count++
	det.Chain = mergeChain(det.Chain, chain)
	if rt > det.MaxResponse {
		det.MaxResponse = rt
	}
	foldStart := time.Now()
	d.report.AddChained(d.session.App.Name, d.deviceLabel, uid, diag, chain, rt)
	d.metrics.reportFoldNs.Observe(float64(time.Since(foldStart)))
	// Feedback loop: a diagnosed blocking *API* extends the offline tools'
	// database; self-developed operations are only reported to the
	// developer (§3.1). The diagnosis carries the root cause's symbol ID,
	// so the API lookup is a dense index instead of a map probe.
	if a, isAPI := d.session.App.Registry.APIBySym(diag.Sym); isAPI {
		d.session.App.Registry.AddKnownBlocking(a.Key())
	}
}
