package core

import (
	"sort"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/cpu"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/perf"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/stack"
)

// Detection is one confirmed soft hang bug diagnosis, the unit of the
// paper's Tables 5 and 6: where it is, what S-Checker symptoms led to it,
// and how often it has been seen.
type Detection struct {
	ActionUID  string
	RootCause  string
	File       string
	Line       int
	Occurrence float64
	// Symptoms are the S-Checker conditions (indexes into Config.Conditions)
	// that flagged the action when it became Suspicious.
	Symptoms []int
	// ViaCaller marks a self-developed aggregate operation.
	ViaCaller bool
	// Count is the number of soft hangs diagnosed to this root cause.
	Count   int
	FirstAt simclock.Time
	// MaxResponse is the worst response time observed for this cause.
	MaxResponse simclock.Duration
}

// Doctor is Hang Doctor: it implements detect.Detector so the evaluation
// harness can run it side by side with the baselines.
type Doctor struct {
	cfg     Config
	session *app.Session
	log     detect.Log
	report  *Report

	states      map[string]*actionRecord
	transitions []StateTransition
	detections  map[string]*Detection // keyed by actionUID + "\x00" + root

	// Per-action-execution state.
	perfSess    *perf.Session
	earlyRead   *perf.Reading
	earlyTimer  *simclock.Event
	curRec      *actionRecord
	curTraces   []*stack.Stack
	sampler     *simclock.Event
	sampling    bool
	adaptSet    []LabeledReading
	deviceLabel string
	wide        wideCollector
	telemetry   *Telemetry
}

// New builds a Doctor with the given configuration.
func New(cfg Config) *Doctor {
	d := &Doctor{
		cfg:        cfg.withDefaults(),
		states:     map[string]*actionRecord{},
		detections: map[string]*Detection{},
		report:     NewReport(),
	}
	d.wide.doctor = d
	return d
}

// Name implements detect.Detector.
func (d *Doctor) Name() string { return "HD" }

// Log implements detect.Detector.
func (d *Doctor) Log() *detect.Log { return &d.log }

// Report returns the Hang Bug Report accumulated so far.
func (d *Doctor) Report() *Report { return d.report }

// Attach implements detect.Detector.
func (d *Doctor) Attach(s *app.Session) {
	d.session = s
	d.deviceLabel = s.Device.Name
}

// Detach implements detect.Detector.
func (d *Doctor) Detach() {
	d.stopSampler()
	d.cancelEarly()
}

// State returns an action's current state (Uncategorized if never seen).
func (d *Doctor) State(uid string) ActionState {
	if r, ok := d.states[uid]; ok {
		return r.state
	}
	return Uncategorized
}

// Transitions returns the audit log of state changes.
func (d *Doctor) Transitions() []StateTransition { return d.transitions }

// Detections returns all confirmed diagnoses, most frequent first.
func (d *Doctor) Detections() []*Detection {
	out := make([]*Detection, 0, len(d.detections))
	for _, det := range d.detections {
		out = append(out, det)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].ActionUID != out[j].ActionUID {
			return out[i].ActionUID < out[j].ActionUID
		}
		return out[i].RootCause < out[j].RootCause
	})
	return out
}

// AdaptationData returns the labeled readings recorded for the filter
// adaptation extension (empty unless Config.CollectAdaptation).
func (d *Doctor) AdaptationData() []LabeledReading { return d.adaptSet }

// record fetches or creates the look-up-table row for an action.
func (d *Doctor) record(uid string) *actionRecord {
	r, ok := d.states[uid]
	if !ok {
		r = &actionRecord{uid: uid, state: Uncategorized}
		d.states[uid] = r
	}
	return r
}

func (d *Doctor) logTransition(r *actionRecord, to ActionState, phase string, seq int) {
	d.transitions = append(d.transitions, StateTransition{
		ActionUID: r.uid, From: r.state, To: to, Phase: phase, ExecSeq: seq,
	})
	r.transition(to)
}

// ActionStart implements app.Listener: look up the action's state and start
// whatever monitoring that state requires.
func (d *Doctor) ActionStart(e *app.ActionExec) {
	r := d.record(e.Action.UID)
	d.curRec = r
	r.execs++
	d.curTraces = nil
	d.earlyRead = nil
	d.wide.onActionStart()

	if r.state == Normal {
		r.sinceNormal++
		if d.cfg.ResetEvery > 0 && r.sinceNormal >= d.cfg.ResetEvery {
			// Periodic reset: occasionally-manifesting bugs get re-checked.
			d.logTransition(r, Uncategorized, "Reset", e.Seq)
		}
	}
	if r.state == Uncategorized && !d.cfg.Phase2Only {
		// S-Checker monitors the three performance events on main and
		// render threads for the whole action window.
		threads := d.monitoredThreads()
		d.perfSess = perf.Open(d.session.Clk, threads, d.cfg.conditionEvents(), d.session.PerfConfig())
		if d.cfg.EarlyRead > 0 {
			d.earlyTimer = d.session.Clk.After(d.cfg.EarlyRead, func() {
				d.earlyTimer = nil
				if d.perfSess != nil {
					rd := d.perfSess.Stop()
					d.earlyRead = &rd
					d.log.AddCost(d.perfSess.CostNs())
					d.perfSess = nil
				}
			})
		}
	}
}

func (d *Doctor) monitoredThreads() []*cpu.Thread {
	if d.cfg.MainThreadOnly {
		return []*cpu.Thread{d.session.MainThread()}
	}
	return []*cpu.Thread{d.session.MainThread(), d.session.RenderThread()}
}

// EventStart arms the Diagnoser's watchdog when the action state calls for
// deep analysis (Suspicious or HangBug), or in Phase2Only mode for every
// action.
func (d *Doctor) EventStart(e *app.ActionExec, ev *app.EventExec) {
	r := d.curRec
	if r == nil {
		return
	}
	d.wide.onEventStart(ev)
	diagnose := r.state == Suspicious || r.state == HangBug || d.cfg.Phase2Only
	if !diagnose || d.cfg.Phase1Only {
		return
	}
	d.log.AddCost(detect.CostWatchdogNs)
	evRef := ev
	d.session.Clk.After(d.cfg.PerceivableDelay, func() {
		if !evRef.Done && d.curRec == r {
			d.startSampler()
		}
	})
}

// startSampler begins periodic main-thread stack collection (the Trace
// Collector) until the current event ends.
func (d *Doctor) startSampler() {
	if d.sampling {
		return
	}
	d.sampling = true
	var tick func()
	tick = func() {
		d.sampler = nil
		if !d.sampling {
			return
		}
		if st := d.session.MainThread().CurrentStack(); st != nil {
			d.curTraces = append(d.curTraces, st)
			d.log.AddCost(detect.CostStackSampleNs)
			d.log.AddMem(detect.BytesPerStackSample)
		}
		d.sampler = d.session.Clk.After(d.cfg.SamplePeriod, tick)
	}
	tick()
}

func (d *Doctor) stopSampler() {
	d.sampling = false
	if d.sampler != nil {
		d.session.Clk.Cancel(d.sampler)
		d.sampler = nil
	}
}

func (d *Doctor) cancelEarly() {
	if d.earlyTimer != nil {
		d.session.Clk.Cancel(d.earlyTimer)
		d.earlyTimer = nil
	}
}

// EventEnd stops trace collection at the end of a hanging event.
func (d *Doctor) EventEnd(e *app.ActionExec, ev *app.EventExec) {
	d.stopSampler()
	d.wide.stopSampler()
}

// ActionEnd runs the phase appropriate to the action's state: the S-Checker
// filter for Uncategorized actions, the Trace Analyzer for diagnosed ones.
func (d *Doctor) ActionEnd(e *app.ActionExec) {
	r := d.curRec
	d.curRec = nil
	if r == nil {
		return
	}
	d.cancelEarly()
	rt := e.ResponseTime()
	hang := rt > d.cfg.PerceivableDelay
	d.Telemetry().Record(r.uid, rt)
	d.wide.onActionEnd(rt, hang)

	switch {
	case r.state == Uncategorized && !d.cfg.Phase2Only:
		d.sCheck(r, e, rt, hang)
	case r.state == Suspicious && d.cfg.Phase1Only:
		// Phase-1-only ablation: without a Diagnoser, every further hang of
		// a flagged action is reported unconfirmed.
		if hang {
			d.log.Trace(detect.TracedHang{At: e.End, Exec: e, ResponseTime: rt, RootCauseIsBug: true})
		}
	case (r.state == Suspicious || r.state == HangBug || d.cfg.Phase2Only) && !d.cfg.Phase1Only:
		d.diagnose(r, e, rt, hang)
	}
}

// sCheck is the first phase: read the counters, compare against the
// symptom thresholds, and route the action (Figure 3 paths A/B/C start).
func (d *Doctor) sCheck(r *actionRecord, e *app.ActionExec, rt simclock.Duration, hang bool) {
	var reading perf.Reading
	switch {
	case d.earlyRead != nil:
		reading = *d.earlyRead
		d.earlyRead = nil
	case d.perfSess != nil:
		reading = d.perfSess.Stop()
		d.log.AddCost(d.perfSess.CostNs())
		d.perfSess = nil
	default:
		return
	}
	if !hang {
		// No soft hang: stay Uncategorized, keep watching.
		return
	}
	var fired []int
	values := make([]int64, len(d.cfg.Conditions))
	for i, cond := range d.cfg.Conditions {
		v := reading.Value(0, cond.Event)
		if !d.cfg.MainThreadOnly {
			v = reading.Diff(cond.Event)
		}
		values[i] = v
		if v > cond.Threshold {
			fired = append(fired, i)
		}
	}
	if d.cfg.CollectAdaptation {
		d.adaptSet = append(d.adaptSet, LabeledReading{
			ActionUID: r.uid, Values: values,
			IsBug: e.BugCaused(d.cfg.PerceivableDelay) != nil,
		})
	}
	if len(fired) > 0 {
		r.lastSymptoms = fired
		d.logTransition(r, Suspicious, "S-Checker", e.Seq)
		if d.cfg.Phase1Only {
			// Ablation: no confirmation pass; report straight away.
			d.log.Trace(detect.TracedHang{At: e.End, Exec: e, ResponseTime: rt, RootCauseIsBug: true})
		}
	} else {
		d.logTransition(r, Normal, "S-Checker", e.Seq)
	}
}

// diagnose is the second phase: analyze the traces collected during this
// execution's soft hang and settle the action's state (Figure 3 paths B/C).
func (d *Doctor) diagnose(r *actionRecord, e *app.ActionExec, rt simclock.Duration, hang bool) {
	traces := d.curTraces
	d.curTraces = nil
	if !hang || len(traces) < d.cfg.MinTraces {
		// The bug did not manifest this time (or the hang was too short to
		// sample meaningfully); keep the action's state so the next soft
		// hang is traced (§3.2 path discussion).
		return
	}
	diag, ok := AnalyzeTraces(traces, d.session.App.Registry, d.cfg.OccurrenceHigh)
	if !ok {
		return
	}
	d.log.Trace(detect.TracedHang{
		At: e.End, Exec: e, ResponseTime: rt,
		RootCause: diag.RootCause, RootCauseIsBug: !diag.IsUI,
	})
	if diag.IsUI {
		if r.state == Suspicious || r.state == Uncategorized {
			d.logTransition(r, Normal, "Diagnoser", e.Seq)
		}
		return
	}
	if r.state == Normal {
		// Phase2Only ablation: a Normal action is still being diagnosed;
		// re-open it before confirming.
		d.logTransition(r, Uncategorized, "Diagnoser", e.Seq)
	}
	if r.state == Uncategorized {
		// Phase2Only ablation: no S-Checker ran, so step through Suspicious
		// to keep the audit trail on Figure 3's edges.
		d.logTransition(r, Suspicious, "Diagnoser", e.Seq)
	}
	if r.state != HangBug {
		d.logTransition(r, HangBug, "Diagnoser", e.Seq)
	}
	d.recordDetection(r, e, rt, diag)
}

// recordDetection updates the detection table, the Hang Bug Report, and the
// known-blocking database.
func (d *Doctor) recordDetection(r *actionRecord, e *app.ActionExec, rt simclock.Duration, diag Diagnosis) {
	key := r.uid + "\x00" + diag.RootCause
	det, ok := d.detections[key]
	if !ok {
		det = &Detection{
			ActionUID: r.uid, RootCause: diag.RootCause,
			File: diag.File, Line: diag.Line,
			Occurrence: diag.Occurrence,
			Symptoms:   append([]int(nil), r.lastSymptoms...),
			ViaCaller:  diag.ViaCaller,
			FirstAt:    e.End,
		}
		d.detections[key] = det
	}
	det.Count++
	if rt > det.MaxResponse {
		det.MaxResponse = rt
	}
	d.report.Add(d.session.App.Name, d.deviceLabel, r.uid, diag, rt)
	// Feedback loop: a diagnosed blocking *API* extends the offline tools'
	// database; self-developed operations are only reported to the
	// developer (§3.1).
	if _, isAPI := d.session.App.Registry.API(diag.RootCause); isAPI {
		d.session.App.Registry.AddKnownBlocking(diag.RootCause)
	}
}
