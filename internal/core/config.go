// Package core implements Hang Doctor, the paper's contribution: a runtime
// two-phase soft-hang detector that runs inside an app. Phase one
// (S-Checker) reads three performance-event counters as main-minus-render
// differences at the end of every Uncategorized action that hangs and
// filters out UI-caused hangs cheaply; phase two (Diagnoser) collects main
// thread stack traces during the next hang of a Suspicious action and
// attributes the root cause by occurrence-factor analysis. Diagnosed
// blocking APIs flow into the Hang Bug Report for the developer and into
// the known-blocking database used by offline tools.
package core

import (
	"hangdoctor/internal/perf"
	"hangdoctor/internal/simclock"
)

// Condition is one S-Checker symptom: the event's main-minus-render
// difference over the action window exceeds Threshold.
type Condition struct {
	Event     perf.Event
	Threshold int64
}

// DefaultConditions returns the paper's three soft-hang-bug symptoms
// (§3.3.1): positive context-switch difference, task-clock difference above
// 1.7e8 ns, page-fault difference above 500.
func DefaultConditions() []Condition {
	return []Condition{
		{Event: perf.ContextSwitches, Threshold: 0},
		{Event: perf.TaskClock, Threshold: 170_000_000},
		{Event: perf.PageFaults, Threshold: 500},
	}
}

// Config parameterizes a Doctor. The zero value is completed by
// (*Config).withDefaults; Doctor constructors call it for you.
type Config struct {
	// PerceivableDelay is the soft-hang threshold (default 100 ms).
	PerceivableDelay simclock.Duration
	// Conditions are the S-Checker symptoms (default: the paper's three).
	Conditions []Condition
	// SamplePeriod is the Diagnoser's stack sampling interval (default
	// 20 ms, ~60 samples over the paper's 1.3 s example hang).
	SamplePeriod simclock.Duration
	// OccurrenceHigh is the occurrence-factor threshold above which a
	// single API is reported as the root cause (default 0.5).
	OccurrenceHigh float64
	// MinTraces is the minimum number of stack samples that must *survive*
	// collection before the Trace Analyzer renders a verdict (default 3):
	// an occurrence factor computed from one or two samples of a borderline
	// ~100 ms hang says nothing, and the action stays Suspicious until a
	// longer hang is captured. When fault injection eats samples, falling
	// below this minimum defers the Suspicious → HangBug/Normal transition
	// instead of judging from too little data.
	MinTraces int
	// ResetEvery returns a Normal action to Uncategorized after this many
	// executions, so occasionally-manifesting bugs get re-checked (default
	// 20, as in the paper's EventBreak reference; 0 disables).
	ResetEvery int

	// Degraded-operation knobs: how the Doctor compensates when the
	// measurement plane fails (see internal/fault). All of them are inert
	// on a perfect plane, so the defaults change nothing fault-free.

	// PerfOpenRetries is how many times a failed perf-session open is
	// retried within the same action execution (default 2, so up to three
	// attempts; negative disables retries).
	PerfOpenRetries int
	// PerfRetryBackoff is the delay before the first open retry, doubling
	// per attempt (default 5 ms).
	PerfRetryBackoff simclock.Duration
	// QuarantineAfter quarantines an action after this many consecutive
	// executions in which no perf session could be opened at all (default
	// 3; negative disables quarantine).
	QuarantineAfter int
	// QuarantineExecs is how many executions a quarantined action skips
	// S-Checker monitoring for, avoiding open costs that keep failing
	// (default 25). Judgement is deferred meanwhile.
	QuarantineExecs int
	// DegradedMarginScale multiplies non-zero condition thresholds when the
	// render-thread difference is unavailable and the S-Checker falls back
	// to main-thread-only values (default 2): main-only counters include
	// the common-mode baseline the difference would cancel, so the margins
	// must widen to keep UI work from looking like a bug.
	DegradedMarginScale float64
	// DegradedZeroThreshold replaces zero thresholds (the context-switch
	// condition) in degraded main-thread-only mode, where a strictly
	// positive count no longer implies a blocked main thread (default 8).
	DegradedZeroThreshold int64

	// Ablation switches (all default off; used by the ablation benches).

	// MainThreadOnly evaluates conditions on main-thread counters alone
	// instead of main-minus-render differences (Table 3(b) configuration).
	MainThreadOnly bool
	// NoCausal disables causal async diagnosis: worker threads are not
	// monitored or sampled, and diagnosis falls back to pure main-thread
	// occurrence-factor analysis — the paper's original analyzer, kept as
	// the head-to-head baseline for the causal experiment. On apps with no
	// async ops the two configurations are bit-identical.
	NoCausal bool
	// Phase1Only skips the Diagnoser: S-Checker verdicts are final, and
	// suspicious actions are reported without stack-trace confirmation.
	Phase1Only bool
	// Phase2Only skips the S-Checker: every soft hang is stack-traced and
	// diagnosed (the overhead profile of a Timeout-based detector with
	// Hang Doctor's analyzer bolted on).
	Phase2Only bool
	// EarlyRead, when positive, makes S-Checker read the counters this long
	// after the action starts instead of at action end — the strategy §3.3.1
	// rejects because early windows of UI actions look like bugs (Figure 5).
	EarlyRead simclock.Duration
	// CollectAdaptation records labeled S-Checker readings for the
	// automatic filter adaptation extension (see adapt.go).
	CollectAdaptation bool
	// WideCollectEvery, when positive, runs the §3.3.1 periodic
	// data-collection task: every Nth action execution (independent of the
	// action's state), Hang Doctor measures the full candidate-event set
	// and samples stack traces during any soft hang, producing labeled
	// HeavyReadings for the heavy (server-side) adaptation pass. The
	// period should be long enough that the extra overhead is negligible.
	WideCollectEvery int
}

func (c Config) withDefaults() Config {
	if c.PerceivableDelay == 0 {
		c.PerceivableDelay = 100 * simclock.Millisecond
	}
	if c.Conditions == nil {
		c.Conditions = DefaultConditions()
	}
	if c.SamplePeriod == 0 {
		c.SamplePeriod = 20 * simclock.Millisecond
	}
	if c.OccurrenceHigh == 0 {
		c.OccurrenceHigh = 0.5
	}
	if c.MinTraces == 0 {
		c.MinTraces = 3
	}
	if c.ResetEvery == 0 {
		c.ResetEvery = 20
	}
	if c.PerfOpenRetries == 0 {
		c.PerfOpenRetries = 2
	} else if c.PerfOpenRetries < 0 {
		c.PerfOpenRetries = 0
	}
	if c.PerfRetryBackoff == 0 {
		c.PerfRetryBackoff = 5 * simclock.Millisecond
	}
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = 3
	}
	if c.QuarantineExecs == 0 {
		c.QuarantineExecs = 25
	}
	if c.DegradedMarginScale == 0 {
		c.DegradedMarginScale = 2
	}
	if c.DegradedZeroThreshold == 0 {
		c.DegradedZeroThreshold = 8
	}
	return c
}

// degradedThreshold widens a condition's threshold for main-thread-only
// evaluation when the render difference is unavailable.
func (c Config) degradedThreshold(cond Condition) int64 {
	if cond.Threshold > 0 {
		return int64(float64(cond.Threshold) * c.DegradedMarginScale)
	}
	return c.DegradedZeroThreshold
}

// conditionEvents lists the events the S-Checker must monitor.
func (c Config) conditionEvents() []perf.Event {
	out := make([]perf.Event, len(c.Conditions))
	for i, cond := range c.Conditions {
		out[i] = cond.Event
	}
	return out
}
