// Package core implements Hang Doctor, the paper's contribution: a runtime
// two-phase soft-hang detector that runs inside an app. Phase one
// (S-Checker) reads three performance-event counters as main-minus-render
// differences at the end of every Uncategorized action that hangs and
// filters out UI-caused hangs cheaply; phase two (Diagnoser) collects main
// thread stack traces during the next hang of a Suspicious action and
// attributes the root cause by occurrence-factor analysis. Diagnosed
// blocking APIs flow into the Hang Bug Report for the developer and into
// the known-blocking database used by offline tools.
package core

import (
	"hangdoctor/internal/perf"
	"hangdoctor/internal/simclock"
)

// Condition is one S-Checker symptom: the event's main-minus-render
// difference over the action window exceeds Threshold.
type Condition struct {
	Event     perf.Event
	Threshold int64
}

// DefaultConditions returns the paper's three soft-hang-bug symptoms
// (§3.3.1): positive context-switch difference, task-clock difference above
// 1.7e8 ns, page-fault difference above 500.
func DefaultConditions() []Condition {
	return []Condition{
		{Event: perf.ContextSwitches, Threshold: 0},
		{Event: perf.TaskClock, Threshold: 170_000_000},
		{Event: perf.PageFaults, Threshold: 500},
	}
}

// Config parameterizes a Doctor. The zero value is completed by
// (*Config).withDefaults; Doctor constructors call it for you.
type Config struct {
	// PerceivableDelay is the soft-hang threshold (default 100 ms).
	PerceivableDelay simclock.Duration
	// Conditions are the S-Checker symptoms (default: the paper's three).
	Conditions []Condition
	// SamplePeriod is the Diagnoser's stack sampling interval (default
	// 20 ms, ~60 samples over the paper's 1.3 s example hang).
	SamplePeriod simclock.Duration
	// OccurrenceHigh is the occurrence-factor threshold above which a
	// single API is reported as the root cause (default 0.5).
	OccurrenceHigh float64
	// MinTraces is the minimum number of stack samples required before the
	// Trace Analyzer renders a verdict (default 3): an occurrence factor
	// computed from one or two samples of a borderline ~100 ms hang says
	// nothing, and the action stays Suspicious until a longer hang is
	// captured.
	MinTraces int
	// ResetEvery returns a Normal action to Uncategorized after this many
	// executions, so occasionally-manifesting bugs get re-checked (default
	// 20, as in the paper's EventBreak reference; 0 disables).
	ResetEvery int

	// Ablation switches (all default off; used by the ablation benches).

	// MainThreadOnly evaluates conditions on main-thread counters alone
	// instead of main-minus-render differences (Table 3(b) configuration).
	MainThreadOnly bool
	// Phase1Only skips the Diagnoser: S-Checker verdicts are final, and
	// suspicious actions are reported without stack-trace confirmation.
	Phase1Only bool
	// Phase2Only skips the S-Checker: every soft hang is stack-traced and
	// diagnosed (the overhead profile of a Timeout-based detector with
	// Hang Doctor's analyzer bolted on).
	Phase2Only bool
	// EarlyRead, when positive, makes S-Checker read the counters this long
	// after the action starts instead of at action end — the strategy §3.3.1
	// rejects because early windows of UI actions look like bugs (Figure 5).
	EarlyRead simclock.Duration
	// CollectAdaptation records labeled S-Checker readings for the
	// automatic filter adaptation extension (see adapt.go).
	CollectAdaptation bool
	// WideCollectEvery, when positive, runs the §3.3.1 periodic
	// data-collection task: every Nth action execution (independent of the
	// action's state), Hang Doctor measures the full candidate-event set
	// and samples stack traces during any soft hang, producing labeled
	// HeavyReadings for the heavy (server-side) adaptation pass. The
	// period should be long enough that the extra overhead is negligible.
	WideCollectEvery int
}

func (c Config) withDefaults() Config {
	if c.PerceivableDelay == 0 {
		c.PerceivableDelay = 100 * simclock.Millisecond
	}
	if c.Conditions == nil {
		c.Conditions = DefaultConditions()
	}
	if c.SamplePeriod == 0 {
		c.SamplePeriod = 20 * simclock.Millisecond
	}
	if c.OccurrenceHigh == 0 {
		c.OccurrenceHigh = 0.5
	}
	if c.MinTraces == 0 {
		c.MinTraces = 3
	}
	if c.ResetEvery == 0 {
		c.ResetEvery = 20
	}
	return c
}

// conditionEvents lists the events the S-Checker must monitor.
func (c Config) conditionEvents() []perf.Event {
	out := make([]perf.Event, len(c.Conditions))
	for i, cond := range c.Conditions {
		out[i] = cond.Event
	}
	return out
}
