package core

import (
	"strings"

	"hangdoctor/internal/android/api"
	"hangdoctor/internal/stack"
)

// Diagnosis is the Trace Analyzer's verdict on one traced soft hang.
type Diagnosis struct {
	// RootCause is the class.method held responsible.
	RootCause string
	// Sym is RootCause's dense symbol ID in the app registry's symbol
	// table, letting downstream consumers (detection recording, the
	// feedback loop) resolve the cause without re-parsing the key. It is
	// NoSym on diagnoses built outside the analyzer (fleet imports, tests).
	Sym stack.SymID
	// File/Line locate the root cause in source, as reported to the
	// developer (Figure 6(b)).
	File string
	Line int
	// Occurrence is the fraction of collected stack traces containing the
	// root cause.
	Occurrence float64
	// IsUI marks legitimate UI work (not a soft hang bug).
	IsUI bool
	// ViaCaller is set when the root cause is a caller function aggregating
	// many light operations (the self-developed heavy-operation case).
	ViaCaller bool
}

// frameworkClass reports whether a class is main-loop plumbing that can
// never be a root cause (it tops every main-thread stack). The ID-based
// analyzer reads the same predicate from the symbol table's SymFramework
// attribute bit, resolved once at intern time.
func frameworkClass(cls string) bool { return api.IsFrameworkClass(cls) }

// TraceAnalyzer is the allocation-free Trace Analyzer (§3.4.1): it computes
// occurrence factors over dense per-symbol counters instead of string maps.
// All scratch state is owned by the analyzer and reused across hangs — the
// Doctor holds one per device — so analyzing a traced soft hang in steady
// state performs zero allocations and zero string work: frames carry
// pre-interned symbol IDs, per-symbol slots are claimed lazily via
// generation marks (no O(symbols) clearing per hang), and verdict
// tie-breaks are deterministic smallest-ID picks instead of a sorted key
// walk.
//
// An analyzer is not safe for concurrent use; each Doctor (one goroutine)
// owns its own.
type TraceAnalyzer struct {
	// gen stamps per-hang slot validity: a symbol's counters are live only
	// while its mark equals the current generation, so starting a new hang
	// is a single increment.
	gen uint64
	// traceGen stamps per-trace dedup (a symbol counts once per sampled
	// stack no matter how often it recurs in the frames).
	traceGen uint64

	// Dense per-symbol scratch, indexed by stack.SymID.
	leafMark    []uint64
	leafCount   []int32
	leafFrame   []stack.Frame // first-seen leaf frame (File/Line source)
	callerMark  []uint64
	callerCount []int32
	callerDepth []int32       // cumulative frame index: closest-to-leaf tie-break
	callerFrame []stack.Frame // first-seen caller frame
	seenMark    []uint64

	// Touched symbol lists bound the verdict scan to symbols this hang
	// actually saw.
	leafTouched   []stack.SymID
	callerTouched []stack.SymID
}

// grow extends every per-symbol array to cover n symbol IDs, preserving
// live marks (growth can happen mid-hang when a foreign frame interns a new
// symbol).
func (ta *TraceAnalyzer) grow(n int) {
	if n <= len(ta.leafMark) {
		return
	}
	// Grow geometrically so repeated single-symbol interning stays
	// amortized.
	if c := 2 * len(ta.leafMark); n < c {
		n = c
	}
	grow64 := func(s []uint64) []uint64 {
		g := make([]uint64, n)
		copy(g, s)
		return g
	}
	grow32 := func(s []int32) []int32 {
		g := make([]int32, n)
		copy(g, s)
		return g
	}
	growF := func(s []stack.Frame) []stack.Frame {
		g := make([]stack.Frame, n)
		copy(g, s)
		return g
	}
	ta.leafMark = grow64(ta.leafMark)
	ta.leafCount = grow32(ta.leafCount)
	ta.leafFrame = growF(ta.leafFrame)
	ta.callerMark = grow64(ta.callerMark)
	ta.callerCount = grow32(ta.callerCount)
	ta.callerDepth = grow32(ta.callerDepth)
	ta.callerFrame = growF(ta.callerFrame)
	ta.seenMark = grow64(ta.seenMark)
}

// sym returns the frame's symbol ID, interning externally built frames on
// the fly and keeping the scratch arrays and view in range. Corpus frames
// carry cached IDs, so the steady-state cost is the nil check.
func (ta *TraceAnalyzer) sym(f *stack.Frame, reg *api.Registry, view *stack.View) stack.SymID {
	id := f.Sym
	if id == stack.NoSym {
		id = reg.SymOf(*f)
	}
	if int(id) >= len(ta.leafMark) {
		ta.grow(int(id) + 1)
	}
	if int(id) >= view.Len() {
		*view = reg.SymtabView()
	}
	return id
}

// Analyze implements the Trace Analyzer (§3.4.1): compute the occurrence
// factor of the most frequent leaf operation across the sampled stacks; if
// it is high, that operation is the root cause; otherwise the hang is many
// light operations driven by one caller, and the most common non-framework
// caller function with a high occurrence factor is reported instead.
// UI-class root causes are flagged so the Diagnoser can transition the
// action to Normal. The boolean result is false when no usable samples were
// collected.
func (ta *TraceAnalyzer) Analyze(traces []*stack.Stack, reg *api.Registry, occHigh float64) (Diagnosis, bool) {
	view := reg.SymtabView()
	ta.grow(view.Len())
	ta.gen++
	ta.leafTouched = ta.leafTouched[:0]
	ta.callerTouched = ta.callerTouched[:0]

	total := 0
	for _, tr := range traces {
		if tr.Depth() == 0 {
			continue
		}
		total++
		ta.traceGen++
		frames := tr.Frames
		lf := &frames[0]
		lid := ta.sym(lf, reg, &view)
		if ta.leafMark[lid] != ta.gen {
			ta.leafMark[lid] = ta.gen
			ta.leafCount[lid] = 1
			ta.leafFrame[lid] = *lf
			ta.leafTouched = append(ta.leafTouched, lid)
		} else {
			ta.leafCount[lid]++
		}
		ta.seenMark[lid] = ta.traceGen
		for i := 1; i < len(frames); i++ {
			f := &frames[i]
			id := ta.sym(f, reg, &view)
			if view.Attrs(id)&stack.SymFramework != 0 || ta.seenMark[id] == ta.traceGen {
				continue
			}
			ta.seenMark[id] = ta.traceGen
			if ta.callerMark[id] != ta.gen {
				ta.callerMark[id] = ta.gen
				ta.callerCount[id] = 1
				ta.callerDepth[id] = int32(i)
				ta.callerFrame[id] = *f
				ta.callerTouched = append(ta.callerTouched, id)
			} else {
				ta.callerCount[id]++
				ta.callerDepth[id] += int32(i)
			}
		}
	}
	if total == 0 {
		return Diagnosis{}, false
	}

	// Leaf verdict: highest count; ties break to the smallest symbol ID
	// (deterministic because intern order is deterministic per registry).
	leafID := ta.leafTouched[0]
	for _, id := range ta.leafTouched[1:] {
		c, bc := ta.leafCount[id], ta.leafCount[leafID]
		if c > bc || (c == bc && id < leafID) {
			leafID = id
		}
	}
	lf := &ta.leafFrame[leafID]
	d := Diagnosis{
		RootCause:  view.Key(leafID),
		Sym:        leafID,
		File:       lf.File,
		Line:       lf.Line,
		Occurrence: float64(ta.leafCount[leafID]) / float64(total),
	}
	if d.Occurrence < occHigh && len(ta.callerTouched) > 0 {
		// Caller verdict: highest count, closest to the leaf (smallest
		// cumulative depth), then smallest symbol ID.
		callerID := ta.callerTouched[0]
		for _, id := range ta.callerTouched[1:] {
			c, bc := ta.callerCount[id], ta.callerCount[callerID]
			dep, bdep := ta.callerDepth[id], ta.callerDepth[callerID]
			if c > bc || (c == bc && (dep < bdep || (dep == bdep && id < callerID))) {
				callerID = id
			}
		}
		if callerOcc := float64(ta.callerCount[callerID]) / float64(total); callerOcc >= occHigh {
			cf := &ta.callerFrame[callerID]
			d = Diagnosis{
				RootCause:  view.Key(callerID),
				Sym:        callerID,
				File:       cf.File,
				Line:       cf.Line,
				Occurrence: callerOcc,
				ViaCaller:  true,
			}
		}
	}
	d.IsUI = view.Attrs(d.Sym)&stack.SymUI != 0
	return d, true
}

// AnalyzeTraces runs the Trace Analyzer with throwaway scratch buffers. It
// is the convenience entry point for one-shot callers (tests, examples);
// the Doctor's hot path reuses its own TraceAnalyzer across hangs instead.
func AnalyzeTraces(traces []*stack.Stack, reg *api.Registry, occHigh float64) (Diagnosis, bool) {
	var ta TraceAnalyzer
	return ta.Analyze(traces, reg, occHigh)
}

// classOf splits a class.method key back into its class part.
func classOf(key string) string {
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		return key[:i]
	}
	return key
}
