package core

import (
	"sort"
	"strings"

	"hangdoctor/internal/android/api"
	"hangdoctor/internal/stack"
)

// Diagnosis is the Trace Analyzer's verdict on one traced soft hang.
type Diagnosis struct {
	// RootCause is the class.method held responsible.
	RootCause string
	// File/Line locate the root cause in source, as reported to the
	// developer (Figure 6(b)).
	File string
	Line int
	// Occurrence is the fraction of collected stack traces containing the
	// root cause.
	Occurrence float64
	// IsUI marks legitimate UI work (not a soft hang bug).
	IsUI bool
	// ViaCaller is set when the root cause is a caller function aggregating
	// many light operations (the self-developed heavy-operation case).
	ViaCaller bool
}

// frameworkClass reports whether a class is main-loop plumbing that can
// never be a root cause (it tops every main-thread stack).
func frameworkClass(cls string) bool {
	return cls == "android.os.Handler" || cls == "android.os.Looper" ||
		strings.HasPrefix(cls, "com.android.internal.os.")
}

// AnalyzeTraces implements the Trace Analyzer (§3.4.1): compute the
// occurrence factor of the most frequent leaf operation across the sampled
// stacks; if it is high, that operation is the root cause; otherwise the
// hang is many light operations driven by one caller, and the most common
// non-framework caller function with a high occurrence factor is reported
// instead. UI-class root causes are flagged so the Diagnoser can transition
// the action to Normal. The boolean result is false when no usable samples
// were collected.
func AnalyzeTraces(traces []*stack.Stack, reg *api.Registry, occHigh float64) (Diagnosis, bool) {
	type info struct {
		count int
		frame stack.Frame
		depth int // cumulative frame index, for closest-to-leaf tie-breaks
	}
	leaf := map[string]*info{}
	caller := map[string]*info{}
	total := 0
	for _, tr := range traces {
		if tr.Depth() == 0 {
			continue
		}
		total++
		lf := tr.Leaf()
		if li := leaf[lf.Key()]; li != nil {
			li.count++
		} else {
			leaf[lf.Key()] = &info{count: 1, frame: lf}
		}
		seen := map[string]bool{lf.Key(): true}
		for i := 1; i < len(tr.Frames); i++ {
			f := tr.Frames[i]
			if frameworkClass(f.Class) || seen[f.Key()] {
				continue
			}
			seen[f.Key()] = true
			if ci := caller[f.Key()]; ci != nil {
				ci.count++
				ci.depth += i
			} else {
				caller[f.Key()] = &info{count: 1, frame: f, depth: i}
			}
		}
	}
	if total == 0 {
		return Diagnosis{}, false
	}

	pick := func(m map[string]*info) (string, *info) {
		var bestKey string
		var best *info
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			i := m[k]
			if best == nil || i.count > best.count ||
				(i.count == best.count && i.depth < best.depth) {
				best, bestKey = i, k
			}
		}
		return bestKey, best
	}

	leafKey, leafInfo := pick(leaf)
	d := Diagnosis{
		RootCause:  leafKey,
		File:       leafInfo.frame.File,
		Line:       leafInfo.frame.Line,
		Occurrence: float64(leafInfo.count) / float64(total),
	}
	if d.Occurrence < occHigh && len(caller) > 0 {
		callerKey, callerInfo := pick(caller)
		callerOcc := float64(callerInfo.count) / float64(total)
		if callerOcc >= occHigh {
			d = Diagnosis{
				RootCause:  callerKey,
				File:       callerInfo.frame.File,
				Line:       callerInfo.frame.Line,
				Occurrence: callerOcc,
				ViaCaller:  true,
			}
		}
	}
	d.IsUI = reg.IsUIClass(classOf(d.RootCause))
	return d, true
}

// classOf splits a class.method key back into its class part.
func classOf(key string) string {
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		return key[:i]
	}
	return key
}
