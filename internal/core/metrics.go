package core

import (
	"hangdoctor/internal/fault"
	"hangdoctor/internal/obs"
	"hangdoctor/internal/perf"
)

// doctorMetrics is the Doctor's per-instance obs registry. The existing
// plain-int accounting (Health, detect.Log, Telemetry) stays the source of
// truth — callback metrics project it into the registry at snapshot time,
// so the hot paths pay nothing for the second surface. Only quantities
// whose distribution matters (hang response, S-Checker decision latency,
// stack-collection duration, report-fold time) additionally feed real
// histograms.
//
// Two clocks feed the histograms, deliberately: hang response and
// stack-collection durations are simulated time (what the app experienced,
// reproducible from the seed), while S-Checker and report-fold latencies
// are wall-clock (what the monitor itself costs on the machine running
// it). Neither feeds a rendered artifact, so experiment outputs remain
// byte-identical across hosts.
type doctorMetrics struct {
	reg  *obs.Registry
	perf *perf.Metrics

	hangResponseMs  *obs.Histogram
	scheckLatencyNs *obs.Histogram
	stackCollectMs  *obs.Histogram
	reportFoldNs    *obs.Histogram
}

// healthCounterNames pairs each Health field with its exposition name, in
// struct order. Kept next to doctorMetrics so adding a Health field shows
// up as a missing registration in code review.
var healthCounterHelp = [...][2]string{
	{"hangdoctor_health_perf_open_failures_total", "perf_event_open attempts that failed."},
	{"hangdoctor_health_perf_open_retries_total", "Backed-off retries of failed perf opens."},
	{"hangdoctor_health_counters_lost_total", "Per-condition counter values lost to multiplexing."},
	{"hangdoctor_health_render_lost_total", "Sessions that lost the render thread's counters."},
	{"hangdoctor_health_stacks_dropped_total", "Stack samples lost entirely."},
	{"hangdoctor_health_stacks_truncated_total", "Stack samples that lost outer frames."},
	{"hangdoctor_health_sampler_overruns_total", "Sampler ticks that fired late."},
	{"hangdoctor_health_verdicts_deferred_total", "Judgements skipped for lack of surviving data."},
	{"hangdoctor_health_low_confidence_total", "Verdicts rendered from a degraded plane."},
	{"hangdoctor_health_quarantines_total", "Actions quarantined after consecutive open failures."},
	{"hangdoctor_health_worker_stacks_lost_total", "Pool-worker stack samples lost during causal collection."},
	{"hangdoctor_health_causal_fallbacks_total", "Await diagnoses degraded to main-thread-only attribution."},
}

func newDoctorMetrics(d *Doctor) *doctorMetrics {
	reg := obs.NewRegistry()
	m := &doctorMetrics{
		reg:  reg,
		perf: perf.NewMetrics(reg),
		hangResponseMs: reg.Histogram("hangdoctor_hang_response_ms",
			"Response time of soft-hang action executions (simulated ms).",
			obs.ExpBuckets(25, 2, 12)),
		scheckLatencyNs: reg.Histogram("hangdoctor_scheck_latency_ns",
			"Wall-clock latency of one S-Checker decision.",
			obs.ExpBuckets(128, 4, 10)),
		stackCollectMs: reg.Histogram("hangdoctor_stack_collection_ms",
			"Simulated duration of one diagnosis stack-collection burst.",
			obs.ExpBuckets(5, 2, 12)),
		reportFoldNs: reg.Histogram("hangdoctor_report_fold_ns",
			"Wall-clock latency of folding one diagnosis into the report.",
			obs.ExpBuckets(128, 4, 10)),
	}
	for i, hc := range healthCounterHelp {
		v := healthField(&d.health, i)
		reg.CounterFunc(hc[0], hc[1], func() int64 { return int64(*v) })
	}
	reg.CounterFunc("hangdoctor_actions_total",
		"Action executions observed.",
		func() int64 { return d.execsSeen })
	reg.CounterFunc("hangdoctor_hangs_total",
		"Action executions above the perceivable delay.",
		func() int64 { return d.hangsSeen })
	reg.CounterFunc("hangdoctor_monitor_cost_ns_total",
		"Accounted detector CPU cost (simulated ns).",
		func() int64 { return d.log.CostNs })
	reg.CounterFunc("hangdoctor_monitor_mem_bytes_total",
		"Accounted detector memory footprint (bytes).",
		func() int64 { return d.log.MemUsed })
	// Injected-fault ground truth, read through the session because the
	// injector is installed (SetFaults) after the detector attaches.
	fault.RegisterStats(reg, func() fault.Stats {
		if d.session == nil {
			return fault.Stats{}
		}
		return d.session.Faults().Stats()
	})
	return m
}

// healthField maps an index in healthCounterHelp order to the matching
// Health field. A switch rather than reflection: the registry snapshot
// path stays allocation-predictable and the mapping is greppable.
func healthField(h *Health, i int) *int {
	switch i {
	case 0:
		return &h.PerfOpenFailures
	case 1:
		return &h.PerfOpenRetries
	case 2:
		return &h.CountersLost
	case 3:
		return &h.RenderLost
	case 4:
		return &h.StacksDropped
	case 5:
		return &h.StacksTruncated
	case 6:
		return &h.SamplerOverruns
	case 7:
		return &h.VerdictsDeferred
	case 8:
		return &h.LowConfidence
	case 9:
		return &h.Quarantines
	case 10:
		return &h.WorkerStacksLost
	case 11:
		return &h.CausalFallbacks
	default:
		panic("core: healthField index out of range")
	}
}

// Metrics returns a deterministic point-in-time snapshot of the Doctor's
// metrics registry: health and accounting counters, perf-plane counters,
// injected-fault ground truth (once attached to a faulted session), and
// the four stage-latency histograms. Snapshots from many Doctors merge
// with obs.MergeSnapshots.
func (d *Doctor) Metrics() obs.Snapshot { return d.metrics.reg.Snapshot() }

// MetricsRegistry exposes the live registry, for serving /metrics off a
// running Doctor.
func (d *Doctor) MetricsRegistry() *obs.Registry { return d.metrics.reg }
