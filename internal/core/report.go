package core

import (
	"fmt"
	"sort"
	"strings"

	"hangdoctor/internal/simclock"
)

// ReportEntry is one row of the Hang Bug Report (Figure 2(b)): a diagnosed
// root cause with its spread across soft hangs and devices.
type ReportEntry struct {
	App       string
	ActionUID string
	RootCause string
	File      string
	Line      int
	// ViaCaller marks self-developed aggregate operations.
	ViaCaller bool
	// Hangs is the number of diagnosed soft hangs attributed to this cause.
	Hangs int
	// Devices is the set of devices/users that reported it.
	Devices map[string]bool
	// MaxResponse and SumResponse summarize observed hang lengths.
	MaxResponse simclock.Duration
	SumResponse simclock.Duration
	// Chain is the causal chain the diagnosis travelled through (zero for
	// plain main-thread diagnoses). Merges fold it componentwise.
	Chain CausalChain
}

// AvgResponse returns the mean diagnosed hang length.
func (e *ReportEntry) AvgResponse() simclock.Duration {
	if e.Hangs == 0 {
		return 0
	}
	return e.SumResponse / simclock.Duration(e.Hangs)
}

// Report is the developer-facing Hang Bug Report: "a table of detected soft
// hang bugs ordered by the percentage of occurrences across user devices"
// (§3.2). Reports from many devices merge into one fleet view.
type Report struct {
	entries map[string]*ReportEntry
	// totalHangs counts all diagnosed bug hangs, the denominator of the
	// occurrence percentage column.
	totalHangs int
	// Health summarizes how degraded the measurement plane was while this
	// report was collected; fleet merges sum it across devices. It stays
	// zero — and invisible in Render and Export — on a perfect plane.
	Health Health
}

// NewReport returns an empty report.
func NewReport() *Report {
	return &Report{entries: map[string]*ReportEntry{}}
}

func entryKey(appName, actionUID, root string) string {
	return appName + "\x00" + actionUID + "\x00" + root
}

// Add records one diagnosed soft hang.
func (r *Report) Add(appName, device, actionUID string, diag Diagnosis, rt simclock.Duration) {
	r.AddChained(appName, device, actionUID, diag, CausalChain{}, rt)
}

// AddChained records one diagnosed soft hang together with the causal chain
// it was attributed through (Add with a zero chain).
func (r *Report) AddChained(appName, device, actionUID string, diag Diagnosis, chain CausalChain, rt simclock.Duration) {
	key := entryKey(appName, actionUID, diag.RootCause)
	e, ok := r.entries[key]
	if !ok {
		e = &ReportEntry{
			App: appName, ActionUID: actionUID, RootCause: diag.RootCause,
			File: diag.File, Line: diag.Line, ViaCaller: diag.ViaCaller,
			Devices: map[string]bool{},
		}
		r.entries[key] = e
	}
	e.Hangs++
	r.totalHangs++
	e.Devices[device] = true
	e.SumResponse += rt
	if rt > e.MaxResponse {
		e.MaxResponse = rt
	}
	e.Chain = mergeChain(e.Chain, chain)
}

// Merge folds other reports into r (the server-side aggregation of the
// field study).
func (r *Report) Merge(others ...*Report) {
	for _, o := range others {
		r.Health.Add(o.Health)
		for key, oe := range o.entries {
			e, ok := r.entries[key]
			if !ok {
				e = &ReportEntry{
					App: oe.App, ActionUID: oe.ActionUID, RootCause: oe.RootCause,
					File: oe.File, Line: oe.Line, ViaCaller: oe.ViaCaller,
					Devices: map[string]bool{},
				}
				r.entries[key] = e
			}
			e.Hangs += oe.Hangs
			r.totalHangs += oe.Hangs
			for dev := range oe.Devices {
				e.Devices[dev] = true
			}
			e.SumResponse += oe.SumResponse
			if oe.MaxResponse > e.MaxResponse {
				e.MaxResponse = oe.MaxResponse
			}
			e.Chain = mergeChain(e.Chain, oe.Chain)
		}
	}
}

// Len returns the number of distinct root causes reported.
func (r *Report) Len() int { return len(r.entries) }

// TotalHangs returns the number of diagnosed bug hangs across all entries.
func (r *Report) TotalHangs() int { return r.totalHangs }

// Entries returns rows ordered by occurrence share descending (ties by
// app/action/root for determinism).
func (r *Report) Entries() []*ReportEntry {
	out := make([]*ReportEntry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hangs != out[j].Hangs {
			return out[i].Hangs > out[j].Hangs
		}
		ki := entryKey(out[i].App, out[i].ActionUID, out[i].RootCause)
		kj := entryKey(out[j].App, out[j].ActionUID, out[j].RootCause)
		return ki < kj
	})
	return out
}

// OccurrencePct returns an entry's share of all diagnosed hangs, the
// percentage column of Figure 2(b).
func (r *Report) OccurrencePct(e *ReportEntry) float64 {
	if r.totalHangs == 0 {
		return 0
	}
	return 100 * float64(e.Hangs) / float64(r.totalHangs)
}

// Render formats the report in the layout of Figure 2(b).
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-66s %8s %8s %8s %9s\n", "Root cause (file:line) @ action", "Hangs", "Share", "Devices", "MaxResp")
	for _, e := range r.Entries() {
		kind := ""
		if e.ViaCaller {
			kind = " [self-developed]"
		}
		fmt.Fprintf(&b, "%-66s %8d %7.0f%% %8d %9s\n",
			fmt.Sprintf("%s (%s:%d)%s @ %s", e.RootCause, e.File, e.Line, kind, e.ActionUID),
			e.Hangs, r.OccurrencePct(e), len(e.Devices), e.MaxResponse)
		if !e.Chain.Zero() {
			// Causal rows get a provenance sub-line; plain rows render exactly
			// as before the causal extension.
			fmt.Fprintf(&b, "    via %s chain from %s at %s (%d permille of hang samples)\n",
				e.Chain.Kind, e.Chain.OriginAction, e.Chain.OriginSite, e.Chain.SharePermille)
		}
	}
	if !r.Health.Zero() {
		fmt.Fprintf(&b, "\nDegraded-mode health: %s\n", r.Health)
	}
	return b.String()
}
