package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"hangdoctor/internal/simclock"
)

// reportWire is the JSON wire format a device uploads: one document per
// report, schema-versioned so the fleet service can evolve.
type reportWire struct {
	Version int         `json:"version"`
	Entries []entryWire `json:"entries"`
	// Health is present only when the device's measurement plane degraded,
	// so fault-free uploads are byte-identical to the pre-health schema.
	Health *healthWire `json:"health,omitempty"`
}

type healthWire struct {
	PerfOpenFailures int `json:"perf_open_failures,omitempty"`
	PerfOpenRetries  int `json:"perf_open_retries,omitempty"`
	CountersLost     int `json:"counters_lost,omitempty"`
	RenderLost       int `json:"render_lost,omitempty"`
	StacksDropped    int `json:"stacks_dropped,omitempty"`
	StacksTruncated  int `json:"stacks_truncated,omitempty"`
	SamplerOverruns  int `json:"sampler_overruns,omitempty"`
	VerdictsDeferred int `json:"verdicts_deferred,omitempty"`
	LowConfidence    int `json:"low_confidence,omitempty"`
	Quarantines      int `json:"quarantines,omitempty"`
	WorkerStacksLost int `json:"worker_stacks_lost,omitempty"`
	CausalFallbacks  int `json:"causal_fallbacks,omitempty"`
}

func (hw healthWire) toHealth() Health { return Health(hw) }

type entryWire struct {
	App         string   `json:"app"`
	ActionUID   string   `json:"action_uid"`
	RootCause   string   `json:"root_cause"`
	File        string   `json:"file"`
	Line        int      `json:"line"`
	ViaCaller   bool     `json:"via_caller,omitempty"`
	Hangs       int      `json:"hangs"`
	Devices     []string `json:"devices"`
	MaxResponse int64    `json:"max_response_ns"`
	SumResponse int64    `json:"sum_response_ns"`
	// Causal-chain provenance, all omitted for plain main-thread rows so
	// causal-free documents stay byte-identical to the pre-causal schema.
	ChainKind          string `json:"chain_kind,omitempty"`
	ChainOriginAction  string `json:"chain_origin_action,omitempty"`
	ChainOriginSite    string `json:"chain_origin_site,omitempty"`
	ChainSharePermille int    `json:"chain_share_permille,omitempty"`
}

const reportWireVersion = 1

// Export writes the report as JSON. Per the paper's privacy posture (§3.2),
// the payload contains only the blocking operations that caused soft hangs
// — no user content, no full traces; combine with Anonymize before upload
// to strip device identifiers.
func (r *Report) Export(w io.Writer) error {
	doc := reportWire{Version: reportWireVersion}
	if !r.Health.Zero() {
		hw := healthWire(r.Health)
		doc.Health = &hw
	}
	for _, e := range r.Entries() {
		devs := make([]string, 0, len(e.Devices))
		for d := range e.Devices {
			devs = append(devs, d)
		}
		sort.Strings(devs)
		doc.Entries = append(doc.Entries, entryWire{
			App: e.App, ActionUID: e.ActionUID, RootCause: e.RootCause,
			File: e.File, Line: e.Line, ViaCaller: e.ViaCaller,
			Hangs: e.Hangs, Devices: devs,
			MaxResponse: int64(e.MaxResponse), SumResponse: int64(e.SumResponse),
			ChainKind:          e.Chain.Kind,
			ChainOriginAction:  e.Chain.OriginAction,
			ChainOriginSite:    e.Chain.OriginSite,
			ChainSharePermille: e.Chain.SharePermille,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ImportReport parses a JSON document produced by Export, rejecting
// corrupt uploads — negative counts or response times, empty root causes,
// negative health counters — with descriptive errors instead of silently
// merging garbage into the fleet report.
func ImportReport(rd io.Reader) (*Report, error) {
	var doc reportWire
	if err := json.NewDecoder(rd).Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: decoding report: %w", err)
	}
	if doc.Version != reportWireVersion {
		return nil, fmt.Errorf("core: unsupported report version %d", doc.Version)
	}
	out := NewReport()
	if doc.Health != nil {
		h := doc.Health.toHealth()
		if h.PerfOpenFailures < 0 || h.PerfOpenRetries < 0 || h.CountersLost < 0 ||
			h.RenderLost < 0 || h.StacksDropped < 0 || h.StacksTruncated < 0 ||
			h.SamplerOverruns < 0 || h.VerdictsDeferred < 0 || h.LowConfidence < 0 ||
			h.Quarantines < 0 || h.WorkerStacksLost < 0 || h.CausalFallbacks < 0 {
			return nil, fmt.Errorf("core: negative health counter in %+v", h)
		}
		out.Health = h
	}
	for _, ew := range doc.Entries {
		if ew.RootCause == "" {
			return nil, fmt.Errorf("core: entry for app %q action %q has empty root cause", ew.App, ew.ActionUID)
		}
		if ew.Hangs <= 0 {
			return nil, fmt.Errorf("core: entry %s/%s has non-positive hang count %d", ew.App, ew.RootCause, ew.Hangs)
		}
		if ew.MaxResponse < 0 {
			return nil, fmt.Errorf("core: entry %s/%s has negative max response %d", ew.App, ew.RootCause, ew.MaxResponse)
		}
		if ew.SumResponse < 0 {
			return nil, fmt.Errorf("core: entry %s/%s has negative response sum %d", ew.App, ew.RootCause, ew.SumResponse)
		}
		if ew.Line < 0 {
			return nil, fmt.Errorf("core: entry %s/%s has negative line %d", ew.App, ew.RootCause, ew.Line)
		}
		if ew.ChainSharePermille < 0 || ew.ChainSharePermille > 1000 {
			return nil, fmt.Errorf("core: entry %s/%s has chain share %d out of [0,1000]", ew.App, ew.RootCause, ew.ChainSharePermille)
		}
		e := &ReportEntry{
			App: ew.App, ActionUID: ew.ActionUID, RootCause: ew.RootCause,
			File: ew.File, Line: ew.Line, ViaCaller: ew.ViaCaller,
			Hangs: ew.Hangs, Devices: map[string]bool{},
			MaxResponse: simclock.Duration(ew.MaxResponse),
			SumResponse: simclock.Duration(ew.SumResponse),
			Chain: CausalChain{
				Kind:          ew.ChainKind,
				OriginAction:  ew.ChainOriginAction,
				OriginSite:    ew.ChainOriginSite,
				SharePermille: ew.ChainSharePermille,
			},
		}
		for _, d := range ew.Devices {
			e.Devices[d] = true
		}
		out.entries[entryKey(ew.App, ew.ActionUID, ew.RootCause)] = e
		out.totalHangs += ew.Hangs
	}
	return out, nil
}

// Anonymize returns a copy of the report with every device identifier
// replaced by a salted hash, so the fleet service can still count distinct
// devices per entry without learning who they are.
func (r *Report) Anonymize(salt string) *Report {
	out := NewReport()
	out.totalHangs = r.totalHangs
	out.Health = r.Health
	for key, e := range r.entries {
		ne := &ReportEntry{
			App: e.App, ActionUID: e.ActionUID, RootCause: e.RootCause,
			File: e.File, Line: e.Line, ViaCaller: e.ViaCaller,
			Hangs: e.Hangs, Devices: map[string]bool{},
			MaxResponse: e.MaxResponse, SumResponse: e.SumResponse,
			Chain: e.Chain,
		}
		for d := range e.Devices {
			h := fnv.New64a()
			h.Write([]byte(salt))
			h.Write([]byte(d))
			ne.Devices[fmt.Sprintf("dev-%016x", h.Sum64())] = true
		}
		out.entries[key] = ne
	}
	return out
}
