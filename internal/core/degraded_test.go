package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/fault"
	"hangdoctor/internal/simclock"
)

// runFaulted runs Hang Doctor over one app's trace with an injector
// installed on the session (nil for the perfect plane).
func runFaulted(t *testing.T, appName string, cfg Config, seed uint64, n int, inj *fault.Injector) (*Doctor, *detect.Harness) {
	t.Helper()
	a := corpus.Build().MustApp(appName)
	d := New(cfg)
	h, err := detect.NewHarness(a, app.LGV10(), seed, d)
	if err != nil {
		t.Fatal(err)
	}
	h.Session.SetFaults(inj)
	h.Run(corpus.Trace(a, seed, n), simclock.Second)
	return d, h
}

func doctorFingerprint(t *testing.T, d *Doctor) string {
	t.Helper()
	var b strings.Builder
	for _, tr := range d.Transitions() {
		fmt.Fprintf(&b, "%s %v->%v %s seq=%d lowconf=%v\n",
			tr.ActionUID, tr.From, tr.To, tr.Phase, tr.ExecSeq, tr.LowConfidence)
	}
	for _, det := range d.Detections() {
		fmt.Fprintf(&b, "det %s %s %s:%d occ=%.3f n=%d max=%d\n",
			det.ActionUID, det.RootCause, det.File, det.Line,
			det.Occurrence, det.Count, det.MaxResponse)
	}
	var exp bytes.Buffer
	if err := d.Report().Export(&exp); err != nil {
		t.Fatal(err)
	}
	b.WriteString(exp.String())
	b.WriteString(d.Telemetry().Render())
	return b.String()
}

// TestZeroRatesBitIdentical is the core invariant of the fault layer: an
// injector with every rate at zero must be indistinguishable — transition
// for transition, byte for byte — from no injector at all.
func TestZeroRatesBitIdentical(t *testing.T) {
	dNone, _ := runFaulted(t, "K9-Mail", Config{}, 11, 140, nil)
	dZero, _ := runFaulted(t, "K9-Mail", Config{}, 11, 140, fault.New(99, fault.Rates{}))

	if !dZero.Health().Zero() {
		t.Fatalf("zero-rate injector produced health counters: %s", dZero.Health())
	}
	a, b := doctorFingerprint(t, dNone), doctorFingerprint(t, dZero)
	if a != b {
		t.Fatalf("zero-rate run diverged from fault-free run:\n--- none ---\n%s\n--- zero ---\n%s", a, b)
	}
}

// TestDegradedModeNeverFabricates drives each fault kind at rate 1.0 over
// the K9-Mail trace and checks the graceful-degradation contract: the
// Doctor may defer or mark verdicts low-confidence, but it must never push
// a pure-UI action to HangBug or blame a UI API, and the matching health
// counter must record what happened.
func TestDegradedModeNeverFabricates(t *testing.T) {
	cases := []struct {
		name    string
		rates   fault.Rates
		counter func(Health) int
	}{
		{"perf-open-fail", fault.Rates{PerfOpenFail: 1}, func(h Health) int { return h.PerfOpenFailures }},
		{"counter-drop", fault.Rates{CounterDrop: 1}, func(h Health) int { return h.CountersLost }},
		{"render-loss", fault.Rates{RenderLoss: 1}, func(h Health) int { return h.RenderLost }},
		{"stack-miss", fault.Rates{StackMiss: 1}, func(h Health) int { return h.StacksDropped }},
		{"stack-truncate", fault.Rates{StackTruncate: 1}, func(h Health) int { return h.StacksTruncated }},
		{"sampler-overrun", fault.Rates{SamplerOverrun: 1}, func(h Health) int { return h.SamplerOverruns }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, _ := runFaulted(t, "K9-Mail", Config{ResetEvery: 1 << 30}, 11, 140, fault.New(7, tc.rates))
			h := d.Health()
			if tc.counter(h) == 0 {
				t.Errorf("fault fired at rate 1.0 but its health counter is zero: %s", h)
			}
			// The engineered borderline UI actions must survive every fault.
			if got := d.State("K9-Mail/Inbox"); got == HangBug {
				t.Error("Inbox (UI) pushed to HangBug under faults")
			}
			if got := d.State("K9-Mail/Folders"); got == HangBug {
				t.Error("Folders (UI) pushed to HangBug under faults")
			}
			for _, det := range d.Detections() {
				if strings.HasPrefix(det.RootCause, "android.widget.") ||
					strings.HasPrefix(det.RootCause, "android.view.") {
					t.Errorf("UI API blamed under %s: %s", tc.name, det.RootCause)
				}
			}
		})
	}
}

// TestStackMissDefersDiagnosis: with every stack sample lost, the Diagnoser
// has no evidence and must defer every verdict rather than guess — zero
// detections, nonzero deferral and drop counters (the issue's acceptance
// scenario at the extreme end).
func TestStackMissDefersDiagnosis(t *testing.T) {
	d, _ := runFaulted(t, "K9-Mail", Config{}, 11, 140, fault.New(7, fault.Rates{StackMiss: 1}))
	if n := len(d.Detections()); n != 0 {
		t.Errorf("diagnosed %d bugs with zero stack evidence", n)
	}
	h := d.Health()
	if h.StacksDropped == 0 || h.VerdictsDeferred == 0 {
		t.Errorf("expected nonzero stacks-dropped and deferred, got %s", h)
	}
}

// TestStackMissHalfStillDetects: at 50% stack loss the occurrence factor
// scales to surviving samples, so the real bugs are still found — just
// marked low-confidence — and no new false positives appear.
func TestStackMissHalfStillDetects(t *testing.T) {
	base, hb := runFaulted(t, "K9-Mail", Config{}, 11, 140, nil)
	d, hf := runFaulted(t, "K9-Mail", Config{}, 11, 140, fault.New(7, fault.Rates{StackMiss: 0.5}))

	roots := map[string]bool{}
	for _, det := range d.Detections() {
		roots[det.RootCause] = true
	}
	if !roots["org.htmlcleaner.HtmlCleaner.clean"] {
		t.Errorf("clean not diagnosed at 50%% stack loss; got %v", roots)
	}
	evBase, evFault := hb.Evaluate(base), hf.Evaluate(d)
	if evFault.FP > evBase.FP {
		t.Errorf("stack loss created false positives: %d > %d", evFault.FP, evBase.FP)
	}
	lowConf := false
	for _, tr := range d.Transitions() {
		if tr.LowConfidence {
			lowConf = true
			break
		}
	}
	if !lowConf {
		t.Error("no transition marked low-confidence despite 50% stack loss")
	}
	if d.Health().StacksDropped == 0 {
		t.Error("stacks-dropped counter is zero at 50% stack loss")
	}
}

// TestOpenFailQuarantine: when every perf open fails, repeat offenders are
// quarantined after QuarantineAfter consecutive failures and the Doctor
// stops burning retries on them.
func TestOpenFailQuarantine(t *testing.T) {
	d, _ := runFaulted(t, "K9-Mail", Config{}, 11, 140, fault.New(7, fault.Rates{PerfOpenFail: 1}))
	h := d.Health()
	if h.PerfOpenFailures == 0 || h.PerfOpenRetries == 0 {
		t.Fatalf("expected open failures and retries, got %s", h)
	}
	if h.Quarantines == 0 {
		t.Errorf("no quarantine despite permanent open failure: %s", h)
	}
	if n := len(d.Detections()); n != 0 {
		t.Errorf("diagnosed %d bugs with no counter evidence", n)
	}
	// Health must surface through every reporting channel.
	if !strings.Contains(d.Report().Render(), "Degraded-mode health:") {
		t.Error("report render missing health footer")
	}
	if !strings.Contains(d.Telemetry().Render(), "Degraded-mode health:") {
		t.Error("telemetry render missing health footer")
	}
}
