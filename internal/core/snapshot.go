package core

// snapshot.go is the incremental read path: versioned copy-on-write
// snapshots of a mutating report, an incremental fold cache over disjoint
// parts, and a parallel pairwise fold tree. Together they turn the fleet
// read path from O(total state) per request into O(changed state):
//
//   - A shard owns a mutating Report and a SnapshotCache. Merges mark the
//     touched entry keys dirty and bump a monotonically increasing version;
//     a snapshot request at an unchanged version returns the cached
//     immutable snapshot, and an outdated one re-clones only the dirtied
//     entries, sharing every clean *ReportEntry with the previous snapshot.
//   - The aggregator folds shard snapshots through a FoldCache keyed by the
//     shard version vector: only shards whose version moved are re-merged,
//     and because shards own disjoint entry-key ranges the fold shares
//     entry pointers instead of deep-copying device sets.
//   - FoldReportsParallel folds genuinely overlapping parts (regional node
//     snapshots) through a pairwise tree on bounded workers.
//
// Everything here preserves the repo's one determinism bar: any cached,
// shared, parallel, or incremental fold is byte-identical in Export/Render
// to a from-scratch serial FoldReports of the same parts. Sharing is safe
// because snapshots are immutable by contract: every consumer (encode,
// export, render, merge-as-source) only reads them.

import "sync"

// cloneEntry deep-copies one report entry (its device set included).
func cloneEntry(e *ReportEntry) *ReportEntry {
	ne := &ReportEntry{
		App: e.App, ActionUID: e.ActionUID, RootCause: e.RootCause,
		File: e.File, Line: e.Line, ViaCaller: e.ViaCaller,
		Hangs: e.Hangs, Devices: make(map[string]bool, len(e.Devices)),
		MaxResponse: e.MaxResponse, SumResponse: e.SumResponse,
		Chain: e.Chain,
	}
	for d := range e.Devices {
		ne.Devices[d] = true
	}
	return ne
}

// mergeEntryInto folds src into dst exactly as Report.Merge does for a
// key-colliding entry: counters sum, device sets union, max wins. dst's
// identity metadata (file, line, kind) is kept, matching Merge's
// first-writer-wins behavior.
func mergeEntryInto(dst, src *ReportEntry) {
	dst.Hangs += src.Hangs
	for d := range src.Devices {
		dst.Devices[d] = true
	}
	dst.SumResponse += src.SumResponse
	if src.MaxResponse > dst.MaxResponse {
		dst.MaxResponse = src.MaxResponse
	}
	dst.Chain = mergeChain(dst.Chain, src.Chain)
}

// ---------------------------------------------------------------------------
// Versioned copy-on-write snapshots

// SnapshotCache tracks a mutating Report's changes so reads can reuse
// prior work. The owner marks every entry key it touches, bumps the
// version once per mutation batch, and serves reads through Snapshot —
// which is free when nothing changed and proportional to the dirty set
// otherwise. It additionally remembers, per key, the version that last
// changed it, so DeltaSince can answer "what moved since version v"
// without diffing state.
//
// A SnapshotCache is owned by the goroutine that owns the Report; it is
// not safe for concurrent use. The *Report values it returns are
// immutable and safe to share across goroutines.
type SnapshotCache struct {
	version uint64
	dirty   map[string]struct{} // keys touched since the last Snapshot build
	mod     map[string]uint64   // key -> version of its last change
	snap    *Report             // cached immutable snapshot
	snapV   uint64              // version snap covers
}

// NewSnapshotCache returns an empty cache at version 0.
func NewSnapshotCache() *SnapshotCache {
	return &SnapshotCache{dirty: map[string]struct{}{}, mod: map[string]uint64{}}
}

// Version returns the current state version: 0 until the first Bump, then
// monotonically increasing.
func (sc *SnapshotCache) Version() uint64 { return sc.version }

// MarkKey records that the entry at key is about to change in the batch
// the next Bump commits.
func (sc *SnapshotCache) MarkKey(key string) {
	sc.dirty[key] = struct{}{}
	sc.mod[key] = sc.version + 1
}

// MarkReport marks every entry key of frag (the fragment about to merge).
func (sc *SnapshotCache) MarkReport(frag *Report) {
	for key := range frag.entries {
		sc.MarkKey(key)
	}
}

// MarkWireEntries marks the precomputed keys of decoded wire entries.
func (sc *SnapshotCache) MarkWireEntries(entries []WireEntry) {
	for i := range entries {
		sc.MarkKey(entries[i].Key)
	}
}

// Bump commits one mutation batch: the version moves even when the batch
// touched no entry keys (a health-only merge still changes report bytes).
func (sc *SnapshotCache) Bump() { sc.version++ }

// Cached reports whether the next Snapshot call will return the cached
// snapshot unchanged (nothing has moved since it was built).
func (sc *SnapshotCache) Cached() bool { return sc.snap != nil && sc.snapV == sc.version }

// Snapshot returns an immutable snapshot of live at the current version.
// If the version is unchanged since the last call the cached snapshot is
// returned as-is; otherwise a new one is built copy-on-write: dirtied
// entries are deep-cloned from live, clean entries share their
// *ReportEntry with the previous snapshot. Callers must treat the result
// (and everything reachable from it) as read-only.
func (sc *SnapshotCache) Snapshot(live *Report) *Report {
	if sc.snap != nil && sc.snapV == sc.version {
		return sc.snap
	}
	out := NewReport()
	out.entries = make(map[string]*ReportEntry, len(live.entries))
	out.totalHangs = live.totalHangs
	out.Health = live.Health
	var prev map[string]*ReportEntry
	if sc.snap != nil {
		prev = sc.snap.entries
	}
	for key, e := range live.entries {
		if _, isDirty := sc.dirty[key]; !isDirty {
			if pe, ok := prev[key]; ok {
				out.entries[key] = pe
				continue
			}
		}
		out.entries[key] = cloneEntry(e)
	}
	clear(sc.dirty)
	sc.snap, sc.snapV = out, sc.version
	return out
}

// DeltaSince returns the current version and an immutable report holding
// only the entries changed after version since, with live's full Health
// (health rides every delta — it is absolute, cheap, and saves tracking a
// separate health version). Entries are shared with the current snapshot.
// since at or beyond the current version yields an entry-less report.
func (sc *SnapshotCache) DeltaSince(live *Report, since uint64) (*Report, uint64) {
	snap := sc.Snapshot(live)
	out := NewReport()
	out.Health = snap.Health
	if since < sc.version {
		for key, v := range sc.mod {
			if v <= since {
				continue
			}
			if e, ok := snap.entries[key]; ok {
				out.entries[key] = e
				out.totalHangs += e.Hangs
			}
		}
	}
	return out, sc.version
}

// ---------------------------------------------------------------------------
// Shared and incremental folds over disjoint parts

// addShared folds part into out, sharing part's entry pointers for keys out
// does not hold. On a key collision the existing entry is cloned before
// merging (it may be shared with an earlier part or a previous fold), so
// the fold never mutates its inputs and the result matches a serial deep
// Merge byte for byte.
func (r *Report) addShared(part *Report) {
	r.Health.Add(part.Health)
	r.totalHangs += part.totalHangs
	for key, e := range part.entries {
		if cur, ok := r.entries[key]; ok {
			ne := cloneEntry(cur)
			mergeEntryInto(ne, e)
			r.entries[key] = ne
			continue
		}
		r.entries[key] = e
	}
}

// FoldReportsShared is FoldReports for immutable parts with (mostly)
// disjoint entry-key sets — the shape of shard snapshots, whose keys are
// routed by ShardIndex. Entries are shared, not deep-copied, so the fold
// costs map inserts instead of device-set clones; collisions fall back to
// a copy-on-write merge, keeping the result byte-identical to FoldReports
// for any input. The result must be treated as read-only.
func FoldReportsShared(parts ...*Report) *Report {
	out := NewReport()
	n := 0
	for _, p := range parts {
		if p != nil {
			n += len(p.entries)
		}
	}
	out.entries = make(map[string]*ReportEntry, n)
	for _, p := range parts {
		if p != nil {
			out.addShared(p)
		}
	}
	return out
}

// FoldCache incrementally maintains the fold of an indexed family of
// immutable parts across calls, re-merging only the parts the caller says
// changed. It requires what the sharded aggregator guarantees: part i
// always holds the same key range (pairwise disjoint across parts) and its
// key set only grows between calls. Under those invariants the fold is
// byte-identical to FoldReports over the same parts.
type FoldCache struct {
	result *Report // immutable fold of the last Update's parts
	n      int     // part count the cache was built over
}

// Result returns the last fold (nil before the first Update).
func (fc *FoldCache) Result() *Report { return fc.result }

// Invalidate drops the cached fold; the next Update rebuilds from scratch.
func (fc *FoldCache) Invalidate() { fc.result, fc.n = nil, 0 }

// Update folds parts, reusing the previous fold for every part whose
// changed flag is false: unchanged entries carry over as shared pointers,
// changed parts overwrite their own keys with their new snapshot's
// entries. Totals and health are recomputed from the parts directly (a
// sum over len(parts) values, not over entries). The returned report is
// immutable; callers of an Update-owning type must never mutate it.
func (fc *FoldCache) Update(parts []*Report, changed []bool) *Report {
	if fc.result == nil || fc.n != len(parts) {
		fc.result, fc.n = FoldReportsShared(parts...), len(parts)
		return fc.result
	}
	moved := 0
	for _, c := range changed {
		if c {
			moved++
		}
	}
	if moved == 0 {
		return fc.result
	}
	if moved == len(parts) {
		// Every part moved: copying the previous fold first would be pure
		// waste (every entry gets overwritten) — rebuild shared instead.
		fc.result = FoldReportsShared(parts...)
		return fc.result
	}
	out := NewReport()
	out.entries = make(map[string]*ReportEntry, len(fc.result.entries))
	for key, e := range fc.result.entries {
		out.entries[key] = e
	}
	for i, p := range parts {
		if !changed[i] || p == nil {
			continue
		}
		// The part's new snapshot covers every key it ever held (keys are
		// only added), so overwriting replaces all of this part's stale
		// entries and touches nothing owned by other parts.
		for key, e := range p.entries {
			out.entries[key] = e
		}
	}
	for _, p := range parts {
		if p != nil {
			out.totalHangs += p.totalHangs
			out.Health.Add(p.Health)
		}
	}
	fc.result = out
	return out
}

// ---------------------------------------------------------------------------
// Parallel pairwise fold tree

// FoldReportsParallel is FoldReports on a bounded-worker pairwise tree:
// parts are merged left-to-right as a balanced binary tree, with at most
// workers goroutines folding subtrees concurrently. The merge order is
// deterministic and the result is byte-identical to the serial fold —
// Merge is commutative and associative, and key-colliding entries agree on
// their metadata (the repo-wide merge invariant). Parts are read, never
// mutated. workers <= 1 degrades to the serial fold.
func FoldReportsParallel(workers int, parts ...*Report) *Report {
	if workers <= 1 || len(parts) <= 2 {
		return FoldReports(parts...)
	}
	sem := make(chan struct{}, workers)
	var fold func(lo, hi int) *Report
	fold = func(lo, hi int) *Report {
		if hi-lo <= 2 {
			out := NewReport()
			for _, p := range parts[lo:hi] {
				if p != nil {
					out.Merge(p)
				}
			}
			return out
		}
		mid := (lo + hi) / 2
		var left *Report
		var wg sync.WaitGroup
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				left = fold(lo, mid)
			}()
		default:
			// All workers busy: fold inline rather than queueing — the
			// current goroutine is a worker too.
			left = fold(lo, mid)
		}
		right := fold(mid, hi)
		wg.Wait()
		left.Merge(right)
		return left
	}
	return fold(0, len(parts))
}

// ---------------------------------------------------------------------------
// Absolute (delta-protocol) application

// entryFromWire materializes one decoded wire entry as a standalone
// ReportEntry carrying the entry's absolute state.
func entryFromWire(we *WireEntry) *ReportEntry {
	e := &ReportEntry{
		App: we.App, ActionUID: we.ActionUID, RootCause: we.RootCause,
		File: we.File, Line: we.Line, ViaCaller: we.ViaCaller,
		Hangs: we.Hangs, Devices: make(map[string]bool, len(we.Devices)),
		MaxResponse: we.MaxResponse, SumResponse: we.SumResponse,
		Chain: we.Chain,
	}
	for _, d := range we.Devices {
		e.Devices[d] = true
	}
	return e
}

// ApplyWireDelta applies a delta-snapshot document to r, which mirrors one
// upstream node's state: each wire entry REPLACES r's entry of the same
// key with the absolute values carried on the wire (unlike MergeWire,
// which adds them), and r's health is replaced by the document's. It
// returns the keys that were replaced. This is the client half of the
// /v1/snapshot?since= protocol.
func (r *Report) ApplyWireDelta(wr *WireReport) []string {
	changed := make([]string, 0, len(wr.Entries))
	for i := range wr.Entries {
		we := &wr.Entries[i]
		if old, ok := r.entries[we.Key]; ok {
			r.totalHangs -= old.Hangs
		}
		r.entries[we.Key] = entryFromWire(we)
		r.totalHangs += we.Hangs
		changed = append(changed, we.Key)
	}
	r.Health = wr.Health
	return changed
}

// ApplyWireFull replaces r wholesale with a full-snapshot document,
// returning every key whose entry may differ afterwards: the union of the
// old and new key sets (a restarted upstream may have *lost* entries, so
// stale keys count as changed too).
func (r *Report) ApplyWireFull(wr *WireReport) []string {
	changed := make([]string, 0, len(r.entries)+len(wr.Entries))
	old := r.entries
	r.entries = make(map[string]*ReportEntry, len(wr.Entries))
	r.totalHangs = 0
	for i := range wr.Entries {
		we := &wr.Entries[i]
		r.entries[we.Key] = entryFromWire(we)
		r.totalHangs += we.Hangs
		changed = append(changed, we.Key)
	}
	for key := range old {
		if _, ok := r.entries[key]; !ok {
			changed = append(changed, key)
		}
	}
	r.Health = wr.Health
	return changed
}

// RefreshKeys re-derives r's entries at the given keys as the fold of the
// corresponding entries across parts, in part order, and re-sums r's
// totals and health from the parts. A key held by no part is deleted.
// Entries are rebuilt fresh (never mutated in place), so a snapshot that
// shares r's old entry pointers stays valid — the property the regional
// tier's copy-on-write serving depends on. Byte-identity: after refreshing
// every changed key, r equals FoldReports(parts...) exactly.
func (r *Report) RefreshKeys(keys []string, parts ...*Report) {
	for _, key := range keys {
		var merged *ReportEntry
		for _, p := range parts {
			if p == nil {
				continue
			}
			e, ok := p.entries[key]
			if !ok {
				continue
			}
			if merged == nil {
				merged = cloneEntry(e)
			} else {
				mergeEntryInto(merged, e)
			}
		}
		if merged == nil {
			delete(r.entries, key)
		} else {
			r.entries[key] = merged
		}
	}
	r.totalHangs = 0
	r.Health = Health{}
	for _, p := range parts {
		if p != nil {
			r.totalHangs += p.totalHangs
			r.Health.Add(p.Health)
		}
	}
}
