package core

import (
	"bytes"
	"strings"
	"testing"

	"hangdoctor/internal/corpus"
	"hangdoctor/internal/perf"
	"hangdoctor/internal/simclock"
)

func buildCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	return corpus.Build()
}

func TestWideCollection(t *testing.T) {
	c := buildCorpus(t)
	d, _ := runHD(t, c, "K9-Mail", Config{WideCollectEvery: 3}, 11, 150)
	data := d.WideData()
	if len(data) == 0 {
		t.Fatal("no wide readings collected")
	}
	bugs, uis := 0, 0
	for _, r := range data {
		if len(r.Values) != len(CandidateEvents()) {
			t.Fatalf("reading has %d events, want %d", len(r.Values), len(CandidateEvents()))
		}
		if r.IsBug {
			bugs++
		} else {
			uis++
		}
	}
	if bugs == 0 || uis == 0 {
		t.Fatalf("wide labels lack variety: bugs=%d uis=%d", bugs, uis)
	}
}

func TestWideCollectionDisabledByDefault(t *testing.T) {
	c := buildCorpus(t)
	d, _ := runHD(t, c, "K9-Mail", Config{}, 11, 60)
	if len(d.WideData()) != 0 {
		t.Fatal("wide data collected without WideCollectEvery")
	}
}

func TestWideCollectionDoesNotPerturbStateMachine(t *testing.T) {
	c1 := buildCorpus(t)
	c2 := buildCorpus(t)
	d1, _ := runHD(t, c1, "K9-Mail", Config{ResetEvery: 1 << 30}, 11, 120)
	d2, _ := runHD(t, c2, "K9-Mail", Config{ResetEvery: 1 << 30, WideCollectEvery: 4}, 11, 120)
	// The collection task must not change what gets diagnosed (it never
	// touches action state). Detections may differ in counts only through
	// measurement-noise draws; root-cause sets must match.
	roots := func(d *Doctor) map[string]bool {
		out := map[string]bool{}
		for _, det := range d.Detections() {
			out[det.ActionUID+"|"+det.RootCause] = true
		}
		return out
	}
	r1, r2 := roots(d1), roots(d2)
	for k := range r1 {
		if !r2[k] {
			t.Errorf("detection %s lost when wide collection enabled", k)
		}
	}
}

func TestHeavyAdaptFromWideData(t *testing.T) {
	// End-to-end §3.3.1 heavy adaptation: collect wide readings on device,
	// re-run the selection server-side, and get a working filter back.
	c := buildCorpus(t)
	d, _ := runHD(t, c, "K9-Mail", Config{WideCollectEvery: 2}, 11, 200)
	data := d.WideData()
	if len(data) < 6 {
		t.Skipf("only %d wide readings", len(data))
	}
	res, err := HeavyAdapt(CandidateEvents(), data, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conditions) == 0 || res.FN != 0 {
		t.Fatalf("heavy adaptation result: %+v", res)
	}
	// The adapted filter must remain in the candidate family.
	for _, cond := range res.Conditions {
		found := false
		for _, e := range CandidateEvents() {
			if cond.Event == e {
				found = true
			}
		}
		if !found {
			t.Errorf("adapted condition on non-candidate event %v", cond.Event)
		}
	}
}

func TestReportExportImportRoundTrip(t *testing.T) {
	r := NewReport()
	diag := Diagnosis{RootCause: "x.Y.m", File: "Y.java", Line: 3}
	r.Add("App", "dev1", "App/act", diag, 200*simclock.Millisecond)
	r.Add("App", "dev2", "App/act", diag, 300*simclock.Millisecond)
	r.Add("App", "dev1", "App/act2", Diagnosis{RootCause: "z.W.n", ViaCaller: true}, 150*simclock.Millisecond)

	var buf bytes.Buffer
	if err := r.Export(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ImportReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Len() || back.TotalHangs() != r.TotalHangs() {
		t.Fatalf("round trip: len %d->%d hangs %d->%d", r.Len(), back.Len(), r.TotalHangs(), back.TotalHangs())
	}
	a, b := r.Entries(), back.Entries()
	for i := range a {
		if a[i].RootCause != b[i].RootCause || a[i].Hangs != b[i].Hangs ||
			len(a[i].Devices) != len(b[i].Devices) ||
			a[i].MaxResponse != b[i].MaxResponse ||
			a[i].SumResponse != b[i].SumResponse ||
			a[i].ViaCaller != b[i].ViaCaller {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestReportImportRejectsBadInput(t *testing.T) {
	if _, err := ImportReport(strings.NewReader("{not json")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	if _, err := ImportReport(strings.NewReader(`{"version":99,"entries":[]}`)); err == nil {
		t.Fatal("accepted unknown version")
	}
	bad := `{"version":1,"entries":[{"app":"A","action_uid":"A/x","root_cause":"r","hangs":0}]}`
	if _, err := ImportReport(strings.NewReader(bad)); err == nil {
		t.Fatal("accepted non-positive hang count")
	}
}

func TestReportAnonymize(t *testing.T) {
	r := NewReport()
	diag := Diagnosis{RootCause: "x.Y.m"}
	r.Add("App", "alice-phone", "App/act", diag, 200*simclock.Millisecond)
	r.Add("App", "bob-phone", "App/act", diag, 250*simclock.Millisecond)
	anon := r.Anonymize("salt1")
	e := anon.Entries()[0]
	if len(e.Devices) != 2 {
		t.Fatalf("device count changed: %d", len(e.Devices))
	}
	for d := range e.Devices {
		if strings.Contains(d, "alice") || strings.Contains(d, "bob") {
			t.Fatalf("device identifier leaked: %q", d)
		}
		if !strings.HasPrefix(d, "dev-") {
			t.Fatalf("unexpected anonymized form: %q", d)
		}
	}
	// Same salt → stable pseudonyms (mergeable across uploads); different
	// salt → unlinkable.
	anon2 := r.Anonymize("salt1")
	anon3 := r.Anonymize("salt2")
	same := anon.Entries()[0].Devices
	for d := range anon2.Entries()[0].Devices {
		if !same[d] {
			t.Fatal("same salt produced different pseudonyms")
		}
	}
	for d := range anon3.Entries()[0].Devices {
		if same[d] {
			t.Fatal("different salts produced linkable pseudonyms")
		}
	}
	// Merging anonymized reports still counts distinct devices.
	merged := NewReport()
	merged.Merge(anon, anon2)
	if got := len(merged.Entries()[0].Devices); got != 2 {
		t.Fatalf("merged device count = %d, want 2", got)
	}
}

func TestCandidateEventsAreTable3Top10(t *testing.T) {
	evs := CandidateEvents()
	if len(evs) != 10 {
		t.Fatalf("candidate events = %d, want 10", len(evs))
	}
	seen := map[perf.Event]bool{}
	for _, e := range evs {
		if seen[e] {
			t.Fatalf("duplicate candidate %v", e)
		}
		seen[e] = true
	}
	for _, must := range []perf.Event{perf.ContextSwitches, perf.TaskClock, perf.PageFaults} {
		if !seen[must] {
			t.Fatalf("candidate set missing %v", must)
		}
	}
}

func TestTelemetryDashboard(t *testing.T) {
	c := buildCorpus(t)
	d, _ := runHD(t, c, "K9-Mail", Config{}, 11, 120)
	tel := d.Telemetry()
	open := tel.Action("K9-Mail/Open Email")
	if open == nil || open.Executions == 0 {
		t.Fatal("no telemetry for Open Email")
	}
	if open.HangRate() <= 0 {
		t.Fatal("Open Email hang rate zero despite its bug")
	}
	quickAct := tel.Action("K9-Mail/Mark Read")
	if quickAct == nil {
		t.Fatal("no telemetry for Mark Read")
	}
	if quickAct.HangRate() >= open.HangRate() {
		t.Fatalf("quick action hang rate %.2f >= buggy action %.2f",
			quickAct.HangRate(), open.HangRate())
	}
	// Percentiles are ordered.
	if !(open.Percentile(0.5) <= open.Percentile(0.95) && open.Percentile(0.95) <= open.Percentile(0.99)) {
		t.Fatal("percentiles not monotone")
	}
	// Dashboard ranks the hang-prone actions on top.
	rows := tel.Actions()
	for i := 1; i < len(rows); i++ {
		if rows[i].HangRate() > rows[i-1].HangRate() {
			t.Fatal("dashboard not sorted by hang rate")
		}
	}
	if !strings.Contains(tel.Render(), "Open Email") {
		t.Fatal("render missing action")
	}
}

func TestTelemetryReservoirBounded(t *testing.T) {
	tel := NewTelemetry(0)
	for i := 0; i < 5000; i++ {
		tel.Record("a/x", simclock.Duration(i)*simclock.Millisecond)
	}
	s := tel.Action("a/x")
	if s.Executions != 5000 {
		t.Fatalf("executions = %d", s.Executions)
	}
	if len(s.reservoir) != maxReservoir {
		t.Fatalf("reservoir = %d, want %d", len(s.reservoir), maxReservoir)
	}
	// The reservoir still represents the distribution: the median of
	// 0..4999ms is ~2500ms.
	if p50 := s.Percentile(0.5); p50 < 1500 || p50 > 3500 {
		t.Fatalf("reservoir median = %.0f, want ~2500", p50)
	}
}
