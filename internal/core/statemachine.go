package core

import "fmt"

// ActionState is the per-action state Hang Doctor transitions through its
// two-phase algorithm (Figure 3 of the paper).
type ActionState int

const (
	// Uncategorized: never analyzed, or reset for re-analysis; monitored by
	// the first-phase S-Checker.
	Uncategorized ActionState = iota
	// Normal: previous analysis attributed its hangs to UI work; no data is
	// collected (minimal overhead path).
	Normal
	// Suspicious: S-Checker saw soft-hang-bug symptoms; the Diagnoser will
	// stack-trace the next soft hang.
	Suspicious
	// HangBug: the Diagnoser confirmed a soft hang bug; every future soft
	// hang is traced, because an action may contain several bugs that
	// manifest in different executions (§3.2).
	HangBug
)

func (s ActionState) String() string {
	switch s {
	case Uncategorized:
		return "Uncategorized"
	case Normal:
		return "Normal"
	case Suspicious:
		return "Suspicious"
	case HangBug:
		return "HangBug"
	}
	return fmt.Sprintf("ActionState(%d)", int(s))
}

// actionRecord is one row of the runtime look-up table the App Injector's
// UIDs key into (§3.5).
type actionRecord struct {
	uid   string
	state ActionState
	// execs counts executions observed.
	execs int
	// sinceNormal counts executions since the action entered Normal, for
	// the periodic reset to Uncategorized.
	sinceNormal int
	// lastSymptoms is the set of condition indexes that fired at the most
	// recent S-Checker flag, attributed to the next confirmed diagnosis
	// (the Table 6 data).
	lastSymptoms []int
	// consecOpenFails counts consecutive executions whose perf sessions
	// could not be opened at all; reaching Config.QuarantineAfter
	// quarantines the action.
	consecOpenFails int
	// quarantineLeft is how many more executions skip S-Checker monitoring
	// because the action's measurement plane kept failing.
	quarantineLeft int
}

// transition records a state change, enforcing the legal edges of the
// paper's Figure 3.
func (r *actionRecord) transition(to ActionState) {
	legal := map[ActionState][]ActionState{
		Uncategorized: {Normal, Suspicious},
		Suspicious:    {Normal, HangBug, Suspicious},
		Normal:        {Uncategorized},
		HangBug:       {HangBug},
	}
	for _, ok := range legal[r.state] {
		if ok == to {
			if to == Normal {
				r.sinceNormal = 0
			}
			r.state = to
			return
		}
	}
	panic(fmt.Sprintf("core: illegal transition %v -> %v for %s", r.state, to, r.uid))
}

// StateTransition is an audit-log entry of a state change (consumed by the
// Figure 7 experiment and tests).
type StateTransition struct {
	ActionUID string
	From, To  ActionState
	Phase     string // "S-Checker" or "Diagnoser" or "Reset"
	ExecSeq   int
	// LowConfidence marks a verdict rendered from degraded data: main-only
	// thresholds, partially lost counters, or a partial stack sample set.
	LowConfidence bool
}
