package core

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"

	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
)

// FuzzImportReport ensures the report parser never panics and that every
// accepted document re-exports cleanly (parse → export → parse is a fixed
// point on the entry set).
func FuzzImportReport(f *testing.F) {
	// Seed with a valid export.
	r := NewReport()
	r.Add("App", "dev", "App/act", Diagnosis{RootCause: "x.Y.m", File: "Y.java", Line: 2}, 150*simclock.Millisecond)
	var buf bytes.Buffer
	if err := r.Export(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"entries":[]}`)
	f.Add(`{"version":2}`)
	f.Add(`garbage`)
	f.Add(`{"version":1,"entries":[{"hangs":-3}]}`)

	f.Fuzz(func(t *testing.T, doc string) {
		rep, err := ImportReport(strings.NewReader(doc))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := rep.Export(&out); err != nil {
			t.Fatalf("accepted report failed to export: %v", err)
		}
		back, err := ImportReport(&out)
		if err != nil {
			t.Fatalf("round trip of accepted report failed: %v", err)
		}
		if back.Len() != rep.Len() || back.TotalHangs() != rep.TotalHangs() {
			t.Fatalf("round trip changed the report: %d/%d vs %d/%d",
				rep.Len(), rep.TotalHangs(), back.Len(), back.TotalHangs())
		}
	})
}

// FuzzReportRoundTrip builds a report from fuzzed field values, exports it,
// and checks the import is equal field-for-field — the structured complement
// to FuzzImportReport's arbitrary-bytes no-panic coverage.
func FuzzReportRoundTrip(f *testing.F) {
	f.Add("K9-Mail", "K9-Mail/Inbox", "o.h.HtmlCleaner.clean", "HtmlCleaner.java", 42, 3, int64(150), int64(400))
	f.Add("App", "App/act", "x.Y.m", "", 0, 1, int64(0), int64(0))
	f.Fuzz(func(t *testing.T, appName, action, root, file string, line, hangs int, rt1, rt2 int64) {
		// Add can only produce well-formed entries; constrain the fuzzed
		// values to its domain rather than reimplementing validation here.
		if root == "" || line < 0 || hangs <= 0 || hangs > 1000 || rt1 < 0 || rt2 < 0 {
			t.Skip()
		}
		// encoding/json coerces invalid UTF-8 to U+FFFD, so only valid
		// strings can round-trip byte-identically.
		if !utf8.ValidString(appName) || !utf8.ValidString(action) ||
			!utf8.ValidString(root) || !utf8.ValidString(file) {
			t.Skip()
		}
		r := NewReport()
		diag := Diagnosis{RootCause: root, File: file, Line: line}
		for i := 0; i < hangs; i++ {
			rt := rt1
			if i%2 == 1 {
				rt = rt2
			}
			r.Add(appName, "dev-a", action, diag, simclock.Duration(rt)*simclock.Millisecond)
		}
		r.Health = Health{StacksDropped: hangs, VerdictsDeferred: line % 7}

		var buf bytes.Buffer
		if err := r.Export(&buf); err != nil {
			t.Fatalf("export: %v", err)
		}
		back, err := ImportReport(&buf)
		if err != nil {
			t.Fatalf("import of own export: %v", err)
		}
		if back.Len() != r.Len() || back.TotalHangs() != r.TotalHangs() {
			t.Fatalf("round trip changed totals: %d/%d vs %d/%d",
				r.Len(), r.TotalHangs(), back.Len(), back.TotalHangs())
		}
		if back.Health != r.Health {
			t.Fatalf("round trip changed health: %+v vs %+v", r.Health, back.Health)
		}
		want, got := r.Entries()[0], back.Entries()[0]
		if got.App != want.App || got.ActionUID != want.ActionUID ||
			got.RootCause != want.RootCause || got.File != want.File ||
			got.Line != want.Line || got.Hangs != want.Hangs ||
			got.MaxResponse != want.MaxResponse || got.SumResponse != want.SumResponse ||
			len(got.Devices) != len(want.Devices) {
			t.Fatalf("round trip changed the entry:\n  want %+v\n  got  %+v", want, got)
		}
	})
}

// TestReportMergeCommutative: merging device reports in any order yields the
// same fleet view — required for an upload pipeline with no ordering
// guarantees.
func TestReportMergeCommutative(t *testing.T) {
	rng := simrand.New(77)
	mkReport := func(seed string) *Report {
		r := NewReport()
		local := rng.Derive(seed)
		for i := 0; i < 5+local.Intn(10); i++ {
			r.Add(
				"App",
				"dev"+string(rune('a'+local.Intn(4))),
				"App/act"+string(rune('0'+local.Intn(3))),
				Diagnosis{RootCause: "c.C.m" + string(rune('0'+local.Intn(3)))},
				simclock.Duration(100+local.Intn(900))*simclock.Millisecond,
			)
		}
		return r
	}
	fingerprint := func(r *Report) string {
		var b bytes.Buffer
		if err := r.Export(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, bb, c := mkReport("a"), mkReport("b"), mkReport("c")
	m1 := NewReport()
	m1.Merge(a, bb, c)
	m2 := NewReport()
	m2.Merge(c)
	m2.Merge(bb)
	m2.Merge(a)
	if fingerprint(m1) != fingerprint(m2) {
		t.Fatal("merge order changed the fleet report")
	}
}
