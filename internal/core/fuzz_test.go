package core

import (
	"bytes"
	"strings"
	"testing"

	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
)

// FuzzImportReport ensures the report parser never panics and that every
// accepted document re-exports cleanly (parse → export → parse is a fixed
// point on the entry set).
func FuzzImportReport(f *testing.F) {
	// Seed with a valid export.
	r := NewReport()
	r.Add("App", "dev", "App/act", Diagnosis{RootCause: "x.Y.m", File: "Y.java", Line: 2}, 150*simclock.Millisecond)
	var buf bytes.Buffer
	if err := r.Export(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"entries":[]}`)
	f.Add(`{"version":2}`)
	f.Add(`garbage`)
	f.Add(`{"version":1,"entries":[{"hangs":-3}]}`)

	f.Fuzz(func(t *testing.T, doc string) {
		rep, err := ImportReport(strings.NewReader(doc))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := rep.Export(&out); err != nil {
			t.Fatalf("accepted report failed to export: %v", err)
		}
		back, err := ImportReport(&out)
		if err != nil {
			t.Fatalf("round trip of accepted report failed: %v", err)
		}
		if back.Len() != rep.Len() || back.TotalHangs() != rep.TotalHangs() {
			t.Fatalf("round trip changed the report: %d/%d vs %d/%d",
				rep.Len(), rep.TotalHangs(), back.Len(), back.TotalHangs())
		}
	})
}

// TestReportMergeCommutative: merging device reports in any order yields the
// same fleet view — required for an upload pipeline with no ordering
// guarantees.
func TestReportMergeCommutative(t *testing.T) {
	rng := simrand.New(77)
	mkReport := func(seed string) *Report {
		r := NewReport()
		local := rng.Derive(seed)
		for i := 0; i < 5+local.Intn(10); i++ {
			r.Add(
				"App",
				"dev"+string(rune('a'+local.Intn(4))),
				"App/act"+string(rune('0'+local.Intn(3))),
				Diagnosis{RootCause: "c.C.m" + string(rune('0'+local.Intn(3)))},
				simclock.Duration(100+local.Intn(900))*simclock.Millisecond,
			)
		}
		return r
	}
	fingerprint := func(r *Report) string {
		var b bytes.Buffer
		if err := r.Export(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, bb, c := mkReport("a"), mkReport("b"), mkReport("c")
	m1 := NewReport()
	m1.Merge(a, bb, c)
	m2 := NewReport()
	m2.Merge(c)
	m2.Merge(bb)
	m2.Merge(a)
	if fingerprint(m1) != fingerprint(m2) {
		t.Fatal("merge order changed the fleet report")
	}
}
